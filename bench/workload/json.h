// A minimal ordered JSON value, enough to emit BENCH_<scenario>.json.
//
// Deliberately a writer, not a parser: benches build a JsonValue tree
// and Dump() it with stable key order and stable number formatting, so
// artifacts diff cleanly run-to-run and the CI regression checker
// (bench/check_regression.py, stdlib json) reads them back.

#ifndef PMWCM_BENCH_WORKLOAD_JSON_H_
#define PMWCM_BENCH_WORKLOAD_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace pmw {
namespace workload {

class JsonValue {
 public:
  JsonValue() : kind_(Kind::kNull) {}

  static JsonValue Bool(bool value);
  static JsonValue Int(long long value);
  static JsonValue Double(double value);
  static JsonValue Str(std::string value);
  static JsonValue Array();
  static JsonValue Object();

  /// Object member, insertion-ordered. Returns *this for chaining.
  JsonValue& Set(const std::string& key, JsonValue value);
  /// Array element. Returns *this for chaining.
  JsonValue& Push(JsonValue value);

  /// Pretty-printed (2-space indent) with a trailing newline at the top
  /// level: the artifact format.
  std::string Dump() const;

 private:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  void Append(std::string* out, int indent) const;

  Kind kind_;
  bool bool_ = false;
  long long int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

}  // namespace workload
}  // namespace pmw

#endif  // PMWCM_BENCH_WORKLOAD_JSON_H_
