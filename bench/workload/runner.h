// The scenario runner: a ScenarioSpec, driven end-to-end through the
// api front door.
//
// ScenarioHarness owns everything server-side (universe, dataset,
// catalog, api::ServerEndpoint, InProcessTransport) built from the spec
// alone; DriveTrace issues a trace's request stream through api::Client
// — closed-loop analyst threads or an open-loop Poisson issuer/reaper
// pair per analyst — and classifies every reply envelope by its typed
// error code. Run() adds the client-observed quantiles, the server-side
// queue-wait/serve split read from ServingMeta (never from frontend::
// internals), the budget view from a Stats poll, and the per-scenario
// SLO verdict; WriteBenchJson emits the BENCH_<scenario>.json artifact
// nightly CI uploads and bench/check_regression.py compares.
//
// Everything here talks to the serving stack exclusively through
// api::Client / api::ServerEndpoint — the bench tools that include this
// header stay behind the front door by construction.

#ifndef PMWCM_BENCH_WORKLOAD_RUNNER_H_
#define PMWCM_BENCH_WORKLOAD_RUNNER_H_

#include <memory>
#include <string>
#include <vector>

#include "api/catalog.h"
#include "api/endpoint.h"
#include "api/in_process_transport.h"
#include "cluster/combiner.h"
#include "cluster/worker.h"
#include "data/binary_universe.h"
#include "data/dataset.h"
#include "workload/scenario.h"
#include "workload/trace.h"

namespace pmw {
namespace workload {

/// Harness knobs that are not part of the workload itself.
struct RunOptions {
  /// Round-trip every frame through the binary codec (the socket
  /// transport's byte path, without a socket).
  bool verify_codec = false;
  /// Record the endpoint's replayable arrival log (transcript tests).
  bool record_arrival_log = false;
  uint64_t server_seed = 4321;
  api::OracleKind oracle = api::OracleKind::kNonPrivate;
};

/// What DriveTrace observed, client-side.
struct DriveResult {
  long long issued = 0;
  long long ok = 0;
  long long quota_rejected = 0;
  long long deadline_expired = 0;
  long long halted = 0;
  long long other_errors = 0;
  /// Per successful reply, in merge order (the span vectors stay
  /// parallel to latencies_ms: index i is one request everywhere).
  std::vector<double> latencies_ms;
  std::vector<double> queue_wait_us;
  std::vector<double> serve_us;
  std::vector<double> prepare_us;
  std::vector<double> solve_us;
  std::vector<double> mw_us;
  std::vector<double> commit_us;
  long long cache_hits = 0;
  long long hard_rounds = 0;
  double elapsed_s = 0.0;
};

struct ScenarioResult {
  ScenarioSpec spec;
  int cores = 0;
  int serve_threads = 0;
  int shards = 0;

  long long issued = 0;
  long long ok = 0;
  long long quota_rejected = 0;
  long long deadline_expired = 0;
  long long halted = 0;
  long long other_errors = 0;

  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  double max_ms = 0.0;
  double queue_wait_p50_us = 0.0;
  double queue_wait_p99_us = 0.0;
  double serve_p50_us = 0.0;
  double serve_p99_us = 0.0;

  double elapsed_s = 0.0;
  /// Issued (finished, any outcome) per second vs successful per second.
  double throughput_qps = 0.0;
  double goodput_qps = 0.0;
  double cache_hit_rate = 0.0;
  long long hard_rounds = 0;

  /// The Stats-poll budget view after the run.
  double epsilon_spent = 0.0;
  double delta_spent = 0.0;
  long long hard_rounds_remaining = -1;
  uint64_t final_epoch = 0;

  /// Server-side phase attribution of the client-observed p99 latency
  /// tail, computed from the ServingMeta span fields (queue_wait,
  /// prepare, solve, mw, commit). Shares are fractions of the tail's
  /// total server-visible time (queue_wait + serve); `attributed` is
  /// what the named phases account for, `other` the remainder
  /// (dispatch overhead, sibling commits in the same batch).
  struct SpanBreakdown {
    long long tail_requests = 0;
    double threshold_ms = 0.0;
    double queue = 0.0;
    double prepare = 0.0;
    double solve = 0.0;
    double mw = 0.0;
    double commit_other = 0.0;
    double other = 0.0;
    double attributed = 0.0;
  };
  SpanBreakdown span_breakdown;

  /// The distributed-update ledger for multi-host scenarios
  /// (spec.shard_groups > 0): where the combiner's wall time went —
  /// waiting on worker replies vs the compute the workers reported for
  /// the ops themselves (the difference is transport + scheduling) —
  /// plus the RPC/recovery counters. All zero when single-process.
  struct Multihost {
    bool enabled = false;
    int shard_groups = 0;
    /// Worker addresses came from PMW_MULTIHOST_WORKERS (external
    /// pmw_shard_worker processes) rather than in-process workers.
    bool external_workers = false;
    long long rpcs = 0;
    long long rpc_failures = 0;
    long long recoveries = 0;
    long long updates_logged = 0;
    double combiner_wait_us = 0.0;
    double worker_compute_us = 0.0;
    /// Shares of the combiner's total wait: what workers actually
    /// computed vs transport + scheduling overhead.
    double worker_compute_share = 0.0;
    double transport_share = 0.0;
  };
  Multihost multihost;

  /// The endpoint registry's exposition after the run, scraped through
  /// the kMetricsRequest front door in both formats (what nightly CI
  /// uploads next to the BENCH json, and what check_regression.py reads
  /// histogram p99s from).
  std::string metrics_text;
  std::string metrics_json;

  bool slo_ok = true;
  std::vector<std::string> slo_violations;

  /// The BENCH_<scenario>.json body.
  std::string ToJson() const;
};

/// The serve-pool width a spec resolves to on this machine
/// (spec.serve_threads, or min(4, hardware cores) when 0).
int ResolveServeThreads(const ScenarioSpec& spec);

/// The api::ServerOptions a spec resolves to — exactly what
/// ScenarioHarness builds its endpoint with (`catalog_scale` is the
/// catalog's scale() bound). Exposed so transcript tests can replay a
/// recorded arrival log through sequential core::PmwCm under the same
/// mechanism options.
api::ServerOptions MakeServerOptions(const ScenarioSpec& spec,
                                     const RunOptions& options,
                                     double catalog_scale);

/// Issues `trace` through api::Client instances over `transport`,
/// honouring the spec's arrival process and batching. Blocks until every
/// reply is collected.
DriveResult DriveTrace(const ScenarioSpec& spec, const Trace& trace,
                       api::Transport* transport);

/// The full server stack for one scenario, built from the spec. Exposes
/// the endpoint/transport so tests can record arrival logs and replay
/// traces; bench tools only need Run().
class ScenarioHarness {
 public:
  ScenarioHarness(const ScenarioSpec& spec, const RunOptions& options);

  /// The spec's request stream over this harness's catalog names.
  Trace MakeTrace() const { return BuildTrace(spec_, names_); }

  /// DriveTrace + stats poll + SLO verdict.
  ScenarioResult Run(const Trace& trace);

  api::ServerEndpoint& endpoint() { return *endpoint_; }
  api::Transport& transport() { return *transport_; }
  const data::Dataset& dataset() const { return *dataset_; }
  const api::QueryCatalog& catalog() const { return catalog_; }
  const std::vector<std::string>& names() const { return names_; }
  const ScenarioSpec& spec() const { return spec_; }

 private:
  ScenarioSpec spec_;
  data::LabeledHypercubeUniverse universe_;
  std::unique_ptr<data::Dataset> dataset_;
  api::QueryCatalog catalog_;
  std::vector<std::string> names_;
  /// Multi-host fabric (spec.shard_groups > 0). Declared before the
  /// endpoint on purpose: the endpoint holds the combiner as its
  /// hypothesis delegate, so destruction must tear the endpoint down
  /// first, then the combiner, then the workers it talks to.
  std::vector<std::unique_ptr<cluster::ShardWorker>> local_workers_;
  std::unique_ptr<cluster::Combiner> combiner_;
  bool external_workers_ = false;
  std::unique_ptr<api::ServerEndpoint> endpoint_;
  std::unique_ptr<api::InProcessTransport> transport_;
};

/// Build + trace + run, in one call.
ScenarioResult RunScenario(const ScenarioSpec& spec,
                           const RunOptions& options);

/// Writes result.ToJson() to <dir>/BENCH_<scenario>.json.
Status WriteBenchJson(const ScenarioResult& result, const std::string& dir);

/// Writes the scraped expositions to <dir>/METRICS_<scenario>.txt
/// (Prometheus text) and <dir>/METRICS_<scenario>.json (ordered JSON).
Status WriteMetricsDumps(const ScenarioResult& result,
                         const std::string& dir);

}  // namespace workload
}  // namespace pmw

#endif  // PMWCM_BENCH_WORKLOAD_RUNNER_H_
