#include "workload/generator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace pmw {
namespace workload {

double ZipfianGenerator::Zeta(long long n, double theta) {
  double sum = 0.0;
  for (long long i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

ZipfianGenerator::ZipfianGenerator(int num_keys, double theta, uint64_t seed)
    : num_keys_(num_keys), theta_(theta), engine_(seed) {
  PMW_CHECK_GE(num_keys, 1);
  PMW_CHECK_GE(theta, 0.0);
  PMW_CHECK_LT(theta, 1.0);
  zetan_ = Zeta(num_keys, theta);
  alpha_ = 1.0 / (1.0 - theta);
  const double zeta2 = Zeta(std::min<long long>(2, num_keys), theta);
  // YCSB's eta: maps the uniform variate's tail onto the zipfian body.
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(num_keys), 1.0 - theta)) /
         (1.0 - zeta2 / zetan_);
  half_pow_theta_ = std::pow(0.5, theta);
}

int ZipfianGenerator::Next() {
  const double u = CanonicalUniform(engine_);
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (num_keys_ >= 2 && uz < 1.0 + half_pow_theta_) return 1;
  const int key = static_cast<int>(static_cast<double>(num_keys_) *
                                   std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return std::min(key, num_keys_ - 1);
}

PoissonArrivals::PoissonArrivals(double rate_per_sec, uint64_t seed)
    : rate_per_sec_(rate_per_sec), engine_(seed) {
  PMW_CHECK_GT(rate_per_sec, 0.0);
}

uint64_t PoissonArrivals::NextArrivalUs() {
  // Inverse-CDF exponential gap; 1 - u is in (0, 1] so the log is finite.
  const double u = CanonicalUniform(engine_);
  const double gap_s = -std::log(1.0 - u) / rate_per_sec_;
  clock_us_ += gap_s * 1e6;
  return static_cast<uint64_t>(std::llround(clock_us_));
}

}  // namespace workload
}  // namespace pmw
