// Scenario specs: a workload as a checked-in, seeded artifact.
//
// A ScenarioSpec fully determines a workload — the server shape (threads,
// shards, quotas), the mechanism knobs, the key-popularity model
// (uniform / zipfian / hot-set churn), and the arrival process
// (closed-loop analysts vs an open-loop Poisson schedule) — so
// BuildTrace(spec, names) is a pure function of the spec and the catalog
// names. StandardScenarios() is the canonical matrix the scenario runner
// and the nightly CI job drive; per-scenario SLOs make a run self-judging.
//
// This header is api-free on purpose: the trace/generator layer (and its
// tests) depend only on the spec, while workload/runner.h owns everything
// that touches api::Client / api::ServerEndpoint.

#ifndef PMWCM_BENCH_WORKLOAD_SCENARIO_H_
#define PMWCM_BENCH_WORKLOAD_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pmw {
namespace workload {

/// Client-observed service-level objectives a scenario is judged
/// against. Zero (or negative, for the hit-rate bound) disables a check.
struct Slo {
  double max_p50_ms = 0.0;
  double max_p99_ms = 0.0;
  /// Lower bound on goodput (successful answers per second).
  double min_goodput_qps = 0.0;
  /// Lower bound on the cross-batch plan-cache hit rate observed in
  /// reply metadata; < 0 disables.
  double min_cache_hit_rate = -1.0;
  /// Quota / deadline / halt rejections are part of the scenario's
  /// design (pressure mixes) rather than failures.
  bool allow_rejections = false;
};

struct ScenarioSpec {
  std::string name;

  // -- Server shape --------------------------------------------------
  int dim = 6;
  int records = 200000;
  int catalog_queries = 96;
  /// Serve-pool threads; 0 picks min(4, hardware cores).
  int serve_threads = 0;
  int shards = 1;
  size_t max_batch = 64;
  uint64_t max_wait_us = 200;
  /// Per-analyst admission quota; 0 means unlimited.
  long long per_analyst_quota = 0;
  /// Hypothesis storage backend (maps to
  /// api::ServerOptions::serve.hypothesis_backend). kSparse materializes
  /// only the MW-touched support — the |X| >= 2^20 configuration; with
  /// exact-mode defaults transcripts stay bit-identical to kDense.
  enum class Backend { kDense, kSparse };
  Backend backend = Backend::kDense;
  /// Inner-solver iteration cap; 0 keeps the library default. Huge
  /// domains bound the O(|X| * dim) per-iteration solve cost with it.
  int solver_max_iters = 0;
  /// > 0 serves multi-host: the harness connects a cluster::Combiner to
  /// this many shard-group workers and installs it as the endpoint's
  /// hypothesis delegate, so every MW update fans out over TCP. Workers
  /// are in-process cluster::ShardWorker instances by default; the
  /// PMW_MULTIHOST_WORKERS env var ("host:port,host:port", one entry per
  /// group) points the combiner at external pmw_shard_worker processes
  /// instead (the nightly CI topology). Requires shards > 1 and the
  /// dense backend; transcripts stay bit-identical to single-process.
  int shard_groups = 0;

  // -- Mechanism -----------------------------------------------------
  double alpha = 0.2;
  double beta = 0.05;
  double epsilon = 2.0;
  double delta = 1e-6;
  int override_updates = 32;
  /// Dataset shape: near-uniform keeps the sparse vector in its free
  /// kBottom steady state; logistic ground truth makes early queries
  /// fire hard rounds (oracle calls, privacy spend).
  enum class DataShape { kNearUniform, kLogistic };
  DataShape data = DataShape::kNearUniform;

  // -- Key popularity ------------------------------------------------
  enum class Popularity { kUniform, kZipfian };
  Popularity popularity = Popularity::kZipfian;
  /// Zipfian skew in [0, 1); ignored for kUniform.
  double zipf_theta = 0.99;
  /// Hot-set churn overlay: with probability `hot_fraction` an event
  /// draws uniformly from a working set of `hot_keys` keys that rotates
  /// to a disjoint set every `churn_every` events (epoch churn, the
  /// cache-adversarial mix). hot_keys == 0 disables the overlay.
  int hot_keys = 0;
  double hot_fraction = 0.0;
  long long churn_every = 0;

  // -- Arrival process -----------------------------------------------
  enum class Arrival { kClosedLoop, kOpenLoopPoisson };
  Arrival arrival = Arrival::kClosedLoop;
  /// Aggregate open-loop arrival rate; ignored for kClosedLoop.
  double open_loop_qps = 0.0;
  int analysts = 8;
  int queries_per_analyst = 192;
  /// > 1 groups consecutive per-analyst events into batched wire calls
  /// (api::Client::CallBatch). Closed-loop only.
  int batch_size = 1;
  /// Relative server-side deadline stamped on every request; 0 = none.
  uint64_t deadline_us = 0;

  uint64_t seed = 1;
  Slo slo;

  long long total_events() const {
    return static_cast<long long>(analysts) * queries_per_analyst;
  }
};

/// Stable names for the enums (used by the trace format and BENCH json).
const char* PopularityName(ScenarioSpec::Popularity popularity);
const char* ArrivalName(ScenarioSpec::Arrival arrival);
const char* DataShapeName(ScenarioSpec::DataShape shape);
const char* BackendName(ScenarioSpec::Backend backend);

/// The canonical scenario matrix: zipfian closed-loop, uniform open-loop
/// Poisson, hot-key churn, and quota/deadline pressure. The nightly CI
/// job runs exactly this list.
std::vector<ScenarioSpec> StandardScenarios();

/// StandardScenarios() entry by name; nullptr-free: returns false when
/// the name is unknown.
bool FindStandardScenario(const std::string& name, ScenarioSpec* spec);

}  // namespace workload
}  // namespace pmw

#endif  // PMWCM_BENCH_WORKLOAD_SCENARIO_H_
