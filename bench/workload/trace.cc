#include "workload/trace.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/check.h"
#include "workload/generator.h"

namespace pmw {
namespace workload {
namespace {

constexpr char kHeader[] = "# pmw-workload-trace v1";

/// Key choice per event: the base popularity stream (zipfian; theta = 0
/// is exact uniform) with the optional hot-set churn overlay. The base
/// generator only advances on non-hot events, and the overlay engine
/// draws exactly two words per hot event, so the schedule is a stable
/// function of the event index sequence.
class KeyPicker {
 public:
  KeyPicker(const ScenarioSpec& spec, int num_keys, uint64_t pop_seed,
            uint64_t hot_seed)
      : spec_(spec),
        num_keys_(num_keys),
        base_(num_keys,
              spec.popularity == ScenarioSpec::Popularity::kZipfian
                  ? spec.zipf_theta
                  : 0.0,
              pop_seed),
        hot_engine_(hot_seed) {}

  int Pick(long long event_index) {
    if (spec_.hot_keys > 0 &&
        CanonicalUniform(hot_engine_) < spec_.hot_fraction) {
      const long long epoch =
          spec_.churn_every > 0 ? event_index / spec_.churn_every : 0;
      const int slot =
          static_cast<int>(hot_engine_() % static_cast<uint64_t>(
                                               spec_.hot_keys));
      return static_cast<int>((epoch * spec_.hot_keys + slot) %
                              num_keys_);
    }
    return base_.Next();
  }

 private:
  const ScenarioSpec& spec_;
  int num_keys_;
  ZipfianGenerator base_;
  std::mt19937_64 hot_engine_;
};

}  // namespace

Trace BuildTrace(const ScenarioSpec& spec,
                 const std::vector<std::string>& names) {
  PMW_CHECK(!names.empty());
  PMW_CHECK_GE(spec.analysts, 1);
  Trace trace;
  trace.scenario = spec.name;
  trace.seed = spec.seed;

  // One root engine deals the sub-seeds, always in the same order, so
  // toggling a feature (say, churn) never shifts the other streams.
  std::mt19937_64 root(spec.seed);
  const uint64_t pop_seed = root();
  const uint64_t arrival_seed = root();
  const uint64_t hot_seed = root();

  KeyPicker picker(spec, static_cast<int>(names.size()), pop_seed,
                   hot_seed);
  PoissonArrivals arrivals(
      spec.arrival == ScenarioSpec::Arrival::kOpenLoopPoisson
          ? spec.open_loop_qps
          : 1.0,
      arrival_seed);

  const long long total = spec.total_events();
  trace.events.reserve(static_cast<size_t>(total));
  for (long long i = 0; i < total; ++i) {
    TraceEvent event;
    if (spec.arrival == ScenarioSpec::Arrival::kOpenLoopPoisson) {
      event.arrival_us = arrivals.NextArrivalUs();
    }
    event.analyst = static_cast<uint32_t>(i % spec.analysts);
    event.deadline_us = spec.deadline_us;
    event.query_name = names[static_cast<size_t>(picker.Pick(i))];
    trace.events.push_back(std::move(event));
  }
  return trace;
}

std::string FormatTrace(const Trace& trace) {
  std::string out;
  out += kHeader;
  out += '\n';
  out += "scenario " + trace.scenario + '\n';
  out += "seed " + std::to_string(trace.seed) + '\n';
  out += "events " + std::to_string(trace.events.size()) + '\n';
  char line[128];
  for (const TraceEvent& event : trace.events) {
    std::snprintf(line, sizeof(line), "%" PRIu64 " %u %" PRIu64 " ",
                  event.arrival_us, event.analyst, event.deadline_us);
    out += line;
    out += event.query_name;
    out += '\n';
  }
  return out;
}

Result<Trace> ParseTrace(std::string_view text) {
  std::istringstream in{std::string(text)};
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    return Status::InvalidArgument("trace: missing header '" +
                                   std::string(kHeader) + "'");
  }
  Trace trace;
  size_t count = 0;
  {
    std::string key;
    if (!std::getline(in, line)) {
      return Status::InvalidArgument("trace: truncated preamble");
    }
    std::istringstream fields(line);
    if (!(fields >> key >> trace.scenario) || key != "scenario") {
      return Status::InvalidArgument("trace: expected 'scenario <name>'");
    }
  }
  {
    std::string key;
    if (!std::getline(in, line)) {
      return Status::InvalidArgument("trace: truncated preamble");
    }
    std::istringstream fields(line);
    if (!(fields >> key >> trace.seed) || key != "seed") {
      return Status::InvalidArgument("trace: expected 'seed <n>'");
    }
  }
  {
    std::string key;
    if (!std::getline(in, line)) {
      return Status::InvalidArgument("trace: truncated preamble");
    }
    std::istringstream fields(line);
    if (!(fields >> key >> count) || key != "events") {
      return Status::InvalidArgument("trace: expected 'events <n>'");
    }
  }
  trace.events.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    if (!std::getline(in, line)) {
      return Status::InvalidArgument(
          "trace: expected " + std::to_string(count) + " events, got " +
          std::to_string(i));
    }
    TraceEvent event;
    std::istringstream fields(line);
    if (!(fields >> event.arrival_us >> event.analyst >>
          event.deadline_us >> event.query_name)) {
      return Status::InvalidArgument("trace: malformed event line " +
                                     std::to_string(i) + ": '" + line +
                                     "'");
    }
    trace.events.push_back(std::move(event));
  }
  return trace;
}

Status WriteTraceFile(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::Internal("trace: cannot open '" + path +
                            "' for writing");
  }
  const std::string text = FormatTrace(trace);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  out.flush();
  if (!out) {
    return Status::Internal("trace: short write to '" + path + "'");
  }
  return Status::Ok();
}

Result<Trace> ReadTraceFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::InvalidArgument("trace: cannot open '" + path + "'");
  }
  std::ostringstream text;
  text << in.rdbuf();
  return ParseTrace(text.str());
}

}  // namespace workload
}  // namespace pmw
