// Workload traces: a scenario, flattened to a replayable artifact.
//
// BuildTrace expands a ScenarioSpec against a catalog's name list into
// the exact request stream a run will issue — per-event arrival offset,
// analyst, query name, deadline. The expansion is a pure function of
// (spec, names): platform-deterministic generators (workload/generator.h)
// mean the same spec always yields byte-identical traces, so a trace can
// be checked in, replayed through api::ServerEndpoint, and compared
// against sequential core::PmwCm bit-for-bit (tests/workload_test.cc).
//
// The text format is line-based and integer-only (microsecond offsets,
// no doubles), so files diff cleanly and golden comparisons are exact:
//
//   # pmw-workload-trace v1
//   scenario <name>
//   seed <seed>
//   events <count>
//   <arrival_us> <analyst> <deadline_us> <query_name>
//   ...

#ifndef PMWCM_BENCH_WORKLOAD_TRACE_H_
#define PMWCM_BENCH_WORKLOAD_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "workload/scenario.h"

namespace pmw {
namespace workload {

struct TraceEvent {
  /// Offset from the run's start, microseconds; 0 for closed-loop
  /// events (issue as fast as the loop allows).
  uint64_t arrival_us = 0;
  /// Which analyst issues the event (0-based).
  uint32_t analyst = 0;
  /// Relative server-side deadline; 0 = none.
  uint64_t deadline_us = 0;
  std::string query_name;

  bool operator==(const TraceEvent&) const = default;
};

struct Trace {
  std::string scenario;
  uint64_t seed = 0;
  std::vector<TraceEvent> events;

  bool operator==(const Trace&) const = default;
};

/// Expands the spec into its request stream over the given catalog
/// names. Events are in issue order: analysts round-robin, arrival
/// offsets non-decreasing (identically 0 for closed loop).
Trace BuildTrace(const ScenarioSpec& spec,
                 const std::vector<std::string>& names);

/// Serializes to / parses from the text format above. Format followed by
/// Parse is the identity; Parse rejects malformed input with
/// kInvalidArgument.
std::string FormatTrace(const Trace& trace);
Result<Trace> ParseTrace(std::string_view text);

/// File convenience wrappers over Format/Parse.
Status WriteTraceFile(const Trace& trace, const std::string& path);
Result<Trace> ReadTraceFile(const std::string& path);

}  // namespace workload
}  // namespace pmw

#endif  // PMWCM_BENCH_WORKLOAD_TRACE_H_
