#include "workload/json.h"

#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace pmw {
namespace workload {
namespace {

void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

JsonValue JsonValue::Bool(bool value) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::Int(long long value) {
  JsonValue v;
  v.kind_ = Kind::kInt;
  v.int_ = value;
  return v;
}

JsonValue JsonValue::Double(double value) {
  JsonValue v;
  v.kind_ = Kind::kDouble;
  v.double_ = value;
  return v;
}

JsonValue JsonValue::Str(std::string value) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

JsonValue& JsonValue::Set(const std::string& key, JsonValue value) {
  PMW_CHECK(kind_ == Kind::kObject);
  object_.emplace_back(key, std::move(value));
  return *this;
}

JsonValue& JsonValue::Push(JsonValue value) {
  PMW_CHECK(kind_ == Kind::kArray);
  array_.push_back(std::move(value));
  return *this;
}

void JsonValue::Append(std::string* out, int indent) const {
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  const std::string inner_pad(static_cast<size_t>(indent + 1) * 2, ' ');
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      break;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Kind::kInt:
      *out += std::to_string(int_);
      break;
    case Kind::kDouble: {
      PMW_CHECK_MSG(std::isfinite(double_), "json: non-finite number");
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.10g", double_);
      *out += buf;
      break;
    }
    case Kind::kString:
      AppendEscaped(string_, out);
      break;
    case Kind::kArray: {
      if (array_.empty()) {
        *out += "[]";
        break;
      }
      *out += "[\n";
      for (size_t i = 0; i < array_.size(); ++i) {
        *out += inner_pad;
        array_[i].Append(out, indent + 1);
        if (i + 1 < array_.size()) *out += ',';
        *out += '\n';
      }
      *out += pad;
      *out += ']';
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        *out += "{}";
        break;
      }
      *out += "{\n";
      for (size_t i = 0; i < object_.size(); ++i) {
        *out += inner_pad;
        AppendEscaped(object_[i].first, out);
        *out += ": ";
        object_[i].second.Append(out, indent + 1);
        if (i + 1 < object_.size()) *out += ',';
        *out += '\n';
      }
      *out += pad;
      *out += '}';
      break;
    }
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  Append(&out, 0);
  out += '\n';
  return out;
}

}  // namespace workload
}  // namespace pmw
