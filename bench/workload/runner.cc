#include "workload/runner.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <fstream>
#include <memory>
#include <future>
#include <mutex>
#include <thread>
#include <utility>

#include "api/client.h"
#include "common/check.h"
#include "common/stats.h"
#include "common/timer.h"
#include "core/sharded_hypothesis.h"
#include "data/generators.h"
#include "data/histogram.h"
#include "workload/json.h"

#include <cstdlib>

namespace pmw {
namespace workload {
namespace {

/// One observed reply, classified for merging.
struct Observation {
  double latency_ms = 0.0;
  api::ErrorCode error = api::ErrorCode::kOk;
  bool cache_hit = false;
  bool hard_round = false;
  uint64_t queue_wait_us = 0;
  uint64_t serve_us = 0;
  uint64_t prepare_us = 0;
  uint64_t solve_us = 0;
  uint64_t mw_us = 0;
  uint64_t commit_us = 0;
};

Observation Observe(const api::AnswerEnvelope& reply, double latency_ms) {
  Observation obs;
  obs.latency_ms = latency_ms;
  obs.error = reply.error;
  obs.cache_hit = reply.meta.cache_hit;
  obs.hard_round = reply.meta.hard_round;
  obs.queue_wait_us = reply.meta.queue_wait_us;
  obs.serve_us = reply.meta.serve_us;
  obs.prepare_us = reply.meta.prepare_us;
  obs.solve_us = reply.meta.solve_us;
  obs.mw_us = reply.meta.mw_us;
  obs.commit_us = reply.meta.commit_us;
  return obs;
}

void Merge(const std::vector<Observation>& local, DriveResult* result) {
  for (const Observation& obs : local) {
    ++result->issued;
    switch (obs.error) {
      case api::ErrorCode::kOk:
        ++result->ok;
        result->latencies_ms.push_back(obs.latency_ms);
        result->queue_wait_us.push_back(
            static_cast<double>(obs.queue_wait_us));
        result->serve_us.push_back(static_cast<double>(obs.serve_us));
        result->prepare_us.push_back(static_cast<double>(obs.prepare_us));
        result->solve_us.push_back(static_cast<double>(obs.solve_us));
        result->mw_us.push_back(static_cast<double>(obs.mw_us));
        result->commit_us.push_back(static_cast<double>(obs.commit_us));
        if (obs.cache_hit) ++result->cache_hits;
        if (obs.hard_round) ++result->hard_rounds;
        break;
      case api::ErrorCode::kQuotaExceeded:
        ++result->quota_rejected;
        break;
      case api::ErrorCode::kDeadlineExpired:
        ++result->deadline_expired;
        break;
      case api::ErrorCode::kHalted:
      case api::ErrorCode::kBudgetExhausted:
        ++result->halted;
        break;
      default:
        ++result->other_errors;
    }
  }
}

/// Per-analyst views into the trace, in issue order.
std::vector<std::vector<const TraceEvent*>> PartitionByAnalyst(
    const ScenarioSpec& spec, const Trace& trace) {
  std::vector<std::vector<const TraceEvent*>> per(
      static_cast<size_t>(spec.analysts));
  for (const TraceEvent& event : trace.events) {
    PMW_CHECK_LT(event.analyst, static_cast<uint32_t>(spec.analysts));
    per[event.analyst].push_back(&event);
  }
  return per;
}

void DriveClosedLoop(const ScenarioSpec& spec, const Trace& trace,
                     api::Transport* transport, DriveResult* result) {
  const auto per_analyst = PartitionByAnalyst(spec, trace);
  std::vector<std::unique_ptr<api::Client>> clients;
  for (int a = 0; a < spec.analysts; ++a) {
    clients.push_back(std::make_unique<api::Client>(
        transport, "analyst-" + std::to_string(a)));
  }
  std::mutex merge_mutex;
  WallTimer total;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(spec.analysts));
  for (int a = 0; a < spec.analysts; ++a) {
    threads.emplace_back([a, &spec, &per_analyst, &clients, &merge_mutex,
                          result] {
      api::Client& client = *clients[static_cast<size_t>(a)];
      const std::vector<const TraceEvent*>& mine =
          per_analyst[static_cast<size_t>(a)];
      std::vector<Observation> local;
      local.reserve(mine.size());
      const size_t group = std::max<size_t>(
          1, static_cast<size_t>(spec.batch_size));
      for (size_t start = 0; start < mine.size(); start += group) {
        const size_t count = std::min(group, mine.size() - start);
        const std::chrono::microseconds deadline{
            static_cast<int64_t>(mine[start]->deadline_us)};
        WallTimer timer;
        if (count == 1) {
          api::AnswerEnvelope reply =
              client.Call(mine[start]->query_name, deadline);
          local.push_back(Observe(reply, timer.ElapsedMillis()));
        } else {
          std::vector<std::string> names;
          names.reserve(count);
          for (size_t j = 0; j < count; ++j) {
            names.push_back(mine[start + j]->query_name);
          }
          std::vector<api::AnswerEnvelope> replies =
              client.CallBatch(names, deadline);
          const double elapsed_ms = timer.ElapsedMillis();
          // A batched request's latency is its whole wire call's.
          for (const api::AnswerEnvelope& reply : replies) {
            local.push_back(Observe(reply, elapsed_ms));
          }
        }
      }
      std::lock_guard<std::mutex> lock(merge_mutex);
      Merge(local, result);
    });
  }
  for (std::thread& thread : threads) thread.join();
  result->elapsed_s = total.ElapsedSeconds();
}

void DriveOpenLoop(const ScenarioSpec& spec, const Trace& trace,
                   api::Transport* transport, DriveResult* result) {
  const auto per_analyst = PartitionByAnalyst(spec, trace);
  std::vector<std::unique_ptr<api::Client>> clients;
  for (int a = 0; a < spec.analysts; ++a) {
    clients.push_back(std::make_unique<api::Client>(
        transport, "analyst-" + std::to_string(a)));
  }
  std::mutex merge_mutex;
  // A short runway so every issuer is up before the schedule's origin.
  const auto start =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(20);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(spec.analysts) * 2);
  for (int a = 0; a < spec.analysts; ++a) {
    // The endpoint's futures are deferred: collecting one blocks until
    // the reply is served. An issuer thread alone would therefore fall
    // back to closed-loop pacing, so each analyst splits into an issuer
    // (fires CallAsync exactly on the schedule) and a reaper (collects
    // in issue order and timestamps completion).
    struct Inflight {
      std::chrono::steady_clock::time_point issued_at;
      std::future<api::AnswerEnvelope> reply;
    };
    auto queue = std::make_shared<std::deque<Inflight>>();
    auto queue_mutex = std::make_shared<std::mutex>();
    auto queue_cv = std::make_shared<std::condition_variable>();
    auto done = std::make_shared<bool>(false);

    threads.emplace_back([a, start, &per_analyst, &clients, queue,
                          queue_mutex, queue_cv, done] {
      api::Client& client = *clients[static_cast<size_t>(a)];
      for (const TraceEvent* event : per_analyst[static_cast<size_t>(a)]) {
        std::this_thread::sleep_until(
            start + std::chrono::microseconds(event->arrival_us));
        Inflight entry;
        entry.issued_at = std::chrono::steady_clock::now();
        entry.reply = client.CallAsync(
            event->query_name, std::chrono::microseconds(
                                   static_cast<int64_t>(event->deadline_us)));
        {
          std::lock_guard<std::mutex> lock(*queue_mutex);
          queue->push_back(std::move(entry));
        }
        queue_cv->notify_one();
      }
      {
        std::lock_guard<std::mutex> lock(*queue_mutex);
        *done = true;
      }
      queue_cv->notify_one();
    });

    threads.emplace_back([queue, queue_mutex, queue_cv, done, &merge_mutex,
                          result] {
      std::vector<Observation> local;
      for (;;) {
        std::unique_lock<std::mutex> lock(*queue_mutex);
        queue_cv->wait(lock,
                       [&] { return *done || !queue->empty(); });
        if (queue->empty()) break;
        Inflight entry = std::move(queue->front());
        queue->pop_front();
        lock.unlock();
        api::AnswerEnvelope reply = entry.reply.get();
        const double latency_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - entry.issued_at)
                .count();
        local.push_back(Observe(reply, latency_ms));
      }
      std::lock_guard<std::mutex> lock(merge_mutex);
      Merge(local, result);
    });
  }
  for (std::thread& thread : threads) thread.join();
  result->elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
}

double SafeQuantile(const std::vector<double>& values, double q) {
  return values.empty() ? 0.0 : Quantile(values, q);
}

/// Shared secret between the bench harness's combiner and its workers —
/// in-process ones get it directly; external pmw_shard_worker processes
/// (the nightly CI topology) must be launched with
/// --auth-token=bench-multihost.
constexpr const char* kMultihostToken = "bench-multihost";

/// PMW_MULTIHOST_WORKERS="host:port,host:port" names external
/// shard-group workers, one entry per group in domain order. Unset or
/// empty means the harness stands up in-process workers. A malformed
/// entry aborts rather than silently falling back to in-process — a CI
/// typo must never fake a multi-host pass.
std::vector<cluster::WorkerAddress> ExternalWorkerAddresses() {
  std::vector<cluster::WorkerAddress> addresses;
  const char* env = std::getenv("PMW_MULTIHOST_WORKERS");
  if (env == nullptr || *env == '\0') return addresses;
  const std::string spec(env);
  size_t start = 0;
  while (start <= spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(start, comma - start);
    const size_t colon = entry.rfind(':');
    PMW_CHECK_MSG(colon != std::string::npos && colon > 0 &&
                      colon + 1 < entry.size(),
                  "PMW_MULTIHOST_WORKERS entry '" << entry
                                                  << "' is not host:port");
    const long port = std::strtol(entry.c_str() + colon + 1, nullptr, 10);
    PMW_CHECK_MSG(port > 0 && port <= 65535,
                  "PMW_MULTIHOST_WORKERS entry '" << entry
                                                  << "' has a bad port");
    cluster::WorkerAddress address;
    address.host = entry.substr(0, colon);
    address.port = static_cast<uint16_t>(port);
    addresses.push_back(std::move(address));
    start = comma + 1;
  }
  return addresses;
}

/// Attributes the latency tail (client latency >= threshold_ms) to the
/// server-side phases the ServingMeta spans name. Shares are fractions
/// of the tail's total (queue_wait + serve) time; solve + mw +
/// commit_other reassemble the commit, so `attributed` counts commit
/// once, not twice.
ScenarioResult::SpanBreakdown AttributeTail(const DriveResult& drive,
                                            double threshold_ms) {
  ScenarioResult::SpanBreakdown breakdown;
  breakdown.threshold_ms = threshold_ms;
  double total = 0.0, queue = 0.0, prepare = 0.0, solve = 0.0, mw = 0.0;
  double commit_other = 0.0;
  for (size_t i = 0; i < drive.latencies_ms.size(); ++i) {
    if (drive.latencies_ms[i] < threshold_ms) continue;
    ++breakdown.tail_requests;
    total += drive.queue_wait_us[i] + drive.serve_us[i];
    queue += drive.queue_wait_us[i];
    prepare += drive.prepare_us[i];
    solve += drive.solve_us[i];
    mw += drive.mw_us[i];
    commit_other += std::max(
        0.0, drive.commit_us[i] - drive.solve_us[i] - drive.mw_us[i]);
  }
  if (total <= 0.0) return breakdown;
  breakdown.queue = queue / total;
  breakdown.prepare = prepare / total;
  breakdown.solve = solve / total;
  breakdown.mw = mw / total;
  breakdown.commit_other = commit_other / total;
  breakdown.attributed = breakdown.queue + breakdown.prepare +
                         breakdown.solve + breakdown.mw +
                         breakdown.commit_other;
  breakdown.other = std::max(0.0, 1.0 - breakdown.attributed);
  return breakdown;
}

}  // namespace

int ResolveServeThreads(const ScenarioSpec& spec) {
  if (spec.serve_threads > 0) return spec.serve_threads;
  const unsigned cores = std::thread::hardware_concurrency();
  return static_cast<int>(std::min(4u, cores > 0 ? cores : 1u));
}

DriveResult DriveTrace(const ScenarioSpec& spec, const Trace& trace,
                       api::Transport* transport) {
  DriveResult result;
  if (spec.arrival == ScenarioSpec::Arrival::kOpenLoopPoisson) {
    DriveOpenLoop(spec, trace, transport, &result);
  } else {
    DriveClosedLoop(spec, trace, transport, &result);
  }
  PMW_CHECK_EQ(result.issued,
               static_cast<long long>(trace.events.size()));
  return result;
}

api::ServerOptions MakeServerOptions(const ScenarioSpec& spec,
                                     const RunOptions& options,
                                     double catalog_scale) {
  api::ServerOptions server;
  server.mechanism.alpha = spec.alpha;
  server.mechanism.beta = spec.beta;
  server.mechanism.privacy = {spec.epsilon, spec.delta};
  server.mechanism.scale = std::max(2.0, catalog_scale);
  server.mechanism.max_queries = 4 * spec.total_events();
  server.mechanism.override_updates = spec.override_updates;
  if (spec.solver_max_iters > 0) {
    server.mechanism.solver.max_iters = spec.solver_max_iters;
  }
  server.serve.num_threads = ResolveServeThreads(spec);
  server.serve.num_shards = spec.shards;
  server.serve.hypothesis_backend =
      spec.backend == ScenarioSpec::Backend::kSparse
          ? core::HypothesisBackend::kSparse
          : core::HypothesisBackend::kDense;
  server.quota.per_analyst_queries = spec.per_analyst_quota;
  server.dispatcher.queue_capacity = 1024;
  server.dispatcher.max_batch = spec.max_batch;
  server.dispatcher.max_wait =
      std::chrono::microseconds(static_cast<int64_t>(spec.max_wait_us));
  server.oracle = options.oracle;
  server.record_arrival_log = options.record_arrival_log;
  // Scrape-time SLO burn gauges (obs/slo.h): the scenario's client-side
  // bounds are upper bounds for each server-side span — queue wait and
  // serve time are both components of the client-observed latency — so
  // a pmw_slo_burn_ratio above 1.0 on either histogram gauge means the
  // scenario's p99 objective is already lost server-side. Zeroes (no
  // objective) keep the gauges disabled, exactly like the SLO verdict.
  server.slo_queue_wait_p99_us = spec.slo.max_p99_ms * 1000.0;
  server.slo_serve_p99_us = spec.slo.max_p99_ms * 1000.0;
  server.slo_goodput_qps = spec.slo.min_goodput_qps;
  return server;
}

ScenarioHarness::ScenarioHarness(const ScenarioSpec& spec,
                                 const RunOptions& options)
    : spec_(spec), universe_(spec.dim) {
  data::Histogram truth = [&] {
    if (spec.data == ScenarioSpec::DataShape::kLogistic) {
      std::vector<double> theta_star(static_cast<size_t>(spec.dim));
      std::vector<double> biases(static_cast<size_t>(spec.dim), 0.5);
      for (int j = 0; j < spec.dim; ++j) {
        theta_star[static_cast<size_t>(j)] = (j % 2 == 0 ? 0.8 : -0.8);
      }
      return data::LogisticModelDistribution(universe_, theta_star, biases,
                                             /*temperature=*/0.3);
    }
    return data::Histogram::Uniform(universe_.size());
  }();
  dataset_ = std::make_unique<data::Dataset>(
      data::RoundedDataset(universe_, truth, spec.records));

  api::WorkloadSpec family;
  family.family = api::WorkloadSpec::Family::kLipschitz;
  family.dim = spec.dim;
  names_ = catalog_.Populate(family, spec.catalog_queries,
                             spec.seed ^ 0x9e3779b97f4a7c15ULL, "q/");

  api::ServerOptions server =
      MakeServerOptions(spec, options, catalog_.scale());
  if (spec.shard_groups > 0) {
    // Multi-host topology: shard-group workers own the per-shard MW
    // phase work behind a cluster::Combiner installed as the endpoint's
    // hypothesis delegate. External worker processes when
    // PMW_MULTIHOST_WORKERS names them, in-process ShardWorkers (still
    // over real localhost TCP) otherwise.
    PMW_CHECK_MSG(spec.backend == ScenarioSpec::Backend::kDense,
                  "multi-host serving requires the dense backend");
    PMW_CHECK_MSG(spec.shards > 1,
                  "multi-host serving requires shards > 1");
    cluster::CombinerOptions fabric;
    fabric.auth_token = kMultihostToken;
    fabric.workers = ExternalWorkerAddresses();
    external_workers_ = !fabric.workers.empty();
    if (!external_workers_) {
      for (int w = 0; w < spec.shard_groups; ++w) {
        cluster::ShardWorkerOptions worker_options;
        worker_options.auth_token = kMultihostToken;
        auto worker =
            std::make_unique<cluster::ShardWorker>(worker_options);
        const Status started = worker->Start();
        PMW_CHECK_MSG(started.ok(), started.ToString());
        cluster::WorkerAddress address;
        address.port = worker->port();
        fabric.workers.push_back(address);
        local_workers_.push_back(std::move(worker));
      }
    }
    combiner_ = std::make_unique<cluster::Combiner>(fabric);
    // Connect at the shard count ConfigureSharding will settle on (the
    // largest power of two <= min(shards, |X|)); the combiner insists
    // on the clamped value so its partition matches the front door's.
    const int clamped = static_cast<int>(
        core::PartitionDomain(universe_.size(), spec.shards).size());
    const Status connected = combiner_->Connect(universe_.size(), clamped);
    PMW_CHECK_MSG(connected.ok(), connected.ToString());
    server.serve.hypothesis_delegate = combiner_.get();
  }
  endpoint_ = std::make_unique<api::ServerEndpoint>(
      dataset_.get(), &catalog_, server, options.server_seed);
  transport_ = std::make_unique<api::InProcessTransport>(
      endpoint_.get(), options.verify_codec);
}

ScenarioResult ScenarioHarness::Run(const Trace& trace) {
  DriveResult drive = DriveTrace(spec_, trace, transport_.get());

  ScenarioResult result;
  result.spec = spec_;
  result.cores = static_cast<int>(std::thread::hardware_concurrency());
  result.serve_threads = ResolveServeThreads(spec_);
  result.shards = spec_.shards;
  result.issued = drive.issued;
  result.ok = drive.ok;
  result.quota_rejected = drive.quota_rejected;
  result.deadline_expired = drive.deadline_expired;
  result.halted = drive.halted;
  result.other_errors = drive.other_errors;
  result.p50_ms = SafeQuantile(drive.latencies_ms, 0.5);
  result.p99_ms = SafeQuantile(drive.latencies_ms, 0.99);
  result.mean_ms =
      drive.latencies_ms.empty() ? 0.0 : Mean(drive.latencies_ms);
  result.max_ms = drive.latencies_ms.empty() ? 0.0 : Max(drive.latencies_ms);
  result.queue_wait_p50_us = SafeQuantile(drive.queue_wait_us, 0.5);
  result.queue_wait_p99_us = SafeQuantile(drive.queue_wait_us, 0.99);
  result.serve_p50_us = SafeQuantile(drive.serve_us, 0.5);
  result.serve_p99_us = SafeQuantile(drive.serve_us, 0.99);
  result.elapsed_s = drive.elapsed_s;
  result.throughput_qps =
      drive.elapsed_s > 0.0
          ? static_cast<double>(drive.issued) / drive.elapsed_s
          : 0.0;
  result.goodput_qps =
      drive.elapsed_s > 0.0 ? static_cast<double>(drive.ok) / drive.elapsed_s
                            : 0.0;
  // Rates are defined as exactly 0.0 — never NaN — when nothing was
  // served (ok == 0) or no time elapsed: the zero-served SLO check
  // below is what judges that case, and it must do so on finite
  // numbers so the verdict (and the emitted json) stays meaningful.
  result.cache_hit_rate =
      drive.ok > 0
          ? static_cast<double>(drive.cache_hits) /
                static_cast<double>(drive.ok)
          : 0.0;
  result.hard_rounds = drive.hard_rounds;
  result.span_breakdown = AttributeTail(drive, result.p99_ms);

  if (combiner_ != nullptr) {
    const cluster::CombinerStats fabric = combiner_->stats();
    ScenarioResult::Multihost& multihost = result.multihost;
    multihost.enabled = true;
    multihost.shard_groups = combiner_->num_workers();
    multihost.external_workers = external_workers_;
    multihost.rpcs = fabric.rpcs;
    multihost.rpc_failures = fabric.rpc_failures;
    multihost.recoveries = fabric.recoveries;
    multihost.updates_logged = fabric.updates_logged;
    multihost.combiner_wait_us =
        static_cast<double>(fabric.combiner_wait_us);
    multihost.worker_compute_us =
        static_cast<double>(fabric.worker_compute_us);
    if (multihost.combiner_wait_us > 0.0) {
      multihost.worker_compute_share = std::min(
          1.0, multihost.worker_compute_us / multihost.combiner_wait_us);
      multihost.transport_share =
          std::max(0.0, 1.0 - multihost.worker_compute_share);
    }
  }

  // The budget view an analyst dashboards, through the same front door.
  api::Client harness(transport_.get(), "workload-harness");
  const api::AnswerEnvelope stats = harness.Stats();
  result.epsilon_spent = stats.meta.epsilon_spent;
  result.delta_spent = stats.meta.delta_spent;
  result.hard_rounds_remaining = stats.meta.hard_rounds_remaining;
  result.final_epoch = stats.meta.epoch;

  // The whole stack's instruments, through the same front door again.
  result.metrics_text = harness.Metrics(api::kMetricsFormatText).message;
  result.metrics_json = harness.Metrics(api::kMetricsFormatJson).message;

  // SLO verdict.
  const Slo& slo = spec_.slo;
  auto violate = [&result](std::string what) {
    result.slo_ok = false;
    result.slo_violations.push_back(std::move(what));
  };
  if (result.other_errors > 0) {
    violate("unexpected errors: " + std::to_string(result.other_errors));
  }
  const long long rejections =
      result.quota_rejected + result.deadline_expired + result.halted;
  if (!slo.allow_rejections && rejections > 0) {
    violate("rejections: " + std::to_string(rejections));
  }
  if (result.ok == 0) {
    // Nothing was served, so every latency/goodput/hit-rate check below
    // would be vacuous (their inputs are all defined-zero). Fail loudly
    // with the full disposition instead — a run where every request was
    // rejected or expired must never pass on an empty verdict, even
    // when the scenario allows typed rejections.
    violate("no successful answers (issued " + std::to_string(result.issued) +
            ": quota " + std::to_string(result.quota_rejected) +
            ", deadline " + std::to_string(result.deadline_expired) +
            ", halted " + std::to_string(result.halted) + ", errors " +
            std::to_string(result.other_errors) + ")");
    return result;
  }
  char buf[128];
  if (slo.max_p50_ms > 0.0 && result.p50_ms > slo.max_p50_ms) {
    std::snprintf(buf, sizeof(buf), "p50_ms %.3f > %.3f", result.p50_ms,
                  slo.max_p50_ms);
    violate(buf);
  }
  if (slo.max_p99_ms > 0.0 && result.p99_ms > slo.max_p99_ms) {
    std::snprintf(buf, sizeof(buf), "p99_ms %.3f > %.3f", result.p99_ms,
                  slo.max_p99_ms);
    violate(buf);
  }
  if (slo.min_goodput_qps > 0.0 &&
      result.goodput_qps < slo.min_goodput_qps) {
    std::snprintf(buf, sizeof(buf), "goodput_qps %.1f < %.1f",
                  result.goodput_qps, slo.min_goodput_qps);
    violate(buf);
  }
  if (slo.min_cache_hit_rate >= 0.0 &&
      result.cache_hit_rate < slo.min_cache_hit_rate) {
    std::snprintf(buf, sizeof(buf), "cache_hit_rate %.3f < %.3f",
                  result.cache_hit_rate, slo.min_cache_hit_rate);
    violate(buf);
  }
  return result;
}

ScenarioResult RunScenario(const ScenarioSpec& spec,
                           const RunOptions& options) {
  ScenarioHarness harness(spec, options);
  return harness.Run(harness.MakeTrace());
}

std::string ScenarioResult::ToJson() const {
  JsonValue params = JsonValue::Object();
  params.Set("popularity", JsonValue::Str(PopularityName(spec.popularity)))
      .Set("zipf_theta", JsonValue::Double(spec.zipf_theta))
      .Set("hot_keys", JsonValue::Int(spec.hot_keys))
      .Set("hot_fraction", JsonValue::Double(spec.hot_fraction))
      .Set("churn_every", JsonValue::Int(spec.churn_every))
      .Set("arrival", JsonValue::Str(ArrivalName(spec.arrival)))
      .Set("open_loop_qps", JsonValue::Double(spec.open_loop_qps))
      .Set("analysts", JsonValue::Int(spec.analysts))
      .Set("queries_per_analyst", JsonValue::Int(spec.queries_per_analyst))
      .Set("batch_size", JsonValue::Int(spec.batch_size))
      .Set("deadline_us",
           JsonValue::Int(static_cast<long long>(spec.deadline_us)))
      .Set("per_analyst_quota", JsonValue::Int(spec.per_analyst_quota))
      .Set("data", JsonValue::Str(DataShapeName(spec.data)))
      .Set("dim", JsonValue::Int(spec.dim))
      .Set("records", JsonValue::Int(spec.records))
      .Set("catalog_queries", JsonValue::Int(spec.catalog_queries))
      .Set("max_batch",
           JsonValue::Int(static_cast<long long>(spec.max_batch)))
      .Set("max_wait_us",
           JsonValue::Int(static_cast<long long>(spec.max_wait_us)))
      .Set("backend", JsonValue::Str(BackendName(spec.backend)))
      .Set("solver_max_iters", JsonValue::Int(spec.solver_max_iters))
      .Set("shard_groups", JsonValue::Int(spec.shard_groups))
      .Set("seed", JsonValue::Int(static_cast<long long>(spec.seed)));

  JsonValue env = JsonValue::Object();
  env.Set("cores", JsonValue::Int(cores))
      .Set("serve_threads", JsonValue::Int(serve_threads))
      .Set("shards", JsonValue::Int(shards));

  JsonValue requests = JsonValue::Object();
  requests.Set("issued", JsonValue::Int(issued))
      .Set("ok", JsonValue::Int(ok))
      .Set("quota_rejected", JsonValue::Int(quota_rejected))
      .Set("deadline_expired", JsonValue::Int(deadline_expired))
      .Set("halted", JsonValue::Int(halted))
      .Set("errors", JsonValue::Int(other_errors));

  JsonValue latency = JsonValue::Object();
  latency.Set("p50", JsonValue::Double(p50_ms))
      .Set("p99", JsonValue::Double(p99_ms))
      .Set("mean", JsonValue::Double(mean_ms))
      .Set("max", JsonValue::Double(max_ms));

  JsonValue server = JsonValue::Object();
  server.Set("queue_wait_p50", JsonValue::Double(queue_wait_p50_us))
      .Set("queue_wait_p99", JsonValue::Double(queue_wait_p99_us))
      .Set("serve_p50", JsonValue::Double(serve_p50_us))
      .Set("serve_p99", JsonValue::Double(serve_p99_us));

  JsonValue spans = JsonValue::Object();
  spans.Set("tail_requests", JsonValue::Int(span_breakdown.tail_requests))
      .Set("threshold_ms", JsonValue::Double(span_breakdown.threshold_ms))
      .Set("queue", JsonValue::Double(span_breakdown.queue))
      .Set("prepare", JsonValue::Double(span_breakdown.prepare))
      .Set("solve", JsonValue::Double(span_breakdown.solve))
      .Set("mw", JsonValue::Double(span_breakdown.mw))
      .Set("commit_other", JsonValue::Double(span_breakdown.commit_other))
      .Set("other", JsonValue::Double(span_breakdown.other))
      .Set("attributed", JsonValue::Double(span_breakdown.attributed));

  JsonValue budget = JsonValue::Object();
  budget.Set("epsilon_spent", JsonValue::Double(epsilon_spent))
      .Set("delta_spent", JsonValue::Double(delta_spent))
      .Set("hard_rounds_remaining", JsonValue::Int(hard_rounds_remaining))
      .Set("epoch", JsonValue::Int(static_cast<long long>(final_epoch)));

  JsonValue violations = JsonValue::Array();
  for (const std::string& violation : slo_violations) {
    violations.Push(JsonValue::Str(violation));
  }
  JsonValue slo = JsonValue::Object();
  slo.Set("ok", JsonValue::Bool(slo_ok))
      .Set("violations", std::move(violations));

  JsonValue root = JsonValue::Object();
  root.Set("scenario", JsonValue::Str(spec.name));
  if (multihost.enabled) {
    // The distributed-update ledger: where the combiner's wall time
    // went. Only multi-host scenarios carry the key, so single-process
    // BENCH jsons keep their schema (and their baselines) unchanged.
    JsonValue fabric = JsonValue::Object();
    fabric.Set("shard_groups", JsonValue::Int(multihost.shard_groups))
        .Set("external_workers", JsonValue::Bool(multihost.external_workers))
        .Set("rpcs", JsonValue::Int(multihost.rpcs))
        .Set("rpc_failures", JsonValue::Int(multihost.rpc_failures))
        .Set("recoveries", JsonValue::Int(multihost.recoveries))
        .Set("updates_logged", JsonValue::Int(multihost.updates_logged))
        .Set("combiner_wait_us",
             JsonValue::Double(multihost.combiner_wait_us))
        .Set("worker_compute_us",
             JsonValue::Double(multihost.worker_compute_us))
        .Set("worker_compute_share",
             JsonValue::Double(multihost.worker_compute_share))
        .Set("transport_share",
             JsonValue::Double(multihost.transport_share));
    root.Set("multihost", std::move(fabric));
  }
  root.Set("params", std::move(params))
      .Set("env", std::move(env))
      .Set("requests", std::move(requests))
      .Set("latency_ms", std::move(latency))
      .Set("server_us", std::move(server))
      .Set("span_breakdown", std::move(spans))
      .Set("elapsed_s", JsonValue::Double(elapsed_s))
      .Set("throughput_qps", JsonValue::Double(throughput_qps))
      .Set("goodput_qps", JsonValue::Double(goodput_qps))
      .Set("cache_hit_rate", JsonValue::Double(cache_hit_rate))
      .Set("hard_rounds", JsonValue::Int(hard_rounds))
      .Set("budget", std::move(budget))
      .Set("slo", std::move(slo));
  return root.Dump();
}

Status WriteBenchJson(const ScenarioResult& result, const std::string& dir) {
  const std::string path = dir + "/BENCH_" + result.spec.name + ".json";
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::Internal("bench json: cannot open '" + path + "'");
  }
  const std::string body = result.ToJson();
  out.write(body.data(), static_cast<std::streamsize>(body.size()));
  out.flush();
  if (!out) {
    return Status::Internal("bench json: short write to '" + path + "'");
  }
  return Status::Ok();
}

Status WriteMetricsDumps(const ScenarioResult& result,
                         const std::string& dir) {
  const auto write = [&](const std::string& suffix,
                         const std::string& body) {
    const std::string path =
        dir + "/METRICS_" + result.spec.name + suffix;
    std::ofstream out(path, std::ios::binary);
    out.write(body.data(), static_cast<std::streamsize>(body.size()));
    out.flush();
    return out ? Status::Ok()
               : Status::Internal("metrics dump: cannot write '" + path +
                                  "'");
  };
  Status text = write(".txt", result.metrics_text);
  if (!text.ok()) return text;
  return write(".json", result.metrics_json);
}

}  // namespace workload
}  // namespace pmw
