// Deterministic workload generators for the scenario engine.
//
// YCSB-style zipfian key popularity (theta = 0 degenerates to exact
// uniform) and Poisson open-loop arrival schedules. Both draw their
// randomness straight from mt19937_64 output words instead of the
// standard <random> distributions, whose algorithms are implementation-
// defined: a trace built from a seed is bit-identical on every platform
// and standard library, which is what lets tests pin golden seed
// schedules and lets a checked-in trace file double as a regression
// artifact (tests/workload_test.cc).

#ifndef PMWCM_BENCH_WORKLOAD_GENERATOR_H_
#define PMWCM_BENCH_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <random>

namespace pmw {
namespace workload {

/// Uniform double in [0, 1) from one engine word — 53 mantissa bits,
/// platform-deterministic (no std::uniform_real_distribution).
inline double CanonicalUniform(std::mt19937_64& engine) {
  return static_cast<double>(engine() >> 11) * 0x1.0p-53;
}

/// YCSB-style zipfian generator over {0, ..., num_keys - 1}: key 0 is the
/// most popular, with P(key = i) proportional to 1 / (i + 1)^theta.
/// theta in [0, 1); theta = 0 is exactly uniform, theta -> 1 is maximally
/// skewed. Deterministic in (num_keys, theta, seed).
class ZipfianGenerator {
 public:
  ZipfianGenerator(int num_keys, double theta, uint64_t seed);

  /// The next key, by popularity rank (0 = hottest).
  int Next();

  int num_keys() const { return num_keys_; }
  double theta() const { return theta_; }

 private:
  static double Zeta(long long n, double theta);

  int num_keys_;
  double theta_;
  double zetan_;
  double alpha_;
  double eta_;
  double half_pow_theta_;
  std::mt19937_64 engine_;
};

/// Open-loop Poisson arrival schedule: exponential inter-arrival gaps at
/// `rate_per_sec`, accumulated into microsecond offsets from time zero.
/// Deterministic in (rate_per_sec, seed).
class PoissonArrivals {
 public:
  PoissonArrivals(double rate_per_sec, uint64_t seed);

  /// The next arrival's offset in microseconds (non-decreasing).
  uint64_t NextArrivalUs();

  double rate_per_sec() const { return rate_per_sec_; }

 private:
  double rate_per_sec_;
  double clock_us_ = 0.0;
  std::mt19937_64 engine_;
};

}  // namespace workload
}  // namespace pmw

#endif  // PMWCM_BENCH_WORKLOAD_GENERATOR_H_
