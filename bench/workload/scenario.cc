#include "workload/scenario.h"

namespace pmw {
namespace workload {

const char* PopularityName(ScenarioSpec::Popularity popularity) {
  switch (popularity) {
    case ScenarioSpec::Popularity::kUniform:
      return "uniform";
    case ScenarioSpec::Popularity::kZipfian:
      return "zipfian";
  }
  return "unknown";
}

const char* ArrivalName(ScenarioSpec::Arrival arrival) {
  switch (arrival) {
    case ScenarioSpec::Arrival::kClosedLoop:
      return "closed_loop";
    case ScenarioSpec::Arrival::kOpenLoopPoisson:
      return "open_loop_poisson";
  }
  return "unknown";
}

const char* DataShapeName(ScenarioSpec::DataShape shape) {
  switch (shape) {
    case ScenarioSpec::DataShape::kNearUniform:
      return "near_uniform";
    case ScenarioSpec::DataShape::kLogistic:
      return "logistic";
  }
  return "unknown";
}

const char* BackendName(ScenarioSpec::Backend backend) {
  switch (backend) {
    case ScenarioSpec::Backend::kDense:
      return "dense";
    case ScenarioSpec::Backend::kSparse:
      return "sparse";
  }
  return "unknown";
}

std::vector<ScenarioSpec> StandardScenarios() {
  std::vector<ScenarioSpec> scenarios;

  // Skewed repeat traffic from 8 closed-loop analysts: the regime the
  // cross-batch plan cache is built for, so the SLO insists the cache
  // actually carries the load.
  {
    ScenarioSpec spec;
    spec.name = "zipfian_closed";
    spec.popularity = ScenarioSpec::Popularity::kZipfian;
    spec.zipf_theta = 0.99;
    spec.arrival = ScenarioSpec::Arrival::kClosedLoop;
    spec.analysts = 8;
    spec.queries_per_analyst = 192;
    spec.seed = 101;
    spec.slo.max_p50_ms = 250.0;
    spec.slo.max_p99_ms = 1500.0;
    spec.slo.min_goodput_qps = 25.0;
    spec.slo.min_cache_hit_rate = 0.5;
    scenarios.push_back(spec);
  }

  // Open-loop Poisson arrivals at a fixed aggregate rate over a uniform
  // catalog: latency under an arrival process the server cannot slow
  // down (queue wait shows up in p99, not in a reduced request count).
  {
    ScenarioSpec spec;
    spec.name = "uniform_poisson_open";
    spec.popularity = ScenarioSpec::Popularity::kUniform;
    spec.arrival = ScenarioSpec::Arrival::kOpenLoopPoisson;
    spec.open_loop_qps = 2000.0;
    spec.analysts = 4;
    spec.queries_per_analyst = 256;
    spec.seed = 202;
    spec.slo.max_p99_ms = 2000.0;
    spec.slo.min_goodput_qps = 25.0;
    scenarios.push_back(spec);
  }

  // Hot working set rotating to a disjoint key set every 128 events, on
  // logistic (non-uniform) data so early queries fire hard rounds: epoch
  // bumps plus churn are the plan cache's adversarial mix, and the
  // privacy ledger records real spend.
  {
    ScenarioSpec spec;
    spec.name = "hotkey_churn";
    spec.popularity = ScenarioSpec::Popularity::kZipfian;
    spec.zipf_theta = 0.99;
    spec.hot_keys = 8;
    spec.hot_fraction = 0.9;
    spec.churn_every = 128;
    spec.data = ScenarioSpec::DataShape::kLogistic;
    spec.arrival = ScenarioSpec::Arrival::kClosedLoop;
    spec.analysts = 8;
    spec.queries_per_analyst = 192;
    spec.seed = 303;
    spec.slo.max_p50_ms = 250.0;
    spec.slo.max_p99_ms = 2000.0;
    spec.slo.min_goodput_qps = 25.0;
    scenarios.push_back(spec);
  }

  // Demand deliberately exceeds the per-analyst quota and every request
  // carries a tight deadline: the typed-rejection paths (kQuotaExceeded,
  // kDeadlineExpired) under load. Rejections are the point, so the SLO
  // allows them and judges goodput over what was admitted.
  {
    ScenarioSpec spec;
    spec.name = "quota_deadline_pressure";
    spec.popularity = ScenarioSpec::Popularity::kUniform;
    spec.arrival = ScenarioSpec::Arrival::kClosedLoop;
    spec.analysts = 8;
    spec.queries_per_analyst = 192;
    spec.per_analyst_quota = 96;
    spec.deadline_us = 20000;
    spec.seed = 404;
    spec.slo.max_p99_ms = 1500.0;
    spec.slo.min_goodput_qps = 10.0;
    spec.slo.allow_rejections = true;
    scenarios.push_back(spec);
  }

  // |X| = 2^20 through the sparse hypothesis backend: the domain is 128x
  // the other scenarios' and a dense histogram would spend O(|X|) per
  // update and per compaction. Near-uniform data keeps the sparse vector
  // in its kBottom steady state (the regime where sparse serving must be
  // cheap), the small catalog + solver cap bound the unavoidable
  // O(|X| * dim) cold solves, and the cache SLO insists the plan cache
  // carries the steady state. Latency bounds are dominated by the cold
  // solves, hence the wide p99.
  {
    ScenarioSpec spec;
    spec.name = "huge_domain";
    spec.dim = 19;  // LabeledHypercubeUniverse: |X| = 2^(dim + 1) = 2^20
    spec.records = 50000;
    spec.catalog_queries = 6;
    spec.shards = 4;
    spec.backend = ScenarioSpec::Backend::kSparse;
    spec.solver_max_iters = 8;
    spec.alpha = 0.3;
    spec.popularity = ScenarioSpec::Popularity::kZipfian;
    spec.zipf_theta = 0.9;
    spec.arrival = ScenarioSpec::Arrival::kClosedLoop;
    spec.analysts = 4;
    spec.queries_per_analyst = 64;
    spec.seed = 505;
    spec.slo.max_p99_ms = 60000.0;
    spec.slo.min_goodput_qps = 1.0;
    spec.slo.min_cache_hit_rate = 0.5;
    scenarios.push_back(spec);
  }

  // The multi-host topology: 2 shard-group workers own the 4 shards'
  // MW phase work behind a cluster::Combiner, so every hard round pays
  // three RPC fan-outs (reweigh / partials / normalize) over localhost
  // TCP. Logistic data makes the early queries fire those hard rounds
  // for real, which is what populates the combiner's replay log and the
  // combiner-wait vs worker-compute span breakdown in the BENCH json.
  // The SLO gate insists distribution stays an implementation detail:
  // client latency and goodput bounds match the single-process
  // scenarios' order of magnitude.
  {
    ScenarioSpec spec;
    spec.name = "multihost";
    spec.shards = 4;
    spec.shard_groups = 2;
    spec.serve_threads = 2;
    // Tight accuracy so a healthy run of queries trip the sparse
    // vector: the point of the scenario is distributed updates, not a
    // cache-served steady state.
    spec.alpha = 0.05;
    spec.data = ScenarioSpec::DataShape::kLogistic;
    spec.popularity = ScenarioSpec::Popularity::kZipfian;
    spec.zipf_theta = 0.99;
    spec.arrival = ScenarioSpec::Arrival::kClosedLoop;
    spec.analysts = 4;
    spec.queries_per_analyst = 96;
    spec.seed = 606;
    spec.slo.max_p50_ms = 500.0;
    spec.slo.max_p99_ms = 5000.0;
    spec.slo.min_goodput_qps = 10.0;
    scenarios.push_back(spec);
  }

  return scenarios;
}

bool FindStandardScenario(const std::string& name, ScenarioSpec* spec) {
  for (ScenarioSpec& candidate : StandardScenarios()) {
    if (candidate.name == name) {
      if (spec != nullptr) *spec = candidate;
      return true;
    }
  }
  return false;
}

}  // namespace workload
}  // namespace pmw
