// Theorem 3.1 — the online sparse vector algorithm.
//
// The theorem promises: with n >= 256 S sqrt(T log(2/delta)) log(4k/beta) /
// (eps alpha), every query with q(D) >= alpha answers kTop and every query
// with q(D) <= alpha/2 answers kBottom, with probability 1 - beta.
// Regenerated as the fraction of correct answers in a planted threshold
// game across n (as multiples of the theorem's n) and across T and k — the
// accuracy should switch on as n approaches the theorem's requirement
// (earlier, since the 256 is conservative).

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_util.h"
#include "dp/sparse_vector.h"

namespace pmw {
namespace {

struct GameOutcome {
  double correct_fraction = 0.0;
  bool all_correct = false;
};

GameOutcome PlayPlantedGame(double n, int T, long long k, double alpha,
                            const dp::PrivacyParams& privacy, uint64_t seed) {
  const double s = 1.0;
  dp::SparseVector::Options options;
  options.max_top_answers = T;
  options.alpha = alpha;
  options.sensitivity = 3.0 * s / n;
  options.privacy = privacy;
  dp::SparseVector sv(options, seed);

  Rng rng(seed ^ 0x5eedf00d);
  long long correct = 0, total = 0;
  int planted = 0;
  for (long long j = 0; j < k && !sv.halted(); ++j) {
    bool plant_high = planted < T - 1 && rng.Bernoulli(0.01);
    double value = plant_high ? 1.5 * alpha : 0.25 * alpha;
    auto answer = sv.Process(value);
    if (!answer.ok()) break;
    ++total;
    bool expect_top = plant_high;
    bool got_top = (*answer == dp::SparseVector::Answer::kTop);
    if (expect_top == got_top) ++correct;
    if (plant_high) ++planted;
  }
  GameOutcome outcome;
  outcome.correct_fraction =
      total > 0 ? static_cast<double>(correct) / total : 0.0;
  outcome.all_correct = (correct == total);
  return outcome;
}

void RunNSweep() {
  bench::PrintHeader(
      "Theorem 3.1: planted threshold game accuracy vs n (T=8, k=4000)");
  const int T = 8;
  const long long k = 4000;
  const double alpha = 0.1, beta = 0.05;
  dp::PrivacyParams privacy{1.0, 1e-6};
  double theorem_n =
      dp::SparseVector::TheoremRequiredN(1.0, T, k, alpha, privacy, beta);
  std::printf("theorem n (256-constant bound): %.0f\n", theorem_n);

  TablePrinter table({"n / theorem n", "n", "correct fraction (20 runs)",
                      "runs fully correct"});
  for (double factor : {0.02, 0.05, 0.1, 0.25, 0.5, 1.0}) {
    double n = factor * theorem_n;
    RunningStats fraction;
    int perfect = 0;
    for (int run = 0; run < 20; ++run) {
      GameOutcome outcome = PlayPlantedGame(n, T, k, alpha, privacy,
                                            7000 + run);
      fraction.Add(outcome.correct_fraction);
      if (outcome.all_correct) ++perfect;
    }
    table.AddRow({TablePrinter::Fmt(factor, 2),
                  TablePrinter::FmtInt(static_cast<long long>(n)),
                  TablePrinter::Fmt(fraction.mean()),
                  TablePrinter::FmtInt(perfect) + "/20"});
  }
  table.Print();
}

void RunTSweep() {
  bench::PrintHeader(
      "Theorem 3.1: required n grows like sqrt(T) (fixed k, alpha)");
  TablePrinter table({"T", "theorem n", "smallest tested n fully correct"});
  const long long k = 2000;
  const double alpha = 0.1, beta = 0.05;
  dp::PrivacyParams privacy{1.0, 1e-6};
  for (int T : {2, 8, 32}) {
    double theorem_n =
        dp::SparseVector::TheoremRequiredN(1.0, T, k, alpha, privacy, beta);
    double smallest = -1.0;
    for (double factor : {0.01, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0}) {
      double n = factor * theorem_n;
      bool all_perfect = true;
      for (int run = 0; run < 10; ++run) {
        if (!PlayPlantedGame(n, T, k, alpha, privacy, 8000 + run)
                 .all_correct) {
          all_perfect = false;
          break;
        }
      }
      if (all_perfect) {
        smallest = n;
        break;
      }
    }
    table.AddRow({TablePrinter::FmtInt(T),
                  TablePrinter::FmtInt(static_cast<long long>(theorem_n)),
                  smallest > 0
                      ? TablePrinter::FmtInt(static_cast<long long>(smallest))
                      : "none tested"});
  }
  table.Print();
}

}  // namespace
}  // namespace pmw

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  pmw::RunNSweep();
  pmw::RunTSweep();
  return 0;
}
