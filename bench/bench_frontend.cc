// Sustained async throughput of the multi-analyst front-end
// (frontend::Dispatcher over the MPSC queue) versus the synchronous
// AnswerBatch baseline, on a hypothesis-heavy repeated-query workload —
// the regime the epoch-keyed cross-batch PlanCache is built for.
//
// Eight closed-loop analyst threads submit one query at a time
// (submit -> wait -> next), so the reported per-request latency is the
// honest end-to-end number: queue wait + batch coalescing + serving.
// p50/p99 come from the pooled per-request latencies (common/stats.h
// Quantile); ServeStats/RunningStats supply the moments. The synchronous
// baseline drives the same traffic through AnswerBatch directly, one
// batch at a time, with no queue in front.
//
// No PASS/FAIL throughput gate: the async front-end buys *concurrency*
// (many analysts, one writer) and cross-batch amortization, not
// single-stream speedup, and the dev container may have one core. The
// bench still fails loudly on correctness problems (serve errors, lost
// requests). ROADMAP records multicore numbers when available.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "api/catalog.h"
#include "api/client.h"
#include "api/endpoint.h"
#include "api/in_process_transport.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "data/binary_universe.h"
#include "data/generators.h"
#include "data/histogram.h"
#include "erm/nonprivate_oracle.h"
#include "frontend/dispatcher.h"
#include "frontend/plan_cache.h"
#include "frontend/quota_manager.h"
#include "losses/loss_family.h"
#include "serve/pmw_service.h"

namespace pmw {
namespace {

constexpr int kDim = 6;
constexpr int kRecords = 200000;
constexpr int kDistinctQueries = 96;
constexpr int kAnalysts = 8;
constexpr int kQueriesPerAnalyst = 192;
constexpr size_t kMaxBatch = 64;

core::PmwOptions Options() {
  core::PmwOptions options;
  options.alpha = 0.2;
  options.beta = 0.05;
  options.privacy = {2.0, 1e-6};
  options.max_queries = 4LL * kAnalysts * kQueriesPerAnalyst;
  options.override_updates = 32;
  return options;
}

serve::ServeOptions ServeConfig() {
  serve::ServeOptions serve_options;
  const unsigned cores = std::thread::hardware_concurrency();
  serve_options.num_threads =
      static_cast<int>(std::min(4u, cores > 0 ? cores : 1u));
  return serve_options;
}

struct BenchRow {
  std::string mode;
  double queries_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double cache_hit_rate = 0.0;
  long long errors = 0;
  long long served = 0;
};

/// Synchronous baseline: the same total traffic, served directly through
/// AnswerBatch in kMaxBatch-sized batches from one thread.
BenchRow RunSynchronous(const data::Dataset& dataset,
                        const std::vector<convex::CmQuery>& traffic) {
  erm::NonPrivateOracle oracle;
  serve::PmwService service(&dataset, &oracle, Options(), /*seed=*/4321,
                            ServeConfig());
  BenchRow row;
  row.mode = "sync";
  std::vector<double> request_ms;
  request_ms.reserve(traffic.size());
  WallTimer total;
  for (size_t start = 0; start < traffic.size(); start += kMaxBatch) {
    size_t count = std::min(kMaxBatch, traffic.size() - start);
    WallTimer timer;
    std::vector<Result<convex::Vec>> results =
        service.AnswerBatch({&traffic[start], count});
    double elapsed = timer.ElapsedMillis();
    for (const auto& result : results) {
      if (!result.ok()) ++row.errors;
    }
    row.served += static_cast<long long>(results.size());
    // A request's latency in the sync model is its whole batch's.
    for (size_t j = 0; j < count; ++j) request_ms.push_back(elapsed);
  }
  double elapsed_s = total.ElapsedSeconds();
  row.queries_per_sec =
      elapsed_s > 0.0 ? static_cast<double>(traffic.size()) / elapsed_s : 0.0;
  row.p50_ms = Quantile(request_ms, 0.5);
  row.p99_ms = Quantile(request_ms, 0.99);
  row.cache_hit_rate = service.stats().CrossBatchHitRate();
  return row;
}

/// Async front-end: kAnalysts closed-loop threads through the
/// Dispatcher, with quotas and the cross-batch plan cache attached.
BenchRow RunAsync(const data::Dataset& dataset,
                  const std::vector<convex::CmQuery>& traffic) {
  erm::NonPrivateOracle oracle;
  serve::PmwService service(&dataset, &oracle, Options(), /*seed=*/4321,
                            ServeConfig());
  frontend::QuotaManager quota(&service, frontend::QuotaOptions{});
  frontend::PlanCache cache;
  frontend::DispatcherOptions options;
  options.queue_capacity = 1024;
  options.max_batch = kMaxBatch;
  options.max_wait = std::chrono::microseconds(200);
  frontend::Dispatcher dispatcher(&service, &quota, &cache, options);

  std::mutex merge_mutex;
  std::vector<double> latencies_ms;
  latencies_ms.reserve(static_cast<size_t>(kAnalysts) * kQueriesPerAnalyst);
  std::atomic<long long> errors{0};

  WallTimer total;
  std::vector<std::thread> analysts;
  analysts.reserve(kAnalysts);
  for (int a = 0; a < kAnalysts; ++a) {
    analysts.emplace_back([a, &dispatcher, &traffic, &merge_mutex,
                           &latencies_ms, &errors] {
      frontend::AnalystSession session(&dispatcher,
                                       "analyst-" + std::to_string(a));
      std::vector<double> local_ms;
      local_ms.reserve(kQueriesPerAnalyst);
      for (int j = 0; j < kQueriesPerAnalyst; ++j) {
        const convex::CmQuery& query =
            traffic[static_cast<size_t>(a * kQueriesPerAnalyst + j) %
                    traffic.size()];
        WallTimer timer;
        Result<convex::Vec> answer = session.Submit(query).get().answer;
        local_ms.push_back(timer.ElapsedMillis());
        if (!answer.ok()) errors.fetch_add(1, std::memory_order_relaxed);
      }
      std::lock_guard<std::mutex> lock(merge_mutex);
      for (double ms : local_ms) latencies_ms.push_back(ms);
    });
  }
  for (std::thread& t : analysts) t.join();
  double elapsed_s = total.ElapsedSeconds();
  dispatcher.Shutdown();

  BenchRow row;
  row.mode = "async-8";
  row.served = static_cast<long long>(latencies_ms.size());
  row.queries_per_sec =
      elapsed_s > 0.0 ? static_cast<double>(latencies_ms.size()) / elapsed_s
                      : 0.0;
  row.p50_ms = Quantile(latencies_ms, 0.5);
  row.p99_ms = Quantile(latencies_ms, 0.99);
  row.cache_hit_rate = service.stats().CrossBatchHitRate();
  row.errors = errors.load();

  frontend::DispatcherStats dstats = dispatcher.stats();
  std::printf("async serve stats:\n%s\n", service.stats().Report().c_str());
  std::printf(
      "dispatcher: submitted=%lld admitted=%lld batches=%lld "
      "batch_fill=%s\n",
      dstats.submitted, dstats.admitted, dstats.batches,
      dstats.batch_fill.Summary().c_str());
  return row;
}

/// api::Client over the zero-copy in-process transport — the same
/// closed-loop traffic as RunAsync but through the full protocol layer
/// (catalog resolution, envelope assembly, budget views). The acceptance
/// gate: within 10% of RunAsync's q/s, i.e. the public front door costs
/// at most a tenth of the direct Dispatcher::Submit engine.
BenchRow RunApiInProcess(const data::Dataset& dataset,
                         const api::QueryCatalog& catalog,
                         const std::vector<std::string>& traffic_names) {
  erm::NonPrivateOracle oracle;
  api::ServerOptions server_options;
  server_options.mechanism = Options();
  server_options.serve = ServeConfig();
  server_options.dispatcher.queue_capacity = 1024;
  server_options.dispatcher.max_batch = kMaxBatch;
  server_options.dispatcher.max_wait = std::chrono::microseconds(200);
  api::ServerEndpoint endpoint(&dataset, &oracle, &catalog, server_options,
                               /*seed=*/4321);
  api::InProcessTransport transport(&endpoint);

  std::mutex merge_mutex;
  std::vector<double> latencies_ms;
  latencies_ms.reserve(static_cast<size_t>(kAnalysts) * kQueriesPerAnalyst);
  std::atomic<long long> errors{0};

  WallTimer total;
  std::vector<std::thread> analysts;
  analysts.reserve(kAnalysts);
  for (int a = 0; a < kAnalysts; ++a) {
    analysts.emplace_back([a, &transport, &traffic_names, &merge_mutex,
                           &latencies_ms, &errors] {
      api::Client client(&transport, "analyst-" + std::to_string(a));
      std::vector<double> local_ms;
      local_ms.reserve(kQueriesPerAnalyst);
      for (int j = 0; j < kQueriesPerAnalyst; ++j) {
        const std::string& name =
            traffic_names[static_cast<size_t>(a * kQueriesPerAnalyst + j) %
                          traffic_names.size()];
        WallTimer timer;
        api::AnswerEnvelope reply = client.Call(name);
        local_ms.push_back(timer.ElapsedMillis());
        if (!reply.ok()) errors.fetch_add(1, std::memory_order_relaxed);
      }
      std::lock_guard<std::mutex> lock(merge_mutex);
      for (double ms : local_ms) latencies_ms.push_back(ms);
    });
  }
  for (std::thread& t : analysts) t.join();
  double elapsed_s = total.ElapsedSeconds();
  endpoint.Shutdown();

  BenchRow row;
  row.mode = "api-inproc-8";
  row.served = static_cast<long long>(latencies_ms.size());
  row.queries_per_sec =
      elapsed_s > 0.0 ? static_cast<double>(latencies_ms.size()) / elapsed_s
                      : 0.0;
  row.p50_ms = Quantile(latencies_ms, 0.5);
  row.p99_ms = Quantile(latencies_ms, 0.99);
  row.cache_hit_rate = endpoint.service().stats().CrossBatchHitRate();
  row.errors = errors.load();
  std::printf("api endpoint stats:\n%s\n", endpoint.Report().c_str());
  return row;
}

int Main() {
  data::LabeledHypercubeUniverse universe(kDim);
  // Near-uniform data: the uniform initial hypothesis is already
  // accurate, so the sparse vector answers kBottom throughout — the
  // steady-state regime where preparation dominates and caching pays.
  data::Histogram uniform = data::Histogram::Uniform(universe.size());
  data::Dataset dataset = data::RoundedDataset(universe, uniform, kRecords);

  losses::LipschitzFamily family(kDim);
  Rng rng(99);
  std::vector<convex::CmQuery> pool =
      family.Generate(kDistinctQueries, &rng);
  std::vector<convex::CmQuery> traffic;
  const int total = kAnalysts * kQueriesPerAnalyst;
  traffic.reserve(static_cast<size_t>(total));
  for (int j = 0; j < total; ++j) {
    traffic.push_back(pool[static_cast<size_t>(j) % pool.size()]);
  }

  std::printf(
      "bench_frontend: |X|=%d, n=%d, analysts=%d, queries=%d "
      "(%d distinct), max_batch=%zu, serve_threads=%d, cores=%u\n",
      universe.size(), kRecords, kAnalysts, total, kDistinctQueries,
      kMaxBatch, ServeConfig().num_threads,
      std::thread::hardware_concurrency());

  // The api workload: the same traffic, expressed as catalog names. The
  // registered queries ARE the pool objects, so the serving layers see
  // pointer-identical queries in both modes.
  api::QueryCatalog catalog;
  std::vector<std::string> traffic_names;
  traffic_names.reserve(traffic.size());
  for (int j = 0; j < kDistinctQueries; ++j) {
    catalog.Register("q/" + std::to_string(j),
                     pool[static_cast<size_t>(j)]);
  }
  for (int j = 0; j < total; ++j) {
    traffic_names.push_back("q/" +
                            std::to_string(j % kDistinctQueries));
  }

  BenchRow sync_row = RunSynchronous(dataset, traffic);
  BenchRow async_row = RunAsync(dataset, traffic);
  BenchRow api_row = RunApiInProcess(dataset, catalog, traffic_names);

  TablePrinter table(
      {"mode", "queries/sec", "p50 ms", "p99 ms", "xb_hit_rate", "errors"});
  for (const BenchRow& row : {sync_row, async_row, api_row}) {
    table.AddRow({row.mode, TablePrinter::Fmt(row.queries_per_sec, 1),
                  TablePrinter::Fmt(row.p50_ms, 3),
                  TablePrinter::Fmt(row.p99_ms, 3),
                  TablePrinter::Fmt(row.cache_hit_rate, 3),
                  TablePrinter::FmtInt(row.errors)});
  }
  table.Print();

  // The api layer's overhead on the in-process transport, against the
  // direct Dispatcher::Submit engine driving identical traffic.
  const double overhead =
      async_row.queries_per_sec > 0.0
          ? 1.0 - api_row.queries_per_sec / async_row.queries_per_sec
          : 1.0;
  std::printf("api-layer overhead vs direct Dispatcher::Submit: %.1f%% "
              "(gate: <= 10%%)\n",
              100.0 * overhead);

  // Gates: every request answered in every mode, no errors, warm cache,
  // and the protocol layer within 10% of the raw engine's throughput.
  const bool ok = sync_row.errors == 0 && async_row.errors == 0 &&
                  api_row.errors == 0 && sync_row.served == total &&
                  async_row.served == total && api_row.served == total &&
                  async_row.cache_hit_rate > 0.0 &&
                  api_row.cache_hit_rate > 0.0 && overhead <= 0.10;
  std::printf(ok ? "RESULT: PASS\n"
                 : "RESULT: FAIL (lost requests, errors, cold cache, or "
                   "api overhead > 10%%)\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace pmw

int main() { return pmw::Main(); }
