// Front-door serving bench: the multi-analyst closed-loop workload
// driven entirely through api::Client / api::ServerEndpoint (the
// workload runner) — per-call, batched wire calls, and the
// verify-codec byte path, side by side.
//
// Since PR 6 this bench includes only workload/ headers: all traffic
// crosses the public protocol (catalog resolution, envelope assembly,
// budget views), never frontend::Dispatcher or serve::PmwService
// directly — the scenario runner IS the only engine. The former direct
// Dispatcher::Submit and raw AnswerBatch baselines required exactly the
// reach-ins this PR deletes; what remains gated here is correctness
// (every request answered, zero errors, warm plan cache) plus the
// protocol-layer comparison that stays observable from outside: the
// verify-codec mode (every frame encoded + decoded, the socket
// transport's byte path) versus the zero-copy loopback.
//
// Eight closed-loop analysts, one query per call (submit -> wait ->
// next), so the reported latency is honest end-to-end: queue wait +
// batch coalescing + serving — now read from ServingMeta's
// queue_wait_us/serve_us split rather than inferred. No throughput
// gate: the front-end buys concurrency, not single-stream speedup, and
// the dev container may have one core. ROADMAP records multicore
// numbers.

#include <cstdio>
#include <string>
#include <vector>

#include "workload/runner.h"
#include "workload/scenario.h"

namespace pmw {
namespace {

workload::ScenarioSpec BaseSpec() {
  workload::ScenarioSpec spec;
  spec.dim = 6;
  spec.records = 200000;
  spec.catalog_queries = 96;
  spec.popularity = workload::ScenarioSpec::Popularity::kUniform;
  spec.arrival = workload::ScenarioSpec::Arrival::kClosedLoop;
  spec.analysts = 8;
  spec.queries_per_analyst = 192;
  spec.seed = 99;
  return spec;
}

int Main() {
  const long long total = BaseSpec().total_events();
  std::printf(
      "bench_frontend: dim=%d, n=%d, analysts=%d, queries=%lld "
      "(%d distinct), max_batch=%zu, serve_threads=%d\n",
      BaseSpec().dim, BaseSpec().records, BaseSpec().analysts, total,
      BaseSpec().catalog_queries, BaseSpec().max_batch,
      workload::ResolveServeThreads(BaseSpec()));

  // Three front-door modes over identical traffic.
  workload::ScenarioSpec per_call = BaseSpec();
  per_call.name = "api-call-8";

  workload::ScenarioSpec batched = BaseSpec();
  batched.name = "api-batch64-8";
  batched.batch_size = 64;

  workload::ScenarioSpec codec = BaseSpec();
  codec.name = "api-codec-8";

  struct Row {
    workload::ScenarioResult result;
  };
  std::vector<Row> rows;
  rows.push_back({workload::RunScenario(per_call, workload::RunOptions{})});
  rows.push_back({workload::RunScenario(batched, workload::RunOptions{})});
  workload::RunOptions verify;
  verify.verify_codec = true;
  rows.push_back({workload::RunScenario(codec, verify)});

  std::printf("%-14s %12s %9s %9s %10s %10s %9s %7s\n", "mode",
              "queries/sec", "p50 ms", "p99 ms", "qwait50 us",
              "serve50 us", "hit_rate", "errors");
  for (const Row& row : rows) {
    const workload::ScenarioResult& r = row.result;
    std::printf("%-14s %12.1f %9.3f %9.3f %10.1f %10.1f %9.3f %7lld\n",
                r.spec.name.c_str(), r.goodput_qps, r.p50_ms, r.p99_ms,
                r.queue_wait_p50_us, r.serve_p50_us, r.cache_hit_rate,
                r.other_errors);
  }

  // The protocol's codec overhead, observable without any reach-in:
  // identical traffic with every frame round-tripped through the binary
  // codec versus the zero-copy loopback. Informational (single-stream
  // throughput is noisy on small containers); the gate is correctness.
  const double base_qps = rows[0].result.goodput_qps;
  const double codec_qps = rows[2].result.goodput_qps;
  if (base_qps > 0.0 && codec_qps > 0.0) {
    std::printf("codec byte-path overhead vs zero-copy loopback: %.1f%%\n",
                100.0 * (1.0 - codec_qps / base_qps));
  }

  bool ok = true;
  for (const Row& row : rows) {
    const workload::ScenarioResult& r = row.result;
    ok = ok && r.issued == total && r.ok == total &&
         r.other_errors == 0 && r.cache_hit_rate > 0.0;
  }
  std::printf(ok ? "RESULT: PASS\n"
                 : "RESULT: FAIL (lost requests, errors, or cold cache)\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace pmw

int main() { return pmw::Main(); }
