// Section 4.1 — when does PMW beat per-query composition?
//
// The paper: answering k queries via composition needs ~sqrt(k) times the
// single-query dataset; PMW needs ~ S sqrt(log|X|) log k / alpha times.
// PMW is the better algorithm once sqrt(k) >> S sqrt(log|X|) log k /
// alpha. Regenerated as (a) the theory crossover point from the explicit
// bounds, and (b) a measured crossover: the same workload answered by both
// mechanisms across k at fixed n, reporting who wins each k.

#include <benchmark/benchmark.h>

#include "analysis/bounds.h"
#include "bench_util.h"
#include "erm/noisy_gradient_oracle.h"

namespace pmw {
namespace {

void TheoryCrossover() {
  bench::PrintHeader(
      "Section 4.1: theory crossover (explicit-constant bounds)");
  TablePrinter table({"alpha", "single-query n", "crossover k (bounds)"});
  for (double alpha : {0.3, 0.1, 0.03}) {
    analysis::BoundParams p;
    p.alpha = alpha;
    p.dim = 4;
    p.log_universe = 5.0 * std::log(2.0);
    p.privacy = {1.0, 1e-6};
    p.scale = 2.0;
    double single = analysis::LipschitzSingleQueryN(p);
    double k_star = analysis::CrossoverK(p, single);
    table.AddRow({TablePrinter::Fmt(alpha, 2), TablePrinter::FmtSci(single),
                  k_star > 0 ? TablePrinter::FmtSci(k_star) : "none"});
  }
  table.Print();
  std::printf(
      "(the explicit 4096/256 constants push the worst-case crossover far "
      "out; the measured crossover below happens at practical k.)\n");
}

void MeasuredCrossover() {
  bench::PrintHeader(
      "Section 4.1: measured crossover, PMW vs composition (d=4, n=60000)");
  TablePrinter table({"k", "pmw maxerr", "composition maxerr", "winner"});
  const int d = 4;
  const double alpha = 0.15;
  const int n = 60000;
  bench::Workbench wb(d, n, 70);
  for (int k : {4, 16, 64, 256, 1024}) {
    losses::LipschitzFamily family_pmw(d);
    losses::LipschitzFamily family_comp(d);
    erm::NoisyGradientOracle oracle;
    core::PmwOptions options =
        bench::PracticalPmwOptions(alpha, family_pmw.scale(), k, 20);
    core::PmwCm pmw(&wb.dataset, &oracle, options, 7000 + k);
    core::PmwAnswerer answerer(&pmw);
    core::GameResult pmw_result =
        bench::PlayFamilyGame(&answerer, &family_pmw, k, wb, 7100 + k);

    core::CompositionBaseline::Options comp_options;
    comp_options.privacy = {1.0, 1e-6};
    comp_options.max_queries = k;
    core::CompositionBaseline composition(&wb.dataset, &oracle, comp_options,
                                          7200 + k);
    core::GameResult comp_result =
        bench::PlayFamilyGame(&composition, &family_comp, k, wb, 7100 + k);

    const char* winner =
        pmw_result.MaxError() < comp_result.MaxError() ? "pmw" : "composition";
    table.AddRow({TablePrinter::FmtInt(k),
                  TablePrinter::Fmt(pmw_result.MaxError()),
                  TablePrinter::Fmt(comp_result.MaxError()), winner});
  }
  table.Print();
  std::printf(
      "shape check: composition wins at small k, PMW wins from some "
      "crossover k onward.\n");
}

}  // namespace
}  // namespace pmw

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  pmw::TheoryCrossover();
  pmw::MeasuredCrossover();
  return 0;
}
