// The unified scenario runner: drives the canonical workload matrix
// (bench/workload/scenario.cc) through api::Client / api::ServerEndpoint
// and emits one BENCH_<scenario>.json artifact per scenario — scenario
// params, environment (cores/threads/shards), client-observed p50/p99,
// throughput and goodput, the server-side queue-wait/serve split read
// from ServingMeta, cache hit rate, and the privacy budget spent.
//
// Exit status is the SLO verdict: 0 when every scenario met its
// objectives, 1 otherwise (nightly CI fails on it). All traffic goes
// through the api front door — this file includes workload/ headers
// only, and the workload runner itself talks exclusively to
// api::Client / api::ServerEndpoint.
//
//   bench_scenarios [--out-dir=DIR] [--scenario=NAME] [--verify-codec]
//                   [--record-trace=DIR] [--list]
//
// --record-trace writes each scenario's expanded request stream as a
// replayable trace file (workload/trace.h) next to the json artifacts.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "workload/runner.h"
#include "workload/scenario.h"
#include "workload/trace.h"

namespace pmw {
namespace {

struct Args {
  std::string out_dir = ".";
  std::string only_scenario;
  std::string trace_dir;
  bool verify_codec = false;
  bool list = false;
  bool ok = true;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out-dir=", 0) == 0) {
      args.out_dir = arg.substr(std::strlen("--out-dir="));
    } else if (arg.rfind("--scenario=", 0) == 0) {
      args.only_scenario = arg.substr(std::strlen("--scenario="));
    } else if (arg.rfind("--record-trace=", 0) == 0) {
      args.trace_dir = arg.substr(std::strlen("--record-trace="));
    } else if (arg == "--verify-codec") {
      args.verify_codec = true;
    } else if (arg == "--list") {
      args.list = true;
    } else {
      std::fprintf(stderr, "bench_scenarios: unknown flag '%s'\n",
                   arg.c_str());
      args.ok = false;
    }
  }
  return args;
}

int Main(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  if (!args.ok) return 2;

  std::vector<workload::ScenarioSpec> scenarios =
      workload::StandardScenarios();
  if (args.list) {
    for (const workload::ScenarioSpec& spec : scenarios) {
      std::printf("%s\n", spec.name.c_str());
    }
    return 0;
  }
  if (!args.only_scenario.empty()) {
    workload::ScenarioSpec spec;
    if (!workload::FindStandardScenario(args.only_scenario, &spec)) {
      std::fprintf(stderr, "bench_scenarios: unknown scenario '%s'\n",
                   args.only_scenario.c_str());
      return 2;
    }
    scenarios = {spec};
  }

  workload::RunOptions options;
  options.verify_codec = args.verify_codec;

  bool all_ok = true;
  std::printf(
      "%-26s %10s %10s %10s %10s %8s %8s  %s\n", "scenario", "p50_ms",
      "p99_ms", "goodput", "hit_rate", "ok", "rej", "slo");
  for (const workload::ScenarioSpec& spec : scenarios) {
    workload::ScenarioHarness harness(spec, options);
    const workload::Trace trace = harness.MakeTrace();
    if (!args.trace_dir.empty()) {
      const Status written = workload::WriteTraceFile(
          trace, args.trace_dir + "/TRACE_" + spec.name + ".txt");
      if (!written.ok()) {
        std::fprintf(stderr, "bench_scenarios: %s\n",
                     written.ToString().c_str());
        return 2;
      }
    }
    const workload::ScenarioResult result = harness.Run(trace);
    const Status wrote = workload::WriteBenchJson(result, args.out_dir);
    if (!wrote.ok()) {
      std::fprintf(stderr, "bench_scenarios: %s\n",
                   wrote.ToString().c_str());
      return 2;
    }
    const Status scraped =
        workload::WriteMetricsDumps(result, args.out_dir);
    if (!scraped.ok()) {
      std::fprintf(stderr, "bench_scenarios: %s\n",
                   scraped.ToString().c_str());
      return 2;
    }
    const long long rejections = result.quota_rejected +
                                 result.deadline_expired + result.halted;
    std::printf("%-26s %10.3f %10.3f %10.1f %10.3f %8lld %8lld  %s\n",
                spec.name.c_str(), result.p50_ms, result.p99_ms,
                result.goodput_qps, result.cache_hit_rate, result.ok,
                rejections, result.slo_ok ? "PASS" : "FAIL");
    const workload::ScenarioResult::SpanBreakdown& tail =
        result.span_breakdown;
    if (tail.tail_requests > 0) {
      std::printf(
          "  p99 tail (%lld req >= %.3f ms): queue %.0f%% prepare %.0f%% "
          "solve %.0f%% mw %.0f%% commit %.0f%% other %.0f%% "
          "(attributed %.0f%%)\n",
          tail.tail_requests, tail.threshold_ms, 100.0 * tail.queue,
          100.0 * tail.prepare, 100.0 * tail.solve, 100.0 * tail.mw,
          100.0 * tail.commit_other, 100.0 * tail.other,
          100.0 * tail.attributed);
    }
    for (const std::string& violation : result.slo_violations) {
      std::printf("  SLO violation: %s\n", violation.c_str());
    }
    all_ok = all_ok && result.slo_ok;
  }
  std::printf(all_ok ? "RESULT: PASS\n" : "RESULT: FAIL (SLO breach)\n");
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace pmw

int main(int argc, char** argv) { return pmw::Main(argc, argv); }
