// Throughput of the batched serving path (serve::PmwService::AnswerBatch)
// versus batch size, on the bottom-answer (cache-hit) path: a near-uniform
// dataset keeps the hypothesis accurate, so every query is answered from
// the public histogram with no privacy cost. This is the steady-state
// serving regime — updates are bounded by T, so after warm-up all traffic
// is kBottom — and it is where batching pays: one hypothesis compaction
// pass per batch and one solve per distinct query per batch.
//
// The workload cycles a pool of 8 distinct queries (many clients asking
// overlapping questions). The acceptance gate for the serving layer is
// >= 2x queries/sec at batch size 256 over batch size 1.

#include <cstdio>
#include <vector>

#include "common/random.h"
#include "common/stats.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "data/binary_universe.h"
#include "data/generators.h"
#include "data/histogram.h"
#include "erm/nonprivate_oracle.h"
#include "losses/loss_family.h"
#include "serve/pmw_service.h"

namespace pmw {
namespace {

constexpr int kDim = 6;
constexpr int kRecords = 200000;
constexpr int kPoolSize = 8;
constexpr int kTotalQueries = 1024;

struct BenchResult {
  double queries_per_sec = 0.0;
  long long cache_hits = 0;
  long long updates = 0;
};

BenchResult RunAtBatchSize(const data::Dataset& dataset,
                           const std::vector<convex::CmQuery>& workload,
                           int batch_size) {
  erm::NonPrivateOracle oracle;
  core::PmwOptions options;
  options.alpha = 0.2;
  options.beta = 0.05;
  options.privacy = {2.0, 1e-6};
  options.max_queries = 2 * kTotalQueries;
  options.override_updates = 32;
  serve::PmwService service(&dataset, &oracle, options, /*seed=*/1234);

  WallTimer timer;
  for (size_t start = 0; start < workload.size();
       start += static_cast<size_t>(batch_size)) {
    size_t count = std::min(static_cast<size_t>(batch_size),
                            workload.size() - start);
    std::span<const convex::CmQuery> batch(&workload[start], count);
    std::vector<Result<convex::Vec>> results = service.AnswerBatch(batch);
    for (const auto& result : results) {
      if (!result.ok()) {
        std::fprintf(stderr, "serve error: %s\n",
                     result.status().ToString().c_str());
        return {};
      }
    }
  }
  double elapsed = timer.ElapsedSeconds();

  BenchResult result;
  result.queries_per_sec =
      elapsed > 0.0 ? static_cast<double>(workload.size()) / elapsed : 0.0;
  result.cache_hits = service.stats().prepare_cache_hits;
  result.updates = service.stats().updates;
  return result;
}

int Main() {
  data::LabeledHypercubeUniverse universe(kDim);
  // Near-uniform data: the uniform initial hypothesis is already accurate,
  // so the sparse vector answers kBottom throughout (the cache-hit path).
  data::Histogram uniform = data::Histogram::Uniform(universe.size());
  data::Dataset dataset = data::RoundedDataset(universe, uniform, kRecords);

  losses::LipschitzFamily family(kDim);
  Rng rng(99);
  std::vector<convex::CmQuery> pool = family.Generate(kPoolSize, &rng);
  std::vector<convex::CmQuery> workload;
  workload.reserve(kTotalQueries);
  for (int j = 0; j < kTotalQueries; ++j) {
    workload.push_back(pool[j % kPoolSize]);
  }

  std::printf("bench_serve_batch: |X|=%d, n=%d, pool=%d, queries=%d\n",
              universe.size(), kRecords, kPoolSize, kTotalQueries);

  TablePrinter table({"batch size", "queries/sec", "cache hits", "updates"});
  std::vector<int> batch_sizes = {1, 16, 256};
  std::vector<double> qps;
  for (int batch_size : batch_sizes) {
    BenchResult result = RunAtBatchSize(dataset, workload, batch_size);
    qps.push_back(result.queries_per_sec);
    table.AddRow({std::to_string(batch_size),
                  std::to_string(result.queries_per_sec),
                  std::to_string(result.cache_hits),
                  std::to_string(result.updates)});
  }
  table.Print();

  double speedup = qps.front() > 0.0 ? qps.back() / qps.front() : 0.0;
  std::printf("speedup at batch=256 vs batch=1: %.2fx (gate: >= 2x)\n",
              speedup);
  std::printf(speedup >= 2.0 ? "RESULT: PASS\n" : "RESULT: FAIL\n");
  return speedup >= 2.0 ? 0 : 1;
}

}  // namespace
}  // namespace pmw

int main() { return pmw::Main(); }
