// Lemma 3.4 — the bounded-regret property of the multiplicative weights
// update: for every payoff sequence u_1..u_T in [-S, S]^X,
//   (1/T) sum_t <u_t, D_hat_t - D>  <=  2 S sqrt(log|X| / T).
// Regenerated with the greedy adversary (the worst payoff each round) over
// sweeps of T and |X|; the measured/bound ratio must stay <= 1 and the
// bound's sqrt(log|X|/T) shape should be visible in the measured column.

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_util.h"
#include "data/histogram.h"

namespace pmw {
namespace {

double GreedyAdversaryRegret(int universe_size, int T, double s,
                             uint64_t seed) {
  Rng rng(seed);
  std::vector<double> w(universe_size);
  for (double& x : w) x = rng.Exponential(1.0);
  data::Histogram target = data::Histogram::FromWeights(std::move(w));
  data::Histogram hypothesis = data::Histogram::Uniform(universe_size);
  const double eta = std::sqrt(std::log((double)universe_size) / T);

  double total = 0.0;
  for (int t = 0; t < T; ++t) {
    std::vector<double> u(universe_size);
    double payoff = 0.0;
    for (int x = 0; x < universe_size; ++x) {
      u[x] = s * ((hypothesis[x] >= target[x]) ? 1.0 : -1.0);
      payoff += u[x] * (hypothesis[x] - target[x]);
    }
    total += payoff;
    hypothesis = hypothesis.MultiplicativeUpdate(u, -eta / s);
  }
  return total / T;
}

void RunSweep() {
  bench::PrintHeader(
      "Lemma 3.4: measured greedy-adversary regret vs the bound "
      "2 S sqrt(log|X|/T)");
  TablePrinter table({"|X|", "T", "measured avg payoff", "bound",
                      "measured/bound"});
  const double s = 2.0;
  for (int log_size : {4, 8, 12}) {
    int size = 1 << log_size;
    for (int T : {16, 64, 256, 1024}) {
      RunningStats measured;
      for (int run = 0; run < 5; ++run) {
        measured.Add(GreedyAdversaryRegret(size, T, s, 9000 + run));
      }
      double bound = 2.0 * s * std::sqrt(std::log((double)size) / T);
      table.AddRow({TablePrinter::FmtInt(size), TablePrinter::FmtInt(T),
                    TablePrinter::Fmt(measured.mean()),
                    TablePrinter::Fmt(bound),
                    TablePrinter::Fmt(measured.mean() / bound, 3)});
    }
  }
  table.Print();
  std::printf(
      "shape check: every ratio <= 1, and measured regret falls like "
      "1/sqrt(T) and rises like sqrt(log|X|).\n");
}

}  // namespace
}  // namespace pmw

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  pmw::RunSweep();
  return 0;
}
