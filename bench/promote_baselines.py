#!/usr/bin/env python3
"""Promote BENCH_*.json artifacts into the checked-in baseline tree.

Stdlib only. Feed it the artifact directory downloaded from a green
nightly run (or a local --out-dir/--json-dir); each file is copied into
bench/baselines/cores-<N>/ where N is the file's recorded `env.cores`,
which is the bucketing check_regression.py reads back. Files that carry
a failing `slo` verdict are refused -- a breached run must never become
the bar future runs are judged against -- unless --allow-slo-breach is
given (useful when promoting a deliberately loosened scenario).

Typical flow:

  ./build/bench_scenarios --out-dir /tmp/bench
  ./build/bench_serve_parallel --json-dir /tmp/bench
  python3 bench/promote_baselines.py /tmp/bench
  git add bench/baselines && git commit
"""

import argparse
import json
import pathlib
import shutil
import sys


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "source", nargs="+", help="directories holding BENCH_*.json files"
    )
    parser.add_argument(
        "--baseline-dir",
        default=str(pathlib.Path(__file__).resolve().parent / "baselines"),
        help="baseline tree to promote into (default: bench/baselines)",
    )
    parser.add_argument(
        "--allow-slo-breach",
        action="store_true",
        help="promote files even when their recorded SLO verdict failed",
    )
    args = parser.parse_args()

    baseline_dir = pathlib.Path(args.baseline_dir)
    promoted = 0
    errors = []
    for source in args.source:
        files = sorted(pathlib.Path(source).glob("BENCH_*.json"))
        if not files:
            errors.append(f"{source}: no BENCH_*.json files")
            continue
        for path in files:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
            cores = doc.get("env", {}).get("cores")
            if not isinstance(cores, int) or cores < 1:
                errors.append(f"{path.name}: missing or bad env.cores")
                continue
            slo = doc.get("slo")
            if (
                slo is not None
                and not slo.get("ok", False)
                and not args.allow_slo_breach
            ):
                errors.append(
                    f"{path.name}: SLO verdict failed -- refusing to make "
                    "a breached run the baseline (--allow-slo-breach to "
                    "override)"
                )
                continue
            dest_dir = baseline_dir / f"cores-{cores}"
            dest_dir.mkdir(parents=True, exist_ok=True)
            dest = dest_dir / path.name
            shutil.copyfile(path, dest)
            print(f"promoted {path.name} -> {dest}")
            promoted += 1
            # The scenario's metrics dump (histogram p99 baselines) rides
            # along when present; it shares the BENCH file's cores bucket.
            scenario = doc.get("scenario")
            if scenario:
                metrics = path.parent / f"METRICS_{scenario}.json"
                if metrics.exists():
                    metrics_dest = dest_dir / metrics.name
                    shutil.copyfile(metrics, metrics_dest)
                    print(f"promoted {metrics.name} -> {metrics_dest}")
                    promoted += 1

    if errors:
        print("\nFAIL:")
        for error in errors:
            print(f"  {error}")
        return 1
    print(f"\npromoted {promoted} baseline file(s) into {baseline_dir}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
