// Table 1, row 3 — unconstrained generalized linear models (UGLM).
//
// Paper columns:   single query n = O~(1/alpha^2)            [JT14]
//                  k queries   n = O~(max{sqrt(log|X|)/alpha^3,
//                                         log k sqrt(log|X|)/alpha^2})
// The defining claim is *dimension independence*: unlike the generic
// Lipschitz route (row 2, sqrt(d)), the GLM oracle's error must stay flat
// as d grows. Regenerated as (a) single-query error of the JT14-style
// oracle vs the generic BST14 oracle across d at a tight budget, and
// (b) k-query PMW-CM accuracy with the GLM oracle.

#include <benchmark/benchmark.h>

#include "analysis/bounds.h"
#include "bench_util.h"
#include "erm/glm_oracle.h"
#include "erm/noisy_gradient_oracle.h"

namespace pmw {
namespace {

void RunSingleQueryDimensionSweep() {
  bench::PrintHeader(
      "Table 1 row 3 (UGLM): single-query error vs d at eps=0.15 "
      "(glm oracle flat, generic oracle grows ~sqrt(d))");
  TablePrinter table({"d", "paper n(1) glm", "paper n(1) generic",
                      "glm(jt14) err", "noisy-gd(bst14) err"});
  const double alpha = 0.1;
  for (int d : {2, 4, 6, 8}) {
    analysis::BoundParams p;
    p.alpha = alpha;
    p.dim = d;
    p.privacy = {1.0, 1e-6};

    const int n = 30000;
    bench::Workbench wb(d, n, 40 + d);
    losses::GlmFamily family(d);
    erm::GlmOracle glm_oracle;
    erm::NoisyGradientOracle generic_oracle;

    RunningStats glm_err, generic_err;
    Rng rng(4000 + d);
    for (int trial = 0; trial < 10; ++trial) {
      convex::CmQuery query = family.Next(&rng);
      erm::OracleContext context;
      context.privacy = {0.15, 1e-6};
      context.target_alpha = alpha;
      Rng oracle_rng(5000 + 10 * d + trial);
      auto glm_answer = glm_oracle.Solve(query, wb.dataset, context,
                                         &oracle_rng);
      auto generic_answer = generic_oracle.Solve(query, wb.dataset, context,
                                                 &oracle_rng);
      if (glm_answer.ok()) {
        glm_err.Add(wb.error_oracle->AnswerError(query, wb.data_hist,
                                                 *glm_answer));
      }
      if (generic_answer.ok()) {
        generic_err.Add(wb.error_oracle->AnswerError(query, wb.data_hist,
                                                     *generic_answer));
      }
    }
    table.AddRow({TablePrinter::FmtInt(d),
                  TablePrinter::FmtSci(analysis::GlmSingleQueryN(p)),
                  TablePrinter::FmtSci(analysis::LipschitzSingleQueryN(p)),
                  TablePrinter::Fmt(glm_err.mean()),
                  TablePrinter::Fmt(generic_err.mean())});
  }
  table.Print();
}

void RunKQuerySweep() {
  bench::PrintHeader("Table 1 row 3: k GLM queries through Figure 3");
  TablePrinter table({"k", "paper n(k)", "pmw maxerr", "pmw mean err",
                      "updates"});
  const int d = 4;
  const double alpha = 0.15;
  const int n = 120000;
  bench::Workbench wb(d, n, 41);
  for (int k : {50, 200, 800}) {
    analysis::BoundParams p;
    p.alpha = alpha;
    p.k = k;
    p.log_universe = (d + 1) * std::log(2.0);
    p.privacy = {1.0, 1e-6};

    losses::GlmFamily family(d);
    erm::GlmOracle oracle;
    core::PmwOptions options =
        bench::PracticalPmwOptions(alpha, family.scale(), k, 20);
    core::PmwCm pmw(&wb.dataset, &oracle, options, 4200 + k);
    core::PmwAnswerer answerer(&pmw);
    core::GameResult result =
        bench::PlayFamilyGame(&answerer, &family, k, wb, 4300 + k);
    table.AddRow({TablePrinter::FmtInt(k),
                  TablePrinter::FmtSci(analysis::GlmKQueriesN(p)),
                  TablePrinter::Fmt(result.MaxError()),
                  TablePrinter::Fmt(result.MeanError()),
                  TablePrinter::FmtInt(pmw.update_count())});
  }
  table.Print();
}

}  // namespace
}  // namespace pmw

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  pmw::RunSingleQueryDimensionSweep();
  pmw::RunKQuerySweep();
  return 0;
}
