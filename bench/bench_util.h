// Shared scaffolding for the benchmark binaries: standard workloads,
// mechanisms wired to practical parameters, and error measurement.
//
// Every binary prints paper-style tables (family | parameters | paper-bound
// column | measured column). Absolute constants are ours; the reproduction
// target is the *shape*: who wins, scaling exponents, crossovers
// (EXPERIMENTS.md records the comparison).

#ifndef PMWCM_BENCH_BENCH_UTIL_H_
#define PMWCM_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>

#include "common/random.h"
#include "common/stats.h"
#include "common/table_printer.h"
#include "core/accuracy_game.h"
#include "core/analysts.h"
#include "core/composition_baseline.h"
#include "core/error.h"
#include "core/pmw_answerer.h"
#include "core/pmw_cm.h"
#include "data/binary_universe.h"
#include "data/generators.h"
#include "losses/loss_family.h"

namespace pmw {
namespace bench {

/// A standard experiment environment: labeled d-cube universe with a
/// logistic ground-truth data distribution and an n-record dataset.
struct Workbench {
  std::unique_ptr<data::LabeledHypercubeUniverse> universe;
  data::Histogram distribution;
  data::Dataset dataset;
  data::Histogram data_hist;
  std::unique_ptr<core::ErrorOracle> error_oracle;

  Workbench(int dim, int n, uint64_t seed)
      : universe(std::make_unique<data::LabeledHypercubeUniverse>(dim)),
        distribution(MakeDistribution(*universe, dim, seed)),
        dataset(data::RoundedDataset(*universe, distribution, n)),
        data_hist(data::Histogram::FromDataset(dataset)),
        error_oracle(std::make_unique<core::ErrorOracle>(universe.get())) {}

  static data::Histogram MakeDistribution(
      const data::LabeledHypercubeUniverse& universe, int dim,
      uint64_t seed) {
    Rng rng(seed);
    std::vector<double> theta_star(dim);
    std::vector<double> biases(dim);
    for (int j = 0; j < dim; ++j) {
      theta_star[j] = rng.Uniform(-1.0, 1.0);
      biases[j] = rng.Uniform(0.3, 0.7);
    }
    return data::LogisticModelDistribution(universe, theta_star, biases,
                                           /*temperature=*/0.25);
  }
};

/// Runs the accuracy game with a family analyst; returns per-query errors.
inline core::GameResult PlayFamilyGame(core::QueryAnswerer* mechanism,
                                       losses::QueryFamily* family, int k,
                                       const Workbench& bench,
                                       uint64_t seed) {
  core::FamilyAnalyst analyst(family);
  Rng rng(seed);
  return core::RunAccuracyGame(mechanism, &analyst, k, *bench.error_oracle,
                               bench.data_hist, &rng);
}

/// Practical PMW options used across benches (the HLM12 regime: small T).
inline core::PmwOptions PracticalPmwOptions(double alpha, double scale,
                                            long long k, int updates) {
  core::PmwOptions options;
  options.alpha = alpha;
  options.beta = 0.05;
  options.privacy = {1.0, 1e-6};
  options.scale = scale;
  options.max_queries = k;
  options.override_updates = updates;
  return options;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace bench
}  // namespace pmw

#endif  // PMWCM_BENCH_BENCH_UTIL_H_
