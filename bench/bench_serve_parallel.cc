// Throughput of the sharded serving path (serve v2) versus thread count,
// on a hypothesis-heavy workload: a near-uniform dataset keeps the sparse
// vector answering kBottom, so per-query cost is dominated by preparation
// (two solves against the hypothesis snapshot) — exactly the
// embarrassingly parallel work the shard executor fans out. Queries are
// all distinct so shard-local dedup cannot mask the scaling.
//
// The acceptance gate for the concurrency substrate is >= 2.5x
// queries/sec at 4 threads over 1 thread. The gate needs hardware to
// scale on: with fewer than 4 cores the run still prints the table (the
// numbers are useful for spotting locking overhead) but exits SKIP
// instead of FAIL, since no scheduler can conjure parallel speedup out
// of one core. CI runs this on 4-vCPU runners.
//
// Transcript safety is asserted, not assumed: every configuration must
// produce the same bottom/update/error counts (same seed => same
// transcript; serve_parallel_test checks value-level identity).

#include <algorithm>
#include <cstdio>
#include <span>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "data/binary_universe.h"
#include "data/generators.h"
#include "data/histogram.h"
#include "erm/nonprivate_oracle.h"
#include "losses/loss_family.h"
#include "serve/pmw_service.h"

namespace pmw {
namespace {

constexpr int kDim = 6;
constexpr int kRecords = 200000;
constexpr int kTotalQueries = 768;
constexpr size_t kBatchSize = 256;

struct BenchResult {
  double queries_per_sec = 0.0;
  long long bottom = 0;
  long long updates = 0;
  long long errors = 0;
};

BenchResult RunAtThreads(const data::Dataset& dataset,
                         const std::vector<convex::CmQuery>& workload,
                         int num_threads) {
  erm::NonPrivateOracle oracle;
  core::PmwOptions options;
  options.alpha = 0.2;
  options.beta = 0.05;
  options.privacy = {2.0, 1e-6};
  options.max_queries = 2 * kTotalQueries;
  options.override_updates = 32;
  serve::ServeOptions serve_options;
  serve_options.num_threads = num_threads;
  serve::PmwService service(&dataset, &oracle, options, /*seed=*/1234,
                            serve_options);

  WallTimer timer;
  for (size_t start = 0; start < workload.size(); start += kBatchSize) {
    size_t count = std::min(kBatchSize, workload.size() - start);
    std::span<const convex::CmQuery> batch(&workload[start], count);
    std::vector<Result<convex::Vec>> results = service.AnswerBatch(batch);
    for (const auto& result : results) {
      if (!result.ok()) {
        std::fprintf(stderr, "serve error: %s\n",
                     result.status().ToString().c_str());
        return {};
      }
    }
  }
  double elapsed = timer.ElapsedSeconds();

  BenchResult result;
  result.queries_per_sec =
      elapsed > 0.0 ? static_cast<double>(workload.size()) / elapsed : 0.0;
  result.bottom = service.stats().bottom_answers;
  result.updates = service.stats().updates;
  result.errors = service.stats().errors;
  return result;
}

int Main() {
  data::LabeledHypercubeUniverse universe(kDim);
  // Near-uniform data: the uniform initial hypothesis is already accurate,
  // so the sparse vector answers kBottom throughout — the steady-state
  // regime where preparation is all the work there is.
  data::Histogram uniform = data::Histogram::Uniform(universe.size());
  data::Dataset dataset = data::RoundedDataset(universe, uniform, kRecords);

  // All-distinct queries: no dedup, every query costs two solves.
  losses::LipschitzFamily family(kDim);
  Rng rng(99);
  std::vector<convex::CmQuery> workload =
      family.Generate(kTotalQueries, &rng);

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf(
      "bench_serve_parallel: |X|=%d, n=%d, queries=%d (all distinct), "
      "batch=%zu, cores=%u\n",
      universe.size(), kRecords, kTotalQueries, kBatchSize, cores);

  TablePrinter table({"threads", "queries/sec", "bottom", "updates"});
  std::vector<int> thread_counts = {1, 2, 4, 8};
  std::vector<double> qps;
  BenchResult baseline;
  bool transcripts_agree = true;
  for (int threads : thread_counts) {
    BenchResult result = RunAtThreads(dataset, workload, threads);
    if (threads == 1) baseline = result;
    transcripts_agree = transcripts_agree &&
                        result.bottom == baseline.bottom &&
                        result.updates == baseline.updates &&
                        result.errors == baseline.errors;
    qps.push_back(result.queries_per_sec);
    table.AddRow({std::to_string(threads),
                  std::to_string(result.queries_per_sec),
                  std::to_string(result.bottom),
                  std::to_string(result.updates)});
  }
  table.Print();

  if (!transcripts_agree) {
    std::printf("RESULT: FAIL (transcript counters diverged across "
                "thread counts)\n");
    return 1;
  }

  // qps[2] is the 4-thread row.
  double speedup = qps[0] > 0.0 ? qps[2] / qps[0] : 0.0;
  std::printf("speedup at threads=4 vs threads=1: %.2fx (gate: >= 2.5x)\n",
              speedup);
  if (cores < 4) {
    std::printf(
        "RESULT: SKIP (only %u hardware core(s); the >= 2.5x gate needs 4)\n",
        cores);
    return 0;
  }
  std::printf(speedup >= 2.5 ? "RESULT: PASS\n" : "RESULT: FAIL\n");
  return speedup >= 2.5 ? 0 : 1;
}

}  // namespace
}  // namespace pmw

int main() { return pmw::Main(); }
