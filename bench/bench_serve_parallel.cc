// Two serving-layer scaling gates in one binary:
//
// 1. Prepare path (PR 2, default mode): throughput versus thread count
//    on a hypothesis-heavy workload — a near-uniform dataset keeps the
//    sparse vector answering kBottom, so per-query cost is dominated by
//    preparation (two solves against the hypothesis snapshot), the
//    embarrassingly parallel work the shard executor fans out. Gate:
//    >= 2.5x queries/sec at 4 threads over 1 thread.
//
// 2. MW-update path (PR 5, also via --shards=K): the domain-sharded
//    hypothesis. A point-mass dataset makes the uniform hypothesis
//    maximally wrong, so the sparse vector fires kTop round after round
//    and the cost that matters is the MW-update path — the
//    dual-certificate payoff over all of X plus the sharded
//    reweigh/renormalize — which serve::ShardRouter fans across the
//    pool. The measured quantity is core::MwUpdateTiming (the update
//    path alone; oracle solves and prepares excluded — they are the
//    sequential part sharding cannot touch). Gate: >= 2x MW-update-path
//    throughput at --shards=4 over --shards=1. Updates per config must
//    be identical (sharding is bit-invariant), so the ratio is pure
//    wall-clock.
//
// Both gates need hardware to scale on: with fewer than 4 cores the run
// still prints the tables but exits SKIP instead of FAIL, since no
// scheduler can conjure parallel speedup out of one core. CI runs this
// on 4-vCPU runners. Transcript safety is asserted, not assumed: every
// configuration must produce the same bottom/update/error counts
// (serve_sharded_test checks value-level identity).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/math_util.h"
#include "common/random.h"
#include "common/simd.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "core/sharded_hypothesis.h"
#include "data/binary_universe.h"
#include "data/generators.h"
#include "data/histogram.h"
#include "erm/nonprivate_oracle.h"
#include "losses/loss_family.h"
#include "serve/pmw_service.h"
#include "workload/json.h"

namespace pmw {
namespace {

constexpr int kDim = 6;
constexpr int kRecords = 200000;
constexpr int kTotalQueries = 768;
constexpr size_t kBatchSize = 256;

// MW-update-path (sharded) mode parameters: a bigger universe so one
// update is real work, a point-mass dataset so updates actually fire.
constexpr int kMwDim = 12;  // |X| = 2^13 = 8192
constexpr int kMwQueries = 96;
constexpr int kMwUpdates = 64;
constexpr int kMwThreads = 4;

struct BenchResult {
  double queries_per_sec = 0.0;
  long long bottom = 0;
  long long updates = 0;
  long long errors = 0;
};

/// Writes a sweep's BENCH json artifact (same format family as
/// bench_scenarios: the nightly job uploads these and the regression
/// checker reads them back).
bool WriteBenchJson(const workload::JsonValue& root,
                    const std::string& dir, const std::string& name) {
  const std::string path = dir + "/BENCH_" + name + ".json";
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << root.Dump();
  return static_cast<bool>(out);
}

BenchResult RunAtThreads(const data::Dataset& dataset,
                         const std::vector<convex::CmQuery>& workload,
                         int num_threads) {
  erm::NonPrivateOracle oracle;
  core::PmwOptions options;
  options.alpha = 0.2;
  options.beta = 0.05;
  options.privacy = {2.0, 1e-6};
  options.max_queries = 2 * kTotalQueries;
  options.override_updates = 32;
  serve::ServeOptions serve_options;
  serve_options.num_threads = num_threads;
  serve::PmwService service(&dataset, &oracle, options, /*seed=*/1234,
                            serve_options);

  WallTimer timer;
  for (size_t start = 0; start < workload.size(); start += kBatchSize) {
    size_t count = std::min(kBatchSize, workload.size() - start);
    std::span<const convex::CmQuery> batch(&workload[start], count);
    std::vector<Result<convex::Vec>> results = service.AnswerBatch(batch);
    for (const auto& result : results) {
      if (!result.ok()) {
        std::fprintf(stderr, "serve error: %s\n",
                     result.status().ToString().c_str());
        return {};
      }
    }
  }
  double elapsed = timer.ElapsedSeconds();

  BenchResult result;
  result.queries_per_sec =
      elapsed > 0.0 ? static_cast<double>(workload.size()) / elapsed : 0.0;
  result.bottom = service.stats().bottom_answers;
  result.updates = service.stats().updates;
  result.errors = service.stats().errors;
  return result;
}

struct MwBenchResult {
  long long updates = 0;
  long long bottom = 0;
  long long errors = 0;
  double mw_ms = 0.0;
  double updates_per_sec = 0.0;
};

/// One sharded configuration of the MW-update-path bench: fixed thread
/// pool, varying domain-shard count. Batches of 1 so re-prepares never
/// pollute the measurement — the gate is about the update path.
MwBenchResult RunMwAtShards(const data::Dataset& dataset,
                            const std::vector<convex::CmQuery>& workload,
                            int num_shards,
                            core::HypothesisBackend backend) {
  erm::NonPrivateOracle oracle;
  core::PmwOptions options;
  options.alpha = 0.02;  // low threshold: the point-mass data fires kTop
  options.beta = 0.05;
  options.privacy = {8.0, 1e-6};
  options.max_queries = 2 * kMwQueries;
  options.override_updates = kMwUpdates;
  options.solver.max_iters = 40;  // bound the (unsharded) prepare cost
  serve::ServeOptions serve_options;
  serve_options.num_threads = kMwThreads;
  serve_options.num_shards = num_shards;
  serve_options.hypothesis_backend = backend;
  serve::PmwService service(&dataset, &oracle, options, /*seed=*/4321,
                            serve_options);

  for (const convex::CmQuery& query : workload) {
    Result<convex::Vec> result = service.Answer(query);
    if (!result.ok() && result.status().code() != StatusCode::kHalted) {
      std::fprintf(stderr, "serve error: %s\n",
                   result.status().ToString().c_str());
      return {};
    }
  }

  MwBenchResult result;
  result.updates = service.stats().updates;
  result.bottom = service.stats().bottom_answers;
  result.errors = service.stats().errors;
  result.mw_ms = service.stats().mw_update_ms;
  result.updates_per_sec =
      result.mw_ms > 0.0
          ? static_cast<double>(result.updates) / (result.mw_ms / 1e3)
          : 0.0;
  return result;
}

/// The sharded MW-update-path phase; returns the process exit code.
/// `gate_shards` <= 1 runs the default sweep {1, 2, 4} and gates 4 vs 1.
/// Under kSparse (exact mode) the artifact is named mw_shards_sparse so
/// dense baselines are never compared against sparse sweeps; transcript
/// counters must still agree across shard counts — exact mode is
/// bit-identical by construction, and this bench runs it hot.
int RunMwPhase(int gate_shards, unsigned cores, const std::string& json_dir,
               core::HypothesisBackend backend) {
  data::LabeledHypercubeUniverse universe(kMwDim);
  // Point mass: the uniform initial hypothesis is maximally wrong, so
  // hard rounds fire until the update budget is spent — the MW-heavy
  // steady state the shard gate measures.
  std::vector<double> weights(static_cast<size_t>(universe.size()), 1e-12);
  weights[0] = 1.0;
  data::Histogram point_mass = data::Histogram::FromWeights(weights);
  data::Dataset dataset =
      data::RoundedDataset(universe, point_mass, kRecords);

  losses::LipschitzFamily family(kMwDim);
  Rng rng(77);
  std::vector<convex::CmQuery> workload = family.Generate(kMwQueries, &rng);

  const bool sparse = backend == core::HypothesisBackend::kSparse;
  const char* backend_name = sparse ? "sparse" : "dense";
  std::printf(
      "\nMW-update path (domain-sharded, %s backend): |X|=%d, n=%d, "
      "queries=%d, T=%d, threads=%d\n",
      backend_name, universe.size(), kRecords, kMwQueries, kMwUpdates,
      kMwThreads);

  // --shards=K runs {1, K} ({1} alone for K=1: the baseline-only
  // invocation); the default sweep is {1, 2, 4}.
  std::vector<int> shard_counts;
  if (gate_shards == 1) {
    shard_counts = {1};
  } else if (gate_shards > 1) {
    shard_counts = {1, gate_shards};
  } else {
    shard_counts = {1, 2, 4};
  }
  TablePrinter table({"shards", "updates", "mw_ms", "mw_upd/s"});
  MwBenchResult baseline;
  MwBenchResult gated;
  bool transcripts_agree = true;
  workload::JsonValue sweep = workload::JsonValue::Array();
  for (int shards : shard_counts) {
    MwBenchResult result = RunMwAtShards(dataset, workload, shards, backend);
    if (shards == 1) baseline = result;
    if (shards == shard_counts.back()) gated = result;
    transcripts_agree = transcripts_agree &&
                        result.updates == baseline.updates &&
                        result.bottom == baseline.bottom &&
                        result.errors == baseline.errors;
    table.AddRow({std::to_string(shards), std::to_string(result.updates),
                  TablePrinter::Fmt(result.mw_ms, 2),
                  TablePrinter::Fmt(result.updates_per_sec, 1)});
    sweep.Push(workload::JsonValue::Object()
                   .Set("shards", workload::JsonValue::Int(shards))
                   .Set("updates", workload::JsonValue::Int(result.updates))
                   .Set("mw_ms", workload::JsonValue::Double(result.mw_ms))
                   .Set("updates_per_sec",
                        workload::JsonValue::Double(result.updates_per_sec)));
  }
  table.Print();

  if (!transcripts_agree) {
    std::printf("RESULT: FAIL (transcript counters diverged across shard "
                "counts)\n");
    return 1;
  }
  const int top = shard_counts.back();
  double speedup = baseline.updates_per_sec > 0.0
                       ? gated.updates_per_sec / baseline.updates_per_sec
                       : 0.0;
  std::printf(
      "MW-update-path speedup at shards=%d vs shards=1: %.2fx "
      "(gate: >= 2x at shards=4)\n",
      top, speedup);
  if (!json_dir.empty()) {
    const std::string bench_name = sparse ? "mw_shards_sparse" : "mw_shards";
    workload::JsonValue root =
        workload::JsonValue::Object()
            .Set("bench", workload::JsonValue::Str(bench_name))
            .Set("params",
                 workload::JsonValue::Object()
                     .Set("dim", workload::JsonValue::Int(kMwDim))
                     .Set("records", workload::JsonValue::Int(kRecords))
                     .Set("queries", workload::JsonValue::Int(kMwQueries))
                     .Set("override_updates",
                          workload::JsonValue::Int(kMwUpdates))
                     .Set("threads", workload::JsonValue::Int(kMwThreads))
                     .Set("backend", workload::JsonValue::Str(backend_name)))
            .Set("env", workload::JsonValue::Object().Set(
                            "cores", workload::JsonValue::Int(cores)))
            .Set("sweep", std::move(sweep))
            .Set("speedup_top_vs_1", workload::JsonValue::Double(speedup));
    if (!WriteBenchJson(root, json_dir, bench_name)) return 1;
  }
  if (cores < 4) {
    std::printf("RESULT: SKIP (only %u hardware core(s); the >= 2x gate "
                "needs 4)\n",
                cores);
    return 0;
  }
  if (top < 4) {
    std::printf("RESULT: SKIP (gate applies at --shards=4)\n");
    return 0;
  }
  if (baseline.updates < kMwUpdates / 4) {
    std::printf("RESULT: FAIL (only %lld hard rounds fired; the MW gate "
                "needs a hot update path)\n",
                baseline.updates);
    return 1;
  }
  std::printf(speedup >= 2.0 ? "RESULT: PASS\n" : "RESULT: FAIL\n");
  return speedup >= 2.0 ? 0 : 1;
}

// SIMD phase parameters: a domain big enough that the per-element passes
// dominate loop overhead, enough reps that the ratio is stable on a
// shared runner.
constexpr int kSimdDomainBits = 18;  // |X| = 262144
constexpr int kSimdKernelReps = 200;
constexpr int kSimdUpdates = 30;

/// Times one full pass of the vectorized reweigh/normalize inner loops
/// (axpy+max fold, stabilizing subtract, fixed-tree sum, normalizing
/// divide) at the current simd::Enabled() setting. The scalar log/exp
/// passes are deliberately absent: they are identical in both builds
/// (libm stays scalar per element), so including them would only dilute
/// the ratio the gate is about.
double TimeKernelLoops(const std::vector<double>& base,
                       const std::vector<double>& src, double* sink) {
  const size_t n = base.size();
  std::vector<double> work = base;
  std::vector<double> out(n);
  WallTimer timer;
  for (int rep = 0; rep < kSimdKernelReps; ++rep) {
    double local_max = -std::numeric_limits<double>::infinity();
    simd::AxpyMax(work.data(), src.data(), 0.1, n, &local_max);
    simd::SubScalar(work.data(), local_max * 1e-6, n);
    *sink += PairwiseSum(work.data(), 0, n);
    simd::DivScalarTo(out.data(), work.data(), 1.0 + 1e-9, n);
  }
  return timer.ElapsedSeconds() * 1e3;
}

struct SimdRun {
  double kernel_ms = 0.0;
  double update_ms = 0.0;
  uint64_t fingerprint = 0;
};

/// One full measurement at a fixed simd setting: the kernel-loop pass
/// plus kSimdUpdates real MultiplicativeUpdate calls on a fresh
/// hypothesis (same payoffs both settings, so the final fingerprints
/// must be bit-identical).
SimdRun RunSimdAt(bool simd_on, const std::vector<double>& base,
                  const std::vector<double>& src,
                  const std::vector<std::vector<double>>& payoffs,
                  double* sink) {
  simd::SetEnabled(simd_on);
  SimdRun run;
  run.kernel_ms = TimeKernelLoops(base, src, sink);
  core::ShardedHypothesis hypothesis(1 << kSimdDomainBits);
  WallTimer timer;
  for (const std::vector<double>& payoff : payoffs) {
    const Status status = hypothesis.MultiplicativeUpdate(payoff, 0.1);
    if (!status.ok()) {
      std::fprintf(stderr, "mw update failed: %s\n",
                   status.ToString().c_str());
      return run;
    }
  }
  run.update_ms = timer.ElapsedSeconds() * 1e3;
  run.fingerprint = hypothesis.fingerprint();
  return run;
}

/// The SIMD on/off sweep (`--simd=on|off`): gates the vectorized
/// reweigh+normalize inner loops at >= 1.3x (on vs off) and asserts the
/// end-to-end MW update is bit-identical across the two paths (equal
/// hypothesis fingerprints after identical update sequences). `gated`
/// applies the 1.3x gate (--simd=on, the CI invocation); --simd=off
/// records the same artifact without failing, for baseline collection.
/// Without AVX2 the comparison would be scalar-vs-scalar, so the run
/// SKIPs and the artifact says so instead of faking a 1.0x.
int RunSimdPhase(bool gated, unsigned cores, const std::string& json_dir) {
  std::printf("\nSIMD sweep (reweigh+normalize inner loops): |X|=%d, "
              "kernel reps=%d, updates=%d, avx2=%s\n",
              1 << kSimdDomainBits, kSimdKernelReps, kSimdUpdates,
              simd::Available() ? "yes" : "no");
  if (!simd::Available()) {
    if (!json_dir.empty()) {
      workload::JsonValue root =
          workload::JsonValue::Object()
              .Set("bench", workload::JsonValue::Str("mw_simd"))
              .Set("env",
                   workload::JsonValue::Object()
                       .Set("cores", workload::JsonValue::Int(cores))
                       .Set("simd_available", workload::JsonValue::Bool(false)));
      if (!WriteBenchJson(root, json_dir, "mw_simd")) return 1;
    }
    std::printf("RESULT: SKIP (no AVX2: on/off would compare scalar to "
                "itself)\n");
    return 0;
  }

  const size_t n = static_cast<size_t>(1) << kSimdDomainBits;
  Rng rng(2718);
  std::vector<double> base(n), src(n);
  for (size_t i = 0; i < n; ++i) {
    base[i] = rng.Uniform(-20.0, 0.0);  // SafeLog(p) territory
    src[i] = rng.Uniform(-1.0, 1.0);
  }
  std::vector<std::vector<double>> payoffs(kSimdUpdates,
                                           std::vector<double>(n));
  for (std::vector<double>& payoff : payoffs) {
    for (double& x : payoff) x = rng.Uniform(-1.0, 1.0);
  }

  // Two interleaved rounds per setting; keep each setting's best. The
  // interleave cancels slow drift (thermal, noisy neighbors) that a
  // back-to-back A/A/B/B order would fold into the ratio.
  double sink = 0.0;
  SimdRun off = RunSimdAt(false, base, src, payoffs, &sink);
  SimdRun on = RunSimdAt(true, base, src, payoffs, &sink);
  const SimdRun off2 = RunSimdAt(false, base, src, payoffs, &sink);
  const SimdRun on2 = RunSimdAt(true, base, src, payoffs, &sink);
  off.kernel_ms = std::min(off.kernel_ms, off2.kernel_ms);
  off.update_ms = std::min(off.update_ms, off2.update_ms);
  on.kernel_ms = std::min(on.kernel_ms, on2.kernel_ms);
  on.update_ms = std::min(on.update_ms, on2.update_ms);

  const bool identical = off.fingerprint == on.fingerprint &&
                         off.fingerprint == off2.fingerprint &&
                         on.fingerprint == on2.fingerprint;
  const double kernel_speedup =
      on.kernel_ms > 0.0 ? off.kernel_ms / on.kernel_ms : 0.0;
  const double update_speedup =
      on.update_ms > 0.0 ? off.update_ms / on.update_ms : 0.0;

  TablePrinter table({"simd", "kernel_ms", "mw_update_ms", "fingerprint"});
  char fp_buf[32];
  std::snprintf(fp_buf, sizeof(fp_buf), "%016llx",
                static_cast<unsigned long long>(off.fingerprint));
  table.AddRow({"off", TablePrinter::Fmt(off.kernel_ms, 2),
                TablePrinter::Fmt(off.update_ms, 2), fp_buf});
  std::snprintf(fp_buf, sizeof(fp_buf), "%016llx",
                static_cast<unsigned long long>(on.fingerprint));
  table.AddRow({"on", TablePrinter::Fmt(on.kernel_ms, 2),
                TablePrinter::Fmt(on.update_ms, 2), fp_buf});
  table.Print();
  std::printf("kernel-loop speedup on vs off: %.2fx (gate: >= 1.3x); "
              "end-to-end MW update: %.2fx (informational; scalar log/exp "
              "dominate it)\n",
              kernel_speedup, update_speedup);

  if (!json_dir.empty()) {
    workload::JsonValue root =
        workload::JsonValue::Object()
            .Set("bench", workload::JsonValue::Str("mw_simd"))
            .Set("params",
                 workload::JsonValue::Object()
                     .Set("domain", workload::JsonValue::Int(
                                        static_cast<long long>(n)))
                     .Set("kernel_reps",
                          workload::JsonValue::Int(kSimdKernelReps))
                     .Set("updates", workload::JsonValue::Int(kSimdUpdates)))
            .Set("env",
                 workload::JsonValue::Object()
                     .Set("cores", workload::JsonValue::Int(cores))
                     .Set("simd_available", workload::JsonValue::Bool(true)))
            .Set("kernel_ms_off", workload::JsonValue::Double(off.kernel_ms))
            .Set("kernel_ms_on", workload::JsonValue::Double(on.kernel_ms))
            .Set("mw_update_ms_off",
                 workload::JsonValue::Double(off.update_ms))
            .Set("mw_update_ms_on", workload::JsonValue::Double(on.update_ms))
            .Set("mw_update_speedup",
                 workload::JsonValue::Double(update_speedup))
            .Set("fingerprints_match", workload::JsonValue::Bool(identical))
            .Set("speedup_simd_on_vs_off",
                 workload::JsonValue::Double(kernel_speedup));
    if (!WriteBenchJson(root, json_dir, "mw_simd")) return 1;
  }
  if (!identical) {
    std::printf("RESULT: FAIL (SIMD on/off hypothesis fingerprints "
                "diverged: the paths are NOT bit-identical)\n");
    return 1;
  }
  if (!gated) {
    std::printf("RESULT: RECORDED (gate applies under --simd=on)\n");
    return 0;
  }
  std::printf(kernel_speedup >= 1.3 ? "RESULT: PASS\n" : "RESULT: FAIL\n");
  return kernel_speedup >= 1.3 ? 0 : 1;
}

int Main(const std::string& json_dir) {
  data::LabeledHypercubeUniverse universe(kDim);
  // Near-uniform data: the uniform initial hypothesis is already accurate,
  // so the sparse vector answers kBottom throughout — the steady-state
  // regime where preparation is all the work there is.
  data::Histogram uniform = data::Histogram::Uniform(universe.size());
  data::Dataset dataset = data::RoundedDataset(universe, uniform, kRecords);

  // All-distinct queries: no dedup, every query costs two solves.
  losses::LipschitzFamily family(kDim);
  Rng rng(99);
  std::vector<convex::CmQuery> workload =
      family.Generate(kTotalQueries, &rng);

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf(
      "bench_serve_parallel: |X|=%d, n=%d, queries=%d (all distinct), "
      "batch=%zu, cores=%u\n",
      universe.size(), kRecords, kTotalQueries, kBatchSize, cores);

  TablePrinter table({"threads", "queries/sec", "bottom", "updates"});
  std::vector<int> thread_counts = {1, 2, 4, 8};
  std::vector<double> qps;
  BenchResult baseline;
  bool transcripts_agree = true;
  workload::JsonValue sweep = workload::JsonValue::Array();
  for (int threads : thread_counts) {
    BenchResult result = RunAtThreads(dataset, workload, threads);
    if (threads == 1) baseline = result;
    transcripts_agree = transcripts_agree &&
                        result.bottom == baseline.bottom &&
                        result.updates == baseline.updates &&
                        result.errors == baseline.errors;
    qps.push_back(result.queries_per_sec);
    table.AddRow({std::to_string(threads),
                  std::to_string(result.queries_per_sec),
                  std::to_string(result.bottom),
                  std::to_string(result.updates)});
    sweep.Push(
        workload::JsonValue::Object()
            .Set("threads", workload::JsonValue::Int(threads))
            .Set("queries_per_sec",
                 workload::JsonValue::Double(result.queries_per_sec))
            .Set("bottom", workload::JsonValue::Int(result.bottom))
            .Set("updates", workload::JsonValue::Int(result.updates)));
  }
  table.Print();

  if (!transcripts_agree) {
    std::printf("RESULT: FAIL (transcript counters diverged across "
                "thread counts)\n");
    return 1;
  }

  // qps[2] is the 4-thread row.
  double speedup = qps[0] > 0.0 ? qps[2] / qps[0] : 0.0;
  std::printf("speedup at threads=4 vs threads=1: %.2fx (gate: >= 2.5x)\n",
              speedup);
  if (!json_dir.empty()) {
    workload::JsonValue root =
        workload::JsonValue::Object()
            .Set("bench", workload::JsonValue::Str("prepare_threads"))
            .Set("params",
                 workload::JsonValue::Object()
                     .Set("dim", workload::JsonValue::Int(kDim))
                     .Set("records", workload::JsonValue::Int(kRecords))
                     .Set("queries", workload::JsonValue::Int(kTotalQueries))
                     .Set("batch", workload::JsonValue::Int(
                                       static_cast<long long>(kBatchSize))))
            .Set("env", workload::JsonValue::Object().Set(
                            "cores", workload::JsonValue::Int(cores)))
            .Set("sweep", std::move(sweep))
            .Set("speedup_4_vs_1", workload::JsonValue::Double(speedup));
    if (!WriteBenchJson(root, json_dir, "prepare_threads")) return 1;
  }
  if (cores < 4) {
    std::printf(
        "RESULT: SKIP (only %u hardware core(s); the >= 2.5x gate needs 4)\n",
        cores);
    return 0;
  }
  std::printf(speedup >= 2.5 ? "RESULT: PASS\n" : "RESULT: FAIL\n");
  return speedup >= 2.5 ? 0 : 1;
}

}  // namespace
}  // namespace pmw

int main(int argc, char** argv) {
  // --shards=K runs only the MW-update-path phase at {1, K} (the PR 5
  // gate invocation is `--shards=4`); no argument runs the prepare phase
  // plus the MW phase on BOTH hypothesis backends (dense and exact-mode
  // sparse — separate BENCH artifacts, so the nightly trajectory tracks
  // both). --backend=dense|sparse pins the MW phase to one backend.
  // --simd=on|off runs only the SIMD on/off sweep (BENCH_mw_simd.json);
  // `on` applies the >= 1.3x kernel-loop gate, `off` records without
  // gating. --json-dir=DIR additionally records each phase's sweep as a
  // BENCH_<phase>.json artifact (the nightly perf-trajectory upload).
  int gate_shards = 0;
  std::string json_dir;
  std::string backend_flag;
  std::string simd_flag;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      gate_shards = std::atoi(argv[i] + 9);
      if (gate_shards < 1) {
        std::fprintf(stderr, "bad --shards value: %s\n", argv[i]);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--json-dir=", 11) == 0) {
      json_dir = argv[i] + 11;
      if (json_dir.empty()) {
        std::fprintf(stderr, "bad --json-dir value: %s\n", argv[i]);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--backend=", 10) == 0) {
      backend_flag = argv[i] + 10;
      if (backend_flag != "dense" && backend_flag != "sparse") {
        std::fprintf(stderr, "bad --backend value: %s\n", argv[i]);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--simd=", 7) == 0) {
      simd_flag = argv[i] + 7;
      if (simd_flag != "on" && simd_flag != "off") {
        std::fprintf(stderr, "bad --simd value: %s\n", argv[i]);
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--shards=K] [--backend=dense|sparse] "
                   "[--simd=on|off] [--json-dir=DIR]\n",
                   argv[0]);
      return 2;
    }
  }
  const unsigned cores = std::thread::hardware_concurrency();
  const pmw::core::HypothesisBackend pinned =
      backend_flag == "sparse" ? pmw::core::HypothesisBackend::kSparse
                               : pmw::core::HypothesisBackend::kDense;
  if (!simd_flag.empty()) {
    return pmw::RunSimdPhase(simd_flag == "on", cores, json_dir);
  }
  if (gate_shards > 0) {
    return pmw::RunMwPhase(gate_shards, cores, json_dir, pinned);
  }
  const int prepare_code = pmw::Main(json_dir);
  if (!backend_flag.empty()) {
    const int mw_code = pmw::RunMwPhase(0, cores, json_dir, pinned);
    return prepare_code != 0 ? prepare_code : mw_code;
  }
  const int dense_code =
      pmw::RunMwPhase(0, cores, json_dir, pmw::core::HypothesisBackend::kDense);
  const int sparse_code = pmw::RunMwPhase(
      0, cores, json_dir, pmw::core::HypothesisBackend::kSparse);
  if (prepare_code != 0) return prepare_code;
  return dense_code != 0 ? dense_code : sparse_code;
}
