// Two serving-layer scaling gates in one binary:
//
// 1. Prepare path (PR 2, default mode): throughput versus thread count
//    on a hypothesis-heavy workload — a near-uniform dataset keeps the
//    sparse vector answering kBottom, so per-query cost is dominated by
//    preparation (two solves against the hypothesis snapshot), the
//    embarrassingly parallel work the shard executor fans out. Gate:
//    >= 2.5x queries/sec at 4 threads over 1 thread.
//
// 2. MW-update path (PR 5, also via --shards=K): the domain-sharded
//    hypothesis. A point-mass dataset makes the uniform hypothesis
//    maximally wrong, so the sparse vector fires kTop round after round
//    and the cost that matters is the MW-update path — the
//    dual-certificate payoff over all of X plus the sharded
//    reweigh/renormalize — which serve::ShardRouter fans across the
//    pool. The measured quantity is core::MwUpdateTiming (the update
//    path alone; oracle solves and prepares excluded — they are the
//    sequential part sharding cannot touch). Gate: >= 2x MW-update-path
//    throughput at --shards=4 over --shards=1. Updates per config must
//    be identical (sharding is bit-invariant), so the ratio is pure
//    wall-clock.
//
// Both gates need hardware to scale on: with fewer than 4 cores the run
// still prints the tables but exits SKIP instead of FAIL, since no
// scheduler can conjure parallel speedup out of one core. CI runs this
// on 4-vCPU runners. Transcript safety is asserted, not assumed: every
// configuration must produce the same bottom/update/error counts
// (serve_sharded_test checks value-level identity).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "data/binary_universe.h"
#include "data/generators.h"
#include "data/histogram.h"
#include "erm/nonprivate_oracle.h"
#include "losses/loss_family.h"
#include "serve/pmw_service.h"
#include "workload/json.h"

namespace pmw {
namespace {

constexpr int kDim = 6;
constexpr int kRecords = 200000;
constexpr int kTotalQueries = 768;
constexpr size_t kBatchSize = 256;

// MW-update-path (sharded) mode parameters: a bigger universe so one
// update is real work, a point-mass dataset so updates actually fire.
constexpr int kMwDim = 12;  // |X| = 2^13 = 8192
constexpr int kMwQueries = 96;
constexpr int kMwUpdates = 64;
constexpr int kMwThreads = 4;

struct BenchResult {
  double queries_per_sec = 0.0;
  long long bottom = 0;
  long long updates = 0;
  long long errors = 0;
};

/// Writes a sweep's BENCH json artifact (same format family as
/// bench_scenarios: the nightly job uploads these and the regression
/// checker reads them back).
bool WriteBenchJson(const workload::JsonValue& root,
                    const std::string& dir, const std::string& name) {
  const std::string path = dir + "/BENCH_" + name + ".json";
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << root.Dump();
  return static_cast<bool>(out);
}

BenchResult RunAtThreads(const data::Dataset& dataset,
                         const std::vector<convex::CmQuery>& workload,
                         int num_threads) {
  erm::NonPrivateOracle oracle;
  core::PmwOptions options;
  options.alpha = 0.2;
  options.beta = 0.05;
  options.privacy = {2.0, 1e-6};
  options.max_queries = 2 * kTotalQueries;
  options.override_updates = 32;
  serve::ServeOptions serve_options;
  serve_options.num_threads = num_threads;
  serve::PmwService service(&dataset, &oracle, options, /*seed=*/1234,
                            serve_options);

  WallTimer timer;
  for (size_t start = 0; start < workload.size(); start += kBatchSize) {
    size_t count = std::min(kBatchSize, workload.size() - start);
    std::span<const convex::CmQuery> batch(&workload[start], count);
    std::vector<Result<convex::Vec>> results = service.AnswerBatch(batch);
    for (const auto& result : results) {
      if (!result.ok()) {
        std::fprintf(stderr, "serve error: %s\n",
                     result.status().ToString().c_str());
        return {};
      }
    }
  }
  double elapsed = timer.ElapsedSeconds();

  BenchResult result;
  result.queries_per_sec =
      elapsed > 0.0 ? static_cast<double>(workload.size()) / elapsed : 0.0;
  result.bottom = service.stats().bottom_answers;
  result.updates = service.stats().updates;
  result.errors = service.stats().errors;
  return result;
}

struct MwBenchResult {
  long long updates = 0;
  long long bottom = 0;
  long long errors = 0;
  double mw_ms = 0.0;
  double updates_per_sec = 0.0;
};

/// One sharded configuration of the MW-update-path bench: fixed thread
/// pool, varying domain-shard count. Batches of 1 so re-prepares never
/// pollute the measurement — the gate is about the update path.
MwBenchResult RunMwAtShards(const data::Dataset& dataset,
                            const std::vector<convex::CmQuery>& workload,
                            int num_shards,
                            core::HypothesisBackend backend) {
  erm::NonPrivateOracle oracle;
  core::PmwOptions options;
  options.alpha = 0.02;  // low threshold: the point-mass data fires kTop
  options.beta = 0.05;
  options.privacy = {8.0, 1e-6};
  options.max_queries = 2 * kMwQueries;
  options.override_updates = kMwUpdates;
  options.solver.max_iters = 40;  // bound the (unsharded) prepare cost
  serve::ServeOptions serve_options;
  serve_options.num_threads = kMwThreads;
  serve_options.num_shards = num_shards;
  serve_options.hypothesis_backend = backend;
  serve::PmwService service(&dataset, &oracle, options, /*seed=*/4321,
                            serve_options);

  for (const convex::CmQuery& query : workload) {
    Result<convex::Vec> result = service.Answer(query);
    if (!result.ok() && result.status().code() != StatusCode::kHalted) {
      std::fprintf(stderr, "serve error: %s\n",
                   result.status().ToString().c_str());
      return {};
    }
  }

  MwBenchResult result;
  result.updates = service.stats().updates;
  result.bottom = service.stats().bottom_answers;
  result.errors = service.stats().errors;
  result.mw_ms = service.stats().mw_update_ms;
  result.updates_per_sec =
      result.mw_ms > 0.0
          ? static_cast<double>(result.updates) / (result.mw_ms / 1e3)
          : 0.0;
  return result;
}

/// The sharded MW-update-path phase; returns the process exit code.
/// `gate_shards` <= 1 runs the default sweep {1, 2, 4} and gates 4 vs 1.
/// Under kSparse (exact mode) the artifact is named mw_shards_sparse so
/// dense baselines are never compared against sparse sweeps; transcript
/// counters must still agree across shard counts — exact mode is
/// bit-identical by construction, and this bench runs it hot.
int RunMwPhase(int gate_shards, unsigned cores, const std::string& json_dir,
               core::HypothesisBackend backend) {
  data::LabeledHypercubeUniverse universe(kMwDim);
  // Point mass: the uniform initial hypothesis is maximally wrong, so
  // hard rounds fire until the update budget is spent — the MW-heavy
  // steady state the shard gate measures.
  std::vector<double> weights(static_cast<size_t>(universe.size()), 1e-12);
  weights[0] = 1.0;
  data::Histogram point_mass = data::Histogram::FromWeights(weights);
  data::Dataset dataset =
      data::RoundedDataset(universe, point_mass, kRecords);

  losses::LipschitzFamily family(kMwDim);
  Rng rng(77);
  std::vector<convex::CmQuery> workload = family.Generate(kMwQueries, &rng);

  const bool sparse = backend == core::HypothesisBackend::kSparse;
  const char* backend_name = sparse ? "sparse" : "dense";
  std::printf(
      "\nMW-update path (domain-sharded, %s backend): |X|=%d, n=%d, "
      "queries=%d, T=%d, threads=%d\n",
      backend_name, universe.size(), kRecords, kMwQueries, kMwUpdates,
      kMwThreads);

  // --shards=K runs {1, K} ({1} alone for K=1: the baseline-only
  // invocation); the default sweep is {1, 2, 4}.
  std::vector<int> shard_counts;
  if (gate_shards == 1) {
    shard_counts = {1};
  } else if (gate_shards > 1) {
    shard_counts = {1, gate_shards};
  } else {
    shard_counts = {1, 2, 4};
  }
  TablePrinter table({"shards", "updates", "mw_ms", "mw_upd/s"});
  MwBenchResult baseline;
  MwBenchResult gated;
  bool transcripts_agree = true;
  workload::JsonValue sweep = workload::JsonValue::Array();
  for (int shards : shard_counts) {
    MwBenchResult result = RunMwAtShards(dataset, workload, shards, backend);
    if (shards == 1) baseline = result;
    if (shards == shard_counts.back()) gated = result;
    transcripts_agree = transcripts_agree &&
                        result.updates == baseline.updates &&
                        result.bottom == baseline.bottom &&
                        result.errors == baseline.errors;
    table.AddRow({std::to_string(shards), std::to_string(result.updates),
                  TablePrinter::Fmt(result.mw_ms, 2),
                  TablePrinter::Fmt(result.updates_per_sec, 1)});
    sweep.Push(workload::JsonValue::Object()
                   .Set("shards", workload::JsonValue::Int(shards))
                   .Set("updates", workload::JsonValue::Int(result.updates))
                   .Set("mw_ms", workload::JsonValue::Double(result.mw_ms))
                   .Set("updates_per_sec",
                        workload::JsonValue::Double(result.updates_per_sec)));
  }
  table.Print();

  if (!transcripts_agree) {
    std::printf("RESULT: FAIL (transcript counters diverged across shard "
                "counts)\n");
    return 1;
  }
  const int top = shard_counts.back();
  double speedup = baseline.updates_per_sec > 0.0
                       ? gated.updates_per_sec / baseline.updates_per_sec
                       : 0.0;
  std::printf(
      "MW-update-path speedup at shards=%d vs shards=1: %.2fx "
      "(gate: >= 2x at shards=4)\n",
      top, speedup);
  if (!json_dir.empty()) {
    const std::string bench_name = sparse ? "mw_shards_sparse" : "mw_shards";
    workload::JsonValue root =
        workload::JsonValue::Object()
            .Set("bench", workload::JsonValue::Str(bench_name))
            .Set("params",
                 workload::JsonValue::Object()
                     .Set("dim", workload::JsonValue::Int(kMwDim))
                     .Set("records", workload::JsonValue::Int(kRecords))
                     .Set("queries", workload::JsonValue::Int(kMwQueries))
                     .Set("override_updates",
                          workload::JsonValue::Int(kMwUpdates))
                     .Set("threads", workload::JsonValue::Int(kMwThreads))
                     .Set("backend", workload::JsonValue::Str(backend_name)))
            .Set("env", workload::JsonValue::Object().Set(
                            "cores", workload::JsonValue::Int(cores)))
            .Set("sweep", std::move(sweep))
            .Set("speedup_top_vs_1", workload::JsonValue::Double(speedup));
    if (!WriteBenchJson(root, json_dir, bench_name)) return 1;
  }
  if (cores < 4) {
    std::printf("RESULT: SKIP (only %u hardware core(s); the >= 2x gate "
                "needs 4)\n",
                cores);
    return 0;
  }
  if (top < 4) {
    std::printf("RESULT: SKIP (gate applies at --shards=4)\n");
    return 0;
  }
  if (baseline.updates < kMwUpdates / 4) {
    std::printf("RESULT: FAIL (only %lld hard rounds fired; the MW gate "
                "needs a hot update path)\n",
                baseline.updates);
    return 1;
  }
  std::printf(speedup >= 2.0 ? "RESULT: PASS\n" : "RESULT: FAIL\n");
  return speedup >= 2.0 ? 0 : 1;
}

int Main(const std::string& json_dir) {
  data::LabeledHypercubeUniverse universe(kDim);
  // Near-uniform data: the uniform initial hypothesis is already accurate,
  // so the sparse vector answers kBottom throughout — the steady-state
  // regime where preparation is all the work there is.
  data::Histogram uniform = data::Histogram::Uniform(universe.size());
  data::Dataset dataset = data::RoundedDataset(universe, uniform, kRecords);

  // All-distinct queries: no dedup, every query costs two solves.
  losses::LipschitzFamily family(kDim);
  Rng rng(99);
  std::vector<convex::CmQuery> workload =
      family.Generate(kTotalQueries, &rng);

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf(
      "bench_serve_parallel: |X|=%d, n=%d, queries=%d (all distinct), "
      "batch=%zu, cores=%u\n",
      universe.size(), kRecords, kTotalQueries, kBatchSize, cores);

  TablePrinter table({"threads", "queries/sec", "bottom", "updates"});
  std::vector<int> thread_counts = {1, 2, 4, 8};
  std::vector<double> qps;
  BenchResult baseline;
  bool transcripts_agree = true;
  workload::JsonValue sweep = workload::JsonValue::Array();
  for (int threads : thread_counts) {
    BenchResult result = RunAtThreads(dataset, workload, threads);
    if (threads == 1) baseline = result;
    transcripts_agree = transcripts_agree &&
                        result.bottom == baseline.bottom &&
                        result.updates == baseline.updates &&
                        result.errors == baseline.errors;
    qps.push_back(result.queries_per_sec);
    table.AddRow({std::to_string(threads),
                  std::to_string(result.queries_per_sec),
                  std::to_string(result.bottom),
                  std::to_string(result.updates)});
    sweep.Push(
        workload::JsonValue::Object()
            .Set("threads", workload::JsonValue::Int(threads))
            .Set("queries_per_sec",
                 workload::JsonValue::Double(result.queries_per_sec))
            .Set("bottom", workload::JsonValue::Int(result.bottom))
            .Set("updates", workload::JsonValue::Int(result.updates)));
  }
  table.Print();

  if (!transcripts_agree) {
    std::printf("RESULT: FAIL (transcript counters diverged across "
                "thread counts)\n");
    return 1;
  }

  // qps[2] is the 4-thread row.
  double speedup = qps[0] > 0.0 ? qps[2] / qps[0] : 0.0;
  std::printf("speedup at threads=4 vs threads=1: %.2fx (gate: >= 2.5x)\n",
              speedup);
  if (!json_dir.empty()) {
    workload::JsonValue root =
        workload::JsonValue::Object()
            .Set("bench", workload::JsonValue::Str("prepare_threads"))
            .Set("params",
                 workload::JsonValue::Object()
                     .Set("dim", workload::JsonValue::Int(kDim))
                     .Set("records", workload::JsonValue::Int(kRecords))
                     .Set("queries", workload::JsonValue::Int(kTotalQueries))
                     .Set("batch", workload::JsonValue::Int(
                                       static_cast<long long>(kBatchSize))))
            .Set("env", workload::JsonValue::Object().Set(
                            "cores", workload::JsonValue::Int(cores)))
            .Set("sweep", std::move(sweep))
            .Set("speedup_4_vs_1", workload::JsonValue::Double(speedup));
    if (!WriteBenchJson(root, json_dir, "prepare_threads")) return 1;
  }
  if (cores < 4) {
    std::printf(
        "RESULT: SKIP (only %u hardware core(s); the >= 2.5x gate needs 4)\n",
        cores);
    return 0;
  }
  std::printf(speedup >= 2.5 ? "RESULT: PASS\n" : "RESULT: FAIL\n");
  return speedup >= 2.5 ? 0 : 1;
}

}  // namespace
}  // namespace pmw

int main(int argc, char** argv) {
  // --shards=K runs only the MW-update-path phase at {1, K} (the PR 5
  // gate invocation is `--shards=4`); no argument runs the prepare phase
  // plus the MW phase on BOTH hypothesis backends (dense and exact-mode
  // sparse — separate BENCH artifacts, so the nightly trajectory tracks
  // both). --backend=dense|sparse pins the MW phase to one backend.
  // --json-dir=DIR additionally records each phase's sweep as a
  // BENCH_<phase>.json artifact (the nightly perf-trajectory upload).
  int gate_shards = 0;
  std::string json_dir;
  std::string backend_flag;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      gate_shards = std::atoi(argv[i] + 9);
      if (gate_shards < 1) {
        std::fprintf(stderr, "bad --shards value: %s\n", argv[i]);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--json-dir=", 11) == 0) {
      json_dir = argv[i] + 11;
      if (json_dir.empty()) {
        std::fprintf(stderr, "bad --json-dir value: %s\n", argv[i]);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--backend=", 10) == 0) {
      backend_flag = argv[i] + 10;
      if (backend_flag != "dense" && backend_flag != "sparse") {
        std::fprintf(stderr, "bad --backend value: %s\n", argv[i]);
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--shards=K] [--backend=dense|sparse] "
                   "[--json-dir=DIR]\n",
                   argv[0]);
      return 2;
    }
  }
  const unsigned cores = std::thread::hardware_concurrency();
  const pmw::core::HypothesisBackend pinned =
      backend_flag == "sparse" ? pmw::core::HypothesisBackend::kSparse
                               : pmw::core::HypothesisBackend::kDense;
  if (gate_shards > 0) {
    return pmw::RunMwPhase(gate_shards, cores, json_dir, pinned);
  }
  const int prepare_code = pmw::Main(json_dir);
  if (!backend_flag.empty()) {
    const int mw_code = pmw::RunMwPhase(0, cores, json_dir, pinned);
    return prepare_code != 0 ? prepare_code : mw_code;
  }
  const int dense_code =
      pmw::RunMwPhase(0, cores, json_dir, pmw::core::HypothesisBackend::kDense);
  const int sparse_code = pmw::RunMwPhase(
      0, cores, json_dir, pmw::core::HypothesisBackend::kSparse);
  if (prepare_code != 0) return prepare_code;
  return dense_code != 0 ? dense_code : sparse_code;
}
