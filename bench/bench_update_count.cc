// Figure 3 / Claim 3.7 — the update budget T = 64 S^2 log|X| / alpha^2.
//
// The proof of Theorem 3.8 hinges on the regret bound capping the number
// of MW updates at T, so the sparse vector never halts early. Regenerated
// as measured update counts vs the formula's T across alpha and |X| — the
// measured count must stay (far) below the worst-case budget, and the
// mechanism must never halt at the theorem-consistent parameters.

#include <benchmark/benchmark.h>

#include "analysis/bounds.h"
#include "bench_util.h"
#include "erm/nonprivate_oracle.h"

namespace pmw {
namespace {

void RunAlphaSweep() {
  bench::PrintHeader(
      "Update counts vs the worst-case budget T = 64 S^2 log|X| / alpha^2");
  TablePrinter table({"alpha", "d", "paper T", "measured updates",
                      "queries", "halted"});
  const int k = 250;
  for (int d : {3, 5}) {
    bench::Workbench wb(d, 150000, 80 + d);
    for (double alpha : {0.3, 0.2, 0.12}) {
      losses::LipschitzFamily family(d);
      analysis::BoundParams p;
      p.alpha = alpha;
      p.scale = family.scale();
      p.log_universe = (d + 1) * std::log(2.0);
      double paper_t = analysis::Figure3UpdateBudget(p);

      erm::NonPrivateOracle oracle;
      core::PmwOptions options =
          bench::PracticalPmwOptions(alpha, family.scale(), k, 64);
      core::PmwCm pmw(&wb.dataset, &oracle, options,
                      8000 + d * 100 + static_cast<int>(alpha * 100));
      core::PmwAnswerer answerer(&pmw);
      core::GameResult result = bench::PlayFamilyGame(
          &answerer, &family, k, wb, 8100 + d * 100 + (int)(alpha * 100));
      table.AddRow({TablePrinter::Fmt(alpha, 2), TablePrinter::FmtInt(d),
                    TablePrinter::FmtInt(static_cast<long long>(paper_t)),
                    TablePrinter::FmtInt(pmw.update_count()),
                    TablePrinter::FmtInt(result.queries_answered),
                    result.mechanism_halted ? "yes" : "no"});
    }
  }
  table.Print();
  std::printf(
      "shape check: measured updates grow as alpha shrinks but stay orders "
      "of magnitude below the worst-case T; no run halts.\n");
}

}  // namespace
}  // namespace pmw

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  pmw::RunAlphaSweep();
  return 0;
}
