// Table 1, row 1 — linear queries (the HR10 special case).
//
// Paper columns:   single query n = O(1/alpha)         [DMNS06, Laplace]
//                  k queries   n = O~(sqrt(log|X|) log k / alpha^2) [HR10]
// Regenerated as (a) the bound values, (b) measured max error of the
// native HR10 mechanism (pmw_linear), the Laplace-composition baseline,
// and the paper's *CM embedding* of linear queries run through the full
// Figure 3 machinery — demonstrating that the CM extension subsumes the
// linear case (Section 4.3's "linear queries are a special case").

#include <benchmark/benchmark.h>

#include <cmath>

#include "analysis/bounds.h"
#include "bench_util.h"
#include "core/linear_query.h"
#include "core/pmw_linear.h"
#include "dp/composition.h"
#include "erm/exponential_erm_oracle.h"

namespace pmw {
namespace {

void RunKSweep() {
  bench::PrintHeader(
      "Table 1 row 1 (linear queries): HR10 PMW vs Laplace composition");
  TablePrinter table({"k", "paper n(1)", "paper n(k) [HR10]",
                      "pmw-linear maxerr", "laplace-comp maxerr",
                      "pmw updates"});
  const int d = 6;
  const double alpha = 0.1;
  const int n = 20000;
  bench::Workbench wb(d, n, 11);

  for (int k : {50, 400, 3200}) {
    analysis::BoundParams p;
    p.alpha = alpha;
    p.k = k;
    p.log_universe = (d + 1) * std::log(2.0);
    p.privacy = {1.0, 1e-6};

    Rng query_rng(600 + k);
    auto queries = core::RandomConjunctionQueries(*wb.universe, k, 3, true,
                                                  &query_rng);

    core::PmwLinearOptions options;
    options.alpha = alpha;
    options.privacy = {1.0, 1e-6};
    options.override_updates = 24;
    core::PmwLinear pmw(&wb.dataset, options, 700 + k);
    double pmw_max = 0.0;
    for (const auto& q : queries) {
      auto answer = pmw.AnswerQuery(q);
      if (!answer.ok()) break;
      pmw_max = std::max(pmw_max, std::abs(answer.value().value -
                                           q.Evaluate(wb.data_hist)));
    }

    // Laplace composition: per-query budget via strong composition.
    dp::PrivacyParams per_query =
        dp::PerRoundBudget({1.0, 1e-6}, k);
    Rng noise_rng(800 + k);
    double comp_max = 0.0;
    for (const auto& q : queries) {
      double truth = q.Evaluate(wb.data_hist);
      double noisy = truth + noise_rng.Laplace(
                                 (1.0 / n) / per_query.epsilon);
      comp_max = std::max(comp_max, std::abs(noisy - truth));
    }

    table.AddRow({TablePrinter::FmtInt(k),
                  TablePrinter::FmtSci(analysis::LinearSingleQueryN(p)),
                  TablePrinter::FmtSci(analysis::LinearKQueriesN(p)),
                  TablePrinter::Fmt(pmw_max),
                  TablePrinter::Fmt(comp_max),
                  TablePrinter::FmtInt(pmw.update_count())});
  }
  table.Print();
}

void RunCmEmbedding() {
  bench::PrintHeader(
      "Linear queries through the CM machinery (Figure 3 with Theta=[0,1])");
  TablePrinter table({"k", "pmw-cm maxerr", "pmw-cm updates", "halted"});
  const int d = 5;
  const double alpha = 0.1;
  const int n = 150000;
  bench::Workbench wb(d, n, 12);

  for (int k : {50, 200}) {
    losses::LinearQueryFamily family(d, 3, true);
    erm::ExponentialErmOracle oracle;  // pure-DP 1-D grid oracle
    core::PmwOptions options =
        bench::PracticalPmwOptions(alpha, family.scale(), k, 24);
    core::PmwCm pmw(&wb.dataset, &oracle, options, 900 + k);
    core::PmwAnswerer answerer(&pmw);
    core::GameResult result =
        bench::PlayFamilyGame(&answerer, &family, k, wb, 950 + k);
    table.AddRow({TablePrinter::FmtInt(k),
                  TablePrinter::Fmt(result.MaxError()),
                  TablePrinter::FmtInt(pmw.update_count()),
                  result.mechanism_halted ? "yes" : "no"});
  }
  table.Print();
  std::printf(
      "note: CM-embedded linear queries report excess risk of (t-p)^2/2, "
      "i.e. err = (answer gap)^2/2; a maxerr of 0.005 equals a +-0.1 "
      "answer gap.\n");
}

}  // namespace
}  // namespace pmw

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  pmw::RunKSweep();
  pmw::RunCmEmbedding();
  return 0;
}
