// Ablations of the design choices DESIGN.md calls out.
//
//   A. Dual-certificate update direction: Figure 3 moves mass away from
//      records where u_t is large (exponent -eta u/S). Flipping the sign
//      breaks Claims 3.5-3.7; measured as update counts and error.
//   B. Learning rate eta around the paper's sqrt(log|X|/T).
//   C. Oracle A' choice on the same workload (the black box of Section 3).
//   D. Update budget T: too small halts, larger costs per-call budget.
//   E. Composition calculus: Figure 3's strong composition vs an RDP
//      accountant at the same number of oracle calls (what a modern
//      re-derivation of Theorem 3.9 would save).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "dp/rdp_accountant.h"
#include "erm/noisy_gradient_oracle.h"
#include "erm/nonprivate_oracle.h"
#include "erm/objective_perturbation_oracle.h"
#include "erm/private_frank_wolfe_oracle.h"

namespace pmw {
namespace {

struct AblationRun {
  double max_error = 0.0;
  int updates = 0;
  int queries_answered = 0;
  bool halted = false;
};

AblationRun RunOnce(const bench::Workbench& wb, erm::Oracle* oracle,
                    core::PmwOptions options, int k, uint64_t seed) {
  losses::LipschitzFamily family(wb.universe->dim());
  core::PmwCm pmw(&wb.dataset, oracle, options, seed);
  core::PmwAnswerer answerer(&pmw);
  core::GameResult result =
      bench::PlayFamilyGame(&answerer, &family, k, wb, seed ^ 0xabcd);
  AblationRun run;
  run.max_error = result.MaxError();
  run.updates = pmw.update_count();
  run.queries_answered = result.queries_answered;
  run.halted = result.mechanism_halted;
  return run;
}

std::vector<std::string> Row(const std::string& name, const AblationRun& run,
                             int k) {
  return {name, TablePrinter::Fmt(run.max_error),
          TablePrinter::FmtInt(run.updates),
          TablePrinter::FmtInt(run.queries_answered) + "/" +
              TablePrinter::FmtInt(k),
          run.halted ? "yes" : "no"};
}

void AblationSignAndEta() {
  bench::PrintHeader("Ablation A+B: update direction and learning rate");
  TablePrinter table({"variant", "maxerr", "updates", "answered", "halted"});
  const int d = 4, k = 150, n = 120000;
  bench::Workbench wb(d, n, 80);
  erm::NonPrivateOracle oracle;

  core::PmwOptions base = bench::PracticalPmwOptions(0.15, 2.0, k, 24);
  table.AddRow(Row("paper (exponent -eta u/S)",
                   RunOnce(wb, &oracle, base, k, 901), k));

  core::PmwOptions flipped = base;
  flipped.flip_update_sign = true;
  table.AddRow(Row("flipped sign (+eta u/S)",
                   RunOnce(wb, &oracle, flipped, k, 902), k));

  for (double scale : {0.25, 4.0}) {
    core::PmwOptions tuned = base;
    double log_universe = (d + 1) * std::log(2.0);
    tuned.override_eta = scale * std::sqrt(log_universe / 24.0);
    table.AddRow(Row("eta x " + TablePrinter::Fmt(scale, 2),
                     RunOnce(wb, &oracle, tuned, k, 903), k));
  }
  table.Print();
  std::printf(
      "shape check: the flipped update burns its whole budget and halts "
      "long before answering the workload — the divergence Claims 3.5-3.7 "
      "rule out for the correct direction.\n");
}

void AblationOracle() {
  bench::PrintHeader("Ablation C: the single-query oracle A'");
  TablePrinter table({"oracle", "maxerr", "updates", "answered", "halted"});
  const int d = 4, k = 120, n = 120000;
  bench::Workbench wb(d, n, 81);
  core::PmwOptions options = bench::PracticalPmwOptions(0.15, 2.0, k, 20);

  erm::NonPrivateOracle exact;
  erm::NoisyGradientOracle noisy_gd;
  erm::ObjectivePerturbationOracle obj_pert;
  erm::PrivateFrankWolfeOracle private_fw;
  std::pair<const char*, erm::Oracle*> oracles[] = {
      {"non-private (ablation)", &exact},
      {"noisy-gd (bst14)", &noisy_gd},
      {"objective-perturbation", &obj_pert},
      {"private-frank-wolfe", &private_fw},
  };
  for (auto& [name, oracle] : oracles) {
    table.AddRow(Row(name, RunOnce(wb, oracle, options, k, 910), k));
  }
  table.Print();
}

void AblationUpdateBudget() {
  bench::PrintHeader("Ablation D: update budget T");
  TablePrinter table({"T", "maxerr", "updates", "answered", "halted"});
  const int d = 4, k = 200, n = 120000;
  bench::Workbench wb(d, n, 82);
  erm::NoisyGradientOracle oracle;
  for (int t : {2, 8, 32, 128}) {
    core::PmwOptions options = bench::PracticalPmwOptions(0.15, 2.0, k, t);
    table.AddRow(Row(TablePrinter::FmtInt(t),
                     RunOnce(wb, &oracle, options, k, 920 + t), k));
  }
  table.Print();
  std::printf(
      "shape check: tiny T halts before k queries; beyond the workload's "
      "needs, growing T only dilutes the per-call oracle budget.\n");
}

void AblationAccountant() {
  bench::PrintHeader(
      "Ablation E: composition calculus for T oracle calls "
      "(noise multiplier 10)");
  TablePrinter table({"T calls", "strong composition eps (Thm 3.10)",
                      "RDP accountant eps"});
  for (int t : {8, 32, 128, 512}) {
    dp::RdpAccountant accountant;
    accountant.AddGaussian(10.0, t);
    table.AddRow(
        {TablePrinter::FmtInt(t),
         TablePrinter::Fmt(
             dp::RdpAccountant::StrongCompositionEpsilon(10.0, t, 1e-6)),
         TablePrinter::Fmt(accountant.EpsilonAt(1e-6))});
  }
  table.Print();
  std::printf(
      "shape check: RDP reports a uniformly smaller epsilon — a modern "
      "re-derivation of Theorem 3.9 would buy the oracle more budget at "
      "the same (eps, delta).\n");
}

}  // namespace
}  // namespace pmw

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  pmw::AblationSignAndEta();
  pmw::AblationOracle();
  pmw::AblationUpdateBudget();
  pmw::AblationAccountant();
  return 0;
}
