#!/usr/bin/env python3
"""Compare BENCH_*.json artifacts against checked-in baselines.

Stdlib only (CI runners have bare python3). Two file shapes exist, both
produced by this repo's benches:

  * scenario files (bench_scenarios): carry `scenario`, `goodput_qps`,
    and an `slo` verdict. The SLO must hold unconditionally; goodput is
    compared against the baseline only when the candidate ran on the
    same number of cores the baseline recorded (`env.cores`) --
    baselines generated on a 1-core dev box say nothing about the
    4-vCPU nightly runner's throughput, and vice versa.
  * sweep files (bench_serve_parallel): carry `bench` and a
    `speedup_*` key. Speedup is a ratio, but it still only means
    anything on matching hardware, so the same cores gate applies.

A candidate more than --max-regression below its comparable baseline
fails the run. A baseline with no candidate also fails: the matrix
shrank silently. So does a baseline whose headline metric key is absent
from (or renamed in) the candidate: a bench that silently stopped
reporting its metric would otherwise pass forever. A candidate with no
baseline is reported but passes (new scenarios land before their first
baseline).

Baselines live either flat in --baseline-dir (legacy) or bucketed under
cores-<N>/ subdirectories keyed by the recorded `env.cores`. Lookup
prefers cores-<candidate cores>/<name> and falls back to the flat file;
the missing-candidate sweep only inspects the flat files plus the
subdirectories matching the cores the candidates actually ran on, so a
1-core dev baseline never fails a 4-vCPU nightly run.

Scenario runs also emit METRICS_<scenario>.json -- the server metrics
registry's dump, scraped through the api front door. When a baseline
metrics dump exists (same cores bucketing as BENCH files), every
histogram's p99 is diffed: a candidate p99 more than
--max-p99-regression above its baseline fails the run. Counters and
missing histograms are never compared (workloads legitimately reshape
them); only a latency distribution that got materially worse is a
regression. One counter-derived ratio IS gated: the cross-batch
plan-cache hit rate (hits/lookups) may not drop more than
--max-hit-rate-drop absolute points below the baseline's -- the CLOCK
cache's eviction/admission/fingerprint machinery regresses there first.

Promoting a baseline: download the BENCH json artifacts from a green
nightly run and feed them to bench/promote_baselines.py, which buckets
them into bench/baselines/cores-<N>/ by their recorded `env.cores`;
commit the result. The cores travel with each file, so future
comparisons stay apples to apples.
"""

import argparse
import json
import pathlib
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def metric_of(doc):
    """Returns (key, value) for the file's headline metric, or None."""
    if "goodput_qps" in doc:
        return ("goodput_qps", float(doc["goodput_qps"]))
    for key in ("speedup_4_vs_1", "speedup_top_vs_1",
                "speedup_simd_on_vs_off"):
        if key in doc:
            return (key, float(doc[key]))
    return None


def plan_hit_rate(dump):
    """Plan-cache hit rate from a metrics dump, or None below sample size.

    The cross-batch plan cache (frontend/plan_cache.h) reports its
    lookups and hits as counters; a dump with too few lookups says
    nothing about steady-state hit rate, so it is skipped rather than
    compared against noise.
    """
    counters = dump.get("counters", {})
    lookups = float(counters.get("pmw_serve_cross_batch_lookups_total", 0))
    hits = float(counters.get("pmw_serve_cross_batch_hits_total", 0))
    if lookups < 50:
        return None
    return hits / lookups


def compare_metrics_dumps(baseline_dir, candidate_dir, cand_cores_by_name,
                          max_p99_regression, max_hit_rate_drop, failures):
    """Diffs histogram p99s and plan-cache hit rates between METRICS dumps.

    `cand_cores_by_name` maps scenario name -> the cores its BENCH file
    recorded, reusing the same cores-<N>/ baseline bucketing.

    The plan-cache floor: when baseline and candidate both saw enough
    plan lookups, the candidate's hit rate may not fall more than
    --max-hit-rate-drop absolute points below the baseline's. This is
    the CLOCK-cache regression tripwire -- an eviction-policy or
    fingerprint bug shows up as warm-stream lookups that stop hitting
    long before it shows up in p99.
    """
    for path in sorted(candidate_dir.glob("METRICS_*.json")):
        scenario = path.stem[len("METRICS_"):]
        cores = cand_cores_by_name.get(scenario)
        base_path = baseline_dir / f"cores-{cores}" / path.name
        if not base_path.exists():
            base_path = baseline_dir / path.name
        if not base_path.exists():
            print(f"{path.name}: no baseline metrics dump -- skipping")
            continue
        try:
            cand_dump = load(path)
            base_dump = load(base_path)
        except (json.JSONDecodeError, OSError) as error:
            failures.append(f"{path.name}: unreadable metrics dump: {error}")
            continue
        cand_hists = cand_dump.get("histograms", {})
        base_hists = base_dump.get("histograms", {})

        base_rate = plan_hit_rate(base_dump)
        cand_rate = plan_hit_rate(cand_dump)
        if base_rate is not None and cand_rate is not None:
            floor = base_rate - max_hit_rate_drop
            verdict = "OK"
            if cand_rate < floor:
                verdict = "REGRESSION"
                failures.append(
                    f"{path.name}: plan-cache hit rate {cand_rate:.3f} is "
                    f"more than {max_hit_rate_drop:.2f} below baseline "
                    f"{base_rate:.3f}"
                )
            print(
                f"{path.name}: plan-cache hit rate candidate "
                f"{cand_rate:.3f} vs baseline {base_rate:.3f} ({verdict})"
            )
        for name, base_hist in sorted(base_hists.items()):
            cand_hist = cand_hists.get(name)
            if cand_hist is None:
                continue  # instruments may come and go with the workload
            base_p99 = float(base_hist.get("p99", 0.0))
            cand_p99 = float(cand_hist.get("p99", 0.0))
            if base_p99 <= 0.0:
                continue
            ceiling = base_p99 * (1.0 + max_p99_regression)
            verdict = "OK"
            if cand_p99 > ceiling:
                verdict = "REGRESSION"
                failures.append(
                    f"{path.name}: {name} p99 {cand_p99:.3f} is more than "
                    f"{max_p99_regression:.0%} above baseline {base_p99:.3f}"
                )
            print(
                f"{path.name}: {name} p99 candidate {cand_p99:.3f} vs "
                f"baseline {base_p99:.3f} ({verdict})"
            )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", required=True)
    parser.add_argument("--candidate-dir", required=True)
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.10,
        help="allowed fractional drop below baseline (default 0.10)",
    )
    parser.add_argument(
        "--max-p99-regression",
        type=float,
        default=0.50,
        help="allowed fractional rise of a metrics-dump histogram p99 "
        "above its baseline (default 0.50; latency tails are noisy)",
    )
    parser.add_argument(
        "--max-hit-rate-drop",
        type=float,
        default=0.10,
        help="allowed absolute drop of the plan-cache hit rate below its "
        "baseline (default 0.10; rates, unlike latencies, are stable)",
    )
    args = parser.parse_args()

    baseline_dir = pathlib.Path(args.baseline_dir)
    candidate_dir = pathlib.Path(args.candidate_dir)
    candidates = sorted(candidate_dir.glob("BENCH_*.json"))
    baselines = sorted(baseline_dir.glob("BENCH_*.json"))
    if not candidates:
        print(f"FAIL: no BENCH_*.json files in {candidate_dir}")
        return 1

    failures = []
    cores_seen = set()
    cand_cores_by_name = {}
    for path in candidates:
        doc = load(path)
        name = path.name
        cand_cores = doc.get("env", {}).get("cores")
        cores_seen.add(cand_cores)
        if "scenario" in doc:
            cand_cores_by_name[doc["scenario"]] = cand_cores

        slo = doc.get("slo")
        if slo is not None and not slo.get("ok", False):
            failures.append(
                f"{name}: SLO breach: {'; '.join(slo.get('violations', []))}"
            )
            continue

        base_path = baseline_dir / f"cores-{cand_cores}" / name
        if not base_path.exists():
            base_path = baseline_dir / name
        if not base_path.exists():
            print(f"{name}: no baseline yet -- skipping comparison")
            continue
        base = load(base_path)

        base_cores = base.get("env", {}).get("cores")
        if base_cores != cand_cores:
            print(
                f"{name}: cores mismatch (baseline {base_cores}, "
                f"candidate {cand_cores}) -- throughput not comparable, "
                "skipping"
            )
            continue

        base_metric = metric_of(base)
        cand_metric = metric_of(doc)
        if base_metric is None:
            # A baseline without a headline metric constrains nothing;
            # once the candidate grows one, promote it as the baseline.
            print(f"{name}: baseline has no headline metric -- "
                  "skipping comparison")
            continue
        key, base_value = base_metric
        if cand_metric is None or cand_metric[0] != key:
            # Mirrors the missing-candidate rule: a baseline that stops
            # being comparable (metric dropped or renamed) must fail
            # loudly, not degrade into a silent skip.
            have = cand_metric[0] if cand_metric is not None else "none"
            failures.append(
                f"{name}: baseline metric {key} missing from candidate "
                f"(candidate has: {have}) -- bench output changed shape; "
                "fix the bench or promote a new baseline"
            )
            continue
        _, cand_value = cand_metric
        floor = base_value * (1.0 - args.max_regression)
        verdict = "OK"
        if cand_value < floor:
            verdict = "REGRESSION"
            failures.append(
                f"{name}: {key} {cand_value:.1f} is more than "
                f"{args.max_regression:.0%} below baseline {base_value:.1f}"
            )
        elif base_value > 0 and cand_value > base_value * (
            1.0 + args.max_regression
        ):
            verdict = "OK (improved -- consider promoting the baseline)"
        print(
            f"{name}: {key} candidate {cand_value:.1f} vs baseline "
            f"{base_value:.1f} ({verdict})"
        )

    compare_metrics_dumps(baseline_dir, candidate_dir, cand_cores_by_name,
                          args.max_p99_regression, args.max_hit_rate_drop,
                          failures)

    candidate_names = {p.name for p in candidates}
    for cores in sorted(cores_seen, key=str):
        baselines += sorted(
            (baseline_dir / f"cores-{cores}").glob("BENCH_*.json")
        )
    for path in baselines:
        if path.name not in candidate_names:
            failures.append(
                f"{path.name}: baseline has no candidate -- scenario "
                "removed or not run"
            )

    if failures:
        print("\nFAIL:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("\nPASS: all scenarios within SLO and regression bounds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
