// Table 1, row 2 — Lipschitz, d-bounded CM queries.
//
// Paper columns:   single query n = O~(sqrt(d)/alpha)            [BST14]
//                  k queries   n = O~(max{sqrt(d log|X|)/alpha^2,
//                                         log k sqrt(log|X|)/alpha^2})
// Regenerated here as (a) the bound values across d, (b) measured max
// excess risk of PMW-CM (Figure 3) vs the composition baseline on the same
// workload, across d and across k. The paper's claim to verify: PMW error
// is nearly flat in k (log k) while composition degrades like sqrt(k).

#include <benchmark/benchmark.h>

#include "analysis/bounds.h"
#include "bench_util.h"
#include "erm/noisy_gradient_oracle.h"

namespace pmw {
namespace {

void RunDimensionSweep() {
  bench::PrintHeader(
      "Table 1 row 2 (Lipschitz, d-bounded): bounds and measured error vs d");
  TablePrinter table({"d", "|X|", "n", "paper n(1 query)", "paper n(k)",
                      "pmw maxerr", "composition maxerr", "pmw updates"});
  const int k = 150;
  const double alpha = 0.15;
  for (int d : {2, 4, 6}) {
    analysis::BoundParams p;
    p.alpha = alpha;
    p.dim = d;
    p.k = k;
    p.log_universe = (d + 1) * std::log(2.0);
    p.privacy = {1.0, 1e-6};

    const int n = 120000;
    bench::Workbench wb(d, n, 90 + d);
    losses::LipschitzFamily family_pmw(d);
    losses::LipschitzFamily family_comp(d);

    erm::NoisyGradientOracle oracle;
    core::PmwOptions options =
        bench::PracticalPmwOptions(alpha, family_pmw.scale(), k, 20);
    core::PmwCm pmw(&wb.dataset, &oracle, options, 1000 + d);
    core::PmwAnswerer pmw_answerer(&pmw);
    core::GameResult pmw_result =
        bench::PlayFamilyGame(&pmw_answerer, &family_pmw, k, wb, 2000 + d);

    core::CompositionBaseline::Options comp_options;
    comp_options.privacy = {1.0, 1e-6};
    comp_options.max_queries = k;
    core::CompositionBaseline composition(&wb.dataset, &oracle, comp_options,
                                          3000 + d);
    core::GameResult comp_result =
        bench::PlayFamilyGame(&composition, &family_comp, k, wb, 2000 + d);

    table.AddRow({TablePrinter::FmtInt(d),
                  TablePrinter::FmtInt(1 << (d + 1)),
                  TablePrinter::FmtInt(n),
                  TablePrinter::FmtSci(analysis::LipschitzSingleQueryN(p)),
                  TablePrinter::FmtSci(analysis::LipschitzKQueriesN(p)),
                  TablePrinter::Fmt(pmw_result.MaxError()),
                  TablePrinter::Fmt(comp_result.MaxError()),
                  TablePrinter::FmtInt(pmw.update_count())});
  }
  table.Print();
}

void RunKSweep() {
  bench::PrintHeader(
      "Table 1 row 2: error vs k (PMW ~log k, composition ~sqrt k)");
  TablePrinter table({"k", "paper n(k) shape", "composition n shape",
                      "pmw maxerr", "composition maxerr"});
  const int d = 4;
  const double alpha = 0.15;
  const int n = 120000;
  bench::Workbench wb(d, n, 77);
  for (int k : {25, 100, 400}) {
    analysis::BoundParams p;
    p.alpha = alpha;
    p.dim = d;
    p.k = k;
    p.log_universe = (d + 1) * std::log(2.0);
    p.privacy = {1.0, 1e-6};

    losses::LipschitzFamily family_pmw(d);
    losses::LipschitzFamily family_comp(d);
    erm::NoisyGradientOracle oracle;
    core::PmwOptions options =
        bench::PracticalPmwOptions(alpha, family_pmw.scale(), k, 20);
    core::PmwCm pmw(&wb.dataset, &oracle, options, 1500 + k);
    core::PmwAnswerer pmw_answerer(&pmw);
    core::GameResult pmw_result =
        bench::PlayFamilyGame(&pmw_answerer, &family_pmw, k, wb, 2500 + k);

    core::CompositionBaseline::Options comp_options;
    comp_options.privacy = {1.0, 1e-6};
    comp_options.max_queries = k;
    core::CompositionBaseline composition(&wb.dataset, &oracle, comp_options,
                                          3500 + k);
    core::GameResult comp_result =
        bench::PlayFamilyGame(&composition, &family_comp, k, wb, 2500 + k);

    table.AddRow(
        {TablePrinter::FmtInt(k),
         TablePrinter::FmtSci(analysis::LipschitzKQueriesN(p)),
         TablePrinter::FmtSci(analysis::CompositionKQueriesN(
             p, analysis::LipschitzSingleQueryN(p))),
         TablePrinter::Fmt(pmw_result.MaxError()),
         TablePrinter::Fmt(comp_result.MaxError())});
  }
  table.Print();
  std::printf(
      "shape check: the pmw column should stay ~flat while the composition "
      "column grows with k.\n");
}

}  // namespace
}  // namespace pmw

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  pmw::RunDimensionSweep();
  pmw::RunKSweep();
  return 0;
}
