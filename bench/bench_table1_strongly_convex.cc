// Table 1, row 4 — sigma-strongly convex losses.
//
// Paper columns:   single query n = O~(sqrt(d)/(sqrt(sigma) alpha eps))
//                  k queries   n = O~(sqrt(log|X|)/eps *
//                                     max{sqrt(d)/(sqrt(sigma) alpha^{3/2}),
//                                         log k/alpha^2})       [BST14 route]
// The claim to verify: stronger convexity makes the single-query oracle
// (output perturbation / localization) more accurate at a fixed budget —
// the 1/sigma dependence — and the k-query mechanism inherits it.

#include <benchmark/benchmark.h>

#include "analysis/bounds.h"
#include "bench_util.h"
#include "erm/localization_oracle.h"
#include "erm/output_perturbation_oracle.h"

namespace pmw {
namespace {

void RunSigmaSweepSingleQuery() {
  bench::PrintHeader(
      "Table 1 row 4 (strongly convex): single-query error vs sigma at "
      "eps=0.1 (error should fall as sigma grows)");
  TablePrinter table({"sigma", "paper n(1)", "output-pert err",
                      "localization err"});
  const int d = 4;
  const double alpha = 0.1;
  const int n = 30000;
  bench::Workbench wb(d, n, 50);
  for (double sigma : {0.1, 0.3, 1.0}) {
    analysis::BoundParams p;
    p.alpha = alpha;
    p.dim = d;
    p.sigma = sigma;
    p.privacy = {1.0, 1e-6};

    losses::StronglyConvexFamily family(d, sigma);
    erm::OutputPerturbationOracle output_pert;
    erm::LocalizationOracle localization;
    RunningStats op_err, loc_err;
    Rng rng(5100 + static_cast<int>(sigma * 10));
    for (int trial = 0; trial < 10; ++trial) {
      convex::CmQuery query = family.Next(&rng);
      erm::OracleContext context;
      context.privacy = {0.1, 1e-6};
      Rng ra(5200 + trial), rb(5200 + trial);
      auto a = output_pert.Solve(query, wb.dataset, context, &ra);
      auto b = localization.Solve(query, wb.dataset, context, &rb);
      if (a.ok()) {
        op_err.Add(wb.error_oracle->AnswerError(query, wb.data_hist, *a));
      }
      if (b.ok()) {
        loc_err.Add(wb.error_oracle->AnswerError(query, wb.data_hist, *b));
      }
    }
    table.AddRow(
        {TablePrinter::Fmt(sigma, 2),
         TablePrinter::FmtSci(analysis::StronglyConvexSingleQueryN(p)),
         TablePrinter::Fmt(op_err.mean()),
         TablePrinter::Fmt(loc_err.mean())});
  }
  table.Print();
}

void RunKQuerySweep() {
  bench::PrintHeader(
      "Table 1 row 4: k strongly-convex queries through Figure 3");
  TablePrinter table({"sigma", "k", "paper n(k)", "pmw maxerr", "updates"});
  const int d = 4;
  const double alpha = 0.15;
  const int n = 120000;
  bench::Workbench wb(d, n, 51);
  for (double sigma : {0.2, 0.6}) {
    for (int k : {100, 400}) {
      analysis::BoundParams p;
      p.alpha = alpha;
      p.dim = d;
      p.sigma = sigma;
      p.k = k;
      p.log_universe = (d + 1) * std::log(2.0);
      p.privacy = {1.0, 1e-6};

      losses::StronglyConvexFamily family(d, sigma);
      erm::OutputPerturbationOracle oracle;
      core::PmwOptions options =
          bench::PracticalPmwOptions(alpha, family.scale(), k, 20);
      core::PmwCm pmw(&wb.dataset, &oracle, options,
                      5400 + k + static_cast<int>(100 * sigma));
      core::PmwAnswerer answerer(&pmw);
      core::GameResult result =
          bench::PlayFamilyGame(&answerer, &family, k, wb, 5500 + k);
      table.AddRow(
          {TablePrinter::Fmt(sigma, 2), TablePrinter::FmtInt(k),
           TablePrinter::FmtSci(analysis::StronglyConvexKQueriesN(p)),
           TablePrinter::Fmt(result.MaxError()),
           TablePrinter::FmtInt(pmw.update_count())});
    }
  }
  table.Print();
}

}  // namespace
}  // namespace pmw

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  pmw::RunSigmaSweepSingleQuery();
  pmw::RunKQuerySweep();
  return 0;
}
