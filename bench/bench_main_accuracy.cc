// Theorem 3.8 — the paper's main accuracy theorem for Figure 3:
//   n = max(n', 4096 S^2 sqrt(log|X| log(4/delta)) log(8k/beta) /
//           (eps alpha^2))
// suffices for (alpha, beta)-accuracy on k adaptive CM queries.
// Regenerated as (a) measured max excess risk vs n at fixed k — the error
// must fall as n grows and cross below alpha; (b) measured max error vs k
// at fixed n — near-flat growth (the theorem's log k); (c) the same run
// with an adaptive analyst, since Theorem 3.8 quantifies over adaptive
// adversaries.

#include <benchmark/benchmark.h>

#include "analysis/bounds.h"
#include "bench_util.h"
#include "erm/noisy_gradient_oracle.h"

namespace pmw {
namespace {

void RunNSweep() {
  bench::PrintHeader(
      "Theorem 3.8: max excess risk vs n (d=4, k=150, alpha target 0.15)");
  TablePrinter table({"n", "pmw maxerr", "mean err", "updates", "halted"});
  const int d = 4;
  const double alpha = 0.15;
  const int k = 150;
  for (int n : {2000, 8000, 32000, 128000, 512000}) {
    bench::Workbench wb(d, n, 60);
    losses::LipschitzFamily family(d);
    erm::NoisyGradientOracle oracle;
    core::PmwOptions options =
        bench::PracticalPmwOptions(alpha, family.scale(), k, 20);
    core::PmwCm pmw(&wb.dataset, &oracle, options, 6000 + n);
    core::PmwAnswerer answerer(&pmw);
    core::GameResult result =
        bench::PlayFamilyGame(&answerer, &family, k, wb, 6100 + n);
    table.AddRow({TablePrinter::FmtInt(n),
                  TablePrinter::Fmt(result.MaxError()),
                  TablePrinter::Fmt(result.MeanError()),
                  TablePrinter::FmtInt(pmw.update_count()),
                  result.mechanism_halted ? "yes" : "no"});
  }
  table.Print();
  analysis::BoundParams p;
  p.alpha = alpha;
  p.dim = d;
  p.k = k;
  p.log_universe = (d + 1) * std::log(2.0);
  p.privacy = {1.0, 1e-6};
  std::printf(
      "theorem n with printed constants: %.2e (the shape — error falling "
      "below alpha as n grows — is the reproduction target; our practical "
      "T makes far smaller n suffice).\n",
      analysis::Theorem38N(p, 0.0));
}

void RunKSweep() {
  bench::PrintHeader("Theorem 3.8: max excess risk vs k at n = 120000");
  TablePrinter table(
      {"k", "oblivious analyst maxerr", "adaptive analyst maxerr"});
  const int d = 4;
  const double alpha = 0.15;
  const int n = 120000;
  bench::Workbench wb(d, n, 61);
  for (int k : {50, 200, 800}) {
    losses::LipschitzFamily family_a(d);
    erm::NoisyGradientOracle oracle_a;
    core::PmwOptions options =
        bench::PracticalPmwOptions(alpha, family_a.scale(), k, 20);
    core::PmwCm pmw_a(&wb.dataset, &oracle_a, options, 6200 + k);
    core::PmwAnswerer answerer_a(&pmw_a);
    core::GameResult oblivious =
        bench::PlayFamilyGame(&answerer_a, &family_a, k, wb, 6300 + k);

    losses::LipschitzFamily family_b(d);
    erm::NoisyGradientOracle oracle_b;
    core::PmwOptions adaptive_options = options;
    adaptive_options.scale = 2.0 * (1.0 + 1.5 * 0.3);
    core::PmwCm pmw_b(&wb.dataset, &oracle_b, adaptive_options, 6400 + k);
    core::PmwAnswerer answerer_b(&pmw_b);
    core::AdaptiveRefinementAnalyst analyst(&family_b, /*sigma=*/0.3,
                                            /*fresh_probability=*/0.5);
    Rng rng(6500 + k);
    core::GameResult adaptive = core::RunAccuracyGame(
        &answerer_b, &analyst, k, *wb.error_oracle, wb.data_hist, &rng);

    table.AddRow({TablePrinter::FmtInt(k),
                  TablePrinter::Fmt(oblivious.MaxError()),
                  TablePrinter::Fmt(adaptive.MaxError())});
  }
  table.Print();
  std::printf(
      "shape check: both columns stay near the alpha target as k grows "
      "8-fold (Theorem 3.8's log k dependence).\n");
}

}  // namespace
}  // namespace pmw

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  pmw::RunNSweep();
  pmw::RunKSweep();
  return 0;
}
