// Section 1.3 — differential privacy and generalization in adaptive data
// analysis ([DFH+15, HU14, BSSU15]).
//
// The experiment (a Freedman-style overfitting attack): the data has NO
// true signal — features and label are independent coins, so every
// label-agreement query has population value exactly 1/2. The analyst asks
// k probe queries, aligns each probe by the sign of its released deviation
// from 1/2, and finally asks the aggregate "cheat" query built from the
// aligned probes. Against a non-private mechanism the cheat answer is
// systematically inflated above 1/2 (the analyst has harvested the
// dataset's sampling noise); against a differentially private mechanism
// the inflation disappears — the transcript generalizes. We report the
// mean signed bias of the cheat answer over repeated runs for (a) exact
// answers, (b) HR10 private multiplicative weights, (c) Laplace
// composition.

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_util.h"
#include "core/linear_query.h"
#include "core/pmw_linear.h"
#include "dp/composition.h"

namespace pmw {
namespace {

// Label-agreement parity probe: 1[parity of chosen feature signs == label
// sign]. Population value 1/2 under the independent-coins distribution.
core::LinearQuery MakeProbe(const data::Universe& universe,
                            const std::vector<int>& coords, int tag) {
  losses::Predicate pred = [coords](const data::Row& r) -> double {
    int parity = 0;
    for (int c : coords) {
      if (r.features[c] > 0) parity ^= 1;
    }
    int label_bit = r.label > 0 ? 1 : 0;
    return parity == label_bit ? 1.0 : 0.0;
  };
  return core::MakeLinearQuery(universe, pred,
                               "probe#" + std::to_string(tag));
}

struct RunOutcome {
  double cheat_bias = 0.0;       // released cheat answer - 1/2
  double cheat_dataset_bias = 0.0;  // true dataset value of cheat - 1/2
};

// One attack run: ask k probes through `answer_fn`, build the aligned
// aggregate, ask it, and report the signed bias.
template <typename AnswerFn>
RunOutcome RunAttack(const data::Universe& universe,
                     const data::Histogram& data_hist, int d, int k,
                     uint64_t seed, AnswerFn&& answer_fn) {
  Rng rng(seed);
  std::vector<core::LinearQuery> probes;
  std::vector<double> released;
  probes.reserve(k);
  for (int j = 0; j < k; ++j) {
    int width = 1 + rng.UniformInt(d);
    std::vector<int> coords;
    for (int c = 0; c < d; ++c) {
      if (rng.Bernoulli(static_cast<double>(width) / d)) coords.push_back(c);
    }
    if (coords.empty()) coords.push_back(rng.UniformInt(d));
    probes.push_back(MakeProbe(universe, coords, j));
    released.push_back(answer_fn(probes.back()));
  }
  // The cheat query: average of probes, each flipped so its released
  // deviation is positive. Population value stays exactly 1/2.
  core::LinearQuery cheat;
  cheat.label = "cheat";
  cheat.values.assign(universe.size(), 0.0);
  for (int j = 0; j < k; ++j) {
    double sign = released[j] >= 0.5 ? 1.0 : -1.0;
    for (int x = 0; x < universe.size(); ++x) {
      // Aligned probe: p or (1-p).
      double v = sign > 0 ? probes[j].values[x] : 1.0 - probes[j].values[x];
      cheat.values[x] += v / k;
    }
  }
  RunOutcome outcome;
  outcome.cheat_bias = answer_fn(cheat) - 0.5;
  outcome.cheat_dataset_bias = cheat.Evaluate(data_hist) - 0.5;
  return outcome;
}

void RunExperiment() {
  bench::PrintHeader(
      "Section 1.3: adaptive overfitting attack — population value of the "
      "cheat query is exactly 0.5");
  const int d = 6;
  const int n = 1000;
  const int k = 300;
  const int runs = 12;

  data::LabeledHypercubeUniverse universe(d);
  data::Histogram population = data::UniformDistribution(universe);

  TablePrinter table({"mechanism", "mean cheat bias", "runs biased up",
                      "mean |dataset cheat bias|"});

  RunningStats exact_bias, pmw_bias, laplace_bias;
  RunningStats exact_ds, pmw_ds, laplace_ds;
  int exact_up = 0, pmw_up = 0, laplace_up = 0;

  for (int run = 0; run < runs; ++run) {
    Rng data_rng(11000 + run);
    data::Dataset dataset = population.SampleDataset(universe, n, &data_rng);
    data::Histogram data_hist = data::Histogram::FromDataset(dataset);

    // (a) exact answers: the analyst sees the dataset values themselves.
    RunOutcome exact = RunAttack(
        universe, data_hist, d, k, 12000 + run,
        [&](const core::LinearQuery& q) { return q.Evaluate(data_hist); });
    exact_bias.Add(exact.cheat_bias);
    exact_ds.Add(std::abs(exact.cheat_dataset_bias));
    if (exact.cheat_bias > 0) ++exact_up;

    // (b) HR10 private multiplicative weights.
    core::PmwLinearOptions options;
    options.alpha = 0.3;
    options.privacy = {1.0, 1e-6};
    options.override_updates = 8;
    core::PmwLinear pmw(&dataset, options, 13000 + run);
    RunOutcome pmw_out = RunAttack(
        universe, data_hist, d, k, 12000 + run,
        [&](const core::LinearQuery& q) {
          auto a = pmw.AnswerQuery(q);
          return a.ok() ? a.value().value : 0.5;
        });
    pmw_bias.Add(pmw_out.cheat_bias);
    pmw_ds.Add(std::abs(pmw_out.cheat_dataset_bias));
    if (pmw_out.cheat_bias > 0) ++pmw_up;

    // (c) Laplace composition across the k+1 queries.
    dp::PrivacyParams per_query = dp::PerRoundBudget({1.0, 1e-6}, k + 1);
    Rng noise_rng(14000 + run);
    RunOutcome lap = RunAttack(
        universe, data_hist, d, k, 12000 + run,
        [&](const core::LinearQuery& q) {
          return q.Evaluate(data_hist) +
                 noise_rng.Laplace((1.0 / n) / per_query.epsilon);
        });
    laplace_bias.Add(lap.cheat_bias);
    laplace_ds.Add(std::abs(lap.cheat_dataset_bias));
    if (lap.cheat_bias > 0) ++laplace_up;
  }

  auto row = [&](const char* name, const RunningStats& bias, int up,
                 const RunningStats& ds) {
    table.AddRow({name, TablePrinter::Fmt(bias.mean()),
                  TablePrinter::FmtInt(up) + "/" + TablePrinter::FmtInt(runs),
                  TablePrinter::Fmt(ds.mean())});
  };
  row("exact (non-private)", exact_bias, exact_up, exact_ds);
  row("pmw-linear (HR10)", pmw_bias, pmw_up, pmw_ds);
  row("laplace composition", laplace_bias, laplace_up, laplace_ds);
  table.Print();
  std::printf(
      "shape check: the exact mechanism's cheat bias is systematically "
      "positive (overfitting: ~0.4/sqrt(n) per aligned probe); both DP "
      "mechanisms' biases centre on 0 — the generalization guarantee of "
      "[DFH+15, BSSU15] the paper's Section 1.3 invokes.\n");
}

}  // namespace
}  // namespace pmw

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  pmw::RunExperiment();
  return 0;
}
