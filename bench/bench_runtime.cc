// Section 4.3 — running time.
//
// The paper: each round costs poly(n, d) for the sparse vector and the
// oracle plus O~(|X|) = O~(2^d) for the histogram update; total
// poly(n, |X|, k), exponential in the data dimension (and inherently so,
// [Ull13]). Regenerated as google-benchmark timings of (a) one full
// AnswerQuery round vs |X| and (b) the MW update step alone vs |X| — both
// must scale linearly in |X|.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench_util.h"
#include "erm/nonprivate_oracle.h"

namespace pmw {
namespace {

void BM_PmwAnswerQuery(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  bench::Workbench wb(d, 60000, 90 + d);
  losses::LipschitzFamily family(d);
  erm::NonPrivateOracle oracle;
  core::PmwOptions options =
      bench::PracticalPmwOptions(0.1, family.scale(), 1 << 20, 1 << 20);
  core::PmwCm pmw(&wb.dataset, &oracle, options, 9000 + d);
  Rng rng(9100 + d);
  for (auto _ : state) {
    convex::CmQuery query = family.Next(&rng);
    auto answer = pmw.AnswerQuery(query);
    benchmark::DoNotOptimize(answer);
  }
  state.counters["universe"] = 1 << (d + 1);
  state.SetComplexityN(1 << (d + 1));
}
BENCHMARK(BM_PmwAnswerQuery)->DenseRange(3, 9, 2)->Complexity(benchmark::oN);

void BM_MwUpdateStep(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  data::LabeledHypercubeUniverse universe(d);
  data::Histogram hypothesis = data::Histogram::Uniform(universe.size());
  losses::LipschitzFamily family(d);
  Rng rng(9200 + d);
  convex::CmQuery query = family.Next(&rng);
  convex::Vec theta_hat = rng.InUnitBall(d);
  convex::Vec theta_t = rng.InUnitBall(d);
  convex::Vec direction = convex::Sub(theta_t, theta_hat);
  for (auto _ : state) {
    std::vector<double> payoff(universe.size());
    for (int x = 0; x < universe.size(); ++x) {
      payoff[x] = convex::Dot(direction,
                              query.loss->Gradient(theta_hat, universe.row(x)));
    }
    hypothesis = hypothesis.MultiplicativeUpdate(payoff, -0.1);
    benchmark::DoNotOptimize(hypothesis);
  }
  state.counters["universe"] = universe.size();
  state.SetComplexityN(universe.size());
}
BENCHMARK(BM_MwUpdateStep)->DenseRange(3, 11, 2)->Complexity(benchmark::oN);

void BM_SparseVectorProcess(benchmark::State& state) {
  dp::SparseVector::Options options;
  options.max_top_answers = 1 << 20;
  options.alpha = 0.5;
  options.sensitivity = 1e-6;
  options.privacy = {1.0, 1e-6};
  dp::SparseVector sv(options, 7);
  for (auto _ : state) {
    auto answer = sv.Process(0.0);
    benchmark::DoNotOptimize(answer);
  }
}
BENCHMARK(BM_SparseVectorProcess);

void BM_HistogramFromDataset(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  data::LabeledHypercubeUniverse universe(6);
  data::Histogram dist = data::UniformDistribution(universe);
  Rng rng(5);
  data::Dataset dataset = dist.SampleDataset(universe, n, &rng);
  for (auto _ : state) {
    auto h = data::Histogram::FromDataset(dataset);
    benchmark::DoNotOptimize(h);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_HistogramFromDataset)->Range(1 << 10, 1 << 18)
    ->Complexity(benchmark::oN);

}  // namespace
}  // namespace pmw

BENCHMARK_MAIN();
