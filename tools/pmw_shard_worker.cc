// pmw_shard_worker — launcher for one shard-group worker process of the
// multi-host deployment (see cluster/worker.h and README.md).
//
//   pmw_shard_worker [--host=127.0.0.1] [--port=0] [--auth-token=SECRET]
//
// Prints exactly one line
//
//   PMW_SHARD_WORKER_PORT=<bound port>
//
// to stdout once the listener is up (machine-readable: the test harness
// and CI read the ephemeral port from it), then serves until stdin
// reaches EOF — tying the worker's lifetime to its parent's pipe, so a
// crashed or finished parent never leaks workers.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "cluster/worker.h"
#include "common/result.h"

namespace {

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  pmw::cluster::ShardWorkerOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (ParseFlag(arg, "host", &value)) {
      options.host = value;
    } else if (ParseFlag(arg, "port", &value)) {
      options.port = static_cast<uint16_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(arg, "auth-token", &value)) {
      options.auth_token = value;
    } else {
      std::fprintf(stderr,
                   "pmw_shard_worker: unknown argument '%s'\n"
                   "usage: pmw_shard_worker [--host=IPV4] [--port=N] "
                   "[--auth-token=SECRET]\n",
                   arg.c_str());
      return 2;
    }
  }

  pmw::cluster::ShardWorker worker(options);
  pmw::Status started = worker.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "pmw_shard_worker: %s\n",
                 started.message().c_str());
    return 1;
  }
  std::printf("PMW_SHARD_WORKER_PORT=%u\n",
              static_cast<unsigned>(worker.port()));
  std::fflush(stdout);

  // Block until the parent closes our stdin (or we are signalled).
  char buffer[256];
  while (true) {
    const ssize_t n = read(STDIN_FILENO, buffer, sizeof(buffer));
    if (n <= 0) break;
  }
  worker.Shutdown();
  return 0;
}
