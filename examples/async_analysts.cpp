// Async serving: many analysts, one private dataset, one front door.
//
// Four analyst threads call the api concurrently: each Call travels the
// in-process transport into the ServerEndpoint, where a QuotaManager
// admits or rejects at the door (typed kQuotaExceeded, zero privacy
// cost — the ledger never sees rejected queries), a bounded MPSC queue
// fixes the arrival order, and a dispatcher thread coalesces requests
// into batches for the single-writer serving engine. An epoch-keyed plan
// cache reuses per-query solver work across batches until a hard round
// moves the hypothesis.
//
// One analyst is latency-sensitive and stamps a deadline on every call:
// requests that would wait too long resolve kDeadlineExpired — also at
// zero privacy cost.
//
// Build & run:  ./build/async_analysts

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "api/pmw_api.h"
#include "data/binary_universe.h"
#include "data/generators.h"

int main() {
  using namespace pmw;

  // Universe, sensitive dataset: as in the quickstart.
  data::LabeledHypercubeUniverse universe(5);
  data::Histogram truth = data::LogisticModelDistribution(
      universe, /*theta_star=*/{1.0, -0.6, 0.4, 0.0, 0.8},
      /*coordinate_biases=*/{0.5, 0.6, 0.4, 0.5, 0.5}, /*temperature=*/0.3);
  data::Dataset dataset = data::RoundedDataset(universe, truth, 100000);

  // A 16-query catalog every analyst shares.
  api::QueryCatalog catalog;
  api::WorkloadSpec workload;
  workload.family = api::WorkloadSpec::Family::kLipschitz;
  workload.dim = 5;
  auto names = catalog.Populate(workload, 16, /*seed=*/2, "pool/");

  // Front door: 40-query per-analyst quota, 2 prepare workers, and a
  // dispatcher that flushes at 32 requests or 500us, whichever first.
  api::ServerOptions options;
  options.mechanism.alpha = 0.15;
  options.mechanism.privacy = {1.0, 1e-6};
  options.mechanism.scale = catalog.scale();
  options.mechanism.max_queries = 100000;
  options.mechanism.override_updates = 16;
  options.serve.num_threads = 2;
  options.quota.per_analyst_queries = 40;
  options.dispatcher.max_batch = 32;
  options.dispatcher.max_wait = std::chrono::microseconds(500);
  api::ServerEndpoint server(&dataset, &catalog, options, /*seed=*/1);
  api::InProcessTransport transport(&server);

  // Traffic: 4 analysts, each cycling its slice of the catalog. The
  // "greedy" analyst submits 64 — everything past its 40-query quota
  // comes back as a typed kQuotaExceeded, costing no privacy. Analyst 3
  // is latency-sensitive: a 50ms deadline on every call.
  std::vector<std::thread> analysts;
  std::vector<int> answered(4, 0), rejected(4, 0), expired(4, 0);
  for (int a = 0; a < 4; ++a) {
    analysts.emplace_back([a, &transport, &names, &answered, &rejected,
                           &expired] {
      const int submissions = a == 0 ? 64 : 40;  // analyst 0 is greedy
      api::Client client(
          &transport, a == 0 ? "greedy" : "analyst-" + std::to_string(a));
      const auto deadline = a == 3 ? std::chrono::microseconds(50000)
                                   : std::chrono::microseconds(0);
      for (int j = 0; j < submissions; ++j) {
        api::AnswerEnvelope reply = client.Call(
            names[static_cast<size_t>(a + 3 * j) % names.size()], deadline);
        if (reply.ok()) {
          ++answered[static_cast<size_t>(a)];
        } else if (reply.error == api::ErrorCode::kDeadlineExpired) {
          ++expired[static_cast<size_t>(a)];
        } else {
          ++rejected[static_cast<size_t>(a)];
        }
      }
    });
  }
  for (std::thread& t : analysts) t.join();
  server.Shutdown();

  for (int a = 0; a < 4; ++a) {
    std::printf("analyst %d: %d answered, %d rejected, %d expired\n", a,
                answered[static_cast<size_t>(a)],
                rejected[static_cast<size_t>(a)],
                expired[static_cast<size_t>(a)]);
  }
  std::printf("\n%s\n", server.Report().c_str());
  std::printf("hard rounds remaining: %lld\n",
              server.quota().HardRoundsRemaining());
  return 0;
}
