// Async serving: many analysts, one private dataset, one front door.
//
// Four analyst threads submit convex-minimization queries concurrently
// through frontend::Dispatcher: each Submit returns a std::future, a
// bounded MPSC queue fixes the arrival order, and a dispatcher thread
// coalesces requests into batches for the single-writer PmwService.
// A QuotaManager rejects over-quota analysts at the door (typed error,
// zero privacy cost — the ledger never sees rejected queries), and an
// epoch-keyed PlanCache reuses per-query solver work across batches
// until a hard round moves the hypothesis.
//
// Build & run:  ./build/async_analysts

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "data/binary_universe.h"
#include "data/generators.h"
#include "erm/noisy_gradient_oracle.h"
#include "frontend/dispatcher.h"
#include "frontend/plan_cache.h"
#include "frontend/quota_manager.h"
#include "losses/loss_family.h"
#include "serve/pmw_service.h"

int main() {
  using namespace pmw;

  // Universe, sensitive dataset, oracle: as in the quickstart.
  data::LabeledHypercubeUniverse universe(5);
  data::Histogram truth = data::LogisticModelDistribution(
      universe, /*theta_star=*/{1.0, -0.6, 0.4, 0.0, 0.8},
      /*coordinate_biases=*/{0.5, 0.6, 0.4, 0.5, 0.5}, /*temperature=*/0.3);
  data::Dataset dataset = data::RoundedDataset(universe, truth, 100000);

  erm::NoisyGradientOracle oracle;
  core::PmwOptions options;
  options.alpha = 0.15;
  options.privacy = {1.0, 1e-6};
  options.scale = 2.0;
  options.max_queries = 100000;
  options.override_updates = 16;
  serve::ServeOptions serve_options;
  serve_options.num_threads = 2;  // shard each batch across 2 workers
  serve::PmwService service(&dataset, &oracle, options, /*seed=*/1,
                            serve_options);

  // Front door: 40-query per-analyst quota, cross-batch plan cache, and
  // a dispatcher that flushes at 32 requests or 500us, whichever first.
  frontend::QuotaOptions quota_options;
  quota_options.per_analyst_queries = 40;
  frontend::QuotaManager quota(&service, quota_options);
  frontend::PlanCache cache;
  frontend::DispatcherOptions dispatcher_options;
  dispatcher_options.max_batch = 32;
  dispatcher_options.max_wait = std::chrono::microseconds(500);
  frontend::Dispatcher dispatcher(&service, &quota, &cache,
                                  dispatcher_options);

  // Traffic: 4 analysts, each cycling its slice of a 16-loss pool. The
  // "greedy" analyst submits 64 — everything past its 40-query quota
  // comes back as a typed kResourceExhausted, costing no privacy.
  losses::LipschitzFamily family(5);
  Rng rng(2);
  std::vector<convex::CmQuery> pool = family.Generate(16, &rng);

  std::vector<std::thread> analysts;
  std::vector<int> answered(4, 0);
  std::vector<int> rejected(4, 0);
  for (int a = 0; a < 4; ++a) {
    analysts.emplace_back([a, &dispatcher, &pool, &answered, &rejected] {
      const int submissions = a == 0 ? 64 : 40;  // analyst 0 is greedy
      frontend::AnalystSession session(
          &dispatcher, a == 0 ? "greedy" : "analyst-" + std::to_string(a));
      for (int j = 0; j < submissions; ++j) {
        Result<convex::Vec> answer =
            session.Submit(pool[static_cast<size_t>(a + 3 * j) % pool.size()])
                .get();
        if (answer.ok()) {
          ++answered[static_cast<size_t>(a)];
        } else {
          ++rejected[static_cast<size_t>(a)];
        }
      }
    });
  }
  for (std::thread& t : analysts) t.join();
  dispatcher.Shutdown();

  for (int a = 0; a < 4; ++a) {
    std::printf("analyst %d: %d answered, %d rejected\n", a,
                answered[static_cast<size_t>(a)],
                rejected[static_cast<size_t>(a)]);
  }
  std::printf("%s\n", service.stats().Report().c_str());
  frontend::PlanCache::Stats cache_stats = cache.stats();
  std::printf("plan cache: %.0f%% hit rate (%lld hits, %lld invalidated)\n",
              100.0 * cache_stats.HitRate(), cache_stats.hits,
              cache_stats.invalidated);
  std::printf("hard rounds remaining: %lld of %d\n",
              quota.HardRoundsRemaining(), service.mechanism().schedule().T);
  std::printf("privacy spent (basic): eps=%.3f\n",
              service.mechanism().ledger().BasicTotal().epsilon);
  return 0;
}
