// Serving query traffic in coalesced batches — through the api layer,
// over a domain-sharded hypothesis.
//
// One client keeps a window of CallAsync() requests in flight; behind
// the front door the dispatcher coalesces them into dynamic batches for
// the sharded serving engine: a pool of workers prepares each batch's
// queries in parallel against an immutable per-epoch hypothesis
// snapshot, and the single writer commits answers in arrival order.
// With serve.num_shards > 1 the hypothesis itself is partitioned into
// domain shards, so each hard round's MW update also fans across the
// pool (ServingMeta reports the shard count back with every answer).
// Repeated names are prepared once per batch and reused across batches
// by the epoch-keyed plan cache. Answers and the privacy ledger are
// bit-identical to the sequential mechanism at any shard count, thread
// count, or window size.
//
// Build & run:  ./build/serving_batch

#include <cstdio>
#include <deque>
#include <future>
#include <vector>

#include "api/pmw_api.h"
#include "data/binary_universe.h"
#include "data/generators.h"

int main() {
  using namespace pmw;

  // Universe, sensitive dataset: as in the quickstart.
  data::LabeledHypercubeUniverse universe(5);
  data::Histogram truth = data::LogisticModelDistribution(
      universe, /*theta_star=*/{1.0, -0.6, 0.4, 0.0, 0.8},
      /*coordinate_biases=*/{0.5, 0.6, 0.4, 0.5, 0.5}, /*temperature=*/0.3);
  data::Dataset dataset = data::RoundedDataset(universe, truth, 100000);

  // Traffic: 512 requests cycling 16 named losses.
  api::QueryCatalog catalog;
  api::WorkloadSpec workload;
  workload.family = api::WorkloadSpec::Family::kLipschitz;
  workload.dim = 5;
  auto names = catalog.Populate(workload, 16, /*seed=*/2, "pool/");

  api::ServerOptions options;
  options.mechanism.alpha = 0.15;
  options.mechanism.privacy = {1.0, 1e-6};
  options.mechanism.scale = catalog.scale();
  options.mechanism.max_queries = 100000;
  options.mechanism.override_updates = 16;
  options.serve.num_threads = 4;  // shard each batch across 4 workers
  options.serve.num_shards = 4;   // partition the hypothesis 4 ways too
  options.dispatcher.max_batch = 64;
  api::ServerEndpoint server(&dataset, &catalog, options, /*seed=*/1);
  api::InProcessTransport transport(&server);
  api::Client client(&transport, "batch-client");

  // Pipeline: keep up to 64 calls in flight so the dispatcher has
  // something to coalesce (a synchronous loop would serve batches of 1).
  constexpr size_t kWindow = 64;
  constexpr int kRequests = 512;
  std::deque<std::future<api::AnswerEnvelope>> in_flight;
  int answered = 0;
  for (int j = 0; j < kRequests; ++j) {
    in_flight.push_back(
        client.CallAsync(names[static_cast<size_t>(j) % names.size()]));
    if (in_flight.size() >= kWindow) {
      if (in_flight.front().get().ok()) ++answered;
      in_flight.pop_front();
    }
  }
  double eps_spent = 0.0;
  unsigned shards = 0;
  while (!in_flight.empty()) {
    api::AnswerEnvelope reply = in_flight.front().get();
    in_flight.pop_front();
    if (reply.ok()) {
      ++answered;
      eps_spent = reply.meta.epsilon_spent;
      shards = reply.meta.shards;
    }
  }
  server.Shutdown();

  std::printf("%d/%d requests answered (hypothesis served from %u domain "
              "shards)\n",
              answered, kRequests, shards);
  std::printf("%s\n", server.Report().c_str());
  std::printf("privacy spent (basic): eps=%.3f\n", eps_spent);
  return 0;
}
