// Serving: answer query traffic in batches through serve::PmwService.
//
// A serving thread owns the service (the single writer) and drains
// request batches; a pool of workers prepares each batch's queries in
// parallel against an immutable per-epoch hypothesis snapshot, and the
// writer commits answers in arrival order. Repeated queries inside a
// shard — the common case when many clients ask overlapping questions —
// are prepared once and reused. Answers and the privacy ledger are
// bit-identical to the sequential mechanism at any thread count.
//
// Build & run:  ./build/serving_batch

#include <cstdio>
#include <span>
#include <vector>

#include "common/random.h"
#include "data/binary_universe.h"
#include "data/generators.h"
#include "erm/noisy_gradient_oracle.h"
#include "losses/loss_family.h"
#include "serve/pmw_service.h"

int main() {
  using namespace pmw;

  // Universe, sensitive dataset, oracle: as in the quickstart.
  data::LabeledHypercubeUniverse universe(5);
  data::Histogram truth = data::LogisticModelDistribution(
      universe, /*theta_star=*/{1.0, -0.6, 0.4, 0.0, 0.8},
      /*coordinate_biases=*/{0.5, 0.6, 0.4, 0.5, 0.5}, /*temperature=*/0.3);
  data::Dataset dataset = data::RoundedDataset(universe, truth, 100000);

  erm::NoisyGradientOracle oracle;
  core::PmwOptions options;
  options.alpha = 0.15;
  options.privacy = {1.0, 1e-6};
  options.scale = 2.0;
  options.max_queries = 100000;
  options.override_updates = 16;
  serve::ServeOptions serve_options;
  serve_options.num_threads = 4;  // shard each batch across 4 workers
  serve::PmwService service(&dataset, &oracle, options, /*seed=*/1,
                            serve_options);

  // Traffic: 512 requests cycling 16 distinct losses, served in batches
  // of 64 (what a front-end queue would hand the serving thread).
  losses::LipschitzFamily family(5);
  Rng rng(2);
  std::vector<convex::CmQuery> pool = family.Generate(16, &rng);
  std::vector<convex::CmQuery> traffic;
  for (int j = 0; j < 512; ++j) traffic.push_back(pool[j % pool.size()]);

  constexpr size_t kBatch = 64;
  int answered = 0;
  for (size_t start = 0; start < traffic.size(); start += kBatch) {
    size_t count = std::min(kBatch, traffic.size() - start);
    std::span<const convex::CmQuery> batch(&traffic[start], count);
    for (const auto& result : service.AnswerBatch(batch)) {
      if (result.ok()) ++answered;
    }
  }

  std::printf("%d/%zu requests answered\n", answered, traffic.size());
  std::printf("%s\n", service.stats().Report().c_str());
  std::printf("privacy spent (basic): eps=%.3f\n",
              service.mechanism().ledger().BasicTotal().epsilon);
  return 0;
}
