// Adaptive data analysis without overfitting (paper Section 1.3).
//
// Scenario: a quantitative researcher iteratively refines a model — each
// new query depends on the previous private answer (Tikhonov re-centring
// at the last fit). Against a naive pipeline such feedback loops harvest
// sampling noise; the paper's Section 1.3 points out that differentially
// private answers generalize ([DFH+15, BSSU15]). This example runs the
// adaptive refinement loop through Figure 3 and reports both the
// empirical (dataset) excess risk AND the population excess risk of every
// answer — the two must stay close.

#include <cstdio>

#include "common/random.h"
#include "core/accuracy_game.h"
#include "core/analysts.h"
#include "core/error.h"
#include "core/pmw_answerer.h"
#include "core/pmw_cm.h"
#include "data/binary_universe.h"
#include "data/generators.h"
#include "erm/noisy_gradient_oracle.h"
#include "losses/loss_family.h"

int main() {
  using namespace pmw;
  const int d = 4;
  const int n = 100000;
  const int k = 60;

  data::LabeledHypercubeUniverse universe(d);
  data::Histogram population = data::LogisticModelDistribution(
      universe, {0.8, -0.6, 0.3, 0.1}, {0.5, 0.5, 0.5, 0.5}, 0.3);
  // The dataset is a finite iid sample — NOT the population itself.
  Rng data_rng(31);
  data::Dataset sample = population.SampleDataset(universe, n, &data_rng);
  data::Histogram sample_hist = data::Histogram::FromDataset(sample);
  core::ErrorOracle measure(&universe);

  erm::NoisyGradientOracle oracle;
  core::PmwOptions options;
  options.alpha = 0.18;
  options.privacy = {1.0, 1e-6};
  options.scale = 2.0 * (1.0 + 1.5 * 0.3);
  options.max_queries = k;
  options.override_updates = 32;
  core::PmwCm mechanism(&sample, &oracle, options, 32);
  core::PmwAnswerer answerer(&mechanism);

  losses::LipschitzFamily family(d);
  core::AdaptiveRefinementAnalyst analyst(&family, /*sigma=*/0.3,
                                          /*fresh_probability=*/0.4);

  Rng rng(33);
  double worst_sample = 0.0, worst_population = 0.0;
  for (int j = 0; j < k; ++j) {
    convex::CmQuery query = analyst.NextQuery(&rng);
    auto answer = answerer.Answer(query);
    if (!answer.ok()) {
      std::printf("halted after %d queries\n", j);
      break;
    }
    analyst.ObserveAnswer(query, *answer);
    double on_sample = measure.AnswerError(query, sample_hist, *answer);
    double on_population = measure.AnswerError(query, population, *answer);
    worst_sample = std::max(worst_sample, on_sample);
    worst_population = std::max(worst_population, on_population);
    if (j % 12 == 0) {
      std::printf("query %2d (%s): sample excess %.4f | population excess "
                  "%.4f\n",
                  j, query.label.substr(0, 36).c_str(), on_sample,
                  on_population);
    }
  }
  std::printf("\nworst over %d adaptive queries: sample %.4f | population "
              "%.4f | generalization gap %.4f\n",
              k, worst_sample, worst_population,
              std::abs(worst_population - worst_sample));
  std::printf("(the gap stays small even though every query depended on "
              "previous answers — the DP-generalization connection of "
              "Section 1.3.)\n");
  return 0;
}
