// Private logistic regression at scale — the UGLM application (paper
// Section 4.2.2, Table 1 row 3).
//
// Scenario: an ad platform holds click logs (6 binary audience attributes
// + click/no-click). Campaign managers fit logistic models for many
// different audience recodings. Because logistic loss is a generalized
// linear model, the JT14-route oracle answers each selected query with
// dimension-independent error, and Figure 3 stretches one budget across
// all the campaigns. The example also decodes the model: it compares the
// privately fitted coefficients' signs against the ground-truth model.

#include <cstdio>

#include "common/random.h"
#include "core/error.h"
#include "core/pmw_cm.h"
#include "data/binary_universe.h"
#include "data/generators.h"
#include "erm/glm_oracle.h"
#include "losses/loss_family.h"
#include "losses/margin_losses.h"

int main() {
  using namespace pmw;
  const int d = 6;
  const int n = 150000;

  data::LabeledHypercubeUniverse universe(d);
  std::vector<double> true_model = {1.2, -0.9, 0.0, 0.5, -0.2, 0.7};
  data::Histogram clicks = data::LogisticModelDistribution(
      universe, true_model, std::vector<double>(d, 0.5), 0.25);
  data::Dataset log_data = data::RoundedDataset(universe, clicks, n);
  data::Histogram log_hist = data::Histogram::FromDataset(log_data);
  core::ErrorOracle measure(&universe);

  erm::GlmOracle oracle;  // JT14 route: dimension-independent
  core::PmwOptions options;
  options.alpha = 0.12;
  options.privacy = {1.0, 1e-6};
  options.scale = 2.0;
  options.max_queries = 500;
  options.override_updates = 18;
  core::PmwCm mechanism(&log_data, &oracle, options, 21);

  // The flagship query: plain logistic regression on the raw encoding.
  losses::LogisticLoss logistic(d);
  convex::L2Ball ball(d);
  convex::CmQuery flagship{&logistic, &ball, "logistic(raw)"};
  auto answer = mechanism.AnswerQuery(flagship);
  if (!answer.ok()) {
    std::printf("halted: %s\n", answer.status().ToString().c_str());
    return 1;
  }
  const convex::Vec& theta = answer.value().theta;

  std::printf("private logistic model vs ground truth (sign agreement):\n");
  int agree = 0;
  for (int j = 0; j < d; ++j) {
    bool match = (theta[j] >= 0) == (true_model[j] >= 0) ||
                 std::abs(true_model[j]) < 0.1;
    agree += match ? 1 : 0;
    std::printf("  attr%-2d  true %+0.2f   private %+0.4f   %s\n", j,
                true_model[j], theta[j], match ? "ok" : "FLIPPED");
  }
  std::printf("excess empirical risk of the flagship fit: %.4f\n\n",
              measure.AnswerError(flagship, log_hist, theta));

  // Now 200 campaign-specific recodings through the same budget.
  losses::GlmFamily family(d);
  Rng rng(22);
  double worst = 0.0;
  int updates_before = mechanism.update_count();
  for (int q = 0; q < 200; ++q) {
    convex::CmQuery query = family.Next(&rng);
    auto a = mechanism.AnswerQuery(query);
    if (!a.ok()) break;
    worst = std::max(worst,
                     measure.AnswerError(query, log_hist, a.value().theta));
  }
  std::printf("200 campaign queries answered; worst excess risk %.4f; "
              "extra MW updates %d (sign agreement %d/%d)\n",
              worst, mechanism.update_count() - updates_before, agree, d);
  return 0;
}
