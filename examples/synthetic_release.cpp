// Synthetic data release from the PMW hypothesis (paper Section 4.3: "Our
// algorithm indeed can be modified to output a synthetic dataset (namely,
// the final histogram D_hat)").
//
// Scenario: a statistics bureau wants to publish a shareable synthetic
// microdata file that preserves the answers to a workload of CM queries.
// We run the *offline* PMW variant (Section 1.2) against the workload,
// sample a synthetic dataset from the final hypothesis histogram, and then
// evaluate BOTH the workload queries and fresh holdout queries on the
// synthetic file.

#include <cstdio>

#include "common/random.h"
#include "core/error.h"
#include "core/pmw_offline.h"
#include "data/binary_universe.h"
#include "data/generators.h"
#include "erm/noisy_gradient_oracle.h"
#include "losses/loss_family.h"

int main() {
  using namespace pmw;
  const int d = 4;
  const int n = 120000;

  data::LabeledHypercubeUniverse universe(d);
  data::Histogram truth = data::LogisticModelDistribution(
      universe, {1.0, -0.5, 0.4, -0.2}, {0.6, 0.45, 0.5, 0.55}, 0.3);
  data::Dataset private_data = data::RoundedDataset(universe, truth, n);
  data::Histogram private_hist = data::Histogram::FromDataset(private_data);
  core::ErrorOracle measure(&universe);

  // Fixed workload of 24 CM queries, then offline PMW.
  losses::LipschitzFamily family(d);
  Rng rng(41);
  auto workload = family.Generate(24, &rng);

  erm::NoisyGradientOracle oracle;
  core::PmwOfflineOptions options;
  options.rounds = 14;
  options.privacy = {1.0, 1e-6};
  options.scale = family.scale();
  core::PmwOfflineResult release =
      RunPmwOffline(private_data, workload, &oracle, options, 42);

  std::printf("offline PMW: %d select/update rounds used\n",
              release.rounds_used);

  // Publish a synthetic microdata file of 50k rows from the hypothesis.
  Rng sample_rng(43);
  data::Dataset synthetic =
      release.hypothesis.SampleDataset(universe, 50000, &sample_rng);
  data::Histogram synthetic_hist = data::Histogram::FromDataset(synthetic);

  double worst_workload = 0.0;
  for (const auto& query : workload) {
    worst_workload = std::max(
        worst_workload,
        measure.DatabaseError(query, private_hist, synthetic_hist));
  }
  std::printf("workload (24 queries): worst excess risk of answers computed "
              "FROM THE SYNTHETIC FILE: %.4f\n",
              worst_workload);

  // Fresh holdout queries never shown to the mechanism.
  auto holdout = family.Generate(24, &rng);
  double worst_holdout = 0.0;
  for (const auto& query : holdout) {
    worst_holdout = std::max(
        worst_holdout,
        measure.DatabaseError(query, private_hist, synthetic_hist));
  }
  std::printf("holdout  (24 queries): worst excess risk from the synthetic "
              "file: %.4f\n",
              worst_holdout);
  std::printf("L1 distance between private and synthetic histograms: %.4f\n",
              private_hist.L1Distance(synthetic_hist));
  std::printf("(workload error is controlled by the mechanism; holdout "
              "error shows how much of the distribution the hypothesis "
              "learned as a side effect.)\n");
  return 0;
}
