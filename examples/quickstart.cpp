// Quickstart: answer many convex-minimization queries on a sensitive
// dataset with one (eps, delta) budget — through the api front door,
// which is the stack's one public serving surface.
//
//   1. enumerate a finite data universe X (features + label) and
//      synthesize the sensitive dataset D in X^n,
//   2. build a QueryCatalog of named CM queries (the server owns the
//      losses; clients refer to queries by name),
//   3. stand up an api::ServerEndpoint — it runs the paper's Figure 3
//      mechanism behind an admission-controlled async dispatcher,
//   4. Call() named queries through an api::Client; every reply carries
//      the private minimizer plus serving metadata (hard/soft round,
//      epoch, remaining hard-round budget, privacy spent).
//
// Build & run:  ./build/quickstart

#include <cstdio>

#include "api/pmw_api.h"
#include "data/binary_universe.h"
#include "data/generators.h"

int main() {
  using namespace pmw;

  // A universe of 5 binary attributes plus a binary label: |X| = 64.
  data::LabeledHypercubeUniverse universe(5);

  // A synthetic sensitive dataset: 100k records from a logistic model.
  data::Histogram truth = data::LogisticModelDistribution(
      universe, /*theta_star=*/{1.0, -0.6, 0.4, 0.0, 0.8},
      /*coordinate_biases=*/{0.5, 0.6, 0.4, 0.5, 0.5}, /*temperature=*/0.3);
  data::Dataset dataset = data::RoundedDataset(universe, truth, 100000);

  // The catalog: 12 named Lipschitz losses (logistic, hinge, squared,
  // absolute — randomly recoded). The catalog owns every loss.
  api::QueryCatalog catalog;
  api::WorkloadSpec workload;
  workload.family = api::WorkloadSpec::Family::kLipschitz;
  workload.dim = 5;
  auto names = catalog.Populate(workload, 12, /*seed=*/2, "query/");

  // The server: one privacy budget covers ALL queries, however many
  // analysts ask them.
  api::ServerOptions options;
  options.mechanism.alpha = 0.15;           // target excess empirical risk
  options.mechanism.privacy = {1.0, 1e-6};  // total (eps, delta)
  options.mechanism.scale = catalog.scale();
  options.mechanism.max_queries = 1000;
  options.mechanism.override_updates = 16;  // practical T (HLM12 regime)
  api::ServerEndpoint server(&dataset, &catalog, options, /*seed=*/1);

  // The client: in-process zero-copy transport, one analyst identity.
  api::InProcessTransport transport(&server);
  api::Client client(&transport, "quickstart-analyst");

  std::printf("query       round  epoch  T-left  eps-spent\n");
  for (const auto& name : names) {
    api::AnswerEnvelope reply = client.Call(name);
    if (!reply.ok()) {
      std::printf("%s failed: [%s] %s\n", name.c_str(),
                  api::ErrorCodeName(reply.error), reply.message.c_str());
      return 1;
    }
    std::printf("%-10s  %-5s  %5llu  %6lld  %9.4f\n", name.c_str(),
                reply.meta.hard_round ? "hard" : "soft",
                static_cast<unsigned long long>(reply.meta.epoch),
                reply.meta.hard_rounds_remaining, reply.meta.epsilon_spent);
  }
  std::printf("\nfront-door stats:\n%s\n", server.Report().c_str());
  return 0;
}
