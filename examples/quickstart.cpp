// Quickstart: answer many convex-minimization queries on a sensitive
// dataset with one (eps, delta) budget, via the paper's Figure 3 mechanism.
//
//   1. enumerate a finite data universe X (features + label),
//   2. load/synthesize the sensitive dataset D in X^n,
//   3. construct PmwCm with a single-query oracle A',
//   4. ask adaptively chosen losses; each answer theta minimizes the
//      empirical loss to within alpha.
//
// Build & run:  ./build/examples/example_quickstart

#include <cstdio>

#include "common/random.h"
#include "core/error.h"
#include "core/pmw_cm.h"
#include "data/binary_universe.h"
#include "data/generators.h"
#include "erm/noisy_gradient_oracle.h"
#include "losses/loss_family.h"

int main() {
  using namespace pmw;

  // A universe of 5 binary attributes plus a binary label: |X| = 64.
  data::LabeledHypercubeUniverse universe(5);

  // A synthetic sensitive dataset: 100k records from a logistic model.
  data::Histogram truth = data::LogisticModelDistribution(
      universe, /*theta_star=*/{1.0, -0.6, 0.4, 0.0, 0.8},
      /*coordinate_biases=*/{0.5, 0.6, 0.4, 0.5, 0.5}, /*temperature=*/0.3);
  data::Dataset dataset = data::RoundedDataset(universe, truth, 100000);

  // The single-query oracle A' (BST14-style noisy gradient descent) and
  // the mechanism. One privacy budget covers ALL queries.
  erm::NoisyGradientOracle oracle;
  core::PmwOptions options;
  options.alpha = 0.15;               // target excess empirical risk
  options.privacy = {1.0, 1e-6};      // total (eps, delta)
  options.scale = 2.0;                // S for 1-Lipschitz losses, unit ball
  options.max_queries = 1000;
  options.override_updates = 16;      // practical T (HLM12 regime)
  core::PmwCm mechanism(&dataset, &oracle, options, /*seed=*/1);

  // Ask a few queries: logistic regression, SVM, least squares.
  losses::LipschitzFamily family(5);
  core::ErrorOracle measure(&universe);
  data::Histogram data_hist = data::Histogram::FromDataset(dataset);
  Rng rng(2);

  std::printf("query                         excess-risk  via-update\n");
  for (int j = 0; j < 12; ++j) {
    convex::CmQuery query = family.Next(&rng);
    Result<core::PmwAnswer> answer = mechanism.AnswerQuery(query);
    if (!answer.ok()) {
      std::printf("mechanism halted: %s\n", answer.status().ToString().c_str());
      return 1;
    }
    double err = measure.AnswerError(query, data_hist, answer.value().theta);
    std::printf("%-28s  %8.4f     %s\n", query.label.c_str(), err,
                answer.value().was_update ? "yes" : "no");
  }
  std::printf("\nMW updates spent: %d of %d; privacy events: %d\n",
              mechanism.update_count(), mechanism.schedule().T,
              mechanism.ledger().event_count());
  return 0;
}
