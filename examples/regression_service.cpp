// A multi-analyst private regression service — the scenario motivating the
// paper's introduction: "the same data is often analyzed repeatedly...
// many different analysts together need answers to a large number of
// distinct CM queries."
//
// Scenario: a health registry holds n patient records (5 binary risk
// factors + an outcome label). Three teams independently run their own
// analyses against the same registry: a least-squares team, a robust
// (Huber) team, and a ridge team. The service answers all of them through
// ONE PmwCm instance with one (eps, delta) budget, and we compare against
// the naive approach of paying for every query with fresh composition.

#include <cstdio>
#include <vector>

#include "common/random.h"
#include "core/composition_baseline.h"
#include "core/error.h"
#include "core/pmw_answerer.h"
#include "core/pmw_cm.h"
#include "data/binary_universe.h"
#include "data/generators.h"
#include "erm/noisy_gradient_oracle.h"
#include "losses/margin_losses.h"
#include "losses/transforms.h"

int main() {
  using namespace pmw;
  const int d = 5;
  const int n = 120000;
  const int queries_per_team = 30;

  data::LabeledHypercubeUniverse universe(d);
  data::Histogram truth = data::LogisticModelDistribution(
      universe, {0.9, -0.7, 0.5, 0.2, -0.3}, {0.55, 0.45, 0.5, 0.6, 0.5},
      0.3);
  data::Dataset registry = data::RoundedDataset(universe, truth, n);
  data::Histogram registry_hist = data::Histogram::FromDataset(registry);
  core::ErrorOracle measure(&universe);

  // The three teams' base losses plus per-team sign-flip "feature
  // recodings" (each recoded query is a distinct CM query).
  losses::SquaredLoss squared(d);
  losses::HuberLoss huber(d, 1.0);
  losses::SquaredLoss ridge_base(d);
  convex::L2Ball ball(d);

  erm::NoisyGradientOracle oracle;
  core::PmwOptions options;
  options.alpha = 0.15;
  options.privacy = {1.0, 1e-6};
  options.scale = 2.0 * (1.0 + 1.5 * 0.4);  // covers the ridge team's S
  options.max_queries = 3 * queries_per_team;
  options.override_updates = 20;
  core::PmwCm service(&registry, &oracle, options, 10);

  core::CompositionBaseline::Options naive_options;
  naive_options.privacy = {1.0, 1e-6};
  naive_options.max_queries = 3 * queries_per_team;
  core::CompositionBaseline naive(&registry, &oracle, naive_options, 11);

  Rng rng(12);
  std::vector<std::unique_ptr<convex::LossFunction>> owned;
  double service_worst = 0.0, naive_worst = 0.0;

  auto run_team = [&](const char* team, const convex::LossFunction* base,
                      double sigma) {
    double team_service = 0.0, team_naive = 0.0;
    for (int q = 0; q < queries_per_team; ++q) {
      std::vector<int> flips(d);
      for (int j = 0; j < d; ++j) flips[j] = rng.Bernoulli(0.5) ? 1 : -1;
      auto flipped = std::make_unique<losses::SignFlipLoss>(
          base, flips, rng.Bernoulli(0.5) ? 1 : -1);
      const convex::LossFunction* loss = flipped.get();
      owned.push_back(std::move(flipped));
      if (sigma > 0) {
        auto reg = std::make_unique<losses::TikhonovLoss>(
            loss, sigma, convex::Zeros(d));
        loss = reg.get();
        owned.push_back(std::move(reg));
      }
      convex::CmQuery query{loss, &ball, std::string(team)};

      auto service_answer = service.AnswerQuery(query);
      auto naive_answer = naive.Answer(query);
      if (service_answer.ok()) {
        team_service = std::max(
            team_service, measure.AnswerError(query, registry_hist,
                                              service_answer.value().theta));
      }
      if (naive_answer.ok()) {
        team_naive = std::max(team_naive,
                              measure.AnswerError(query, registry_hist,
                                                  *naive_answer));
      }
    }
    std::printf("%-22s worst excess risk: pmw-service %.4f | naive %.4f\n",
                team, team_service, team_naive);
    service_worst = std::max(service_worst, team_service);
    naive_worst = std::max(naive_worst, team_naive);
  };

  std::printf("health registry: n=%d records, |X|=%d, budget (1.0, 1e-6), "
              "%d total queries\n\n",
              n, universe.size(), 3 * queries_per_team);
  run_team("least-squares team", &squared, 0.0);
  run_team("robust (huber) team", &huber, 0.0);
  run_team("ridge team (sigma=.4)", &ridge_base, 0.4);

  std::printf("\noverall worst error:  pmw-service %.4f | naive composition "
              "%.4f\n",
              service_worst, naive_worst);
  std::printf("pmw-service spent %d MW updates; per-query naive budget "
              "eps=%.4f\n",
              service.update_count(), naive.per_query_budget().epsilon);
  return 0;
}
