// A multi-analyst private regression service over a real wire — the
// scenario motivating the paper's introduction: "the same data is often
// analyzed repeatedly... many different analysts together need answers
// to a large number of distinct CM queries."
//
// Scenario: a health registry holds n patient records (5 binary risk
// factors + an outcome label) and serves a Unix-domain socket. Three
// teams connect as separate clients — a GLM team fitting generalized
// linear models, a robust team running Lipschitz losses, and a ridge
// team with strongly convex objectives. Every request crosses the
// binary wire protocol (length-prefixed frames, version negotiation,
// typed error taxonomy), and ONE PmwCm privacy budget covers all three
// teams' traffic; accuracy degrades only with the number of *hard*
// rounds, not the number of teams.
//
// Build & run:  ./build/regression_service

#include <unistd.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "api/pmw_api.h"
#include "data/binary_universe.h"
#include "data/generators.h"

int main() {
  using namespace pmw;
  const int d = 5;
  const int n = 120000;
  const int queries_per_team = 30;

  data::LabeledHypercubeUniverse universe(d);
  data::Histogram truth = data::LogisticModelDistribution(
      universe, {0.9, -0.7, 0.5, 0.2, -0.3}, {0.55, 0.45, 0.5, 0.6, 0.5},
      0.3);
  data::Dataset registry = data::RoundedDataset(universe, truth, n);

  // Each team's workload goes into one shared catalog under its own
  // prefix; the catalog's scale() tells the mechanism the family-wide S.
  api::QueryCatalog catalog;
  api::WorkloadSpec glm{.family = api::WorkloadSpec::Family::kGlm,
                        .dim = d};
  api::WorkloadSpec robust{.family = api::WorkloadSpec::Family::kLipschitz,
                           .dim = d};
  api::WorkloadSpec ridge{
      .family = api::WorkloadSpec::Family::kStronglyConvex,
      .dim = d,
      .sigma = 0.4};
  catalog.Populate(glm, queries_per_team, /*seed=*/12, "glm/");
  catalog.Populate(robust, queries_per_team, /*seed=*/13, "robust/");
  catalog.Populate(ridge, queries_per_team, /*seed=*/14, "ridge/");

  api::ServerOptions options;
  options.mechanism.alpha = 0.15;
  options.mechanism.privacy = {1.0, 1e-6};
  options.mechanism.scale = catalog.scale();
  options.mechanism.max_queries = 3 * queries_per_team;
  options.mechanism.override_updates = 20;
  options.serve.num_threads = 2;
  api::ServerEndpoint endpoint(&registry, &catalog, options, /*seed=*/10);

  const std::string socket_path =
      "/tmp/pmw_registry_" + std::to_string(::getpid()) + ".sock";
  api::SocketServer server(&endpoint, socket_path);
  Status started = server.Start();
  if (!started.ok()) {
    std::printf("server failed to start: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf(
      "health registry: n=%d records, |X|=%d, budget (1.0, 1e-6), "
      "%d total queries, serving on %s\n\n",
      n, universe.size(), 3 * queries_per_team, socket_path.c_str());

  // Three teams, three connections, concurrent closed-loop traffic.
  const std::vector<std::string> teams = {"glm", "robust", "ridge"};
  std::vector<int> answered(teams.size(), 0), hard_rounds(teams.size(), 0);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < teams.size(); ++t) {
    threads.emplace_back([t, &teams, &socket_path, &answered,
                          &hard_rounds] {
      api::SocketTransport transport(socket_path);
      if (!transport.status().ok()) return;
      api::Client client(&transport, teams[t] + "-team");
      for (int q = 0; q < queries_per_team; ++q) {
        api::AnswerEnvelope reply =
            client.Call(teams[t] + "/" + std::to_string(q));
        if (reply.ok()) {
          ++answered[t];
          if (reply.meta.hard_round) ++hard_rounds[t];
        }
      }
      transport.Close();
    });
  }
  for (std::thread& thread : threads) thread.join();
  server.Shutdown();
  endpoint.Shutdown();

  for (size_t t = 0; t < teams.size(); ++t) {
    std::printf("%-7s team: %2d/%d answered, %d hard rounds triggered\n",
                teams[t].c_str(), answered[t], queries_per_team,
                hard_rounds[t]);
  }
  std::printf("\n%s\n", endpoint.Report().c_str());
  return 0;
}
