// ThreadPool unit + concurrency stress tests: result delivery, FIFO order
// on a single worker, exception propagation through futures, shutdown
// draining, and a many-producers / many-tasks stress run. The TSan CI job
// rebuilds this binary with -fsanitize=thread, so every synchronization
// claim in common/thread_pool.h is machine-checked, not just argued.

#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace pmw {
namespace {

TEST(ThreadPoolTest, DeliversResultsThroughFutures) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);

  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, SingleWorkerRunsTasksInSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&order, i] { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();

  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(ThreadPoolTest, ExceptionPropagatesToCallerNotWorker) {
  ThreadPool pool(2);
  std::future<int> bad = pool.Submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(bad.get(), std::runtime_error);

  // The worker that ran the throwing task is still alive and serving.
  std::future<int> good = pool.Submit([] { return 7; });
  EXPECT_EQ(good.get(), 7);
}

TEST(ThreadPoolTest, ExceptionMessageSurvivesTheHop) {
  ThreadPool pool(1);
  std::future<void> f =
      pool.Submit([] { throw std::runtime_error("detail: shard 3"); });
  try {
    f.get();
    FAIL() << "expected the task's exception";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "detail: shard 3");
  }
}

TEST(ThreadPoolTest, DestructorDrainsEveryQueuedTask) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 500; ++i) {
      // Fire-and-forget: futures dropped on purpose; the shutdown
      // contract alone must guarantee completion.
      pool.Submit([&ran] {
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // Destructor runs here: stop accepting, drain, join.
  }
  EXPECT_EQ(ran.load(), 500);
}

TEST(ThreadPoolTest, StressThousandsOfTasksManyProducers) {
  constexpr int kProducers = 8;
  constexpr int kTasksPerProducer = 1000;
  ThreadPool pool(4);
  std::atomic<long long> sum{0};

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &sum, p] {
      std::vector<std::future<void>> futures;
      futures.reserve(kTasksPerProducer);
      for (int i = 0; i < kTasksPerProducer; ++i) {
        futures.push_back(pool.Submit([&sum, p, i] {
          sum.fetch_add(p * kTasksPerProducer + i,
                        std::memory_order_relaxed);
        }));
      }
      for (auto& f : futures) f.get();
    });
  }
  for (std::thread& t : producers) t.join();

  const long long n = static_cast<long long>(kProducers) * kTasksPerProducer;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
  // tasks_completed lags future readiness by design; wait for quiescence.
  while (pool.tasks_completed() < n) std::this_thread::yield();
  EXPECT_EQ(pool.tasks_completed(), n);
}

TEST(ThreadPoolTest, SubmitAfterShutdownThrowsAndSchedulesNothing) {
  // The contract is explicit (common/thread_pool.h): Submit after
  // shutdown began is a documented error — std::runtime_error, nothing
  // scheduled — not undefined behavior.
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.Submit(
        [&ran] { ran.fetch_add(1, std::memory_order_relaxed); }));
  }
  pool.Shutdown();
  // Everything accepted before shutdown ran to completion...
  for (auto& f : futures) f.get();
  EXPECT_EQ(ran.load(), 16);

  // ...and late work is refused loudly, without scheduling.
  EXPECT_THROW(pool.Submit([&ran] { ran.fetch_add(1); }), std::runtime_error);
  EXPECT_EQ(ran.load(), 16);
  EXPECT_EQ(pool.tasks_completed(), 16);
  // size() reports the construction-time width even after the join.
  EXPECT_EQ(pool.size(), 2);
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  std::future<int> f = pool.Submit([] { return 5; });
  pool.Shutdown();
  pool.Shutdown();  // second call is a no-op, not a crash or double-join
  EXPECT_EQ(f.get(), 5);
  EXPECT_THROW(pool.Submit([] {}), std::runtime_error);
  // Destructor runs afterwards: a third (implicit) shutdown.
}

TEST(ThreadPoolTest, TwoWorkersCanBlockOnEachOther) {
  ThreadPool pool(2);
  // Two tasks that each wait for the other to have started: they can only
  // both finish if two workers run them concurrently.
  std::promise<void> a_started, b_started;
  std::shared_future<void> a_ready = a_started.get_future().share();
  std::shared_future<void> b_ready = b_started.get_future().share();
  std::future<void> a = pool.Submit([&a_started, b_ready] {
    a_started.set_value();
    b_ready.wait();
  });
  std::future<void> b = pool.Submit([&b_started, a_ready] {
    b_started.set_value();
    a_ready.wait();
  });
  EXPECT_EQ(a.wait_for(std::chrono::seconds(30)),
            std::future_status::ready);
  EXPECT_EQ(b.wait_for(std::chrono::seconds(30)),
            std::future_status::ready);
  a.get();
  b.get();
}

}  // namespace
}  // namespace pmw
