// Tests for the BSSU15-style transfer-theorem arithmetic (Section 1.3)
// and the measured generalization gap: DP answers on iid samples must
// transfer to the population, including under adaptivity.

#include <cmath>

#include "analysis/generalization.h"
#include "common/random.h"
#include "core/analysts.h"
#include "core/pmw_answerer.h"
#include "core/pmw_cm.h"
#include "data/binary_universe.h"
#include "data/generators.h"
#include "erm/noisy_gradient_oracle.h"
#include "erm/nonprivate_oracle.h"
#include "gtest/gtest.h"
#include "losses/loss_family.h"

namespace pmw {
namespace analysis {
namespace {

TEST(TransferTheoremTest, ShrinksWithN) {
  dp::PrivacyParams privacy{0.05, 1e-12};
  double small_n = TransferredPopulationAccuracy(0.1, privacy, 1e3, 0.05);
  double big_n = TransferredPopulationAccuracy(0.1, privacy, 1e7, 0.05);
  EXPECT_LT(big_n, small_n);
  // At huge n the bound approaches alpha + (e^eps - 1).
  EXPECT_NEAR(big_n, 0.1 + (std::exp(0.05) - 1.0), 0.01);
}

TEST(TransferTheoremTest, EpsilonDominatesWhenLarge) {
  dp::PrivacyParams loose{1.0, 1e-12};
  dp::PrivacyParams tight{0.01, 1e-12};
  EXPECT_GT(TransferredPopulationAccuracy(0.1, loose, 1e6, 0.05),
            TransferredPopulationAccuracy(0.1, tight, 1e6, 0.05));
}

TEST(TransferTheoremTest, SufficientNFiniteWhenEpsSmall) {
  dp::PrivacyParams privacy{0.02, 1e-12};
  double n = GeneralizationSufficientN(0.1, privacy, 0.05);
  EXPECT_GT(n, 0.0);
  EXPECT_LE(TransferredPopulationAccuracy(0.1, privacy, n, 0.05), 0.2);
}

TEST(TransferTheoremTest, SufficientNUnreachableWhenEpsLarge) {
  dp::PrivacyParams privacy{1.0, 1e-12};  // e^1 - 1 >> alpha
  EXPECT_LT(GeneralizationSufficientN(0.1, privacy, 0.05), 0.0);
}

// Measured: answers from a DP mechanism on an iid sample generalize —
// the max gap between sample and population excess risk over an
// *adaptive* interaction stays near the iid sampling deviation, far
// below the error scale itself.
class MeasuredGeneralizationTest : public ::testing::TestWithParam<int> {};

TEST_P(MeasuredGeneralizationTest, AdaptiveAnswersTransferToPopulation) {
  const int d = 3;
  const int n = 120000;
  data::LabeledHypercubeUniverse universe(d);
  data::Histogram population = data::LogisticModelDistribution(
      universe, {0.8, -0.6, 0.3}, {0.5, 0.5, 0.5}, 0.3);
  Rng data_rng(500 + GetParam());
  data::Dataset sample = population.SampleDataset(universe, n, &data_rng);
  data::Histogram sample_hist = data::Histogram::FromDataset(sample);
  core::ErrorOracle measure(&universe);

  erm::NoisyGradientOracle oracle;
  core::PmwOptions options;
  options.alpha = 0.15;
  options.privacy = {1.0, 1e-6};
  options.scale = 2.0 * (1.0 + 1.5 * 0.3);
  options.override_updates = 16;
  options.max_queries = 40;
  core::PmwCm mechanism(&sample, &oracle, options, 600 + GetParam());
  core::PmwAnswerer answerer(&mechanism);

  losses::LipschitzFamily family(d);
  core::AdaptiveRefinementAnalyst analyst(&family, 0.3, 0.5);
  Rng rng(700 + GetParam());
  double worst_gap = 0.0;
  for (int j = 0; j < 40; ++j) {
    convex::CmQuery query = analyst.NextQuery(&rng);
    auto answer = answerer.Answer(query);
    if (!answer.ok()) break;
    analyst.ObserveAnswer(query, *answer);
    worst_gap = std::max(
        worst_gap, GeneralizationGap(measure, query, sample_hist,
                                     population, *answer));
  }
  // Sampling deviation at n=120000 is ~0.006; allow generous slack.
  EXPECT_LE(worst_gap, 0.03);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MeasuredGeneralizationTest,
                         ::testing::Range(0, 4));

}  // namespace
}  // namespace analysis
}  // namespace pmw
