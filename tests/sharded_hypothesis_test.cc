// The sharding-invariance contract of core::ShardedHypothesis: at ANY
// power-of-two shard count the MW update produces the exact K = 1
// doubles — the bit-level foundation under the serving layer's
// "transcripts are identical at every (shards x threads) configuration"
// guarantee. Also covers the partition rules (power-of-two rounding,
// size clamping, fingerprints) and the zero-copy support slicing the
// epochs publish.

#include "core/sharded_hypothesis.h"

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "common/math_util.h"
#include "common/random.h"
#include "data/histogram.h"
#include "gtest/gtest.h"

namespace pmw {
namespace core {
namespace {

bool SameBits(double a, double b) {
  uint64_t ab, bb;
  std::memcpy(&ab, &a, sizeof(ab));
  std::memcpy(&bb, &b, sizeof(bb));
  return ab == bb;
}

std::vector<double> RandomPayoff(int size, Rng* rng) {
  std::vector<double> payoff(static_cast<size_t>(size));
  for (double& value : payoff) value = rng->Gaussian(0.0, 1.0);
  return payoff;
}

TEST(ShardedHypothesisTest, UpdateIsBitIdenticalAtEveryShardCount) {
  // Odd, non-power-of-two sizes included: the fixed reduction tree must
  // decompose exactly even when halving produces unequal shards.
  for (int size : {5, 16, 33, 128, 1000}) {
    ShardedHypothesis reference(size);
    ASSERT_EQ(reference.num_shards(), 1);
    std::vector<ShardedHypothesis> sharded;
    for (int shards : {2, 4, 8}) {
      sharded.emplace_back(size);
      sharded.back().Repartition(shards);
    }

    Rng rng(900 + static_cast<uint64_t>(size));
    for (int round = 0; round < 20; ++round) {
      const std::vector<double> payoff = RandomPayoff(size, &rng);
      const double eta = rng.Uniform(-2.0, 2.0);
      reference.MultiplicativeUpdate(payoff, eta);
      for (ShardedHypothesis& hypothesis : sharded) {
        hypothesis.MultiplicativeUpdate(payoff, eta);
        for (int i = 0; i < size; ++i) {
          ASSERT_TRUE(SameBits(reference[i], hypothesis[i]))
              << "size=" << size << " shards=" << hypothesis.num_shards()
              << " round=" << round << " index=" << i;
        }
      }
    }
  }
}

TEST(ShardedHypothesisTest, UpdateIsBitIdenticalUnderAConcurrentRunner) {
  // A deliberately adversarial runner: every shard on its own thread,
  // completion order scrambled. Per-shard work is disjoint and combines
  // are fixed-order on the caller, so the bits cannot move.
  constexpr int kSize = 257;
  ShardedHypothesis reference(kSize);
  ShardedHypothesis threaded(kSize);
  threaded.Repartition(4);
  std::atomic<int> sections{0};
  threaded.set_runner(
      [&sections](int shards, const std::function<void(int)>& fn) {
        ++sections;
        std::vector<std::thread> workers;
        for (int s = shards - 1; s >= 0; --s) {
          workers.emplace_back([&fn, s] { fn(s); });
        }
        for (std::thread& worker : workers) worker.join();
      });

  Rng rng(4242);
  for (int round = 0; round < 10; ++round) {
    const std::vector<double> payoff = RandomPayoff(kSize, &rng);
    const double eta = rng.Uniform(-1.5, 1.5);
    reference.MultiplicativeUpdate(payoff, eta);
    threaded.MultiplicativeUpdate(payoff, eta);
    for (int i = 0; i < kSize; ++i) {
      ASSERT_TRUE(SameBits(reference[i], threaded[i]))
          << "round=" << round << " index=" << i;
    }
  }
  // 3 parallel phases per update.
  EXPECT_EQ(sections.load(), 30);
}

TEST(ShardedHypothesisTest, RepartitionRoundsDownAndClamps) {
  ShardedHypothesis hypothesis(16);
  EXPECT_EQ(hypothesis.Repartition(1), 1);
  EXPECT_EQ(hypothesis.Repartition(2), 2);
  EXPECT_EQ(hypothesis.Repartition(3), 2);   // round down to a power of 2
  EXPECT_EQ(hypothesis.Repartition(4), 4);
  EXPECT_EQ(hypothesis.Repartition(7), 4);
  EXPECT_EQ(hypothesis.Repartition(64), 16);  // clamp to the size

  // Shards partition [0, size) contiguously, every one non-empty.
  hypothesis.Repartition(4);
  int expected_lo = 0;
  for (const HypothesisShard& shard : hypothesis.shards()) {
    EXPECT_EQ(shard.lo, expected_lo);
    EXPECT_GT(shard.size(), 0);
    expected_lo = shard.hi;
  }
  EXPECT_EQ(expected_lo, hypothesis.size());

  // Fingerprints identify the partition, not the content.
  ShardedHypothesis other(16);
  other.Repartition(4);
  EXPECT_EQ(hypothesis.fingerprint(), other.fingerprint());
  other.Repartition(2);
  EXPECT_NE(hypothesis.fingerprint(), other.fingerprint());
}

TEST(ShardedHypothesisTest, ShardSupportsConcatenateToTheFullSupport) {
  constexpr int kSize = 37;
  ShardedHypothesis hypothesis(kSize);
  hypothesis.Repartition(4);
  Rng rng(7);
  hypothesis.MultiplicativeUpdate(RandomPayoff(kSize, &rng), 0.8);

  const data::HistogramSupport full = hypothesis.CompactSupport();
  data::HistogramSupport stitched;
  for (const HypothesisShard& shard : hypothesis.shards()) {
    for (const auto& entry : hypothesis.CompactSupport(shard.lo, shard.hi)) {
      stitched.push_back(entry);
    }
  }
  ASSERT_EQ(stitched.size(), full.size());
  for (size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(stitched[i].first, full[i].first);
    EXPECT_TRUE(SameBits(stitched[i].second, full[i].second));
  }

  // And the zero-copy slices agree with the range compactions.
  for (const HypothesisShard& shard : hypothesis.shards()) {
    const data::SupportSlice slice =
        data::SliceSupport(full, shard.lo, shard.hi);
    const data::HistogramSupport range =
        hypothesis.CompactSupport(shard.lo, shard.hi);
    ASSERT_EQ(slice.size(), range.size());
    for (size_t i = 0; i < range.size(); ++i) {
      EXPECT_EQ(slice[i].first, range[i].first);
      EXPECT_TRUE(SameBits(slice[i].second, range[i].second));
    }
  }
}

TEST(ShardedHypothesisTest, PairwiseSumDecomposesAtEverySplit) {
  // The primitive under the normalizer: sum(lo, hi) must equal
  // sum(lo, mid) + sum(mid, hi) for the tree's own split point, at
  // every node — checked here for the root of assorted sizes.
  Rng rng(11);
  for (size_t n : {1u, 2u, 3u, 7u, 16u, 33u, 1024u, 1000u}) {
    std::vector<double> v(n);
    for (double& x : v) x = rng.Gaussian(0.0, 1.0);
    const double whole = PairwiseSum(v.data(), 0, n);
    if (n >= 2) {
      const size_t mid = n / 2;
      const double halves =
          PairwiseSum(v.data(), 0, mid) + PairwiseSum(v.data(), mid, n);
      EXPECT_TRUE(SameBits(whole, halves)) << "n=" << n;
    }
  }
}

}  // namespace
}  // namespace core
}  // namespace pmw
