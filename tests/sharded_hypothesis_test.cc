// The sharding-invariance contract of core::ShardedHypothesis: at ANY
// power-of-two shard count the MW update produces the exact K = 1
// doubles — the bit-level foundation under the serving layer's
// "transcripts are identical at every (shards x threads) configuration"
// guarantee. Also covers the partition rules (power-of-two rounding,
// size clamping, fingerprints) and the zero-copy support slicing the
// epochs publish.

#include "core/sharded_hypothesis.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include "common/math_util.h"
#include "common/random.h"
#include "data/histogram.h"
#include "gtest/gtest.h"

namespace pmw {
namespace core {
namespace {

bool SameBits(double a, double b) {
  uint64_t ab, bb;
  std::memcpy(&ab, &a, sizeof(ab));
  std::memcpy(&bb, &b, sizeof(bb));
  return ab == bb;
}

std::vector<double> RandomPayoff(int size, Rng* rng) {
  std::vector<double> payoff(static_cast<size_t>(size));
  for (double& value : payoff) value = rng->Gaussian(0.0, 1.0);
  return payoff;
}

TEST(ShardedHypothesisTest, UpdateIsBitIdenticalAtEveryShardCount) {
  // Odd, non-power-of-two sizes included: the fixed reduction tree must
  // decompose exactly even when halving produces unequal shards.
  for (int size : {5, 16, 33, 128, 1000}) {
    ShardedHypothesis reference(size);
    ASSERT_EQ(reference.num_shards(), 1);
    std::vector<ShardedHypothesis> sharded;
    for (int shards : {2, 4, 8}) {
      sharded.emplace_back(size);
      sharded.back().Repartition(shards);
    }

    Rng rng(900 + static_cast<uint64_t>(size));
    for (int round = 0; round < 20; ++round) {
      const std::vector<double> payoff = RandomPayoff(size, &rng);
      const double eta = rng.Uniform(-2.0, 2.0);
      reference.MultiplicativeUpdate(payoff, eta);
      for (ShardedHypothesis& hypothesis : sharded) {
        hypothesis.MultiplicativeUpdate(payoff, eta);
        for (int i = 0; i < size; ++i) {
          ASSERT_TRUE(SameBits(reference[i], hypothesis[i]))
              << "size=" << size << " shards=" << hypothesis.num_shards()
              << " round=" << round << " index=" << i;
        }
      }
    }
  }
}

TEST(ShardedHypothesisTest, UpdateIsBitIdenticalUnderAConcurrentRunner) {
  // A deliberately adversarial runner: every shard on its own thread,
  // completion order scrambled. Per-shard work is disjoint and combines
  // are fixed-order on the caller, so the bits cannot move.
  constexpr int kSize = 257;
  ShardedHypothesis reference(kSize);
  ShardedHypothesis threaded(kSize);
  threaded.Repartition(4);
  std::atomic<int> sections{0};
  threaded.set_runner(
      [&sections](int shards, const std::function<void(int)>& fn) {
        ++sections;
        std::vector<std::thread> workers;
        for (int s = shards - 1; s >= 0; --s) {
          workers.emplace_back([&fn, s] { fn(s); });
        }
        for (std::thread& worker : workers) worker.join();
      });

  Rng rng(4242);
  for (int round = 0; round < 10; ++round) {
    const std::vector<double> payoff = RandomPayoff(kSize, &rng);
    const double eta = rng.Uniform(-1.5, 1.5);
    reference.MultiplicativeUpdate(payoff, eta);
    threaded.MultiplicativeUpdate(payoff, eta);
    for (int i = 0; i < kSize; ++i) {
      ASSERT_TRUE(SameBits(reference[i], threaded[i]))
          << "round=" << round << " index=" << i;
    }
  }
  // 3 parallel phases per update.
  EXPECT_EQ(sections.load(), 30);
}

TEST(ShardedHypothesisTest, RepartitionRoundsDownAndClamps) {
  ShardedHypothesis hypothesis(16);
  EXPECT_EQ(hypothesis.Repartition(1), 1);
  EXPECT_EQ(hypothesis.Repartition(2), 2);
  EXPECT_EQ(hypothesis.Repartition(3), 2);   // round down to a power of 2
  EXPECT_EQ(hypothesis.Repartition(4), 4);
  EXPECT_EQ(hypothesis.Repartition(7), 4);
  EXPECT_EQ(hypothesis.Repartition(64), 16);  // clamp to the size

  // Shards partition [0, size) contiguously, every one non-empty.
  hypothesis.Repartition(4);
  int expected_lo = 0;
  for (const HypothesisShard& shard : hypothesis.shards()) {
    EXPECT_EQ(shard.lo, expected_lo);
    EXPECT_GT(shard.size(), 0);
    expected_lo = shard.hi;
  }
  EXPECT_EQ(expected_lo, hypothesis.size());

  // Fingerprints identify the partition, not the content.
  ShardedHypothesis other(16);
  other.Repartition(4);
  EXPECT_EQ(hypothesis.fingerprint(), other.fingerprint());
  other.Repartition(2);
  EXPECT_NE(hypothesis.fingerprint(), other.fingerprint());
}

TEST(ShardedHypothesisTest, ShardSupportsConcatenateToTheFullSupport) {
  constexpr int kSize = 37;
  ShardedHypothesis hypothesis(kSize);
  hypothesis.Repartition(4);
  Rng rng(7);
  hypothesis.MultiplicativeUpdate(RandomPayoff(kSize, &rng), 0.8);

  const data::HistogramSupport full = hypothesis.CompactSupport();
  data::HistogramSupport stitched;
  for (const HypothesisShard& shard : hypothesis.shards()) {
    for (const auto& entry : hypothesis.CompactSupport(shard.lo, shard.hi)) {
      stitched.push_back(entry);
    }
  }
  ASSERT_EQ(stitched.size(), full.size());
  for (size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(stitched[i].first, full[i].first);
    EXPECT_TRUE(SameBits(stitched[i].second, full[i].second));
  }

  // And the zero-copy slices agree with the range compactions.
  for (const HypothesisShard& shard : hypothesis.shards()) {
    const data::SupportSlice slice =
        data::SliceSupport(full, shard.lo, shard.hi);
    const data::HistogramSupport range =
        hypothesis.CompactSupport(shard.lo, shard.hi);
    ASSERT_EQ(slice.size(), range.size());
    for (size_t i = 0; i < range.size(); ++i) {
      EXPECT_EQ(slice[i].first, range[i].first);
      EXPECT_TRUE(SameBits(slice[i].second, range[i].second));
    }
  }
}

std::vector<double> SparsePayoff(int size, Rng* rng) {
  // Mostly-zero payoffs, the regime the sparse backend exists for. Both
  // zero signs appear: exact mode must treat -0.0 as untouched too (the
  // dense side adds eta * -0.0, which cannot move any log-weight).
  std::vector<double> payoff(static_cast<size_t>(size), 0.0);
  for (double& value : payoff) {
    const double coin = rng->Uniform(0.0, 1.0);
    if (coin < 0.2) {
      value = rng->Gaussian(0.0, 1.0);
    } else if (coin < 0.25) {
      value = -0.0;
    }
  }
  return payoff;
}

TEST(ShardedHypothesisTest, SparseExactModeIsBitIdenticalToDense) {
  // The tentpole contract: with exact-mode defaults the sparse backend
  // is indistinguishable from dense at the bit level — every entry,
  // every compacted support, at every shard count — while materializing
  // only the payoff-touched support.
  for (int size : {5, 16, 33, 128, 1000}) {
    for (int shards : {1, 2, 4, 8}) {
      ShardedHypothesis dense(size);
      dense.Repartition(shards);
      ShardedHypothesis sparse(size);
      sparse.SetBackend(HypothesisBackend::kSparse);
      sparse.Repartition(shards);
      ASSERT_EQ(sparse.num_shards(), dense.num_shards());
      EXPECT_EQ(sparse.materialized_entries(), 0);

      Rng rng(3100 + static_cast<uint64_t>(size) * 8 +
              static_cast<uint64_t>(shards));
      for (int round = 0; round < 12; ++round) {
        const std::vector<double> payoff = SparsePayoff(size, &rng);
        const double eta = rng.Uniform(-2.0, 2.0);
        dense.MultiplicativeUpdate(payoff, eta);
        sparse.MultiplicativeUpdate(payoff, eta);
        for (int i = 0; i < size; ++i) {
          ASSERT_TRUE(SameBits(dense[i], sparse[i]))
              << "size=" << size << " shards=" << shards
              << " round=" << round << " index=" << i;
        }
      }
      EXPECT_LE(sparse.materialized_entries(), size);

      const data::HistogramSupport dense_support = dense.CompactSupport();
      const data::HistogramSupport sparse_support = sparse.CompactSupport();
      ASSERT_EQ(sparse_support.size(), dense_support.size());
      for (size_t i = 0; i < dense_support.size(); ++i) {
        EXPECT_EQ(sparse_support[i].first, dense_support[i].first);
        EXPECT_TRUE(
            SameBits(sparse_support[i].second, dense_support[i].second));
      }
      for (const HypothesisShard& shard : sparse.shards()) {
        const data::HistogramSupport dense_range =
            dense.CompactSupport(shard.lo, shard.hi);
        const data::HistogramSupport sparse_range =
            sparse.CompactSupport(shard.lo, shard.hi);
        ASSERT_EQ(sparse_range.size(), dense_range.size());
        for (size_t i = 0; i < dense_range.size(); ++i) {
          EXPECT_EQ(sparse_range[i].first, dense_range[i].first);
          EXPECT_TRUE(
              SameBits(sparse_range[i].second, dense_range[i].second));
        }
      }
    }
  }
}

TEST(ShardedHypothesisTest, SparseMaterializesOnlyTheTouchedSupport) {
  constexpr int kSize = 4096;
  ShardedHypothesis sparse(kSize);
  sparse.SetBackend(HypothesisBackend::kSparse);
  sparse.Repartition(4);

  // Touch 3 indices; everything else is (eta * 0)-untouched and must
  // stay on the shared per-shard residual, not in materialized storage.
  std::vector<double> payoff(kSize, 0.0);
  payoff[7] = 1.5;
  payoff[2048] = -0.75;
  payoff[4095] = 0.25;
  sparse.MultiplicativeUpdate(payoff, 0.9);
  EXPECT_EQ(sparse.materialized_entries(), 3);

  // Untouched entries all share one value per shard (uniform residual).
  const double untouched = sparse[1];
  for (int i : {0, 2, 100, 1000, 3000, 4000}) {
    EXPECT_TRUE(SameBits(sparse[i], untouched)) << "index=" << i;
  }
  EXPECT_FALSE(SameBits(sparse[7], untouched));

  // A second update touching one more index grows the support by one.
  std::vector<double> second(kSize, 0.0);
  second[9] = 0.5;
  sparse.MultiplicativeUpdate(second, 0.9);
  EXPECT_EQ(sparse.materialized_entries(), 4);
}

TEST(ShardedHypothesisTest, PayoffThresholdKeepsSmallPayoffsUntouched) {
  constexpr int kSize = 64;
  SparseHypothesisOptions options;
  options.payoff_threshold = 0.1;
  ShardedHypothesis sparse(kSize);
  sparse.SetBackend(HypothesisBackend::kSparse, options);
  sparse.Repartition(2);

  // Every payoff under the threshold: nothing materializes and the
  // hypothesis stays exactly uniform (all weights move together).
  Rng rng(77);
  std::vector<double> payoff(kSize);
  for (double& value : payoff) value = rng.Uniform(-0.1, 0.1);
  sparse.MultiplicativeUpdate(payoff, 1.0);
  EXPECT_EQ(sparse.materialized_entries(), 0);
  for (int i = 0; i < kSize; ++i) {
    ASSERT_TRUE(SameBits(sparse[i], sparse[0])) << "index=" << i;
  }

  // One payoff over the threshold materializes exactly that entry.
  payoff[13] = 0.5;
  sparse.MultiplicativeUpdate(payoff, 1.0);
  EXPECT_EQ(sparse.materialized_entries(), 1);
  EXPECT_FALSE(SameBits(sparse[13], sparse[0]));
}

TEST(ShardedHypothesisTest, SampledNormalizerIsDeterministicAndBounded) {
  // Approx mode's equivalence oracle. The sampled normalizer rescales
  // every entry by the SAME estimated Z-hat, so relative to the exact
  // dense run the approx distribution differs by one common factor per
  // round: per-index ratios stay (nearly) constant and the total mass
  // stays near 1. And the seed schedule is deterministic: same seed ->
  // bit-identical replay; different seed -> different draws.
  constexpr int kSize = 512;
  constexpr int kRounds = 6;
  SparseHypothesisOptions options;
  options.sampled_normalizer = true;
  options.normalizer_samples = 256;
  options.seed = 42;

  ShardedHypothesis dense(kSize);
  dense.Repartition(4);
  ShardedHypothesis approx(kSize);
  approx.SetBackend(HypothesisBackend::kSparse, options);
  approx.Repartition(4);
  ShardedHypothesis replay(kSize);
  replay.SetBackend(HypothesisBackend::kSparse, options);
  replay.Repartition(4);
  SparseHypothesisOptions reseeded = options;
  reseeded.seed = 43;
  ShardedHypothesis other_seed(kSize);
  other_seed.SetBackend(HypothesisBackend::kSparse, reseeded);
  other_seed.Repartition(4);

  Rng rng(2026);
  bool seed_matters = false;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<double> payoff(kSize);
    for (double& value : payoff) value = rng.Gaussian(0.0, 1.0);
    const double eta = 0.1;
    dense.MultiplicativeUpdate(payoff, eta);
    approx.MultiplicativeUpdate(payoff, eta);
    replay.MultiplicativeUpdate(payoff, eta);
    other_seed.MultiplicativeUpdate(payoff, eta);
    for (int i = 0; i < kSize; ++i) {
      ASSERT_TRUE(SameBits(approx[i], replay[i]))
          << "round=" << round << " index=" << i;
      if (!SameBits(approx[i], other_seed[i])) seed_matters = true;
    }
  }
  EXPECT_TRUE(seed_matters);

  double l1 = 0.0, mass = 0.0;
  double min_ratio = 1e300, max_ratio = 0.0;
  for (int i = 0; i < kSize; ++i) {
    l1 += std::abs(approx[i] - dense[i]);
    mass += approx[i];
    const double ratio = approx[i] / dense[i];
    min_ratio = std::min(min_ratio, ratio);
    max_ratio = std::max(max_ratio, ratio);
  }
  EXPECT_LT(l1, 0.15);
  EXPECT_NEAR(mass, 1.0, 0.15);
  // One common rescale per round: the per-index ratio band is tight.
  EXPECT_LT(max_ratio - min_ratio, 1e-9);
}

TEST(ShardedHypothesisTest, PairwiseSumDecomposesAtEverySplit) {
  // The primitive under the normalizer: sum(lo, hi) must equal
  // sum(lo, mid) + sum(mid, hi) for the tree's own split point, at
  // every node — checked here for the root of assorted sizes.
  Rng rng(11);
  for (size_t n : {1u, 2u, 3u, 7u, 16u, 33u, 1024u, 1000u}) {
    std::vector<double> v(n);
    for (double& x : v) x = rng.Gaussian(0.0, 1.0);
    const double whole = PairwiseSum(v.data(), 0, n);
    if (n >= 2) {
      const size_t mid = n / 2;
      const double halves =
          PairwiseSum(v.data(), 0, mid) + PairwiseSum(v.data(), mid, n);
      EXPECT_TRUE(SameBits(whole, halves)) << "n=" << n;
    }
  }
}

}  // namespace
}  // namespace core
}  // namespace pmw
