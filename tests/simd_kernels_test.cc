// Bitwise-equivalence suite for the MW-update SIMD kernels.
//
// The serving contract says transcripts are bit-identical at every
// (shards x threads x backend x transport) configuration; the AVX2 hot
// loops (common/simd.h, losses/margin_kernels.h) extend that claim to
// "...x SIMD on/off". These tests pin the claim at two levels:
//
//   * Kernel level: every simd:: primitive and both hypercube margin
//     kernels produce the SAME BITS as the scalar loop they replace —
//     compared via uint64 bit patterns, not tolerances — including the
//     unaligned tail lanes (n not a multiple of 4) and the one documented
//     non-identity (the max fold may land on the other sign of zero,
//     which its only consumer exp(x - max) cannot observe).
//   * Transcript level: the full serving stack replayed with SIMD
//     force-disabled (simd::SetEnabled(false)) matches the SIMD-enabled
//     transcript bit-for-bit across backend {dense, sparse} x shards
//     {1, 2, 4} x threads {1, 4}. The TSan CI job rebuilds this binary,
//     so the property also holds under the race detector.
//
// On hosts without AVX2 the comparisons collapse to scalar-vs-scalar;
// those tests GTEST_SKIP so a pass never overstates what was checked.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/simd.h"
#include "core/pmw_cm.h"
#include "core/sharded_hypothesis.h"
#include "data/binary_universe.h"
#include "data/generators.h"
#include "data/universe.h"
#include "erm/noisy_gradient_oracle.h"
#include "gtest/gtest.h"
#include "losses/loss_family.h"
#include "losses/margin_kernels.h"
#include "losses/margin_losses.h"
#include "serve/pmw_service.h"

namespace pmw {
namespace {

/// Restores the process-wide SIMD switch on scope exit so a failing
/// assertion cannot leak a disabled state into later tests.
class SimdToggleGuard {
 public:
  SimdToggleGuard() : prev_(simd::Enabled()) {}
  ~SimdToggleGuard() { simd::SetEnabled(prev_); }

 private:
  bool prev_;
};

uint64_t Bits(double x) {
  uint64_t u = 0;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

::testing::AssertionResult BitsEq(double got, double want) {
  if (Bits(got) == Bits(want)) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "bit mismatch: got " << got << " (0x" << std::hex << Bits(got)
         << "), want " << want << " (0x" << Bits(want) << ")";
}

// ---------------------------------------------------------------------------
// simd:: primitives vs the scalar loops (Enabled() off IS the scalar
// loop — the kernels dispatch internally, so toggling the switch runs
// the two implementations on identical inputs).
// ---------------------------------------------------------------------------

TEST(SimdPrimitiveTest, PairwiseLeafNodesReproduceTreeAssociation) {
  SimdToggleGuard guard;
  if (!simd::Available()) GTEST_SKIP() << "AVX2 not available on this host";
  Rng rng(101);
  for (int trial = 0; trial < 200; ++trial) {
    double v[8];
    for (double& x : v) {
      // Mixed magnitudes make association errors visible: a re-ordered
      // sum of these WOULD round differently.
      x = rng.Uniform(-1.0, 1.0) * std::exp2(rng.Uniform(-30.0, 30.0));
    }
    const double want8 =
        ((v[0] + v[1]) + (v[2] + v[3])) + ((v[4] + v[5]) + (v[6] + v[7]));
    const double want4 = (v[0] + v[1]) + (v[2] + v[3]);
    simd::SetEnabled(true);
    EXPECT_TRUE(BitsEq(simd::PairwiseLeaf8(v), want8)) << "trial " << trial;
    EXPECT_TRUE(BitsEq(simd::PairwiseLeaf4(v), want4)) << "trial " << trial;
    simd::SetEnabled(false);
    EXPECT_TRUE(BitsEq(simd::PairwiseLeaf8(v), want8)) << "trial " << trial;
    EXPECT_TRUE(BitsEq(simd::PairwiseLeaf4(v), want4)) << "trial " << trial;
  }
}

TEST(SimdPrimitiveTest, AxpyMaxMatchesScalarBitwiseIncludingTails) {
  SimdToggleGuard guard;
  if (!simd::Available()) GTEST_SKIP() << "AVX2 not available on this host";
  Rng rng(202);
  // Sizes straddle the 4-lane width: below it, exact multiples, and
  // every tail remainder.
  for (size_t n : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 15u, 64u, 67u}) {
    std::vector<double> dst0(n), src(n);
    for (size_t i = 0; i < n; ++i) {
      dst0[i] = rng.Uniform(-20.0, 2.0);  // SafeLog(p) territory
      src[i] = rng.Uniform(-1.0, 1.0);
    }
    const double scale = rng.Uniform(-2.0, 2.0);

    std::vector<double> want = dst0;
    double want_max = -std::numeric_limits<double>::infinity();
    simd::SetEnabled(false);
    simd::AxpyMax(want.data(), src.data(), scale, n, &want_max);

    std::vector<double> got = dst0;
    double got_max = -std::numeric_limits<double>::infinity();
    simd::SetEnabled(true);
    simd::AxpyMax(got.data(), src.data(), scale, n, &got_max);

    for (size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(BitsEq(got[i], want[i])) << "n=" << n << " i=" << i;
    }
    // No +-0 ties in these inputs, so even the reorderable max fold must
    // agree bit-for-bit.
    EXPECT_TRUE(BitsEq(got_max, want_max)) << "n=" << n;
  }
}

TEST(SimdPrimitiveTest, MaxFoldSignedZeroTieIsInvisibleToExp) {
  SimdToggleGuard guard;
  if (!simd::Available()) GTEST_SKIP() << "AVX2 not available on this host";
  // The one documented freedom: when the running max ties at +-0.0, the
  // lane-reordered fold may keep the other zero. Build a slice whose
  // post-axpy values are exactly {+0.0, -0.0, negatives...} and check
  // the downstream contract directly: exp(x - max) is bit-identical for
  // every element no matter which zero won.
  std::vector<double> dst0 = {0.0, -0.0, -1.5, -3.25, 0.0, -0.0, -7.0};
  std::vector<double> src(dst0.size(), 0.0);
  const size_t n = dst0.size();

  std::vector<double> want = dst0;
  double want_max = -std::numeric_limits<double>::infinity();
  simd::SetEnabled(false);
  simd::AxpyMax(want.data(), src.data(), 0.0, n, &want_max);

  std::vector<double> got = dst0;
  double got_max = -std::numeric_limits<double>::infinity();
  simd::SetEnabled(true);
  simd::AxpyMax(got.data(), src.data(), 0.0, n, &got_max);

  EXPECT_EQ(got_max, want_max);  // numerically equal; bits may differ
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(BitsEq(got[i], want[i])) << "i=" << i;
    EXPECT_TRUE(
        BitsEq(std::exp(got[i] - got_max), std::exp(want[i] - want_max)))
        << "i=" << i;
  }
}

TEST(SimdPrimitiveTest, SubScalarAndDivScalarToMatchBitwise) {
  SimdToggleGuard guard;
  if (!simd::Available()) GTEST_SKIP() << "AVX2 not available on this host";
  Rng rng(303);
  for (size_t n : {1u, 3u, 4u, 6u, 8u, 13u, 64u, 65u}) {
    std::vector<double> v0(n), src(n);
    for (size_t i = 0; i < n; ++i) {
      v0[i] = rng.Uniform(-50.0, 50.0);
      src[i] = rng.Uniform(0.0, 10.0);
    }
    const double c = rng.Uniform(0.5, 40.0);

    std::vector<double> want_sub = v0, got_sub = v0;
    std::vector<double> want_div(n), got_div(n);
    simd::SetEnabled(false);
    simd::SubScalar(want_sub.data(), c, n);
    simd::DivScalarTo(want_div.data(), src.data(), c, n);
    simd::SetEnabled(true);
    simd::SubScalar(got_sub.data(), c, n);
    simd::DivScalarTo(got_div.data(), src.data(), c, n);

    for (size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(BitsEq(got_sub[i], want_sub[i])) << "n=" << n << " i=" << i;
      EXPECT_TRUE(BitsEq(got_div[i], want_div[i])) << "n=" << n << " i=" << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Hypercube margin kernels vs the generic per-row loop (the exact
// fallback convex::SupportObjective runs when BatchValue declines).
// ---------------------------------------------------------------------------

class MarginKernelTest : public ::testing::Test {
 protected:
  MarginKernelTest() : universe_(5) {  // |X| = 2^6 = 64
    Rng rng(404);
    const int dim = universe_.dim();
    double norm_sq = 0.0;
    for (int j = 0; j < dim; ++j) {
      theta_.push_back(rng.Uniform(-1.0, 1.0));
      norm_sq += theta_.back() * theta_.back();
    }
    const double norm = std::sqrt(norm_sq);
    for (double& t : theta_) t /= std::max(1.0, norm);
    // A support with gaps and a count that is NOT a multiple of 4, so
    // the kernels' tail path runs.
    for (int i = 0; i < universe_.size(); ++i) {
      if (i % 9 == 4) continue;
      entries_.emplace_back(i, rng.Uniform(0.0, 1.0));
    }
    for (int j = 0; j < dim; ++j) flips_.push_back(j % 2 == 0 ? -1 : 1);
  }

  /// The generic path: materialize the (optionally transformed) row and
  /// go through the virtual Value/AddGradient, accumulating in entry
  /// order — exactly SupportObjective's fallback loop.
  double GenericValue(const losses::MarginLoss& loss, const int* flips,
                      int label_flip) const {
    double acc = 0.0;
    for (const auto& [index, mass] : entries_) {
      data::Row row = universe_.row(index);
      if (flips != nullptr) {
        for (size_t j = 0; j < row.features.size(); ++j) {
          row.features[j] = static_cast<double>(flips[j]) * row.features[j];
        }
      }
      row.label = static_cast<double>(label_flip) * row.label;
      acc += mass * loss.Value(theta_, row);
    }
    return acc;
  }

  convex::Vec GenericGradient(const losses::MarginLoss& loss,
                              const int* flips, int label_flip) const {
    convex::Vec grad(theta_.size(), 0.0);
    for (const auto& [index, mass] : entries_) {
      data::Row row = universe_.row(index);
      if (flips != nullptr) {
        for (size_t j = 0; j < row.features.size(); ++j) {
          row.features[j] = static_cast<double>(flips[j]) * row.features[j];
        }
      }
      row.label = static_cast<double>(label_flip) * row.label;
      loss.AddGradient(theta_, row, mass, &grad);
    }
    return grad;
  }

  void CheckLoss(const losses::MarginLoss& loss, const int* flips,
                 int label_flip, const std::string& context) {
    SimdToggleGuard guard;
    const double want = GenericValue(loss, flips, label_flip);
    const convex::Vec want_grad = GenericGradient(loss, flips, label_flip);
    for (bool simd_on : {false, true}) {
      if (simd_on && !simd::Available()) continue;
      simd::SetEnabled(simd_on);
      const std::string where =
          context + (simd_on ? " [simd on]" : " [simd off]");
      double acc = 0.0;
      ASSERT_TRUE(losses::kernels::HypercubeMarginValue(
          loss, theta_, universe_, flips, label_flip, entries_.data(),
          entries_.size(), &acc))
          << where;
      EXPECT_TRUE(BitsEq(acc, want)) << where;
      convex::Vec grad(theta_.size(), 0.0);
      ASSERT_TRUE(losses::kernels::HypercubeMarginAddGradient(
          loss, theta_, universe_, flips, label_flip, entries_.data(),
          entries_.size(), &grad))
          << where;
      for (size_t j = 0; j < grad.size(); ++j) {
        EXPECT_TRUE(BitsEq(grad[j], want_grad[j])) << where << " coord " << j;
      }
    }
  }

  data::LabeledHypercubeUniverse universe_;
  convex::Vec theta_;
  std::vector<std::pair<int, double>> entries_;
  std::vector<int> flips_;
};

TEST_F(MarginKernelTest, EveryLinkMatchesGenericRowLoopBitwise) {
  // The support was built with gaps so the kernels' tail path runs.
  ASSERT_NE(entries_.size() % 4, 0u);
  const int dim = universe_.dim();
  const losses::SquaredLoss squared(dim);
  const losses::LogisticLoss logistic(dim);
  const losses::HingeLoss hinge(dim);
  const losses::AbsoluteLoss absolute(dim);
  const losses::HuberLoss huber(dim, 0.7);
  const losses::MarginLoss* all[] = {&squared, &logistic, &hinge, &absolute,
                                     &huber};
  for (const losses::MarginLoss* loss : all) {
    CheckLoss(*loss, nullptr, 1, loss->name());
  }
}

TEST_F(MarginKernelTest, SignFlipsFoldIntoWeightsBitwise) {
  const int dim = universe_.dim();
  const losses::LogisticLoss logistic(dim);
  const losses::HingeLoss hinge(dim);
  CheckLoss(logistic, flips_.data(), -1, "logistic flipped");
  CheckLoss(hinge, flips_.data(), 1, "hinge coord-flipped");
  CheckLoss(logistic, nullptr, -1, "logistic label-flipped");
}

TEST_F(MarginKernelTest, DeclinesNonHypercubeUniversesUntouched) {
  // The false-means-fallback contract: a universe that is not a
  // (Labeled)HypercubeUniverse — or one whose dimension disagrees with
  // theta — must be declined with the accumulators untouched.
  std::vector<data::Row> rows(4);
  for (size_t i = 0; i < rows.size(); ++i) {
    rows[i].features = {0.5, -0.25, 0.125, 0.0625, -0.5, 0.25};
    rows[i].label = i % 2 == 0 ? 1.0 : -1.0;
  }
  const data::VectorUniverse generic(rows, "custom");
  const losses::LogisticLoss loss(universe_.dim());
  const std::pair<int, double> entry{0, 0.5};
  double acc = 1.25;
  EXPECT_FALSE(losses::kernels::HypercubeMarginValue(
      loss, theta_, generic, nullptr, 1, &entry, 1, &acc));
  EXPECT_TRUE(BitsEq(acc, 1.25));
  convex::Vec grad(theta_.size(), 0.75);
  EXPECT_FALSE(losses::kernels::HypercubeMarginAddGradient(
      loss, theta_, generic, nullptr, 1, &entry, 1, &grad));
  for (double g : grad) EXPECT_TRUE(BitsEq(g, 0.75));

  // Dimension mismatch against a REAL hypercube universe declines too.
  const data::LabeledHypercubeUniverse wider(7);
  double acc2 = 0.0;
  EXPECT_FALSE(losses::kernels::HypercubeMarginValue(
      loss, theta_, wider, nullptr, 1, &entry, 1, &acc2));
}

// ---------------------------------------------------------------------------
// Transcript property: SIMD on/off x backend {dense, sparse} x shards
// {1, 2, 4} x threads {1, 4} — the end-to-end form of the bit-identity
// claim, through the full serving stack.
// ---------------------------------------------------------------------------

struct Transcript {
  std::vector<Result<convex::Vec>> answers;
  std::string ledger_report;
  int update_count = 0;
  long long queries_answered = 0;
};

core::PmwOptions PracticalOptions() {
  core::PmwOptions options;
  options.alpha = 0.15;
  options.beta = 0.05;
  options.privacy = {2.0, 1e-6};
  options.scale = 2.0;
  options.max_queries = 400;
  options.override_updates = 12;
  return options;
}

Transcript RunServe(const data::Dataset& dataset,
                    const std::vector<convex::CmQuery>& workload,
                    uint64_t seed, int num_shards, int num_threads,
                    core::HypothesisBackend backend, bool simd_on) {
  SimdToggleGuard guard;
  simd::SetEnabled(simd_on);
  erm::NoisyGradientOracle oracle;
  serve::ServeOptions serve_options;
  serve_options.num_threads = num_threads;
  serve_options.num_shards = num_shards;
  serve_options.hypothesis_backend = backend;
  serve::PmwService service(&dataset, &oracle, PracticalOptions(), seed,
                            serve_options);
  Transcript t;
  for (size_t start = 0; start < workload.size(); start += 16) {
    const size_t count = std::min<size_t>(16, workload.size() - start);
    std::span<const convex::CmQuery> batch(&workload[start], count);
    for (auto& result : service.AnswerBatch(batch)) {
      t.answers.push_back(std::move(result));
    }
  }
  t.ledger_report = service.mechanism().ledger().Report();
  t.update_count = service.mechanism().update_count();
  t.queries_answered = service.mechanism().queries_answered();
  return t;
}

void ExpectIdentical(const Transcript& got, const Transcript& want,
                     const std::string& context) {
  ASSERT_EQ(got.answers.size(), want.answers.size()) << context;
  for (size_t j = 0; j < want.answers.size(); ++j) {
    ASSERT_EQ(got.answers[j].ok(), want.answers[j].ok())
        << context << " status diverged at query " << j;
    if (!want.answers[j].ok()) {
      EXPECT_EQ(got.answers[j].status().code(),
                want.answers[j].status().code())
          << context << " at query " << j;
      continue;
    }
    const convex::Vec& g = *got.answers[j];
    const convex::Vec& w = *want.answers[j];
    ASSERT_EQ(g.size(), w.size()) << context << " at query " << j;
    for (size_t i = 0; i < w.size(); ++i) {
      EXPECT_TRUE(BitsEq(g[i], w[i]))
          << context << " query " << j << " coordinate " << i;
    }
  }
  EXPECT_EQ(got.ledger_report, want.ledger_report) << context;
  EXPECT_EQ(got.update_count, want.update_count) << context;
  EXPECT_EQ(got.queries_answered, want.queries_answered) << context;
}

class SimdTranscriptPropertyTest : public ::testing::TestWithParam<int> {
 protected:
  SimdTranscriptPropertyTest() : universe_(3), family_(3) {
    Rng rng(7500 + static_cast<uint64_t>(GetParam()));
    std::vector<double> theta_star, biases;
    for (int d = 0; d < 3; ++d) {
      theta_star.push_back(rng.Uniform(-1.0, 1.0));
      biases.push_back(rng.Uniform(0.3, 0.7));
    }
    data::Histogram dist = data::LogisticModelDistribution(
        universe_, theta_star, biases, rng.Uniform(0.2, 0.4));
    dataset_ = std::make_unique<data::Dataset>(
        data::RoundedDataset(universe_, dist, 60000));
    Rng query_rng(8500 + static_cast<uint64_t>(GetParam()));
    std::vector<convex::CmQuery> pool = family_.Generate(10, &query_rng);
    for (int j = 0; j < 48; ++j) {
      workload_.push_back(pool[static_cast<size_t>(j) % pool.size()]);
    }
  }

  data::LabeledHypercubeUniverse universe_;
  losses::LipschitzFamily family_;
  std::unique_ptr<data::Dataset> dataset_;
  std::vector<convex::CmQuery> workload_;
};

TEST_P(SimdTranscriptPropertyTest, SimdOnOffTranscriptsMatchEverywhere) {
  if (!simd::Available()) {
    GTEST_SKIP() << "AVX2 not available: on/off would compare scalar to "
                    "itself";
  }
  const uint64_t seed = 9500 + static_cast<uint64_t>(GetParam());
  for (core::HypothesisBackend backend :
       {core::HypothesisBackend::kDense, core::HypothesisBackend::kSparse}) {
    for (int shards : {1, 2, 4}) {
      for (int threads : {1, 4}) {
        const std::string context =
            std::string(backend == core::HypothesisBackend::kDense
                            ? "dense"
                            : "sparse") +
            " shards=" + std::to_string(shards) +
            " threads=" + std::to_string(threads);
        Transcript off = RunServe(*dataset_, workload_, seed, shards, threads,
                                  backend, /*simd_on=*/false);
        ASSERT_GT(off.update_count, 0)
            << context << ": scenario never exercised the MW update path";
        Transcript on = RunServe(*dataset_, workload_, seed, shards, threads,
                                 backend, /*simd_on=*/true);
        ExpectIdentical(on, off, context);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomScenarios, SimdTranscriptPropertyTest,
                         ::testing::Range(0, 2));

}  // namespace
}  // namespace pmw
