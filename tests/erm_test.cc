// Tests for the single-query oracles A': accuracy at generous budgets,
// precondition checks, noise behaviour across budgets, and the Table 1
// single-query shapes (GLM dimension-independence, output perturbation's
// strong-convexity requirement).

#include <cmath>
#include <memory>

#include "common/random.h"
#include "common/stats.h"
#include "convex/cm_query.h"
#include "convex/empirical_loss.h"
#include "core/error.h"
#include "data/binary_universe.h"
#include "data/generators.h"
#include "erm/exponential_erm_oracle.h"
#include "erm/glm_oracle.h"
#include "erm/localization_oracle.h"
#include "erm/noisy_gradient_oracle.h"
#include "erm/nonprivate_oracle.h"
#include "erm/objective_perturbation_oracle.h"
#include "erm/output_perturbation_oracle.h"
#include "gtest/gtest.h"
#include "losses/loss_family.h"
#include "losses/margin_losses.h"
#include "losses/transforms.h"

namespace pmw {
namespace erm {
namespace {

// Shared fixture: labeled 3-cube universe, logistic-model data, n = 4000.
class OracleTest : public ::testing::Test {
 protected:
  OracleTest()
      : universe_(3),
        dist_(data::LogisticModelDistribution(universe_, {1.0, -0.5, 0.2},
                                              {0.5, 0.5, 0.5}, 0.3)),
        dataset_(data::RoundedDataset(universe_, dist_, 4000)),
        error_oracle_(&universe_),
        data_hist_(data::Histogram::FromDataset(dataset_)) {}

  double ExcessRisk(const convex::CmQuery& query, const convex::Vec& theta) {
    return error_oracle_.AnswerError(query, data_hist_, theta);
  }

  data::LabeledHypercubeUniverse universe_;
  data::Histogram dist_;
  data::Dataset dataset_;
  core::ErrorOracle error_oracle_;
  data::Histogram data_hist_;
};

TEST_F(OracleTest, NonPrivateOracleIsNearExact) {
  losses::LogisticLoss loss(3);
  convex::L2Ball ball(3);
  convex::CmQuery query{&loss, &ball, "logistic"};
  NonPrivateOracle oracle;
  Rng rng(1);
  OracleContext context;
  auto result = oracle.Solve(query, dataset_, context, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(ExcessRisk(query, *result), 1e-4);
}

TEST_F(OracleTest, NoisyGradientAccurateAtGenerousBudget) {
  losses::LogisticLoss loss(3);
  convex::L2Ball ball(3);
  convex::CmQuery query{&loss, &ball, "logistic"};
  NoisyGradientOracle oracle;
  Rng rng(2);
  OracleContext context;
  context.privacy = {2.0, 1e-6};
  auto result = oracle.Solve(query, dataset_, context, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(ExcessRisk(query, *result), 0.05);
}

TEST_F(OracleTest, NoisyGradientErrorGrowsAsBudgetShrinks) {
  losses::SquaredLoss loss(3);
  convex::L2Ball ball(3);
  convex::CmQuery query{&loss, &ball, "squared"};
  NoisyGradientOracle oracle;
  RunningStats generous, tight;
  for (int seed = 0; seed < 8; ++seed) {
    Rng rng(100 + seed);
    OracleContext context;
    context.privacy = {4.0, 1e-6};
    generous.Add(ExcessRisk(query, *oracle.Solve(query, dataset_, context,
                                                 &rng)));
    context.privacy = {0.05, 1e-6};
    tight.Add(ExcessRisk(query, *oracle.Solve(query, dataset_, context,
                                              &rng)));
  }
  EXPECT_LT(generous.mean(), tight.mean());
}

TEST_F(OracleTest, NoisyGradientRejectsPureDp) {
  losses::LogisticLoss loss(3);
  convex::L2Ball ball(3);
  convex::CmQuery query{&loss, &ball, "q"};
  NoisyGradientOracle oracle;
  Rng rng(3);
  OracleContext context;
  context.privacy = {1.0, 0.0};
  auto result = oracle.Solve(query, dataset_, context, &rng);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(OracleTest, OutputPerturbationRequiresStrongConvexity) {
  losses::LogisticLoss loss(3);  // not strongly convex
  convex::L2Ball ball(3);
  convex::CmQuery query{&loss, &ball, "q"};
  OutputPerturbationOracle oracle;
  Rng rng(4);
  OracleContext context;
  context.privacy = {1.0, 1e-6};
  auto result = oracle.Solve(query, dataset_, context, &rng);
  EXPECT_FALSE(result.ok());
}

TEST_F(OracleTest, OutputPerturbationAccurateOnStronglyConvex) {
  losses::SquaredLoss base(3);
  losses::TikhonovLoss loss(&base, 0.5, convex::Zeros(3));
  convex::L2Ball ball(3);
  convex::CmQuery query{&loss, &ball, "ridge"};
  OutputPerturbationOracle oracle;
  Rng rng(5);
  OracleContext context;
  context.privacy = {2.0, 1e-6};
  auto result = oracle.Solve(query, dataset_, context, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(ExcessRisk(query, *result), 0.05);
}

TEST_F(OracleTest, MinimizerSensitivityFormula) {
  EXPECT_NEAR(OutputPerturbationOracle::MinimizerSensitivity(1.0, 0.5, 100),
              2.0 / 50.0, 1e-12);
}

TEST_F(OracleTest, LocalizationBeatsPlainOutputPerturbationAtTightBudget) {
  // Localization's advantage is the very-tight-budget regime (BST14): at
  // eps = 0.02 the plain mechanism's noise dominates while localization's
  // geometrically shrinking sensitivity keeps the answer usable.
  losses::SquaredLoss base(3);
  losses::TikhonovLoss loss(&base, 0.25, convex::Zeros(3));
  convex::L2Ball ball(3);
  convex::CmQuery query{&loss, &ball, "ridge"};
  OutputPerturbationOracle plain;
  LocalizationOracle localized;
  RunningStats plain_err, localized_err;
  for (int seed = 0; seed < 12; ++seed) {
    Rng rng_a(200 + seed), rng_b(200 + seed);
    OracleContext context;
    context.privacy = {0.02, 1e-6};
    plain_err.Add(
        ExcessRisk(query, *plain.Solve(query, dataset_, context, &rng_a)));
    localized_err.Add(ExcessRisk(
        query, *localized.Solve(query, dataset_, context, &rng_b)));
  }
  EXPECT_LT(localized_err.mean(), plain_err.mean());
}

TEST_F(OracleTest, LocalizationAccurateAtGenerousBudget) {
  losses::SquaredLoss base(3);
  losses::TikhonovLoss loss(&base, 0.5, convex::Zeros(3));
  convex::L2Ball ball(3);
  convex::CmQuery query{&loss, &ball, "ridge"};
  LocalizationOracle localized;
  Rng rng(77);
  OracleContext context;
  context.privacy = {2.0, 1e-6};
  auto result = localized.Solve(query, dataset_, context, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(ExcessRisk(query, *result), 0.05);
}

TEST_F(OracleTest, GlmOracleRequiresGlm) {
  losses::SquaredLoss base(3);
  losses::TikhonovLoss non_glm(&base, 0.5, convex::Zeros(3));
  convex::L2Ball ball(3);
  convex::CmQuery query{&non_glm, &ball, "q"};
  GlmOracle oracle;
  Rng rng(6);
  OracleContext context;
  context.privacy = {1.0, 1e-6};
  EXPECT_FALSE(oracle.Solve(query, dataset_, context, &rng).ok());
}

TEST_F(OracleTest, GlmOracleAccurateOnLogistic) {
  losses::LogisticLoss loss(3);
  convex::L2Ball ball(3);
  convex::CmQuery query{&loss, &ball, "logistic"};
  GlmOracle oracle;
  Rng rng(7);
  OracleContext context;
  context.privacy = {2.0, 1e-6};
  context.target_alpha = 0.05;
  auto result = oracle.Solve(query, dataset_, context, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(ExcessRisk(query, *result), 0.1);
}

TEST_F(OracleTest, ObjectivePerturbationAccurateOnSmoothLoss) {
  losses::LogisticLoss loss(3);
  convex::L2Ball ball(3);
  convex::CmQuery query{&loss, &ball, "logistic"};
  ObjectivePerturbationOracle oracle;
  Rng rng(8);
  OracleContext context;
  context.privacy = {2.0, 1e-6};
  auto result = oracle.Solve(query, dataset_, context, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(ExcessRisk(query, *result), 0.05);
}

TEST_F(OracleTest, ExponentialErmAccurateOn1D) {
  losses::LinearQueryLoss loss(
      [](const data::Row& r) { return r.label > 0 ? 1.0 : 0.0; }, "label");
  convex::Interval interval(0.0, 1.0);
  convex::CmQuery query{&loss, &interval, "linq"};
  ExponentialErmOracle oracle;
  Rng rng(9);
  OracleContext context;
  context.privacy = {2.0, 0.0};  // pure DP
  auto result = oracle.Solve(query, dataset_, context, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(ExcessRisk(query, *result), 0.01);
}

TEST_F(OracleTest, ExponentialErmReasonableOnBall) {
  losses::LogisticLoss loss(3);
  convex::L2Ball ball(3);
  convex::CmQuery query{&loss, &ball, "logistic"};
  ExponentialErmOracle oracle;
  Rng rng(10);
  OracleContext context;
  context.privacy = {4.0, 0.0};
  auto result = oracle.Solve(query, dataset_, context, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(ExcessRisk(query, *result), 0.15);
}

TEST_F(OracleTest, BiasedOracleDegradesAnswer) {
  losses::SquaredLoss loss(3);
  convex::L2Ball ball(3);
  convex::CmQuery query{&loss, &ball, "squared"};
  NonPrivateOracle inner;
  BiasedOracle biased(&inner, /*bias_radius=*/0.8);
  RunningStats clean_err, biased_err;
  for (int seed = 0; seed < 6; ++seed) {
    Rng rng(300 + seed);
    OracleContext context;
    clean_err.Add(
        ExcessRisk(query, *inner.Solve(query, dataset_, context, &rng)));
    biased_err.Add(
        ExcessRisk(query, *biased.Solve(query, dataset_, context, &rng)));
  }
  EXPECT_GT(biased_err.mean(), clean_err.mean() + 0.01);
}

// Table 1 row 3's defining property: GLM oracle error does not grow with
// the dimension, unlike the generic noisy-gradient route. Measured at a
// tight budget where the sqrt(d) noise cost is visible.
class GlmDimensionIndependenceTest : public ::testing::TestWithParam<int> {};

TEST_P(GlmDimensionIndependenceTest, ErrorFlatAcrossDimensions) {
  const int d = GetParam();
  data::LabeledHypercubeUniverse universe(d);
  std::vector<double> theta_star(d, 0.0);
  theta_star[0] = 1.0;
  data::Histogram dist = data::LogisticModelDistribution(
      universe, theta_star, std::vector<double>(d, 0.5), 0.3);
  data::Dataset dataset = data::RoundedDataset(universe, dist, 2000);
  core::ErrorOracle error_oracle(&universe);
  data::Histogram hist = data::Histogram::FromDataset(dataset);

  losses::LogisticLoss loss(d);
  convex::L2Ball ball(d);
  convex::CmQuery query{&loss, &ball, "logistic"};
  GlmOracle oracle;
  RunningStats errs;
  for (int seed = 0; seed < 6; ++seed) {
    Rng rng(400 + seed);
    OracleContext context;
    context.privacy = {0.5, 1e-6};
    context.target_alpha = 0.1;
    auto result = oracle.Solve(query, dataset, context, &rng);
    ASSERT_TRUE(result.ok());
    errs.Add(error_oracle.AnswerError(query, hist, *result));
  }
  // Error stays bounded by a d-independent constant across d in {2..6}.
  EXPECT_LE(errs.mean(), 0.2) << "d=" << d;
}

INSTANTIATE_TEST_SUITE_P(Dims, GlmDimensionIndependenceTest,
                         ::testing::Values(2, 4, 6));

}  // namespace
}  // namespace erm
}  // namespace pmw
