// Transcript-equivalence and concurrency harness for the sharded
// PmwService (serve v2).
//
// The serving layer's whole contract is: however many threads prepare
// queries, the externally visible transcript — per-query answers (values
// and error codes, positionally) and the privacy ledger (event labels,
// parameters, and commit order) — is bit-identical to running sequential
// PmwCm under the same seed. These tests check that property-style:
// random datasets x query mixes x batch sizes x thread counts, with the
// randomized private oracle in the loop so the mechanism's RNG stream is
// part of what must line up. Comparisons are exact (operator== on
// doubles, string-equal ledger reports), not tolerance-based: any
// scheduling dependence shows up as a hard diff, and the TSan CI job
// rebuilds this binary to check the data-race side of the argument.

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "common/random.h"
#include "core/pmw_cm.h"
#include "data/binary_universe.h"
#include "data/generators.h"
#include "erm/noisy_gradient_oracle.h"
#include "erm/nonprivate_oracle.h"
#include "gtest/gtest.h"
#include "losses/loss_family.h"
#include "serve/pmw_service.h"

namespace pmw {
namespace serve {
namespace {

struct Transcript {
  std::vector<Result<convex::Vec>> answers;
  std::string ledger_report;
  int update_count = 0;
  long long queries_answered = 0;
  bool halted = false;
};

/// The sequential ground truth: plain PmwCm, one query at a time.
Transcript RunSequential(const data::Dataset& dataset,
                         const core::PmwOptions& options, uint64_t seed,
                         const std::vector<convex::CmQuery>& workload) {
  erm::NoisyGradientOracle oracle;
  core::PmwCm cm(&dataset, &oracle, options, seed);
  Transcript t;
  for (const convex::CmQuery& query : workload) {
    Result<core::PmwAnswer> answer = cm.AnswerQuery(query);
    if (answer.ok()) {
      t.answers.push_back(std::move(answer.value().theta));
    } else {
      t.answers.push_back(answer.status());
    }
  }
  t.ledger_report = cm.ledger().Report();
  t.update_count = cm.update_count();
  t.queries_answered = cm.queries_answered();
  t.halted = cm.halted();
  return t;
}

/// The system under test: sharded service at a given thread count,
/// feeding the workload through in batches of `batch_size`.
Transcript RunParallel(const data::Dataset& dataset,
                       const core::PmwOptions& options, uint64_t seed,
                       const std::vector<convex::CmQuery>& workload,
                       int num_threads, size_t batch_size) {
  erm::NoisyGradientOracle oracle;
  ServeOptions serve_options;
  serve_options.num_threads = num_threads;
  PmwService service(&dataset, &oracle, options, seed, serve_options);
  Transcript t;
  for (size_t start = 0; start < workload.size(); start += batch_size) {
    size_t count = std::min(batch_size, workload.size() - start);
    std::span<const convex::CmQuery> batch(&workload[start], count);
    for (auto& result : service.AnswerBatch(batch)) {
      t.answers.push_back(std::move(result));
    }
  }
  t.ledger_report = service.mechanism().ledger().Report();
  t.update_count = service.mechanism().update_count();
  t.queries_answered = service.mechanism().queries_answered();
  t.halted = service.mechanism().halted();
  return t;
}

/// Bit-exact comparison of two transcripts; `context` labels failures.
void ExpectIdentical(const Transcript& got, const Transcript& want,
                     const std::string& context) {
  ASSERT_EQ(got.answers.size(), want.answers.size()) << context;
  for (size_t j = 0; j < want.answers.size(); ++j) {
    ASSERT_EQ(got.answers[j].ok(), want.answers[j].ok())
        << context << " status diverged at query " << j;
    if (!want.answers[j].ok()) {
      EXPECT_EQ(got.answers[j].status().code(),
                want.answers[j].status().code())
          << context << " error code diverged at query " << j;
      continue;
    }
    const convex::Vec& g = *got.answers[j];
    const convex::Vec& w = *want.answers[j];
    ASSERT_EQ(g.size(), w.size()) << context << " at query " << j;
    for (size_t i = 0; i < w.size(); ++i) {
      // Exact, not NEAR: the claim is bit-identical transcripts.
      EXPECT_EQ(g[i], w[i])
          << context << " query " << j << " coordinate " << i;
    }
  }
  EXPECT_EQ(got.ledger_report, want.ledger_report) << context;
  EXPECT_EQ(got.update_count, want.update_count) << context;
  EXPECT_EQ(got.queries_answered, want.queries_answered) << context;
  EXPECT_EQ(got.halted, want.halted) << context;
}

core::PmwOptions PracticalOptions() {
  core::PmwOptions options;
  options.alpha = 0.15;
  options.beta = 0.05;
  options.privacy = {2.0, 1e-6};
  options.scale = 2.0;
  options.max_queries = 400;
  options.override_updates = 12;
  return options;
}

/// One randomized scenario per dataset seed: a logistic-model dataset
/// whose parameters are drawn from the seed, and a query mix cycling a
/// pool of Lipschitz losses (many clients, overlapping questions) with a
/// block of fresh one-off queries at the end.
class ServeParallelPropertyTest : public ::testing::TestWithParam<int> {
 protected:
  // The family owns the loss/domain objects every CmQuery points at, so
  // it must outlive the workload (member order matters here).
  ServeParallelPropertyTest() : universe_(3), family_(3) {
    Rng rng(1000 + static_cast<uint64_t>(GetParam()));
    std::vector<double> theta_star, biases;
    for (int d = 0; d < 3; ++d) {
      theta_star.push_back(rng.Uniform(-1.0, 1.0));
      biases.push_back(rng.Uniform(0.3, 0.7));
    }
    dist_ = std::make_unique<data::Histogram>(data::LogisticModelDistribution(
        universe_, theta_star, biases, rng.Uniform(0.2, 0.4)));
    dataset_ = std::make_unique<data::Dataset>(
        data::RoundedDataset(universe_, *dist_, 60000));

    Rng query_rng(2000 + static_cast<uint64_t>(GetParam()));
    std::vector<convex::CmQuery> pool = family_.Generate(10, &query_rng);
    for (int j = 0; j < 48; ++j) {
      workload_.push_back(pool[static_cast<size_t>(j) % pool.size()]);
    }
    for (convex::CmQuery& one_off : family_.Generate(12, &query_rng)) {
      workload_.push_back(one_off);
    }
  }

  data::LabeledHypercubeUniverse universe_;
  losses::LipschitzFamily family_;
  std::unique_ptr<data::Histogram> dist_;
  std::unique_ptr<data::Dataset> dataset_;
  std::vector<convex::CmQuery> workload_;
};

TEST_P(ServeParallelPropertyTest, TranscriptMatchesSequentialEverywhere) {
  const uint64_t seed = 9000 + static_cast<uint64_t>(GetParam());
  Transcript want =
      RunSequential(*dataset_, PracticalOptions(), seed, workload_);
  // The workload must actually exercise the hard path somewhere.
  EXPECT_GT(want.update_count, 0) << "scenario never fired an update";

  for (int threads : {1, 2, 4}) {
    for (size_t batch : {size_t{1}, size_t{7}, size_t{32}}) {
      Transcript got = RunParallel(*dataset_, PracticalOptions(), seed,
                                   workload_, threads, batch);
      ExpectIdentical(got, want,
                      "threads=" + std::to_string(threads) +
                          " batch=" + std::to_string(batch));
    }
  }
}

TEST_P(ServeParallelPropertyTest, HaltTranscriptsMatchUnderThreads) {
  // A tiny update budget forces a mid-workload halt; the parallel engine
  // must fail the same queries with the same codes, at every thread
  // count, and must not burn updates the sequential mechanism didn't.
  core::PmwOptions options = PracticalOptions();
  options.override_updates = 2;
  const uint64_t seed = 7000 + static_cast<uint64_t>(GetParam());

  Transcript want = RunSequential(*dataset_, options, seed, workload_);
  for (int threads : {2, 4}) {
    Transcript got =
        RunParallel(*dataset_, options, seed, workload_, threads, 16);
    ExpectIdentical(got, want, "halt threads=" + std::to_string(threads));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomScenarios, ServeParallelPropertyTest,
                         ::testing::Range(0, 3));

TEST(ServeParallelTest, BudgetExhaustionMidBatchMatchesSequential) {
  // A k-query budget smaller than one batch: the prepare phase caps at
  // the remaining budget and the overflow positions must be rejected
  // with exactly the sequential mechanism's statuses.
  data::LabeledHypercubeUniverse universe(3);
  data::Histogram dist = data::LogisticModelDistribution(
      universe, {1.0, -0.8, 0.5}, {0.7, 0.4, 0.5}, 0.25);
  data::Dataset dataset = data::RoundedDataset(universe, dist, 60000);

  core::PmwOptions options = PracticalOptions();
  options.max_queries = 10;

  losses::LipschitzFamily family(3);
  Rng rng(8);
  std::vector<convex::CmQuery> workload = family.Generate(30, &rng);

  const uint64_t seed = 3030;
  Transcript want = RunSequential(dataset, options, seed, workload);
  for (int threads : {1, 4}) {
    Transcript got =
        RunParallel(dataset, options, seed, workload, threads, 30);
    ExpectIdentical(got, want, "budget threads=" + std::to_string(threads));
  }
  long long rejected = 0;
  for (const auto& answer : want.answers) {
    if (!answer.ok()) ++rejected;
  }
  EXPECT_EQ(rejected, 20);
}

TEST(ServeParallelTest, EpochAdvancesWithUpdatesAndBatches) {
  data::LabeledHypercubeUniverse universe(3);
  data::Histogram dist = data::LogisticModelDistribution(
      universe, {1.0, -0.8, 0.5}, {0.7, 0.4, 0.5}, 0.25);
  data::Dataset dataset = data::RoundedDataset(universe, dist, 60000);

  losses::LipschitzFamily family(3);
  Rng rng(5);
  std::vector<convex::CmQuery> workload = family.Generate(24, &rng);

  erm::NoisyGradientOracle oracle;
  ServeOptions serve_options;
  serve_options.num_threads = 2;
  PmwService service(&dataset, &oracle, PracticalOptions(), 42,
                     serve_options);
  service.AnswerBatch(workload);

  const ServeStats& stats = service.stats();
  EXPECT_EQ(stats.threads, 2);
  // One publish at batch start plus one per mid-batch update (except an
  // update on the very last query, which has no suffix to re-prepare).
  EXPECT_GE(service.epochs().epochs_published(), 1 + stats.updates - 1);
  EXPECT_EQ(stats.epochs, service.epochs().epochs_published());
  ASSERT_NE(service.epochs().Current(), nullptr);
  EXPECT_EQ(service.epochs().Current()->snapshot->version,
            service.mechanism().hypothesis_version());
  EXPECT_EQ(stats.bottom_answers + stats.updates + stats.errors,
            stats.queries);
}

TEST(ServeParallelTest, ShardCacheStillAmortizesRepeats) {
  data::LabeledHypercubeUniverse universe(3);
  data::Histogram uniform = data::Histogram::Uniform(universe.size());
  data::Dataset dataset = data::RoundedDataset(universe, uniform, 60000);

  losses::LipschitzFamily family(3);
  Rng rng(6);
  std::vector<convex::CmQuery> pool = family.Generate(4, &rng);
  std::vector<convex::CmQuery> workload;
  for (int j = 0; j < 64; ++j) {
    workload.push_back(pool[static_cast<size_t>(j) % pool.size()]);
  }

  erm::NonPrivateOracle oracle;
  ServeOptions serve_options;
  serve_options.num_threads = 2;
  PmwService service(&dataset, &oracle, PracticalOptions(), 77,
                     serve_options);
  service.AnswerBatch(workload);

  // Dedup precedes sharding: at most 4 distinct plans are computed per
  // epoch regardless of thread count; everything else must be a hit.
  const ServeStats& stats = service.stats();
  long long epochs = stats.epochs;
  EXPECT_GE(stats.prepare_cache_hits, 64 - 4 * epochs);
  EXPECT_GT(stats.prepare_cache_hits, 0);
}

}  // namespace
}  // namespace serve
}  // namespace pmw
