// Property-style fuzz coverage for the api wire codec (api/codec.h):
//
//   (a) encode ∘ decode is the identity on QueryRequest and
//       AnswerEnvelope — including adversarial field contents (embedded
//       NULs, arbitrary bytes, NaN/Inf coordinates, compared bitwise).
//   (b) Decode is *total* on adversarial bytes: truncated buffers,
//       corrupted length prefixes, random byte flips, and empty input
//       return typed errors (kMalformedRequest / kVersionMismatch) or a
//       valid message — never a crash. The ASan/UBSan CI job runs this
//       binary, so "never crashes" includes "never reads out of bounds".
//   (c) Version negotiation: future-version frames are rejected with
//       kVersionMismatch; unknown fields inside an accepted version are
//       skipped (forward compatibility).

#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "api/codec.h"
#include "api/envelope.h"
#include "api/error.h"
#include "common/random.h"
#include "gtest/gtest.h"

namespace pmw {
namespace api {
namespace {

std::string RandomBytes(Rng* rng, int max_len) {
  const int len = rng->UniformInt(max_len + 1);
  std::string bytes(static_cast<size_t>(len), '\0');
  for (char& b : bytes) b = static_cast<char>(rng->UniformInt(256));
  return bytes;
}

QueryRequest RandomRequest(Rng* rng) {
  QueryRequest request;
  request.analyst_id = RandomBytes(rng, 24);
  request.request_id = rng->NextSeed();
  request.deadline_micros = rng->Bernoulli(0.5) ? rng->NextSeed() : 0;
  request.query_name = RandomBytes(rng, 40);
  if (request.query_name.empty()) request.query_name = "q";  // required
  return request;
}

QueryRequest RandomBatchedRequest(Rng* rng) {
  QueryRequest request = RandomRequest(rng);
  const int names = 1 + rng->UniformInt(8);
  for (int i = 0; i < names; ++i) {
    // Adversarial contents included: empty names, embedded NULs.
    request.query_names.push_back(RandomBytes(rng, 24));
  }
  return request;
}

StatsRequest RandomStatsRequest(Rng* rng) {
  StatsRequest request;
  request.analyst_id = RandomBytes(rng, 24);
  request.request_id = rng->NextSeed();
  return request;
}

MetricsRequest RandomMetricsRequest(Rng* rng) {
  MetricsRequest request;
  request.analyst_id = RandomBytes(rng, 24);
  request.request_id = rng->NextSeed();
  // Unknown formats must survive the wire too — the ENDPOINT rejects
  // them (typed), the codec just carries the byte.
  request.format = static_cast<uint8_t>(rng->UniformInt(4));
  return request;
}

TraceRequest RandomTraceRequest(Rng* rng) {
  TraceRequest request;
  request.analyst_id = RandomBytes(rng, 24);
  request.request_id = rng->NextSeed();
  request.min_total_us = rng->Bernoulli(0.5) ? rng->NextSeed() : 0;
  request.max_traces = static_cast<uint32_t>(rng->UniformInt(1 << 20));
  return request;
}

double RandomDouble(Rng* rng) {
  switch (rng->UniformInt(6)) {
    case 0:
      return std::numeric_limits<double>::infinity();
    case 1:
      return -std::numeric_limits<double>::quiet_NaN();
    case 2:
      return 0.0;
    default:
      return rng->Gaussian(0.0, 1e6);
  }
}

AnswerEnvelope RandomEnvelope(Rng* rng) {
  AnswerEnvelope envelope;
  envelope.request_id = rng->NextSeed();
  envelope.error = static_cast<ErrorCode>(rng->UniformInt(12));
  envelope.message = RandomBytes(rng, 60);
  const int dim = rng->UniformInt(16);
  for (int i = 0; i < dim; ++i) envelope.answer.push_back(RandomDouble(rng));
  envelope.meta.epoch = rng->NextSeed();
  envelope.meta.hard_round = rng->Bernoulli(0.5);
  envelope.meta.cache_hit = rng->Bernoulli(0.5);
  envelope.meta.hard_rounds_remaining =
      static_cast<long long>(rng->UniformInt(1000)) - 1;
  envelope.meta.epsilon_spent = RandomDouble(rng);
  envelope.meta.delta_spent = RandomDouble(rng);
  envelope.meta.shards = static_cast<uint32_t>(rng->UniformInt(64));
  envelope.meta.queue_wait_us = rng->NextSeed();
  envelope.meta.serve_us = rng->NextSeed();
  envelope.meta.prepare_us = rng->NextSeed();
  envelope.meta.solve_us = rng->NextSeed();
  envelope.meta.mw_us = rng->NextSeed();
  envelope.meta.commit_us = rng->NextSeed();
  return envelope;
}

/// Bitwise double equality (NaN payloads must survive the wire).
bool SameBits(double a, double b) {
  uint64_t ab, bb;
  std::memcpy(&ab, &a, sizeof(ab));
  std::memcpy(&bb, &b, sizeof(bb));
  return ab == bb;
}

void ExpectTypedDecodeFailure(std::string_view frame) {
  Result<QueryRequest> request = DecodeRequest(frame);
  if (request.ok()) return;  // a mutation can leave the frame valid
  const ErrorCode code = ClassifyStatus(request.status());
  EXPECT_TRUE(code == ErrorCode::kMalformedRequest ||
              code == ErrorCode::kVersionMismatch)
      << ErrorCodeName(code) << ": " << request.status().ToString();
}

TEST(ApiCodecTest, RequestRoundTripIsIdentity) {
  Rng rng(0xC0DEC);
  for (int trial = 0; trial < 500; ++trial) {
    const QueryRequest request = RandomRequest(&rng);
    std::string wire;
    EncodeRequest(request, &wire);

    size_t frame_size = 0;
    ASSERT_EQ(ExtractFrame(wire, &frame_size), FrameStatus::kFrame);
    ASSERT_EQ(frame_size, wire.size());
    ASSERT_EQ(PeekMsgType(wire), kMsgTypeRequest);

    Result<QueryRequest> decoded = DecodeRequest(wire);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().version, kProtocolVersion);
    EXPECT_EQ(decoded.value().analyst_id, request.analyst_id);
    EXPECT_EQ(decoded.value().request_id, request.request_id);
    EXPECT_EQ(decoded.value().deadline_micros, request.deadline_micros);
    EXPECT_EQ(decoded.value().query_name, request.query_name);
  }
}

TEST(ApiCodecTest, AnswerRoundTripIsIdentity) {
  Rng rng(0xC0DEC + 1);
  for (int trial = 0; trial < 500; ++trial) {
    const AnswerEnvelope envelope = RandomEnvelope(&rng);
    std::string wire;
    EncodeAnswer(envelope, &wire);
    ASSERT_EQ(PeekMsgType(wire), kMsgTypeAnswer);

    Result<AnswerEnvelope> decoded = DecodeAnswer(wire);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    const AnswerEnvelope& got = decoded.value();
    EXPECT_EQ(got.request_id, envelope.request_id);
    EXPECT_EQ(got.error, envelope.error);
    EXPECT_EQ(got.message, envelope.message);
    ASSERT_EQ(got.answer.size(), envelope.answer.size());
    for (size_t i = 0; i < envelope.answer.size(); ++i) {
      EXPECT_TRUE(SameBits(got.answer[i], envelope.answer[i])) << i;
    }
    EXPECT_EQ(got.meta.epoch, envelope.meta.epoch);
    EXPECT_EQ(got.meta.hard_round, envelope.meta.hard_round);
    EXPECT_EQ(got.meta.cache_hit, envelope.meta.cache_hit);
    EXPECT_EQ(got.meta.hard_rounds_remaining,
              envelope.meta.hard_rounds_remaining);
    EXPECT_TRUE(SameBits(got.meta.epsilon_spent, envelope.meta.epsilon_spent));
    EXPECT_TRUE(SameBits(got.meta.delta_spent, envelope.meta.delta_spent));
    EXPECT_EQ(got.meta.shards, envelope.meta.shards);
    EXPECT_EQ(got.meta.queue_wait_us, envelope.meta.queue_wait_us);
    EXPECT_EQ(got.meta.serve_us, envelope.meta.serve_us);
    EXPECT_EQ(got.meta.prepare_us, envelope.meta.prepare_us);
    EXPECT_EQ(got.meta.solve_us, envelope.meta.solve_us);
    EXPECT_EQ(got.meta.mw_us, envelope.meta.mw_us);
    EXPECT_EQ(got.meta.commit_us, envelope.meta.commit_us);
  }
}

TEST(ApiCodecTest, BatchedRequestRoundTripIsIdentity) {
  Rng rng(0xC0DEC + 7);
  for (int trial = 0; trial < 500; ++trial) {
    const QueryRequest request = RandomBatchedRequest(&rng);
    std::string wire;
    EncodeRequest(request, &wire);
    ASSERT_EQ(PeekMsgType(wire), kMsgTypeRequest);

    Result<QueryRequest> decoded = DecodeRequest(wire);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().analyst_id, request.analyst_id);
    EXPECT_EQ(decoded.value().request_id, request.request_id);
    ASSERT_EQ(decoded.value().query_names.size(),
              request.query_names.size());
    for (size_t i = 0; i < request.query_names.size(); ++i) {
      EXPECT_EQ(decoded.value().query_names[i], request.query_names[i])
          << i;
    }
  }
}

TEST(ApiCodecTest, StatsRequestRoundTripIsIdentity) {
  Rng rng(0xC0DEC + 8);
  for (int trial = 0; trial < 500; ++trial) {
    const StatsRequest request = RandomStatsRequest(&rng);
    std::string wire;
    EncodeStatsRequest(request, &wire);

    size_t frame_size = 0;
    ASSERT_EQ(ExtractFrame(wire, &frame_size), FrameStatus::kFrame);
    ASSERT_EQ(frame_size, wire.size());
    ASSERT_EQ(PeekMsgType(wire), kMsgTypeStats);

    Result<StatsRequest> decoded = DecodeStatsRequest(wire);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().version, kProtocolVersion);
    EXPECT_EQ(decoded.value().analyst_id, request.analyst_id);
    EXPECT_EQ(decoded.value().request_id, request.request_id);
  }
}

TEST(ApiCodecTest, MetricsRequestRoundTripIsIdentity) {
  Rng rng(0xC0DEC + 11);
  for (int trial = 0; trial < 500; ++trial) {
    const MetricsRequest request = RandomMetricsRequest(&rng);
    std::string wire;
    EncodeMetricsRequest(request, &wire);

    size_t frame_size = 0;
    ASSERT_EQ(ExtractFrame(wire, &frame_size), FrameStatus::kFrame);
    ASSERT_EQ(frame_size, wire.size());
    ASSERT_EQ(PeekMsgType(wire), kMsgTypeMetrics);

    Result<MetricsRequest> decoded = DecodeMetricsRequest(wire);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().version, kProtocolVersion);
    EXPECT_EQ(decoded.value().analyst_id, request.analyst_id);
    EXPECT_EQ(decoded.value().request_id, request.request_id);
    EXPECT_EQ(decoded.value().format, request.format);
  }
}

TEST(ApiCodecTest, TraceRequestRoundTripIsIdentity) {
  Rng rng(0xC0DEC + 12);
  for (int trial = 0; trial < 500; ++trial) {
    const TraceRequest request = RandomTraceRequest(&rng);
    std::string wire;
    EncodeTraceRequest(request, &wire);

    size_t frame_size = 0;
    ASSERT_EQ(ExtractFrame(wire, &frame_size), FrameStatus::kFrame);
    ASSERT_EQ(frame_size, wire.size());
    ASSERT_EQ(PeekMsgType(wire), kMsgTypeTrace);

    Result<TraceRequest> decoded = DecodeTraceRequest(wire);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().version, kProtocolVersion);
    EXPECT_EQ(decoded.value().analyst_id, request.analyst_id);
    EXPECT_EQ(decoded.value().request_id, request.request_id);
    EXPECT_EQ(decoded.value().min_total_us, request.min_total_us);
    EXPECT_EQ(decoded.value().max_traces, request.max_traces);
  }
}

TEST(ApiCodecTest, MetricsAndTraceTruncationsAreTypedNeverACrash) {
  Rng rng(0xC0DEC + 13);
  for (int trial = 0; trial < 25; ++trial) {
    for (const bool trace : {false, true}) {
      std::string wire;
      if (trace) {
        EncodeTraceRequest(RandomTraceRequest(&rng), &wire);
      } else {
        EncodeMetricsRequest(RandomMetricsRequest(&rng), &wire);
      }
      for (size_t cut = 0; cut < wire.size(); ++cut) {
        const std::string_view prefix(wire.data(), cut);
        size_t frame_size = 0;
        EXPECT_EQ(ExtractFrame(prefix, &frame_size),
                  FrameStatus::kNeedMore);
        if (trace) {
          Result<TraceRequest> decoded = DecodeTraceRequest(prefix);
          ASSERT_FALSE(decoded.ok()) << "cut=" << cut;
          EXPECT_EQ(ClassifyStatus(decoded.status()),
                    ErrorCode::kMalformedRequest)
              << "cut=" << cut;
        } else {
          Result<MetricsRequest> decoded = DecodeMetricsRequest(prefix);
          ASSERT_FALSE(decoded.ok()) << "cut=" << cut;
          EXPECT_EQ(ClassifyStatus(decoded.status()),
                    ErrorCode::kMalformedRequest)
              << "cut=" << cut;
        }
      }
    }
  }
}

TEST(ApiCodecTest, FutureVersionMetricsAndTraceFramesAreVersionMismatch) {
  Rng rng(0xC0DEC + 14);
  {
    std::string wire;
    EncodeMetricsRequest(RandomMetricsRequest(&rng), &wire);
    wire[6] = 99;  // version byte sits after the length + magic
    Result<MetricsRequest> decoded = DecodeMetricsRequest(wire);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(ClassifyStatus(decoded.status()),
              ErrorCode::kVersionMismatch);
  }
  {
    std::string wire;
    EncodeTraceRequest(RandomTraceRequest(&rng), &wire);
    wire[6] = 99;
    Result<TraceRequest> decoded = DecodeTraceRequest(wire);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(ClassifyStatus(decoded.status()),
              ErrorCode::kVersionMismatch);
  }
}

TEST(ApiCodecTest, PreSpanMetaTailsDecodeWithZeroSpans) {
  // A peer from before the span breakdown emits a 54-byte meta payload
  // (epoch..serve_us). Simulate one by chopping the 32-byte span tail
  // off a fresh frame and re-patching the two length prefixes; the
  // decoder must fill the missing spans with zeros, not reject.
  Rng rng(0xC0DEC + 15);
  AnswerEnvelope envelope = RandomEnvelope(&rng);
  envelope.error = ErrorCode::kOk;
  std::string wire;
  EncodeAnswer(envelope, &wire);

  constexpr size_t kSpanTail = 4 * sizeof(uint64_t);
  constexpr size_t kNewMetaLen = 54;  // v1 baseline + shards + timing
  // The meta field is the last one in the frame: tag, u32 length, payload.
  const size_t meta_len_at = wire.size() - (kNewMetaLen + kSpanTail) - 4;
  const auto patch_u32 = [&wire](size_t at, uint32_t value) {
    char bytes[4];
    std::memcpy(bytes, &value, sizeof(value));
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
    std::swap(bytes[0], bytes[3]);
    std::swap(bytes[1], bytes[2]);
#endif
    wire.replace(at, 4, bytes, 4);
  };
  patch_u32(meta_len_at, kNewMetaLen);
  wire.resize(wire.size() - kSpanTail);
  patch_u32(0, static_cast<uint32_t>(wire.size() - 4));

  size_t frame_size = 0;
  ASSERT_EQ(ExtractFrame(wire, &frame_size), FrameStatus::kFrame);
  Result<AnswerEnvelope> decoded = DecodeAnswer(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const AnswerEnvelope& got = decoded.value();
  // Everything up to the timing split survives...
  EXPECT_EQ(got.meta.epoch, envelope.meta.epoch);
  EXPECT_EQ(got.meta.shards, envelope.meta.shards);
  EXPECT_EQ(got.meta.queue_wait_us, envelope.meta.queue_wait_us);
  EXPECT_EQ(got.meta.serve_us, envelope.meta.serve_us);
  // ...and the absent span tail reads as "unknown", never garbage.
  EXPECT_EQ(got.meta.prepare_us, 0u);
  EXPECT_EQ(got.meta.solve_us, 0u);
  EXPECT_EQ(got.meta.mw_us, 0u);
  EXPECT_EQ(got.meta.commit_us, 0u);
}

TEST(ApiCodecTest, BatchedAndStatsTruncationsAreTypedNeverACrash) {
  Rng rng(0xC0DEC + 9);
  for (int trial = 0; trial < 25; ++trial) {
    for (const bool stats : {false, true}) {
      std::string wire;
      if (stats) {
        EncodeStatsRequest(RandomStatsRequest(&rng), &wire);
      } else {
        EncodeRequest(RandomBatchedRequest(&rng), &wire);
      }
      for (size_t cut = 0; cut < wire.size(); ++cut) {
        const std::string_view prefix(wire.data(), cut);
        size_t frame_size = 0;
        EXPECT_EQ(ExtractFrame(prefix, &frame_size),
                  FrameStatus::kNeedMore);
        if (stats) {
          Result<StatsRequest> decoded = DecodeStatsRequest(prefix);
          ASSERT_FALSE(decoded.ok()) << "cut=" << cut;
          EXPECT_EQ(ClassifyStatus(decoded.status()),
                    ErrorCode::kMalformedRequest)
              << "cut=" << cut;
        } else {
          Result<QueryRequest> decoded = DecodeRequest(prefix);
          ASSERT_FALSE(decoded.ok()) << "cut=" << cut;
          EXPECT_EQ(ClassifyStatus(decoded.status()),
                    ErrorCode::kMalformedRequest)
              << "cut=" << cut;
        }
      }
    }
  }
}

TEST(ApiCodecTest, BatchedAndStatsCorruptionsAreTypedNeverACrash) {
  Rng rng(0xC0DEC + 10);
  for (int trial = 0; trial < 400; ++trial) {
    std::string wire;
    switch (rng.UniformInt(3)) {
      case 0:
        EncodeRequest(RandomBatchedRequest(&rng), &wire);
        break;
      case 1:
        EncodeStatsRequest(RandomStatsRequest(&rng), &wire);
        break;
      default: {
        AnswerEnvelope envelope = RandomEnvelope(&rng);
        EncodeAnswer(envelope, &wire);
        break;
      }
    }
    const int flips = 1 + rng.UniformInt(8);
    for (int f = 0; f < flips; ++f) {
      const size_t at = static_cast<size_t>(
          rng.UniformInt(static_cast<int>(wire.size())));
      wire[at] = static_cast<char>(rng.UniformInt(256));
    }
    // Every decoder must be total on the mutation, whichever frame it
    // actually was (cross-decoding a foreign type is a typed error too).
    ExpectTypedDecodeFailure(wire);
    Result<StatsRequest> stats = DecodeStatsRequest(wire);
    if (!stats.ok()) {
      const ErrorCode code = ClassifyStatus(stats.status());
      EXPECT_TRUE(code == ErrorCode::kMalformedRequest ||
                  code == ErrorCode::kVersionMismatch);
    }
    Result<AnswerEnvelope> answer = DecodeAnswer(wire);
    if (!answer.ok()) {
      const ErrorCode code = ClassifyStatus(answer.status());
      EXPECT_TRUE(code == ErrorCode::kMalformedRequest ||
                  code == ErrorCode::kVersionMismatch);
    }
  }
}

TEST(ApiCodecTest, FutureVersionStatsFramesAreVersionMismatch) {
  Rng rng(0xC0DEC + 11);
  std::string wire;
  EncodeStatsRequest(RandomStatsRequest(&rng), &wire);
  wire[6] = static_cast<char>(kProtocolVersion + 9);
  Result<StatsRequest> decoded = DecodeStatsRequest(wire);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(ClassifyStatus(decoded.status()), ErrorCode::kVersionMismatch);
}

TEST(ApiCodecTest, HostileBatchedNameCountsAreRejectedWithoutAllocation) {
  // A forged count far beyond the field's bytes must be a typed error
  // before any reserve() could act on it.
  QueryRequest request;
  request.analyst_id = "a";
  request.request_id = 5;
  request.query_names = {"x", "y"};
  std::string wire;
  EncodeRequest(request, &wire);
  // The batched field is encoded last, so its count sits right after
  // the field header (1 tag + 4 len bytes) that follows the bare
  // frame's bytes; locate it by re-encoding without the field.
  QueryRequest bare = request;
  bare.query_names.clear();
  std::string prefix;
  EncodeRequest(bare, &prefix);
  const size_t count_at = prefix.size() + 5;
  ASSERT_LE(count_at + 4, wire.size());
  const uint32_t bogus = 0x7FFFFFFF;
  std::memcpy(wire.data() + count_at, &bogus, sizeof(bogus));
  Result<QueryRequest> decoded = DecodeRequest(wire);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(ClassifyStatus(decoded.status()), ErrorCode::kMalformedRequest);
}

TEST(ApiCodecTest, EveryTruncationIsTypedNeverACrash) {
  Rng rng(0xC0DEC + 2);
  for (int trial = 0; trial < 50; ++trial) {
    std::string wire;
    EncodeRequest(RandomRequest(&rng), &wire);
    for (size_t cut = 0; cut < wire.size(); ++cut) {
      const std::string_view prefix(wire.data(), cut);
      // Stream framing reports "wait for more bytes"...
      size_t frame_size = 0;
      EXPECT_EQ(ExtractFrame(prefix, &frame_size), FrameStatus::kNeedMore);
      // ...and decoding the truncation as if complete is a typed error.
      Result<QueryRequest> decoded = DecodeRequest(prefix);
      ASSERT_FALSE(decoded.ok()) << "cut=" << cut;
      EXPECT_EQ(ClassifyStatus(decoded.status()),
                ErrorCode::kMalformedRequest)
          << "cut=" << cut;
    }
  }
}

TEST(ApiCodecTest, CorruptedBytesAreTypedNeverACrash) {
  Rng rng(0xC0DEC + 3);
  for (int trial = 0; trial < 400; ++trial) {
    std::string wire;
    if (rng.Bernoulli(0.5)) {
      EncodeRequest(RandomRequest(&rng), &wire);
    } else {
      AnswerEnvelope envelope = RandomEnvelope(&rng);
      EncodeAnswer(envelope, &wire);
    }
    // 1..8 random byte mutations anywhere, length prefix included.
    const int flips = 1 + rng.UniformInt(8);
    for (int f = 0; f < flips; ++f) {
      const size_t at = static_cast<size_t>(
          rng.UniformInt(static_cast<int>(wire.size())));
      wire[at] = static_cast<char>(rng.UniformInt(256));
    }
    ExpectTypedDecodeFailure(wire);
    Result<AnswerEnvelope> answer = DecodeAnswer(wire);
    if (!answer.ok()) {
      const ErrorCode code = ClassifyStatus(answer.status());
      EXPECT_TRUE(code == ErrorCode::kMalformedRequest ||
                  code == ErrorCode::kVersionMismatch);
    }
  }
}

TEST(ApiCodecTest, HostileLengthPrefixesAreRejected) {
  // An adversarial length prefix must not drive allocation or reads.
  QueryRequest tiny;
  tiny.query_name = "q";
  std::string wire;
  EncodeRequest(tiny, &wire);
  std::string huge = wire;
  const uint32_t bogus = 0xFFFFFFFF;
  std::memcpy(huge.data(), &bogus, sizeof(bogus));
  size_t frame_size = 0;
  EXPECT_EQ(ExtractFrame(huge, &frame_size), FrameStatus::kMalformed);
  EXPECT_FALSE(DecodeRequest(huge).ok());
  // Empty / sub-header inputs.
  EXPECT_EQ(ExtractFrame(std::string_view(), &frame_size),
            FrameStatus::kNeedMore);
  EXPECT_FALSE(DecodeRequest(std::string_view()).ok());
  EXPECT_EQ(PeekMsgType(std::string_view()), 0);
}

TEST(ApiCodecTest, FutureVersionFramesAreVersionMismatch) {
  Rng rng(0xC0DEC + 4);
  for (int version = kProtocolVersion + 1; version < 256; version += 37) {
    std::string wire;
    EncodeRequest(RandomRequest(&rng), &wire);
    wire[6] = static_cast<char>(version);  // the header's version byte
    Result<QueryRequest> decoded = DecodeRequest(wire);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(ClassifyStatus(decoded.status()), ErrorCode::kVersionMismatch);
  }
  // Version 0 predates kMinProtocolVersion: nothing speaks it.
  std::string wire;
  EncodeRequest(RandomRequest(&rng), &wire);
  wire[6] = 0;
  Result<QueryRequest> decoded = DecodeRequest(wire);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(ClassifyStatus(decoded.status()), ErrorCode::kVersionMismatch);
}

TEST(ApiCodecTest, EmptyQueryNameDecodesSoTheReplyKeepsItsRequestId) {
  // A nameless request is the ENDPOINT's problem (kUnknownQuery): if the
  // codec rejected it the reply would carry request id 0 and a
  // pipelining client could not correlate it.
  QueryRequest request;
  request.analyst_id = "a";
  request.request_id = 42;
  std::string wire;
  EncodeRequest(request, &wire);
  Result<QueryRequest> decoded = DecodeRequest(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().request_id, 42u);
  EXPECT_TRUE(decoded.value().query_name.empty());
}

TEST(ApiCodecTest, UnknownFieldsAreSkippedForForwardCompatibility) {
  QueryRequest request;
  request.analyst_id = "a";
  request.request_id = 7;
  request.query_name = "q";
  std::string wire;
  EncodeRequest(request, &wire);
  // Append a field a future same-version peer might add: tag 200 with 5
  // payload bytes, then patch the frame's length prefix.
  wire.push_back(static_cast<char>(200));
  const uint32_t extra_len = 5;
  wire.append(reinterpret_cast<const char*>(&extra_len), 4);
  wire.append("extra", 5);
  const uint32_t payload_len = static_cast<uint32_t>(wire.size() - 4);
  std::memcpy(wire.data(), &payload_len, sizeof(payload_len));

  Result<QueryRequest> decoded = DecodeRequest(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().analyst_id, "a");
  EXPECT_EQ(decoded.value().request_id, 7u);
  EXPECT_EQ(decoded.value().query_name, "q");
}

HelloRequest RandomHelloRequest(Rng* rng) {
  HelloRequest request;
  request.analyst_id = RandomBytes(rng, 24);
  request.request_id = rng->NextSeed();
  // Adversarial tokens included: empty, embedded NULs, arbitrary bytes.
  request.auth_token = RandomBytes(rng, 48);
  return request;
}

ShardRpcRequest RandomShardRpcRequest(Rng* rng) {
  ShardRpcRequest request;
  request.request_id = rng->NextSeed();
  // Any op byte, known or not: the decoder carries it, the WORKER types
  // the rejection — same split as metrics formats.
  request.op = static_cast<ShardRpcOp>(rng->UniformInt(9));
  request.update_seq = rng->NextSeed();
  request.domain_size = static_cast<uint32_t>(rng->UniformInt(1 << 24));
  request.num_shards = static_cast<uint32_t>(rng->UniformInt(256));
  request.group_lo = static_cast<uint32_t>(rng->UniformInt(256));
  request.group_hi = static_cast<uint32_t>(rng->UniformInt(256));
  request.eta = RandomDouble(rng);
  request.global_max = RandomDouble(rng);
  request.total = RandomDouble(rng);
  request.snapshot_lo = static_cast<uint32_t>(rng->UniformInt(1 << 20));
  request.snapshot_hi = static_cast<uint32_t>(rng->UniformInt(1 << 20));
  const int slice = rng->UniformInt(64);
  for (int i = 0; i < slice; ++i) {
    request.payoff.push_back(RandomDouble(rng));
  }
  return request;
}

TEST(ApiCodecTest, HelloRoundTripIsIdentity) {
  Rng rng(0xC0DEC + 16);
  for (int trial = 0; trial < 500; ++trial) {
    const HelloRequest request = RandomHelloRequest(&rng);
    std::string wire;
    EncodeHelloRequest(request, &wire);

    size_t frame_size = 0;
    ASSERT_EQ(ExtractFrame(wire, &frame_size), FrameStatus::kFrame);
    ASSERT_EQ(frame_size, wire.size());
    ASSERT_EQ(PeekMsgType(wire), kMsgTypeHello);

    Result<HelloRequest> decoded = DecodeHelloRequest(wire);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().version, kProtocolVersion);
    EXPECT_EQ(decoded.value().analyst_id, request.analyst_id);
    EXPECT_EQ(decoded.value().request_id, request.request_id);
    EXPECT_EQ(decoded.value().auth_token, request.auth_token);
  }
}

TEST(ApiCodecTest, ShardRpcRoundTripIsIdentity) {
  Rng rng(0xC0DEC + 17);
  for (int trial = 0; trial < 500; ++trial) {
    const ShardRpcRequest request = RandomShardRpcRequest(&rng);
    std::string wire;
    EncodeShardRpcRequest(request, &wire);

    size_t frame_size = 0;
    ASSERT_EQ(ExtractFrame(wire, &frame_size), FrameStatus::kFrame);
    ASSERT_EQ(frame_size, wire.size());
    ASSERT_EQ(PeekMsgType(wire), kMsgTypeShardRpc);

    Result<ShardRpcRequest> decoded = DecodeShardRpcRequest(wire);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    const ShardRpcRequest& got = decoded.value();
    EXPECT_EQ(got.version, kProtocolVersion);
    EXPECT_EQ(got.request_id, request.request_id);
    EXPECT_EQ(got.op, request.op);
    EXPECT_EQ(got.update_seq, request.update_seq);
    EXPECT_EQ(got.domain_size, request.domain_size);
    EXPECT_EQ(got.num_shards, request.num_shards);
    EXPECT_EQ(got.group_lo, request.group_lo);
    EXPECT_EQ(got.group_hi, request.group_hi);
    EXPECT_TRUE(SameBits(got.eta, request.eta));
    EXPECT_TRUE(SameBits(got.global_max, request.global_max));
    EXPECT_TRUE(SameBits(got.total, request.total));
    EXPECT_EQ(got.snapshot_lo, request.snapshot_lo);
    EXPECT_EQ(got.snapshot_hi, request.snapshot_hi);
    ASSERT_EQ(got.payoff.size(), request.payoff.size());
    for (size_t i = 0; i < request.payoff.size(); ++i) {
      EXPECT_TRUE(SameBits(got.payoff[i], request.payoff[i])) << i;
    }
  }
}

TEST(ApiCodecTest, HelloAndShardRpcTruncationsAreTypedNeverACrash) {
  Rng rng(0xC0DEC + 18);
  for (int trial = 0; trial < 25; ++trial) {
    for (const bool shard_rpc : {false, true}) {
      std::string wire;
      if (shard_rpc) {
        EncodeShardRpcRequest(RandomShardRpcRequest(&rng), &wire);
      } else {
        EncodeHelloRequest(RandomHelloRequest(&rng), &wire);
      }
      for (size_t cut = 0; cut < wire.size(); ++cut) {
        const std::string_view prefix(wire.data(), cut);
        size_t frame_size = 0;
        EXPECT_EQ(ExtractFrame(prefix, &frame_size),
                  FrameStatus::kNeedMore);
        if (shard_rpc) {
          Result<ShardRpcRequest> decoded = DecodeShardRpcRequest(prefix);
          ASSERT_FALSE(decoded.ok()) << "cut=" << cut;
          EXPECT_EQ(ClassifyStatus(decoded.status()),
                    ErrorCode::kMalformedRequest)
              << "cut=" << cut;
        } else {
          Result<HelloRequest> decoded = DecodeHelloRequest(prefix);
          ASSERT_FALSE(decoded.ok()) << "cut=" << cut;
          EXPECT_EQ(ClassifyStatus(decoded.status()),
                    ErrorCode::kMalformedRequest)
              << "cut=" << cut;
        }
      }
    }
  }
}

TEST(ApiCodecTest, HelloAndShardRpcCorruptionsAreTypedNeverACrash) {
  Rng rng(0xC0DEC + 19);
  for (int trial = 0; trial < 400; ++trial) {
    std::string wire;
    if (rng.Bernoulli(0.5)) {
      EncodeHelloRequest(RandomHelloRequest(&rng), &wire);
    } else {
      EncodeShardRpcRequest(RandomShardRpcRequest(&rng), &wire);
    }
    const int flips = 1 + rng.UniformInt(8);
    for (int f = 0; f < flips; ++f) {
      const size_t at = static_cast<size_t>(
          rng.UniformInt(static_cast<int>(wire.size())));
      wire[at] = static_cast<char>(rng.UniformInt(256));
    }
    Result<HelloRequest> hello = DecodeHelloRequest(wire);
    if (!hello.ok()) {
      const ErrorCode code = ClassifyStatus(hello.status());
      EXPECT_TRUE(code == ErrorCode::kMalformedRequest ||
                  code == ErrorCode::kVersionMismatch)
          << ErrorCodeName(code);
    }
    Result<ShardRpcRequest> rpc = DecodeShardRpcRequest(wire);
    if (!rpc.ok()) {
      const ErrorCode code = ClassifyStatus(rpc.status());
      EXPECT_TRUE(code == ErrorCode::kMalformedRequest ||
                  code == ErrorCode::kVersionMismatch)
          << ErrorCodeName(code);
    }
  }
}

TEST(ApiCodecTest, FutureVersionHelloAndShardRpcFramesAreVersionMismatch) {
  Rng rng(0xC0DEC + 20);
  {
    std::string wire;
    EncodeHelloRequest(RandomHelloRequest(&rng), &wire);
    wire[6] = 99;  // version byte sits after the length + magic
    Result<HelloRequest> decoded = DecodeHelloRequest(wire);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(ClassifyStatus(decoded.status()),
              ErrorCode::kVersionMismatch);
  }
  {
    std::string wire;
    EncodeShardRpcRequest(RandomShardRpcRequest(&rng), &wire);
    wire[6] = 99;
    Result<ShardRpcRequest> decoded = DecodeShardRpcRequest(wire);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(ClassifyStatus(decoded.status()),
              ErrorCode::kVersionMismatch);
  }
}

}  // namespace
}  // namespace api
}  // namespace pmw
