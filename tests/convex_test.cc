// Unit tests for the convex substrate: vector ops, domains/projections,
// empirical objectives, and all four solvers against known optima.

#include <cmath>

#include "common/random.h"
#include "convex/auto_solver.h"
#include "convex/domain.h"
#include "convex/empirical_loss.h"
#include "convex/frank_wolfe.h"
#include "convex/golden_section.h"
#include "convex/gradient_descent.h"
#include "convex/loss_function.h"
#include "convex/vector_ops.h"
#include "data/binary_universe.h"
#include "gtest/gtest.h"

namespace pmw {
namespace convex {
namespace {

// A simple quadratic objective f(x) = ||x - target||^2 for solver tests.
class QuadraticObjective : public Objective {
 public:
  explicit QuadraticObjective(Vec target) : target_(std::move(target)) {}
  int dim() const override { return static_cast<int>(target_.size()); }
  double Value(const Vec& theta) const override {
    double acc = 0.0;
    for (size_t i = 0; i < target_.size(); ++i) {
      acc += (theta[i] - target_[i]) * (theta[i] - target_[i]);
    }
    return acc;
  }
  Vec Gradient(const Vec& theta) const override {
    Vec g(target_.size());
    for (size_t i = 0; i < target_.size(); ++i) {
      g[i] = 2.0 * (theta[i] - target_[i]);
    }
    return g;
  }

 private:
  Vec target_;
};

// Non-smooth convex: f(x) = sum |x_i - target_i|.
class AbsObjective : public Objective {
 public:
  explicit AbsObjective(Vec target) : target_(std::move(target)) {}
  int dim() const override { return static_cast<int>(target_.size()); }
  double Value(const Vec& theta) const override {
    double acc = 0.0;
    for (size_t i = 0; i < target_.size(); ++i) {
      acc += std::abs(theta[i] - target_[i]);
    }
    return acc;
  }
  Vec Gradient(const Vec& theta) const override {
    Vec g(target_.size());
    for (size_t i = 0; i < target_.size(); ++i) {
      double diff = theta[i] - target_[i];
      g[i] = diff > 0 ? 1.0 : (diff < 0 ? -1.0 : 0.0);
    }
    return g;
  }

 private:
  Vec target_;
};

TEST(VectorOpsTest, DotAndNorms) {
  Vec a = {1.0, 2.0, 2.0};
  Vec b = {2.0, 0.0, 1.0};
  EXPECT_NEAR(Dot(a, b), 4.0, 1e-12);
  EXPECT_NEAR(Norm2(a), 3.0, 1e-12);
  EXPECT_NEAR(Dist2(a, b), std::sqrt(1.0 + 4.0 + 1.0), 1e-12);
}

TEST(VectorOpsTest, AddSubScale) {
  Vec a = {1.0, -1.0};
  Vec b = {2.0, 3.0};
  Vec sum = Add(a, b);
  EXPECT_NEAR(sum[0], 3.0, 1e-12);
  Vec diff = Sub(a, b);
  EXPECT_NEAR(diff[1], -4.0, 1e-12);
  Vec scaled = Scaled(a, -2.0);
  EXPECT_NEAR(scaled[0], -2.0, 1e-12);
  AddScaledInPlace(&a, b, 0.5);
  EXPECT_NEAR(a[0], 2.0, 1e-12);
  ScaleInPlace(&a, 2.0);
  EXPECT_NEAR(a[0], 4.0, 1e-12);
}

TEST(L2BallTest, ProjectionInsideIsIdentity) {
  L2Ball ball(3);
  Vec v = {0.1, 0.2, -0.3};
  Vec w = v;
  ball.Project(&w);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(w[i], v[i], 1e-12);
}

TEST(L2BallTest, ProjectionOutsideHitsBoundary) {
  L2Ball ball(2);
  Vec v = {3.0, 4.0};
  ball.Project(&v);
  EXPECT_NEAR(Norm2(v), 1.0, 1e-12);
  EXPECT_NEAR(v[0], 0.6, 1e-12);
  EXPECT_NEAR(v[1], 0.8, 1e-12);
}

TEST(L2BallTest, OffCenterProjection) {
  L2Ball ball({1.0, 0.0}, 0.5);
  Vec v = {3.0, 0.0};
  ball.Project(&v);
  EXPECT_NEAR(v[0], 1.5, 1e-12);
  EXPECT_TRUE(ball.Contains(v, 1e-9));
  EXPECT_NEAR(ball.Diameter(), 1.0, 1e-12);
}

TEST(BoxTest, ProjectionClamps) {
  Box box({0.0, -1.0}, {1.0, 1.0});
  Vec v = {2.0, -3.0};
  box.Project(&v);
  EXPECT_NEAR(v[0], 1.0, 1e-12);
  EXPECT_NEAR(v[1], -1.0, 1e-12);
  EXPECT_TRUE(box.Contains(v, 1e-12));
  EXPECT_NEAR(box.Diameter(), std::sqrt(1.0 + 4.0), 1e-12);
}

TEST(IntervalTest, Basics) {
  Interval iv(0.0, 1.0);
  Vec v = {1.7};
  iv.Project(&v);
  EXPECT_NEAR(v[0], 1.0, 1e-12);
  EXPECT_NEAR(iv.Center()[0], 0.5, 1e-12);
  EXPECT_NEAR(iv.Diameter(), 1.0, 1e-12);
}

TEST(SimplexTest, ProjectionLandsOnSimplex) {
  Simplex simplex(4);
  Rng rng(9);
  for (int trial = 0; trial < 50; ++trial) {
    Vec v = rng.GaussianVector(4, 2.0);
    simplex.Project(&v);
    EXPECT_TRUE(simplex.Contains(v, 1e-9)) << "trial " << trial;
  }
}

TEST(SimplexTest, ProjectionOfSimplexPointIsIdentity) {
  Simplex simplex(3);
  Vec v = {0.2, 0.3, 0.5};
  Vec w = v;
  simplex.Project(&w);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(w[i], v[i], 1e-9);
}

// Property: projection onto a convex set is the nearest point — no sampled
// feasible point may be closer.
TEST(ProjectionPropertyTest, ProjectionIsNearestPoint) {
  Rng rng(17);
  L2Ball ball(3);
  Simplex simplex(3);
  Box box({-0.5, -0.5, -0.5}, {0.5, 0.5, 0.5});
  const Domain* domains[] = {&ball, &simplex, &box};
  for (const Domain* domain : domains) {
    for (int trial = 0; trial < 30; ++trial) {
      Vec outside = rng.GaussianVector(3, 2.0);
      Vec projected = outside;
      domain->Project(&projected);
      double best = Dist2(outside, projected);
      for (int probe = 0; probe < 40; ++probe) {
        Vec candidate = rng.GaussianVector(3, 1.0);
        domain->Project(&candidate);
        EXPECT_GE(Dist2(outside, candidate) + 1e-9, best)
            << domain->name() << " trial " << trial;
      }
    }
  }
}

TEST(GradientDescentTest, SolvesUnconstrainedQuadratic) {
  QuadraticObjective objective({0.3, -0.2});
  L2Ball ball(2);
  GradientDescentSolver solver;
  SolverResult result = solver.Minimize(objective, ball);
  EXPECT_NEAR(result.theta[0], 0.3, 1e-5);
  EXPECT_NEAR(result.theta[1], -0.2, 1e-5);
}

TEST(GradientDescentTest, RespectsConstraint) {
  QuadraticObjective objective({2.0, 0.0});  // optimum outside the ball
  L2Ball ball(2);
  GradientDescentSolver solver;
  SolverResult result = solver.Minimize(objective, ball);
  EXPECT_NEAR(result.theta[0], 1.0, 1e-4);
  EXPECT_NEAR(result.theta[1], 0.0, 1e-4);
  EXPECT_LE(Norm2(result.theta), 1.0 + 1e-9);
}

TEST(GradientDescentTest, HandlesNonSmoothObjective) {
  AbsObjective objective({0.25, -0.5});
  L2Ball ball(2);
  SolverOptions options;
  options.max_iters = 2000;
  GradientDescentSolver solver(options);
  SolverResult result = solver.Minimize(objective, ball);
  EXPECT_NEAR(result.value, 0.0, 0.01);
}

TEST(SubgradientSolverTest, MatchesGradientDescentOnQuadratic) {
  QuadraticObjective objective({0.1, 0.4});
  L2Ball ball(2);
  SolverOptions options;
  options.max_iters = 3000;
  SubgradientSolver solver(options);
  SolverResult result = solver.Minimize(objective, ball);
  EXPECT_NEAR(result.value, 0.0, 5e-3);
}

TEST(FrankWolfeTest, LinearMinimizerBall) {
  L2Ball ball(2);
  Vec direction = {3.0, 4.0};
  Vec s = LinearMinimizer(ball, direction);
  EXPECT_NEAR(s[0], -0.6, 1e-12);
  EXPECT_NEAR(s[1], -0.8, 1e-12);
}

TEST(FrankWolfeTest, LinearMinimizerSimplexAndInterval) {
  Simplex simplex(3);
  Vec s = LinearMinimizer(simplex, {0.5, -1.0, 2.0});
  EXPECT_NEAR(s[1], 1.0, 1e-12);
  Interval iv(0.0, 1.0);
  Vec t = LinearMinimizer(iv, {-2.0});
  EXPECT_NEAR(t[0], 1.0, 1e-12);
}

TEST(FrankWolfeTest, SolvesQuadraticOnBall) {
  QuadraticObjective objective({0.3, 0.1});
  L2Ball ball(2);
  SolverOptions options;
  options.max_iters = 4000;
  FrankWolfeSolver solver(options);
  SolverResult result = solver.Minimize(objective, ball);
  EXPECT_NEAR(result.value, 0.0, 1e-3);
}

TEST(GoldenSectionTest, ExactOnConvex1D) {
  QuadraticObjective objective({0.37});
  Interval iv(0.0, 1.0);
  GoldenSectionSolver solver;
  SolverResult result = solver.Minimize(objective, iv);
  EXPECT_NEAR(result.theta[0], 0.37, 1e-8);
  EXPECT_TRUE(result.converged);
}

TEST(GoldenSectionTest, BoundaryOptimum) {
  QuadraticObjective objective({1.8});
  Interval iv(0.0, 1.0);
  GoldenSectionSolver solver;
  SolverResult result = solver.Minimize(objective, iv);
  EXPECT_NEAR(result.theta[0], 1.0, 1e-7);
}

TEST(AutoSolverTest, DispatchesGoldenForInterval) {
  QuadraticObjective objective({0.2});
  Interval iv(0.0, 1.0);
  AutoSolver solver;
  SolverResult result = solver.Minimize(objective, iv);
  EXPECT_NEAR(result.theta[0], 0.2, 1e-7);
}

TEST(AutoSolverTest, DispatchesGdForBall) {
  QuadraticObjective objective({0.2, 0.3, -0.1});
  L2Ball ball(3);
  AutoSolver solver;
  SolverResult result = solver.Minimize(objective, ball);
  EXPECT_NEAR(result.value, 0.0, 1e-6);
}

TEST(PerturbedObjectiveTest, AddsLinearAndQuadraticTerms) {
  QuadraticObjective base({0.0, 0.0});
  PerturbedObjective perturbed(&base, {1.0, 0.0}, 2.0, {0.0, 1.0});
  Vec theta = {0.5, 0.5};
  // base = 0.5; linear = 0.5; quad = (2/2)*(0.25 + 0.25) = 0.5.
  EXPECT_NEAR(perturbed.Value(theta), 0.5 + 0.5 + 0.5, 1e-12);
  Vec g = perturbed.Gradient(theta);
  // base grad = (1, 1); + (1, 0); + 2*(0.5, -0.5) = (3, 0).
  EXPECT_NEAR(g[0], 3.0, 1e-12);
  EXPECT_NEAR(g[1], 0.0, 1e-12);
}

// A record-dependent loss for empirical-objective tests:
// l(theta; x) = ||theta - x.features||^2.
class RecordQuadraticLoss : public LossFunction {
 public:
  explicit RecordQuadraticLoss(int dim) : dim_(dim) {}
  int dim() const override { return dim_; }
  double Value(const Vec& theta, const data::Row& x) const override {
    double acc = 0.0;
    for (int i = 0; i < dim_; ++i) {
      acc += (theta[i] - x.features[i]) * (theta[i] - x.features[i]);
    }
    return acc;
  }
  void AddGradient(const Vec& theta, const data::Row& x, double weight,
                   Vec* grad) const override {
    for (int i = 0; i < dim_; ++i) {
      (*grad)[i] += weight * 2.0 * (theta[i] - x.features[i]);
    }
  }
  double lipschitz() const override { return 4.0; }
  std::string name() const override { return "record-quadratic"; }

 private:
  int dim_;
};

TEST(SupportObjectiveTest, BitIdenticalToHistogramObjective) {
  // The serving layer relies on SupportObjective(CompactSupport(h)) and
  // HistogramObjective(h) agreeing exactly — same terms, same order —
  // so a batched transcript is indistinguishable from a sequential one.
  data::HypercubeUniverse universe(3);
  RecordQuadraticLoss loss(3);
  // A histogram with zero-mass rows (indices 2 and 5 absent).
  data::Dataset dataset(&universe, {0, 0, 1, 3, 4, 6, 7, 7, 7});
  data::Histogram histogram = data::Histogram::FromDataset(dataset);
  data::HistogramSupport support = histogram.CompactSupport();
  ASSERT_LT(support.size(), static_cast<size_t>(universe.size()));

  HistogramObjective dense(&loss, &universe, &histogram);
  SupportObjective compact(&loss, &universe, &support);
  EXPECT_EQ(compact.dim(), dense.dim());

  Rng rng(424242);
  for (int trial = 0; trial < 20; ++trial) {
    Vec theta = {rng.Uniform(-2.0, 2.0), rng.Uniform(-2.0, 2.0),
                 rng.Uniform(-2.0, 2.0)};
    // Exact equality, not near-equality: identical arithmetic.
    EXPECT_EQ(compact.Value(theta), dense.Value(theta));
    Vec dense_grad = dense.Gradient(theta);
    Vec compact_grad = compact.Gradient(theta);
    ASSERT_EQ(compact_grad.size(), dense_grad.size());
    for (size_t i = 0; i < dense_grad.size(); ++i) {
      EXPECT_EQ(compact_grad[i], dense_grad[i]);
    }
  }
}

// Property sweep: all three multi-dim solvers agree on random quadratics
// over the unit ball.
class SolverAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(SolverAgreementTest, AllSolversAgreeOnRandomQuadratics) {
  Rng rng(1000 + GetParam());
  Vec target = rng.GaussianVector(3, 0.8);
  QuadraticObjective objective(target);
  L2Ball ball(3);

  SolverOptions options;
  options.max_iters = 4000;
  GradientDescentSolver gd(options);
  SubgradientSolver sub(options);
  FrankWolfeSolver fw(options);

  double v_gd = gd.Minimize(objective, ball).value;
  double v_sub = sub.Minimize(objective, ball).value;
  double v_fw = fw.Minimize(objective, ball).value;
  EXPECT_NEAR(v_gd, v_sub, 2e-2);
  EXPECT_NEAR(v_gd, v_fw, 2e-2);
}

INSTANTIATE_TEST_SUITE_P(RandomQuadratics, SolverAgreementTest,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace convex
}  // namespace pmw
