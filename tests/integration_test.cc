// Cross-module integration tests: full pipelines a downstream user would
// run, wired end to end.
//   1. Continuous records -> grid discretization -> Figure 3 -> accurate
//      answers (the paper's Section 1.1 rounding story).
//   2. Online Figure 3 vs offline variant on the same workload.
//   3. Synthetic-data release round trip (Section 4.3 remark).
//   4. Mixed workload: one mechanism serving all four Table 1 families.

#include <cmath>

#include "common/random.h"
#include "core/error.h"
#include "core/pmw_answerer.h"
#include "core/pmw_cm.h"
#include "core/pmw_offline.h"
#include "data/discretize.h"
#include "data/generators.h"
#include "data/grid_universe.h"
#include "data/binary_universe.h"
#include "erm/noisy_gradient_oracle.h"
#include "erm/nonprivate_oracle.h"
#include "gtest/gtest.h"
#include "losses/loss_family.h"

namespace pmw {
namespace {

TEST(IntegrationTest, ContinuousDataThroughGridUniverseAndPmw) {
  // Continuous records in the plane with a linear label rule, rounded
  // onto a labeled 5x5 grid, then served by Figure 3.
  data::GridUniverse universe(2, 5, /*labeled=*/true);
  Rng rng(11);
  std::vector<data::ContinuousRecord> records;
  const int n = 80000;
  records.reserve(n);
  for (int i = 0; i < n; ++i) {
    std::vector<double> x = rng.InUnitBall(2);
    for (double& v : x) v /= std::sqrt(2.0);
    double margin = 2.0 * x[0] - x[1];
    double label = rng.Bernoulli(1.0 / (1.0 + std::exp(-4.0 * margin)))
                       ? 1.0
                       : -1.0;
    records.push_back({std::move(x), label});
  }
  data::Dataset dataset = data::DiscretizeDataset(universe, records);
  ASSERT_EQ(dataset.n(), n);

  core::ErrorOracle measure(&universe);
  data::Histogram hist = data::Histogram::FromDataset(dataset);
  erm::NoisyGradientOracle oracle;
  core::PmwOptions options;
  options.alpha = 0.15;
  options.privacy = {2.0, 1e-6};
  options.override_updates = 16;
  options.max_queries = 60;
  core::PmwCm mechanism(&dataset, &oracle, options, 12);

  losses::LipschitzFamily family(2);
  Rng qrng(13);
  double max_err = 0.0;
  for (int j = 0; j < 60; ++j) {
    convex::CmQuery query = family.Next(&qrng);
    auto answer = mechanism.AnswerQuery(query);
    ASSERT_TRUE(answer.ok());
    max_err = std::max(max_err,
                       measure.AnswerError(query, hist, answer.value().theta));
  }
  EXPECT_LE(max_err, 0.2);
}

TEST(IntegrationTest, OnlineAndOfflineAgreeOnFixedWorkload) {
  data::LabeledHypercubeUniverse universe(3);
  data::Histogram dist = data::LogisticModelDistribution(
      universe, {1.0, -0.8, 0.5}, {0.7, 0.4, 0.5}, 0.25);
  data::Dataset dataset = data::RoundedDataset(universe, dist, 150000);
  core::ErrorOracle measure(&universe);
  data::Histogram hist = data::Histogram::FromDataset(dataset);

  losses::LipschitzFamily family(3);
  Rng rng(21);
  auto workload = family.Generate(20, &rng);

  // Online.
  erm::NonPrivateOracle oracle;
  core::PmwOptions online_options;
  online_options.alpha = 0.15;
  online_options.privacy = {2.0, 1e-6};
  online_options.override_updates = 16;
  online_options.max_queries = 20;
  core::PmwCm online(&dataset, &oracle, online_options, 22);
  double online_max = 0.0;
  for (const auto& query : workload) {
    auto answer = online.AnswerQuery(query);
    ASSERT_TRUE(answer.ok());
    online_max = std::max(
        online_max, measure.AnswerError(query, hist, answer.value().theta));
  }

  // Offline on the identical workload.
  core::PmwOfflineOptions offline_options;
  offline_options.rounds = 12;
  offline_options.privacy = {2.0, 1e-6};
  offline_options.scale = family.scale();
  core::PmwOfflineResult offline =
      RunPmwOffline(dataset, workload, &oracle, offline_options, 23);
  double offline_max = 0.0;
  for (size_t q = 0; q < workload.size(); ++q) {
    offline_max = std::max(
        offline_max,
        measure.AnswerError(workload[q], hist, offline.answers[q]));
  }

  EXPECT_LE(online_max, 0.2);
  EXPECT_LE(offline_max, 0.25);
}

TEST(IntegrationTest, SyntheticReleaseAnswersWorkload) {
  data::LabeledHypercubeUniverse universe(3);
  data::Histogram dist = data::LogisticModelDistribution(
      universe, {0.9, -0.6, 0.4}, {0.6, 0.45, 0.5}, 0.3);
  data::Dataset dataset = data::RoundedDataset(universe, dist, 150000);
  core::ErrorOracle measure(&universe);
  data::Histogram hist = data::Histogram::FromDataset(dataset);

  losses::LipschitzFamily family(3);
  Rng rng(31);
  auto workload = family.Generate(16, &rng);
  erm::NonPrivateOracle oracle;
  core::PmwOfflineOptions options;
  options.rounds = 12;
  options.privacy = {2.0, 1e-6};
  options.scale = family.scale();
  core::PmwOfflineResult release =
      RunPmwOffline(dataset, workload, &oracle, options, 32);

  // Sample a synthetic dataset and answer the workload *from it*.
  Rng srng(33);
  data::Dataset synthetic =
      release.hypothesis.SampleDataset(universe, 60000, &srng);
  data::Histogram synthetic_hist = data::Histogram::FromDataset(synthetic);
  double worst = 0.0;
  for (const auto& query : workload) {
    worst = std::max(worst,
                     measure.DatabaseError(query, hist, synthetic_hist));
  }
  EXPECT_LE(worst, 0.3);
}

TEST(IntegrationTest, OneMechanismServesAllFourFamilies) {
  data::LabeledHypercubeUniverse universe(3);
  data::Histogram dist = data::LogisticModelDistribution(
      universe, {1.0, -0.8, 0.5}, {0.7, 0.4, 0.5}, 0.25);
  data::Dataset dataset = data::RoundedDataset(universe, dist, 150000);
  core::ErrorOracle measure(&universe);
  data::Histogram hist = data::Histogram::FromDataset(dataset);

  losses::LipschitzFamily lipschitz(3);
  losses::GlmFamily glm(3);
  losses::StronglyConvexFamily strongly_convex(3, 0.4);
  losses::LinearQueryFamily linear(3, 2, true);
  losses::QueryFamily* families[] = {&lipschitz, &glm, &strongly_convex,
                                     &linear};

  erm::NoisyGradientOracle oracle;
  core::PmwOptions options;
  options.alpha = 0.15;
  options.privacy = {2.0, 1e-6};
  // S must cover the widest family in the mix.
  options.scale = strongly_convex.scale();
  options.override_updates = 24;
  options.max_queries = 80;
  core::PmwCm mechanism(&dataset, &oracle, options, 41);

  Rng rng(42);
  double max_err = 0.0;
  for (int j = 0; j < 80; ++j) {
    losses::QueryFamily* family = families[j % 4];
    convex::CmQuery query = family->Next(&rng);
    auto answer = mechanism.AnswerQuery(query);
    ASSERT_TRUE(answer.ok()) << "halted on " << query.label;
    max_err = std::max(max_err,
                       measure.AnswerError(query, hist, answer.value().theta));
  }
  EXPECT_LE(max_err, 0.25);
  EXPECT_LE(mechanism.update_count(), 24);
}

}  // namespace
}  // namespace pmw
