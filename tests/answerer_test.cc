// Unit tests for the QueryAnswerer interface and the PmwAnswerer adapter
// (core/answerer.h, core/pmw_answerer.h): the adapter must forward queries
// to the wrapped PmwCm unchanged and surface its error statuses.

#include <memory>

#include "common/random.h"
#include "core/answerer.h"
#include "core/pmw_answerer.h"
#include "core/pmw_cm.h"
#include "data/binary_universe.h"
#include "data/generators.h"
#include "erm/nonprivate_oracle.h"
#include "gtest/gtest.h"
#include "losses/loss_family.h"

namespace pmw {
namespace core {
namespace {

class AnswererTest : public ::testing::Test {
 protected:
  AnswererTest()
      : universe_(3),
        dist_(data::LogisticModelDistribution(universe_, {1.0, -0.8, 0.5},
                                              {0.7, 0.4, 0.5}, 0.25)),
        dataset_(data::RoundedDataset(universe_, dist_, 150000)) {}

  PmwOptions Options() const {
    PmwOptions options;
    options.alpha = 0.15;
    options.beta = 0.05;
    options.privacy = {2.0, 1e-6};
    options.max_queries = 64;
    options.override_updates = 8;
    return options;
  }

  data::LabeledHypercubeUniverse universe_;
  data::Histogram dist_;
  data::Dataset dataset_;
};

TEST_F(AnswererTest, ForwardsAnswersToWrappedMechanism) {
  losses::LipschitzFamily family(3);
  Rng rng(17);
  std::vector<convex::CmQuery> queries = family.Generate(24, &rng);

  constexpr uint64_t kSeed = 2024;
  erm::NonPrivateOracle oracle_direct;
  PmwCm direct(&dataset_, &oracle_direct, Options(), kSeed);
  erm::NonPrivateOracle oracle_adapted;
  PmwCm adapted(&dataset_, &oracle_adapted, Options(), kSeed);
  PmwAnswerer answerer(&adapted);

  // The adapter is usable through the interface type.
  QueryAnswerer* interface = &answerer;
  EXPECT_EQ(interface->name(), "pmw-cm");
  EXPECT_EQ(answerer.mechanism(), &adapted);

  for (const convex::CmQuery& query : queries) {
    Result<PmwAnswer> want = direct.AnswerQuery(query);
    Result<convex::Vec> got = interface->Answer(query);
    ASSERT_EQ(got.ok(), want.ok());
    if (!want.ok()) continue;
    ASSERT_EQ(got.value().size(), want.value().theta.size());
    for (size_t i = 0; i < got.value().size(); ++i) {
      EXPECT_DOUBLE_EQ(got.value()[i], want.value().theta[i]);
    }
  }
  EXPECT_EQ(adapted.queries_answered(), direct.queries_answered());
}

TEST_F(AnswererTest, SurfacesMechanismErrors) {
  losses::LipschitzFamily family(3);
  Rng rng(29);

  PmwOptions options = Options();
  options.max_queries = 2;
  erm::NonPrivateOracle oracle;
  PmwCm mechanism(&dataset_, &oracle, options, 11);
  PmwAnswerer answerer(&mechanism);

  EXPECT_TRUE(answerer.Answer(family.Next(&rng)).ok());
  EXPECT_TRUE(answerer.Answer(family.Next(&rng)).ok());
  Result<convex::Vec> exhausted = answerer.Answer(family.Next(&rng));
  ASSERT_FALSE(exhausted.ok());
  EXPECT_EQ(exhausted.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace core
}  // namespace pmw
