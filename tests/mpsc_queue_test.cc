// MpscQueue unit + concurrency tests: FIFO order, bounded backpressure,
// batch-pop flush policy (max-batch or deadline), close/drain semantics,
// salvage-on-rejection for move-only payloads, and a many-producers
// stress run checking per-producer order preservation. The TSan CI job
// rebuilds this binary, so the queue's synchronization claims are
// machine-checked.

#include "common/mpsc_queue.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "gtest/gtest.h"

namespace pmw {
namespace {

using std::chrono::microseconds;

TEST(MpscQueueTest, FifoOrderThroughBatches) {
  MpscQueue<int> queue(16);
  for (int i = 0; i < 10; ++i) {
    int item = i;
    ASSERT_TRUE(queue.Push(item));
  }
  EXPECT_EQ(queue.size(), 10u);

  std::vector<int> out;
  ASSERT_TRUE(queue.PopBatch(&out, 4, microseconds(0)));
  ASSERT_TRUE(queue.PopBatch(&out, 100, microseconds(0)));
  ASSERT_EQ(out.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)], i);
  }
}

TEST(MpscQueueTest, MaxItemsBoundsTheBatch) {
  MpscQueue<int> queue(16);
  for (int i = 0; i < 10; ++i) {
    int item = i;
    ASSERT_TRUE(queue.Push(item));
  }
  std::vector<int> out;
  ASSERT_TRUE(queue.PopBatch(&out, 4, microseconds(0)));
  EXPECT_EQ(out.size(), 4u);
  EXPECT_EQ(queue.size(), 6u);
}

TEST(MpscQueueTest, TryPushReportsFullAndLeavesItemIntact) {
  MpscQueue<std::unique_ptr<int>> queue(2);
  auto a = std::make_unique<int>(1);
  auto b = std::make_unique<int>(2);
  auto c = std::make_unique<int>(3);
  EXPECT_EQ(queue.TryPush(a), MpscQueue<std::unique_ptr<int>>::PushResult::kOk);
  EXPECT_EQ(queue.TryPush(b), MpscQueue<std::unique_ptr<int>>::PushResult::kOk);
  EXPECT_EQ(queue.TryPush(c),
            MpscQueue<std::unique_ptr<int>>::PushResult::kFull);
  // Rejection must not consume the payload.
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(*c, 3);
}

TEST(MpscQueueTest, RoundRobinPopDealsOneSlotPerKeyPerCycle) {
  // A chatty producer ("a") floods the queue ahead of two quieter ones;
  // a fair pop of 6 must deal slots a,b,c,a,b,a — not hand "a" the whole
  // window like FIFO would.
  MpscQueue<std::pair<char, int>> queue(32);
  const std::vector<std::pair<char, int>> arrivals = {
      {'a', 0}, {'a', 1}, {'a', 2}, {'a', 3}, {'b', 0},
      {'c', 0}, {'a', 4}, {'b', 1}, {'a', 5}};
  for (auto arrival : arrivals) {
    ASSERT_TRUE(queue.Push(arrival));
  }

  std::vector<std::pair<char, int>> out;
  ASSERT_TRUE(queue.PopBatchRoundRobin(
      &out, 6, microseconds(0),
      [](const std::pair<char, int>& item) { return item.first; }));
  const std::vector<std::pair<char, int>> want = {
      {'a', 0}, {'b', 0}, {'c', 0}, {'a', 1}, {'b', 1}, {'a', 2}};
  ASSERT_EQ(out.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(out[i], want[i]) << i;
  }

  // The unselected items stay queued in their original relative order.
  EXPECT_EQ(queue.size(), 3u);
  std::vector<std::pair<char, int>> rest;
  ASSERT_TRUE(queue.PopBatchRoundRobin(
      &rest, 100, microseconds(0),
      [](const std::pair<char, int>& item) { return item.first; }));
  const std::vector<std::pair<char, int>> want_rest = {
      {'a', 3}, {'a', 4}, {'a', 5}};
  ASSERT_EQ(rest.size(), want_rest.size());
  for (size_t i = 0; i < want_rest.size(); ++i) {
    EXPECT_EQ(rest[i], want_rest[i]) << i;
  }
}

TEST(MpscQueueTest, RoundRobinPopDrainsAndSignalsCloseLikeFifo) {
  MpscQueue<std::pair<char, int>> queue(8);
  std::pair<char, int> item{'z', 1};
  ASSERT_TRUE(queue.Push(item));
  queue.Close();
  std::vector<std::pair<char, int>> out;
  // Closed but not drained: the queued item still comes out...
  ASSERT_TRUE(queue.PopBatchRoundRobin(
      &out, 4, microseconds(50),
      [](const std::pair<char, int>& i) { return i.first; }));
  ASSERT_EQ(out.size(), 1u);
  // ...then the drain completes.
  EXPECT_FALSE(queue.PopBatchRoundRobin(
      &out, 4, microseconds(0),
      [](const std::pair<char, int>& i) { return i.first; }));
}

TEST(MpscQueueTest, CloseDrainsThenSignalsDone) {
  MpscQueue<int> queue(8);
  for (int i = 0; i < 3; ++i) {
    int item = i;
    ASSERT_TRUE(queue.Push(item));
  }
  queue.Close();

  int late = 99;
  EXPECT_FALSE(queue.Push(late));
  EXPECT_EQ(late, 99);  // untouched on rejection
  EXPECT_EQ(queue.TryPush(late), MpscQueue<int>::PushResult::kClosed);

  std::vector<int> out;
  ASSERT_TRUE(queue.PopBatch(&out, 100, microseconds(0)));
  EXPECT_EQ(out.size(), 3u);
  // Drained: now the consumer learns the stream ended.
  EXPECT_FALSE(queue.PopBatch(&out, 100, microseconds(0)));
}

TEST(MpscQueueTest, BlockedProducerWakesOnClose) {
  MpscQueue<int> queue(1);
  int first = 1;
  ASSERT_TRUE(queue.Push(first));

  std::atomic<bool> push_returned{false};
  std::atomic<bool> push_result{true};
  std::thread producer([&queue, &push_returned, &push_result] {
    int item = 2;
    push_result.store(queue.Push(item));  // blocks: queue is full
    push_returned.store(true);
  });
  // Give the producer a moment to block, then close underneath it.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.Close();
  producer.join();
  EXPECT_TRUE(push_returned.load());
  EXPECT_FALSE(push_result.load());
}

TEST(MpscQueueTest, BlockedConsumerWakesOnPush) {
  MpscQueue<int> queue(4);
  std::vector<int> out;
  std::thread consumer([&queue, &out] {
    // Blocks until the producer below delivers.
    queue.PopBatch(&out, 4, microseconds(0));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  int item = 42;
  ASSERT_TRUE(queue.Push(item));
  consumer.join();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 42);
}

TEST(MpscQueueTest, DeadlineFlushesPartialBatch) {
  MpscQueue<int> queue(8);
  int item = 7;
  ASSERT_TRUE(queue.Push(item));
  std::vector<int> out;
  // Asks for 8 but only 1 is coming; the deadline must flush it.
  ASSERT_TRUE(queue.PopBatch(&out, 8, microseconds(2000)));
  EXPECT_EQ(out.size(), 1u);
}

TEST(MpscQueueTest, LingerCoalescesABurstIntoOneBatch) {
  MpscQueue<int> queue(64);
  int first = 0;
  ASSERT_TRUE(queue.Push(first));
  std::thread producer([&queue] {
    for (int i = 1; i < 8; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      int item = i;
      queue.Push(item);
    }
  });
  std::vector<int> out;
  // A generous deadline lets the trickle coalesce; flush fires on the
  // max-batch bound, not the clock.
  ASSERT_TRUE(queue.PopBatch(&out, 8, std::chrono::microseconds(2000000)));
  producer.join();
  EXPECT_EQ(out.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)], i);
  }
}

TEST(MpscQueueTest, LingerReleasesBackpressuredProducers) {
  // Regression: the consumer must wake blocked producers for the space a
  // drain frees *before* lingering, or a backpressured batch could never
  // grow past the queue capacity and every batch would burn the full
  // deadline. One PopBatch here must collect more items than the queue
  // can hold — only possible if pushers run mid-linger.
  MpscQueue<int> queue(2);
  for (int i = 0; i < 2; ++i) {
    int item = i;
    ASSERT_TRUE(queue.Push(item));
  }
  std::thread producer([&queue] {
    for (int i = 2; i < 8; ++i) {
      int item = i;
      queue.Push(item);  // blocks until the consumer frees space
    }
  });
  std::vector<int> out;
  ASSERT_TRUE(queue.PopBatch(&out, 8, std::chrono::microseconds(2000000)));
  producer.join();
  ASSERT_EQ(out.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)], i);
  }
}

TEST(MpscQueueTest, ManyProducersPreservePerProducerOrder) {
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 1000;
  // Tiny capacity so producers constantly hit backpressure.
  MpscQueue<std::pair<int, int>> queue(4);

  std::atomic<int> pushed{0};  // gtest assertions stay on the main thread
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([p, &queue, &pushed] {
      for (int i = 0; i < kPerProducer; ++i) {
        std::pair<int, int> item{p, i};
        if (queue.Push(item)) pushed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::vector<std::pair<int, int>> all;
  std::vector<std::pair<int, int>> batch;
  while (all.size() < static_cast<size_t>(kProducers * kPerProducer)) {
    batch.clear();
    ASSERT_TRUE(queue.PopBatch(&batch, 32, microseconds(100)));
    for (auto& item : batch) all.push_back(item);
  }
  for (std::thread& t : producers) t.join();
  EXPECT_EQ(pushed.load(), kProducers * kPerProducer);
  queue.Close();
  ASSERT_FALSE(queue.PopBatch(&batch, 1, microseconds(0)));

  // Per-producer FIFO: each producer's items appear in submission order
  // (the global interleaving is arbitrary).
  std::vector<int> next(kProducers, 0);
  for (const auto& [p, i] : all) {
    EXPECT_EQ(i, next[static_cast<size_t>(p)]);
    next[static_cast<size_t>(p)] = i + 1;
  }
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next[static_cast<size_t>(p)], kPerProducer);
  }
}

}  // namespace
}  // namespace pmw
