// Unit tests for the data substrate: universes, datasets, histograms,
// generators, and discretization.

#include <cmath>
#include <set>

#include "common/random.h"
#include "data/binary_universe.h"
#include "data/dataset.h"
#include "data/discretize.h"
#include "data/generators.h"
#include "data/grid_universe.h"
#include "data/histogram.h"
#include "gtest/gtest.h"

namespace pmw {
namespace data {
namespace {

TEST(HypercubeUniverseTest, SizeAndNorms) {
  HypercubeUniverse u(4);
  EXPECT_EQ(u.size(), 16);
  EXPECT_EQ(u.feature_dim(), 4);
  for (int i = 0; i < u.size(); ++i) {
    double norm_sq = 0.0;
    for (double f : u.row(i).features) norm_sq += f * f;
    EXPECT_NEAR(norm_sq, 1.0, 1e-12);
    EXPECT_EQ(u.row(i).label, 0.0);
  }
  EXPECT_NEAR(u.MaxFeatureNorm(), 1.0, 1e-12);
}

TEST(HypercubeUniverseTest, IndexOfRoundTrips) {
  HypercubeUniverse u(5);
  for (int i = 0; i < u.size(); ++i) {
    std::vector<int> signs(5);
    for (int j = 0; j < 5; ++j) {
      signs[j] = u.row(i).features[j] > 0 ? 1 : -1;
    }
    EXPECT_EQ(u.IndexOf(signs), i);
  }
}

TEST(HypercubeUniverseTest, AllRowsDistinct) {
  HypercubeUniverse u(6);
  std::set<std::vector<double>> seen;
  for (int i = 0; i < u.size(); ++i) seen.insert(u.row(i).features);
  EXPECT_EQ(static_cast<int>(seen.size()), u.size());
}

TEST(LabeledHypercubeUniverseTest, SizeAndLabels) {
  LabeledHypercubeUniverse u(3);
  EXPECT_EQ(u.size(), 16);
  int pos = 0;
  for (int i = 0; i < u.size(); ++i) {
    EXPECT_TRUE(u.row(i).label == 1.0 || u.row(i).label == -1.0);
    if (u.row(i).label > 0) ++pos;
  }
  EXPECT_EQ(pos, 8);
}

TEST(LabeledHypercubeUniverseTest, IndexOfRoundTrips) {
  LabeledHypercubeUniverse u(3);
  for (int i = 0; i < u.size(); ++i) {
    std::vector<int> signs(3);
    for (int j = 0; j < 3; ++j) {
      signs[j] = u.row(i).features[j] > 0 ? 1 : -1;
    }
    int label = u.row(i).label > 0 ? 1 : -1;
    EXPECT_EQ(u.IndexOf(signs, label), i);
  }
}

TEST(LabeledHypercubeUniverseTest, LogSize) {
  LabeledHypercubeUniverse u(4);
  EXPECT_NEAR(u.LogSize(), std::log(32.0), 1e-12);
}

TEST(GridUniverseTest, SizeAndBounds) {
  GridUniverse u(2, 5, /*labeled=*/false);
  EXPECT_EQ(u.size(), 25);
  double max_norm = u.MaxFeatureNorm();
  EXPECT_LE(max_norm, 1.0 + 1e-12);
}

TEST(GridUniverseTest, LabeledDoubling) {
  GridUniverse u(2, 3, /*labeled=*/true);
  EXPECT_EQ(u.size(), 18);
}

TEST(GridUniverseTest, IndexOfRoundTrips) {
  GridUniverse u(2, 3, /*labeled=*/true);
  for (int a0 = 0; a0 < 3; ++a0) {
    for (int a1 = 0; a1 < 3; ++a1) {
      for (int label : {-1, 1}) {
        int idx = u.IndexOf({a0, a1}, label);
        ASSERT_GE(idx, 0);
        ASSERT_LT(idx, u.size());
        EXPECT_EQ(u.row(idx).label, static_cast<double>(label));
      }
    }
  }
}

TEST(DatasetTest, BasicAccess) {
  HypercubeUniverse u(3);
  Dataset d(&u, {0, 1, 1, 7});
  EXPECT_EQ(d.n(), 4);
  EXPECT_EQ(d.index(2), 1);
  EXPECT_EQ(&d.universe(), &u);
}

TEST(DatasetTest, WithRowReplacedIsNeighbour) {
  HypercubeUniverse u(3);
  Dataset d(&u, {0, 1, 2, 3});
  Dataset d2 = d.WithRowReplaced(1, 5);
  EXPECT_EQ(d2.index(1), 5);
  EXPECT_EQ(d.index(1), 1);  // original unchanged
  int diffs = 0;
  for (int i = 0; i < d.n(); ++i) {
    if (d.index(i) != d2.index(i)) ++diffs;
  }
  EXPECT_EQ(diffs, 1);
}

TEST(HistogramTest, UniformSumsToOne) {
  Histogram h = Histogram::Uniform(10);
  double sum = 0.0;
  for (int i = 0; i < h.size(); ++i) sum += h[i];
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(HistogramTest, FromDatasetCounts) {
  HypercubeUniverse u(2);
  Dataset d(&u, {0, 0, 1, 3});
  Histogram h = Histogram::FromDataset(d);
  EXPECT_NEAR(h[0], 0.5, 1e-12);
  EXPECT_NEAR(h[1], 0.25, 1e-12);
  EXPECT_NEAR(h[2], 0.0, 1e-12);
  EXPECT_NEAR(h[3], 0.25, 1e-12);
}

TEST(HistogramTest, CompactSupportSkipsZerosInIndexOrder) {
  HypercubeUniverse u(2);
  Dataset d(&u, {0, 0, 1, 3});
  Histogram h = Histogram::FromDataset(d);
  HistogramSupport support = h.CompactSupport();
  ASSERT_EQ(support.size(), 3u);
  EXPECT_EQ(support[0].first, 0);
  EXPECT_EQ(support[0].second, h[0]);
  EXPECT_EQ(support[1].first, 1);
  EXPECT_EQ(support[1].second, h[1]);
  EXPECT_EQ(support[2].first, 3);
  EXPECT_EQ(support[2].second, h[3]);
}

TEST(HistogramTest, CompactSupportOfDenseHistogramIsFull) {
  Histogram h = Histogram::Uniform(8);
  HistogramSupport support = h.CompactSupport();
  ASSERT_EQ(support.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(support[i].first, i);
    EXPECT_EQ(support[i].second, h[i]);
  }
}

TEST(HistogramTest, NeighbourDatasetsCloseInL1) {
  HypercubeUniverse u(3);
  Dataset d(&u, std::vector<int>(50, 0));
  Dataset d2 = d.WithRowReplaced(7, 3);
  Histogram h1 = Histogram::FromDataset(d);
  Histogram h2 = Histogram::FromDataset(d2);
  EXPECT_NEAR(h1.L1Distance(h2), 2.0 / 50.0, 1e-12);
}

TEST(HistogramTest, ExpectationMatchesManualSum) {
  Histogram h = Histogram::FromWeights({1.0, 3.0});
  double e = h.Expectation([](int i) { return i == 0 ? 10.0 : 2.0; });
  EXPECT_NEAR(e, 0.25 * 10.0 + 0.75 * 2.0, 1e-12);
}

TEST(HistogramTest, MultiplicativeUpdateDirection) {
  Histogram h = Histogram::Uniform(4);
  // Payoff favouring index 2 with positive eta should raise its mass.
  Histogram h2 = h.MultiplicativeUpdate({0.0, 0.0, 1.0, 0.0}, 0.5);
  EXPECT_GT(h2[2], h[2]);
  EXPECT_LT(h2[0], h[0]);
  double sum = 0.0;
  for (int i = 0; i < h2.size(); ++i) sum += h2[i];
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(HistogramTest, MultiplicativeUpdateNegativeEtaFlips) {
  Histogram h = Histogram::Uniform(4);
  Histogram h2 = h.MultiplicativeUpdate({0.0, 0.0, 1.0, 0.0}, -0.5);
  EXPECT_LT(h2[2], h[2]);
}

TEST(HistogramTest, MultiplicativeUpdateZeroEtaIsNoOp) {
  Histogram h = Histogram::FromWeights({1.0, 2.0, 3.0});
  Histogram h2 = h.MultiplicativeUpdate({5.0, -1.0, 0.5}, 0.0);
  for (int i = 0; i < h.size(); ++i) EXPECT_NEAR(h2[i], h[i], 1e-12);
}

TEST(HistogramTest, MultiplicativeUpdateStableForHugePayoffs) {
  Histogram h = Histogram::Uniform(3);
  Histogram h2 = h.MultiplicativeUpdate({1000.0, 0.0, -1000.0}, 1.0);
  EXPECT_NEAR(h2[0], 1.0, 1e-9);
  EXPECT_FALSE(std::isnan(h2[1]));
}

TEST(HistogramTest, KlZeroOnIdentical) {
  Histogram h = Histogram::FromWeights({1.0, 2.0, 3.0});
  EXPECT_NEAR(h.Kl(h), 0.0, 1e-12);
}

TEST(HistogramTest, SampleDatasetMatchesDistribution) {
  HypercubeUniverse u(2);
  Histogram h = Histogram::FromWeights({8.0, 1.0, 1.0, 0.0});
  Rng rng(42);
  Dataset d = h.SampleDataset(u, 20000, &rng);
  Histogram emp = Histogram::FromDataset(d);
  EXPECT_NEAR(emp[0], 0.8, 0.02);
  EXPECT_NEAR(emp[3], 0.0, 1e-12);
}

TEST(GeneratorsTest, UniformDistributionIsUniform) {
  HypercubeUniverse u(3);
  Histogram h = UniformDistribution(u);
  for (int i = 0; i < h.size(); ++i) EXPECT_NEAR(h[i], 1.0 / 8.0, 1e-12);
}

TEST(GeneratorsTest, ProductDistributionMarginals) {
  LabeledHypercubeUniverse u(2);
  Histogram h = ProductDistribution(u, {0.9, 0.5}, 0.7);
  // P(coordinate 0 positive) should be 0.9.
  double p0 = h.Expectation([&u](int i) {
    return u.row(i).features[0] > 0 ? 1.0 : 0.0;
  });
  EXPECT_NEAR(p0, 0.9, 1e-12);
  double p_label = h.Expectation([&u](int i) {
    return u.row(i).label > 0 ? 1.0 : 0.0;
  });
  EXPECT_NEAR(p_label, 0.7, 1e-12);
}

TEST(GeneratorsTest, LogisticModelLabelCorrelatesWithMargin) {
  LabeledHypercubeUniverse u(3);
  std::vector<double> theta_star = {1.0, 1.0, 1.0};
  Histogram h = LogisticModelDistribution(u, theta_star, {0.5, 0.5, 0.5},
                                          /*temperature=*/0.2);
  // Conditional P(y=+1 | margin > 0) must exceed 1/2 clearly.
  double joint = h.Expectation([&u, &theta_star](int i) {
    const Row& r = u.row(i);
    double margin = 0.0;
    for (size_t j = 0; j < r.features.size(); ++j) {
      margin += theta_star[j] * r.features[j];
    }
    return (margin > 0 && r.label > 0) ? 1.0 : 0.0;
  });
  double marginal = h.Expectation([&u, &theta_star](int i) {
    const Row& r = u.row(i);
    double margin = 0.0;
    for (size_t j = 0; j < r.features.size(); ++j) {
      margin += theta_star[j] * r.features[j];
    }
    return margin > 0 ? 1.0 : 0.0;
  });
  EXPECT_GT(joint / marginal, 0.8);
}

TEST(GeneratorsTest, MixtureConcentratesNearCenters) {
  HypercubeUniverse u(4);
  std::vector<double> center(u.row(0).features);
  Histogram h = MixtureDistribution(u, {center}, /*width=*/0.1);
  // The centre row itself must be the modal row.
  int argmax = 0;
  for (int i = 1; i < h.size(); ++i) {
    if (h[i] > h[argmax]) argmax = i;
  }
  EXPECT_EQ(argmax, 0);
}

TEST(GeneratorsTest, RoundedDatasetExactSizeAndClose) {
  HypercubeUniverse u(3);
  Histogram h = ProductDistribution(u, {0.3, 0.6, 0.5}, 0.5);
  Dataset d = RoundedDataset(u, h, 100);
  EXPECT_EQ(d.n(), 100);
  Histogram emp = Histogram::FromDataset(d);
  EXPECT_LE(emp.L1Distance(h), 2.0 * u.size() / 100.0);
}

TEST(DiscretizeTest, NearestRowExactOnGridPoints) {
  HypercubeUniverse u(3);
  for (int i = 0; i < u.size(); ++i) {
    ContinuousRecord r{u.row(i).features, 0.0};
    EXPECT_EQ(NearestRow(u, r), i);
  }
}

TEST(DiscretizeTest, LabelBreaksTies) {
  LabeledHypercubeUniverse u(2);
  ContinuousRecord r{u.row(0).features, +1.0};
  int idx = NearestRow(u, r);
  EXPECT_GT(u.row(idx).label, 0.0);
}

TEST(DiscretizeTest, MaxRoundingDistanceBoundedByGridPitch) {
  GridUniverse u(2, 9, /*labeled=*/false);
  Rng rng(3);
  std::vector<ContinuousRecord> records;
  for (int i = 0; i < 50; ++i) {
    auto v = rng.InUnitBall(2);
    for (double& x : v) x /= std::sqrt(2.0);  // stay within grid range
    records.push_back({v, 0.0});
  }
  // Grid pitch per axis is 2r/(m-1) with r = 1/sqrt(2), m = 9; the rounding
  // error is at most half the cell diagonal.
  double pitch = 2.0 * (1.0 / std::sqrt(2.0)) / 8.0;
  double bound = 0.5 * pitch * std::sqrt(2.0) + 1e-12;
  EXPECT_LE(MaxRoundingDistance(u, records), bound);
  Dataset d = DiscretizeDataset(u, records);
  EXPECT_EQ(d.n(), 50);
}

}  // namespace
}  // namespace data
}  // namespace pmw
