// Property tests for the paper's analytic claims, checked directly as
// inequalities on randomized instances:
//   - Claim 3.5 (dual certificate): <u_t, D_hat - D> >= l_D(theta_hat) -
//     l_D(theta_t);
//   - Section 3.4.2 (sensitivity): err_l(., D_hat) is (3S/n)-sensitive,
//     verified by exhaustive neighbour enumeration;
//   - Lemma 3.4 (MW regret): adversarial payoff sequences cannot beat
//     2 S sqrt(log|X| / T);
//   - first-order optimality: <u_t, D_hat> >= 0 (equation (3)).

#include <cmath>

#include "common/random.h"
#include "convex/cm_query.h"
#include "convex/empirical_loss.h"
#include "core/error.h"
#include "data/binary_universe.h"
#include "data/generators.h"
#include "data/histogram.h"
#include "gtest/gtest.h"
#include "losses/loss_family.h"

namespace pmw {
namespace core {
namespace {

data::Histogram RandomHistogram(const data::Universe& universe, Rng* rng) {
  std::vector<double> w(universe.size());
  for (double& x : w) x = rng->Exponential(1.0);
  return data::Histogram::FromWeights(std::move(w));
}

// The certificate vector of Figure 3.
std::vector<double> Certificate(const data::Universe& universe,
                                const convex::CmQuery& query,
                                const convex::Vec& theta_hat,
                                const convex::Vec& theta_t) {
  convex::Vec direction = convex::Sub(theta_t, theta_hat);
  std::vector<double> u(universe.size());
  for (int x = 0; x < universe.size(); ++x) {
    u[x] = convex::Dot(direction,
                       query.loss->Gradient(theta_hat, universe.row(x)));
  }
  return u;
}

double InnerProduct(const std::vector<double>& u, const data::Histogram& h) {
  double acc = 0.0;
  for (int i = 0; i < h.size(); ++i) acc += u[i] * h[i];
  return acc;
}

class DualCertificateTest : public ::testing::TestWithParam<int> {};

TEST_P(DualCertificateTest, Claim35HoldsOnRandomInstances) {
  data::LabeledHypercubeUniverse universe(3);
  Rng rng(4000 + GetParam());
  ErrorOracle error_oracle(&universe);
  losses::LipschitzFamily family(3);

  for (int trial = 0; trial < 10; ++trial) {
    data::Histogram d = RandomHistogram(universe, &rng);
    data::Histogram d_hat = RandomHistogram(universe, &rng);
    convex::CmQuery query = family.Next(&rng);

    convex::Vec theta_hat = error_oracle.Minimize(query, d_hat);
    convex::Vec theta_t = error_oracle.Minimize(query, d);
    std::vector<double> u = Certificate(universe, query, theta_hat, theta_t);

    double lhs = InnerProduct(u, d_hat) - InnerProduct(u, d);
    double rhs = error_oracle.Loss(query, d, theta_hat) -
                 error_oracle.Loss(query, d, theta_t);
    EXPECT_GE(lhs + 1e-6, rhs) << query.label << " trial " << trial;
  }
}

TEST_P(DualCertificateTest, FirstOrderOptimalityEquation3) {
  // Equation (3): <u_t, D_hat> >= 0 because theta_hat minimizes over the
  // convex domain and theta_t is feasible.
  data::LabeledHypercubeUniverse universe(3);
  Rng rng(5000 + GetParam());
  ErrorOracle error_oracle(&universe);
  losses::GlmFamily family(3);
  for (int trial = 0; trial < 10; ++trial) {
    data::Histogram d = RandomHistogram(universe, &rng);
    data::Histogram d_hat = RandomHistogram(universe, &rng);
    convex::CmQuery query = family.Next(&rng);
    convex::Vec theta_hat = error_oracle.Minimize(query, d_hat);
    convex::Vec theta_t = error_oracle.Minimize(query, d);
    std::vector<double> u = Certificate(universe, query, theta_hat, theta_t);
    EXPECT_GE(InnerProduct(u, d_hat), -1e-5) << query.label;
  }
}

TEST_P(DualCertificateTest, CertificateBoundedByScale) {
  // |u_t(x)| <= S for every universe row (the scaling condition).
  data::LabeledHypercubeUniverse universe(3);
  Rng rng(6000 + GetParam());
  ErrorOracle error_oracle(&universe);
  losses::LipschitzFamily family(3);
  for (int trial = 0; trial < 6; ++trial) {
    data::Histogram d = RandomHistogram(universe, &rng);
    data::Histogram d_hat = RandomHistogram(universe, &rng);
    convex::CmQuery query = family.Next(&rng);
    convex::Vec theta_hat = error_oracle.Minimize(query, d_hat);
    convex::Vec theta_t = error_oracle.Minimize(query, d);
    std::vector<double> u = Certificate(universe, query, theta_hat, theta_t);
    for (double value : u) {
      EXPECT_LE(std::abs(value), family.scale() + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DualCertificateTest, ::testing::Range(0, 5));

class SensitivityTest : public ::testing::TestWithParam<int> {};

TEST_P(SensitivityTest, ErrorQueryIs3SOverNSensitive) {
  // Section 3.4.2: |err_l(D, D_hat) - err_l(D', D_hat)| <= 3S/n over all
  // neighbours D' of D. Exhaustive enumeration on a small universe.
  data::LabeledHypercubeUniverse universe(2);  // |X| = 8
  const int n = 12;
  Rng rng(7000 + GetParam());
  ErrorOracle error_oracle(&universe);
  losses::LipschitzFamily family(2);
  convex::CmQuery query = family.Next(&rng);
  const double s = family.scale();

  std::vector<int> indices(n);
  for (int& idx : indices) idx = rng.UniformInt(universe.size());
  data::Dataset dataset(&universe, indices);
  data::Histogram d_hat = RandomHistogram(universe, &rng);

  convex::Vec theta_hat = error_oracle.Minimize(query, d_hat);
  double base_err = error_oracle.AnswerError(
      query, data::Histogram::FromDataset(dataset), theta_hat);

  double worst_change = 0.0;
  for (int position = 0; position < n; ++position) {
    for (int replacement = 0; replacement < universe.size(); ++replacement) {
      data::Dataset neighbour = dataset.WithRowReplaced(position, replacement);
      double err = error_oracle.AnswerError(
          query, data::Histogram::FromDataset(neighbour), theta_hat);
      worst_change = std::max(worst_change, std::abs(err - base_err));
    }
  }
  // Small slack for inner-solver inexactness.
  EXPECT_LE(worst_change, 3.0 * s / n + 5e-3) << query.label;
}

INSTANTIATE_TEST_SUITE_P(Queries, SensitivityTest, ::testing::Range(0, 8));

class RegretTest : public ::testing::TestWithParam<int> {};

TEST_P(RegretTest, Lemma34AdversarialPayoffsRespectBound) {
  // MW with exponent -eta u/S against the greedy adversary that always
  // plays u_t(x) = S sign(D_hat_t(x) - D(x)) — the payoff maximizing
  // <u_t, D_hat_t - D>. Average payoff must respect 2 S sqrt(log|X|/T).
  const int size = 1 << (3 + GetParam() % 3);  // 8, 16, 32
  const double s = 2.0;
  const int T = 50 + 25 * GetParam();
  Rng rng(8000 + GetParam());

  std::vector<double> w(size);
  for (double& x : w) x = rng.Exponential(1.0);
  data::Histogram target = data::Histogram::FromWeights(std::move(w));
  data::Histogram hypothesis = data::Histogram::Uniform(size);

  const double log_x = std::log(static_cast<double>(size));
  const double eta = std::sqrt(log_x / T);

  double total_payoff = 0.0;
  for (int t = 0; t < T; ++t) {
    std::vector<double> u(size);
    for (int x = 0; x < size; ++x) {
      u[x] = s * ((hypothesis[x] >= target[x]) ? 1.0 : -1.0);
    }
    double payoff = 0.0;
    for (int x = 0; x < size; ++x) {
      payoff += u[x] * (hypothesis[x] - target[x]);
    }
    total_payoff += payoff;
    hypothesis = hypothesis.MultiplicativeUpdate(u, -eta / s);
  }
  EXPECT_LE(total_payoff / T, 2.0 * s * std::sqrt(log_x / T) + 1e-9);
}

TEST_P(RegretTest, RandomPayoffsAlsoRespectBound) {
  const int size = 16;
  const double s = 1.5;
  const int T = 100 + 10 * GetParam();
  Rng rng(9000 + GetParam());
  data::Histogram target = data::Histogram::Uniform(size);
  std::vector<double> w(size);
  for (double& x : w) x = rng.Exponential(1.0);
  target = data::Histogram::FromWeights(std::move(w));
  data::Histogram hypothesis = data::Histogram::Uniform(size);
  const double log_x = std::log(static_cast<double>(size));
  const double eta = std::sqrt(log_x / T);
  double total = 0.0;
  for (int t = 0; t < T; ++t) {
    std::vector<double> u(size);
    for (double& x : u) x = rng.Uniform(-s, s);
    for (int x = 0; x < size; ++x) total += u[x] * (hypothesis[x] - target[x]);
    hypothesis = hypothesis.MultiplicativeUpdate(u, -eta / s);
  }
  EXPECT_LE(total / T, 2.0 * s * std::sqrt(log_x / T) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Runs, RegretTest, ::testing::Range(0, 6));

// The update-count invariant behind Claim 3.7: an update only happens when
// the hypothesis truly errs, so after enough updates driven by a single
// query family the hypothesis cannot keep erring. Checked empirically: on
// a fixed pool of queries, the number of updates is far below the number
// of queries answered.
TEST(UpdateEconomyTest, UpdatesAreSparseOnRepeatedQueries) {
  data::LabeledHypercubeUniverse universe(3);
  data::Histogram dist = data::LogisticModelDistribution(
      universe, {1.0, -0.8, 0.5}, {0.7, 0.4, 0.5}, 0.25);
  data::Dataset dataset = data::RoundedDataset(universe, dist, 4096);
  ErrorOracle error_oracle(&universe);
  data::Histogram data_hist = data::Histogram::FromDataset(dataset);
  data::Histogram hypothesis = data::Histogram::Uniform(universe.size());

  losses::LipschitzFamily family(3);
  Rng rng(1234);
  auto pool = family.Generate(10, &rng);
  const double s = family.scale();
  const double alpha = 0.1;
  const double eta = 0.3;

  int updates = 0;
  int answered = 0;
  for (int round = 0; round < 12; ++round) {
    for (const auto& query : pool) {
      ++answered;
      convex::Vec theta_hat = error_oracle.Minimize(query, hypothesis);
      double err = error_oracle.AnswerError(query, data_hist, theta_hat);
      if (err <= alpha) continue;
      convex::Vec theta_t = error_oracle.Minimize(query, data_hist);
      std::vector<double> u =
          Certificate(universe, query, theta_hat, theta_t);
      hypothesis = hypothesis.MultiplicativeUpdate(u, -eta / s);
      ++updates;
    }
  }
  EXPECT_LT(updates, answered / 3);
  // And the final hypothesis answers the whole pool within alpha-ish.
  double max_err = 0.0;
  for (const auto& query : pool) {
    max_err = std::max(
        max_err, error_oracle.DatabaseError(query, data_hist, hypothesis));
  }
  EXPECT_LE(max_err, 2.0 * alpha);
}

}  // namespace
}  // namespace core
}  // namespace pmw
