// Tests for the loss library: values, gradient correctness via central
// finite differences (property sweep over every loss type), Lipschitz and
// convexity properties, transforms, linear-query embedding, and families.

#include <cmath>
#include <memory>

#include "common/random.h"
#include "convex/cm_query.h"
#include "convex/vector_ops.h"
#include "data/binary_universe.h"
#include "gtest/gtest.h"
#include "losses/linear_query_loss.h"
#include "losses/loss_family.h"
#include "losses/margin_losses.h"
#include "losses/transforms.h"

namespace pmw {
namespace losses {
namespace {

using convex::Vec;

data::Row MakeRow(std::vector<double> features, double label) {
  data::Row r;
  r.features = std::move(features);
  r.label = label;
  return r;
}

// Central finite-difference check of AddGradient for an arbitrary loss.
void CheckGradient(const convex::LossFunction& loss, const Vec& theta,
                   const data::Row& row, double tol = 1e-6) {
  Vec grad = loss.Gradient(theta, row);
  const double h = 1e-6;
  for (int j = 0; j < loss.dim(); ++j) {
    Vec plus = theta, minus = theta;
    plus[j] += h;
    minus[j] -= h;
    double fd = (loss.Value(plus, row) - loss.Value(minus, row)) / (2.0 * h);
    EXPECT_NEAR(grad[j], fd, tol) << loss.name() << " coord " << j;
  }
}

TEST(SquaredLossTest, ValueMatchesFormula) {
  SquaredLoss loss(2);
  data::Row row = MakeRow({0.6, 0.8}, 1.0);
  Vec theta = {0.5, 0.0};
  // z = 0.3, value = 0.25 * (0.3 - 1)^2 = 0.1225.
  EXPECT_NEAR(loss.Value(theta, row), 0.1225, 1e-12);
}

TEST(SquaredLossTest, MinimizedAtPerfectPrediction) {
  SquaredLoss loss(1);
  data::Row row = MakeRow({1.0}, 0.4);
  EXPECT_NEAR(loss.Value({0.4}, row), 0.0, 1e-12);
}

TEST(LogisticLossTest, ValueAtZeroIsLog2) {
  LogisticLoss loss(2);
  data::Row row = MakeRow({0.6, 0.8}, 1.0);
  EXPECT_NEAR(loss.Value({0.0, 0.0}, row), std::log(2.0), 1e-12);
}

TEST(LogisticLossTest, CorrectClassificationLowersLoss) {
  LogisticLoss loss(1);
  data::Row pos = MakeRow({1.0}, 1.0);
  EXPECT_LT(loss.Value({0.9}, pos), loss.Value({-0.9}, pos));
}

TEST(HingeLossTest, ZeroBeyondMargin) {
  HingeLoss loss(1);
  data::Row row = MakeRow({1.0}, 1.0);
  EXPECT_NEAR(loss.Value({1.5}, row), 0.0, 1e-12);
  EXPECT_NEAR(loss.Value({0.0}, row), 1.0, 1e-12);
  EXPECT_NEAR(loss.Value({-1.0}, row), 2.0, 1e-12);
}

TEST(AbsoluteLossTest, Value) {
  AbsoluteLoss loss(1);
  data::Row row = MakeRow({1.0}, 0.5);
  EXPECT_NEAR(loss.Value({0.2}, row), 0.3, 1e-12);
}

TEST(HuberLossTest, QuadraticInsideLinearOutside) {
  HuberLoss loss(1, 0.5);
  data::Row row = MakeRow({1.0}, 0.0);
  EXPECT_NEAR(loss.Value({0.2}, row), 0.5 * 0.04, 1e-12);   // quadratic
  EXPECT_NEAR(loss.Value({2.0}, row), 0.5 * (2.0 - 0.25), 1e-12);  // linear
  EXPECT_NEAR(loss.lipschitz(), 0.5, 1e-12);
}

TEST(MarginLossTest, AllAreGeneralizedLinear) {
  EXPECT_TRUE(SquaredLoss(2).is_generalized_linear());
  EXPECT_TRUE(LogisticLoss(2).is_generalized_linear());
  EXPECT_TRUE(HingeLoss(2).is_generalized_linear());
  EXPECT_TRUE(AbsoluteLoss(2).is_generalized_linear());
  EXPECT_TRUE(HuberLoss(2).is_generalized_linear());
}

// Parameterized gradient sweep across every margin loss type.
class MarginLossGradientTest : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<convex::LossFunction> MakeLoss(int type, int dim) {
    switch (type) {
      case 0:
        return std::make_unique<SquaredLoss>(dim);
      case 1:
        return std::make_unique<LogisticLoss>(dim);
      case 2:
        return std::make_unique<HuberLoss>(dim, 1.0);
      case 3:
        return std::make_unique<AbsoluteLoss>(dim);
      default:
        return std::make_unique<HingeLoss>(dim);
    }
  }
};

TEST_P(MarginLossGradientTest, GradientMatchesFiniteDifferences) {
  const int type = GetParam() % 5;
  const int dim = 3;
  auto loss = MakeLoss(type, dim);
  Rng rng(500 + GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    Vec theta = rng.InUnitBall(dim);
    // Keep away from the kink of hinge/absolute for finite differences.
    data::Row row = MakeRow(rng.OnUnitSphere(dim),
                            rng.Bernoulli(0.5) ? 1.0 : -1.0);
    double z = convex::Dot(theta, {row.features});
    if ((type == 3 || type == 4) && std::abs(z * row.label - 1.0) < 1e-3) {
      continue;
    }
    CheckGradient(*loss, theta, row, 1e-5);
  }
}

TEST_P(MarginLossGradientTest, LipschitzBoundHolds) {
  const int type = GetParam() % 5;
  const int dim = 4;
  auto loss = MakeLoss(type, dim);
  Rng rng(900 + GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    Vec theta = rng.InUnitBall(dim);
    data::Row row = MakeRow(rng.OnUnitSphere(dim),
                            rng.Bernoulli(0.5) ? 1.0 : -1.0);
    Vec grad = loss->Gradient(theta, row);
    EXPECT_LE(convex::Norm2(grad), loss->lipschitz() + 1e-9)
        << loss->name();
  }
}

TEST_P(MarginLossGradientTest, ConvexityAlongSegments) {
  const int type = GetParam() % 5;
  const int dim = 3;
  auto loss = MakeLoss(type, dim);
  Rng rng(1300 + GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    Vec a = rng.InUnitBall(dim);
    Vec b = rng.InUnitBall(dim);
    Vec mid(dim);
    for (int j = 0; j < dim; ++j) mid[j] = 0.5 * (a[j] + b[j]);
    data::Row row = MakeRow(rng.OnUnitSphere(dim),
                            rng.Bernoulli(0.5) ? 1.0 : -1.0);
    double lhs = loss->Value(mid, row);
    double rhs = 0.5 * loss->Value(a, row) + 0.5 * loss->Value(b, row);
    EXPECT_LE(lhs, rhs + 1e-10) << loss->name();
  }
}

INSTANTIATE_TEST_SUITE_P(AllMarginLosses, MarginLossGradientTest,
                         ::testing::Range(0, 10));

TEST(SignFlipLossTest, FlipsFeaturesAndLabel) {
  LogisticLoss base(2);
  SignFlipLoss flipped(&base, {1, -1}, -1);
  data::Row row = MakeRow({0.5, 0.5}, 1.0);
  data::Row manual = MakeRow({0.5, -0.5}, -1.0);
  Vec theta = {0.3, -0.4};
  EXPECT_NEAR(flipped.Value(theta, row), base.Value(theta, manual), 1e-12);
}

TEST(SignFlipLossTest, PreservesMetadata) {
  HingeLoss base(3);
  SignFlipLoss flipped(&base, {-1, -1, 1}, 1);
  EXPECT_EQ(flipped.lipschitz(), base.lipschitz());
  EXPECT_TRUE(flipped.is_generalized_linear());
  EXPECT_EQ(flipped.dim(), 3);
}

TEST(SignFlipLossTest, GradientMatchesFiniteDifferences) {
  SquaredLoss base(3);
  SignFlipLoss flipped(&base, {-1, 1, -1}, -1);
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    CheckGradient(flipped, rng.InUnitBall(3),
                  MakeRow(rng.OnUnitSphere(3), 1.0), 1e-5);
  }
}

TEST(TikhonovLossTest, AddsStrongConvexity) {
  LogisticLoss base(2);
  TikhonovLoss reg(&base, 0.5, {0.1, 0.1});
  EXPECT_NEAR(reg.strong_convexity(), 0.5, 1e-12);
  EXPECT_GT(reg.lipschitz(), base.lipschitz());
}

TEST(TikhonovLossTest, ValueAddsQuadratic) {
  SquaredLoss base(1);
  TikhonovLoss reg(&base, 2.0, {0.0});
  data::Row row = MakeRow({1.0}, 0.0);
  EXPECT_NEAR(reg.Value({0.5}, row),
              base.Value({0.5}, row) + 0.5 * 2.0 * 0.25, 1e-12);
}

TEST(TikhonovLossTest, StrongConvexityInequalityHolds) {
  // l(b) >= l(a) + <grad(a), b-a> + (sigma/2)||b-a||^2 (Section 1.1).
  LogisticLoss base(3);
  TikhonovLoss reg(&base, 0.7, {0.0, 0.0, 0.0});
  Rng rng(21);
  for (int trial = 0; trial < 50; ++trial) {
    Vec a = rng.InUnitBall(3);
    Vec b = rng.InUnitBall(3);
    data::Row row = MakeRow(rng.OnUnitSphere(3), 1.0);
    Vec grad = reg.Gradient(a, row);
    double lhs = reg.Value(b, row);
    double dist = convex::Dist2(a, b);
    double rhs = reg.Value(a, row) + convex::Dot(grad, convex::Sub(b, a)) +
                 0.5 * 0.7 * dist * dist;
    EXPECT_GE(lhs + 1e-10, rhs);
  }
}

TEST(TikhonovLossTest, GradientMatchesFiniteDifferences) {
  SquaredLoss base(2);
  TikhonovLoss reg(&base, 1.3, {0.2, -0.1});
  Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    CheckGradient(reg, rng.InUnitBall(2), MakeRow(rng.OnUnitSphere(2), -1.0),
                  1e-5);
  }
}

TEST(LinearQueryLossTest, MinimizerIsQueryAnswer) {
  // For l = (theta - p(x))^2/2, the empirical minimizer is E[p(x)].
  LinearQueryLoss loss([](const data::Row& r) { return r.label > 0 ? 1.0 : 0.0; },
                       "label");
  data::Row pos = MakeRow({1.0}, 1.0);
  data::Row neg = MakeRow({1.0}, -1.0);
  // Mixture 30% positive: minimize 0.3*(t-1)^2/2 + 0.7*t^2/2 -> t = 0.3.
  auto objective = [&](double t) {
    return 0.3 * loss.Value({t}, pos) + 0.7 * loss.Value({t}, neg);
  };
  double best_t = 0.0, best_v = 1e9;
  for (double t = 0.0; t <= 1.0; t += 0.001) {
    if (objective(t) < best_v) {
      best_v = objective(t);
      best_t = t;
    }
  }
  EXPECT_NEAR(best_t, 0.3, 2e-3);
}

TEST(LinearQueryLossTest, GradientCorrect) {
  LinearQueryLoss loss([](const data::Row& r) { return r.features[0] > 0 ? 1.0 : 0.0; },
                       "feat0");
  data::Row row = MakeRow({0.5}, 0.0);
  Vec theta = {0.4};
  Vec g = loss.Gradient(theta, row);
  EXPECT_NEAR(g[0], 0.4 - 1.0, 1e-12);
}

TEST(PredicateTest, ConjunctionMatchesManually) {
  auto pred = ConjunctionPredicate({0, 2}, {1, -1}, 1);
  data::Row hit = MakeRow({0.5, -0.5, -0.5}, 1.0);
  data::Row miss_sign = MakeRow({0.5, -0.5, 0.5}, 1.0);
  data::Row miss_label = MakeRow({0.5, -0.5, -0.5}, -1.0);
  EXPECT_EQ(pred(hit), 1.0);
  EXPECT_EQ(pred(miss_sign), 0.0);
  EXPECT_EQ(pred(miss_label), 0.0);
}

TEST(PredicateTest, HalfspaceAndParity) {
  auto half = HalfspacePredicate({1.0, 0.0}, 0.2);
  EXPECT_EQ(half(MakeRow({0.5, 0.9}, 0.0)), 1.0);
  EXPECT_EQ(half(MakeRow({0.1, 0.9}, 0.0)), 0.0);
  auto parity = ParityPredicate({0, 1});
  EXPECT_EQ(parity(MakeRow({0.5, 0.5}, 0.0)), 0.0);
  EXPECT_EQ(parity(MakeRow({0.5, -0.5}, 0.0)), 1.0);
}

TEST(LipschitzFamilyTest, GeneratesDistinctValidQueries) {
  LipschitzFamily family(4);
  Rng rng(11);
  auto queries = family.Generate(32, &rng);
  EXPECT_EQ(queries.size(), 32u);
  std::set<std::string> names;
  for (const auto& q : queries) {
    ASSERT_NE(q.loss, nullptr);
    ASSERT_NE(q.domain, nullptr);
    EXPECT_EQ(q.loss->dim(), 4);
    EXPECT_LE(q.loss->lipschitz(), 1.0 + 1e-12);
    names.insert(q.label);
  }
  EXPECT_GT(names.size(), 10u);  // sign flips make most queries distinct
  EXPECT_NEAR(family.scale(), 2.0, 1e-12);
}

TEST(GlmFamilyTest, AllQueriesAreGlm) {
  GlmFamily family(3);
  Rng rng(13);
  for (const auto& q : family.Generate(16, &rng)) {
    EXPECT_TRUE(q.loss->is_generalized_linear());
  }
}

TEST(StronglyConvexFamilyTest, QueriesCarrySigma) {
  StronglyConvexFamily family(3, 0.8);
  Rng rng(15);
  for (const auto& q : family.Generate(8, &rng)) {
    EXPECT_NEAR(q.loss->strong_convexity(), 0.8, 1e-12);
  }
  EXPECT_NEAR(family.scale(), 2.0 * (1.0 + 1.2), 1e-12);
}

TEST(LinearQueryFamilyTest, OneDimensionalUnitInterval) {
  LinearQueryFamily family(5, 3, true);
  Rng rng(17);
  auto queries = family.Generate(16, &rng);
  for (const auto& q : queries) {
    EXPECT_EQ(q.loss->dim(), 1);
    EXPECT_NEAR(q.domain->Diameter(), 1.0, 1e-12);
  }
  EXPECT_NEAR(family.scale(), 1.0, 1e-12);
}

TEST(ScaleBoundTest, UnitBallLipschitzGivesTwo) {
  LogisticLoss loss(3);
  convex::L2Ball ball(3);
  convex::CmQuery query{&loss, &ball, "q"};
  EXPECT_NEAR(convex::ScaleBound(query), 2.0, 1e-12);
}

}  // namespace
}  // namespace losses
}  // namespace pmw
