// End-to-end and unit tests for the core mechanisms: Figure 3's schedule
// arithmetic, the online PMW-CM mechanism, HR10 linear PMW, MWEM, the
// offline variant, the composition baseline, and the accuracy game.

#include <cmath>
#include <memory>

#include "common/random.h"
#include "core/accuracy_game.h"
#include "core/analysts.h"
#include "core/composition_baseline.h"
#include "core/error.h"
#include "core/linear_query.h"
#include "core/mwem.h"
#include "core/pmw_answerer.h"
#include "core/pmw_cm.h"
#include "core/pmw_linear.h"
#include "core/pmw_offline.h"
#include "data/binary_universe.h"
#include "data/generators.h"
#include "erm/noisy_gradient_oracle.h"
#include "erm/nonprivate_oracle.h"
#include "gtest/gtest.h"
#include "losses/loss_family.h"

namespace pmw {
namespace core {
namespace {

// Skewed logistic-model data over the labeled 3-cube (|X| = 16).
class CoreTest : public ::testing::Test {
 protected:
  CoreTest()
      : universe_(3),
        dist_(data::LogisticModelDistribution(universe_, {1.0, -0.8, 0.5},
                                              {0.7, 0.4, 0.5}, 0.25)),
        dataset_(data::RoundedDataset(universe_, dist_, 150000)),
        data_hist_(data::Histogram::FromDataset(dataset_)),
        error_oracle_(&universe_) {}

  PmwOptions PracticalOptions() const {
    PmwOptions options;
    options.alpha = 0.15;
    options.beta = 0.05;
    options.privacy = {2.0, 1e-6};
    options.scale = 2.0;
    options.max_queries = 400;
    options.override_updates = 16;
    return options;
  }

  data::LabeledHypercubeUniverse universe_;
  data::Histogram dist_;
  data::Dataset dataset_;
  data::Histogram data_hist_;
  ErrorOracle error_oracle_;
};

TEST(PmwScheduleTest, MatchesFigure3Formulas) {
  PmwOptions options;
  options.alpha = 0.1;
  options.beta = 0.05;
  options.privacy = {1.0, 1e-6};
  options.scale = 2.0;
  double log_universe = std::log(1024.0);
  PmwSchedule s = PmwSchedule::Compute(options, log_universe);
  double expected_T = 64.0 * 4.0 * log_universe / 0.01;
  EXPECT_EQ(s.T, static_cast<int>(std::ceil(expected_T)));
  EXPECT_NEAR(s.eta, std::sqrt(log_universe / s.T), 1e-12);
  EXPECT_NEAR(s.oracle_budget.epsilon,
              1.0 / std::sqrt(8.0 * s.T * std::log(4.0 / 1e-6)), 1e-15);
  EXPECT_NEAR(s.oracle_budget.delta, 1e-6 / (4.0 * s.T), 1e-20);
  EXPECT_NEAR(s.sv_budget.epsilon, 0.5, 1e-12);
  EXPECT_NEAR(s.alpha0, 0.025, 1e-12);
  EXPECT_NEAR(s.beta0, 0.05 / (2.0 * s.T), 1e-15);
}

TEST(PmwScheduleTest, OverridesApply) {
  PmwOptions options;
  options.override_updates = 12;
  options.override_eta = 0.33;
  PmwSchedule s = PmwSchedule::Compute(options, std::log(16.0));
  EXPECT_EQ(s.T, 12);
  EXPECT_NEAR(s.eta, 0.33, 1e-12);
}

TEST(PmwScheduleTest, TheoremNGrowsLogarithmicallyInK) {
  PmwOptions options;
  double log_universe = std::log(1024.0);
  options.max_queries = 100;
  double n100 = PmwSchedule::TheoremRequiredN(options, log_universe, 0.0);
  options.max_queries = 10000;
  double n10000 = PmwSchedule::TheoremRequiredN(options, log_universe, 0.0);
  EXPECT_GT(n10000, n100);
  // 100x more queries should cost far less than 2x the data.
  EXPECT_LT(n10000 / n100, 2.0);
}

TEST_F(CoreTest, AnswersAllQueriesAccuratelyWithExactOracle) {
  erm::NonPrivateOracle oracle;
  PmwCm mechanism(&dataset_, &oracle, PracticalOptions(), 101);
  losses::LipschitzFamily family(3);
  Rng rng(11);

  double max_err = 0.0;
  for (int j = 0; j < 120; ++j) {
    convex::CmQuery query = family.Next(&rng);
    Result<PmwAnswer> answer = mechanism.AnswerQuery(query);
    ASSERT_TRUE(answer.ok()) << "halted at query " << j;
    max_err = std::max(max_err, error_oracle_.AnswerError(
                                    query, data_hist_, answer.value().theta));
  }
  EXPECT_LE(max_err, 0.15 + 0.02);
  EXPECT_LE(mechanism.update_count(), mechanism.schedule().T);
  EXPECT_EQ(mechanism.queries_answered(), 120);
}

TEST_F(CoreTest, AnswersAccuratelyWithPrivateOracle) {
  erm::NoisyGradientOracle oracle;
  PmwOptions options = PracticalOptions();
  options.privacy = {4.0, 1e-6};  // generous but finite
  PmwCm mechanism(&dataset_, &oracle, options, 102);
  losses::LipschitzFamily family(3);
  Rng rng(12);

  double max_err = 0.0;
  for (int j = 0; j < 80; ++j) {
    convex::CmQuery query = family.Next(&rng);
    Result<PmwAnswer> answer = mechanism.AnswerQuery(query);
    ASSERT_TRUE(answer.ok());
    max_err = std::max(max_err, error_oracle_.AnswerError(
                                    query, data_hist_, answer.value().theta));
  }
  EXPECT_LE(max_err, 0.3);  // private oracle at practical budget
}

TEST_F(CoreTest, UniformDataNeedsNoUpdates) {
  // When D is uniform, the initial hypothesis equals D, every error query
  // is ~0, and every answer must come from the kBottom path for free.
  data::Dataset uniform_data = data::RoundedDataset(
      universe_, data::UniformDistribution(universe_), 150000);
  erm::NonPrivateOracle oracle;
  PmwCm mechanism(&uniform_data, &oracle, PracticalOptions(), 103);
  losses::LipschitzFamily family(3);
  Rng rng(13);
  for (int j = 0; j < 50; ++j) {
    auto answer = mechanism.AnswerQuery(family.Next(&rng));
    ASSERT_TRUE(answer.ok());
    EXPECT_FALSE(answer.value().was_update);
  }
  EXPECT_EQ(mechanism.update_count(), 0);
}

TEST_F(CoreTest, LedgerMatchesUpdateCount) {
  erm::NonPrivateOracle oracle;
  PmwCm mechanism(&dataset_, &oracle, PracticalOptions(), 104);
  losses::LipschitzFamily family(3);
  Rng rng(14);
  for (int j = 0; j < 60; ++j) {
    ASSERT_TRUE(mechanism.AnswerQuery(family.Next(&rng)).ok());
  }
  EXPECT_EQ(mechanism.ledger().CountWithPrefix("oracle:"),
            mechanism.update_count());
  EXPECT_EQ(mechanism.ledger().CountWithPrefix("sparse-vector"), 1);
  // Basic-composition audit: oracle calls at (eps0, delta0) plus the SV's
  // (eps/2, delta/2) must stay within the strong-composition budget that
  // Theorem 3.9 guarantees; here we sanity-check the per-event budgets.
  EXPECT_NEAR(mechanism.ledger().BasicTotal().epsilon,
              mechanism.schedule().sv_budget.epsilon +
                  mechanism.update_count() *
                      mechanism.schedule().oracle_budget.epsilon,
              1e-9);
}

TEST_F(CoreTest, HypothesisConvergesTowardData) {
  erm::NonPrivateOracle oracle;
  PmwCm mechanism(&dataset_, &oracle, PracticalOptions(), 105);
  losses::LipschitzFamily family(3);
  Rng rng(15);
  double initial_kl =
      data_hist_.Kl(data::Histogram::Uniform(universe_.size()));
  for (int j = 0; j < 100; ++j) {
    ASSERT_TRUE(mechanism.AnswerQuery(family.Next(&rng)).ok());
  }
  if (mechanism.update_count() > 0) {
    double final_kl = data_hist_.Kl(mechanism.hypothesis());
    EXPECT_LT(final_kl, initial_kl);
  }
}

TEST_F(CoreTest, HaltsWhenUpdateBudgetExhausted) {
  erm::NonPrivateOracle oracle;
  PmwOptions options = PracticalOptions();
  options.override_updates = 1;
  options.alpha = 0.02;  // nearly every query exceeds threshold
  PmwCm mechanism(&dataset_, &oracle, options, 106);
  losses::LipschitzFamily family(3);
  Rng rng(16);
  bool halted = false;
  for (int j = 0; j < 100; ++j) {
    auto answer = mechanism.AnswerQuery(family.Next(&rng));
    if (!answer.ok()) {
      EXPECT_EQ(answer.status().code(), StatusCode::kHalted);
      halted = true;
      break;
    }
  }
  EXPECT_TRUE(halted);
  EXPECT_TRUE(mechanism.halted());
}

TEST_F(CoreTest, RespectsMaxQueries) {
  erm::NonPrivateOracle oracle;
  PmwOptions options = PracticalOptions();
  options.max_queries = 5;
  PmwCm mechanism(&dataset_, &oracle, options, 107);
  losses::LipschitzFamily family(3);
  Rng rng(17);
  for (int j = 0; j < 5; ++j) {
    ASSERT_TRUE(mechanism.AnswerQuery(family.Next(&rng)).ok());
  }
  auto extra = mechanism.AnswerQuery(family.Next(&rng));
  EXPECT_FALSE(extra.ok());
  EXPECT_EQ(extra.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(CoreTest, FailureInjectionDegradesAccuracy) {
  erm::NonPrivateOracle inner;
  erm::BiasedOracle broken(&inner, /*bias_radius=*/1.5);
  PmwOptions options = PracticalOptions();
  PmwCm clean(&dataset_, &inner, options, 108);
  PmwCm corrupted(&dataset_, &broken, options, 108);
  losses::LipschitzFamily family_a(3), family_b(3);
  Rng rng_a(18), rng_b(18);
  double clean_max = 0.0, corrupted_max = 0.0;
  for (int j = 0; j < 60; ++j) {
    auto qa = family_a.Next(&rng_a);
    auto a = clean.AnswerQuery(qa);
    if (a.ok()) {
      clean_max = std::max(
          clean_max, error_oracle_.AnswerError(qa, data_hist_, a.value().theta));
    }
    auto qb = family_b.Next(&rng_b);
    auto b = corrupted.AnswerQuery(qb);
    if (b.ok()) {
      corrupted_max =
          std::max(corrupted_max,
                   error_oracle_.AnswerError(qb, data_hist_, b.value().theta));
    }
  }
  EXPECT_GT(corrupted_max, clean_max);
}

TEST_F(CoreTest, PmwLinearAnswersConjunctionsAccurately) {
  PmwLinearOptions options;
  options.alpha = 0.1;
  options.privacy = {2.0, 1e-6};
  options.override_updates = 20;
  PmwLinear mechanism(&dataset_, options, 201);
  Rng rng(21);
  auto queries = RandomConjunctionQueries(universe_, 150, 2, true, &rng);
  double max_err = 0.0;
  for (const auto& q : queries) {
    auto answer = mechanism.AnswerQuery(q);
    ASSERT_TRUE(answer.ok());
    max_err = std::max(max_err,
                       std::abs(answer.value().value - q.Evaluate(data_hist_)));
  }
  EXPECT_LE(max_err, 0.12);
  EXPECT_LE(mechanism.update_count(), 20);
}

TEST_F(CoreTest, MwemReducesMaxError) {
  Rng rng(22);
  auto queries = RandomConjunctionQueries(universe_, 40, 2, true, &rng);
  MwemOptions options;
  options.rounds = 12;
  options.privacy = {2.0, 0.0};
  MwemResult result = RunMwem(dataset_, queries, options, 301);
  ASSERT_EQ(static_cast<int>(result.max_error_trace.size()), 12);
  double initial_max = 0.0;
  data::Histogram uniform = data::Histogram::Uniform(universe_.size());
  for (const auto& q : queries) {
    initial_max = std::max(initial_max, std::abs(q.Evaluate(data_hist_) -
                                                 q.Evaluate(uniform)));
  }
  EXPECT_LT(result.max_error_trace.back(), initial_max);
  EXPECT_LE(result.max_error_trace.back(), 0.15);
}

TEST_F(CoreTest, PmwOfflineAnswersFixedQuerySet) {
  losses::LipschitzFamily family(3);
  Rng rng(23);
  auto queries = family.Generate(24, &rng);
  erm::NonPrivateOracle oracle;
  PmwOfflineOptions options;
  options.rounds = 14;
  options.privacy = {3.0, 1e-6};
  options.scale = family.scale();
  PmwOfflineResult result =
      RunPmwOffline(dataset_, queries, &oracle, options, 302);
  ASSERT_EQ(result.answers.size(), queries.size());
  double max_err = 0.0;
  for (size_t q = 0; q < queries.size(); ++q) {
    max_err = std::max(max_err, error_oracle_.AnswerError(
                                    queries[q], data_hist_, result.answers[q]));
  }
  EXPECT_LE(max_err, 0.2);
}

TEST_F(CoreTest, CompositionBaselinePerQueryBudgetShrinksWithK) {
  erm::NonPrivateOracle oracle;
  CompositionBaseline::Options small_k;
  small_k.max_queries = 4;
  CompositionBaseline::Options big_k;
  big_k.max_queries = 400;
  CompositionBaseline a(&dataset_, &oracle, small_k, 401);
  CompositionBaseline b(&dataset_, &oracle, big_k, 402);
  EXPECT_GT(a.per_query_budget().epsilon, b.per_query_budget().epsilon * 5);
}

TEST_F(CoreTest, CompositionBaselineExhaustsAfterK) {
  erm::NonPrivateOracle oracle;
  CompositionBaseline::Options options;
  options.max_queries = 3;
  CompositionBaseline baseline(&dataset_, &oracle, options, 403);
  losses::LipschitzFamily family(3);
  Rng rng(24);
  for (int j = 0; j < 3; ++j) {
    ASSERT_TRUE(baseline.Answer(family.Next(&rng)).ok());
  }
  EXPECT_FALSE(baseline.Answer(family.Next(&rng)).ok());
}

TEST_F(CoreTest, AccuracyGameRecordsErrors) {
  erm::NonPrivateOracle oracle;
  PmwCm mechanism(&dataset_, &oracle, PracticalOptions(), 501);
  PmwAnswerer answerer(&mechanism);
  losses::LipschitzFamily family(3);
  FamilyAnalyst analyst(&family);
  Rng rng(25);
  GameResult result = RunAccuracyGame(&answerer, &analyst, 50, error_oracle_,
                                      data_hist_, &rng);
  EXPECT_EQ(result.queries_answered, 50);
  EXPECT_EQ(static_cast<int>(result.errors.size()), 50);
  EXPECT_FALSE(result.mechanism_halted);
  EXPECT_LE(result.MaxError(), 0.2);
  EXPECT_LE(result.MeanError(), result.MaxError());
  EXPECT_GE(result.AccurateFraction(0.2), 0.99);
}

TEST_F(CoreTest, RepeatingAnalystMostlyFreeAfterWarmup) {
  erm::NonPrivateOracle oracle;
  PmwOptions options = PracticalOptions();
  PmwCm mechanism(&dataset_, &oracle, options, 502);
  losses::LipschitzFamily family(3);
  Rng pool_rng(26);
  RepeatingAnalyst analyst(&family, /*pool_size=*/8, &pool_rng);
  PmwAnswerer answerer(&mechanism);
  Rng rng(27);
  GameResult result = RunAccuracyGame(&answerer, &analyst, 200, error_oracle_,
                                      data_hist_, &rng);
  EXPECT_EQ(result.queries_answered, 200);
  // 8 distinct queries cannot trigger more than 8ish updates.
  EXPECT_LE(mechanism.update_count(), 10);
}

TEST_F(CoreTest, AdaptiveAnalystStillAnsweredAccurately) {
  erm::NonPrivateOracle oracle;
  PmwOptions options = PracticalOptions();
  options.scale = 2.0 * (1.0 + 1.5 * 0.3);  // adaptive Tikhonov widens S
  PmwCm mechanism(&dataset_, &oracle, options, 503);
  PmwAnswerer answerer(&mechanism);
  losses::LipschitzFamily family(3);
  AdaptiveRefinementAnalyst analyst(&family, /*sigma=*/0.3,
                                    /*fresh_probability=*/0.5);
  Rng rng(28);
  GameResult result = RunAccuracyGame(&answerer, &analyst, 80, error_oracle_,
                                      data_hist_, &rng);
  EXPECT_EQ(result.queries_answered, 80);
  EXPECT_LE(result.MaxError(), 0.25);
}

}  // namespace
}  // namespace core
}  // namespace pmw
