// Edge-case coverage for serve/epoch_state: degenerate (empty-support)
// snapshots flowing through the prepare path, epoch monotonicity across
// mid-batch updates, and the RCU property that a held epoch survives —
// immutable — while the writer publishes past it.

#include "serve/epoch_state.h"

#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/pmw_cm.h"
#include "data/binary_universe.h"
#include "data/generators.h"
#include "erm/noisy_gradient_oracle.h"
#include "erm/nonprivate_oracle.h"
#include "gtest/gtest.h"
#include "losses/loss_family.h"
#include "serve/pmw_service.h"
#include "serve/shard_executor.h"

namespace pmw {
namespace serve {
namespace {

core::PmwOptions PracticalOptions() {
  core::PmwOptions options;
  options.alpha = 0.15;
  options.beta = 0.05;
  options.privacy = {2.0, 1e-6};
  options.scale = 2.0;
  options.max_queries = 400;
  options.override_updates = 12;
  return options;
}

class EpochStateTest : public ::testing::Test {
 protected:
  EpochStateTest() : universe_(3), family_(3) {
    data::Histogram dist = data::LogisticModelDistribution(
        universe_, {1.0, -0.8, 0.5}, {0.7, 0.4, 0.5}, 0.25);
    dataset_ = std::make_unique<data::Dataset>(
        data::RoundedDataset(universe_, dist, 60000));
    Rng rng(77);
    queries_ = family_.Generate(6, &rng);
  }

  data::LabeledHypercubeUniverse universe_;
  losses::LipschitzFamily family_;
  std::unique_ptr<data::Dataset> dataset_;
  std::vector<convex::CmQuery> queries_;
};

TEST_F(EpochStateTest, CurrentIsNullBeforeFirstPublish) {
  EpochState epochs;
  EXPECT_EQ(epochs.Current(), nullptr);
  EXPECT_EQ(epochs.epochs_published(), 0);
}

TEST_F(EpochStateTest, RepublishWithoutUpdateAdvancesSequenceNotVersion) {
  erm::NonPrivateOracle oracle;
  core::PmwCm cm(dataset_.get(), &oracle, PracticalOptions(), 1);
  EpochState epochs;

  std::shared_ptr<const Epoch> first = epochs.Publish(cm);
  std::shared_ptr<const Epoch> second = epochs.Publish(cm);
  // A batch republishes at its start without the hypothesis moving: the
  // sequence orders publishes, the version keys plan freshness.
  EXPECT_EQ(first->snapshot->version, second->snapshot->version);
  // The republish reuses the previous snapshot buffer outright (same
  // version + shard set => identical compaction), so the common
  // soft-round path pays O(shards), not an O(|X|) compaction pass.
  EXPECT_EQ(first->snapshot, second->snapshot);
  EXPECT_LT(first->sequence, second->sequence);
  EXPECT_EQ(epochs.epochs_published(), 2);
  EXPECT_EQ(epochs.Current(), second);
}

TEST_F(EpochStateTest, EmptySupportSnapshotFlowsThroughPrepare) {
  // An aggressively compacted hypothesis could in principle present an
  // empty support (no strictly-positive entries survive). The prepare
  // path must stay defined on that boundary: plans come back finite,
  // version-tagged, and inside the domain — never a crash or NaN.
  erm::NonPrivateOracle oracle;
  core::PmwCm cm(dataset_.get(), &oracle, PracticalOptions(), 2);

  Epoch degenerate;
  auto snapshot = std::make_shared<core::HypothesisSnapshot>();
  snapshot->support = {};  // empty: every mass entry compacted away
  snapshot->version = cm.hypothesis_version();
  degenerate.snapshot = std::move(snapshot);
  degenerate.sequence = 0;

  ShardExecutor executor(nullptr, &cm);
  ShardExecutor::PrepareResult prepared =
      executor.PrepareRange(queries_, 0, queries_.size(), degenerate);
  ASSERT_EQ(prepared.plan_of.size(), queries_.size());
  for (size_t i = 0; i < queries_.size(); ++i) {
    const core::PreparedQuery& plan =
        prepared.plans[prepared.plan_of[i]];
    EXPECT_EQ(plan.hypothesis_version, cm.hypothesis_version());
    ASSERT_FALSE(plan.theta_hat.empty());
    for (double coordinate : plan.theta_hat) {
      EXPECT_TRUE(std::isfinite(coordinate));
    }
    EXPECT_TRUE(std::isfinite(plan.query_value));
    EXPECT_GE(plan.query_value, 0.0);
  }
}

TEST_F(EpochStateTest, EpochsAdvanceMonotonicallyAcrossMidBatchUpdates) {
  // Randomized oracle + non-uniform data: hard rounds fire mid-batch,
  // each one publishing a fresh epoch. Versions and sequences must be
  // non-decreasing / strictly increasing respectively, and the final
  // epoch must match the live mechanism.
  erm::NoisyGradientOracle oracle;
  ServeOptions serve_options;
  serve_options.num_threads = 2;
  PmwService service(dataset_.get(), &oracle, PracticalOptions(), 42,
                     serve_options);

  std::vector<convex::CmQuery> workload;
  for (int j = 0; j < 48; ++j) {
    workload.push_back(queries_[static_cast<size_t>(j) % queries_.size()]);
  }

  long long last_sequence = -1;
  int last_version = -1;
  for (size_t start = 0; start < workload.size(); start += 12) {
    std::vector<convex::CmQuery> batch(
        workload.begin() + static_cast<long>(start),
        workload.begin() + static_cast<long>(start + 12));
    service.AnswerBatch(batch);
    std::shared_ptr<const Epoch> current = service.epochs().Current();
    ASSERT_NE(current, nullptr);
    EXPECT_GT(current->sequence, last_sequence);
    EXPECT_GE(current->snapshot->version, last_version);
    last_sequence = current->sequence;
    last_version = current->snapshot->version;
  }

  EXPECT_GT(service.mechanism().update_count(), 0);
  EXPECT_EQ(last_version, service.mechanism().hypothesis_version());
  // One publish per batch start plus one per mid-batch update (an update
  // on a batch's last query has no suffix to re-prepare), so publishes
  // dominate both counters.
  const ServeStats& stats = service.stats();
  EXPECT_GE(service.epochs().epochs_published(), stats.batches);
  EXPECT_GE(service.epochs().epochs_published(), stats.updates);
  EXPECT_EQ(stats.epochs, service.epochs().epochs_published());
}

TEST_F(EpochStateTest, PerShardSnapshotsTileTheSupportAndStayMonotonic) {
  // Sharded serving: every published epoch carries one zero-copy slice
  // view per domain shard. Across mid-batch updates the slices must (a)
  // always tile snapshot.support exactly — no entry dropped, duplicated,
  // or out of place — (b) carry a stable shard fingerprint, and (c)
  // advance monotonically with the epoch (version non-decreasing,
  // per-shard [lo, hi) ranges fixed for the service's lifetime).
  erm::NoisyGradientOracle oracle;
  ServeOptions serve_options;
  serve_options.num_threads = 2;
  serve_options.num_shards = 4;
  PmwService service(dataset_.get(), &oracle, PracticalOptions(), 21,
                     serve_options);
  ASSERT_EQ(service.num_shards(), 4);

  std::vector<convex::CmQuery> workload;
  for (int j = 0; j < 48; ++j) {
    workload.push_back(queries_[static_cast<size_t>(j) % queries_.size()]);
  }

  const uint64_t fingerprint = service.mechanism().shard_fingerprint();
  std::vector<std::pair<int, int>> ranges;
  long long last_sequence = -1;
  int last_version = -1;
  for (size_t start = 0; start < workload.size(); start += 12) {
    std::vector<convex::CmQuery> batch(
        workload.begin() + static_cast<long>(start),
        workload.begin() + static_cast<long>(start + 12));
    service.AnswerBatch(batch);
    std::shared_ptr<const Epoch> epoch = service.epochs().Current();
    ASSERT_NE(epoch, nullptr);
    EXPECT_GT(epoch->sequence, last_sequence);
    EXPECT_GE(epoch->snapshot->version, last_version);
    last_sequence = epoch->sequence;
    last_version = epoch->snapshot->version;

    EXPECT_EQ(epoch->shard_fingerprint, fingerprint);
    ASSERT_EQ(epoch->shards.size(), 4u);
    // The shard ranges are the partition — fixed across epochs.
    if (ranges.empty()) {
      for (const Epoch::ShardSlice& slice : epoch->shards) {
        ranges.emplace_back(slice.lo, slice.hi);
      }
      EXPECT_EQ(ranges.front().first, 0);
      EXPECT_EQ(ranges.back().second, universe_.size());
    }
    size_t position = 0;
    for (size_t s = 0; s < epoch->shards.size(); ++s) {
      const Epoch::ShardSlice& slice = epoch->shards[s];
      EXPECT_EQ(slice.lo, ranges[s].first);
      EXPECT_EQ(slice.hi, ranges[s].second);
      for (const auto& entry : slice.support) {
        // Tiling: slice entries are exactly the support's, in order,
        // and every index lies inside the slice's own range.
        ASSERT_LT(position, epoch->snapshot->support.size());
        EXPECT_EQ(entry.first, epoch->snapshot->support[position].first);
        EXPECT_EQ(entry.second, epoch->snapshot->support[position].second);
        EXPECT_GE(entry.first, slice.lo);
        EXPECT_LT(entry.first, slice.hi);
        ++position;
      }
    }
    EXPECT_EQ(position, epoch->snapshot->support.size());
  }
  EXPECT_GT(service.mechanism().update_count(), 0);
}

TEST_F(EpochStateTest, HeldEpochSurvivesLaterPublishesUnchanged) {
  erm::NoisyGradientOracle oracle;
  PmwService service(dataset_.get(), &oracle, PracticalOptions(), 7);

  service.AnswerBatch({&queries_[0], 1});
  std::shared_ptr<const Epoch> held = service.epochs().Current();
  ASSERT_NE(held, nullptr);
  const long long held_sequence = held->sequence;
  const int held_version = held->snapshot->version;
  const size_t held_support = held->snapshot->support.size();

  // Drive more traffic (likely including updates); the held epoch is an
  // immutable snapshot — the classic RCU grace-period guarantee.
  for (int round = 0; round < 4; ++round) {
    service.AnswerBatch(queries_);
  }
  std::shared_ptr<const Epoch> current = service.epochs().Current();
  ASSERT_NE(current, nullptr);
  EXPECT_GT(current->sequence, held_sequence);
  EXPECT_EQ(held->sequence, held_sequence);
  EXPECT_EQ(held->snapshot->version, held_version);
  EXPECT_EQ(held->snapshot->support.size(), held_support);
}

}  // namespace
}  // namespace serve
}  // namespace pmw
