// Acceptance tests for the async multi-analyst front-end
// (frontend/dispatcher.h + quota_manager.h + plan_cache.h):
//
//   (a) Transcript equivalence. N concurrent analyst threads submit
//       through the Dispatcher; the recorded arrival log is replayed
//       through sequential PmwCm under the same seed, and answers plus
//       the privacy ledger must be *bit-identical* — the MPSC queue
//       fixes the interleaving at enqueue time and the single-writer
//       commit loop preserves it, so asynchrony may only change
//       wall-clock, never the transcript.
//   (b) Quota rejections are free. A front-door rejection never reaches
//       the mechanism: the ledger (event count and totals) is unchanged
//       and no k-query slot is consumed.
//   (c) The content-fingerprint-keyed PlanCache actually amortizes
//       across batches (hit-rate > 0 on a repeated-query workload),
//       serves content hits across hypothesis versions with the version
//       restamped, and lazily drops plans whose fingerprints went stale.
//   (d) The CLOCK ring's mechanics in isolation: second-chance eviction
//       order and frequency-sketch admission under a full ring.
//
// The TSan CI job rebuilds this binary, so the concurrency claims are
// machine-checked alongside the functional ones.

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/error.h"
#include "common/random.h"
#include "core/pmw_cm.h"
#include "data/binary_universe.h"
#include "data/generators.h"
#include "erm/noisy_gradient_oracle.h"
#include "erm/nonprivate_oracle.h"
#include "frontend/dispatcher.h"
#include "frontend/plan_cache.h"
#include "frontend/quota_manager.h"
#include "gtest/gtest.h"
#include "losses/loss_family.h"
#include "serve/pmw_service.h"

namespace pmw {
namespace frontend {
namespace {

core::PmwOptions PracticalOptions() {
  core::PmwOptions options;
  options.alpha = 0.15;
  options.beta = 0.05;
  options.privacy = {2.0, 1e-6};
  options.scale = 2.0;
  options.max_queries = 400;
  options.override_updates = 12;
  return options;
}

/// Shared scenario: a logistic-model dataset and a pool of reusable
/// Lipschitz queries (the pool objects give pointer-identity query
/// fingerprints, as in production where families own the losses).
class FrontendTest : public ::testing::Test {
 protected:
  FrontendTest() : universe_(3), family_(3) {
    data::Histogram dist = data::LogisticModelDistribution(
        universe_, {1.0, -0.8, 0.5}, {0.7, 0.4, 0.5}, 0.25);
    dataset_ = std::make_unique<data::Dataset>(
        data::RoundedDataset(universe_, dist, 60000));
    Rng rng(424242);
    pool_ = family_.Generate(8, &rng);
  }

  data::LabeledHypercubeUniverse universe_;
  losses::LipschitzFamily family_;
  std::unique_ptr<data::Dataset> dataset_;
  std::vector<convex::CmQuery> pool_;
};

struct SubmittedRequest {
  uint64_t id = 0;
  size_t pool_index = 0;
  std::string analyst;
  std::future<Served> future;
};

TEST_F(FrontendTest, TranscriptMatchesSequentialReplayOfArrivalLog) {
  constexpr int kAnalysts = 4;
  constexpr int kQueriesPerAnalyst = 30;
  constexpr uint64_t kSeed = 555;

  // Enough update budget that the workload cannot halt the sparse vector
  // mid-test: admission must stay deterministic (120 accepted requests)
  // for the arrival-log replay to be exhaustive.
  core::PmwOptions options = PracticalOptions();
  options.override_updates = 24;

  erm::NoisyGradientOracle oracle;
  serve::ServeOptions serve_options;
  serve_options.num_threads = 2;
  serve::PmwService service(dataset_.get(), &oracle, options, kSeed,
                            serve_options);
  QuotaManager quota(&service, QuotaOptions{});  // unlimited
  PlanCache cache;
  DispatcherOptions dispatcher_options;
  dispatcher_options.max_batch = 16;
  dispatcher_options.max_wait = std::chrono::microseconds(2000);
  dispatcher_options.record_arrival_log = true;
  Dispatcher dispatcher(&service, &quota, &cache, dispatcher_options);

  // N analysts, each submitting its own deterministic slice of the pool
  // from its own thread. The global interleaving is whatever the MPSC
  // queue observed — the arrival log captures it for the replay.
  std::mutex submitted_mutex;
  std::vector<SubmittedRequest> submitted;
  std::vector<std::thread> analysts;
  analysts.reserve(kAnalysts);
  for (int a = 0; a < kAnalysts; ++a) {
    analysts.emplace_back([this, a, &dispatcher, &submitted_mutex,
                           &submitted] {
      AnalystSession session(&dispatcher, "analyst-" + std::to_string(a));
      for (int j = 0; j < kQueriesPerAnalyst; ++j) {
        size_t pool_index =
            static_cast<size_t>(a * 7 + j * 3) % pool_.size();
        SubmittedRequest request;
        request.pool_index = pool_index;
        request.analyst = session.analyst_id();
        request.future = session.Submit(pool_[pool_index], &request.id);
        std::lock_guard<std::mutex> lock(submitted_mutex);
        submitted.push_back(std::move(request));
      }
    });
  }
  for (std::thread& t : analysts) t.join();
  dispatcher.Shutdown();

  const std::vector<uint64_t> arrival = dispatcher.ArrivalLog();
  ASSERT_EQ(arrival.size(),
            static_cast<size_t>(kAnalysts * kQueriesPerAnalyst));

  std::unordered_map<uint64_t, SubmittedRequest*> by_id;
  for (SubmittedRequest& request : submitted) {
    by_id[request.id] = &request;
  }

  // Replay the exact interleaving through the sequential mechanism.
  erm::NoisyGradientOracle replay_oracle;
  core::PmwCm sequential(dataset_.get(), &replay_oracle, options, kSeed);
  for (size_t position = 0; position < arrival.size(); ++position) {
    auto it = by_id.find(arrival[position]);
    ASSERT_NE(it, by_id.end());
    SubmittedRequest& request = *it->second;
    Result<core::PmwAnswer> want =
        sequential.AnswerQuery(pool_[request.pool_index]);
    Result<convex::Vec> got = request.future.get().answer;
    ASSERT_EQ(got.ok(), want.ok()) << "position " << position;
    if (!want.ok()) {
      EXPECT_EQ(got.status().code(), want.status().code());
      continue;
    }
    const convex::Vec& g = *got;
    const convex::Vec& w = want.value().theta;
    ASSERT_EQ(g.size(), w.size());
    for (size_t i = 0; i < w.size(); ++i) {
      // Exact, not NEAR: the claim is bit-identical transcripts.
      EXPECT_EQ(g[i], w[i]) << "position " << position << " coord " << i;
    }
  }

  // The scenario must exercise the hard path, and the ledgers must agree
  // event-for-event (labels, params, commit sequence).
  EXPECT_GT(sequential.update_count(), 0);
  EXPECT_EQ(service.mechanism().ledger().Report(),
            sequential.ledger().Report());
  EXPECT_EQ(service.mechanism().update_count(), sequential.update_count());
  EXPECT_EQ(service.mechanism().queries_answered(),
            sequential.queries_answered());

  // Analyst tags flowed through to the per-analyst stats slice.
  const serve::ServeStats& stats = service.stats();
  ASSERT_EQ(stats.per_analyst.size(), static_cast<size_t>(kAnalysts));
  long long tagged = 0;
  for (const auto& [analyst, counters] : stats.per_analyst) {
    EXPECT_EQ(counters.queries, kQueriesPerAnalyst) << analyst;
    tagged += counters.queries;
  }
  EXPECT_EQ(tagged, stats.queries);

  DispatcherStats dstats = dispatcher.stats();
  EXPECT_EQ(dstats.submitted, kAnalysts * kQueriesPerAnalyst);
  EXPECT_EQ(dstats.admitted, kAnalysts * kQueriesPerAnalyst);
  EXPECT_EQ(dstats.quota_rejected, 0);
  EXPECT_GT(dstats.batches, 0);
}

TEST_F(FrontendTest, FairRoundRobinPopKeepsTranscriptsReplayable) {
  // The fairness flag changes WHICH order requests commit in (dealt one
  // per analyst per cycle at contended windows, over a domain-sharded
  // service) — but the commit order IS the arrival log, so the replay
  // guarantee must be untouched.
  constexpr int kAnalysts = 3;
  constexpr int kQueriesPerAnalyst = 20;
  constexpr uint64_t kSeed = 919;

  core::PmwOptions options = PracticalOptions();
  options.override_updates = 24;

  erm::NoisyGradientOracle oracle;
  serve::ServeOptions serve_options;
  serve_options.num_threads = 2;
  serve_options.num_shards = 2;
  serve::PmwService service(dataset_.get(), &oracle, options, kSeed,
                            serve_options);
  DispatcherOptions dispatcher_options;
  dispatcher_options.max_batch = 8;
  dispatcher_options.max_wait = std::chrono::microseconds(2000);
  dispatcher_options.record_arrival_log = true;
  dispatcher_options.fair_round_robin = true;
  Dispatcher dispatcher(&service, nullptr, nullptr, dispatcher_options);

  std::mutex submitted_mutex;
  std::vector<SubmittedRequest> submitted;
  std::vector<std::thread> analysts;
  analysts.reserve(kAnalysts);
  for (int a = 0; a < kAnalysts; ++a) {
    analysts.emplace_back([this, a, &dispatcher, &submitted_mutex,
                           &submitted] {
      AnalystSession session(&dispatcher, "analyst-" + std::to_string(a));
      for (int j = 0; j < kQueriesPerAnalyst; ++j) {
        size_t pool_index =
            static_cast<size_t>(a * 5 + j * 3) % pool_.size();
        SubmittedRequest request;
        request.pool_index = pool_index;
        request.analyst = session.analyst_id();
        request.future = session.Submit(pool_[pool_index], &request.id);
        std::lock_guard<std::mutex> lock(submitted_mutex);
        submitted.push_back(std::move(request));
      }
    });
  }
  for (std::thread& t : analysts) t.join();
  dispatcher.Shutdown();

  const std::vector<uint64_t> arrival = dispatcher.ArrivalLog();
  ASSERT_EQ(arrival.size(),
            static_cast<size_t>(kAnalysts * kQueriesPerAnalyst));
  std::unordered_map<uint64_t, SubmittedRequest*> by_id;
  for (SubmittedRequest& request : submitted) {
    by_id[request.id] = &request;
  }

  erm::NoisyGradientOracle replay_oracle;
  core::PmwCm sequential(dataset_.get(), &replay_oracle, options, kSeed);
  for (size_t position = 0; position < arrival.size(); ++position) {
    auto it = by_id.find(arrival[position]);
    ASSERT_NE(it, by_id.end());
    SubmittedRequest& request = *it->second;
    Result<core::PmwAnswer> want =
        sequential.AnswerQuery(pool_[request.pool_index]);
    Result<convex::Vec> got = request.future.get().answer;
    ASSERT_EQ(got.ok(), want.ok()) << "position " << position;
    if (!want.ok()) continue;
    const convex::Vec& g = *got;
    const convex::Vec& w = want.value().theta;
    ASSERT_EQ(g.size(), w.size());
    for (size_t i = 0; i < w.size(); ++i) {
      EXPECT_EQ(g[i], w[i]) << "position " << position << " coord " << i;
    }
  }
  EXPECT_EQ(service.mechanism().ledger().Report(),
            sequential.ledger().Report());
  EXPECT_EQ(service.mechanism().queries_answered(),
            sequential.queries_answered());
}

TEST_F(FrontendTest, QuotaRejectionConsumesZeroPrivacyBudget) {
  constexpr uint64_t kSeed = 77;
  erm::NoisyGradientOracle oracle;
  serve::PmwService service(dataset_.get(), &oracle, PracticalOptions(),
                            kSeed);
  QuotaOptions quota_options;
  quota_options.per_analyst_queries = 3;
  QuotaManager quota(&service, quota_options);
  Dispatcher dispatcher(&service, &quota, nullptr);
  AnalystSession session(&dispatcher, "bounded-analyst");

  // First 3 are admitted and served.
  for (int j = 0; j < 3; ++j) {
    Result<convex::Vec> answer =
        session.Submit(pool_[static_cast<size_t>(j)]).get().answer;
    EXPECT_TRUE(answer.ok()) << answer.status().ToString();
  }
  const int events_before = service.mechanism().ledger().event_count();
  const dp::PrivacyParams spent_before =
      service.mechanism().ledger().BasicTotal();
  const long long answered_before = service.mechanism().queries_answered();

  // The next 5 are rejected at the front door with a typed error...
  for (int j = 0; j < 5; ++j) {
    Result<convex::Vec> rejected = session.Submit(pool_[0]).get().answer;
    ASSERT_FALSE(rejected.ok());
    EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
    EXPECT_NE(rejected.status().message().find("quota"), std::string::npos);
  }
  dispatcher.Shutdown();

  // ...and the mechanism never saw them: zero privacy cost, zero slots.
  EXPECT_EQ(service.mechanism().ledger().event_count(), events_before);
  EXPECT_EQ(service.mechanism().ledger().BasicTotal().epsilon,
            spent_before.epsilon);
  EXPECT_EQ(service.mechanism().ledger().BasicTotal().delta,
            spent_before.delta);
  EXPECT_EQ(service.mechanism().queries_answered(), answered_before);
  EXPECT_EQ(quota.admitted("bounded-analyst"), 3);
  EXPECT_EQ(quota.total_rejected(), 5);
  EXPECT_EQ(dispatcher.stats().quota_rejected, 5);
}

TEST_F(FrontendTest, RefundReturnsAnAdmittedSlot) {
  // A request admitted but never served (e.g. the dispatcher shut down
  // before it could enqueue) hands its slot back; the analyst is only
  // ever charged for queries the mechanism saw.
  erm::NonPrivateOracle oracle;
  serve::PmwService service(dataset_.get(), &oracle, PracticalOptions(), 1);
  QuotaOptions quota_options;
  quota_options.per_analyst_queries = 2;
  QuotaManager quota(&service, quota_options);

  EXPECT_TRUE(quota.Admit("a").ok());
  EXPECT_TRUE(quota.Admit("a").ok());
  EXPECT_FALSE(quota.Admit("a").ok());
  quota.Refund("a");
  EXPECT_EQ(quota.admitted("a"), 1);
  EXPECT_TRUE(quota.Admit("a").ok());
  EXPECT_EQ(quota.total_admitted(), 2);
  // Refunds never underflow, even for unknown analysts.
  quota.Refund("never-admitted");
  EXPECT_EQ(quota.total_admitted(), 2);
}

TEST_F(FrontendTest, GlobalQuotaAppliesAcrossAnalysts) {
  erm::NonPrivateOracle oracle;
  serve::PmwService service(dataset_.get(), &oracle, PracticalOptions(), 5);
  QuotaOptions quota_options;
  quota_options.global_queries = 4;
  QuotaManager quota(&service, quota_options);
  Dispatcher dispatcher(&service, &quota, nullptr);

  int served = 0;
  int rejected = 0;
  for (int a = 0; a < 3; ++a) {
    AnalystSession session(&dispatcher, "a" + std::to_string(a));
    for (int j = 0; j < 2; ++j) {
      Result<convex::Vec> answer = session.Submit(pool_[0]).get().answer;
      if (answer.ok()) {
        ++served;
      } else {
        ++rejected;
        EXPECT_EQ(answer.status().code(), StatusCode::kResourceExhausted);
      }
    }
  }
  EXPECT_EQ(served, 4);
  EXPECT_EQ(rejected, 2);
  EXPECT_EQ(quota.total_admitted(), 4);
}

TEST_F(FrontendTest, PlanCacheHitsAcrossBatchesAndDropsStalePlans) {
  // Uniform data + non-private oracle: the uniform initial hypothesis is
  // already accurate, so no MW update fires and the epoch stays put —
  // the pure cross-batch reuse regime.
  data::Histogram uniform = data::Histogram::Uniform(universe_.size());
  data::Dataset dataset = data::RoundedDataset(universe_, uniform, 60000);
  erm::NonPrivateOracle oracle;
  serve::PmwService service(&dataset, &oracle, PracticalOptions(), 9);
  PlanCache cache;
  service.set_plan_cache(&cache);

  std::vector<convex::CmQuery> batch(pool_.begin(), pool_.begin() + 4);
  service.AnswerBatch(batch);
  PlanCache::Stats first = cache.stats();
  EXPECT_EQ(first.hits, 0);
  EXPECT_EQ(first.insertions, 4);
  EXPECT_EQ(cache.size(), 4u);

  // Same queries, next batch: every distinct plan is served from the
  // cache — zero solver work in the prepare phase.
  service.AnswerBatch(batch);
  PlanCache::Stats second = cache.stats();
  EXPECT_EQ(second.hits, 4);
  EXPECT_EQ(second.insertions, 4);
  EXPECT_GT(second.HitRate(), 0.0);

  const serve::ServeStats& stats = service.stats();
  EXPECT_EQ(stats.cross_batch_cache_hits, 4);
  EXPECT_EQ(stats.cross_batch_cache_lookups, 8);
  EXPECT_EQ(stats.CrossBatchHitRate(), 0.5);
  const serve::PlanStamp stamp = cache.current_stamp();
  EXPECT_EQ(stamp.version, service.mechanism().hypothesis_version());
  EXPECT_EQ(stamp.shard_set, service.mechanism().shard_fingerprint());

  // Cross-version content hit: a republish under a NEW version whose
  // content fingerprints are unchanged serves the cached plan, restamped
  // to the probing version (the one field Prepare derives from the
  // version rather than the support bytes).
  serve::PlanStamp republished = stamp;
  republished.version = stamp.version + 1;
  core::PreparedQuery plan;
  ASSERT_TRUE(cache.Lookup(serve::QueryKey{batch[0].loss, batch[0].domain},
                           republished, &plan));
  EXPECT_EQ(plan.hypothesis_version, republished.version);

  // Forced staleness: the content fingerprint moved on, so the probe
  // drops the entry lazily — it can never be valid again.
  serve::PlanStamp moved = stamp;
  moved.content = stamp.content + 1;
  EXPECT_FALSE(cache.Lookup(serve::QueryKey{batch[0].loss, batch[0].domain},
                            moved, &plan));
  EXPECT_EQ(cache.stats().stale_dropped, 1);
  EXPECT_EQ(cache.size(), 3u);

  // A repartition (new shard set at the same content) invalidates the
  // same way: plans are only served into the exact (shard_set, content)
  // they were computed under.
  serve::PlanStamp repartitioned = stamp;
  repartitioned.shard_set = stamp.shard_set + 1;
  EXPECT_FALSE(cache.Lookup(serve::QueryKey{batch[1].loss, batch[1].domain},
                            repartitioned, &plan));
  EXPECT_EQ(cache.stats().stale_dropped, 2);
  EXPECT_EQ(cache.size(), 2u);
}

TEST_F(FrontendTest, PlanCacheStaysCoherentThroughHardRounds) {
  // Non-uniform data with a randomized oracle: MW updates fire, each one
  // changes the content fingerprints, so re-probed plans from older
  // epochs must be dropped as stale. Correctness is already covered by
  // the transcript test (the cache was attached there); this checks the
  // bookkeeping end to end.
  constexpr uint64_t kSeed = 31337;
  erm::NoisyGradientOracle oracle;
  serve::PmwService service(dataset_.get(), &oracle, PracticalOptions(),
                            kSeed);
  PlanCache cache;
  service.set_plan_cache(&cache);

  std::vector<convex::CmQuery> traffic;
  for (int j = 0; j < 60; ++j) {
    traffic.push_back(pool_[static_cast<size_t>(j) % pool_.size()]);
  }
  for (size_t start = 0; start < traffic.size(); start += 12) {
    std::vector<convex::CmQuery> batch(
        traffic.begin() + static_cast<long>(start),
        traffic.begin() + static_cast<long>(start + 12));
    service.AnswerBatch(batch);
  }

  EXPECT_GT(service.mechanism().update_count(), 0);
  EXPECT_EQ(cache.current_stamp().version,
            service.mechanism().hypothesis_version());
  PlanCache::Stats stats = cache.stats();
  // Repeats amortized across batches; hard rounds moved the content
  // fingerprints, so re-probed old plans were dropped as stale.
  EXPECT_GT(stats.hits, 0);
  EXPECT_GT(stats.stale_dropped, 0);
  EXPECT_GT(service.stats().CrossBatchHitRate(), 0.0);
}

TEST(PlanCacheClockTest, SecondChanceEvictsUnreferencedInRingOrder) {
  // 3-slot ring; resident keys A, B, C inserted in order. Touch A and C
  // (ref bits set), leave B cold; then insert D 3 times so its sketch
  // frequency beats every resident's. The CLOCK hand starts at slot 0:
  // A and C get second chances (ref cleared), B is the first
  // unreferenced slot the hand reaches — the victim.
  int keys[5] = {};
  auto key = [&](int i) { return serve::QueryKey{&keys[i], &keys[i]}; };
  const serve::PlanStamp stamp{1, 7, 99};
  core::PreparedQuery plan;
  plan.hypothesis_version = stamp.version;

  PlanCache cache(3);
  core::PreparedQuery out;
  for (int i = 0; i < 3; ++i) {
    cache.Lookup(key(i), stamp, &out);  // seed sketch frequency
    cache.Insert(key(i), stamp, plan);
  }
  ASSERT_EQ(cache.size(), 3u);
  EXPECT_TRUE(cache.Lookup(key(0), stamp, &out));  // ref A
  EXPECT_TRUE(cache.Lookup(key(2), stamp, &out));  // ref C

  for (int probe = 0; probe < 3; ++probe) {
    EXPECT_FALSE(cache.Lookup(key(3), stamp, &out));
  }
  cache.Insert(key(3), stamp, plan);

  EXPECT_EQ(cache.stats().evicted, 1);
  EXPECT_TRUE(cache.Lookup(key(0), stamp, &out));   // A survived
  EXPECT_FALSE(cache.Lookup(key(1), stamp, &out));  // B was the victim
  EXPECT_TRUE(cache.Lookup(key(2), stamp, &out));   // C survived
  EXPECT_TRUE(cache.Lookup(key(3), stamp, &out));   // D admitted
}

TEST(PlanCacheClockTest, AdmissionRefusesOneShotScanOverHotResidents) {
  // Fill a 2-slot ring with keys probed repeatedly (hot), then stream a
  // sequence of never-repeated keys at it. Each one-shot newcomer loses
  // the admission duel (sketch frequency 1 vs the residents'), so the
  // hot working set survives the scan untouched.
  int keys[12] = {};
  auto key = [&](int i) { return serve::QueryKey{&keys[i], &keys[i]}; };
  const serve::PlanStamp stamp{1, 7, 99};
  core::PreparedQuery plan;
  plan.hypothesis_version = stamp.version;

  PlanCache cache(2);
  core::PreparedQuery out;
  for (int i = 0; i < 2; ++i) {
    for (int probe = 0; probe < 4; ++probe) cache.Lookup(key(i), stamp, &out);
    cache.Insert(key(i), stamp, plan);
  }
  for (int i = 2; i < 12; ++i) {
    EXPECT_FALSE(cache.Lookup(key(i), stamp, &out));
    cache.Insert(key(i), stamp, plan);
  }
  EXPECT_EQ(cache.stats().admission_rejected, 10);
  EXPECT_EQ(cache.stats().evicted, 0);
  EXPECT_TRUE(cache.Lookup(key(0), stamp, &out));
  EXPECT_TRUE(cache.Lookup(key(1), stamp, &out));
}

TEST_F(FrontendTest, SubmitAfterShutdownResolvesWithTypedError) {
  erm::NonPrivateOracle oracle;
  serve::PmwService service(dataset_.get(), &oracle, PracticalOptions(), 3);
  Dispatcher dispatcher(&service, nullptr, nullptr);
  dispatcher.Shutdown();

  Result<convex::Vec> result =
      dispatcher.Submit("late-analyst", pool_[0]).get().answer;
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(dispatcher.stats().shutdown_rejected, 1);
  // Shutdown is idempotent.
  dispatcher.Shutdown();
}

TEST_F(FrontendTest, ExpiredDeadlineResolvesTypedAtZeroPrivacyCost) {
  erm::NoisyGradientOracle oracle;
  serve::PmwService service(dataset_.get(), &oracle, PracticalOptions(), 21);
  QuotaOptions quota_options;
  quota_options.per_analyst_queries = 4;
  QuotaManager quota(&service, quota_options);
  Dispatcher dispatcher(&service, &quota, nullptr);
  AnalystSession session(&dispatcher, "deadline-analyst");

  // Warm the mechanism so the ledger is non-trivial before the expiry.
  ASSERT_TRUE(session.Submit(pool_[0]).get().answer.ok());
  const int events_before = service.mechanism().ledger().event_count();
  const dp::PrivacyParams spent_before =
      service.mechanism().ledger().BasicTotal();
  const long long answered_before = service.mechanism().queries_answered();
  const long long admitted_before = quota.admitted("deadline-analyst");

  // A deadline already in the past when the dispatcher pops the request:
  // it expires in-queue with the typed taxonomy error.
  const auto already_expired =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  Result<convex::Vec> late =
      session.Submit(pool_[1], nullptr, already_expired).get().answer;
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(api::ClassifyStatus(late.status()),
            api::ErrorCode::kDeadlineExpired);

  // ...at zero privacy cost: the mechanism never saw the query (no
  // ledger event, no k-query slot) and the quota slot was refunded.
  EXPECT_EQ(service.mechanism().ledger().event_count(), events_before);
  EXPECT_EQ(service.mechanism().ledger().BasicTotal().epsilon,
            spent_before.epsilon);
  EXPECT_EQ(service.mechanism().ledger().BasicTotal().delta,
            spent_before.delta);
  EXPECT_EQ(service.mechanism().queries_answered(), answered_before);
  EXPECT_EQ(quota.admitted("deadline-analyst"), admitted_before);
  EXPECT_EQ(dispatcher.stats().deadline_expired, 1);

  // A roomy deadline serves normally (and still counts one expiry only).
  const auto roomy =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  EXPECT_TRUE(session.Submit(pool_[2], nullptr, roomy).get().answer.ok());
  dispatcher.Shutdown();
  EXPECT_EQ(dispatcher.stats().deadline_expired, 1);
}

// Regression pin for the refund audit in dispatcher.cc: the two
// quota_->Refund sites (Push-failed-at-shutdown, deadline sweep) are
// mutually exclusive per request, so each expiry hands back exactly ONE
// slot. The analyst starts warm (admitted > 0), so a double refund could
// not hide behind QuotaManager::Refund's saturation at zero — it would
// free slots the analyst never got back legitimately and the final
// kQuotaExceeded expectation below would not fire.
TEST_F(FrontendTest, DeadlineExpiryRefundsExactlyOneQuotaSlot) {
  erm::NoisyGradientOracle oracle;
  serve::PmwService service(dataset_.get(), &oracle, PracticalOptions(), 31);
  QuotaOptions quota_options;
  quota_options.per_analyst_queries = 4;
  QuotaManager quota(&service, quota_options);
  Dispatcher dispatcher(&service, &quota, nullptr);
  AnalystSession session(&dispatcher, "refund-analyst");

  // Warm the quota ledger: two served queries leave admitted == 2.
  ASSERT_TRUE(session.Submit(pool_[0]).get().answer.ok());
  ASSERT_TRUE(session.Submit(pool_[1]).get().answer.ok());
  ASSERT_EQ(quota.admitted("refund-analyst"), 2);

  // Three sequential expiries. Each .get() forces the sweep (and its
  // refund) to complete before the next Submit admits, so admitted
  // oscillates 2 -> 3 -> 2 and never trips the quota of 4.
  for (int i = 0; i < 3; ++i) {
    const auto already_expired =
        std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
    Result<convex::Vec> late =
        session.Submit(pool_[2 + i], nullptr, already_expired).get().answer;
    ASSERT_FALSE(late.ok());
    EXPECT_EQ(api::ClassifyStatus(late.status()),
              api::ErrorCode::kDeadlineExpired);
    EXPECT_EQ(quota.admitted("refund-analyst"), 2)
        << "expiry #" << i << " did not refund exactly one slot";
  }
  EXPECT_EQ(dispatcher.stats().deadline_expired, 3);
  EXPECT_EQ(quota.total_admitted(), 2);

  // Exactly two slots remain: two more serves fill the quota of 4, and
  // the fifth admission is the typed quota rejection. A double refund
  // anywhere above would have left extra slots and this would serve.
  EXPECT_TRUE(session.Submit(pool_[5]).get().answer.ok());
  EXPECT_TRUE(session.Submit(pool_[6]).get().answer.ok());
  Result<convex::Vec> over = session.Submit(pool_[7]).get().answer;
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(api::ClassifyStatus(over.status()),
            api::ErrorCode::kQuotaExceeded);
  EXPECT_EQ(quota.admitted("refund-analyst"), 4);
}

TEST_F(FrontendTest, BackpressureOnTinyQueueStillServesEverything) {
  erm::NonPrivateOracle oracle;
  serve::ServeOptions serve_options;
  serve_options.num_threads = 2;
  serve::PmwService service(dataset_.get(), &oracle, PracticalOptions(), 11,
                            serve_options);
  PlanCache cache;
  DispatcherOptions options;
  options.queue_capacity = 2;  // producers must block and retry
  options.max_batch = 4;
  options.max_wait = std::chrono::microseconds(200);
  Dispatcher dispatcher(&service, nullptr, &cache, options);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> analysts;
  for (int a = 0; a < kThreads; ++a) {
    analysts.emplace_back([this, a, &dispatcher, &ok_count] {
      AnalystSession session(&dispatcher, "burst-" + std::to_string(a));
      for (int j = 0; j < kPerThread; ++j) {
        Result<convex::Vec> answer =
            session
                .Submit(pool_[static_cast<size_t>(a + j) % pool_.size()])
                .get()
                .answer;
        if (answer.ok()) ok_count.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : analysts) t.join();
  dispatcher.Shutdown();

  EXPECT_EQ(ok_count.load(), kThreads * kPerThread);
  EXPECT_EQ(service.stats().queries, kThreads * kPerThread);
}

}  // namespace
}  // namespace frontend
}  // namespace pmw
