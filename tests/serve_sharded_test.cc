// Transcript-equivalence harness for the domain-sharded PMW engine.
//
// PR 5 partitions the hypothesis into K domain shards behind one router
// (serve::ShardRouter drives per-shard MW-update work over the worker
// pool). The contract is the same one every serving layer before it
// carried, now over a strictly larger configuration space: at ANY
// (shards x threads x batch size), the externally visible transcript —
// per-query answers (values and error codes, positionally) and the
// privacy ledger (event labels, parameters, commit order) — is
// bit-identical to running sequential PmwCm under the same seed. These
// tests check that property-style over random datasets, shards {1, 2, 4}
// x threads {1, 4} x batch sizes, with the randomized private oracle in
// the loop; the TSan CI job rebuilds this binary to keep the data-race
// side of the argument honest.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/pmw_cm.h"
#include "data/binary_universe.h"
#include "data/generators.h"
#include "erm/noisy_gradient_oracle.h"
#include "gtest/gtest.h"
#include "losses/loss_family.h"
#include "serve/pmw_service.h"

namespace pmw {
namespace serve {
namespace {

struct Transcript {
  std::vector<Result<convex::Vec>> answers;
  std::string ledger_report;
  int update_count = 0;
  long long queries_answered = 0;
  bool halted = false;
};

/// The sequential ground truth: plain PmwCm (single shard, no pool),
/// one query at a time.
Transcript RunSequential(const data::Dataset& dataset,
                         const core::PmwOptions& options, uint64_t seed,
                         const std::vector<convex::CmQuery>& workload) {
  erm::NoisyGradientOracle oracle;
  core::PmwCm cm(&dataset, &oracle, options, seed);
  Transcript t;
  for (const convex::CmQuery& query : workload) {
    Result<core::PmwAnswer> answer = cm.AnswerQuery(query);
    if (answer.ok()) {
      t.answers.push_back(std::move(answer.value().theta));
    } else {
      t.answers.push_back(answer.status());
    }
  }
  t.ledger_report = cm.ledger().Report();
  t.update_count = cm.update_count();
  t.queries_answered = cm.queries_answered();
  t.halted = cm.halted();
  return t;
}

/// The system under test: sharded service at (num_shards, num_threads),
/// feeding the workload through in batches of `batch_size`.
Transcript RunSharded(const data::Dataset& dataset,
                      const core::PmwOptions& options, uint64_t seed,
                      const std::vector<convex::CmQuery>& workload,
                      int num_shards, int num_threads, size_t batch_size) {
  erm::NoisyGradientOracle oracle;
  ServeOptions serve_options;
  serve_options.num_threads = num_threads;
  serve_options.num_shards = num_shards;
  PmwService service(&dataset, &oracle, options, seed, serve_options);
  EXPECT_EQ(service.num_shards(), num_shards)
      << "power-of-two shard counts within the universe must stick";
  Transcript t;
  for (size_t start = 0; start < workload.size(); start += batch_size) {
    size_t count = std::min(batch_size, workload.size() - start);
    std::span<const convex::CmQuery> batch(&workload[start], count);
    for (auto& result : service.AnswerBatch(batch)) {
      t.answers.push_back(std::move(result));
    }
  }
  t.ledger_report = service.mechanism().ledger().Report();
  t.update_count = service.mechanism().update_count();
  t.queries_answered = service.mechanism().queries_answered();
  t.halted = service.mechanism().halted();
  return t;
}

/// Like RunSharded, but with span recording toggled and — when
/// `scrape` — a concurrent scraper thread hammering the registry
/// exposition and the registry-backed stats snapshot the whole run.
/// Observability must never touch the transcript, so the result must be
/// bit-identical to every other configuration.
Transcript RunShardedObserved(const data::Dataset& dataset,
                              const core::PmwOptions& options, uint64_t seed,
                              const std::vector<convex::CmQuery>& workload,
                              int num_shards, int num_threads,
                              size_t batch_size, bool record_spans,
                              bool scrape) {
  erm::NoisyGradientOracle oracle;
  ServeOptions serve_options;
  serve_options.num_threads = num_threads;
  serve_options.num_shards = num_shards;
  serve_options.record_spans = record_spans;
  PmwService service(&dataset, &oracle, options, seed, serve_options);

  std::atomic<bool> stop{false};
  std::thread scraper;
  if (scrape) {
    scraper = std::thread([&service, &stop] {
      while (!stop.load(std::memory_order_acquire)) {
        EXPECT_FALSE(service.registry().TextExposition().empty());
        const ServeStats snapshot = service.stats_snapshot();
        EXPECT_GE(snapshot.queries, 0);
      }
    });
  }

  Transcript t;
  std::vector<QueryOutcome> outcomes;
  for (size_t start = 0; start < workload.size(); start += batch_size) {
    size_t count = std::min(batch_size, workload.size() - start);
    std::span<const convex::CmQuery> batch(&workload[start], count);
    std::vector<Result<convex::Vec>> results =
        service.AnswerBatch(batch, {}, &outcomes);
    EXPECT_EQ(outcomes.size(), count);
    for (size_t j = 0; j < results.size(); ++j) {
      if (!record_spans) {
        // Spans off: every timing must be exactly zero, not "small".
        EXPECT_EQ(outcomes[j].prepare_us, 0u);
        EXPECT_EQ(outcomes[j].commit_us, 0u);
        EXPECT_TRUE(outcomes[j].shard_us.empty());
      }
      t.answers.push_back(std::move(results[j]));
    }
  }
  if (scrape) {
    stop.store(true, std::memory_order_release);
    scraper.join();
  }
  t.ledger_report = service.mechanism().ledger().Report();
  t.update_count = service.mechanism().update_count();
  t.queries_answered = service.mechanism().queries_answered();
  t.halted = service.mechanism().halted();

  // The registry view agrees with the writer-local counters once the
  // writer quiesces.
  const ServeStats snapshot = service.stats_snapshot();
  EXPECT_EQ(snapshot.queries, service.stats().queries);
  EXPECT_EQ(snapshot.updates, service.stats().updates);
  EXPECT_EQ(snapshot.batches, service.stats().batches);
  return t;
}

void ExpectIdentical(const Transcript& got, const Transcript& want,
                     const std::string& context) {
  ASSERT_EQ(got.answers.size(), want.answers.size()) << context;
  for (size_t j = 0; j < want.answers.size(); ++j) {
    ASSERT_EQ(got.answers[j].ok(), want.answers[j].ok())
        << context << " status diverged at query " << j;
    if (!want.answers[j].ok()) {
      EXPECT_EQ(got.answers[j].status().code(),
                want.answers[j].status().code())
          << context << " error code diverged at query " << j;
      continue;
    }
    const convex::Vec& g = *got.answers[j];
    const convex::Vec& w = *want.answers[j];
    ASSERT_EQ(g.size(), w.size()) << context << " at query " << j;
    for (size_t i = 0; i < w.size(); ++i) {
      // Exact, not NEAR: the claim is bit-identical transcripts.
      EXPECT_EQ(g[i], w[i])
          << context << " query " << j << " coordinate " << i;
    }
  }
  EXPECT_EQ(got.ledger_report, want.ledger_report) << context;
  EXPECT_EQ(got.update_count, want.update_count) << context;
  EXPECT_EQ(got.queries_answered, want.queries_answered) << context;
  EXPECT_EQ(got.halted, want.halted) << context;
}

core::PmwOptions PracticalOptions() {
  core::PmwOptions options;
  options.alpha = 0.15;
  options.beta = 0.05;
  options.privacy = {2.0, 1e-6};
  options.scale = 2.0;
  options.max_queries = 400;
  options.override_updates = 12;
  return options;
}

/// One randomized scenario per seed, same shape as serve_parallel_test:
/// a logistic-model dataset drawn from the seed and a query mix cycling
/// a pool of Lipschitz losses plus fresh one-offs.
class ServeShardedPropertyTest : public ::testing::TestWithParam<int> {
 protected:
  ServeShardedPropertyTest() : universe_(3), family_(3) {
    Rng rng(5000 + static_cast<uint64_t>(GetParam()));
    std::vector<double> theta_star, biases;
    for (int d = 0; d < 3; ++d) {
      theta_star.push_back(rng.Uniform(-1.0, 1.0));
      biases.push_back(rng.Uniform(0.3, 0.7));
    }
    dist_ = std::make_unique<data::Histogram>(data::LogisticModelDistribution(
        universe_, theta_star, biases, rng.Uniform(0.2, 0.4)));
    dataset_ = std::make_unique<data::Dataset>(
        data::RoundedDataset(universe_, *dist_, 60000));

    Rng query_rng(6000 + static_cast<uint64_t>(GetParam()));
    std::vector<convex::CmQuery> pool = family_.Generate(10, &query_rng);
    for (int j = 0; j < 48; ++j) {
      workload_.push_back(pool[static_cast<size_t>(j) % pool.size()]);
    }
    for (convex::CmQuery& one_off : family_.Generate(12, &query_rng)) {
      workload_.push_back(one_off);
    }
  }

  data::LabeledHypercubeUniverse universe_;
  losses::LipschitzFamily family_;
  std::unique_ptr<data::Histogram> dist_;
  std::unique_ptr<data::Dataset> dataset_;
  std::vector<convex::CmQuery> workload_;
};

TEST_P(ServeShardedPropertyTest, TranscriptMatchesSequentialEverywhere) {
  const uint64_t seed = 9900 + static_cast<uint64_t>(GetParam());
  Transcript want =
      RunSequential(*dataset_, PracticalOptions(), seed, workload_);
  // The workload must actually exercise the sharded MW-update path.
  EXPECT_GT(want.update_count, 0) << "scenario never fired an update";

  for (int shards : {1, 2, 4}) {
    for (int threads : {1, 4}) {
      for (size_t batch : {size_t{1}, size_t{7}, size_t{32}}) {
        Transcript got =
            RunSharded(*dataset_, PracticalOptions(), seed, workload_,
                       shards, threads, batch);
        ExpectIdentical(got, want,
                        "shards=" + std::to_string(shards) +
                            " threads=" + std::to_string(threads) +
                            " batch=" + std::to_string(batch));
      }
    }
  }
}

TEST_P(ServeShardedPropertyTest, HaltTranscriptsMatchUnderShards) {
  // A tiny update budget forces a mid-workload halt; the sharded engine
  // must fail the same queries with the same codes at every shard count,
  // and must not burn updates the sequential mechanism didn't.
  core::PmwOptions options = PracticalOptions();
  options.override_updates = 2;
  const uint64_t seed = 7700 + static_cast<uint64_t>(GetParam());

  Transcript want = RunSequential(*dataset_, options, seed, workload_);
  for (int shards : {2, 4}) {
    Transcript got = RunSharded(*dataset_, options, seed, workload_,
                                shards, 4, 16);
    ExpectIdentical(got, want, "halt shards=" + std::to_string(shards));
  }
}

TEST_P(ServeShardedPropertyTest, ObservabilityNeverTouchesTheTranscript) {
  // The PR 8 invariant: span recording on/off, with a scraper thread
  // reading the registry and the registry-backed stats snapshot the
  // whole run, never changes answers, the ledger, or commit order.
  const uint64_t seed = 8800 + static_cast<uint64_t>(GetParam());
  Transcript want =
      RunSequential(*dataset_, PracticalOptions(), seed, workload_);
  EXPECT_GT(want.update_count, 0) << "scenario never fired an update";

  for (const bool record_spans : {false, true}) {
    for (const bool scrape : {false, true}) {
      Transcript got = RunShardedObserved(
          *dataset_, PracticalOptions(), seed, workload_, /*num_shards=*/4,
          /*num_threads=*/4, /*batch_size=*/16, record_spans, scrape);
      ExpectIdentical(got, want,
                      std::string("spans=") + (record_spans ? "on" : "off") +
                          " scraper=" + (scrape ? "on" : "off"));
    }
  }
}

TEST_P(ServeShardedPropertyTest, SpansDecomposeTheCommit) {
  // With spans on, hard rounds report a commit that contains its solve
  // and MW halves, and (at shards > 1) per-shard MW durations sized to
  // the topology.
  const uint64_t seed = 9900 + static_cast<uint64_t>(GetParam());
  erm::NoisyGradientOracle oracle;
  ServeOptions serve_options;
  serve_options.num_threads = 4;
  serve_options.num_shards = 4;
  PmwService service(dataset_.get(), &oracle, PracticalOptions(), seed,
                     serve_options);
  std::vector<QueryOutcome> outcomes;
  std::vector<Result<convex::Vec>> results =
      service.AnswerBatch(workload_, {}, &outcomes);
  ASSERT_EQ(outcomes.size(), workload_.size());
  int hard_rounds = 0;
  for (size_t j = 0; j < outcomes.size(); ++j) {
    if (!results[j].ok()) continue;
    const QueryOutcome& outcome = outcomes[j];
    if (!outcome.hard_round) {
      EXPECT_EQ(outcome.solve_us, 0u) << "soft round solved at query " << j;
      EXPECT_TRUE(outcome.shard_us.empty());
      continue;
    }
    ++hard_rounds;
    EXPECT_GE(outcome.commit_us, outcome.solve_us + outcome.mw_us)
        << "commit smaller than its parts at query " << j;
    EXPECT_EQ(outcome.shard_us.size(),
              static_cast<size_t>(service.num_shards()))
        << "per-shard MW timings missing at query " << j;
  }
  EXPECT_GT(hard_rounds, 0) << "scenario never fired a hard round";
}

INSTANTIATE_TEST_SUITE_P(RandomScenarios, ServeShardedPropertyTest,
                         ::testing::Range(0, 3));

TEST(ServeShardedTest, ShardCountClampsAndReportsInStats) {
  data::LabeledHypercubeUniverse universe(3);  // |X| = 16
  data::Histogram dist = data::LogisticModelDistribution(
      universe, {1.0, -0.8, 0.5}, {0.7, 0.4, 0.5}, 0.25);
  data::Dataset dataset = data::RoundedDataset(universe, dist, 60000);
  erm::NoisyGradientOracle oracle;

  ServeOptions serve_options;
  serve_options.num_threads = 2;
  serve_options.num_shards = 3;  // rounds down to 2
  PmwService rounded(&dataset, &oracle, PracticalOptions(), 1,
                     serve_options);
  EXPECT_EQ(rounded.num_shards(), 2);
  EXPECT_EQ(rounded.stats().shards, 2);

  serve_options.num_shards = 64;  // clamps to |X| = 16
  PmwService clamped(&dataset, &oracle, PracticalOptions(), 1,
                     serve_options);
  EXPECT_EQ(clamped.num_shards(), 16);
}

TEST(ServeShardedTest, RouterFansMwUpdateWorkAcrossThePool) {
  data::LabeledHypercubeUniverse universe(3);
  data::Histogram dist = data::LogisticModelDistribution(
      universe, {1.0, -0.8, 0.5}, {0.7, 0.4, 0.5}, 0.25);
  data::Dataset dataset = data::RoundedDataset(universe, dist, 60000);

  losses::LipschitzFamily family(3);
  Rng rng(5);
  std::vector<convex::CmQuery> workload = family.Generate(24, &rng);

  erm::NoisyGradientOracle oracle;
  ServeOptions serve_options;
  serve_options.num_threads = 4;
  serve_options.num_shards = 4;
  PmwService service(&dataset, &oracle, PracticalOptions(), 42,
                     serve_options);
  service.AnswerBatch(workload);

  const ServeStats& stats = service.stats();
  ASSERT_GT(stats.updates, 0) << "workload never fired a hard round";
  EXPECT_EQ(stats.mw_updates, stats.updates);
  EXPECT_GE(stats.mw_update_ms, 0.0);
  // 4 parallel sections per update: payoff + three reweigh phases.
  EXPECT_EQ(service.router().sections(), 4 * stats.updates);
  EXPECT_EQ(service.router().shard_tasks(),
            4 * stats.updates * (service.num_shards() - 1));
  // The epoch publishes per-shard slice views that tile the support.
  std::shared_ptr<const Epoch> epoch = service.epochs().Current();
  ASSERT_NE(epoch, nullptr);
  ASSERT_EQ(epoch->shards.size(), 4u);
  size_t stitched = 0;
  for (const Epoch::ShardSlice& slice : epoch->shards) {
    stitched += slice.support.size();
  }
  EXPECT_EQ(stitched, epoch->snapshot->support.size());
  EXPECT_EQ(epoch->shard_fingerprint,
            service.mechanism().shard_fingerprint());
}

}  // namespace
}  // namespace serve
}  // namespace pmw
