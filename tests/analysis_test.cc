// Tests for the Table 1 bound calculators: formula spot checks, the
// monotonicities the paper's narrative relies on (log k vs sqrt k), and
// the Section 4.1 crossover.

#include <cmath>

#include "analysis/bounds.h"
#include "gtest/gtest.h"

namespace pmw {
namespace analysis {
namespace {

BoundParams Base() {
  BoundParams p;
  p.alpha = 0.1;
  p.beta = 0.05;
  p.privacy = {1.0, 1e-6};
  p.log_universe = std::log(1024.0);
  p.dim = 8;
  p.k = 1000;
  p.sigma = 0.5;
  p.scale = 2.0;
  return p;
}

TEST(SingleQueryBoundsTest, FormulaSpotChecks) {
  BoundParams p = Base();
  EXPECT_NEAR(LinearSingleQueryN(p), 10.0, 1e-9);
  EXPECT_NEAR(LipschitzSingleQueryN(p), std::sqrt(8.0) / 0.1, 1e-9);
  EXPECT_NEAR(GlmSingleQueryN(p), 100.0, 1e-9);
  EXPECT_NEAR(StronglyConvexSingleQueryN(p),
              std::sqrt(8.0) / (std::sqrt(0.5) * 0.1), 1e-9);
}

TEST(SingleQueryBoundsTest, LipschitzGrowsWithSqrtD) {
  BoundParams p = Base();
  p.dim = 4;
  double n4 = LipschitzSingleQueryN(p);
  p.dim = 16;
  double n16 = LipschitzSingleQueryN(p);
  EXPECT_NEAR(n16 / n4, 2.0, 1e-9);
}

TEST(SingleQueryBoundsTest, GlmIndependentOfD) {
  BoundParams p = Base();
  p.dim = 4;
  double n4 = GlmSingleQueryN(p);
  p.dim = 400;
  EXPECT_NEAR(GlmSingleQueryN(p), n4, 1e-9);
}

TEST(KQueryBoundsTest, GrowOnlyLogarithmicallyInK) {
  BoundParams p = Base();
  p.k = 100;
  double n_small = LipschitzKQueriesN(p);
  p.k = 100000;  // 1000x more queries
  double n_large = LipschitzKQueriesN(p);
  EXPECT_LT(n_large / n_small, 3.0);
}

TEST(KQueryBoundsTest, CompositionGrowsAsSqrtK) {
  // In the strong-composition regime (k above ~8 log(2/delta)), the
  // requirement grows like sqrt(k).
  BoundParams p = Base();
  double single = LipschitzSingleQueryN(p);
  p.k = 1e4;
  double n_small = CompositionKQueriesN(p, single);
  p.k = 1e6;
  double n_large = CompositionKQueriesN(p, single);
  EXPECT_NEAR(n_large / n_small, 10.0, 1e-6);
}

TEST(KQueryBoundsTest, CompositionUsesBasicForTinyK) {
  // For very small k, basic composition (factor k) beats the
  // sqrt(8 k log(2/delta)) strong-composition factor.
  BoundParams p = Base();
  double single = LipschitzSingleQueryN(p);
  p.k = 2;
  EXPECT_NEAR(CompositionKQueriesN(p, single), 2.0 * single, 1e-9);
}

TEST(KQueryBoundsTest, StronglyConvexImprovesWithSigma) {
  BoundParams p = Base();
  p.k = 4;  // make the first max() term bind
  p.sigma = 0.1;
  double n_weak = StronglyConvexKQueriesN(p);
  p.sigma = 1.0;
  double n_strong = StronglyConvexKQueriesN(p);
  EXPECT_LT(n_strong, n_weak);
}

TEST(KQueryBoundsTest, AllRowsIncreaseAsAlphaShrinks) {
  BoundParams coarse = Base();
  BoundParams fine = Base();
  fine.alpha = 0.01;
  EXPECT_GT(LinearKQueriesN(fine), LinearKQueriesN(coarse));
  EXPECT_GT(LipschitzKQueriesN(fine), LipschitzKQueriesN(coarse));
  EXPECT_GT(GlmKQueriesN(fine), GlmKQueriesN(coarse));
  EXPECT_GT(StronglyConvexKQueriesN(fine), StronglyConvexKQueriesN(coarse));
}

TEST(TheoremBoundsTest, Theorem38TakesMaxWithOracleN) {
  BoundParams p = Base();
  double pmw_term = Theorem38N(p, 0.0);
  EXPECT_NEAR(Theorem38N(p, pmw_term * 10.0), pmw_term * 10.0, 1e-9);
  EXPECT_NEAR(Theorem38N(p, 1.0), pmw_term, 1e-9);
}

TEST(TheoremBoundsTest, Theorem31MatchesPrintedConstant) {
  BoundParams p = Base();
  double t = 16.0;
  double expected = 256.0 * 2.0 * std::sqrt(16.0 * std::log(2.0 / 1e-6)) *
                    std::log(4.0 * 1000.0 / 0.05) / (1.0 * 0.1);
  EXPECT_NEAR(Theorem31N(p, t), expected, 1e-6);
}

TEST(TheoremBoundsTest, Figure3TMatchesFormula) {
  BoundParams p = Base();
  EXPECT_NEAR(Figure3UpdateBudget(p),
              64.0 * 4.0 * p.log_universe / 0.01, 1e-6);
}

TEST(CrossoverTest, ExistsAndIsFinite) {
  BoundParams p = Base();
  double single = LipschitzSingleQueryN(p);
  double k_star = CrossoverK(p, single);
  EXPECT_GT(k_star, 1.0);
  // Beyond the crossover, PMW requires less data than composition.
  BoundParams at_k = p;
  at_k.k = k_star * 4;
  EXPECT_LT(Theorem38N(at_k, single), CompositionKQueriesN(at_k, single));
}

TEST(CrossoverTest, BeforeCrossoverCompositionWins) {
  BoundParams p = Base();
  double single = LipschitzSingleQueryN(p);
  BoundParams at_2 = p;
  at_2.k = 2;
  EXPECT_GT(Theorem38N(at_2, single), CompositionKQueriesN(at_2, single));
}

}  // namespace
}  // namespace analysis
}  // namespace pmw
