// Reproducibility guarantees: every stochastic component must produce an
// identical transcript when re-run with the same seed, and a different
// one with a different seed. Experiments in EXPERIMENTS.md rely on this.

#include <cmath>

#include "common/random.h"
#include "core/pmw_cm.h"
#include "core/pmw_linear.h"
#include "core/linear_query.h"
#include "data/binary_universe.h"
#include "data/generators.h"
#include "dp/mechanisms.h"
#include "dp/sparse_vector.h"
#include "erm/noisy_gradient_oracle.h"
#include "gtest/gtest.h"
#include "losses/loss_family.h"

namespace pmw {
namespace {

TEST(DeterminismTest, MechanismNoiseRepeatsUnderSeed) {
  Rng a(77), b(77);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(dp::LaplaceMechanism(1.0, 0.1, 1.0, &a),
              dp::LaplaceMechanism(1.0, 0.1, 1.0, &b));
  }
}

TEST(DeterminismTest, SparseVectorTranscriptRepeats) {
  dp::SparseVector::Options options;
  options.max_top_answers = 4;
  options.alpha = 0.2;
  options.sensitivity = 0.01;
  options.privacy = {1.0, 1e-6};
  dp::SparseVector a(options, 99), b(options, 99), c(options, 100);
  int disagreements_same = 0, disagreements_diff = 0;
  for (int i = 0; i < 100 && !a.halted() && !b.halted() && !c.halted();
       ++i) {
    double value = (i % 7 == 0) ? 0.25 : 0.05;
    auto ra = a.Process(value);
    auto rb = b.Process(value);
    auto rc = c.Process(value);
    if (!ra.ok() || !rb.ok() || !rc.ok()) break;
    if (*ra != *rb) ++disagreements_same;
    if (*ra != *rc) ++disagreements_diff;
  }
  EXPECT_EQ(disagreements_same, 0);
  (void)disagreements_diff;  // may or may not differ; just must not crash
}

TEST(DeterminismTest, FamilyGenerationRepeats) {
  losses::LipschitzFamily fam_a(4), fam_b(4);
  Rng ra(5), rb(5);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(fam_a.Next(&ra).label, fam_b.Next(&rb).label);
  }
}

TEST(DeterminismTest, NoisyGradientOracleRepeats) {
  data::LabeledHypercubeUniverse universe(3);
  data::Histogram dist = data::LogisticModelDistribution(
      universe, {1.0, -0.5, 0.2}, {0.5, 0.5, 0.5}, 0.3);
  data::Dataset dataset = data::RoundedDataset(universe, dist, 5000);
  losses::LogisticLoss loss(3);
  convex::L2Ball ball(3);
  convex::CmQuery query{&loss, &ball, "q"};
  erm::NoisyGradientOracle oracle;
  erm::OracleContext context;
  context.privacy = {1.0, 1e-6};
  Rng ra(31), rb(31);
  auto a = oracle.Solve(query, dataset, context, &ra);
  auto b = oracle.Solve(query, dataset, context, &rb);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t j = 0; j < a.value().size(); ++j) {
    EXPECT_EQ(a.value()[j], b.value()[j]);
  }
}

TEST(DeterminismTest, FullPmwTranscriptRepeats) {
  data::LabeledHypercubeUniverse universe(3);
  data::Histogram dist = data::LogisticModelDistribution(
      universe, {1.0, -0.8, 0.5}, {0.7, 0.4, 0.5}, 0.25);
  data::Dataset dataset = data::RoundedDataset(universe, dist, 100000);

  auto run = [&](uint64_t seed) {
    erm::NoisyGradientOracle oracle;
    core::PmwOptions options;
    options.alpha = 0.15;
    options.privacy = {2.0, 1e-6};
    options.override_updates = 12;
    options.max_queries = 40;
    core::PmwCm mechanism(&dataset, &oracle, options, seed);
    losses::LipschitzFamily family(3);
    Rng rng(17);
    std::vector<double> transcript;
    for (int j = 0; j < 40; ++j) {
      auto answer = mechanism.AnswerQuery(family.Next(&rng));
      if (!answer.ok()) break;
      for (double x : answer.value().theta) transcript.push_back(x);
      transcript.push_back(answer.value().was_update ? 1.0 : 0.0);
    }
    return transcript;
  };

  std::vector<double> first = run(777);
  std::vector<double> second = run(777);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) EXPECT_EQ(first[i], second[i]);

  std::vector<double> other = run(778);
  bool identical = other.size() == first.size();
  if (identical) {
    for (size_t i = 0; i < first.size(); ++i) {
      if (first[i] != other[i]) {
        identical = false;
        break;
      }
    }
  }
  EXPECT_FALSE(identical) << "different seeds must yield different noise";
}

TEST(DeterminismTest, PmwLinearTranscriptRepeats) {
  data::LabeledHypercubeUniverse universe(4);
  data::Histogram dist = data::ProductDistribution(
      universe, {0.7, 0.4, 0.5, 0.6}, 0.6);
  data::Dataset dataset = data::RoundedDataset(universe, dist, 100000);
  Rng qrng(9);
  auto queries = core::RandomConjunctionQueries(universe, 30, 2, true, &qrng);
  auto run = [&](uint64_t seed) {
    core::PmwLinearOptions options;
    options.alpha = 0.1;
    options.privacy = {1.0, 1e-6};
    options.override_updates = 10;
    core::PmwLinear mechanism(&dataset, options, seed);
    std::vector<double> out;
    for (const auto& q : queries) {
      auto a = mechanism.AnswerQuery(q);
      if (!a.ok()) break;
      out.push_back(a.value().value);
    }
    return out;
  };
  EXPECT_EQ(run(321), run(321));
}

}  // namespace
}  // namespace pmw
