// Acceptance tests for the pmw::api front door (src/api/):
//
//   (a) End-to-end transcript equivalence THROUGH THE WIRE: N client
//       threads, each on its own SocketTransport connection, drive a
//       SocketServer -> ServerEndpoint -> Dispatcher -> PmwService; the
//       endpoint's recorded arrival log is replayed through sequential
//       core::PmwCm under the same seed, and answers + the privacy
//       ledger must be bit-identical. The codec, the socket loops, the
//       queue, and the sharded service may only ever change wall-clock.
//   (b) The error taxonomy is lossless: every Status the lower layers
//       emit classifies to exactly one ErrorCode, canonical statuses
//       round-trip exactly, and protocol-level rejections (unknown
//       query, version mismatch, quota) are typed and cost zero privacy.
//   (c) Serving metadata rides along: epochs, hard/soft rounds,
//       cache-hit flags, and the remaining-budget view are consistent
//       with the mechanism's own accounting.
//
// The TSan CI job rebuilds this binary: the socket reader/writer threads
// and the deferred envelope assembly run under the race detector.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <future>
#include <map>
#include <mutex>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/catalog.h"
#include "api/client.h"
#include "api/codec.h"
#include "api/endpoint.h"
#include "api/envelope.h"
#include "api/error.h"
#include "api/in_process_transport.h"
#include "api/socket_transport.h"
#include "core/pmw_cm.h"
#include "data/binary_universe.h"
#include "data/generators.h"
#include "erm/noisy_gradient_oracle.h"
#include "gtest/gtest.h"

namespace pmw {
namespace api {
namespace {

core::PmwOptions PracticalOptions() {
  core::PmwOptions options;
  options.alpha = 0.15;
  options.beta = 0.05;
  options.privacy = {2.0, 1e-6};
  options.scale = 2.0;
  options.max_queries = 400;
  options.override_updates = 24;
  return options;
}

class ApiTest : public ::testing::Test {
 protected:
  ApiTest() : universe_(3) {
    data::Histogram dist = data::LogisticModelDistribution(
        universe_, {1.0, -0.8, 0.5}, {0.7, 0.4, 0.5}, 0.25);
    dataset_ = std::make_unique<data::Dataset>(
        data::RoundedDataset(universe_, dist, 60000));
    WorkloadSpec spec;
    spec.family = WorkloadSpec::Family::kLipschitz;
    spec.dim = 3;
    names_ = catalog_.Populate(spec, 8, /*seed=*/424242, "lip/");
  }

  ServerOptions DefaultServerOptions() const {
    ServerOptions options;
    options.mechanism = PracticalOptions();
    options.dispatcher.max_batch = 16;
    options.dispatcher.max_wait = std::chrono::microseconds(2000);
    return options;
  }

  data::LabeledHypercubeUniverse universe_;
  QueryCatalog catalog_;
  std::vector<std::string> names_;
  std::unique_ptr<data::Dataset> dataset_;
};

TEST(ApiErrorTest, TaxonomyIsLosslessOverCanonicalStatuses) {
  for (int raw = 0; raw <= static_cast<int>(ErrorCode::kInternal); ++raw) {
    const ErrorCode code = static_cast<ErrorCode>(raw);
    if (code == ErrorCode::kOk) continue;
    const Status status = MakeStatus(code, "detail text");
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(status.code(), LegacyCode(code)) << ErrorCodeName(code);
    // Exact recovery from the canonical tag.
    EXPECT_EQ(ClassifyStatus(status), code) << ErrorCodeName(code);
    // And across a wire round trip of (code, message).
    const Status rebuilt = ToStatus(code, status.message());
    EXPECT_EQ(ClassifyStatus(rebuilt), code) << ErrorCodeName(code);
    EXPECT_EQ(rebuilt.message(), status.message());
  }
  EXPECT_EQ(ClassifyStatus(Status::Ok()), ErrorCode::kOk);
}

TEST(ApiErrorTest, LegacyStatusesClassifyAsDocumented) {
  // What the lower layers emit today, verbatim.
  EXPECT_EQ(ClassifyStatus(
                Status::Halted("pmw-cm: sparse vector exhausted its T updates")),
            ErrorCode::kHalted);
  EXPECT_EQ(ClassifyStatus(
                Status::ResourceExhausted("pmw-cm: k queries already answered")),
            ErrorCode::kBudgetExhausted);
  EXPECT_EQ(ClassifyStatus(Status::ResourceExhausted(
                "quota: analyst 'a' exhausted its 3-query quota")),
            ErrorCode::kQuotaExceeded);
  EXPECT_EQ(ClassifyStatus(Status::InvalidArgument(
                "glm oracle requires a GLM loss")),
            ErrorCode::kMalformedRequest);
  EXPECT_EQ(ClassifyStatus(Status::FailedPrecondition(
                "frontend: dispatcher is shut down")),
            ErrorCode::kShutdown);
  EXPECT_EQ(ClassifyStatus(Status::NotConverged("solver stalled")),
            ErrorCode::kNotConverged);
  EXPECT_EQ(ClassifyStatus(Status::DeadlineExceeded("late")),
            ErrorCode::kDeadlineExpired);
  EXPECT_EQ(ClassifyStatus(Status::Internal("bug")), ErrorCode::kInternal);
}

TEST_F(ApiTest, InProcessCallsMatchSequentialMechanismBitForBit) {
  constexpr uint64_t kSeed = 777;
  erm::NoisyGradientOracle oracle;
  ServerOptions options = DefaultServerOptions();
  ServerEndpoint endpoint(dataset_.get(), &oracle, &catalog_, options,
                          kSeed);
  // verify_codec: every call crosses the real byte format both ways.
  InProcessTransport transport(&endpoint, /*verify_codec=*/true);
  Client client(&transport, "analyst-0");

  erm::NoisyGradientOracle replay_oracle;
  core::PmwCm sequential(dataset_.get(), &replay_oracle,
                         options.mechanism, kSeed);

  for (int j = 0; j < 40; ++j) {
    const std::string& name = names_[static_cast<size_t>(j * 3) %
                                     names_.size()];
    AnswerEnvelope reply = client.Call(name);
    Result<core::PmwAnswer> want =
        sequential.AnswerQuery(*catalog_.Find(name));
    ASSERT_EQ(reply.ok(), want.ok()) << "call " << j;
    if (!want.ok()) {
      EXPECT_EQ(reply.error, ClassifyStatus(want.status()));
      continue;
    }
    ASSERT_EQ(reply.answer.size(), want.value().theta.size());
    for (size_t i = 0; i < reply.answer.size(); ++i) {
      EXPECT_EQ(reply.answer[i], want.value().theta[i])
          << "call " << j << " coord " << i;
    }
    // Serving metadata is consistent with the sequential mechanism.
    EXPECT_EQ(reply.meta.hard_round, want.value().was_update) << j;
    EXPECT_EQ(reply.meta.epoch,
              static_cast<uint64_t>(sequential.hypothesis_version()))
        << j;
    EXPECT_EQ(reply.meta.hard_rounds_remaining,
              sequential.schedule().T - sequential.update_count())
        << j;
    EXPECT_EQ(reply.meta.epsilon_spent,
              sequential.ledger().BasicTotal().epsilon)
        << j;
  }
  endpoint.Shutdown();
  EXPECT_EQ(endpoint.service().mechanism().ledger().Report(),
            sequential.ledger().Report());
  // The verify-codec loopback really produced frames.
  EXPECT_EQ(endpoint.codec_counters().frames_encoded->Value(), 2 * 40);
  EXPECT_EQ(endpoint.codec_counters().frames_decoded->Value(), 2 * 40);
  EXPECT_EQ(endpoint.codec_counters().decode_errors->Value(), 0);
  // And the combined stats table surfaces them.
  const std::string report = endpoint.Report();
  EXPECT_NE(report.find("enc"), std::string::npos);
  EXPECT_NE(report.find("80"), std::string::npos);
}

TEST_F(ApiTest, ProtocolRejectionsAreTypedAndFree) {
  erm::NoisyGradientOracle oracle;
  ServerOptions options = DefaultServerOptions();
  options.quota.per_analyst_queries = 2;
  ServerEndpoint endpoint(dataset_.get(), &oracle, &catalog_, options, 5);
  InProcessTransport transport(&endpoint);
  Client client(&transport, "bounded");

  EXPECT_TRUE(client.Call(names_[0]).ok());
  EXPECT_TRUE(client.Call(names_[1]).ok());
  const int events = endpoint.service().mechanism().ledger().event_count();
  const long long answered =
      endpoint.service().mechanism().queries_answered();

  // Quota: typed, echoes the request id, costs nothing.
  AnswerEnvelope over = client.Call(names_[2]);
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.error, ErrorCode::kQuotaExceeded);
  // Ids are namespaced per client (serial << 32 | sequence); this is the
  // client's third call.
  EXPECT_EQ(over.request_id & 0xffffffffu, 3u);
  EXPECT_NE(over.message.find("quota"), std::string::npos);

  // Unknown catalog name: never admitted, never queued.
  AnswerEnvelope unknown = client.Call("no-such-query");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.error, ErrorCode::kUnknownQuery);

  // Foreign protocol version: rejected before the catalog lookup.
  QueryRequest alien;
  alien.version = 99;
  alien.analyst_id = "bounded";
  alien.request_id = 1234;
  alien.query_name = names_[0];
  AnswerEnvelope mismatched = endpoint.HandleSync(alien);
  ASSERT_FALSE(mismatched.ok());
  EXPECT_EQ(mismatched.error, ErrorCode::kVersionMismatch);
  EXPECT_EQ(mismatched.request_id, 1234u);

  // None of the three rejections touched the mechanism.
  EXPECT_EQ(endpoint.service().mechanism().ledger().event_count(), events);
  EXPECT_EQ(endpoint.service().mechanism().queries_answered(), answered);
  EXPECT_EQ(endpoint.quota().admitted("bounded"), 2);
}

TEST_F(ApiTest, CallBatchMatchesSequentialAndCoalescesFrames) {
  constexpr uint64_t kSeed = 808;
  erm::NoisyGradientOracle oracle;
  ServerOptions options = DefaultServerOptions();
  options.serve.num_shards = 2;
  ServerEndpoint endpoint(dataset_.get(), &oracle, &catalog_, options,
                          kSeed);
  // verify_codec: the batch crosses the real byte format — as ONE frame.
  InProcessTransport transport(&endpoint, /*verify_codec=*/true);
  Client client(&transport, "batcher");

  erm::NoisyGradientOracle replay_oracle;
  core::PmwCm sequential(dataset_.get(), &replay_oracle,
                         options.mechanism, kSeed);

  std::vector<std::string> batch;
  for (int j = 0; j < 6; ++j) {
    batch.push_back(names_[static_cast<size_t>(j) % names_.size()]);
  }
  std::vector<AnswerEnvelope> replies = client.CallBatch(batch);
  ASSERT_EQ(replies.size(), batch.size());
  for (size_t j = 0; j < batch.size(); ++j) {
    const AnswerEnvelope& reply = replies[j];
    Result<core::PmwAnswer> want =
        sequential.AnswerQuery(*catalog_.Find(batch[j]));
    ASSERT_EQ(reply.ok(), want.ok()) << "name " << j;
    if (!want.ok()) continue;
    ASSERT_EQ(reply.answer.size(), want.value().theta.size());
    for (size_t i = 0; i < reply.answer.size(); ++i) {
      // Exact: a batched wire call is just framing, never arithmetic.
      EXPECT_EQ(reply.answer[i], want.value().theta[i])
          << "name " << j << " coord " << i;
    }
    EXPECT_EQ(reply.meta.shards, 2u) << j;
    // Consecutive correlation ids, positionally.
    if (j > 0) {
      EXPECT_EQ(reply.request_id, replies[j - 1].request_id + 1);
    }
  }
  endpoint.Shutdown();
  EXPECT_EQ(endpoint.service().mechanism().ledger().Report(),
            sequential.ledger().Report());
  // One request frame for the whole batch (the syscall the satellite
  // saves) + one answer frame per name.
  EXPECT_EQ(endpoint.codec_counters().frames_encoded->Value(),
            1 + static_cast<long long>(batch.size()));
}

TEST_F(ApiTest, StatsRpcExposesReportAndBudgetView) {
  erm::NoisyGradientOracle oracle;
  ServerOptions options = DefaultServerOptions();
  options.serve.num_shards = 2;
  ServerEndpoint endpoint(dataset_.get(), &oracle, &catalog_, options, 31);
  InProcessTransport transport(&endpoint, /*verify_codec=*/true);
  Client client(&transport, "poller");

  // Drive some traffic so the report has content.
  for (int j = 0; j < 8; ++j) {
    ASSERT_TRUE(client.Call(names_[static_cast<size_t>(j) %
                                   names_.size()]).ok());
  }
  const int events = endpoint.service().mechanism().ledger().event_count();
  const long long answered =
      endpoint.service().mechanism().queries_answered();

  AnswerEnvelope stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.message;
  // The report rode back as the message: dispatcher table + serve table.
  EXPECT_NE(stats.message.find("submitted"), std::string::npos);
  EXPECT_NE(stats.message.find("shards"), std::string::npos);
  // The budget view matches the C++-side accessors.
  EXPECT_EQ(stats.meta.hard_rounds_remaining,
            endpoint.quota().HardRoundsRemaining());
  EXPECT_EQ(stats.meta.epsilon_spent,
            endpoint.service().mechanism().ledger().BasicTotal().epsilon);
  EXPECT_EQ(stats.meta.shards, 2u);
  EXPECT_EQ(stats.meta.epoch,
            static_cast<uint64_t>(
                endpoint.service().mechanism().hypothesis_version()));

  // Stats polls are free: no ledger event, no k-query slot.
  EXPECT_EQ(endpoint.service().mechanism().ledger().event_count(), events);
  EXPECT_EQ(endpoint.service().mechanism().queries_answered(), answered);

  // Version gate applies to stats frames too.
  StatsRequest alien;
  alien.version = 77;
  alien.request_id = 5;
  AnswerEnvelope mismatched = endpoint.HandleStats(alien);
  ASSERT_FALSE(mismatched.ok());
  EXPECT_EQ(mismatched.error, ErrorCode::kVersionMismatch);
  EXPECT_EQ(mismatched.request_id, 5u);
  endpoint.Shutdown();
}

struct ClientOutcome {
  std::string analyst_id;
  uint64_t request_id = 0;
  AnswerEnvelope envelope;
};

TEST_F(ApiTest, SocketTranscriptMatchesSequentialReplayOfArrivalLog) {
  constexpr int kAnalysts = 4;
  constexpr int kCallsPerAnalyst = 30;
  constexpr uint64_t kSeed = 555;

  erm::NoisyGradientOracle oracle;
  ServerOptions options = DefaultServerOptions();
  options.serve.num_threads = 2;
  options.record_arrival_log = true;
  ServerEndpoint endpoint(dataset_.get(), &oracle, &catalog_, options,
                          kSeed);
  const std::string path =
      "/tmp/pmw_api_test_" + std::to_string(::getpid()) + ".sock";
  SocketServer server(&endpoint, path);
  ASSERT_TRUE(server.Start().ok());

  // Each analyst drives its own connection, closed-loop, from its own
  // thread; the MPSC queue behind the endpoint fixes the interleaving
  // and the arrival log records it.
  std::mutex outcomes_mutex;
  std::vector<ClientOutcome> outcomes;
  std::vector<std::thread> analysts;
  for (int a = 0; a < kAnalysts; ++a) {
    analysts.emplace_back([this, a, &path, &outcomes_mutex, &outcomes] {
      SocketTransport transport(path);
      ASSERT_TRUE(transport.status().ok())
          << transport.status().ToString();
      Client client(&transport, "analyst-" + std::to_string(a));
      for (int j = 0; j < kCallsPerAnalyst; ++j) {
        const std::string& name =
            names_[static_cast<size_t>(a * 7 + j * 3) % names_.size()];
        ClientOutcome outcome;
        outcome.analyst_id = client.analyst_id();
        outcome.envelope = client.Call(name);
        outcome.request_id = outcome.envelope.request_id;
        std::lock_guard<std::mutex> lock(outcomes_mutex);
        outcomes.push_back(std::move(outcome));
      }
      transport.Close();
    });
  }
  for (std::thread& t : analysts) t.join();
  server.Shutdown();
  endpoint.Shutdown();

  const std::vector<ServerEndpoint::ArrivalRecord> arrivals =
      endpoint.ArrivalLog();
  ASSERT_EQ(arrivals.size(),
            static_cast<size_t>(kAnalysts * kCallsPerAnalyst));

  std::map<std::pair<std::string, uint64_t>, const ClientOutcome*> by_key;
  for (const ClientOutcome& outcome : outcomes) {
    by_key[{outcome.analyst_id, outcome.request_id}] = &outcome;
  }

  // Replay the recorded interleaving through the sequential mechanism.
  erm::NoisyGradientOracle replay_oracle;
  core::PmwCm sequential(dataset_.get(), &replay_oracle,
                         options.mechanism, kSeed);
  for (size_t position = 0; position < arrivals.size(); ++position) {
    const ServerEndpoint::ArrivalRecord& record = arrivals[position];
    auto it = by_key.find({record.analyst_id, record.client_request_id});
    ASSERT_NE(it, by_key.end()) << "position " << position;
    const AnswerEnvelope& got = it->second->envelope;
    Result<core::PmwAnswer> want =
        sequential.AnswerQuery(*catalog_.Find(record.query_name));
    ASSERT_EQ(got.ok(), want.ok()) << "position " << position;
    if (!want.ok()) {
      EXPECT_EQ(got.error, ClassifyStatus(want.status()));
      continue;
    }
    ASSERT_EQ(got.answer.size(), want.value().theta.size());
    for (size_t i = 0; i < got.answer.size(); ++i) {
      // Exact, not NEAR: the claim is bit-identical transcripts, across
      // a real socket and the binary codec.
      EXPECT_EQ(got.answer[i], want.value().theta[i])
          << "position " << position << " coord " << i;
    }
    EXPECT_EQ(got.meta.hard_round, want.value().was_update)
        << "position " << position;
  }

  // The scenario exercised hard rounds, and the ledgers agree
  // event-for-event (labels, params, commit sequence numbers).
  EXPECT_GT(sequential.update_count(), 0);
  EXPECT_EQ(endpoint.service().mechanism().ledger().Report(),
            sequential.ledger().Report());
  EXPECT_EQ(endpoint.service().mechanism().queries_answered(),
            sequential.queries_answered());

  // Wire accounting: one decoded request and one encoded reply per call.
  EXPECT_EQ(endpoint.codec_counters().frames_decoded->Value(),
            kAnalysts * kCallsPerAnalyst);
  EXPECT_EQ(endpoint.codec_counters().frames_encoded->Value(),
            kAnalysts * kCallsPerAnalyst);
  EXPECT_EQ(endpoint.codec_counters().decode_errors->Value(), 0);
  EXPECT_GT(endpoint.codec_counters().bytes_in->Value(), 0);
  EXPECT_GT(endpoint.codec_counters().bytes_out->Value(), 0);
}

TEST_F(ApiTest, BatchedCallsAndStatsWorkThroughARealSocket) {
  erm::NoisyGradientOracle oracle;
  ServerOptions options = DefaultServerOptions();
  options.serve.num_threads = 2;
  options.serve.num_shards = 4;
  ServerEndpoint endpoint(dataset_.get(), &oracle, &catalog_, options, 17);
  const std::string path =
      "/tmp/pmw_api_batch_" + std::to_string(::getpid()) + ".sock";
  SocketServer server(&endpoint, path);
  ASSERT_TRUE(server.Start().ok());
  SocketTransport transport(path);
  ASSERT_TRUE(transport.status().ok());
  Client client(&transport, "batcher");

  std::vector<std::string> batch(names_.begin(), names_.begin() + 5);
  std::vector<AnswerEnvelope> replies = client.CallBatch(batch);
  ASSERT_EQ(replies.size(), batch.size());
  for (size_t j = 0; j < replies.size(); ++j) {
    EXPECT_TRUE(replies[j].ok()) << replies[j].message;
    EXPECT_FALSE(replies[j].answer.empty()) << j;
    EXPECT_EQ(replies[j].meta.shards, 4u) << j;
    if (j > 0) {
      EXPECT_EQ(replies[j].request_id, replies[j - 1].request_id + 1);
    }
  }
  // One request frame carried the whole batch over the socket.
  EXPECT_EQ(endpoint.codec_counters().frames_decoded->Value(), 1);

  AnswerEnvelope stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.message;
  EXPECT_NE(stats.message.find("submitted"), std::string::npos);
  EXPECT_EQ(stats.meta.shards, 4u);
  EXPECT_EQ(endpoint.service().mechanism().queries_answered(),
            static_cast<long long>(batch.size()));

  // Metrics and trace polls ride the same connection as answers.
  AnswerEnvelope metrics = client.Metrics();
  ASSERT_TRUE(metrics.ok()) << metrics.message;
  EXPECT_NE(metrics.message.find("pmw_serve_queries_total"),
            std::string::npos);
  AnswerEnvelope trace = client.Trace();
  ASSERT_TRUE(trace.ok()) << trace.message;
  EXPECT_NE(trace.message.find("trace "), std::string::npos);

  transport.Close();
  server.Shutdown();
  endpoint.Shutdown();
}

TEST_F(ApiTest, SocketServerAnswersMalformedFramesWithTypedEnvelopes) {
  erm::NoisyGradientOracle oracle;
  ServerEndpoint endpoint(dataset_.get(), &oracle, &catalog_,
                          DefaultServerOptions(), 9);
  const std::string path =
      "/tmp/pmw_api_mal_" + std::to_string(::getpid()) + ".sock";
  SocketServer server(&endpoint, path);
  ASSERT_TRUE(server.Start().ok());
  SocketTransport transport(path);
  ASSERT_TRUE(transport.status().ok());
  Client client(&transport, "prober");

  // A healthy call first, proving the channel works...
  EXPECT_TRUE(client.Call(names_[0]).ok());

  // ...then a future-version frame over a RAW socket: the server must
  // answer with a typed kVersionMismatch envelope (request id 0 — the id
  // was unrecoverable) instead of crashing or going silent.
  QueryRequest alien;
  alien.analyst_id = "prober";
  alien.request_id = 99;
  alien.query_name = names_[0];
  std::string wire;
  EncodeRequest(alien, &wire);
  wire[6] = 42;  // foreign version byte

  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  ASSERT_LT(path.size(), sizeof(address.sun_path));
  std::memcpy(address.sun_path, path.data(), path.size());
  const int raw_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(raw_fd, 0);
  ASSERT_EQ(::connect(raw_fd, reinterpret_cast<sockaddr*>(&address),
                      sizeof(address)),
            0);
  ASSERT_EQ(::write(raw_fd, wire.data(), wire.size()),
            static_cast<ssize_t>(wire.size()));

  std::string reply_bytes;
  size_t frame_size = 0;
  while (ExtractFrame(reply_bytes, &frame_size) == FrameStatus::kNeedMore) {
    char chunk[4096];
    const ssize_t n = ::read(raw_fd, chunk, sizeof(chunk));
    ASSERT_GT(n, 0) << "server closed without answering";
    reply_bytes.append(chunk, static_cast<size_t>(n));
  }
  ::close(raw_fd);
  Result<AnswerEnvelope> reply =
      DecodeAnswer(std::string_view(reply_bytes).substr(0, frame_size));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply.value().error, ErrorCode::kVersionMismatch);
  EXPECT_EQ(reply.value().request_id, 0u);

  transport.Close();
  server.Shutdown();
  endpoint.Shutdown();
  // The healthy call is the only mechanism traffic; the malformed frame
  // cost one decode error and zero privacy.
  EXPECT_EQ(endpoint.service().mechanism().queries_answered(), 1);
  EXPECT_EQ(endpoint.codec_counters().decode_errors->Value(), 1);
}

TEST_F(ApiTest, MetricsRpcExposesTheRegistryInBothFormats) {
  erm::NoisyGradientOracle oracle;
  ServerOptions options = DefaultServerOptions();
  options.serve.num_shards = 2;
  ServerEndpoint endpoint(dataset_.get(), &oracle, &catalog_, options, 41);
  InProcessTransport transport(&endpoint, /*verify_codec=*/true);
  Client client(&transport, "scraper");

  for (int j = 0; j < 6; ++j) {
    ASSERT_TRUE(client.Call(names_[static_cast<size_t>(j) %
                                   names_.size()]).ok());
  }
  const int events = endpoint.service().mechanism().ledger().event_count();
  const long long answered =
      endpoint.service().mechanism().queries_answered();

  // Text format: one registry spanning every layer, Prometheus-shaped.
  AnswerEnvelope text = client.Metrics();
  ASSERT_TRUE(text.ok()) << text.message;
  EXPECT_NE(text.message.find("# TYPE"), std::string::npos);
  EXPECT_NE(text.message.find("pmw_serve_queries_total"),
            std::string::npos);
  EXPECT_NE(text.message.find("pmw_frontend_submitted_total"),
            std::string::npos);
  EXPECT_NE(text.message.find("pmw_api_frames_decoded_total"),
            std::string::npos);
  EXPECT_NE(text.message.find("pmw_frontend_queue_wait_us_bucket"),
            std::string::npos);

  // JSON format: same registry, machine-shaped, with histogram moments.
  AnswerEnvelope json = client.Metrics(kMetricsFormatJson);
  ASSERT_TRUE(json.ok()) << json.message;
  EXPECT_NE(json.message.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.message.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.message.find("\"p99\""), std::string::npos);

  // Scrapes are free: no ledger event, no k-query slot.
  EXPECT_EQ(endpoint.service().mechanism().ledger().event_count(), events);
  EXPECT_EQ(endpoint.service().mechanism().queries_answered(), answered);

  // Unknown format and foreign version are typed rejections.
  MetricsRequest weird;
  weird.analyst_id = "scraper";
  weird.request_id = 7;
  weird.format = 9;
  AnswerEnvelope rejected = endpoint.HandleMetrics(weird);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error, ErrorCode::kMalformedRequest);
  EXPECT_EQ(rejected.request_id, 7u);
  MetricsRequest alien;
  alien.version = 77;
  alien.request_id = 8;
  AnswerEnvelope mismatched = endpoint.HandleMetrics(alien);
  ASSERT_FALSE(mismatched.ok());
  EXPECT_EQ(mismatched.error, ErrorCode::kVersionMismatch);
  endpoint.Shutdown();
}

TEST_F(ApiTest, TraceRpcRendersSpanTreesAndHonorsTheDisableKnob) {
  erm::NoisyGradientOracle oracle;
  ServerOptions options = DefaultServerOptions();
  options.serve.num_shards = 2;
  ServerEndpoint endpoint(dataset_.get(), &oracle, &catalog_, options, 43);
  InProcessTransport transport(&endpoint, /*verify_codec=*/true);
  Client client(&transport, "tracer");

  for (int j = 0; j < 6; ++j) {
    ASSERT_TRUE(client.Call(names_[static_cast<size_t>(j) %
                                   names_.size()]).ok());
  }
  // min_total_us=0 keeps everything; the tree names its phases.
  AnswerEnvelope trace = client.Trace(/*min_total_us=*/0,
                                      /*max_traces=*/16);
  ASSERT_TRUE(trace.ok()) << trace.message;
  EXPECT_NE(trace.message.find("trace "), std::string::npos);
  EXPECT_NE(trace.message.find("analyst=tracer"), std::string::npos);
  EXPECT_NE(trace.message.find("queue"), std::string::npos);
  EXPECT_NE(trace.message.find("commit"), std::string::npos);

  // An impossible threshold filters everything out, gracefully.
  AnswerEnvelope empty = client.Trace(/*min_total_us=*/~0ULL >> 1,
                                      /*max_traces=*/16);
  ASSERT_TRUE(empty.ok());
  EXPECT_NE(empty.message.find("(no traces over threshold)"),
            std::string::npos);

  // Version gate applies to trace frames too.
  TraceRequest alien;
  alien.version = 77;
  alien.request_id = 9;
  AnswerEnvelope mismatched = endpoint.HandleTrace(alien);
  ASSERT_FALSE(mismatched.ok());
  EXPECT_EQ(mismatched.error, ErrorCode::kVersionMismatch);
  endpoint.Shutdown();

  // A tracing-disabled endpoint still answers the poll — with a note,
  // not an error — so dashboards degrade instead of breaking.
  ServerOptions dark = DefaultServerOptions();
  dark.enable_tracing = false;
  erm::NoisyGradientOracle dark_oracle;
  ServerEndpoint dark_endpoint(dataset_.get(), &dark_oracle, &catalog_,
                               dark, 43);
  InProcessTransport dark_transport(&dark_endpoint, /*verify_codec=*/true);
  Client dark_client(&dark_transport, "tracer");
  ASSERT_TRUE(dark_client.Call(names_[0]).ok());
  AnswerEnvelope disabled = dark_client.Trace();
  ASSERT_TRUE(disabled.ok());
  EXPECT_NE(disabled.message.find("(tracing disabled on this endpoint)"),
            std::string::npos);
  dark_endpoint.Shutdown();
}

TEST_F(ApiTest, ReplayStaysBitIdenticalUnderTracingAndLiveScrapers) {
  // The observability invariant, end to end: tracing on, spans recorded,
  // and a scraper hammering metrics/trace polls over its own connection
  // must leave the transcript exactly where sequential replay puts it.
  constexpr int kAnalysts = 3;
  constexpr int kCallsPerAnalyst = 20;
  constexpr uint64_t kSeed = 777;

  erm::NoisyGradientOracle oracle;
  ServerOptions options = DefaultServerOptions();
  options.serve.num_threads = 2;
  options.serve.num_shards = 2;
  options.record_arrival_log = true;
  options.enable_tracing = true;
  ServerEndpoint endpoint(dataset_.get(), &oracle, &catalog_, options,
                          kSeed);
  const std::string path =
      "/tmp/pmw_api_obs_" + std::to_string(::getpid()) + ".sock";
  SocketServer server(&endpoint, path);
  ASSERT_TRUE(server.Start().ok());

  std::mutex outcomes_mutex;
  std::vector<ClientOutcome> outcomes;
  std::atomic<bool> done{false};
  std::thread scraper([&path, &done] {
    SocketTransport transport(path);
    ASSERT_TRUE(transport.status().ok());
    Client client(&transport, "scraper");
    while (!done.load(std::memory_order_relaxed)) {
      AnswerEnvelope text = client.Metrics(kMetricsFormatText);
      ASSERT_TRUE(text.ok()) << text.message;
      ASSERT_FALSE(text.message.empty());
      AnswerEnvelope json = client.Metrics(kMetricsFormatJson);
      ASSERT_TRUE(json.ok()) << json.message;
      AnswerEnvelope trace = client.Trace(/*min_total_us=*/0,
                                          /*max_traces=*/8);
      ASSERT_TRUE(trace.ok()) << trace.message;
    }
    transport.Close();
  });
  std::vector<std::thread> analysts;
  for (int a = 0; a < kAnalysts; ++a) {
    analysts.emplace_back([this, a, &path, &outcomes_mutex, &outcomes] {
      SocketTransport transport(path);
      ASSERT_TRUE(transport.status().ok());
      Client client(&transport, "analyst-" + std::to_string(a));
      for (int j = 0; j < kCallsPerAnalyst; ++j) {
        const std::string& name =
            names_[static_cast<size_t>(a * 5 + j * 3) % names_.size()];
        ClientOutcome outcome;
        outcome.analyst_id = client.analyst_id();
        outcome.envelope = client.Call(name);
        outcome.request_id = outcome.envelope.request_id;
        std::lock_guard<std::mutex> lock(outcomes_mutex);
        outcomes.push_back(std::move(outcome));
      }
      transport.Close();
    });
  }
  for (std::thread& t : analysts) t.join();
  done.store(true, std::memory_order_relaxed);
  scraper.join();
  server.Shutdown();
  endpoint.Shutdown();

  const std::vector<ServerEndpoint::ArrivalRecord> arrivals =
      endpoint.ArrivalLog();
  ASSERT_EQ(arrivals.size(),
            static_cast<size_t>(kAnalysts * kCallsPerAnalyst));

  std::map<std::pair<std::string, uint64_t>, const ClientOutcome*> by_key;
  for (const ClientOutcome& outcome : outcomes) {
    by_key[{outcome.analyst_id, outcome.request_id}] = &outcome;
  }
  erm::NoisyGradientOracle replay_oracle;
  core::PmwCm sequential(dataset_.get(), &replay_oracle,
                         options.mechanism, kSeed);
  for (size_t position = 0; position < arrivals.size(); ++position) {
    const ServerEndpoint::ArrivalRecord& record = arrivals[position];
    auto it = by_key.find({record.analyst_id, record.client_request_id});
    ASSERT_NE(it, by_key.end()) << "position " << position;
    const AnswerEnvelope& got = it->second->envelope;
    Result<core::PmwAnswer> want =
        sequential.AnswerQuery(*catalog_.Find(record.query_name));
    ASSERT_EQ(got.ok(), want.ok()) << "position " << position;
    if (!want.ok()) {
      EXPECT_EQ(got.error, ClassifyStatus(want.status()));
      continue;
    }
    ASSERT_EQ(got.answer.size(), want.value().theta.size());
    for (size_t i = 0; i < got.answer.size(); ++i) {
      EXPECT_EQ(got.answer[i], want.value().theta[i])
          << "position " << position << " coord " << i;
    }
  }
  EXPECT_EQ(endpoint.service().mechanism().ledger().Report(),
            sequential.ledger().Report());
  EXPECT_EQ(endpoint.service().mechanism().queries_answered(),
            sequential.queries_answered());
  // The scraper's frames decoded cleanly alongside the query traffic.
  EXPECT_EQ(endpoint.codec_counters().decode_errors->Value(), 0);
  // The ring saw the traffic (publication happens post-reply, so the
  // exact count is whatever committed before Shutdown drained).
  ASSERT_NE(endpoint.trace_recorder(), nullptr);
  EXPECT_GT(endpoint.trace_recorder()->published(), 0u);
}

}  // namespace
}  // namespace api
}  // namespace pmw
