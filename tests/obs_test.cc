// obs layer tests: counter exactness under concurrent adders, histogram
// quantiles and exact moments, deterministic exposition output, labeled
// names, the RunningStats::FromMoments scrape round-trip, and the trace
// ring's deterministic slot assignment under concurrent publishers and
// scrapers. The TSan CI job rebuilds this binary, so the lock-free
// claims in obs/metrics.h are machine-checked.

#include "obs/metrics.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "gtest/gtest.h"
#include "obs/trace.h"

namespace pmw {
namespace obs {
namespace {

TEST(CounterTest, ExactUnderConcurrentAdders) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kAddsPerThread; ++i) counter.Add(1);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), kThreads * kAddsPerThread);
}

TEST(CounterTest, NegativeDeltaAndReadsDuringWrites) {
  Counter counter;
  counter.Add(10);
  counter.Add(-3);
  EXPECT_EQ(counter.Value(), 7);

  // Scrapes racing increments must always read a torn-free total.
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int i = 0; i < 50000; ++i) counter.Add(1);
    stop.store(true);
  });
  long long last = 0;
  while (!stop.load()) {
    const long long now = counter.Value();
    EXPECT_GE(now, last);  // monotone while only positive deltas land
    last = now;
  }
  writer.join();
  EXPECT_EQ(counter.Value(), 7 + 50000);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0.0);
  gauge.Set(2.5);
  EXPECT_EQ(gauge.Value(), 2.5);
  gauge.Set(-17.125);
  EXPECT_EQ(gauge.Value(), -17.125);
}

TEST(HistogramTest, BucketsMomentsAndQuantiles) {
  Histogram histogram({1.0, 2.0, 4.0, 8.0});
  for (int i = 1; i <= 8; ++i) histogram.Observe(static_cast<double>(i));
  const Histogram::Snapshot snap = histogram.Snap();
  EXPECT_EQ(snap.count, 8);
  EXPECT_DOUBLE_EQ(snap.sum, 36.0);
  EXPECT_DOUBLE_EQ(snap.sumsq, 204.0);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 8.0);
  ASSERT_EQ(snap.buckets.size(), 5u);
  EXPECT_EQ(snap.buckets[0], 1);  // <= 1
  EXPECT_EQ(snap.buckets[1], 1);  // (1, 2]
  EXPECT_EQ(snap.buckets[2], 2);  // (2, 4]
  EXPECT_EQ(snap.buckets[3], 4);  // (4, 8]
  EXPECT_EQ(snap.buckets[4], 0);  // +Inf

  // Quantiles are clamped to the observed extrema and monotone in q.
  EXPECT_GE(snap.Quantile(0.0), snap.min);
  EXPECT_LE(snap.Quantile(1.0), snap.max);
  EXPECT_LE(snap.Quantile(0.5), snap.Quantile(0.99));
  EXPECT_LE(snap.Quantile(0.99), snap.Quantile(0.999));
}

TEST(HistogramTest, EmptySnapshotIsAllZero) {
  Histogram histogram(Histogram::LogBuckets(0.01, 2.0, 24));
  const Histogram::Snapshot snap = histogram.Snap();
  EXPECT_EQ(snap.count, 0);
  EXPECT_EQ(snap.Quantile(0.5), 0.0);
  EXPECT_EQ(snap.Quantile(0.99), 0.0);
}

TEST(HistogramTest, LogBucketsAreStrictlyIncreasing) {
  const std::vector<double> buckets = Histogram::LogBuckets(0.5, 2.0, 10);
  ASSERT_EQ(buckets.size(), 10u);
  EXPECT_DOUBLE_EQ(buckets[0], 0.5);
  for (size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_GT(buckets[i], buckets[i - 1]);
    EXPECT_DOUBLE_EQ(buckets[i], buckets[i - 1] * 2.0);
  }
}

TEST(StatsScrapeTest, FromMomentsRoundTripsARunningStatsView) {
  RunningStats direct;
  Histogram histogram(Histogram::LogBuckets(1.0, 2.0, 12));
  for (double x : {3.0, 1.5, 12.0, 7.25, 0.5, 21.0}) {
    direct.Add(x);
    histogram.Observe(x);
  }
  const Histogram::Snapshot snap = histogram.Snap();
  const RunningStats rebuilt = RunningStats::FromMoments(
      snap.count, snap.sum, snap.sumsq, snap.min, snap.max);
  EXPECT_EQ(rebuilt.count(), direct.count());
  EXPECT_NEAR(rebuilt.mean(), direct.mean(), 1e-9);
  EXPECT_NEAR(rebuilt.variance(), direct.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(rebuilt.min(), direct.min());
  EXPECT_DOUBLE_EQ(rebuilt.max(), direct.max());
}

TEST(RegistryTest, HandlesAreStableAndIdempotent) {
  Registry registry;
  Counter* a = registry.GetCounter("pmw_test_total");
  Counter* b = registry.GetCounter("pmw_test_total");
  EXPECT_EQ(a, b);
  a->Add(3);
  EXPECT_EQ(registry.CounterValue("pmw_test_total"), 3);
  EXPECT_EQ(registry.CounterValue("pmw_absent_total"), 0);

  Histogram* h1 =
      registry.GetHistogram("pmw_test_ms", {1.0, 2.0});
  Histogram* h2 =
      registry.GetHistogram("pmw_test_ms", {99.0});  // first wins
  EXPECT_EQ(h1, h2);
  h1->Observe(1.5);
  EXPECT_EQ(registry.HistogramSnap("pmw_test_ms").count, 1);
  EXPECT_EQ(registry.HistogramSnap("pmw_absent_ms").count, 0);
}

TEST(RegistryTest, LabeledNameEscapesTheValue) {
  EXPECT_EQ(Registry::LabeledName("pmw_x_total", "analyst", "alice"),
            "pmw_x_total{analyst=\"alice\"}");
  EXPECT_EQ(Registry::LabeledName("pmw_x_total", "analyst", "a\"b\\c"),
            "pmw_x_total{analyst=\"a\\\"b\\\\c\"}");
}

TEST(RegistryTest, ForEachCounterVisitsPrefixInNameOrder) {
  Registry registry;
  registry.GetCounter(Registry::LabeledName("pmw_q_total", "analyst", "b"))
      ->Add(2);
  registry.GetCounter(Registry::LabeledName("pmw_q_total", "analyst", "a"))
      ->Add(1);
  registry.GetCounter("pmw_other_total")->Add(9);
  std::vector<std::pair<std::string, long long>> seen;
  registry.ForEachCounter("pmw_q_total{", [&](const std::string& name,
                                              long long value) {
    seen.emplace_back(name, value);
  });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].first, "pmw_q_total{analyst=\"a\"}");
  EXPECT_EQ(seen[0].second, 1);
  EXPECT_EQ(seen[1].first, "pmw_q_total{analyst=\"b\"}");
  EXPECT_EQ(seen[1].second, 2);
}

TEST(RegistryTest, ExpositionsAreDeterministicForFixedValues) {
  const auto build = [] {
    Registry registry;
    registry.GetCounter("pmw_b_total")->Add(2);
    registry.GetCounter("pmw_a_total")->Add(1);
    registry.GetGauge("pmw_g")->Set(0.5);
    registry.GetHistogram("pmw_h_ms", {1.0, 10.0})->Observe(3.0);
    return std::make_pair(registry.TextExposition(), registry.JsonDump());
  };
  const auto [text1, json1] = build();
  const auto [text2, json2] = build();
  EXPECT_EQ(text1, text2);
  EXPECT_EQ(json1, json2);
  // Sorted by name: pmw_a before pmw_b, counters before gauges.
  EXPECT_LT(text1.find("pmw_a_total 1"), text1.find("pmw_b_total 2"));
  EXPECT_NE(text1.find("# TYPE pmw_h_ms histogram"), std::string::npos);
  EXPECT_NE(json1.find("\"counters\""), std::string::npos);
  EXPECT_NE(json1.find("\"p99\""), std::string::npos);
}

TEST(RegistryTest, ScrapesNeverBlockConcurrentWriters) {
  Registry registry;
  Counter* counter = registry.GetCounter("pmw_w_total");
  Histogram* histogram =
      registry.GetHistogram("pmw_w_ms", Histogram::LogBuckets(0.1, 2.0, 16));
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int i = 0; i < 30000; ++i) {
      counter->Add(1);
      histogram->Observe(0.1 * (i % 100));
    }
    stop.store(true);
  });
  std::thread scraper([&] {
    while (!stop.load()) {
      const std::string text = registry.TextExposition();
      EXPECT_FALSE(text.empty());
      registry.JsonDump();
    }
  });
  writer.join();
  scraper.join();
  EXPECT_EQ(registry.CounterValue("pmw_w_total"), 30000);
  EXPECT_EQ(registry.HistogramSnap("pmw_w_ms").count, 30000);
}

RequestTrace MakeTrace(uint64_t id, uint64_t total_us) {
  RequestTrace trace;
  trace.trace_id = id;
  trace.analyst = "analyst-" + std::to_string(id % 3);
  trace.query = "q/" + std::to_string(id);
  trace.total_us = total_us;
  trace.spans.push_back({"queue", 0, total_us / 4, -1});
  trace.spans.push_back({"commit", total_us / 4, total_us / 2, -1});
  return trace;
}

TEST(TraceRecorderTest, SlotAssignmentIsDeterministic) {
  TraceRecorder recorder(4);
  EXPECT_EQ(recorder.capacity(), 4u);
  // ids 1..9: id 5 overwrites slot 1 (id 1), id 9 overwrites id 5 — the
  // ring keeps exactly the latest trace per slot, independent of timing.
  for (uint64_t id = 1; id <= 9; ++id) {
    recorder.Publish(MakeTrace(id, 100 * id));
  }
  EXPECT_EQ(recorder.published(), 9);
  const std::vector<RequestTrace> slow = recorder.SlowRequests(0, 16);
  ASSERT_EQ(slow.size(), 4u);
  // Sorted by total_us descending; survivors are ids 9, 8, 7, 6.
  EXPECT_EQ(slow[0].trace_id, 9u);
  EXPECT_EQ(slow[1].trace_id, 8u);
  EXPECT_EQ(slow[2].trace_id, 7u);
  EXPECT_EQ(slow[3].trace_id, 6u);
}

TEST(TraceRecorderTest, ThresholdAndLimitFilter) {
  TraceRecorder recorder(8);
  for (uint64_t id = 0; id < 8; ++id) {
    recorder.Publish(MakeTrace(id, 100 * (id + 1)));
  }
  EXPECT_EQ(recorder.SlowRequests(501, 16).size(), 3u);  // 600, 700, 800
  EXPECT_EQ(recorder.SlowRequests(0, 2).size(), 2u);
  EXPECT_TRUE(recorder.SlowRequests(10000, 16).empty());
}

TEST(TraceRecorderTest, FormatRendersAnIndentedSpanTree) {
  TraceRecorder recorder(4);
  recorder.Publish(MakeTrace(7, 400));
  const std::string rendered =
      TraceRecorder::Format(recorder.SlowRequests(0, 1));
  EXPECT_NE(rendered.find("trace 7"), std::string::npos);
  EXPECT_NE(rendered.find("queue"), std::string::npos);
  EXPECT_NE(rendered.find("commit"), std::string::npos);
  EXPECT_EQ(TraceRecorder::Format({}), "(no traces over threshold)\n");
}

TEST(TraceRecorderTest, ConcurrentPublishAndScrape) {
  TraceRecorder recorder(16);
  std::atomic<bool> stop{false};
  std::vector<std::thread> publishers;
  for (int t = 0; t < 4; ++t) {
    publishers.emplace_back([&recorder, t] {
      for (uint64_t i = 0; i < 2000; ++i) {
        recorder.Publish(
            MakeTrace(static_cast<uint64_t>(t) * 10000 + i, i + 1));
      }
    });
  }
  std::thread scraper([&] {
    while (!stop.load()) {
      const std::vector<RequestTrace> slow = recorder.SlowRequests(0, 8);
      EXPECT_LE(slow.size(), 8u);
      for (size_t i = 1; i < slow.size(); ++i) {
        EXPECT_GE(slow[i - 1].total_us, slow[i].total_us);
      }
      TraceRecorder::Format(slow);
    }
  });
  for (std::thread& publisher : publishers) publisher.join();
  stop.store(true);
  scraper.join();
  EXPECT_EQ(recorder.published(), 4 * 2000);
}

}  // namespace
}  // namespace obs
}  // namespace pmw
