// Transcript-equivalence harness for the sparse hypothesis backend.
//
// The sparse backend (core::ShardedHypothesis with
// HypothesisBackend::kSparse) materializes only the payoff-touched
// support and folds its normalizer through the same fixed-shape
// PairwiseSum tree the dense walk uses, so in exact mode the serving
// contract is unchanged: at ANY (shards x threads x batch size) the
// externally visible transcript — per-query answers (values and error
// codes, positionally) and the privacy ledger (event labels, parameters,
// and commit sequence numbers) — is bit-identical to the DENSE backend
// under the same seed. These tests check that property-style over random
// logistic datasets (so hard rounds actually fire MW updates) across
// shards {1, 2, 4} x threads {1, 4}; the TSan CI job rebuilds this
// binary so the claim holds under the race detector too.
//
// Approx mode (sampled_normalizer) deliberately gives up bit-identity
// for O(samples) normalization; its oracle here is determinism — the
// seed schedule is a pure function of (seed, update, shard), so a replay
// with the same options reproduces the transcript bit-for-bit. The
// bounded-delta oracle against the exact normalizer lives at the unit
// level in sharded_hypothesis_test.cc.

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/pmw_cm.h"
#include "core/sharded_hypothesis.h"
#include "data/binary_universe.h"
#include "data/generators.h"
#include "erm/noisy_gradient_oracle.h"
#include "gtest/gtest.h"
#include "losses/loss_family.h"
#include "serve/pmw_service.h"

namespace pmw {
namespace serve {
namespace {

struct Transcript {
  std::vector<Result<convex::Vec>> answers;
  std::string ledger_report;
  int update_count = 0;
  long long queries_answered = 0;
  bool halted = false;
  long long materialized = 0;
};

/// Runs the full serving stack at (shards, threads) on the requested
/// hypothesis backend, feeding the workload in batches of `batch_size`.
Transcript RunBackend(const data::Dataset& dataset,
                      const core::PmwOptions& options, uint64_t seed,
                      const std::vector<convex::CmQuery>& workload,
                      int num_shards, int num_threads, size_t batch_size,
                      core::HypothesisBackend backend,
                      const core::SparseHypothesisOptions& sparse = {}) {
  erm::NoisyGradientOracle oracle;
  ServeOptions serve_options;
  serve_options.num_threads = num_threads;
  serve_options.num_shards = num_shards;
  serve_options.hypothesis_backend = backend;
  serve_options.sparse = sparse;
  PmwService service(&dataset, &oracle, options, seed, serve_options);
  EXPECT_EQ(service.mechanism().hypothesis_backend(), backend);
  Transcript t;
  for (size_t start = 0; start < workload.size(); start += batch_size) {
    size_t count = std::min(batch_size, workload.size() - start);
    std::span<const convex::CmQuery> batch(&workload[start], count);
    for (auto& result : service.AnswerBatch(batch)) {
      t.answers.push_back(std::move(result));
    }
  }
  t.ledger_report = service.mechanism().ledger().Report();
  t.update_count = service.mechanism().update_count();
  t.queries_answered = service.mechanism().queries_answered();
  t.halted = service.mechanism().halted();
  t.materialized = service.mechanism().materialized_entries();
  return t;
}

void ExpectIdentical(const Transcript& got, const Transcript& want,
                     const std::string& context) {
  ASSERT_EQ(got.answers.size(), want.answers.size()) << context;
  for (size_t j = 0; j < want.answers.size(); ++j) {
    ASSERT_EQ(got.answers[j].ok(), want.answers[j].ok())
        << context << " status diverged at query " << j;
    if (!want.answers[j].ok()) {
      EXPECT_EQ(got.answers[j].status().code(),
                want.answers[j].status().code())
          << context << " error code diverged at query " << j;
      continue;
    }
    const convex::Vec& g = *got.answers[j];
    const convex::Vec& w = *want.answers[j];
    ASSERT_EQ(g.size(), w.size()) << context << " at query " << j;
    for (size_t i = 0; i < w.size(); ++i) {
      // Exact, not NEAR: the claim is bit-identical transcripts. The
      // ledger report string carries the commit sequence numbers.
      EXPECT_EQ(g[i], w[i])
          << context << " query " << j << " coordinate " << i;
    }
  }
  EXPECT_EQ(got.ledger_report, want.ledger_report) << context;
  EXPECT_EQ(got.update_count, want.update_count) << context;
  EXPECT_EQ(got.queries_answered, want.queries_answered) << context;
  EXPECT_EQ(got.halted, want.halted) << context;
}

core::PmwOptions PracticalOptions() {
  core::PmwOptions options;
  options.alpha = 0.15;
  options.beta = 0.05;
  options.privacy = {2.0, 1e-6};
  options.scale = 2.0;
  options.max_queries = 400;
  options.override_updates = 12;
  return options;
}

/// One randomized scenario per seed, same shape as serve_sharded_test:
/// a logistic-model dataset (non-uniform ground truth, so early queries
/// fire hard rounds and the MW-update path actually runs) plus a query
/// mix cycling a pool of Lipschitz losses and fresh one-offs.
class SparseBackendPropertyTest : public ::testing::TestWithParam<int> {
 protected:
  SparseBackendPropertyTest() : universe_(3), family_(3) {
    Rng rng(5400 + static_cast<uint64_t>(GetParam()));
    std::vector<double> theta_star, biases;
    for (int d = 0; d < 3; ++d) {
      theta_star.push_back(rng.Uniform(-1.0, 1.0));
      biases.push_back(rng.Uniform(0.3, 0.7));
    }
    dist_ = std::make_unique<data::Histogram>(data::LogisticModelDistribution(
        universe_, theta_star, biases, rng.Uniform(0.2, 0.4)));
    dataset_ = std::make_unique<data::Dataset>(
        data::RoundedDataset(universe_, *dist_, 60000));

    Rng query_rng(6400 + static_cast<uint64_t>(GetParam()));
    std::vector<convex::CmQuery> pool = family_.Generate(10, &query_rng);
    for (int j = 0; j < 48; ++j) {
      workload_.push_back(pool[static_cast<size_t>(j) % pool.size()]);
    }
    for (convex::CmQuery& one_off : family_.Generate(12, &query_rng)) {
      workload_.push_back(one_off);
    }
  }

  data::LabeledHypercubeUniverse universe_;
  losses::LipschitzFamily family_;
  std::unique_ptr<data::Histogram> dist_;
  std::unique_ptr<data::Dataset> dataset_;
  std::vector<convex::CmQuery> workload_;
};

TEST_P(SparseBackendPropertyTest, ExactModeTranscriptMatchesDenseEverywhere) {
  const uint64_t seed = 9300 + static_cast<uint64_t>(GetParam());
  for (int shards : {1, 2, 4}) {
    for (int threads : {1, 4}) {
      const std::string context = "shards=" + std::to_string(shards) +
                                  " threads=" + std::to_string(threads);
      Transcript want =
          RunBackend(*dataset_, PracticalOptions(), seed, workload_, shards,
                     threads, 16, core::HypothesisBackend::kDense);
      // The scenario must exercise the sparse MW-update path for the
      // equivalence to mean anything.
      ASSERT_GT(want.update_count, 0) << context;
      Transcript got =
          RunBackend(*dataset_, PracticalOptions(), seed, workload_, shards,
                     threads, 16, core::HypothesisBackend::kSparse);
      ExpectIdentical(got, want, context);
      // ...and the sparse run earned its name: |X| = 16 here, but the
      // support it materialized is bounded by what payoffs touched.
      EXPECT_LE(got.materialized, dataset_->universe().size()) << context;
    }
  }
}

TEST_P(SparseBackendPropertyTest, HaltTranscriptsMatchOnSparseBackend) {
  // A tiny update budget forces a mid-workload halt; the sparse backend
  // must fail the same queries with the same codes as dense, and must
  // not burn updates dense didn't.
  core::PmwOptions options = PracticalOptions();
  options.override_updates = 2;
  const uint64_t seed = 7300 + static_cast<uint64_t>(GetParam());
  Transcript want = RunBackend(*dataset_, options, seed, workload_, 4, 4, 16,
                               core::HypothesisBackend::kDense);
  Transcript got = RunBackend(*dataset_, options, seed, workload_, 4, 4, 16,
                              core::HypothesisBackend::kSparse);
  ExpectIdentical(got, want, "halt sparse-vs-dense");
}

TEST_P(SparseBackendPropertyTest, ApproxModeReplaysBitIdentically) {
  // Approx mode trades bit-identity to DENSE for cheap normalization,
  // but never determinism: the sample-seed schedule is a pure function
  // of (options seed, update index, shard), so the same configuration
  // replays the whole serving transcript bit-for-bit.
  core::SparseHypothesisOptions sparse;
  sparse.sampled_normalizer = true;
  sparse.normalizer_samples = 8;
  sparse.seed = 1234;
  const uint64_t seed = 8300 + static_cast<uint64_t>(GetParam());
  Transcript first =
      RunBackend(*dataset_, PracticalOptions(), seed, workload_, 4, 4, 16,
                 core::HypothesisBackend::kSparse, sparse);
  ASSERT_GT(first.update_count, 0);
  Transcript replay =
      RunBackend(*dataset_, PracticalOptions(), seed, workload_, 4, 4, 16,
                 core::HypothesisBackend::kSparse, sparse);
  ExpectIdentical(replay, first, "approx replay");
}

INSTANTIATE_TEST_SUITE_P(RandomScenarios, SparseBackendPropertyTest,
                         ::testing::Range(0, 3));

}  // namespace
}  // namespace serve
}  // namespace pmw
