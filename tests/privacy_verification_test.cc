// Empirical differential-privacy verification (Definition 2.1, measured).
//
// For mechanisms with discrete or discretizable output we estimate the
// privacy loss directly: run the mechanism many times on a pair of
// neighbouring datasets, histogram the outputs, and check
//     Pr[M(D) in S] <= e^eps Pr[M(D') in S] + delta + statistical slack
// over a family of events S. This catches sign errors in noise
// calibration that unit tests on scales alone would miss.

#include <cmath>
#include <map>
#include <vector>

#include "common/random.h"
#include "dp/mechanisms.h"
#include "dp/sparse_vector.h"
#include "gtest/gtest.h"

namespace pmw {
namespace dp {
namespace {

// Empirical max log-ratio over binned outputs of two runs.
double EmpiricalEpsilon(const std::vector<double>& runs_d,
                        const std::vector<double>& runs_d_prime,
                        double bin_width, double delta_slack) {
  std::map<long long, double> hist_d, hist_d_prime;
  const double inv_n_d = 1.0 / runs_d.size();
  const double inv_n_dp = 1.0 / runs_d_prime.size();
  for (double v : runs_d) {
    hist_d[static_cast<long long>(std::floor(v / bin_width))] += inv_n_d;
  }
  for (double v : runs_d_prime) {
    hist_d_prime[static_cast<long long>(std::floor(v / bin_width))] +=
        inv_n_dp;
  }
  double worst = 0.0;
  for (const auto& [bin, p] : hist_d) {
    if (p < delta_slack) continue;  // ignore tail events below slack
    auto it = hist_d_prime.find(bin);
    double q = it == hist_d_prime.end() ? 0.0 : it->second;
    if (q < delta_slack) continue;
    worst = std::max(worst, std::abs(std::log(p / q)));
  }
  return worst;
}

TEST(EmpiricalPrivacyTest, LaplaceMechanismRespectsEpsilon) {
  // Counting query q(D) = 3, q(D') = 4, sensitivity 1, eps = 0.5.
  const double eps = 0.5;
  const int trials = 400000;
  Rng rng(91);
  std::vector<double> runs_d(trials), runs_d_prime(trials);
  for (int i = 0; i < trials; ++i) {
    runs_d[i] = LaplaceMechanism(3.0, 1.0, eps, &rng);
    runs_d_prime[i] = LaplaceMechanism(4.0, 1.0, eps, &rng);
  }
  double measured = EmpiricalEpsilon(runs_d, runs_d_prime, 0.5, 2e-4);
  // Allow modest statistical slack above the theoretical eps.
  EXPECT_LE(measured, eps * 1.25);
  // And the mechanism must actually discriminate a little (sanity).
  EXPECT_GT(measured, eps * 0.2);
}

TEST(EmpiricalPrivacyTest, GaussianMechanismRespectsEpsilonDelta) {
  PrivacyParams params{1.0, 1e-5};
  const int trials = 400000;
  Rng rng(92);
  std::vector<double> runs_d(trials), runs_d_prime(trials);
  for (int i = 0; i < trials; ++i) {
    runs_d[i] = GaussianMechanism(0.0, 1.0, params, &rng);
    runs_d_prime[i] = GaussianMechanism(1.0, 1.0, params, &rng);
  }
  double measured = EmpiricalEpsilon(runs_d, runs_d_prime, 1.0, 2e-4);
  EXPECT_LE(measured, params.epsilon * 1.25);
}

TEST(EmpiricalPrivacyTest, ExponentialMechanismRespectsEpsilon) {
  // Two candidates; neighbouring datasets move each score by the
  // sensitivity. Output distribution ratio must respect eps.
  const double eps = 0.8;
  const double sens = 1.0;
  const int trials = 300000;
  Rng rng(93);
  std::vector<double> scores_d = {0.0, 1.0};
  std::vector<double> scores_d_prime = {1.0, 0.0};  // worst-case shift
  int count_d = 0, count_d_prime = 0;
  for (int i = 0; i < trials; ++i) {
    count_d += ExponentialMechanism(scores_d, sens, eps, &rng);
    count_d_prime += ExponentialMechanism(scores_d_prime, sens, eps, &rng);
  }
  double p = static_cast<double>(count_d) / trials;
  double q = static_cast<double>(count_d_prime) / trials;
  // The two score vectors differ by 2x sensitivity in the gap, so the
  // guarantee here is 2*eps ... the canonical 2-sensitivity worst case.
  EXPECT_LE(std::abs(std::log(p / q)), 2.0 * eps * 1.1);
  EXPECT_LE(std::abs(std::log((1 - p) / (1 - q))), 2.0 * eps * 1.1);
}

TEST(EmpiricalPrivacyTest, SparseVectorFirstAnswerDistributionClose) {
  // One AboveThreshold epoch on neighbouring streams: the probability of
  // kTop on the first query must differ by at most e^eps (+slack). The
  // query value moves by the full sensitivity between D and D'.
  SparseVector::Options options;
  options.max_top_answers = 1;
  options.alpha = 0.2;
  options.sensitivity = 0.05;
  options.privacy = {1.0, 0.0};  // pure DP, single epoch
  const int trials = 200000;
  int tops_d = 0, tops_d_prime = 0;
  for (int i = 0; i < trials; ++i) {
    SparseVector sv_d(options, 10000 + i);
    SparseVector sv_dp(options, 10000 + i);  // same coins
    // Same coins + shifted value isolates the mechanism's sensitivity
    // handling; use value at the threshold where the decision is most
    // sensitive.
    if (*sv_d.Process(0.15) == SparseVector::Answer::kTop) ++tops_d;
    if (*sv_dp.Process(0.15 + options.sensitivity) ==
        SparseVector::Answer::kTop) {
      ++tops_d_prime;
    }
  }
  // Distinct coins estimate: rerun D' with different seeds.
  tops_d_prime = 0;
  for (int i = 0; i < trials; ++i) {
    SparseVector sv_dp(options, 500000 + i);
    if (*sv_dp.Process(0.15 + options.sensitivity) ==
        SparseVector::Answer::kTop) {
      ++tops_d_prime;
    }
  }
  double p = static_cast<double>(tops_d) / trials;
  double q = static_cast<double>(tops_d_prime) / trials;
  EXPECT_LE(std::abs(std::log(p / q)), options.privacy.epsilon * 1.15);
}

}  // namespace
}  // namespace dp
}  // namespace pmw
