// Unit tests for the common substrate: math, stats, random, results, tables.

#include <cmath>
#include <vector>

#include "common/math_util.h"
#include "common/random.h"
#include "common/result.h"
#include "common/stats.h"
#include "common/table_printer.h"
#include "gtest/gtest.h"

namespace pmw {
namespace {

TEST(MathUtilTest, ClampInsideRange) { EXPECT_EQ(Clamp(0.5, 0.0, 1.0), 0.5); }

TEST(MathUtilTest, ClampBelow) { EXPECT_EQ(Clamp(-3.0, 0.0, 1.0), 0.0); }

TEST(MathUtilTest, ClampAbove) { EXPECT_EQ(Clamp(7.0, 0.0, 1.0), 1.0); }

TEST(MathUtilTest, LogSumExpMatchesDirectComputation) {
  std::vector<double> v = {0.1, -2.0, 1.5};
  double direct = std::log(std::exp(0.1) + std::exp(-2.0) + std::exp(1.5));
  EXPECT_NEAR(LogSumExp(v), direct, 1e-12);
}

TEST(MathUtilTest, LogSumExpStableForLargeValues) {
  std::vector<double> v = {1000.0, 1000.0};
  EXPECT_NEAR(LogSumExp(v), 1000.0 + std::log(2.0), 1e-9);
}

TEST(MathUtilTest, LogSumExpSingleElement) {
  EXPECT_NEAR(LogSumExp({-3.25}), -3.25, 1e-12);
}

TEST(MathUtilTest, Log1PExpMatchesNaiveInMidRange) {
  for (double z : {-5.0, -1.0, 0.0, 1.0, 5.0}) {
    EXPECT_NEAR(Log1PExp(z), std::log1p(std::exp(z)), 1e-12);
  }
}

TEST(MathUtilTest, Log1PExpLargePositiveIsLinear) {
  EXPECT_NEAR(Log1PExp(100.0), 100.0, 1e-9);
}

TEST(MathUtilTest, SigmoidSymmetry) {
  for (double z : {-30.0, -2.0, 0.0, 0.7, 30.0}) {
    EXPECT_NEAR(Sigmoid(z) + Sigmoid(-z), 1.0, 1e-12);
  }
}

TEST(MathUtilTest, SigmoidAtZero) { EXPECT_NEAR(Sigmoid(0.0), 0.5, 1e-15); }

TEST(MathUtilTest, KlDivergenceZeroForIdentical) {
  std::vector<double> p = {0.2, 0.3, 0.5};
  EXPECT_NEAR(KlDivergence(p, p), 0.0, 1e-12);
}

TEST(MathUtilTest, KlDivergenceNonNegative) {
  std::vector<double> p = {0.7, 0.2, 0.1};
  std::vector<double> q = {0.1, 0.45, 0.45};
  EXPECT_GE(KlDivergence(p, q), 0.0);
  EXPECT_GE(KlDivergence(q, p), 0.0);
}

TEST(MathUtilTest, KlNormalizesInputs) {
  std::vector<double> p = {2.0, 3.0, 5.0};
  std::vector<double> p_norm = {0.2, 0.3, 0.5};
  std::vector<double> q = {1.0, 1.0, 2.0};
  EXPECT_NEAR(KlDivergence(p, q), KlDivergence(p_norm, q), 1e-12);
}

TEST(MathUtilTest, CeilLog2) {
  EXPECT_EQ(CeilLog2(1), 0);
  EXPECT_EQ(CeilLog2(2), 1);
  EXPECT_EQ(CeilLog2(3), 2);
  EXPECT_EQ(CeilLog2(1024), 10);
  EXPECT_EQ(CeilLog2(1025), 11);
}

TEST(MathUtilTest, NextPow2) {
  EXPECT_EQ(NextPow2(1), 1);
  EXPECT_EQ(NextPow2(5), 8);
  EXPECT_EQ(NextPow2(8), 8);
}

TEST(RunningStatsTest, MeanAndVariance) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.Add(x);
  EXPECT_EQ(s.count(), 4);
  EXPECT_NEAR(s.mean(), 2.5, 1e-12);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(s.min(), 1.0, 1e-12);
  EXPECT_NEAR(s.max(), 4.0, 1e-12);
  EXPECT_NEAR(s.sum(), 10.0, 1e-12);
}

TEST(RunningStatsTest, SingleValueHasZeroVariance) {
  RunningStats s;
  s.Add(42.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(StatsTest, QuantileEndpoints) {
  std::vector<double> v = {3.0, 1.0, 2.0};
  EXPECT_NEAR(Quantile(v, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(Quantile(v, 1.0), 3.0, 1e-12);
  EXPECT_NEAR(Quantile(v, 0.5), 2.0, 1e-12);
}

TEST(StatsTest, MeanAndStdDev) {
  std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(Mean(v), 5.0, 1e-12);
  EXPECT_NEAR(StdDev(v), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_NEAR(Max(v), 9.0, 1e-12);
}

TEST(RngTest, DeterministicWithSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Uniform(), b.Uniform());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Uniform() == b.Uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntCoversSupport) {
  Rng rng(7);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 5000; ++i) seen[rng.UniformInt(5)] += 1;
  for (int c : seen) EXPECT_GT(c, 800);
}

TEST(RngTest, LaplaceMomentsMatch) {
  Rng rng(99);
  const double scale = 2.0;
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.Add(rng.Laplace(scale));
  // Mean 0, variance 2 * scale^2 = 8.
  EXPECT_NEAR(s.mean(), 0.0, 0.05);
  EXPECT_NEAR(s.variance(), 8.0, 0.4);
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(17);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.Add(rng.Gaussian(1.0, 3.0));
  EXPECT_NEAR(s.mean(), 1.0, 0.05);
  EXPECT_NEAR(s.stddev(), 3.0, 0.05);
}

TEST(RngTest, GumbelMeanIsEulerMascheroni) {
  Rng rng(31);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.Add(rng.Gumbel());
  EXPECT_NEAR(s.mean(), 0.5772156649, 0.02);
}

TEST(RngTest, OnUnitSphereHasUnitNorm) {
  Rng rng(5);
  for (int d : {1, 2, 5, 10}) {
    std::vector<double> v = rng.OnUnitSphere(d);
    double norm_sq = 0.0;
    for (double z : v) norm_sq += z * z;
    EXPECT_NEAR(norm_sq, 1.0, 1e-10);
  }
}

TEST(RngTest, InUnitBallStaysInside) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    std::vector<double> v = rng.InUnitBall(4);
    double norm_sq = 0.0;
    for (double z : v) norm_sq += z * z;
    EXPECT_LE(norm_sq, 1.0 + 1e-12);
  }
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(11);
  std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) counts[rng.Categorical(w)] += 1;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / 40000.0, 0.75, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 50000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / 50000.0, 0.3, 0.02);
}

TEST(ResultTest, OkResultCarriesValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, ErrorResultCarriesStatus) {
  Result<int> r(Status::Halted("sparse vector exhausted"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kHalted);
  EXPECT_EQ(r.status().message(), "sparse vector exhausted");
}

TEST(StatusTest, ToStringIncludesMessage) {
  Status s = Status::InvalidArgument("bad alpha");
  EXPECT_NE(s.ToString().find("bad alpha"), std::string::npos);
  EXPECT_TRUE(Status::Ok().ok());
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"alpha", "0.1"});
  t.AddRow({"a-very-long-name", "2"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("a-very-long-name"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2);
}

TEST(TablePrinterTest, FormatHelpers) {
  EXPECT_EQ(TablePrinter::Fmt(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::FmtInt(77), "77");
  EXPECT_EQ(TablePrinter::FmtSci(12345.0, 1), "1.2e+04");
}

TEST(AlmostEqualTest, RespectsTolerances) {
  EXPECT_TRUE(AlmostEqual(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(AlmostEqual(1.0, 1.1));
}

}  // namespace
}  // namespace pmw
