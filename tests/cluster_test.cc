// Acceptance tests for the multi-host sharded serving subsystem
// (src/cluster/): the distributed transcript-equivalence property and
// its failure-mode corollaries.
//
//   (a) Bit-identity: a front door whose MW phases fan out to shard-group
//       workers over REAL localhost TCP (cluster::Combiner ->
//       cluster::ShardWorker) produces answers, a privacy ledger, and
//       commit sequence numbers bit-identical to sequential core::PmwCm
//       under the same seed — including through the full public surface
//       (TcpServer endpoint + TcpTransport client + hello/auth).
//   (b) Recovery: SIGKILLing one worker PROCESS mid-run and restarting
//       it leaves the transcript bit-identical — the combiner reconnects,
//       restores the latest checkpoint (when one exists), replays the
//       log suffix, and re-issues the in-flight phase. The worker holds
//       no private state, so a crash is purely an availability event.
//   (c) Identity: workers and endpoints with an auth token reject
//       un-helloed or wrongly-helloed traffic with typed kAuthRequired
//       envelopes, and a connection cannot speak for an analyst it did
//       not bind — quota accounting cannot be spoofed.
//   (d) Typed failure taxonomy: dead addresses and exhausted recovery
//       surface as kTransportError / kShardUnavailable, never as hangs,
//       crashes, or silent zeros.
//
// The TSan CI job rebuilds this binary: combiner fan-out, worker frame
// loops, and transport reader threads all run under the race detector.
// The recovery tests spawn the real pmw_shard_worker launcher via
// PMW_SHARD_WORKER_BIN (set by ctest; skipped when absent).

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "api/catalog.h"
#include "api/client.h"
#include "api/endpoint.h"
#include "api/envelope.h"
#include "api/error.h"
#include "api/socket_transport.h"
#include "cluster/combiner.h"
#include "cluster/slice_host.h"
#include "cluster/worker.h"
#include "core/pmw_cm.h"
#include "data/binary_universe.h"
#include "data/generators.h"
#include "erm/noisy_gradient_oracle.h"
#include "gtest/gtest.h"
#include "serve/pmw_service.h"

namespace pmw {
namespace cluster {
namespace {

constexpr char kToken[] = "cluster-secret";

core::PmwOptions PracticalOptions() {
  core::PmwOptions options;
  options.alpha = 0.15;
  options.beta = 0.05;
  options.privacy = {2.0, 1e-6};
  options.scale = 2.0;
  options.max_queries = 400;
  options.override_updates = 12;
  return options;
}

/// One externally spawned pmw_shard_worker process. The worker exits
/// when its stdin closes, so the pipe doubles as a liveness leash.
struct WorkerProcess {
  pid_t pid = -1;
  int stdin_fd = -1;
  uint16_t port = 0;
};

const char* LauncherBin() { return std::getenv("PMW_SHARD_WORKER_BIN"); }

WorkerProcess SpawnWorker(uint16_t port) {
  WorkerProcess worker;
  const char* bin = LauncherBin();
  if (bin == nullptr) return worker;
  int to_child[2] = {-1, -1};
  int from_child[2] = {-1, -1};
  if (pipe(to_child) != 0 || pipe(from_child) != 0) return worker;
  const pid_t pid = fork();
  if (pid == 0) {
    dup2(to_child[0], STDIN_FILENO);
    dup2(from_child[1], STDOUT_FILENO);
    close(to_child[0]);
    close(to_child[1]);
    close(from_child[0]);
    close(from_child[1]);
    const std::string port_arg = "--port=" + std::to_string(port);
    const std::string token_arg = std::string("--auth-token=") + kToken;
    execl(bin, bin, port_arg.c_str(), token_arg.c_str(),
          static_cast<char*>(nullptr));
    _exit(127);
  }
  close(to_child[0]);
  close(from_child[1]);
  // The launcher prints PMW_SHARD_WORKER_PORT=<port>\n once listening.
  std::string line;
  char c = 0;
  while (read(from_child[0], &c, 1) == 1 && c != '\n') line.push_back(c);
  close(from_child[0]);
  const size_t eq = line.find('=');
  if (pid > 0 && eq != std::string::npos) {
    worker.pid = pid;
    worker.stdin_fd = to_child[1];
    worker.port = static_cast<uint16_t>(std::atoi(line.c_str() + eq + 1));
  }
  return worker;
}

/// Graceful stop: close the leash, let the launcher drain and exit.
void StopWorker(WorkerProcess* worker) {
  if (worker->stdin_fd >= 0) {
    close(worker->stdin_fd);
    worker->stdin_fd = -1;
  }
  if (worker->pid > 0) {
    waitpid(worker->pid, nullptr, 0);
    worker->pid = -1;
  }
}

/// The crash under test: SIGKILL, no goodbye, no flush.
void KillWorker(WorkerProcess* worker) {
  if (worker->pid > 0) {
    kill(worker->pid, SIGKILL);
    waitpid(worker->pid, nullptr, 0);
    worker->pid = -1;
  }
  if (worker->stdin_fd >= 0) {
    close(worker->stdin_fd);
    worker->stdin_fd = -1;
  }
}

class ClusterTest : public ::testing::Test {
 protected:
  ClusterTest() : universe_(3) {  // |X| = 16
    data::Histogram dist = data::LogisticModelDistribution(
        universe_, {1.0, -0.8, 0.5}, {0.7, 0.4, 0.5}, 0.25);
    dataset_ = std::make_unique<data::Dataset>(
        data::RoundedDataset(universe_, dist, 60000));
    api::WorkloadSpec spec;
    spec.family = api::WorkloadSpec::Family::kLipschitz;
    spec.dim = 3;
    names_ = catalog_.Populate(spec, 8, /*seed=*/424242, "lip/");
    for (int j = 0; j < 60; ++j) {
      workload_.push_back(names_[static_cast<size_t>(j * 3) % names_.size()]);
    }
  }

  int DomainSize() const { return universe_.size(); }

  std::vector<convex::CmQuery> Queries() const {
    std::vector<convex::CmQuery> queries;
    for (const std::string& name : workload_) {
      queries.push_back(*catalog_.Find(name));
    }
    return queries;
  }

  /// The sequential ground truth under the same seed.
  struct Transcript {
    std::vector<Result<core::PmwAnswer>> answers;
    std::string ledger_report;
    int update_count = 0;
    long long queries_answered = 0;
  };

  Transcript RunSequential(uint64_t seed,
                           const core::PmwOptions& options =
                               PracticalOptions()) const {
    erm::NoisyGradientOracle oracle;
    core::PmwCm cm(dataset_.get(), &oracle, options, seed);
    Transcript t;
    for (const convex::CmQuery& query : Queries()) {
      t.answers.push_back(cm.AnswerQuery(query));
    }
    t.ledger_report = cm.ledger().Report();
    t.update_count = cm.update_count();
    t.queries_answered = cm.queries_answered();
    return t;
  }

  void ExpectAnswerIdentical(const Result<convex::Vec>& got,
                             const Result<core::PmwAnswer>& want,
                             size_t position) const {
    ASSERT_EQ(got.ok(), want.ok()) << "query " << position;
    if (!want.ok()) {
      EXPECT_EQ(got.status().code(), want.status().code())
          << "query " << position;
      return;
    }
    const convex::Vec& g = *got;
    const convex::Vec& w = want.value().theta;
    ASSERT_EQ(g.size(), w.size()) << "query " << position;
    for (size_t i = 0; i < w.size(); ++i) {
      // Exact, not NEAR: the claim is bit-identical transcripts across
      // process boundaries and real TCP.
      EXPECT_EQ(g[i], w[i]) << "query " << position << " coord " << i;
    }
  }

  data::LabeledHypercubeUniverse universe_;
  api::QueryCatalog catalog_;
  std::vector<std::string> names_;
  std::vector<std::string> workload_;
  std::unique_ptr<data::Dataset> dataset_;
};

// ---------------------------------------------------------------------------
// (a) Distributed bit-identity, in-process workers over real TCP.
// ---------------------------------------------------------------------------

TEST_F(ClusterTest, DistributedTranscriptMatchesSequential) {
  constexpr uint64_t kSeed = 2200;
  const Transcript want = RunSequential(kSeed);
  ASSERT_GT(want.update_count, 0) << "scenario never fired an update";

  // Two shard-group workers, each a real TCP listener in this process.
  ShardWorkerOptions worker_options;
  worker_options.auth_token = kToken;
  ShardWorker worker_a(worker_options);
  ShardWorker worker_b(worker_options);
  ASSERT_TRUE(worker_a.Start().ok());
  ASSERT_TRUE(worker_b.Start().ok());

  CombinerOptions combiner_options;
  combiner_options.workers = {{"127.0.0.1", worker_a.port()},
                              {"127.0.0.1", worker_b.port()}};
  combiner_options.auth_token = kToken;
  Combiner combiner(combiner_options);
  ASSERT_TRUE(combiner.Connect(DomainSize(), /*num_shards=*/4).ok());

  erm::NoisyGradientOracle oracle;
  serve::ServeOptions serve_options;
  serve_options.num_threads = 2;
  serve_options.num_shards = 4;
  serve_options.hypothesis_delegate = &combiner;
  serve::PmwService service(dataset_.get(), &oracle, PracticalOptions(),
                            kSeed, serve_options);
  ASSERT_EQ(service.num_shards(), 4);

  const std::vector<convex::CmQuery> queries = Queries();
  std::vector<Result<convex::Vec>> got;
  for (size_t start = 0; start < queries.size(); start += 16) {
    const size_t count = std::min<size_t>(16, queries.size() - start);
    std::span<const convex::CmQuery> batch(&queries[start], count);
    for (auto& result : service.AnswerBatch(batch)) {
      got.push_back(std::move(result));
    }
  }

  ASSERT_EQ(got.size(), want.answers.size());
  for (size_t j = 0; j < got.size(); ++j) {
    ExpectAnswerIdentical(got[j], want.answers[j], j);
  }
  EXPECT_EQ(service.mechanism().ledger().Report(), want.ledger_report);
  EXPECT_EQ(service.mechanism().update_count(), want.update_count);
  EXPECT_EQ(service.mechanism().queries_answered(), want.queries_answered);

  // Both workers really did the MW phases, and nothing needed recovery.
  const CombinerStats stats = combiner.stats();
  EXPECT_GT(stats.rpcs, 0);
  EXPECT_EQ(stats.recoveries, 0);
  EXPECT_EQ(stats.updates_logged, want.update_count);
  EXPECT_GT(stats.combiner_wait_us, 0u);
  EXPECT_EQ(worker_a.updates_applied(),
            static_cast<uint64_t>(want.update_count));
  EXPECT_EQ(worker_b.updates_applied(),
            static_cast<uint64_t>(want.update_count));

  combiner.Close();
  worker_a.Shutdown();
  worker_b.Shutdown();
}

// ---------------------------------------------------------------------------
// (a) continued: the full public surface — TcpServer front door,
// TcpTransport client, hello/auth — over combiner-backed serving.
// ---------------------------------------------------------------------------

TEST_F(ClusterTest, FullTcpFrontDoorMatchesSequentialWithAuth) {
  constexpr uint64_t kSeed = 3300;

  ShardWorkerOptions worker_options;
  worker_options.auth_token = kToken;
  ShardWorker worker_a(worker_options);
  ShardWorker worker_b(worker_options);
  ASSERT_TRUE(worker_a.Start().ok());
  ASSERT_TRUE(worker_b.Start().ok());

  CombinerOptions combiner_options;
  combiner_options.workers = {{"127.0.0.1", worker_a.port()},
                              {"127.0.0.1", worker_b.port()}};
  combiner_options.auth_token = kToken;
  Combiner combiner(combiner_options);
  ASSERT_TRUE(combiner.Connect(DomainSize(), /*num_shards=*/4).ok());

  erm::NoisyGradientOracle oracle;
  api::ServerOptions options;
  options.mechanism = PracticalOptions();
  options.dispatcher.max_batch = 16;
  options.dispatcher.max_wait = std::chrono::microseconds(2000);
  options.serve.num_threads = 2;
  options.serve.num_shards = 4;
  options.serve.hypothesis_delegate = &combiner;
  options.auth_token = "front-door-secret";
  api::ServerEndpoint endpoint(dataset_.get(), &oracle, &catalog_, options,
                               kSeed);
  api::TcpServer server(&endpoint, "127.0.0.1", 0);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);

  api::TcpTransport transport("127.0.0.1", server.port());
  ASSERT_TRUE(transport.status().ok()) << transport.status().ToString();
  api::Client client(&transport, "analyst-0");

  // Un-helloed queries bounce with a typed kAuthRequired — the endpoint
  // never sees them as admissible traffic.
  api::AnswerEnvelope unauthed = client.Call(names_[0]);
  ASSERT_FALSE(unauthed.ok());
  EXPECT_EQ(unauthed.error, api::ErrorCode::kAuthRequired);

  // A wrong token does not bind.
  api::AnswerEnvelope bad_hello = client.Hello("wrong-secret");
  ASSERT_FALSE(bad_hello.ok());
  EXPECT_EQ(bad_hello.error, api::ErrorCode::kAuthRequired);
  ASSERT_FALSE(client.Call(names_[0]).ok());

  // The real hello binds analyst-0 to this connection.
  api::AnswerEnvelope hello = client.Hello("front-door-secret");
  ASSERT_TRUE(hello.ok()) << hello.message;

  // A different analyst on the SAME connection is rejected: quota
  // accounting cannot be spoofed by stamping someone else's id.
  api::Client impostor(&transport, "analyst-spoof");
  api::AnswerEnvelope spoofed = impostor.Call(names_[0]);
  ASSERT_FALSE(spoofed.ok());
  EXPECT_EQ(spoofed.error, api::ErrorCode::kAuthRequired);

  // The bound analyst's transcript matches sequential replay exactly.
  erm::NoisyGradientOracle replay_oracle;
  core::PmwCm sequential(dataset_.get(), &replay_oracle, options.mechanism,
                         kSeed);
  for (int j = 0; j < 40; ++j) {
    const std::string& name =
        names_[static_cast<size_t>(j * 3) % names_.size()];
    api::AnswerEnvelope reply = client.Call(name);
    Result<core::PmwAnswer> want =
        sequential.AnswerQuery(*catalog_.Find(name));
    ASSERT_EQ(reply.ok(), want.ok()) << "call " << j << ": " << reply.message;
    if (!want.ok()) {
      EXPECT_EQ(reply.error, api::ClassifyStatus(want.status())) << j;
      continue;
    }
    ASSERT_EQ(reply.answer.size(), want.value().theta.size()) << j;
    for (size_t i = 0; i < reply.answer.size(); ++i) {
      EXPECT_EQ(reply.answer[i], want.value().theta[i])
          << "call " << j << " coord " << i;
    }
    EXPECT_EQ(reply.meta.hard_round, want.value().was_update) << j;
  }
  EXPECT_GT(sequential.update_count(), 0);

  transport.Close();
  server.Shutdown();
  endpoint.Shutdown();
  EXPECT_EQ(endpoint.service().mechanism().ledger().Report(),
            sequential.ledger().Report());

  combiner.Close();
  worker_a.Shutdown();
  worker_b.Shutdown();
}

// ---------------------------------------------------------------------------
// (b) Crash/restart recovery with REAL worker processes.
// ---------------------------------------------------------------------------

TEST_F(ClusterTest, KillAndRestartWorkerKeepsTranscriptBitIdentical) {
  if (LauncherBin() == nullptr) {
    GTEST_SKIP() << "PMW_SHARD_WORKER_BIN not set (run under ctest)";
  }
  constexpr uint64_t kSeed = 4400;
  const Transcript want = RunSequential(kSeed);
  ASSERT_GE(want.update_count, 2) << "need updates on both sides of the kill";
  // Kill right after the first hard round commits, so every later hard
  // round exercises reconnect + replay.
  size_t first_update_pos = 0;
  for (size_t j = 0; j < want.answers.size(); ++j) {
    if (want.answers[j].ok() && want.answers[j].value().was_update) {
      first_update_pos = j;
      break;
    }
  }

  WorkerProcess proc_a = SpawnWorker(/*port=*/0);
  WorkerProcess proc_b = SpawnWorker(/*port=*/0);
  ASSERT_GT(proc_a.pid, 0);
  ASSERT_GT(proc_b.pid, 0);
  ASSERT_NE(proc_a.port, 0);
  ASSERT_NE(proc_b.port, 0);

  CombinerOptions combiner_options;
  combiner_options.workers = {{"127.0.0.1", proc_a.port},
                              {"127.0.0.1", proc_b.port}};
  combiner_options.auth_token = kToken;
  Combiner combiner(combiner_options);
  ASSERT_TRUE(combiner.Connect(DomainSize(), /*num_shards=*/4).ok());

  erm::NoisyGradientOracle oracle;
  serve::ServeOptions serve_options;
  serve_options.num_threads = 2;
  serve_options.num_shards = 4;
  serve_options.hypothesis_delegate = &combiner;
  serve::PmwService service(dataset_.get(), &oracle, PracticalOptions(),
                            kSeed, serve_options);

  const std::vector<convex::CmQuery> queries = Queries();
  std::vector<Result<convex::Vec>> got;
  const size_t kill_at = first_update_pos + 1;
  const auto drive = [&](size_t begin, size_t end) {
    for (size_t start = begin; start < end; start += 8) {
      const size_t count = std::min<size_t>(8, end - start);
      std::span<const convex::CmQuery> batch(&queries[start], count);
      for (auto& result : service.AnswerBatch(batch)) {
        got.push_back(std::move(result));
      }
    }
  };

  drive(0, kill_at);

  // The crash: worker A dies without a goodbye, then restarts EMPTY on
  // the same port (SO_REUSEADDR in ListenTcp makes the rebind stick).
  const uint16_t crashed_port = proc_a.port;
  KillWorker(&proc_a);
  proc_a = SpawnWorker(crashed_port);
  ASSERT_GT(proc_a.pid, 0);
  ASSERT_EQ(proc_a.port, crashed_port);

  drive(kill_at, queries.size());

  ASSERT_EQ(got.size(), want.answers.size());
  for (size_t j = 0; j < got.size(); ++j) {
    ExpectAnswerIdentical(got[j], want.answers[j], j);
  }
  EXPECT_EQ(service.mechanism().ledger().Report(), want.ledger_report);
  EXPECT_EQ(service.mechanism().update_count(), want.update_count);
  EXPECT_EQ(service.mechanism().queries_answered(), want.queries_answered);

  // The combiner really recovered: reconnect + configure + log replay.
  const CombinerStats stats = combiner.stats();
  EXPECT_GE(stats.recoveries, 1);
  EXPECT_GE(stats.rpc_failures, 1);

  combiner.Close();
  StopWorker(&proc_a);
  StopWorker(&proc_b);
}

TEST_F(ClusterTest, CheckpointedRecoveryReplaysSuffixNotFullLog) {
  if (LauncherBin() == nullptr) {
    GTEST_SKIP() << "PMW_SHARD_WORKER_BIN not set (run under ctest)";
  }
  constexpr uint64_t kSeed = 4400;
  // A tighter accuracy target trips more hard rounds than the default
  // scenario, so a checkpoint (every 2 updates) lands before the kill.
  core::PmwOptions options = PracticalOptions();
  options.alpha = 0.05;
  const Transcript want = RunSequential(kSeed, options);
  ASSERT_GE(want.update_count, 4)
      << "need enough updates for a checkpoint before the kill";
  // Kill right after the THIRD hard round commits: with a checkpoint
  // every 2 updates, the combiner has a checkpoint at seq 2 by then, so
  // recovery must rebuild the worker from kRestore + a 1-update suffix,
  // not a full from-zero replay.
  int updates_seen = 0;
  size_t third_update_pos = 0;
  for (size_t j = 0; j < want.answers.size(); ++j) {
    if (want.answers[j].ok() && want.answers[j].value().was_update) {
      if (++updates_seen == 3) {
        third_update_pos = j;
        break;
      }
    }
  }
  ASSERT_EQ(updates_seen, 3);

  WorkerProcess proc_a = SpawnWorker(/*port=*/0);
  WorkerProcess proc_b = SpawnWorker(/*port=*/0);
  ASSERT_GT(proc_a.pid, 0);
  ASSERT_GT(proc_b.pid, 0);

  CombinerOptions combiner_options;
  combiner_options.workers = {{"127.0.0.1", proc_a.port},
                              {"127.0.0.1", proc_b.port}};
  combiner_options.auth_token = kToken;
  combiner_options.checkpoint_interval = 2;
  Combiner combiner(combiner_options);
  ASSERT_TRUE(combiner.Connect(DomainSize(), /*num_shards=*/4).ok());

  erm::NoisyGradientOracle oracle;
  serve::ServeOptions serve_options;
  serve_options.num_threads = 2;
  serve_options.num_shards = 4;
  serve_options.hypothesis_delegate = &combiner;
  serve::PmwService service(dataset_.get(), &oracle, options, kSeed,
                            serve_options);

  const std::vector<convex::CmQuery> queries = Queries();
  std::vector<Result<convex::Vec>> got;
  const size_t kill_at = third_update_pos + 1;
  const auto drive = [&](size_t begin, size_t end) {
    for (size_t start = begin; start < end; start += 8) {
      const size_t count = std::min<size_t>(8, end - start);
      std::span<const convex::CmQuery> batch(&queries[start], count);
      for (auto& result : service.AnswerBatch(batch)) {
        got.push_back(std::move(result));
      }
    }
  };

  drive(0, kill_at);

  // The checkpoint the recovery will restore from exists BEFORE the
  // crash, and the log holds only the suffix past it.
  const CombinerStats before = combiner.stats();
  ASSERT_GE(before.checkpoints, 1)
      << "checkpoint_interval=2 should have checkpointed by update 3";
  ASSERT_LT(before.updates_logged, 3)
      << "log must be the suffix since the checkpoint, not the full "
         "history";

  const uint16_t crashed_port = proc_a.port;
  KillWorker(&proc_a);
  proc_a = SpawnWorker(crashed_port);
  ASSERT_GT(proc_a.pid, 0);
  ASSERT_EQ(proc_a.port, crashed_port);

  drive(kill_at, queries.size());

  // Bit-identity survives a recovery whose rebuild path is
  // checkpoint-restore + suffix replay (not from-zero replay).
  ASSERT_EQ(got.size(), want.answers.size());
  for (size_t j = 0; j < got.size(); ++j) {
    ExpectAnswerIdentical(got[j], want.answers[j], j);
  }
  EXPECT_EQ(service.mechanism().ledger().Report(), want.ledger_report);
  EXPECT_EQ(service.mechanism().update_count(), want.update_count);
  EXPECT_EQ(service.mechanism().queries_answered(), want.queries_answered);

  const CombinerStats stats = combiner.stats();
  EXPECT_GE(stats.recoveries, 1);
  EXPECT_GE(stats.rpc_failures, 1);
  EXPECT_GE(stats.checkpoints, before.checkpoints);
  // The log bound held all the way through: never more than one full
  // interval of updates pending replay.
  EXPECT_LT(stats.updates_logged, want.update_count)
      << "checkpointing never truncated the log";
  EXPECT_LE(stats.updates_logged, combiner_options.checkpoint_interval);
  EXPECT_EQ(combiner.update_seq(), static_cast<uint64_t>(want.update_count));

  combiner.Close();
  StopWorker(&proc_a);
  StopWorker(&proc_b);
}

// ---------------------------------------------------------------------------
// (c) Worker-side identity enforcement.
// ---------------------------------------------------------------------------

TEST_F(ClusterTest, WorkerRequiresHelloBeforeRpcs) {
  ShardWorkerOptions worker_options;
  worker_options.auth_token = kToken;
  ShardWorker worker(worker_options);
  ASSERT_TRUE(worker.Start().ok());

  api::TcpTransport transport("127.0.0.1", worker.port());
  ASSERT_TRUE(transport.status().ok());

  // RPC before hello: typed kAuthRequired, connection stays usable.
  api::ShardRpcRequest rpc;
  rpc.op = api::ShardRpcOp::kConfigure;
  rpc.request_id = 1;
  rpc.domain_size = 16;
  rpc.num_shards = 4;
  rpc.group_hi = 4;
  api::AnswerEnvelope unauthed = transport.SendShardRpc(rpc).get();
  ASSERT_FALSE(unauthed.ok());
  EXPECT_EQ(unauthed.error, api::ErrorCode::kAuthRequired);

  // Wrong token: rejected, still not bound.
  api::HelloRequest bad;
  bad.analyst_id = "combiner";
  bad.request_id = 2;
  bad.auth_token = "not-the-secret";
  api::AnswerEnvelope bad_reply = transport.SendHello(bad).get();
  ASSERT_FALSE(bad_reply.ok());
  EXPECT_EQ(bad_reply.error, api::ErrorCode::kAuthRequired);
  rpc.request_id = 3;
  ASSERT_FALSE(transport.SendShardRpc(rpc).get().ok());

  // Right token: bound, and the same RPC now succeeds.
  api::HelloRequest good;
  good.analyst_id = "combiner";
  good.request_id = 4;
  good.auth_token = kToken;
  ASSERT_TRUE(transport.SendHello(good).get().ok());
  rpc.request_id = 5;
  api::AnswerEnvelope configured = transport.SendShardRpc(rpc).get();
  EXPECT_TRUE(configured.ok()) << configured.message;

  // Analyst-protocol traffic is typed away: a worker is not a front door.
  api::Client analyst(&transport, "lost-analyst");
  api::AnswerEnvelope lost = analyst.Call("lip/0");
  ASSERT_FALSE(lost.ok());
  EXPECT_EQ(lost.error, api::ErrorCode::kMalformedRequest);

  transport.Close();
  worker.Shutdown();
}

TEST_F(ClusterTest, SliceHostRejectsOutOfSequencePhases) {
  // The crash-detection signal: a freshly configured (hence seq-0) slice
  // must reject mid-transcript phases with a typed error so the combiner
  // knows to replay.
  SliceHost slice;
  ASSERT_TRUE(slice.Configure(16, 4, 0, 2).ok());
  std::vector<double> payoff(static_cast<size_t>(slice.end() - slice.base()),
                             0.25);
  std::vector<double> local_max;
  const Status stale = slice.Reweigh(/*update_seq=*/3, payoff, 0.5,
                                     &local_max);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(api::ClassifyStatus(stale), api::ErrorCode::kMalformedRequest);
  // Phases out of order within a matching seq are rejected too.
  std::vector<double> local_sum;
  EXPECT_FALSE(slice.Partials(/*update_seq=*/0, 0.0, &local_sum).ok());
  EXPECT_FALSE(slice.Normalize(/*update_seq=*/0, 1.0).ok());
  // The legal sequence goes through.
  ASSERT_TRUE(slice.Reweigh(0, payoff, 0.5, &local_max).ok());
  ASSERT_TRUE(slice.Partials(0, 0.0, &local_sum).ok());
  ASSERT_TRUE(slice.Normalize(0, 1.0).ok());
  EXPECT_EQ(slice.updates_applied(), 1u);
}

// ---------------------------------------------------------------------------
// (d) Connect failures are typed taxonomy errors (satellite pinning).
// ---------------------------------------------------------------------------

TEST_F(ClusterTest, ConnectFailuresAreTypedTaxonomyErrors) {
  // Port 1 on loopback: connection refused, fast and deterministic.
  api::TcpTransport dead_tcp("127.0.0.1", 1);
  EXPECT_FALSE(dead_tcp.status().ok());
  api::Client tcp_client(&dead_tcp, "nobody");
  api::AnswerEnvelope tcp_reply = tcp_client.Call("lip/0");
  ASSERT_FALSE(tcp_reply.ok());
  EXPECT_EQ(tcp_reply.error, api::ErrorCode::kTransportError);
  EXPECT_NE(tcp_reply.message.find("stream transport"), std::string::npos);

  // Unix path that does not exist: same taxonomy, same shape.
  api::SocketTransport dead_unix("/tmp/pmw_no_such_socket.sock");
  EXPECT_FALSE(dead_unix.status().ok());
  api::Client unix_client(&dead_unix, "nobody");
  api::AnswerEnvelope unix_reply = unix_client.Call("lip/0");
  ASSERT_FALSE(unix_reply.ok());
  EXPECT_EQ(unix_reply.error, api::ErrorCode::kTransportError);

  // A hostname is a typed error, not a DNS lookup: cluster topology is
  // explicit IPv4.
  api::TcpTransport named("worker-0.cluster.internal", 9999);
  EXPECT_FALSE(named.status().ok());

  // The combiner rolls dead workers up into kShardUnavailable.
  CombinerOptions combiner_options;
  combiner_options.workers = {{"127.0.0.1", 1}};
  combiner_options.reconnect_attempts = 1;
  combiner_options.reconnect_backoff_ms = 1;
  Combiner combiner(combiner_options);
  const Status unreachable = combiner.Connect(16, 4);
  ASSERT_FALSE(unreachable.ok());
  EXPECT_EQ(api::ClassifyStatus(unreachable),
            api::ErrorCode::kShardUnavailable);
}

TEST_F(ClusterTest, ExhaustedRecoverySurfacesAsShardUnavailableAtZeroCost) {
  // A worker that dies and NEVER comes back: the MW update must fail
  // typed (kShardUnavailable -> kInternal status wire code), the update
  // must stay unapplied, and the mechanism must keep serving soft
  // rounds. Zero additional privacy cost for the failure itself.
  ShardWorkerOptions worker_options;
  worker_options.auth_token = kToken;
  auto worker = std::make_unique<ShardWorker>(worker_options);
  ASSERT_TRUE(worker->Start().ok());

  CombinerOptions combiner_options;
  combiner_options.workers = {{"127.0.0.1", worker->port()}};
  combiner_options.auth_token = kToken;
  combiner_options.rpc_timeout_ms = 2000;
  combiner_options.reconnect_attempts = 2;
  combiner_options.reconnect_backoff_ms = 1;
  Combiner combiner(combiner_options);
  ASSERT_TRUE(combiner.Connect(DomainSize(), /*num_shards=*/4).ok());

  // Kill the only worker for good.
  worker->Shutdown();
  worker.reset();

  std::vector<double> payoff(static_cast<size_t>(DomainSize()), 0.1);
  std::vector<double> local_max;
  const Status failed = combiner.Reweigh(payoff, 0.5, &local_max);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(api::ClassifyStatus(failed), api::ErrorCode::kShardUnavailable)
      << failed.ToString();
  EXPECT_EQ(combiner.update_seq(), 0u) << "failed update must not commit";
}

}  // namespace
}  // namespace cluster
}  // namespace pmw
