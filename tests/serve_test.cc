// PmwService batch-serving tests: the batched path must be observationally
// identical to the sequential mechanism — same answers query-for-query,
// same privacy ledger, same halt behavior — while actually amortizing
// (cache hits, one compaction pass per batch).

#include <cmath>
#include <span>
#include <vector>

#include "common/random.h"
#include "core/pmw_cm.h"
#include "data/binary_universe.h"
#include "data/generators.h"
#include "erm/noisy_gradient_oracle.h"
#include "erm/nonprivate_oracle.h"
#include "gtest/gtest.h"
#include "losses/loss_family.h"
#include "serve/pmw_service.h"

namespace pmw {
namespace serve {
namespace {

class ServeTest : public ::testing::Test {
 protected:
  ServeTest()
      : universe_(3),
        dist_(data::LogisticModelDistribution(universe_, {1.0, -0.8, 0.5},
                                              {0.7, 0.4, 0.5}, 0.25)),
        dataset_(data::RoundedDataset(universe_, dist_, 150000)) {}

  core::PmwOptions PracticalOptions() const {
    core::PmwOptions options;
    options.alpha = 0.15;
    options.beta = 0.05;
    options.privacy = {2.0, 1e-6};
    options.scale = 2.0;
    options.max_queries = 400;
    options.override_updates = 16;
    return options;
  }

  /// A workload that repeats a small pool of queries (the serving regime:
  /// many clients, overlapping questions).
  std::vector<convex::CmQuery> CyclingWorkload(losses::QueryFamily* family,
                                               int pool, int total,
                                               uint64_t seed) {
    Rng rng(seed);
    std::vector<convex::CmQuery> queries = family->Generate(pool, &rng);
    std::vector<convex::CmQuery> workload;
    workload.reserve(total);
    for (int j = 0; j < total; ++j) workload.push_back(queries[j % pool]);
    return workload;
  }

  data::LabeledHypercubeUniverse universe_;
  data::Histogram dist_;
  data::Dataset dataset_;
};

TEST_F(ServeTest, BatchMatchesSequentialWithPrivateOracle) {
  losses::LipschitzFamily family(3);
  std::vector<convex::CmQuery> workload =
      CyclingWorkload(&family, /*pool=*/12, /*total=*/96, /*seed=*/7);

  constexpr uint64_t kSeed = 404;
  erm::NoisyGradientOracle sequential_oracle;
  core::PmwCm sequential(&dataset_, &sequential_oracle, PracticalOptions(),
                         kSeed);
  erm::NoisyGradientOracle batched_oracle;
  PmwService service(&dataset_, &batched_oracle, PracticalOptions(), kSeed);

  std::vector<Result<convex::Vec>> sequential_answers;
  for (const convex::CmQuery& query : workload) {
    Result<core::PmwAnswer> answer = sequential.AnswerQuery(query);
    if (answer.ok()) {
      sequential_answers.push_back(std::move(answer.value().theta));
    } else {
      sequential_answers.push_back(answer.status());
    }
  }

  std::vector<Result<convex::Vec>> batched_answers;
  constexpr size_t kBatch = 32;
  for (size_t start = 0; start < workload.size(); start += kBatch) {
    size_t count = std::min(kBatch, workload.size() - start);
    std::span<const convex::CmQuery> batch(&workload[start], count);
    std::vector<Result<convex::Vec>> results = service.AnswerBatch(batch);
    for (auto& result : results) batched_answers.push_back(std::move(result));
  }

  ASSERT_EQ(batched_answers.size(), sequential_answers.size());
  for (size_t j = 0; j < workload.size(); ++j) {
    ASSERT_EQ(batched_answers[j].ok(), sequential_answers[j].ok())
        << "status diverged at query " << j;
    if (!batched_answers[j].ok()) {
      EXPECT_EQ(batched_answers[j].status().code(),
                sequential_answers[j].status().code());
      continue;
    }
    const convex::Vec& got = *batched_answers[j];
    const convex::Vec& want = *sequential_answers[j];
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_DOUBLE_EQ(got[i], want[i])
          << "query " << j << " coordinate " << i;
    }
  }

  // Mechanism transcripts agree.
  EXPECT_EQ(service.mechanism().queries_answered(),
            sequential.queries_answered());
  EXPECT_EQ(service.mechanism().update_count(), sequential.update_count());
  EXPECT_EQ(service.mechanism().hypothesis_version(),
            sequential.hypothesis_version());

  // The privacy ledger charges identically: same events, same totals.
  const dp::PrivacyLedger& batched_ledger = service.mechanism().ledger();
  const dp::PrivacyLedger& sequential_ledger = sequential.ledger();
  EXPECT_EQ(batched_ledger.event_count(), sequential_ledger.event_count());
  EXPECT_EQ(batched_ledger.CountWithPrefix("oracle"),
            sequential_ledger.CountWithPrefix("oracle"));
  EXPECT_DOUBLE_EQ(batched_ledger.BasicTotal().epsilon,
                   sequential_ledger.BasicTotal().epsilon);
  EXPECT_DOUBLE_EQ(batched_ledger.BasicTotal().delta,
                   sequential_ledger.BasicTotal().delta);
  EXPECT_EQ(batched_ledger.Report(), sequential_ledger.Report());
}

TEST_F(ServeTest, BatchAmortizesRepeatedQueries) {
  losses::LipschitzFamily family(3);
  std::vector<convex::CmQuery> workload =
      CyclingWorkload(&family, /*pool=*/4, /*total=*/64, /*seed=*/21);

  erm::NonPrivateOracle oracle;
  PmwService service(&dataset_, &oracle, PracticalOptions(), 505);
  std::vector<Result<convex::Vec>> results = service.AnswerBatch(workload);

  ASSERT_EQ(results.size(), workload.size());
  const ServeStats& stats = service.stats();
  EXPECT_EQ(stats.queries, 64);
  EXPECT_EQ(stats.batches, 1);
  // With 4 distinct queries and no mid-batch update, at most
  // pool * (updates + 1) plans are computed; everything else is a hit.
  EXPECT_GE(stats.prepare_cache_hits,
            64 - 4 * (service.mechanism().update_count() + 1));
  EXPECT_EQ(stats.bottom_answers + stats.updates + stats.errors,
            stats.queries);
  EXPECT_EQ(stats.batch_latency_ms.count(), 1);
}

TEST_F(ServeTest, PerQueryErrorsMatchSequentialAfterHalt) {
  // Force a tiny update budget so the sparse vector halts mid-workload;
  // both paths must then fail the same queries with the same codes.
  core::PmwOptions options = PracticalOptions();
  options.override_updates = 2;

  losses::LipschitzFamily family(3);
  std::vector<convex::CmQuery> workload =
      CyclingWorkload(&family, /*pool=*/16, /*total=*/48, /*seed=*/33);

  constexpr uint64_t kSeed = 8080;
  erm::NoisyGradientOracle sequential_oracle;
  core::PmwCm sequential(&dataset_, &sequential_oracle, options, kSeed);
  erm::NoisyGradientOracle batched_oracle;
  PmwService service(&dataset_, &batched_oracle, options, kSeed);

  std::vector<Result<convex::Vec>> batched = service.AnswerBatch(workload);
  for (size_t j = 0; j < workload.size(); ++j) {
    Result<core::PmwAnswer> want = sequential.AnswerQuery(workload[j]);
    ASSERT_EQ(batched[j].ok(), want.ok()) << "query " << j;
    if (!want.ok()) {
      EXPECT_EQ(batched[j].status().code(), want.status().code());
    }
  }
  EXPECT_EQ(service.mechanism().halted(), sequential.halted());
}

TEST_F(ServeTest, StatsReportMentionsThroughput) {
  losses::LipschitzFamily family(3);
  Rng rng(3);
  std::vector<convex::CmQuery> workload = family.Generate(8, &rng);

  erm::NonPrivateOracle oracle;
  PmwService service(&dataset_, &oracle, PracticalOptions(), 99);
  service.AnswerBatch(workload);

  // Report embeds the one-row counter table (ToString) plus the latency
  // moments; the table header and the query count must both show up.
  std::string report = service.stats().Report();
  EXPECT_NE(report.find("queries/sec"), std::string::npos);
  EXPECT_NE(report.find("q/s"), std::string::npos);
  std::string table = service.stats().ToString();
  EXPECT_NE(table.find("queries"), std::string::npos);
  EXPECT_NE(table.find("8"), std::string::npos);
  EXPECT_NE(report.find(table), std::string::npos);
}

TEST_F(ServeTest, SingleQueryAnswerMatchesBatchOfOne) {
  losses::LipschitzFamily family(3);
  Rng rng(5);
  convex::CmQuery query = family.Next(&rng);

  constexpr uint64_t kSeed = 777;
  erm::NonPrivateOracle oracle_a;
  PmwService a(&dataset_, &oracle_a, PracticalOptions(), kSeed);
  erm::NonPrivateOracle oracle_b;
  PmwService b(&dataset_, &oracle_b, PracticalOptions(), kSeed);

  Result<convex::Vec> single = a.Answer(query);
  std::vector<Result<convex::Vec>> batch = b.AnswerBatch({&query, 1});
  ASSERT_TRUE(single.ok());
  ASSERT_TRUE(batch.front().ok());
  ASSERT_EQ(single.value().size(), batch.front().value().size());
  for (size_t i = 0; i < single.value().size(); ++i) {
    EXPECT_DOUBLE_EQ(single.value()[i], batch.front().value()[i]);
  }
}

}  // namespace
}  // namespace serve
}  // namespace pmw
