// Tests for the RDP accountant and the private Frank-Wolfe oracle (the
// optional extensions beyond the paper's own toolbox).

#include <cmath>

#include "common/random.h"
#include "common/stats.h"
#include "convex/cm_query.h"
#include "core/error.h"
#include "data/binary_universe.h"
#include "data/generators.h"
#include "dp/rdp_accountant.h"
#include "erm/private_frank_wolfe_oracle.h"
#include "gtest/gtest.h"
#include "losses/linear_query_loss.h"
#include "losses/margin_losses.h"

namespace pmw {
namespace dp {
namespace {

TEST(RdpAccountantTest, SingleGaussianMatchesClosedForm) {
  RdpAccountant accountant({2.0});
  accountant.AddGaussian(/*noise_multiplier=*/4.0);
  // RDP(2) = 2 / (2 * 16) = 1/16.
  EXPECT_NEAR(accountant.rdp()[0], 1.0 / 16.0, 1e-12);
}

TEST(RdpAccountantTest, CompositionAddsOrderwise) {
  RdpAccountant one;
  one.AddGaussian(2.0);
  RdpAccountant many;
  many.AddGaussian(2.0, 10);
  for (size_t i = 0; i < one.rdp().size(); ++i) {
    EXPECT_NEAR(many.rdp()[i], 10.0 * one.rdp()[i], 1e-12);
  }
}

TEST(RdpAccountantTest, EpsilonDecreasesWithNoise) {
  RdpAccountant loud, quiet;
  loud.AddGaussian(1.0, 50);
  quiet.AddGaussian(4.0, 50);
  EXPECT_LT(quiet.EpsilonAt(1e-6), loud.EpsilonAt(1e-6));
}

TEST(RdpAccountantTest, BeatsStrongCompositionForManyReleases) {
  // The motivation for the accountant: at T = 200 Gaussian releases, RDP
  // reports a (much) smaller epsilon than DRV10 strong composition.
  const double noise_multiplier = 8.0;
  const int count = 200;
  const double delta = 1e-6;
  RdpAccountant accountant;
  accountant.AddGaussian(noise_multiplier, count);
  double rdp_eps = accountant.EpsilonAt(delta);
  double strong_eps = RdpAccountant::StrongCompositionEpsilon(
      noise_multiplier, count, delta);
  EXPECT_LT(rdp_eps, strong_eps);
  EXPECT_LT(rdp_eps, 0.75 * strong_eps);  // a substantive gap
}

TEST(RdpAccountantTest, PureDpBoundCapsAtEpsilon) {
  RdpAccountant accountant({1000.0});
  accountant.AddPureDp(0.1);
  EXPECT_LE(accountant.rdp()[0], 0.1 + 1e-12);
}

TEST(RdpAccountantTest, EpsilonMonotoneInDelta) {
  RdpAccountant accountant;
  accountant.AddGaussian(2.0, 20);
  EXPECT_GE(accountant.EpsilonAt(1e-9), accountant.EpsilonAt(1e-3));
}

}  // namespace
}  // namespace dp

namespace erm {
namespace {

TEST(PrivateFrankWolfeTest, AccurateOnBallAtGenerousBudget) {
  data::LabeledHypercubeUniverse universe(3);
  data::Histogram dist = data::LogisticModelDistribution(
      universe, {1.0, -0.5, 0.2}, {0.5, 0.5, 0.5}, 0.3);
  data::Dataset dataset = data::RoundedDataset(universe, dist, 20000);
  core::ErrorOracle measure(&universe);
  data::Histogram hist = data::Histogram::FromDataset(dataset);

  losses::LogisticLoss loss(3);
  convex::L2Ball ball(3);
  convex::CmQuery query{&loss, &ball, "logistic"};
  PrivateFrankWolfeOracle oracle;
  Rng rng(61);
  OracleContext context;
  context.privacy = {4.0, 1e-6};
  auto answer = oracle.Solve(query, dataset, context, &rng);
  ASSERT_TRUE(answer.ok());
  EXPECT_LE(measure.AnswerError(query, hist, *answer), 0.1);
}

TEST(PrivateFrankWolfeTest, WorksOnIntervalDomain) {
  data::LabeledHypercubeUniverse universe(3);
  data::Histogram dist = data::ProductDistribution(
      universe, {0.5, 0.5, 0.5}, 0.8);
  data::Dataset dataset = data::RoundedDataset(universe, dist, 20000);
  core::ErrorOracle measure(&universe);
  data::Histogram hist = data::Histogram::FromDataset(dataset);

  losses::LinearQueryLoss loss(
      [](const data::Row& r) { return r.label > 0 ? 1.0 : 0.0; }, "label");
  convex::Interval interval(0.0, 1.0);
  convex::CmQuery query{&loss, &interval, "linq"};
  PrivateFrankWolfeOracle oracle;
  Rng rng(62);
  OracleContext context;
  context.privacy = {4.0, 1e-6};
  auto answer = oracle.Solve(query, dataset, context, &rng);
  ASSERT_TRUE(answer.ok());
  // Minimizer is E[p] = 0.8; FW averages vertices {0,1} toward it.
  EXPECT_NEAR((*answer)[0], 0.8, 0.15);
}

TEST(PrivateFrankWolfeTest, RejectsPureDp) {
  data::LabeledHypercubeUniverse universe(2);
  data::Dataset dataset(&universe, {0, 1, 2, 3});
  losses::LogisticLoss loss(2);
  convex::L2Ball ball(2);
  convex::CmQuery query{&loss, &ball, "q"};
  PrivateFrankWolfeOracle oracle;
  Rng rng(63);
  OracleContext context;
  context.privacy = {1.0, 0.0};
  EXPECT_FALSE(oracle.Solve(query, dataset, context, &rng).ok());
}

TEST(PrivateFrankWolfeTest, ErrorShrinksWithBudget) {
  data::LabeledHypercubeUniverse universe(3);
  data::Histogram dist = data::LogisticModelDistribution(
      universe, {1.0, -0.5, 0.2}, {0.5, 0.5, 0.5}, 0.3);
  data::Dataset dataset = data::RoundedDataset(universe, dist, 20000);
  core::ErrorOracle measure(&universe);
  data::Histogram hist = data::Histogram::FromDataset(dataset);
  losses::SquaredLoss loss(3);
  convex::L2Ball ball(3);
  convex::CmQuery query{&loss, &ball, "squared"};
  PrivateFrankWolfeOracle oracle;
  RunningStats tight, generous;
  for (int seed = 0; seed < 6; ++seed) {
    Rng rng(70 + seed);
    OracleContext context;
    context.privacy = {0.05, 1e-6};
    tight.Add(measure.AnswerError(query, hist,
                                  *oracle.Solve(query, dataset, context,
                                                &rng)));
    context.privacy = {4.0, 1e-6};
    generous.Add(measure.AnswerError(query, hist,
                                     *oracle.Solve(query, dataset, context,
                                                   &rng)));
  }
  EXPECT_LE(generous.mean(), tight.mean() + 0.05);
}

}  // namespace
}  // namespace erm
}  // namespace pmw
