// The workload engine: platform-deterministic generators (golden seed
// schedules), trace build/format/parse/replay, the scenario runner's
// end-to-end classification, and the load-bearing transcript claim — a
// recorded trace driven through api::ServerEndpoint replays through
// sequential core::PmwCm with bit-identical answers and privacy ledger.

#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "api/client.h"
#include "core/pmw_cm.h"
#include "erm/noisy_gradient_oracle.h"
#include "workload/generator.h"
#include "workload/runner.h"
#include "workload/scenario.h"
#include "workload/trace.h"

namespace pmw {
namespace workload {
namespace {

// ---------------------------------------------------------------------
// Generators: the seed schedules are pinned. These values must never
// change — checked-in traces and recorded perf baselines depend on the
// generators being a stable pure function of (params, seed) on every
// platform (they draw from raw mt19937_64 words, not from the
// implementation-defined <random> distributions).
// ---------------------------------------------------------------------

TEST(ZipfianGeneratorTest, GoldenSeedSchedule) {
  ZipfianGenerator zipf(96, 0.99, 42);
  const int want[16] = {25, 13, 25, 0, 57, 0, 9, 3,
                        1,  3,  0,  7, 17, 13, 37, 71};
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(zipf.Next(), want[i]) << "draw " << i;
  }
}

TEST(ZipfianGeneratorTest, ThetaZeroIsUniformGoldenSchedule) {
  ZipfianGenerator uniform(96, 0.0, 42);
  const int want[16] = {72, 61, 72, 13, 86, 9,  55, 35,
                        26, 37, 1,  50, 65, 61, 79, 90};
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(uniform.Next(), want[i]) << "draw " << i;
  }
}

TEST(ZipfianGeneratorTest, SkewConcentratesOnHotKeys) {
  ZipfianGenerator zipf(96, 0.99, 7);
  int hot = 0;
  constexpr int kDraws = 4000;
  for (int i = 0; i < kDraws; ++i) {
    const int key = zipf.Next();
    ASSERT_GE(key, 0);
    ASSERT_LT(key, 96);
    if (key < 8) ++hot;
  }
  // Under theta = 0.99 the top 8 of 96 keys carry well over half the
  // mass; uniform would put ~8% there.
  EXPECT_GT(hot, kDraws / 2);
}

TEST(PoissonArrivalsTest, GoldenSeedSchedule) {
  PoissonArrivals arrivals(2000.0, 7);
  const uint64_t want[8] = {702ULL,  2193ULL, 2255ULL, 3368ULL,
                            3444ULL, 3472ULL, 4366ULL, 5521ULL};
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(arrivals.NextArrivalUs(), want[i]) << "arrival " << i;
  }
}

TEST(PoissonArrivalsTest, MeanGapTracksRate) {
  PoissonArrivals arrivals(1000.0, 3);
  uint64_t last = 0;
  constexpr int kDraws = 5000;
  for (int i = 0; i < kDraws; ++i) last = arrivals.NextArrivalUs();
  // 5000 arrivals at 1000/s is 5 seconds in expectation; allow 10%.
  EXPECT_NEAR(static_cast<double>(last), 5e6, 5e5);
}

// ---------------------------------------------------------------------
// Traces.
// ---------------------------------------------------------------------

ScenarioSpec GoldenSpec() {
  ScenarioSpec spec;
  spec.name = "golden_small";
  spec.popularity = ScenarioSpec::Popularity::kZipfian;
  spec.zipf_theta = 0.99;
  spec.hot_keys = 4;
  spec.hot_fraction = 0.5;
  spec.churn_every = 8;
  spec.arrival = ScenarioSpec::Arrival::kOpenLoopPoisson;
  spec.open_loop_qps = 500.0;
  spec.analysts = 2;
  spec.queries_per_analyst = 12;
  spec.deadline_us = 3000;
  spec.seed = 77;
  return spec;
}

std::vector<std::string> GoldenNames() {
  std::vector<std::string> names;
  for (int i = 0; i < 16; ++i) names.push_back("k/" + std::to_string(i));
  return names;
}

TEST(TraceTest, FormatParseRoundTrip) {
  const Trace trace = BuildTrace(GoldenSpec(), GoldenNames());
  const Result<Trace> parsed = ParseTrace(FormatTrace(trace));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value(), trace);
}

TEST(TraceTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(ParseTrace("not a trace").ok());
  EXPECT_FALSE(ParseTrace("# pmw-workload-trace v1\n").ok());
  const std::string truncated =
      "# pmw-workload-trace v1\nscenario s\nseed 1\nevents 2\n0 0 0 q/0\n";
  EXPECT_FALSE(ParseTrace(truncated).ok());
  const std::string garbled =
      "# pmw-workload-trace v1\nscenario s\nseed 1\nevents 1\nx y z w\n";
  EXPECT_FALSE(ParseTrace(garbled).ok());
}

TEST(TraceTest, BuildTraceIsDeterministic) {
  const Trace a = BuildTrace(GoldenSpec(), GoldenNames());
  const Trace b = BuildTrace(GoldenSpec(), GoldenNames());
  EXPECT_EQ(a, b);
}

TEST(TraceTest, ClosedLoopEventsRoundRobinAnalystsAtTimeZero) {
  ScenarioSpec spec = GoldenSpec();
  spec.arrival = ScenarioSpec::Arrival::kClosedLoop;
  const Trace trace = BuildTrace(spec, GoldenNames());
  ASSERT_EQ(trace.events.size(), static_cast<size_t>(spec.total_events()));
  for (size_t i = 0; i < trace.events.size(); ++i) {
    EXPECT_EQ(trace.events[i].arrival_us, 0u);
    EXPECT_EQ(trace.events[i].analyst,
              static_cast<uint32_t>(i % static_cast<size_t>(spec.analysts)));
  }
}

/// The checked-in golden trace pins BOTH the generator seed schedule
/// (zipfian popularity, Poisson arrivals, hot-set churn) and the text
/// format, byte for byte.
TEST(TraceTest, GoldenTraceFileIsStable) {
  const std::string path =
      std::string(PMW_SOURCE_DIR) + "/tests/golden/TRACE_golden_small.txt";
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << path;
  std::ostringstream want;
  want << in.rdbuf();
  const Trace trace = BuildTrace(GoldenSpec(), GoldenNames());
  EXPECT_EQ(FormatTrace(trace), want.str())
      << "BuildTrace no longer reproduces the checked-in golden trace; "
         "this breaks recorded-trace replay.";
  // And the file parses back to the same trace (replay reads files).
  const Result<Trace> parsed = ParseTrace(want.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value(), trace);
}

// ---------------------------------------------------------------------
// The scenario runner, end to end through the api front door.
// ---------------------------------------------------------------------

ScenarioSpec SmallRunnerSpec() {
  ScenarioSpec spec;
  spec.name = "runner_small";
  spec.dim = 4;
  spec.records = 20000;
  spec.catalog_queries = 12;
  spec.analysts = 3;
  spec.queries_per_analyst = 24;
  spec.seed = 5;
  return spec;
}

TEST(ScenarioRunnerTest, ClosedLoopRunServesEverythingAndEmitsJson) {
  const ScenarioResult result = RunScenario(SmallRunnerSpec(), RunOptions{});
  EXPECT_EQ(result.issued, 72);
  EXPECT_EQ(result.ok, 72);
  EXPECT_EQ(result.other_errors, 0);
  EXPECT_TRUE(result.slo_ok);
  EXPECT_GT(result.goodput_qps, 0.0);
  EXPECT_GT(result.cache_hit_rate, 0.0);
  const std::string json = result.ToJson();
  for (const char* key :
       {"\"scenario\"", "\"params\"", "\"env\"", "\"requests\"",
        "\"latency_ms\"", "\"server_us\"", "\"throughput_qps\"",
        "\"cache_hit_rate\"", "\"budget\"", "\"slo\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

TEST(ScenarioRunnerTest, QuotaPressureClassifiesTypedRejectionsExactly) {
  ScenarioSpec spec = SmallRunnerSpec();
  spec.name = "runner_quota";
  spec.per_analyst_quota = 8;
  spec.slo.allow_rejections = true;
  const ScenarioResult result = RunScenario(spec, RunOptions{});
  // Each of the 3 analysts issues 24 and is admitted exactly 8.
  EXPECT_EQ(result.issued, 72);
  EXPECT_EQ(result.ok, 24);
  EXPECT_EQ(result.quota_rejected, 48);
  EXPECT_EQ(result.other_errors, 0);
  EXPECT_TRUE(result.slo_ok);
}

TEST(ScenarioRunnerTest, SloViolationsAreReported) {
  ScenarioSpec spec = SmallRunnerSpec();
  spec.name = "runner_slo";
  spec.slo.min_goodput_qps = 1e12;  // unreachable on purpose
  const ScenarioResult result = RunScenario(spec, RunOptions{});
  EXPECT_FALSE(result.slo_ok);
  ASSERT_EQ(result.slo_violations.size(), 1u);
  EXPECT_NE(result.slo_violations[0].find("goodput_qps"),
            std::string::npos);
}

TEST(ScenarioRunnerTest, ZeroServedRunFailsLoudlyWithFiniteRates) {
  // Regression pin for the zero-served edge case: a 1us deadline expires
  // every request in-queue, so nothing is ever served. The rates must
  // stay defined (0.0, never NaN from a 0/0), and the SLO verdict must
  // fail loudly with the full disposition even though the scenario
  // allows typed rejections — an all-rejected run must never pass on a
  // vacuous latency/goodput check.
  ScenarioSpec spec = SmallRunnerSpec();
  spec.name = "runner_zero_served";
  spec.deadline_us = 1;
  spec.slo.allow_rejections = true;
  spec.slo.min_cache_hit_rate = -1.0;
  const ScenarioResult result = RunScenario(spec, RunOptions{});
  EXPECT_EQ(result.issued, 72);
  ASSERT_EQ(result.ok, 0);
  // NaN would fail both equalities; the rates are defined-zero.
  EXPECT_EQ(result.goodput_qps, 0.0);
  EXPECT_EQ(result.cache_hit_rate, 0.0);
  EXPECT_FALSE(result.slo_ok);
  ASSERT_FALSE(result.slo_violations.empty());
  bool found = false;
  for (const std::string& violation : result.slo_violations) {
    if (violation.find("no successful answers") != std::string::npos) {
      found = true;
      EXPECT_NE(violation.find("deadline 72"), std::string::npos)
          << violation;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ScenarioRunnerTest, StandardScenariosAreWellFormedAndNamed) {
  const std::vector<ScenarioSpec> scenarios = StandardScenarios();
  ASSERT_GE(scenarios.size(), 4u);
  for (const ScenarioSpec& spec : scenarios) {
    EXPECT_FALSE(spec.name.empty());
    EXPECT_GT(spec.total_events(), 0);
    ScenarioSpec found;
    EXPECT_TRUE(FindStandardScenario(spec.name, &found));
    EXPECT_EQ(found.name, spec.name);
  }
  EXPECT_FALSE(FindStandardScenario("no-such-scenario", nullptr));
}

// ---------------------------------------------------------------------
// The transcript claim: a recorded trace driven through the endpoint,
// then replayed from the arrival log through sequential core::PmwCm,
// yields bit-identical answers and a bit-identical privacy ledger.
// ---------------------------------------------------------------------

TEST(ScenarioRunnerTest, TraceReplayMatchesSequentialPmwCmBitIdentically) {
  ScenarioSpec spec;
  spec.name = "replay_equivalence";
  spec.dim = 4;
  spec.records = 20000;
  spec.catalog_queries = 10;
  spec.data = ScenarioSpec::DataShape::kLogistic;  // forces hard rounds
  spec.analysts = 4;
  spec.queries_per_analyst = 30;
  spec.serve_threads = 2;
  spec.shards = 2;
  spec.seed = 909;
  // More hard rounds than total queries: exhausting T mid-run would let
  // the quota door reject late arrivals (kHalted) *before* the arrival
  // log, and which requests land past the cliff depends on thread
  // interleaving — the one nondeterminism this test must not contain.
  spec.override_updates = 4 * spec.analysts * spec.queries_per_analyst;

  RunOptions options;
  options.record_arrival_log = true;
  options.oracle = api::OracleKind::kNoisyGradient;
  options.verify_codec = true;  // cross the real byte format too

  ScenarioHarness harness(spec, options);
  const Trace trace = harness.MakeTrace();

  // Drive the trace closed-loop, keeping every client-observed envelope
  // keyed by (analyst, correlation id) so the arrival log can look the
  // replies up in commit order.
  struct Outcome {
    std::string analyst_id;
    api::AnswerEnvelope envelope;
  };
  std::mutex outcomes_mutex;
  std::vector<Outcome> outcomes;
  std::vector<std::vector<const TraceEvent*>> per_analyst(
      static_cast<size_t>(spec.analysts));
  for (const TraceEvent& event : trace.events) {
    per_analyst[event.analyst].push_back(&event);
  }
  std::vector<std::thread> analysts;
  for (int a = 0; a < spec.analysts; ++a) {
    analysts.emplace_back([a, &harness, &per_analyst, &outcomes_mutex,
                           &outcomes] {
      api::Client client(&harness.transport(),
                         "analyst-" + std::to_string(a));
      for (const TraceEvent* event :
           per_analyst[static_cast<size_t>(a)]) {
        Outcome outcome;
        outcome.analyst_id = client.analyst_id();
        outcome.envelope = client.Call(event->query_name);
        std::lock_guard<std::mutex> lock(outcomes_mutex);
        outcomes.push_back(std::move(outcome));
      }
    });
  }
  for (std::thread& thread : analysts) thread.join();
  harness.endpoint().Shutdown();

  const std::vector<api::ServerEndpoint::ArrivalRecord> arrivals =
      harness.endpoint().ArrivalLog();
  ASSERT_EQ(arrivals.size(), trace.events.size());

  std::map<std::pair<std::string, uint64_t>, const Outcome*> by_key;
  for (const Outcome& outcome : outcomes) {
    by_key[{outcome.analyst_id, outcome.envelope.request_id}] = &outcome;
  }

  // Sequential replay under the same mechanism options and seed.
  erm::NoisyGradientOracle replay_oracle;
  const api::ServerOptions server =
      MakeServerOptions(spec, options, harness.catalog().scale());
  core::PmwCm sequential(&harness.dataset(), &replay_oracle,
                         server.mechanism, options.server_seed);
  for (size_t position = 0; position < arrivals.size(); ++position) {
    const api::ServerEndpoint::ArrivalRecord& record = arrivals[position];
    auto it = by_key.find({record.analyst_id, record.client_request_id});
    ASSERT_NE(it, by_key.end()) << "position " << position;
    const api::AnswerEnvelope& got = it->second->envelope;
    Result<core::PmwAnswer> want =
        sequential.AnswerQuery(*harness.catalog().Find(record.query_name));
    ASSERT_EQ(got.ok(), want.ok()) << "position " << position;
    if (!want.ok()) continue;
    ASSERT_EQ(got.answer.size(), want.value().theta.size());
    for (size_t i = 0; i < got.answer.size(); ++i) {
      // Exact, not NEAR: the claim is bit-identical transcripts at
      // (2 shards x 2 threads) behind the front door.
      EXPECT_EQ(got.answer[i], want.value().theta[i])
          << "position " << position << " coord " << i;
    }
    EXPECT_EQ(got.meta.hard_round, want.value().was_update) << position;
  }
  // At least one hard round actually fired, or the claim is vacuous.
  EXPECT_GT(sequential.update_count(), 0);
  EXPECT_EQ(harness.endpoint().service().mechanism().ledger().Report(),
            sequential.ledger().Report());
}

}  // namespace
}  // namespace workload
}  // namespace pmw
