// Tests for the DP primitives: mechanisms (statistical checks with fixed
// seeds), composition arithmetic (Theorem 3.10), the sparse vector
// (Theorem 3.1's behaviour), and the privacy ledger.

#include <cmath>
#include <vector>

#include "common/random.h"
#include "common/stats.h"
#include "dp/composition.h"
#include "dp/ledger.h"
#include "dp/mechanisms.h"
#include "dp/privacy.h"
#include "dp/sparse_vector.h"
#include "gtest/gtest.h"

namespace pmw {
namespace dp {
namespace {

TEST(PrivacyParamsTest, PureDetection) {
  EXPECT_TRUE((PrivacyParams{1.0, 0.0}).IsPure());
  EXPECT_FALSE((PrivacyParams{1.0, 1e-6}).IsPure());
}

TEST(LaplaceMechanismTest, UnbiasedWithCorrectScale) {
  Rng rng(1);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.Add(LaplaceMechanism(5.0, /*sensitivity=*/0.5, /*epsilon=*/2.0,
                               &rng));
  }
  EXPECT_NEAR(stats.mean(), 5.0, 0.01);
  // Variance of Lap(b) is 2 b^2 with b = 0.25.
  EXPECT_NEAR(stats.variance(), 2.0 * 0.0625, 0.01);
}

TEST(GaussianMechanismTest, SigmaMatchesClassicFormula) {
  PrivacyParams p{1.0, 1e-5};
  double sigma = GaussianSigma(0.1, p);
  EXPECT_NEAR(sigma, 0.1 * std::sqrt(2.0 * std::log(1.25e5)) / 1.0, 1e-12);
}

TEST(GaussianMechanismTest, VectorAddsIndependentNoise) {
  Rng rng(3);
  PrivacyParams p{1.0, 1e-6};
  std::vector<double> base(2, 0.0);
  RunningStats s0, s1;
  for (int i = 0; i < 20000; ++i) {
    auto noisy = GaussianMechanismVector(base, 0.05, p, &rng);
    s0.Add(noisy[0]);
    s1.Add(noisy[1]);
  }
  double sigma = GaussianSigma(0.05, p);
  EXPECT_NEAR(s0.stddev(), sigma, 0.05 * sigma);
  EXPECT_NEAR(s1.stddev(), sigma, 0.05 * sigma);
}

TEST(ExponentialMechanismTest, PrefersHighScores) {
  Rng rng(5);
  std::vector<double> scores = {0.0, 1.0, 0.2};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 20000; ++i) {
    counts[ExponentialMechanism(scores, 0.1, 2.0, &rng)] += 1;
  }
  EXPECT_GT(counts[1], counts[0]);
  EXPECT_GT(counts[1], counts[2]);
  // P(1)/P(0) should be ~ exp(eps*(s1-s0)/(2*sens)) = exp(10).
  EXPECT_GT(static_cast<double>(counts[1]) / (counts[0] + 1), 100.0);
}

TEST(ExponentialMechanismTest, GumbelSamplingMatchesSoftmaxRatios) {
  Rng rng(7);
  std::vector<double> scores = {0.0, 0.3};
  const double eps = 1.0, sens = 0.5;
  int count1 = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    count1 += ExponentialMechanism(scores, sens, eps, &rng);
  }
  double expected =
      std::exp(eps * 0.3 / (2 * sens)) / (1.0 + std::exp(eps * 0.3 / (2 * sens)));
  EXPECT_NEAR(static_cast<double>(count1) / trials, expected, 0.01);
}

TEST(ReportNoisyMaxTest, PrefersHighScores) {
  Rng rng(9);
  std::vector<double> scores = {0.1, 0.9, 0.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 5000; ++i) {
    counts[ReportNoisyMax(scores, 0.05, 1.0, &rng)] += 1;
  }
  EXPECT_GT(counts[1], 4500);
}

TEST(CompositionTest, BasicAddsUp) {
  PrivacyParams total = BasicComposition({0.1, 1e-8}, 10);
  EXPECT_NEAR(total.epsilon, 1.0, 1e-12);
  EXPECT_NEAR(total.delta, 1e-7, 1e-18);
}

TEST(CompositionTest, StrongMatchesTheorem310Formula) {
  PrivacyParams per{0.05, 1e-9};
  int rounds = 50;
  double delta_prime = 1e-6;
  PrivacyParams total = StrongComposition(per, rounds, delta_prime);
  double expected_eps =
      std::sqrt(2.0 * 50 * std::log(1e6)) * 0.05 + 2.0 * 50 * 0.0025;
  EXPECT_NEAR(total.epsilon, expected_eps, 1e-12);
  EXPECT_NEAR(total.delta, 1e-6 + 50e-9, 1e-15);
}

TEST(CompositionTest, PerRoundBudgetComposesBackWithinTotal) {
  // The paper's split must re-compose to within (eps, delta).
  PrivacyParams total{0.5, 1e-6};
  for (int rounds : {1, 8, 64, 512}) {
    PrivacyParams per = PerRoundBudget(total, rounds);
    PrivacyParams recomposed =
        StrongComposition(per, rounds, total.delta / 2.0);
    EXPECT_LE(recomposed.epsilon, total.epsilon + 1e-9)
        << "rounds=" << rounds;
    EXPECT_LE(recomposed.delta, total.delta + 1e-15) << "rounds=" << rounds;
  }
}

TEST(CompositionTest, MoreRoundsMeansSmallerPerRoundBudget) {
  PrivacyParams total{1.0, 1e-6};
  double prev = 1e9;
  for (int rounds : {1, 2, 4, 8, 16}) {
    PrivacyParams per = PerRoundBudget(total, rounds);
    EXPECT_LT(per.epsilon, prev);
    prev = per.epsilon;
  }
}

TEST(SparseVectorTest, ClearlyAboveGetsTop) {
  SparseVector::Options options;
  options.max_top_answers = 5;
  options.alpha = 0.2;
  options.sensitivity = 1e-4;  // big n => tiny noise
  options.privacy = {1.0, 1e-6};
  SparseVector sv(options, 42);
  for (int i = 0; i < 5; ++i) {
    auto a = sv.Process(0.5);  // far above alpha
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(*a, SparseVector::Answer::kTop);
  }
  EXPECT_TRUE(sv.halted());
}

TEST(SparseVectorTest, ClearlyBelowGetsBottom) {
  SparseVector::Options options;
  options.max_top_answers = 3;
  options.alpha = 0.2;
  options.sensitivity = 1e-4;
  options.privacy = {1.0, 1e-6};
  SparseVector sv(options, 43);
  for (int i = 0; i < 200; ++i) {
    auto a = sv.Process(0.0);
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(*a, SparseVector::Answer::kBottom);
  }
  EXPECT_FALSE(sv.halted());
  EXPECT_EQ(sv.top_count(), 0);
  EXPECT_EQ(sv.queries_processed(), 200);
}

TEST(SparseVectorTest, HaltsAfterTTops) {
  SparseVector::Options options;
  options.max_top_answers = 2;
  options.alpha = 0.1;
  options.sensitivity = 1e-4;
  options.privacy = {1.0, 1e-6};
  SparseVector sv(options, 44);
  EXPECT_TRUE(sv.Process(1.0).ok());
  EXPECT_TRUE(sv.Process(1.0).ok());
  auto after = sv.Process(1.0);
  EXPECT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kHalted);
}

TEST(SparseVectorTest, NoiseScalesGrowWithT) {
  SparseVector::Options options;
  options.max_top_answers = 4;
  options.alpha = 0.1;
  options.sensitivity = 0.01;
  options.privacy = {1.0, 1e-6};
  SparseVector small_t(options, 1);
  options.max_top_answers = 64;
  SparseVector big_t(options, 1);
  EXPECT_GT(big_t.query_noise_scale(), small_t.query_noise_scale());
}

TEST(SparseVectorTest, PureDpModeWorks) {
  SparseVector::Options options;
  options.max_top_answers = 2;
  options.alpha = 0.3;
  options.sensitivity = 1e-5;
  options.privacy = {1.0, 0.0};  // pure DP
  SparseVector sv(options, 45);
  auto a = sv.Process(0.0);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, SparseVector::Answer::kBottom);
}

// Theorem 3.1's accuracy event: at the theorem-sized n, every planted
// above-threshold query answers kTop and every below-half query answers
// kBottom, across the full adaptive stream.
class SparseVectorAccuracyTest : public ::testing::TestWithParam<int> {};

TEST_P(SparseVectorAccuracyTest, AccurateAtTheoremN) {
  const int T = 4;
  const long long k = 200;
  const double alpha = 0.2;
  const double beta = 0.05;
  PrivacyParams privacy{1.0, 1e-6};
  const double S = 1.0;
  double n = SparseVector::TheoremRequiredN(S, T, k, alpha, privacy, beta);

  SparseVector::Options options;
  options.max_top_answers = T;
  options.alpha = alpha;
  options.sensitivity = 3.0 * S / n;
  options.privacy = privacy;
  SparseVector sv(options, 1000 + GetParam());

  Rng rng(2000 + GetParam());
  int planted_tops = 0;
  for (long long j = 0; j < k && !sv.halted(); ++j) {
    bool plant_high = planted_tops < T - 1 && rng.Bernoulli(0.02);
    double value = plant_high ? alpha * 1.5 : alpha * 0.25;
    auto a = sv.Process(value);
    ASSERT_TRUE(a.ok());
    if (plant_high) {
      EXPECT_EQ(*a, SparseVector::Answer::kTop) << "query " << j;
      ++planted_tops;
    } else {
      EXPECT_EQ(*a, SparseVector::Answer::kBottom) << "query " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseVectorAccuracyTest,
                         ::testing::Range(0, 6));

TEST(LedgerTest, RecordsAndTotals) {
  PrivacyLedger ledger;
  ledger.Record("oracle:a", {0.1, 1e-8});
  ledger.Record("oracle:a", {0.1, 1e-8});
  ledger.Record("sparse-vector", {0.5, 1e-7});
  EXPECT_EQ(ledger.event_count(), 3);
  EXPECT_EQ(ledger.CountWithPrefix("oracle:"), 2);
  PrivacyParams basic = ledger.BasicTotal();
  EXPECT_NEAR(basic.epsilon, 0.7, 1e-12);
  PrivacyParams grouped = ledger.GroupedStrongTotal(1e-9);
  EXPECT_GT(grouped.epsilon, 0.0);
  EXPECT_NE(ledger.Report().find("sparse-vector"), std::string::npos);
}

TEST(LedgerTest, GroupedStrongBeatsBasicForManyEvents) {
  PrivacyLedger ledger;
  for (int i = 0; i < 400; ++i) ledger.Record("call", {0.01, 1e-10});
  double basic_eps = ledger.BasicTotal().epsilon;
  double strong_eps = ledger.GroupedStrongTotal(1e-8).epsilon;
  EXPECT_LT(strong_eps, basic_eps);
}

TEST(LedgerTest, BasicTotalWithPrefixIsolatesLabelFamilies) {
  PrivacyLedger ledger;
  ledger.Record("sparse-vector", {0.5, 1e-7});
  ledger.Record("oracle:gd", {0.1, 1e-8});
  ledger.Record("oracle:gd", {0.1, 1e-8});
  PrivacyParams oracle_total = ledger.BasicTotalWithPrefix("oracle:");
  EXPECT_NEAR(oracle_total.epsilon, 0.2, 1e-12);
  EXPECT_NEAR(oracle_total.delta, 2e-8, 1e-20);
  PrivacyParams none = ledger.BasicTotalWithPrefix("nothing:");
  EXPECT_EQ(none.epsilon, 0.0);
  EXPECT_EQ(none.delta, 0.0);
}

TEST(BudgetViewTest, TracksConsumptionAgainstAnEventBudget) {
  // The quota view the serving front-end uses: "oracle:" events against
  // the schedule's T. It must track the ledger live — the ledger is the
  // single source of truth, the view holds no state of its own.
  PrivacyLedger ledger;
  BudgetView view(&ledger, "oracle:", 3);
  EXPECT_EQ(view.consumed(), 0);
  EXPECT_EQ(view.remaining(), 3);
  EXPECT_FALSE(view.exhausted());

  ledger.Record("sparse-vector", {0.5, 1e-7});  // other labels don't count
  EXPECT_EQ(view.consumed(), 0);

  for (int i = 0; i < 3; ++i) ledger.Record("oracle:gd", {0.1, 1e-8});
  EXPECT_EQ(view.consumed(), 3);
  EXPECT_EQ(view.remaining(), 0);
  EXPECT_TRUE(view.exhausted());
  EXPECT_NEAR(view.Spent().epsilon, 0.3, 1e-12);

  // Over-consumption (shouldn't happen, but the view must stay sane).
  ledger.Record("oracle:gd", {0.1, 1e-8});
  EXPECT_EQ(view.remaining(), 0);
  EXPECT_TRUE(view.exhausted());
}

TEST(BudgetViewTest, NonPositiveMaxMeansUnlimited) {
  PrivacyLedger ledger;
  BudgetView view(&ledger, "oracle:", 0);
  for (int i = 0; i < 10; ++i) ledger.Record("oracle:gd", {0.1, 1e-8});
  EXPECT_EQ(view.consumed(), 10);
  EXPECT_FALSE(view.exhausted());
  EXPECT_GT(view.remaining(), 1LL << 40);
}

}  // namespace
}  // namespace dp
}  // namespace pmw
