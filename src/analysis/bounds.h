// Closed-form sample-complexity bounds — the formulas of Table 1 and the
// theorems they cite. The Table 1 benchmarks print these next to measured
// errors so the reader can compare paper shape vs measurement.
//
// All bounds are stated as the paper does: the dataset size n sufficient
// for (alpha, beta)-accuracy at (eps, delta)-DP, up to the O~/polylog
// factors the paper suppresses. Constants here are the explicit ones where
// the paper gives them (Theorems 3.1 and 3.8) and 1 otherwise.

#ifndef PMWCM_ANALYSIS_BOUNDS_H_
#define PMWCM_ANALYSIS_BOUNDS_H_

#include "dp/privacy.h"

namespace pmw {
namespace analysis {

/// Common experiment parameters entering the bounds.
struct BoundParams {
  double alpha = 0.1;       // target accuracy
  double beta = 0.05;       // failure probability
  dp::PrivacyParams privacy{1.0, 1e-6};
  double log_universe = 1;  // log |X|
  double dim = 1;           // d
  double k = 1;             // number of queries
  double sigma = 1;         // strong convexity (row 4)
  double scale = 2;         // S
};

// --- Table 1, single-query column -----------------------------------------

/// Row 1 [DMNS06]: n = O(1/alpha) for one linear query.
double LinearSingleQueryN(const BoundParams& p);

/// Row 2 [BST14, Thm 4.1]: n = O(sqrt(d) / (alpha eps)).
double LipschitzSingleQueryN(const BoundParams& p);

/// Row 3 [JT14, Thm 4.3]: n = O(1 / (alpha^2 eps)).
double GlmSingleQueryN(const BoundParams& p);

/// Row 4 [BST14, Thm 4.5]: n = O(sqrt(d) / (sqrt(sigma) alpha eps)).
double StronglyConvexSingleQueryN(const BoundParams& p);

// --- Table 1, k-query column (this paper) ----------------------------------

/// Row 1 [HR10]: n = O~(sqrt(log|X|) log k / alpha^2).
double LinearKQueriesN(const BoundParams& p);

/// Row 2 (Thm 4.2): n = O~(sqrt(log|X|) max(sqrt(d), log k) / (alpha^2 eps)).
double LipschitzKQueriesN(const BoundParams& p);

/// Row 3 (Thm 4.4): n = O~(sqrt(log|X|) max(1/alpha, log k) / (alpha^2 eps)).
double GlmKQueriesN(const BoundParams& p);

/// Row 4 (Thm 4.6): n = O~(sqrt(log|X|)/eps *
///                         max(sqrt(d)/(sqrt(sigma) alpha^{3/2}),
///                             log k / alpha^2)).
double StronglyConvexKQueriesN(const BoundParams& p);

// --- Explicit-constant theorem bounds --------------------------------------

/// Theorem 3.8's n (with the printed 4096 constant), given the oracle's own
/// requirement n'.
double Theorem38N(const BoundParams& p, double oracle_n);

/// Theorem 3.1's n (with the printed 256 constant) for the sparse vector
/// with T top answers among k queries.
double Theorem31N(const BoundParams& p, double T);

/// Figure 3's update budget T = 64 S^2 log|X| / alpha^2.
double Figure3UpdateBudget(const BoundParams& p);

/// The composition baseline's k-query requirement: the single-query n
/// scaled by the strong-composition factor sqrt(8 k log(2/delta)) (each of
/// the k calls runs at eps_0 = eps / sqrt(8 k log(2/delta))).
double CompositionKQueriesN(const BoundParams& p, double single_query_n);

/// Section 4.1's crossover: PMW needs fewer samples than composition when
/// sqrt(k) >> S sqrt(log|X|) log(k) / alpha; returns the smallest k
/// (searched over powers of 2 up to 2^80) where PMW's requirement drops
/// below composition's, or -1 if none is found.
double CrossoverK(const BoundParams& p, double single_query_n);

}  // namespace analysis
}  // namespace pmw

#endif  // PMWCM_ANALYSIS_BOUNDS_H_
