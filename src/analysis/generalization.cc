#include "analysis/generalization.h"

#include <cmath>

#include "common/check.h"

namespace pmw {
namespace analysis {

double TransferredPopulationAccuracy(double sample_alpha,
                                     const dp::PrivacyParams& privacy,
                                     double n, double beta) {
  PMW_CHECK_GT(sample_alpha, 0.0);
  PMW_CHECK_GT(n, 0.0);
  PMW_CHECK_GT(beta, 0.0);
  dp::ValidatePrivacyParams(privacy);
  double dp_term = std::exp(privacy.epsilon) - 1.0;
  double sampling_term = std::sqrt(std::log(2.0 / beta) / (2.0 * n));
  double delta_term = privacy.delta > 0.0 ? n * privacy.delta / beta : 0.0;
  return sample_alpha + dp_term + sampling_term + delta_term;
}

double GeneralizationSufficientN(double alpha,
                                 const dp::PrivacyParams& privacy,
                                 double beta) {
  PMW_CHECK_GT(alpha, 0.0);
  // The dp_term is n-independent; if eps alone exceeds 2 alpha the target
  // is unreachable at any n (the caller should shrink eps toward alpha —
  // exactly the tuning BSSU15 prescribe).
  double dp_term = std::exp(privacy.epsilon) - 1.0;
  if (dp_term >= alpha) return -1.0;
  for (double n = 16.0; n <= 1e15; n *= 2.0) {
    if (TransferredPopulationAccuracy(alpha, privacy, n, beta) <=
        2.0 * alpha) {
      return n;
    }
  }
  return -1.0;
}

double GeneralizationGap(const core::ErrorOracle& error_oracle,
                         const convex::CmQuery& query,
                         const data::Histogram& sample,
                         const data::Histogram& population,
                         const convex::Vec& theta) {
  double on_sample = error_oracle.AnswerError(query, sample, theta);
  double on_population = error_oracle.AnswerError(query, population, theta);
  return std::abs(on_sample - on_population);
}

}  // namespace analysis
}  // namespace pmw
