// Generalization bounds for adaptive data analysis (paper Section 1.3).
//
// [DFH+15] / [BSSU15] transfer theorem: if a mechanism is
// (eps, delta)-differentially private AND (alpha, beta)-accurate with
// respect to the *sample*, then it is (alpha', beta')-accurate with
// respect to the unknown *population* the sample was drawn from, with
//   alpha' = O(alpha + eps + sqrt(log(1/beta)/n) + ...).
// The paper's closing remark is that plugging Theorem 3.8 into the BSSU15
// transfer theorem yields state-of-the-art generalization for adaptively
// chosen CM queries. This module provides that arithmetic plus the
// measurement helpers the adaptive benchmarks/examples use.

#ifndef PMWCM_ANALYSIS_GENERALIZATION_H_
#define PMWCM_ANALYSIS_GENERALIZATION_H_

#include "convex/cm_query.h"
#include "core/error.h"
#include "data/histogram.h"
#include "dp/privacy.h"

namespace pmw {
namespace analysis {

/// The transfer-theorem population accuracy: for an (eps, delta)-DP
/// mechanism that is alpha-accurate on a sample of size n, the population
/// accuracy is bounded (up to moderate constants, BSSU15-style) by
///   alpha + (e^eps - 1) + sample deviation sqrt(ln(2/beta)/(2n))
///   + delta-term n*delta/beta.
/// Returns that bound; small exactly when eps ~ alpha and delta << 1/n.
double TransferredPopulationAccuracy(double sample_alpha,
                                     const dp::PrivacyParams& privacy,
                                     double n, double beta);

/// The sample size at which the transferred population accuracy of the
/// paper's Theorem 3.8 mechanism reaches 2*alpha (i.e. generalization
/// stops being the bottleneck), found by doubling search.
double GeneralizationSufficientN(double alpha,
                                 const dp::PrivacyParams& privacy,
                                 double beta);

/// Measured counterpart: the gap between an answer's excess risk on the
/// sample histogram and on the population histogram
///   |err_l(sample, theta) - err_l(population, theta)|.
double GeneralizationGap(const core::ErrorOracle& error_oracle,
                         const convex::CmQuery& query,
                         const data::Histogram& sample,
                         const data::Histogram& population,
                         const convex::Vec& theta);

}  // namespace analysis
}  // namespace pmw

#endif  // PMWCM_ANALYSIS_GENERALIZATION_H_
