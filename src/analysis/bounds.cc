#include "analysis/bounds.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace pmw {
namespace analysis {
namespace {

void Validate(const BoundParams& p) {
  PMW_CHECK_GT(p.alpha, 0.0);
  PMW_CHECK_GT(p.beta, 0.0);
  PMW_CHECK_GT(p.privacy.epsilon, 0.0);
  PMW_CHECK_GT(p.log_universe, 0.0);
  PMW_CHECK_GE(p.dim, 1.0);
  PMW_CHECK_GE(p.k, 1.0);
  PMW_CHECK_GT(p.sigma, 0.0);
  PMW_CHECK_GT(p.scale, 0.0);
}

double LogK(const BoundParams& p) { return std::log(std::max(p.k, 2.0)); }

}  // namespace

double LinearSingleQueryN(const BoundParams& p) {
  Validate(p);
  return 1.0 / (p.alpha * p.privacy.epsilon);
}

double LipschitzSingleQueryN(const BoundParams& p) {
  Validate(p);
  return std::sqrt(p.dim) / (p.alpha * p.privacy.epsilon);
}

double GlmSingleQueryN(const BoundParams& p) {
  Validate(p);
  return 1.0 / (p.alpha * p.alpha * p.privacy.epsilon);
}

double StronglyConvexSingleQueryN(const BoundParams& p) {
  Validate(p);
  return std::sqrt(p.dim) /
         (std::sqrt(p.sigma) * p.alpha * p.privacy.epsilon);
}

double LinearKQueriesN(const BoundParams& p) {
  Validate(p);
  return std::sqrt(p.log_universe) * LogK(p) /
         (p.alpha * p.alpha * p.privacy.epsilon);
}

double LipschitzKQueriesN(const BoundParams& p) {
  Validate(p);
  double first = std::sqrt(p.dim * p.log_universe);
  double second = LogK(p) * std::sqrt(p.log_universe);
  return std::max(first, second) / (p.alpha * p.alpha * p.privacy.epsilon);
}

double GlmKQueriesN(const BoundParams& p) {
  Validate(p);
  double first = std::sqrt(p.log_universe) / p.alpha;  // 1/alpha^3 overall
  double second = LogK(p) * std::sqrt(p.log_universe);
  return std::max(first, second) / (p.alpha * p.alpha * p.privacy.epsilon);
}

double StronglyConvexKQueriesN(const BoundParams& p) {
  Validate(p);
  double first = std::sqrt(p.dim * p.log_universe) /
                 (std::sqrt(p.sigma) * std::sqrt(p.alpha));
  double second = LogK(p) * std::sqrt(p.log_universe);
  return std::max(first, second) / (p.alpha * p.alpha * p.privacy.epsilon);
}

double Theorem38N(const BoundParams& p, double oracle_n) {
  Validate(p);
  PMW_CHECK_GT(p.privacy.delta, 0.0);
  double pmw_n = 4096.0 * p.scale * p.scale *
                 std::sqrt(p.log_universe * std::log(4.0 / p.privacy.delta)) *
                 std::log(8.0 * p.k / p.beta) /
                 (p.privacy.epsilon * p.alpha * p.alpha);
  return std::max(oracle_n, pmw_n);
}

double Theorem31N(const BoundParams& p, double T) {
  Validate(p);
  PMW_CHECK_GE(T, 1.0);
  double delta = p.privacy.delta > 0.0 ? p.privacy.delta : 1e-9;
  return 256.0 * p.scale * std::sqrt(T * std::log(2.0 / delta)) *
         std::log(4.0 * p.k / p.beta) / (p.privacy.epsilon * p.alpha);
}

double Figure3UpdateBudget(const BoundParams& p) {
  Validate(p);
  return 64.0 * p.scale * p.scale * p.log_universe / (p.alpha * p.alpha);
}

double CompositionKQueriesN(const BoundParams& p, double single_query_n) {
  Validate(p);
  PMW_CHECK_GT(single_query_n, 0.0);
  PMW_CHECK_GT(p.privacy.delta, 0.0);
  // Per-call epsilon shrinks by the better of basic composition (factor k)
  // and strong composition (factor sqrt(8 k log(2/delta))); single-query n
  // is inversely proportional to epsilon, so n scales up the same way.
  double strong_factor = std::sqrt(8.0 * p.k * std::log(2.0 / p.privacy.delta));
  return single_query_n * std::min(p.k, strong_factor);
}

double CrossoverK(const BoundParams& p, double single_query_n) {
  Validate(p);
  for (double k = 2.0; k <= std::pow(2.0, 80); k *= 2.0) {
    BoundParams at_k = p;
    at_k.k = k;
    double composition = CompositionKQueriesN(at_k, single_query_n);
    double pmw = Theorem38N(at_k, single_query_n);
    if (pmw < composition) return k;
  }
  return -1.0;
}

}  // namespace analysis
}  // namespace pmw
