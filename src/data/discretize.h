// Rounding continuous records to a finite universe.
//
// The paper (Section 1.1) notes that for data in R^d it is essentially
// without loss of generality (up to a factor ~2 in error) to round records
// to a finite universe of size (d/alpha)^O(d). These helpers perform that
// rounding against any enumerable Universe by nearest-row search.

#ifndef PMWCM_DATA_DISCRETIZE_H_
#define PMWCM_DATA_DISCRETIZE_H_

#include <utility>
#include <vector>

#include "data/dataset.h"
#include "data/universe.h"

namespace pmw {
namespace data {

/// A raw (continuous) record: features plus label.
struct ContinuousRecord {
  std::vector<double> features;
  double label = 0.0;
};

/// Index of the universe row minimizing squared feature distance; among
/// rows at equal distance, one whose label sign matches is preferred.
int NearestRow(const Universe& universe, const ContinuousRecord& record);

/// Rounds every record and assembles the discretized dataset.
Dataset DiscretizeDataset(const Universe& universe,
                          const std::vector<ContinuousRecord>& records);

/// Maximum feature-space rounding distance incurred over `records` —
/// the quantity that the paper's "factor of 2 in error" remark bounds.
double MaxRoundingDistance(const Universe& universe,
                           const std::vector<ContinuousRecord>& records);

}  // namespace data
}  // namespace pmw

#endif  // PMWCM_DATA_DISCRETIZE_H_
