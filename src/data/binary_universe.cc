#include "data/binary_universe.h"

#include <cmath>

#include "common/check.h"

namespace pmw {
namespace data {
namespace {

std::vector<Row> MakeHypercubeRows(int dim, bool labeled) {
  PMW_CHECK_GE(dim, 1);
  PMW_CHECK_LE(dim, labeled ? 19 : 20);
  const double scale = 1.0 / std::sqrt(static_cast<double>(dim));
  const int n_feature_patterns = 1 << dim;
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(n_feature_patterns) * (labeled ? 2 : 1));
  for (int pattern = 0; pattern < n_feature_patterns; ++pattern) {
    Row base;
    base.features.resize(dim);
    for (int j = 0; j < dim; ++j) {
      base.features[j] = ((pattern >> j) & 1) ? scale : -scale;
    }
    if (labeled) {
      // Label occupies the lowest index bit: emit label -1 then +1.
      Row neg = base;
      neg.label = -1.0;
      rows.push_back(std::move(neg));
      Row pos = base;
      pos.label = 1.0;
      rows.push_back(std::move(pos));
    } else {
      rows.push_back(std::move(base));
    }
  }
  return rows;
}

}  // namespace

HypercubeUniverse::HypercubeUniverse(int dim)
    : VectorUniverse(MakeHypercubeRows(dim, /*labeled=*/false),
                     "hypercube(d=" + std::to_string(dim) + ")"),
      dim_(dim) {}

int HypercubeUniverse::IndexOf(const std::vector<int>& signs) const {
  PMW_CHECK_EQ(static_cast<int>(signs.size()), dim_);
  int index = 0;
  for (int j = 0; j < dim_; ++j) {
    PMW_CHECK_MSG(signs[j] == 1 || signs[j] == -1, "signs must be +-1");
    if (signs[j] == 1) index |= (1 << j);
  }
  return index;
}

LabeledHypercubeUniverse::LabeledHypercubeUniverse(int dim)
    : VectorUniverse(MakeHypercubeRows(dim, /*labeled=*/true),
                     "labeled-hypercube(d=" + std::to_string(dim) + ")"),
      dim_(dim) {}

int LabeledHypercubeUniverse::IndexOf(const std::vector<int>& signs,
                                      int label) const {
  PMW_CHECK_EQ(static_cast<int>(signs.size()), dim_);
  PMW_CHECK_MSG(label == 1 || label == -1, "label must be +-1");
  int index = 0;
  for (int j = 0; j < dim_; ++j) {
    PMW_CHECK_MSG(signs[j] == 1 || signs[j] == -1, "signs must be +-1");
    if (signs[j] == 1) index |= (1 << (j + 1));
  }
  if (label == 1) index |= 1;
  return index;
}

}  // namespace data
}  // namespace pmw
