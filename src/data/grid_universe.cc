#include "data/grid_universe.h"

#include <cmath>

#include "common/check.h"

namespace pmw {
namespace data {
namespace {

std::vector<Row> MakeGridRows(int dim, int points_per_axis, bool labeled) {
  PMW_CHECK_GE(dim, 1);
  PMW_CHECK_GE(points_per_axis, 2);
  double total = std::pow(static_cast<double>(points_per_axis), dim) *
                 (labeled ? 2.0 : 1.0);
  PMW_CHECK_MSG(total <= static_cast<double>(1 << 20),
                "grid universe too large to enumerate");
  const double radius = 1.0 / std::sqrt(static_cast<double>(dim));
  std::vector<double> axis(points_per_axis);
  for (int i = 0; i < points_per_axis; ++i) {
    axis[i] = -radius + 2.0 * radius * static_cast<double>(i) /
                            static_cast<double>(points_per_axis - 1);
  }
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(total));
  std::vector<int> idx(dim, 0);
  while (true) {
    Row base;
    base.features.resize(dim);
    for (int j = 0; j < dim; ++j) base.features[j] = axis[idx[j]];
    if (labeled) {
      Row neg = base;
      neg.label = -1.0;
      rows.push_back(std::move(neg));
      Row pos = base;
      pos.label = 1.0;
      rows.push_back(std::move(pos));
    } else {
      rows.push_back(std::move(base));
    }
    // Odometer increment over the d axis indices.
    int j = 0;
    while (j < dim) {
      if (++idx[j] < points_per_axis) break;
      idx[j] = 0;
      ++j;
    }
    if (j == dim) break;
  }
  return rows;
}

}  // namespace

GridUniverse::GridUniverse(int dim, int points_per_axis, bool labeled)
    : VectorUniverse(MakeGridRows(dim, points_per_axis, labeled),
                     "grid(d=" + std::to_string(dim) + ",m=" +
                         std::to_string(points_per_axis) +
                         (labeled ? ",labeled)" : ")")),
      dim_(dim),
      points_per_axis_(points_per_axis),
      labeled_(labeled) {}

int GridUniverse::IndexOf(const std::vector<int>& axis_indices,
                          int label) const {
  PMW_CHECK_EQ(static_cast<int>(axis_indices.size()), dim_);
  long long cell = 0;
  // Row layout from MakeGridRows: axis 0 varies fastest.
  long long stride = 1;
  for (int j = 0; j < dim_; ++j) {
    PMW_CHECK_GE(axis_indices[j], 0);
    PMW_CHECK_LT(axis_indices[j], points_per_axis_);
    cell += stride * axis_indices[j];
    stride *= points_per_axis_;
  }
  if (labeled_) {
    PMW_CHECK_MSG(label == 1 || label == -1, "label must be +-1");
    cell = cell * 2 + (label == 1 ? 1 : 0);
  }
  return static_cast<int>(cell);
}

}  // namespace data
}  // namespace pmw
