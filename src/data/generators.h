// Synthetic data distributions over finite universes.
//
// The paper has no experimental datasets (it is a theory paper); these
// generators provide the workloads used by the benchmark harness. Each
// generator returns an explicit Histogram over universe indices, from which
// datasets of any size n can be sampled (iid) or constructed
// deterministically (expected counts), mirroring how the theorems quantify
// over worst-case datasets of size n.

#ifndef PMWCM_DATA_GENERATORS_H_
#define PMWCM_DATA_GENERATORS_H_

#include <vector>

#include "common/random.h"
#include "data/histogram.h"
#include "data/universe.h"

namespace pmw {
namespace data {

/// Uniform over the universe.
Histogram UniformDistribution(const Universe& universe);

/// Product distribution on sign patterns: coordinate j is positive with
/// probability `coordinate_biases[j]` (matched by feature sign); the label,
/// if present, is +1 with probability `label_bias`.
Histogram ProductDistribution(const Universe& universe,
                              const std::vector<double>& coordinate_biases,
                              double label_bias);

/// A logistic ground-truth model: features follow the product distribution
/// with the given biases and P(label=+1 | x) = sigmoid(<theta_star, x> /
/// temperature). Universe rows with label 0 are treated as unlabeled and get
/// the plain product mass. Used for regression/classification workloads.
Histogram LogisticModelDistribution(const Universe& universe,
                                    const std::vector<double>& theta_star,
                                    const std::vector<double>& coordinate_biases,
                                    double temperature);

/// A mixture of Gaussian-like bumps centred at `centers`:
/// p(x) proportional to sum_c exp(-||features(x) - center_c||^2 / width).
/// Labels (when present) are +1 with probability depending on the nearest
/// centre's parity, giving clusterable classification data.
Histogram MixtureDistribution(const Universe& universe,
                              const std::vector<std::vector<double>>& centers,
                              double width);

/// Samples a dataset of n iid records from `dist`.
Dataset SampleDataset(const Universe& universe, const Histogram& dist, int n,
                      Rng* rng);

/// Builds a dataset of exactly n records whose empirical histogram is the
/// best integer rounding of `dist` (largest-remainder method). Deterministic;
/// useful when an experiment wants the dataset to equal its distribution.
Dataset RoundedDataset(const Universe& universe, const Histogram& dist, int n);

}  // namespace data
}  // namespace pmw

#endif  // PMWCM_DATA_GENERATORS_H_
