// Datasets D in X^n, stored as universe-row indices (Section 2.1).

#ifndef PMWCM_DATA_DATASET_H_
#define PMWCM_DATA_DATASET_H_

#include <vector>

#include "data/universe.h"

namespace pmw {
namespace data {

/// A dataset of n records, each an index into a fixed Universe. Storing
/// indices (rather than copies of the rows) keeps histogram conversion exact
/// and makes neighbouring-dataset enumeration (for sensitivity tests) cheap.
class Dataset {
 public:
  /// All indices must be valid rows of `universe`, which must outlive *this.
  Dataset(const Universe* universe, std::vector<int> indices);

  int n() const { return static_cast<int>(indices_.size()); }
  const Universe& universe() const { return *universe_; }

  /// Universe index of record i.
  int index(int i) const;

  /// The record itself.
  const Row& row(int i) const;

  /// A neighbouring dataset (Definition 2.1): record `position` replaced by
  /// universe row `new_index`.
  Dataset WithRowReplaced(int position, int new_index) const;

  const std::vector<int>& indices() const { return indices_; }

 private:
  const Universe* universe_;
  std::vector<int> indices_;
};

}  // namespace data
}  // namespace pmw

#endif  // PMWCM_DATA_DATASET_H_
