#include "data/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_util.h"

namespace pmw {
namespace data {

Histogram::Histogram(std::vector<double> p) : p_(std::move(p)) {
  PMW_CHECK(!p_.empty());
}

Histogram Histogram::Uniform(int size) {
  PMW_CHECK_GE(size, 1);
  return Histogram(std::vector<double>(size, 1.0 / size));
}

Histogram Histogram::FromDataset(const Dataset& dataset) {
  std::vector<double> counts(dataset.universe().size(), 0.0);
  for (int i = 0; i < dataset.n(); ++i) counts[dataset.index(i)] += 1.0;
  return FromWeights(std::move(counts));
}

Histogram Histogram::FromWeights(std::vector<double> weights) {
  PMW_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    PMW_CHECK_GE(w, 0.0);
    total += w;
  }
  PMW_CHECK_GT(total, 0.0);
  for (double& w : weights) w /= total;
  return Histogram(std::move(weights));
}

double Histogram::Expectation(const std::function<double(int)>& f) const {
  double acc = 0.0;
  for (int i = 0; i < size(); ++i) {
    if (p_[i] > 0.0) acc += p_[i] * f(i);
  }
  return acc;
}

double Histogram::L1Distance(const Histogram& other) const {
  PMW_CHECK_EQ(size(), other.size());
  double acc = 0.0;
  for (int i = 0; i < size(); ++i) acc += std::abs(p_[i] - other.p_[i]);
  return acc;
}

double Histogram::Kl(const Histogram& other) const {
  return KlDivergence(p_, other.p_);
}

Histogram Histogram::MultiplicativeUpdate(const std::vector<double>& payoff,
                                          double eta) const {
  PMW_CHECK_EQ(payoff.size(), p_.size());
  // log weights: log p(x) + eta * payoff(x); stabilize by max subtraction.
  std::vector<double> logw(p_.size());
  double max_logw = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < p_.size(); ++i) {
    logw[i] = SafeLog(p_[i]) + eta * payoff[i];
    max_logw = std::max(max_logw, logw[i]);
  }
  std::vector<double> w(p_.size());
  for (size_t i = 0; i < p_.size(); ++i) w[i] = std::exp(logw[i] - max_logw);
  return FromWeights(std::move(w));
}

HistogramSupport Histogram::CompactSupport() const {
  return CompactSupport(0, size());
}

HistogramSupport Histogram::CompactSupport(int lo, int hi) const {
  PMW_CHECK_GE(lo, 0);
  PMW_CHECK_LE(lo, hi);
  PMW_CHECK_LE(hi, size());
  // Count first so long-lived supports hold exactly their size, not the
  // dense histogram's capacity.
  size_t support_size = 0;
  for (int i = lo; i < hi; ++i) {
    if (p_[i] > 0.0) ++support_size;
  }
  HistogramSupport support;
  support.reserve(support_size);
  for (int i = lo; i < hi; ++i) {
    if (p_[i] > 0.0) support.emplace_back(i, p_[i]);
  }
  return support;
}

SupportSlice SliceSupport(const HistogramSupport& support, int lo, int hi) {
  PMW_CHECK_LE(lo, hi);
  const auto index_less = [](const std::pair<int, double>& entry,
                             int index) { return entry.first < index; };
  const auto begin =
      std::lower_bound(support.begin(), support.end(), lo, index_less);
  const auto end =
      std::lower_bound(begin, support.end(), hi, index_less);
  return SupportSlice(support.data() + (begin - support.begin()),
                      static_cast<size_t>(end - begin));
}

int Histogram::SampleIndex(Rng* rng) const {
  PMW_CHECK(rng != nullptr);
  return rng->Categorical(p_);
}

Dataset Histogram::SampleDataset(const Universe& universe, int n,
                                 Rng* rng) const {
  PMW_CHECK_EQ(universe.size(), size());
  PMW_CHECK_GE(n, 1);
  std::vector<int> indices(n);
  for (int i = 0; i < n; ++i) indices[i] = SampleIndex(rng);
  return Dataset(&universe, std::move(indices));
}

}  // namespace data
}  // namespace pmw
