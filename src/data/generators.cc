#include "data/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "common/math_util.h"

namespace pmw {
namespace data {
namespace {

// Probability of the sign pattern of `row` under a product-of-biases model.
double ProductMass(const Row& row, const std::vector<double>& biases) {
  double mass = 1.0;
  for (size_t j = 0; j < row.features.size(); ++j) {
    double bias = biases[j];
    mass *= (row.features[j] > 0.0) ? bias : (1.0 - bias);
  }
  return mass;
}

}  // namespace

Histogram UniformDistribution(const Universe& universe) {
  return Histogram::Uniform(universe.size());
}

Histogram ProductDistribution(const Universe& universe,
                              const std::vector<double>& coordinate_biases,
                              double label_bias) {
  PMW_CHECK_EQ(static_cast<int>(coordinate_biases.size()),
               universe.feature_dim());
  for (double b : coordinate_biases) {
    PMW_CHECK_GE(b, 0.0);
    PMW_CHECK_LE(b, 1.0);
  }
  PMW_CHECK_GE(label_bias, 0.0);
  PMW_CHECK_LE(label_bias, 1.0);
  std::vector<double> w(universe.size());
  for (int i = 0; i < universe.size(); ++i) {
    const Row& row = universe.row(i);
    double mass = ProductMass(row, coordinate_biases);
    if (row.label > 0.0) {
      mass *= label_bias;
    } else if (row.label < 0.0) {
      mass *= (1.0 - label_bias);
    }
    w[i] = mass;
  }
  return Histogram::FromWeights(std::move(w));
}

Histogram LogisticModelDistribution(
    const Universe& universe, const std::vector<double>& theta_star,
    const std::vector<double>& coordinate_biases, double temperature) {
  PMW_CHECK_EQ(static_cast<int>(theta_star.size()), universe.feature_dim());
  PMW_CHECK_GT(temperature, 0.0);
  std::vector<double> w(universe.size());
  for (int i = 0; i < universe.size(); ++i) {
    const Row& row = universe.row(i);
    double mass = ProductMass(row, coordinate_biases);
    if (row.label != 0.0) {
      double margin = 0.0;
      for (size_t j = 0; j < row.features.size(); ++j) {
        margin += theta_star[j] * row.features[j];
      }
      double p_pos = Sigmoid(margin / temperature);
      mass *= (row.label > 0.0) ? p_pos : (1.0 - p_pos);
    }
    w[i] = mass;
  }
  return Histogram::FromWeights(std::move(w));
}

Histogram MixtureDistribution(const Universe& universe,
                              const std::vector<std::vector<double>>& centers,
                              double width) {
  PMW_CHECK(!centers.empty());
  PMW_CHECK_GT(width, 0.0);
  for (const auto& c : centers) {
    PMW_CHECK_EQ(static_cast<int>(c.size()), universe.feature_dim());
  }
  std::vector<double> w(universe.size());
  for (int i = 0; i < universe.size(); ++i) {
    const Row& row = universe.row(i);
    double mass = 0.0;
    int nearest = 0;
    double nearest_dist = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < centers.size(); ++c) {
      double dist_sq = 0.0;
      for (size_t j = 0; j < row.features.size(); ++j) {
        dist_sq += Sq(row.features[j] - centers[c][j]);
      }
      mass += std::exp(-dist_sq / width);
      if (dist_sq < nearest_dist) {
        nearest_dist = dist_sq;
        nearest = static_cast<int>(c);
      }
    }
    if (row.label != 0.0) {
      // Nearest centre's parity decides the likely label (90/10 split).
      double p_pos = (nearest % 2 == 0) ? 0.9 : 0.1;
      mass *= (row.label > 0.0) ? p_pos : (1.0 - p_pos);
    }
    w[i] = mass;
  }
  return Histogram::FromWeights(std::move(w));
}

Dataset SampleDataset(const Universe& universe, const Histogram& dist, int n,
                      Rng* rng) {
  return dist.SampleDataset(universe, n, rng);
}

Dataset RoundedDataset(const Universe& universe, const Histogram& dist,
                       int n) {
  PMW_CHECK_EQ(universe.size(), dist.size());
  PMW_CHECK_GE(n, 1);
  // Largest-remainder rounding of n * p(x) to integer counts summing to n.
  std::vector<int> counts(dist.size());
  std::vector<std::pair<double, int>> remainders(dist.size());
  int assigned = 0;
  for (int i = 0; i < dist.size(); ++i) {
    double exact = dist[i] * n;
    counts[i] = static_cast<int>(std::floor(exact));
    assigned += counts[i];
    remainders[i] = {exact - counts[i], i};
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (int j = 0; j < n - assigned; ++j) {
    counts[remainders[j % remainders.size()].second] += 1;
  }
  std::vector<int> indices;
  indices.reserve(n);
  for (int i = 0; i < dist.size(); ++i) {
    for (int c = 0; c < counts[i]; ++c) indices.push_back(i);
  }
  PMW_CHECK_EQ(static_cast<int>(indices.size()), n);
  return Dataset(&universe, std::move(indices));
}

}  // namespace data
}  // namespace pmw
