// Finite data universes (the set X of possible records).
//
// The paper (Section 2.1) represents datasets as histograms over a finite
// data universe X. A Universe enumerates the records of X; each record (Row)
// carries a feature vector and a real label so that the same universe can
// back linear queries, regression losses, and classification losses.

#ifndef PMWCM_DATA_UNIVERSE_H_
#define PMWCM_DATA_UNIVERSE_H_

#include <string>
#include <vector>

namespace pmw {
namespace data {

/// One record type in the universe: a feature vector plus a label.
/// For unlabeled universes the label is 0.
struct Row {
  std::vector<double> features;
  double label = 0.0;
};

/// An enumerable finite data universe X = {row(0), ..., row(size-1)}.
class Universe {
 public:
  virtual ~Universe() = default;

  /// |X|.
  virtual int size() const = 0;

  /// The i-th record; valid for 0 <= i < size().
  virtual const Row& row(int i) const = 0;

  /// Dimensionality of the feature vectors.
  virtual int feature_dim() const = 0;

  /// Human-readable identifier for reports.
  virtual std::string name() const = 0;

  /// log(|X|), the quantity appearing in all the paper's bounds.
  double LogSize() const;

  /// Maximum L2 norm of any feature vector in the universe.
  double MaxFeatureNorm() const;
};

/// A universe backed by an explicit vector of rows. Base class for the
/// concrete universes and directly usable for custom record sets.
class VectorUniverse : public Universe {
 public:
  VectorUniverse(std::vector<Row> rows, std::string name);

  int size() const override { return static_cast<int>(rows_.size()); }
  const Row& row(int i) const override;
  int feature_dim() const override { return feature_dim_; }
  std::string name() const override { return name_; }

 protected:
  std::vector<Row> rows_;
  int feature_dim_;
  std::string name_;
};

}  // namespace data
}  // namespace pmw

#endif  // PMWCM_DATA_UNIVERSE_H_
