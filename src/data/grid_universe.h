// Grid data universes: the paper's suggested rounding of continuous domains
// (Section 1.1) to a finite universe of size roughly (d/alpha)^O(d).

#ifndef PMWCM_DATA_GRID_UNIVERSE_H_
#define PMWCM_DATA_GRID_UNIVERSE_H_

#include <string>
#include <vector>

#include "data/universe.h"

namespace pmw {
namespace data {

/// X = G^d (x {-1,+1} when labeled) where G is a uniform grid of
/// `points_per_axis` values covering [-1/sqrt(d), +1/sqrt(d)], so every
/// record has L2 norm at most 1. |X| = points_per_axis^d (times 2 labeled).
class GridUniverse : public VectorUniverse {
 public:
  /// Requires points_per_axis >= 2 and total size <= 2^20.
  GridUniverse(int dim, int points_per_axis, bool labeled);

  int dim() const { return dim_; }
  int points_per_axis() const { return points_per_axis_; }
  bool labeled() const { return labeled_; }

  /// Index of the grid cell with the given per-axis indices (each in
  /// [0, points_per_axis)) and label (+1/-1; ignored when unlabeled).
  int IndexOf(const std::vector<int>& axis_indices, int label) const;

 private:
  int dim_;
  int points_per_axis_;
  bool labeled_;
};

}  // namespace data
}  // namespace pmw

#endif  // PMWCM_DATA_GRID_UNIVERSE_H_
