// Hypercube data universes, the paper's canonical choice (Section 4.3):
// X = {+-1/sqrt(d)}^d (so that every record has unit L2 norm), optionally
// crossed with a binary label in {-1, +1} for supervised losses.

#ifndef PMWCM_DATA_BINARY_UNIVERSE_H_
#define PMWCM_DATA_BINARY_UNIVERSE_H_

#include <string>
#include <vector>

#include "data/universe.h"

namespace pmw {
namespace data {

/// X = {+-1/sqrt(d)}^d; |X| = 2^d. Bit j of the index selects the sign of
/// coordinate j (bit set => +1/sqrt(d)).
class HypercubeUniverse : public VectorUniverse {
 public:
  /// Requires 1 <= dim <= 20 (|X| = 2^dim must stay enumerable).
  explicit HypercubeUniverse(int dim);

  /// Index of the record whose coordinate signs are `signs` (+1 or -1 each).
  int IndexOf(const std::vector<int>& signs) const;

  int dim() const { return dim_; }

 private:
  int dim_;
};

/// X = {+-1/sqrt(d)}^d x {-1, +1}; |X| = 2^(d+1). The label occupies the
/// lowest bit of the index (bit set => label +1), feature bit j occupies
/// index bit j + 1.
class LabeledHypercubeUniverse : public VectorUniverse {
 public:
  /// Requires 1 <= dim <= 19.
  explicit LabeledHypercubeUniverse(int dim);

  /// Index of (signs, label). label must be +1 or -1.
  int IndexOf(const std::vector<int>& signs, int label) const;

  int dim() const { return dim_; }

 private:
  int dim_;
};

}  // namespace data
}  // namespace pmw

#endif  // PMWCM_DATA_BINARY_UNIVERSE_H_
