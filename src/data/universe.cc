#include "data/universe.h"

#include <cmath>

#include "common/check.h"

namespace pmw {
namespace data {

double Universe::LogSize() const {
  PMW_CHECK_GE(size(), 1);
  return std::log(static_cast<double>(size()));
}

double Universe::MaxFeatureNorm() const {
  double best = 0.0;
  for (int i = 0; i < size(); ++i) {
    double norm_sq = 0.0;
    for (double f : row(i).features) norm_sq += f * f;
    best = std::max(best, std::sqrt(norm_sq));
  }
  return best;
}

VectorUniverse::VectorUniverse(std::vector<Row> rows, std::string name)
    : rows_(std::move(rows)), name_(std::move(name)) {
  PMW_CHECK_MSG(!rows_.empty(), "universe must be non-empty");
  feature_dim_ = static_cast<int>(rows_[0].features.size());
  for (const Row& r : rows_) {
    PMW_CHECK_EQ(static_cast<int>(r.features.size()), feature_dim_);
  }
}

const Row& VectorUniverse::row(int i) const {
  PMW_CHECK_GE(i, 0);
  PMW_CHECK_LT(i, size());
  return rows_[i];
}

}  // namespace data
}  // namespace pmw
