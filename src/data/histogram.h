// Histogram representation of datasets (Section 2.1): a probability
// distribution over the data universe, plus the multiplicative-weights
// update that drives the paper's algorithm (Figure 3).

#ifndef PMWCM_DATA_HISTOGRAM_H_
#define PMWCM_DATA_HISTOGRAM_H_

#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "common/random.h"
#include "data/dataset.h"

namespace pmw {
namespace data {

/// The strictly-positive entries of a histogram as (index, mass) pairs in
/// ascending index order. Iterating a support gives bit-identical sums to
/// iterating the dense histogram and skipping zero-mass rows, so objectives
/// built on either representation agree exactly; the support just avoids
/// re-testing every row. The batched serving path compacts once per batch
/// instead of once per query.
using HistogramSupport = std::vector<std::pair<int, double>>;

/// A zero-copy view of the contiguous run of support entries whose
/// universe indices fall in [lo, hi) — the per-shard slices the serving
/// epochs publish. Valid for as long as the backing support vector is.
using SupportSlice = std::span<const std::pair<int, double>>;

/// Slices `support` (ascending index order) to its [lo, hi) index range
/// by binary search; no entries are copied. The slices of a partition of
/// [0, size) concatenate back to exactly the full support.
SupportSlice SliceSupport(const HistogramSupport& support, int lo, int hi);

/// A normalized distribution over universe indices {0, ..., size-1}.
class Histogram {
 public:
  /// The uniform histogram over `size` elements (the paper's D_hat_1).
  static Histogram Uniform(int size);

  /// The empirical histogram of a dataset.
  static Histogram FromDataset(const Dataset& dataset);

  /// Normalizes a vector of non-negative counts/weights.
  static Histogram FromWeights(std::vector<double> weights);

  int size() const { return static_cast<int>(p_.size()); }
  double operator[](int i) const { return p_[i]; }
  const std::vector<double>& probabilities() const { return p_; }

  /// sum_x p(x) f(x).
  double Expectation(const std::function<double(int)>& f) const;

  /// ||p - q||_1. Neighbouring datasets' histograms are at distance <= 2/n
  /// in this norm (the paper uses 1/n with a one-sided convention).
  double L1Distance(const Histogram& other) const;

  /// KL(p || other); the potential function in the MW regret analysis.
  double Kl(const Histogram& other) const;

  /// The multiplicative weights update of Figure 3:
  ///   p'(x) proportional to exp(eta * payoff(x)) * p(x),
  /// computed in log-space for numerical stability. `payoff` must have one
  /// entry per universe element.
  Histogram MultiplicativeUpdate(const std::vector<double>& payoff,
                                 double eta) const;

  /// One pass over the histogram collecting its strictly-positive entries.
  HistogramSupport CompactSupport() const;

  /// Range compaction: the strictly-positive entries with index in
  /// [lo, hi) only. CompactSupport() == CompactSupport(0, size()).
  HistogramSupport CompactSupport(int lo, int hi) const;

  /// Samples a universe index from the distribution (synthetic data).
  int SampleIndex(Rng* rng) const;

  /// Draws n records to form a synthetic dataset over `universe`
  /// (the universe's size must match).
  Dataset SampleDataset(const Universe& universe, int n, Rng* rng) const;

 private:
  explicit Histogram(std::vector<double> p);

  std::vector<double> p_;
};

}  // namespace data
}  // namespace pmw

#endif  // PMWCM_DATA_HISTOGRAM_H_
