#include "data/dataset.h"

#include "common/check.h"

namespace pmw {
namespace data {

Dataset::Dataset(const Universe* universe, std::vector<int> indices)
    : universe_(universe), indices_(std::move(indices)) {
  PMW_CHECK(universe_ != nullptr);
  PMW_CHECK_MSG(!indices_.empty(), "dataset must have at least one record");
  for (int idx : indices_) {
    PMW_CHECK_GE(idx, 0);
    PMW_CHECK_LT(idx, universe_->size());
  }
}

int Dataset::index(int i) const {
  PMW_CHECK_GE(i, 0);
  PMW_CHECK_LT(i, n());
  return indices_[i];
}

const Row& Dataset::row(int i) const { return universe_->row(index(i)); }

Dataset Dataset::WithRowReplaced(int position, int new_index) const {
  PMW_CHECK_GE(position, 0);
  PMW_CHECK_LT(position, n());
  PMW_CHECK_GE(new_index, 0);
  PMW_CHECK_LT(new_index, universe_->size());
  std::vector<int> indices = indices_;
  indices[position] = new_index;
  return Dataset(universe_, std::move(indices));
}

}  // namespace data
}  // namespace pmw
