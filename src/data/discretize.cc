#include "data/discretize.h"

#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/math_util.h"

namespace pmw {
namespace data {
namespace {

double FeatureDistSq(const Row& row, const ContinuousRecord& record) {
  double acc = 0.0;
  for (size_t j = 0; j < row.features.size(); ++j) {
    acc += Sq(row.features[j] - record.features[j]);
  }
  return acc;
}

bool LabelMatches(const Row& row, const ContinuousRecord& record) {
  if (row.label == 0.0) return true;
  return (row.label > 0.0) == (record.label > 0.0);
}

}  // namespace

int NearestRow(const Universe& universe, const ContinuousRecord& record) {
  PMW_CHECK_EQ(static_cast<int>(record.features.size()),
               universe.feature_dim());
  int best = -1;
  double best_dist = std::numeric_limits<double>::infinity();
  bool best_label_match = false;
  for (int i = 0; i < universe.size(); ++i) {
    const Row& row = universe.row(i);
    double dist = FeatureDistSq(row, record);
    bool label_match = LabelMatches(row, record);
    bool better = dist < best_dist - 1e-15 ||
                  (std::abs(dist - best_dist) <= 1e-15 && label_match &&
                   !best_label_match);
    if (better) {
      best = i;
      best_dist = dist;
      best_label_match = label_match;
    }
  }
  PMW_CHECK_GE(best, 0);
  return best;
}

Dataset DiscretizeDataset(const Universe& universe,
                          const std::vector<ContinuousRecord>& records) {
  PMW_CHECK(!records.empty());
  std::vector<int> indices;
  indices.reserve(records.size());
  for (const ContinuousRecord& r : records) {
    indices.push_back(NearestRow(universe, r));
  }
  return Dataset(&universe, std::move(indices));
}

double MaxRoundingDistance(const Universe& universe,
                           const std::vector<ContinuousRecord>& records) {
  double worst = 0.0;
  for (const ContinuousRecord& r : records) {
    int idx = NearestRow(universe, r);
    worst = std::max(worst, std::sqrt(FeatureDistSq(universe.row(idx), r)));
  }
  return worst;
}

}  // namespace data
}  // namespace pmw
