#include "common/simd.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(PMW_ENABLE_AVX2) && defined(__x86_64__)
#define PMW_SIMD_COMPILED 1
#include <immintrin.h>
#else
#define PMW_SIMD_COMPILED 0
#endif

namespace pmw {
namespace simd {
namespace {

bool DetectAvx2() {
#if PMW_SIMD_COMPILED
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool InitialEnabled() {
  if (!DetectAvx2()) return false;
  const char* env = std::getenv("PMW_SIMD");
  if (env != nullptr &&
      (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0)) {
    return false;
  }
  return true;
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled{InitialEnabled()};
  return enabled;
}

#if PMW_SIMD_COMPILED

// All AVX2 bodies carry target("avx2") — never "fma" — so the compiler
// cannot contract mul+add into an FMA the scalar baseline (plain x86-64)
// would not perform. See simd.h for the bit-identity arguments.

__attribute__((target("avx2"))) double PairwiseLeaf8Avx2(const double* v) {
  const __m256d a = _mm256_loadu_pd(v);      // v0 v1 v2 v3
  const __m256d b = _mm256_loadu_pd(v + 4);  // v4 v5 v6 v7
  // haddpd(a, b) = [v0+v1, v4+v5, v2+v3, v6+v7]
  const __m256d h = _mm256_hadd_pd(a, b);
  const __m128d lo = _mm256_castpd256_pd128(h);    // v0+v1, v4+v5
  const __m128d hi = _mm256_extractf128_pd(h, 1);  // v2+v3, v6+v7
  // pair = [(v0+v1)+(v2+v3), (v4+v5)+(v6+v7)]
  const __m128d pair = _mm_add_pd(lo, hi);
  const __m128d swap = _mm_unpackhi_pd(pair, pair);
  return _mm_cvtsd_f64(_mm_add_sd(pair, swap));
}

__attribute__((target("avx2"))) double PairwiseLeaf4Avx2(const double* v) {
  const __m256d a = _mm256_loadu_pd(v);
  // haddpd(a, a) = [v0+v1, v0+v1, v2+v3, v2+v3]
  const __m256d h = _mm256_hadd_pd(a, a);
  const __m128d lo = _mm256_castpd256_pd128(h);
  const __m128d hi = _mm256_extractf128_pd(h, 1);
  return _mm_cvtsd_f64(_mm_add_sd(lo, hi));
}

__attribute__((target("avx2"))) void AxpyMaxAvx2(double* dst,
                                                 const double* src,
                                                 double scale, size_t n,
                                                 double* max_io) {
  const __m256d scale_v = _mm256_set1_pd(scale);
  __m256d max_v = _mm256_set1_pd(*max_io);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d s = _mm256_loadu_pd(src + i);
    const __m256d d = _mm256_loadu_pd(dst + i);
    // Explicit mul then add: identical rounding to the scalar
    // d + scale * s (no FMA contraction; see above).
    const __m256d r = _mm256_add_pd(d, _mm256_mul_pd(scale_v, s));
    _mm256_storeu_pd(dst + i, r);
    max_v = _mm256_max_pd(max_v, r);
  }
  // Lane fold in fixed order; reordering a finite max fold is downstream-
  // exact (simd.h).
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, max_v);
  double m = std::max(std::max(lanes[0], lanes[1]),
                      std::max(lanes[2], lanes[3]));
  for (; i < n; ++i) {
    dst[i] = dst[i] + scale * src[i];
    m = std::max(m, dst[i]);
  }
  *max_io = m;
}

__attribute__((target("avx2"))) void SubScalarAvx2(double* v, double c,
                                                   size_t n) {
  const __m256d c_v = _mm256_set1_pd(c);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(v + i, _mm256_sub_pd(_mm256_loadu_pd(v + i), c_v));
  }
  for (; i < n; ++i) v[i] = v[i] - c;
}

__attribute__((target("avx2"))) void DivScalarToAvx2(double* dst,
                                                     const double* src,
                                                     double c, size_t n) {
  const __m256d c_v = _mm256_set1_pd(c);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i, _mm256_div_pd(_mm256_loadu_pd(src + i), c_v));
  }
  for (; i < n; ++i) dst[i] = src[i] / c;
}

#endif  // PMW_SIMD_COMPILED

}  // namespace

bool Available() {
  static const bool available = DetectAvx2();
  return available;
}

bool Enabled() {
  return EnabledFlag().load(std::memory_order_relaxed);
}

void SetEnabled(bool on) {
  EnabledFlag().store(on && Available(), std::memory_order_relaxed);
}

double PairwiseLeaf8(const double* v) {
#if PMW_SIMD_COMPILED
  if (Enabled()) return PairwiseLeaf8Avx2(v);
#endif
  return ((v[0] + v[1]) + (v[2] + v[3])) + ((v[4] + v[5]) + (v[6] + v[7]));
}

double PairwiseLeaf4(const double* v) {
#if PMW_SIMD_COMPILED
  if (Enabled()) return PairwiseLeaf4Avx2(v);
#endif
  return (v[0] + v[1]) + (v[2] + v[3]);
}

void AxpyMax(double* dst, const double* src, double scale, size_t n,
             double* max_io) {
#if PMW_SIMD_COMPILED
  if (Enabled() && n >= 8) {
    AxpyMaxAvx2(dst, src, scale, n, max_io);
    return;
  }
#endif
  double m = *max_io;
  for (size_t i = 0; i < n; ++i) {
    dst[i] = dst[i] + scale * src[i];
    m = std::max(m, dst[i]);
  }
  *max_io = m;
}

void SubScalar(double* v, double c, size_t n) {
#if PMW_SIMD_COMPILED
  if (Enabled() && n >= 8) {
    SubScalarAvx2(v, c, n);
    return;
  }
#endif
  for (size_t i = 0; i < n; ++i) v[i] = v[i] - c;
}

void DivScalarTo(double* dst, const double* src, double c, size_t n) {
#if PMW_SIMD_COMPILED
  if (Enabled() && n >= 8) {
    DivScalarToAvx2(dst, src, c, n);
    return;
  }
#endif
  for (size_t i = 0; i < n; ++i) dst[i] = src[i] / c;
}

}  // namespace simd
}  // namespace pmw
