#include "common/thread_pool.h"

#include <stdexcept>

#include "common/check.h"

namespace pmw {

ThreadPool::ThreadPool(int num_threads) : num_threads_(num_threads) {
  PMW_CHECK_GE(num_threads, 1);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  // call_once serializes the join: repeat calls return once the first
  // completes, so Shutdown-then-destructor (or two racing Shutdowns) is
  // safe and every caller observes a fully drained pool.
  std::call_once(shutdown_once_, [this] {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      shutting_down_ = true;
    }
    task_ready_.notify_all();
    for (std::thread& worker : workers_) worker.join();
    workers_.clear();
  });
}

long long ThreadPool::tasks_completed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return completed_;
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_) {
      throw std::runtime_error(
          "ThreadPool::Submit after shutdown began: nothing was scheduled");
    }
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      // Shutdown drains: workers only exit once the queue is empty, so
      // every task submitted before shutdown began is completed.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions are captured by the packaged_task wrapper
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++completed_;
    }
  }
}

}  // namespace pmw
