// Scalar math helpers used across the library.

#ifndef PMWCM_COMMON_MATH_UTIL_H_
#define PMWCM_COMMON_MATH_UTIL_H_

#include <cstddef>
#include <vector>

namespace pmw {

/// x^2.
inline double Sq(double x) { return x * x; }

/// Clamps x into [lo, hi].
double Clamp(double x, double lo, double hi);

/// log(sum_i exp(v_i)) computed stably (max subtraction). Requires non-empty.
double LogSumExp(const std::vector<double>& v);

/// Natural log with a floor at 1e-300 to avoid -inf on exact zeros.
double SafeLog(double x);

/// Numerically safe log(1 + exp(z)) (softplus).
double Log1PExp(double z);

/// Logistic sigmoid 1 / (1 + exp(-z)), stable for large |z|.
double Sigmoid(double z);

/// True iff |a - b| <= atol + rtol * max(|a|, |b|).
bool AlmostEqual(double a, double b, double atol = 1e-9, double rtol = 1e-9);

/// Kullback-Leibler divergence KL(p || q) between distributions given as
/// (not necessarily normalized) non-negative vectors of equal length.
/// Entries where p is 0 contribute 0; entries where q is 0 but p > 0
/// contribute a large finite penalty instead of infinity.
double KlDivergence(const std::vector<double>& p, const std::vector<double>& q);

/// Sum of v[lo, hi) by pairwise (cascade) reduction with a fixed split
/// rule: a range splits at lo + (hi - lo) / 2 all the way down to
/// singletons. The reduction tree therefore depends only on the absolute
/// index range — NOT on who computes which part — so the sum over a range
/// equals the fold of its two halves' sums, bit for bit. This is what
/// lets the sharded hypothesis normalizer (core/sharded_hypothesis.h)
/// decompose across K = 2^t contiguous domain shards and still combine
/// to exactly the K = 1 value.
double PairwiseSum(const double* v, size_t lo, size_t hi);

/// ceil(log2(n)) for n >= 1.
int CeilLog2(long long n);

/// Next power of two >= n (n >= 1).
long long NextPow2(long long n);

}  // namespace pmw

#endif  // PMWCM_COMMON_MATH_UTIL_H_
