#include "common/logging.h"

#include <cctype>
#include <chrono>
#include <cstdlib>

namespace pmw {
namespace {

/// PMW_LOG_LEVEL: a level name or digit; unset/unparseable keeps the
/// compiled default (kWarning).
LogLevel LevelFromEnvironment() {
  const char* raw = std::getenv("PMW_LOG_LEVEL");
  if (raw == nullptr) return LogLevel::kWarning;
  std::string value;
  for (const char* p = raw; *p != '\0'; ++p) {
    value.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
  }
  if (value == "0" || value == "debug") return LogLevel::kDebug;
  if (value == "1" || value == "info") return LogLevel::kInfo;
  if (value == "2" || value == "warning" || value == "warn") {
    return LogLevel::kWarning;
  }
  if (value == "3" || value == "error") return LogLevel::kError;
  if (value == "4" || value == "off" || value == "none") {
    return LogLevel::kOff;
  }
  return LogLevel::kWarning;
}

LogLevel& MutableLevel() {
  // Function-local static: the environment is consulted exactly once,
  // at the first logging call, with no static-init-order hazard.
  static LogLevel level = LevelFromEnvironment();
  return level;
}

/// Monotonic microseconds since the first logging call — the per-line
/// stamp that lets bench/CI logs be correlated with trace spans.
long long MonotonicMicros() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             Clock::now() - start)
      .count();
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return MutableLevel(); }

void SetLogLevel(LogLevel level) { MutableLevel() = level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               static_cast<int>(GetLogLevel())) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << MonotonicMicros() << "us " << LevelName(level) << " "
            << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    std::cerr << stream_.str();
  }
}

}  // namespace internal
}  // namespace pmw
