#include "common/logging.h"

namespace pmw {
namespace {

LogLevel g_level = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return g_level; }

void SetLogLevel(LogLevel level) { g_level = level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= static_cast<int>(g_level)) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    std::cerr << stream_.str();
  }
}

}  // namespace internal
}  // namespace pmw
