#include "common/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>

#include "common/check.h"

namespace pmw {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  PMW_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  PMW_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return std::string(buf);
}

std::string TablePrinter::FmtInt(long long v) { return std::to_string(v); }

std::string TablePrinter::FmtSci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
  return std::string(buf);
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream oss;
  auto emit_row = [&](const std::vector<std::string>& row) {
    oss << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      oss << " " << row[c];
      for (size_t pad = row[c].size(); pad < widths[c]; ++pad) oss << " ";
      oss << " |";
    }
    oss << "\n";
  };
  emit_row(header_);
  oss << "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    for (size_t i = 0; i < widths[c] + 2; ++i) oss << "-";
    oss << "|";
  }
  oss << "\n";
  for (const auto& row : rows_) emit_row(row);
  return oss.str();
}

void TablePrinter::Print() const { std::cout << ToString() << std::flush; }

}  // namespace pmw
