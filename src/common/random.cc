#include "common/random.h"

#include <cmath>

#include "common/check.h"

namespace pmw {

double Rng::Uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::Uniform(double lo, double hi) {
  PMW_CHECK_LT(lo, hi);
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

int Rng::UniformInt(int n) {
  PMW_CHECK_GT(n, 0);
  return std::uniform_int_distribution<int>(0, n - 1)(engine_);
}

uint64_t Rng::NextSeed() { return engine_(); }

bool Rng::Bernoulli(double p) {
  PMW_CHECK_GE(p, 0.0);
  PMW_CHECK_LE(p, 1.0);
  return Uniform() < p;
}

double Rng::Gaussian(double mean, double stddev) {
  PMW_CHECK_GE(stddev, 0.0);
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

double Rng::Laplace(double scale) {
  PMW_CHECK_GT(scale, 0.0);
  // Inverse CDF: u uniform in (-1/2, 1/2), z = -b * sgn(u) * ln(1 - 2|u|).
  double u = Uniform() - 0.5;
  double sign = (u >= 0.0) ? 1.0 : -1.0;
  double mag = std::abs(u);
  // 1 - 2*mag is in (0, 1]; log is finite except with probability 0.
  double z = -scale * sign * std::log(std::max(1.0 - 2.0 * mag, 1e-300));
  return z;
}

double Rng::Exponential(double rate) {
  PMW_CHECK_GT(rate, 0.0);
  return std::exponential_distribution<double>(rate)(engine_);
}

double Rng::Gumbel() {
  double u = std::max(Uniform(), 1e-300);
  return -std::log(-std::log(u));
}

std::vector<double> Rng::GaussianVector(int dim, double stddev) {
  PMW_CHECK_GE(dim, 0);
  std::vector<double> v(dim);
  for (int i = 0; i < dim; ++i) v[i] = Gaussian(0.0, stddev);
  return v;
}

std::vector<double> Rng::OnUnitSphere(int dim) {
  PMW_CHECK_GT(dim, 0);
  while (true) {
    std::vector<double> v = GaussianVector(dim, 1.0);
    double norm_sq = 0.0;
    for (double z : v) norm_sq += z * z;
    if (norm_sq > 1e-24) {
      double inv = 1.0 / std::sqrt(norm_sq);
      for (double& z : v) z *= inv;
      return v;
    }
  }
}

std::vector<double> Rng::InUnitBall(int dim) {
  std::vector<double> v = OnUnitSphere(dim);
  double r = std::pow(Uniform(), 1.0 / dim);
  for (double& z : v) z *= r;
  return v;
}

int Rng::Categorical(const std::vector<double>& weights) {
  PMW_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    PMW_CHECK_GE(w, 0.0);
    total += w;
  }
  PMW_CHECK_GT(total, 0.0);
  double u = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

}  // namespace pmw
