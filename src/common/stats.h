// Streaming and batch descriptive statistics for experiment reporting.

#ifndef PMWCM_COMMON_STATS_H_
#define PMWCM_COMMON_STATS_H_

#include <string>
#include <vector>

namespace pmw {

/// Welford-style streaming moments plus extrema.
class RunningStats {
 public:
  void Add(double x);

  /// Reconstructs the stats from exact streamed moments (count, sum,
  /// sum of squares, extrema) — what rebuilds a RunningStats view from
  /// an obs::Histogram scrape without replaying observations. mean()
  /// and sum() are exact; variance() matches Add-accumulation up to
  /// floating-point rearrangement.
  static RunningStats FromMoments(long long count, double sum,
                                  double sumsq, double min, double max);

  long long count() const { return count_; }
  double mean() const;
  /// Unbiased sample variance (0 when fewer than two observations).
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

  /// "mean +- stddev [min, max] (n=count)".
  std::string Summary() const;

 private:
  long long count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Returns the q-quantile (0 <= q <= 1) by linear interpolation on a copy of
/// `values`. Requires non-empty input.
double Quantile(std::vector<double> values, double q);

/// Sample mean of `values`. Requires non-empty input.
double Mean(const std::vector<double>& values);

/// Unbiased sample standard deviation (0 for fewer than two values).
double StdDev(const std::vector<double>& values);

/// Maximum element. Requires non-empty input.
double Max(const std::vector<double>& values);

}  // namespace pmw

#endif  // PMWCM_COMMON_STATS_H_
