// Lightweight Status / Result types for recoverable errors.
//
// The library does not use exceptions (Google style). Programmer errors are
// PMW_CHECKed; conditions a caller can reasonably react to (a halted sparse
// vector, an exhausted privacy budget, a solver that failed to converge)
// travel through Status / Result<T>.

#ifndef PMWCM_COMMON_RESULT_H_
#define PMWCM_COMMON_RESULT_H_

#include <string>
#include <utility>

#include "common/check.h"

namespace pmw {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kFailedPrecondition = 2,
  kResourceExhausted = 3,
  kHalted = 4,
  kNotConverged = 5,
  kInternal = 6,
  kDeadlineExceeded = 7,
};

/// Status of an operation: kOk or a code with a human-readable message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Halted(std::string m) {
    return Status(StatusCode::kHalted, std::move(m));
  }
  static Status NotConverged(std::string m) {
    return Status(StatusCode::kNotConverged, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return "error(" + std::to_string(static_cast<int>(code_)) + "): " +
           message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value or a Status. Access to the value requires ok().
template <typename T>
class Result {
 public:
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {      // NOLINT
    PMW_CHECK_MSG(!status_.ok(), "Result from OK status needs a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    PMW_CHECK_MSG(ok(), "value() on error Result: " << status_.ToString());
    return value_;
  }
  T& value() & {
    PMW_CHECK_MSG(ok(), "value() on error Result: " << status_.ToString());
    return value_;
  }
  T&& value() && {
    PMW_CHECK_MSG(ok(), "value() on error Result: " << status_.ToString());
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }

 private:
  Status status_;
  T value_{};
};

}  // namespace pmw

#endif  // PMWCM_COMMON_RESULT_H_
