#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace pmw {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

RunningStats RunningStats::FromMoments(long long count, double sum,
                                       double sumsq, double min,
                                       double max) {
  RunningStats stats;
  if (count <= 0) return stats;
  stats.count_ = count;
  stats.sum_ = sum;
  stats.mean_ = sum / static_cast<double>(count);
  // m2 = sum (x - mean)^2 = sumsq - count * mean^2, clamped against
  // cancellation noise.
  stats.m2_ = std::max(
      0.0, sumsq - static_cast<double>(count) * stats.mean_ * stats.mean_);
  stats.min_ = min;
  stats.max_ = max;
  return stats;
}

double RunningStats::mean() const { return count_ > 0 ? mean_ : 0.0; }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  PMW_CHECK_GT(count_, 0);
  return min_;
}

double RunningStats::max() const {
  PMW_CHECK_GT(count_, 0);
  return max_;
}

std::string RunningStats::Summary() const {
  std::ostringstream oss;
  if (count_ == 0) {
    oss << "(empty)";
    return oss.str();
  }
  oss << mean() << " +- " << stddev() << " [" << min() << ", " << max()
      << "] (n=" << count_ << ")";
  return oss.str();
}

double Quantile(std::vector<double> values, double q) {
  PMW_CHECK(!values.empty());
  PMW_CHECK_GE(q, 0.0);
  PMW_CHECK_LE(q, 1.0);
  std::sort(values.begin(), values.end());
  double pos = q * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double Mean(const std::vector<double>& values) {
  PMW_CHECK(!values.empty());
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double m = Mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values.size() - 1));
}

double Max(const std::vector<double>& values) {
  PMW_CHECK(!values.empty());
  return *std::max_element(values.begin(), values.end());
}

}  // namespace pmw
