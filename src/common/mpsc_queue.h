// A bounded multi-producer / single-consumer request queue: the fan-in
// point of the async serving front-end (frontend/dispatcher.h). Many
// client threads push requests; one dispatcher thread drains them in
// batches and feeds the single-writer serving loop.
//
// Lock discipline is deliberately minimal rather than lock-free: one
// mutex and two condition variables, with the consumer amortizing the
// lock over a whole batch (PopBatch drains every available item under a
// single acquisition) instead of paying it per element. Producers only
// contend on push, and the arrival order the consumer observes is the
// queue's FIFO order — which is what makes the front-end's transcripts
// replayable: per-producer program order is preserved, and the global
// interleaving is fixed at enqueue time, before any serving work runs.
//
// Ownership on rejection: Push/TryPush take the item by lvalue reference
// and move from it only on success. A rejected item (queue closed, or
// full for TryPush) is left untouched, so callers can salvage move-only
// payloads — the dispatcher fulfills a request's promise with a typed
// shutdown error instead of letting it break.

#ifndef PMWCM_COMMON_MPSC_QUEUE_H_
#define PMWCM_COMMON_MPSC_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "common/check.h"

namespace pmw {

template <typename T>
class MpscQueue {
 public:
  enum class PushResult { kOk, kFull, kClosed };

  /// A queue holding at most `capacity` items (>= 1). Producers pushing
  /// into a full queue block (Push) or bounce (TryPush) — backpressure,
  /// never unbounded growth.
  explicit MpscQueue(size_t capacity) : capacity_(capacity) {
    PMW_CHECK_GE(capacity, size_t{1});
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  /// Blocks until there is space (or the queue closes). Returns true and
  /// moves from `item` on success; returns false with `item` untouched
  /// when the queue is closed.
  bool Push(T& item) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      can_push_.wait(
          lock, [this] { return items_.size() < capacity_ || closed_; });
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    can_pop_.notify_one();
    return true;
  }

  /// Non-blocking push. Moves from `item` only on kOk.
  PushResult TryPush(T& item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return PushResult::kClosed;
      if (items_.size() >= capacity_) return PushResult::kFull;
      items_.push_back(std::move(item));
    }
    can_pop_.notify_one();
    return PushResult::kOk;
  }

  /// Consumer side (one thread). Blocks until at least one item is
  /// available (or the queue is closed and drained), then appends up to
  /// `max_items` to `*out`. After the first item arrives the consumer
  /// lingers up to `max_wait` for the batch to fill — the dispatcher's
  /// flush-on-max-batch-or-deadline policy — so a burst coalesces into
  /// one batch while a lone request still flushes promptly. Returns false
  /// only when the queue is closed and empty (the drain is complete).
  bool PopBatch(std::vector<T>* out, size_t max_items,
                std::chrono::microseconds max_wait) {
    PMW_CHECK_GE(max_items, size_t{1});
    size_t popped = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      can_pop_.wait(lock, [this] { return !items_.empty() || closed_; });
      if (items_.empty()) return false;  // closed and fully drained
      const auto deadline = std::chrono::steady_clock::now() + max_wait;
      for (;;) {
        const size_t before = popped;
        while (!items_.empty() && popped < max_items) {
          out->push_back(std::move(items_.front()));
          items_.pop_front();
          ++popped;
        }
        // Wake producers *before* lingering: under backpressure the only
        // way more items can arrive during the linger is if the blocked
        // pushers learn about the space this drain just freed.
        if (popped > before) can_push_.notify_all();
        if (popped >= max_items || closed_ ||
            max_wait <= std::chrono::microseconds::zero()) {
          break;
        }
        // Linger for more of the batch; a timeout flushes what we have.
        if (!can_pop_.wait_until(lock, deadline, [this] {
              return !items_.empty() || closed_;
            })) {
          break;
        }
      }
    }
    return true;
  }

  /// Closes the queue: every blocked producer wakes and fails, the
  /// consumer drains what was already queued, then PopBatch returns
  /// false. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    can_push_.notify_all();
    can_pop_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable can_push_;  // producers: space freed or closed
  std::condition_variable can_pop_;   // consumer: item arrived or closed
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace pmw

#endif  // PMWCM_COMMON_MPSC_QUEUE_H_
