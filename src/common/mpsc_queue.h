// A bounded multi-producer / single-consumer request queue: the fan-in
// point of the async serving front-end (frontend/dispatcher.h). Many
// client threads push requests; one dispatcher thread drains them in
// batches and feeds the single-writer serving loop.
//
// Lock discipline is deliberately minimal rather than lock-free: one
// mutex and two condition variables, with the consumer amortizing the
// lock over a whole batch (PopBatch drains every available item under a
// single acquisition) instead of paying it per element. Producers only
// contend on push, and the arrival order the consumer observes is the
// queue's FIFO order — which is what makes the front-end's transcripts
// replayable: per-producer program order is preserved, and the global
// interleaving is fixed at enqueue time, before any serving work runs.
//
// Ownership on rejection: Push/TryPush take the item by lvalue reference
// and move from it only on success. A rejected item (queue closed, or
// full for TryPush) is left untouched, so callers can salvage move-only
// payloads — the dispatcher fulfills a request's promise with a typed
// shutdown error instead of letting it break.

#ifndef PMWCM_COMMON_MPSC_QUEUE_H_
#define PMWCM_COMMON_MPSC_QUEUE_H_

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <map>
#include <mutex>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.h"

namespace pmw {

template <typename T>
class MpscQueue {
 public:
  enum class PushResult { kOk, kFull, kClosed };

  /// A queue holding at most `capacity` items (>= 1). Producers pushing
  /// into a full queue block (Push) or bounce (TryPush) — backpressure,
  /// never unbounded growth.
  explicit MpscQueue(size_t capacity) : capacity_(capacity) {
    PMW_CHECK_GE(capacity, size_t{1});
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  /// Blocks until there is space (or the queue closes). Returns true and
  /// moves from `item` on success; returns false with `item` untouched
  /// when the queue is closed.
  bool Push(T& item) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      can_push_.wait(
          lock, [this] { return items_.size() < capacity_ || closed_; });
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    can_pop_.notify_one();
    return true;
  }

  /// Non-blocking push. Moves from `item` only on kOk.
  PushResult TryPush(T& item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return PushResult::kClosed;
      if (items_.size() >= capacity_) return PushResult::kFull;
      items_.push_back(std::move(item));
    }
    can_pop_.notify_one();
    return PushResult::kOk;
  }

  /// Consumer side (one thread). Blocks until at least one item is
  /// available (or the queue is closed and drained), then appends up to
  /// `max_items` to `*out`. After the first item arrives the consumer
  /// lingers up to `max_wait` for the batch to fill — the dispatcher's
  /// flush-on-max-batch-or-deadline policy — so a burst coalesces into
  /// one batch while a lone request still flushes promptly. Returns false
  /// only when the queue is closed and empty (the drain is complete).
  bool PopBatch(std::vector<T>* out, size_t max_items,
                std::chrono::microseconds max_wait) {
    PMW_CHECK_GE(max_items, size_t{1});
    size_t popped = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      can_pop_.wait(lock, [this] { return !items_.empty() || closed_; });
      if (items_.empty()) return false;  // closed and fully drained
      const auto deadline = std::chrono::steady_clock::now() + max_wait;
      for (;;) {
        const size_t before = popped;
        while (!items_.empty() && popped < max_items) {
          out->push_back(std::move(items_.front()));
          items_.pop_front();
          ++popped;
        }
        // Wake producers *before* lingering: under backpressure the only
        // way more items can arrive during the linger is if the blocked
        // pushers learn about the space this drain just freed.
        if (popped > before) can_push_.notify_all();
        if (popped >= max_items || closed_ ||
            max_wait <= std::chrono::microseconds::zero()) {
          break;
        }
        // Linger for more of the batch; a timeout flushes what we have.
        if (!can_pop_.wait_until(lock, deadline, [this] {
              return !items_.empty() || closed_;
            })) {
          break;
        }
      }
    }
    return true;
  }

  /// Round-robin fair variant of PopBatch: waits and lingers exactly the
  /// same way, but instead of taking the front `max_items` FIFO it
  /// selects up to `max_items` items by cycling over the per-key queues
  /// (`key_fn(item)` — the dispatcher keys by analyst id), each key's
  /// own items in FIFO order, keys ordered by first arrival. One chatty
  /// producer can therefore claim at most ceil(max_items / #keys) slots
  /// of a contended batch instead of all of them. Unselected items stay
  /// queued in their original relative order. The batch lands in *out in
  /// selection (round-robin) order — which becomes the commit order, so
  /// transcripts stay replayable from the arrival log exactly as with
  /// FIFO pops. Returns false only when closed and drained.
  template <typename KeyFn>
  bool PopBatchRoundRobin(std::vector<T>* out, size_t max_items,
                          std::chrono::microseconds max_wait, KeyFn key_fn) {
    PMW_CHECK_GE(max_items, size_t{1});
    std::unique_lock<std::mutex> lock(mutex_);
    can_pop_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return false;  // closed and fully drained
    // Linger for the batch to fill before selecting (the selection needs
    // the whole candidate set at once, so the fair pop defers its drain
    // to the flush instant instead of popping eagerly like PopBatch).
    // The fill target is capped at capacity_: a full queue can never
    // grow further while we hold the items, so waiting for more than it
    // can hold would burn the whole max_wait under backpressure.
    if (max_wait > std::chrono::microseconds::zero()) {
      const size_t fill_target = std::min(max_items, capacity_);
      const auto deadline = std::chrono::steady_clock::now() + max_wait;
      can_pop_.wait_until(lock, deadline, [this, fill_target] {
        return items_.size() >= fill_target || closed_;
      });
    }
    // Group item indices by key in arrival order; keys in first-arrival
    // order. Then deal one item per key per cycle.
    std::vector<std::vector<size_t>> per_key;
    {
      using Key = std::decay_t<decltype(key_fn(items_.front()))>;
      std::map<Key, size_t> key_slot;
      for (size_t i = 0; i < items_.size(); ++i) {
        auto [it, inserted] = key_slot.emplace(key_fn(items_[i]),
                                               per_key.size());
        if (inserted) per_key.emplace_back();
        per_key[it->second].push_back(i);
      }
    }
    std::vector<size_t> selected;
    selected.reserve(std::min(max_items, items_.size()));
    for (size_t round = 0; selected.size() < max_items; ++round) {
      bool any = false;
      for (const std::vector<size_t>& indices : per_key) {
        if (round >= indices.size()) continue;
        any = true;
        selected.push_back(indices[round]);
        if (selected.size() >= max_items) break;
      }
      if (!any) break;
    }
    // Move the selection out in round-robin order; compact the remainder
    // back into the deque preserving relative order.
    std::vector<bool> taken(items_.size(), false);
    for (size_t i : selected) taken[i] = true;
    for (size_t i : selected) out->push_back(std::move(items_[i]));
    std::deque<T> rest;
    for (size_t i = 0; i < items_.size(); ++i) {
      if (!taken[i]) rest.push_back(std::move(items_[i]));
    }
    items_.swap(rest);
    lock.unlock();
    // Space was freed: wake producers blocked on a full queue.
    can_push_.notify_all();
    return true;
  }

  /// Closes the queue: every blocked producer wakes and fails, the
  /// consumer drains what was already queued, then PopBatch returns
  /// false. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    can_push_.notify_all();
    can_pop_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable can_push_;  // producers: space freed or closed
  std::condition_variable can_pop_;   // consumer: item arrived or closed
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace pmw

#endif  // PMWCM_COMMON_MPSC_QUEUE_H_
