// Deterministic random number generation for mechanisms and experiments.
//
// All stochastic components of the library (noise mechanisms, solvers,
// synthetic data generators, benchmark sweeps) draw from an explicitly
// seeded Rng so that every test and every benchmark row is reproducible.

#ifndef PMWCM_COMMON_RANDOM_H_
#define PMWCM_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

namespace pmw {

/// A seedable pseudo-random generator exposing exactly the distributions the
/// library needs. Wraps std::mt19937_64.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in {0, ..., n - 1}. Requires n > 0.
  int UniformInt(int n);

  /// Uniform 64-bit value, for deriving child seeds.
  uint64_t NextSeed();

  /// Bernoulli(p) in {false, true}.
  bool Bernoulli(double p);

  /// Standard normal times stddev plus mean.
  double Gaussian(double mean = 0.0, double stddev = 1.0);

  /// Laplace(scale b): density (1/2b) exp(-|z|/b). Requires b > 0.
  double Laplace(double scale);

  /// Exponential with the given rate (mean 1/rate).
  double Exponential(double rate);

  /// Standard Gumbel variate; used for exponential-mechanism sampling.
  double Gumbel();

  /// A vector of iid Gaussians N(0, stddev^2).
  std::vector<double> GaussianVector(int dim, double stddev);

  /// A uniformly random unit vector in R^dim.
  std::vector<double> OnUnitSphere(int dim);

  /// A uniformly random point in the unit L2 ball of R^dim.
  std::vector<double> InUnitBall(int dim);

  /// Samples an index from unnormalized non-negative weights.
  /// Requires at least one strictly positive weight.
  int Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (int i = static_cast<int>(items->size()) - 1; i > 0; --i) {
      int j = UniformInt(i + 1);
      std::swap((*items)[i], (*items)[j]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace pmw

#endif  // PMWCM_COMMON_RANDOM_H_
