#include "common/math_util.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/simd.h"

namespace pmw {

double Clamp(double x, double lo, double hi) {
  PMW_CHECK_LE(lo, hi);
  return std::min(std::max(x, lo), hi);
}

double LogSumExp(const std::vector<double>& v) {
  PMW_CHECK(!v.empty());
  double m = *std::max_element(v.begin(), v.end());
  if (!std::isfinite(m)) return m;
  double sum = 0.0;
  for (double x : v) sum += std::exp(x - m);
  return m + std::log(sum);
}

double SafeLog(double x) { return std::log(std::max(x, 1e-300)); }

double Log1PExp(double z) {
  if (z > 35.0) return z;
  if (z < -35.0) return std::exp(z);
  return std::log1p(std::exp(z));
}

double Sigmoid(double z) {
  if (z >= 0.0) {
    double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  double e = std::exp(z);
  return e / (1.0 + e);
}

bool AlmostEqual(double a, double b, double atol, double rtol) {
  double diff = std::abs(a - b);
  return diff <= atol + rtol * std::max(std::abs(a), std::abs(b));
}

double KlDivergence(const std::vector<double>& p,
                    const std::vector<double>& q) {
  PMW_CHECK_EQ(p.size(), q.size());
  double sp = 0.0;
  double sq = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    PMW_CHECK_GE(p[i], 0.0);
    PMW_CHECK_GE(q[i], 0.0);
    sp += p[i];
    sq += q[i];
  }
  PMW_CHECK_GT(sp, 0.0);
  PMW_CHECK_GT(sq, 0.0);
  double kl = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    double pi = p[i] / sp;
    if (pi <= 0.0) continue;
    double qi = q[i] / sq;
    kl += pi * (SafeLog(pi) - SafeLog(qi));
  }
  return kl;
}

double PairwiseSum(const double* v, size_t lo, size_t hi) {
  const size_t n = hi - lo;
  if (n == 0) return 0.0;
  if (n == 1) return v[lo];
  if (n == 2) return v[lo] + v[lo + 1];
  // Whole tree nodes of 4 and 8 leaves evaluate in one kernel call; the
  // kernels reproduce this function's association exactly (an n == 8
  // node always splits 4+4 and each 4 splits 2+2), so the recursion and
  // the kernels are interchangeable bit for bit (common/simd.h).
  if (n == 4) return simd::PairwiseLeaf4(v + lo);
  if (n == 8) return simd::PairwiseLeaf8(v + lo);
  const size_t mid = lo + n / 2;
  return PairwiseSum(v, lo, mid) + PairwiseSum(v, mid, hi);
}

int CeilLog2(long long n) {
  PMW_CHECK_GE(n, 1);
  int bits = 0;
  long long v = 1;
  while (v < n) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

long long NextPow2(long long n) {
  PMW_CHECK_GE(n, 1);
  long long v = 1;
  while (v < n) v <<= 1;
  return v;
}

}  // namespace pmw
