// Runtime-dispatched AVX2 kernels for the MW-update hot loops.
//
// Every kernel here is BIT-IDENTICAL to the scalar loop it replaces, by
// construction, not by tolerance:
//
//   * Elementwise add / sub / mul / div are IEEE-754 operations; doing
//     four lanes at once performs the same rounding per element as the
//     scalar loop, so vectorizing a pure elementwise pass cannot change
//     any bit.
//   * Sums are vectorized only WITHIN fixed PairwiseSum tree leaves
//     (PairwiseLeaf4/8 reproduce the tree's exact association:
//     ((v0+v1)+(v2+v3)) + ((v4+v5)+(v6+v7)) via HADDPD + 128-bit fold),
//     so the reduction tree — and hence every transcript bit — is
//     unchanged.
//   * Max folds may be lane-reordered: for finite doubles, reordering a
//     max fold can only change result BITS when distinct-bit ties occur,
//     i.e. +0.0 vs -0.0 (equal non-zero doubles are bit-equal). The only
//     consumer is exp(x - max), and exp(x - +0.0) == exp(x - -0.0) for
//     every x (the ±0 difference survives only at x == ±0, where
//     exp(±0) == 1.0 exactly), so the downstream bits cannot differ.
//   * Transcendentals (std::log, std::exp, links) stay scalar per lane —
//     libm makes no cross-call guarantees a vector approximation could
//     honor.
//   * FMA is NEVER used: the baseline scalar build targets plain x86-64
//     (no FMA ISA), so a fused multiply-add would round differently.
//     Kernels compile with target("avx2") only, and use explicit
//     mul-then-add intrinsics.
//
// Dispatch: kernels check Enabled() and fall back to the scalar loop, so
// callers never branch. Enabled() requires (a) compiled-in support
// (PMW_ENABLE_AVX2, on x86-64), (b) AVX2 at runtime (cpuid), (c) the
// process-wide switch: SetEnabled(false), or PMW_SIMD=off|0 in the
// environment at startup, forces the scalar path — that is what
// `bench_serve_parallel --simd=off` and the equivalence property tests
// drive.

#ifndef PMWCM_COMMON_SIMD_H_
#define PMWCM_COMMON_SIMD_H_

#include <cstddef>

namespace pmw {
namespace simd {

/// True when AVX2 kernels are compiled in AND the CPU reports AVX2.
bool Available();

/// Available() and not switched off (SetEnabled / PMW_SIMD env).
bool Enabled();

/// Process-wide runtime switch. Thread-safe; takes effect on the next
/// kernel call. No-op (stays false) when !Available().
void SetEnabled(bool on);

/// ((v[0]+v[1]) + (v[2]+v[3])) + ((v[4]+v[5]) + (v[6]+v[7])) — the exact
/// n == 8 node of the fixed PairwiseSum reduction tree.
double PairwiseLeaf8(const double* v);

/// (v[0]+v[1]) + (v[2]+v[3]) — the exact n == 4 tree node.
double PairwiseLeaf4(const double* v);

/// dst[i] = dst[i] + scale * src[i] for i in [0, n), and folds
/// max(*max_io, dst[i]) into *max_io (see the ±0 argument above).
/// The MW phase-1 reweigh pass (dst already holds SafeLog(p)).
void AxpyMax(double* dst, const double* src, double scale, size_t n,
             double* max_io);

/// v[i] = v[i] - c. The MW phase-2 stabilization shift (exp stays scalar
/// per element in the caller).
void SubScalar(double* v, double c, size_t n);

/// dst[i] = src[i] / c. The MW phase-3 normalize pass.
void DivScalarTo(double* dst, const double* src, double c, size_t n);

}  // namespace simd
}  // namespace pmw

#endif  // PMWCM_COMMON_SIMD_H_
