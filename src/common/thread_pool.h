// A fixed-size thread pool: the concurrency substrate for the serving
// stack (ROADMAP scaling arc). Deliberately minimal — a locked deque, a
// condition variable, and N worker threads — because the serving layer's
// determinism argument wants scheduling to be irrelevant: work items must
// be pure functions of their inputs, so *which* worker runs one never
// matters, only that all of them finish (futures provide the join).
//
// Shutdown ordering: Shutdown() (which the destructor calls) stops
// accepting new work, lets the workers drain every task already queued,
// then joins. A task submitted before shutdown began therefore always
// runs to completion. Submit after shutdown has begun is an explicit,
// documented error: it throws std::runtime_error and schedules nothing —
// consistent with the pool's exception story (task errors already travel
// through futures as exceptions) and testable without a death test
// (tests/thread_pool_test.cc covers it).
//
// Exceptions: tasks run inside std::packaged_task, so anything a task
// throws is captured into its future and rethrown from future::get() on
// the caller's thread — a worker never dies and never takes the process
// down with it.

#ifndef PMWCM_COMMON_THREAD_POOL_H_
#define PMWCM_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace pmw {

class ThreadPool {
 public:
  /// Starts `num_threads` workers (>= 1).
  explicit ThreadPool(int num_threads);

  /// Equivalent to Shutdown().
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Stops accepting work, drains every queued task, joins every worker.
  /// Idempotent; after it returns, Submit throws (see class comment).
  void Shutdown();

  int size() const { return num_threads_; }

  /// Tasks that have finished running (for tests and load reporting).
  /// Bumped by the worker *after* the task's future becomes ready, so it
  /// can momentarily lag a caller that just observed the result.
  long long tasks_completed() const;

  /// Schedules `task` on some worker and returns the future for its
  /// result. Exceptions escape through future::get(), never a worker.
  /// Throws std::runtime_error if shutdown has begun (documented error;
  /// nothing is scheduled).
  template <typename F>
  auto Submit(F&& task)
      -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    // packaged_task is move-only but std::function requires copyable
    // callables; shared_ptr bridges the two.
    auto packaged = std::make_shared<std::packaged_task<R()>>(
        std::forward<F>(task));
    std::future<R> future = packaged->get_future();
    Enqueue([packaged] { (*packaged)(); });
    return future;
  }

 private:
  void Enqueue(std::function<void()> task);
  void WorkerLoop();

  mutable std::mutex mutex_;
  std::condition_variable task_ready_;
  std::deque<std::function<void()>> queue_;
  long long completed_ = 0;
  bool shutting_down_ = false;
  std::once_flag shutdown_once_;
  int num_threads_ = 0;  // fixed at construction; survives Shutdown
  std::vector<std::thread> workers_;
};

}  // namespace pmw

#endif  // PMWCM_COMMON_THREAD_POOL_H_
