// Column-aligned plain-text tables for benchmark and experiment output.
//
// Benchmarks regenerate the paper's tables; TablePrinter renders rows of the
// form the paper reports (family | parameters | bound | measured) with
// right-aligned numeric columns.

#ifndef PMWCM_COMMON_TABLE_PRINTER_H_
#define PMWCM_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace pmw {

/// Collects rows of string cells and prints them column-aligned.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Adds one row; must have exactly as many cells as the header.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string Fmt(double v, int precision = 4);
  static std::string FmtInt(long long v);
  /// Scientific notation, e.g. 1.3e+04.
  static std::string FmtSci(double v, int precision = 2);

  /// Renders the full table (header, separator, rows).
  std::string ToString() const;

  /// Prints to stdout.
  void Print() const;

  int row_count() const { return static_cast<int>(rows_.size()); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pmw

#endif  // PMWCM_COMMON_TABLE_PRINTER_H_
