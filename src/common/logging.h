// Minimal leveled logging for library diagnostics.
//
// Logging is stream-based and cheap when disabled. The default level is
// kWarning so that tests and benchmarks stay quiet; experiments flip to
// kInfo for progress reporting. A `PMW_LOG_LEVEL` environment variable
// (read once, at the first logging call — "debug"/"info"/"warning"/
// "error"/"off" or the digits 0-4, case-insensitive) overrides the
// default, so bench and CI runs raise verbosity without rebuilds; an
// explicit SetLogLevel still wins over the environment. Each emitted
// line is stamped with microseconds since process start (monotonic) and
// its level: "[123456us INFO file.cc:42] ...".

#ifndef PMWCM_COMMON_LOGGING_H_
#define PMWCM_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace pmw {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Returns the process-wide minimum level that is actually emitted.
LogLevel GetLogLevel();

/// Sets the process-wide minimum level. Not thread-safe by design; call it
/// from main() before spawning work.
void SetLogLevel(LogLevel level);

namespace internal {

/// Accumulates one log line and flushes it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace pmw

#define PMW_LOG(level) \
  ::pmw::internal::LogMessage(::pmw::LogLevel::level, __FILE__, __LINE__)

#endif  // PMWCM_COMMON_LOGGING_H_
