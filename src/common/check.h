// Runtime invariant checking macros.
//
// PMW_CHECK-family macros verify programmer invariants and abort with a
// diagnostic message on failure. They are always on (also in Release builds)
// because the library is used for research experiments where silent
// corruption of a statistical result is far worse than a crash.

#ifndef PMWCM_COMMON_CHECK_H_
#define PMWCM_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace pmw {
namespace internal {

/// Prints a fatal check failure and aborts. Never returns.
[[noreturn]] inline void CheckFail(const char* file, int line,
                                   const std::string& message) {
  std::cerr << "[PMW_CHECK failed] " << file << ":" << line << ": " << message
            << std::endl;
  std::abort();
}

}  // namespace internal
}  // namespace pmw

/// Aborts with `msg` when `cond` is false.
#define PMW_CHECK(cond)                                                   \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::pmw::internal::CheckFail(__FILE__, __LINE__, "expected: " #cond); \
    }                                                                     \
  } while (false)

#define PMW_CHECK_MSG(cond, msg)                                      \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::ostringstream pmw_check_oss;                               \
      pmw_check_oss << "expected: " #cond " -- " << msg;              \
      ::pmw::internal::CheckFail(__FILE__, __LINE__,                  \
                                 pmw_check_oss.str());                \
    }                                                                 \
  } while (false)

#define PMW_CHECK_OP(op, a, b)                                             \
  do {                                                                     \
    const auto pmw_check_a = (a);                                          \
    const auto pmw_check_b = (b);                                          \
    if (!(pmw_check_a op pmw_check_b)) {                                   \
      std::ostringstream pmw_check_oss;                                    \
      pmw_check_oss << "expected: " #a " " #op " " #b " (" << pmw_check_a  \
                    << " vs " << pmw_check_b << ")";                       \
      ::pmw::internal::CheckFail(__FILE__, __LINE__, pmw_check_oss.str()); \
    }                                                                      \
  } while (false)

#define PMW_CHECK_EQ(a, b) PMW_CHECK_OP(==, a, b)
#define PMW_CHECK_NE(a, b) PMW_CHECK_OP(!=, a, b)
#define PMW_CHECK_LT(a, b) PMW_CHECK_OP(<, a, b)
#define PMW_CHECK_LE(a, b) PMW_CHECK_OP(<=, a, b)
#define PMW_CHECK_GT(a, b) PMW_CHECK_OP(>, a, b)
#define PMW_CHECK_GE(a, b) PMW_CHECK_OP(>=, a, b)

#endif  // PMWCM_COMMON_CHECK_H_
