// Wall-clock timing for the runtime experiments (paper Section 4.3).

#ifndef PMWCM_COMMON_TIMER_H_
#define PMWCM_COMMON_TIMER_H_

#include <chrono>

namespace pmw {

/// Measures elapsed wall time since construction or the last Reset().
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pmw

#endif  // PMWCM_COMMON_TIMER_H_
