#include "losses/linear_query_loss.h"

#include <utility>

#include "common/check.h"
#include "common/math_util.h"

namespace pmw {
namespace losses {

LinearQueryLoss::LinearQueryLoss(Predicate predicate, std::string query_name)
    : predicate_(std::move(predicate)), query_name_(std::move(query_name)) {
  PMW_CHECK(predicate_ != nullptr);
}

double LinearQueryLoss::Value(const convex::Vec& theta,
                              const data::Row& x) const {
  PMW_CHECK_EQ(theta.size(), 1u);
  double p = predicate_(x);
  PMW_CHECK_GE(p, 0.0);
  PMW_CHECK_LE(p, 1.0);
  return 0.5 * Sq(theta[0] - p);
}

void LinearQueryLoss::AddGradient(const convex::Vec& theta,
                                  const data::Row& x, double weight,
                                  convex::Vec* grad) const {
  PMW_CHECK_EQ(theta.size(), 1u);
  PMW_CHECK_EQ(grad->size(), 1u);
  (*grad)[0] += weight * (theta[0] - predicate_(x));
}

Predicate ConjunctionPredicate(std::vector<int> coords, std::vector<int> signs,
                               int label_constraint) {
  PMW_CHECK_EQ(coords.size(), signs.size());
  for (int s : signs) PMW_CHECK_MSG(s == 1 || s == -1, "signs must be +-1");
  PMW_CHECK_MSG(
      label_constraint == 0 || label_constraint == 1 || label_constraint == -1,
      "label_constraint must be 0 (none) or +-1");
  return [coords = std::move(coords), signs = std::move(signs),
          label_constraint](const data::Row& x) -> double {
    for (size_t i = 0; i < coords.size(); ++i) {
      PMW_CHECK_LT(static_cast<size_t>(coords[i]), x.features.size());
      double v = x.features[coords[i]];
      if ((v > 0.0 ? 1 : -1) != signs[i]) return 0.0;
    }
    if (label_constraint != 0) {
      if ((x.label > 0.0 ? 1 : -1) != label_constraint) return 0.0;
    }
    return 1.0;
  };
}

Predicate HalfspacePredicate(std::vector<double> w, double t) {
  return [w = std::move(w), t](const data::Row& x) -> double {
    PMW_CHECK_EQ(w.size(), x.features.size());
    double z = 0.0;
    for (size_t j = 0; j < w.size(); ++j) z += w[j] * x.features[j];
    return z >= t ? 1.0 : 0.0;
  };
}

Predicate ParityPredicate(std::vector<int> coords) {
  return [coords = std::move(coords)](const data::Row& x) -> double {
    int parity = 0;
    for (int c : coords) {
      PMW_CHECK_LT(static_cast<size_t>(c), x.features.size());
      if (x.features[c] > 0.0) parity ^= 1;
    }
    return static_cast<double>(parity);
  };
}

}  // namespace losses
}  // namespace pmw
