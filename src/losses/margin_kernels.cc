#include "losses/margin_kernels.h"

#include <cmath>
#include <cstdint>

#include "common/check.h"
#include "common/simd.h"
#include "data/binary_universe.h"
#include "losses/margin_losses.h"

#if defined(PMW_ENABLE_AVX2) && defined(__x86_64__)
#define PMW_MARGIN_SIMD 1
#include <immintrin.h>
#else
#define PMW_MARGIN_SIMD 0
#endif

namespace pmw {
namespace losses {
namespace kernels {
namespace {

// Widest hypercube the universes can construct is dim 20 (binary_universe.h),
// so fixed stack arrays suffice.
constexpr int kMaxDim = 64;

struct Layout {
  int dim = 0;        // feature dimension d
  int shift = 0;      // index bit holding the sign of coordinate 0
  bool labeled = false;  // label in index bit 0 (set => +1.0)
  double scale = 0.0;    // the exact stored |feature| double
};

bool Detect(const data::Universe& universe, size_t theta_dim, Layout* out) {
  if (const auto* cube =
          dynamic_cast<const data::HypercubeUniverse*>(&universe)) {
    out->dim = cube->dim();
    out->shift = 0;
    out->labeled = false;
  } else if (const auto* labeled =
                 dynamic_cast<const data::LabeledHypercubeUniverse*>(
                     &universe)) {
    out->dim = labeled->dim();
    out->shift = 1;
    out->labeled = true;
  } else {
    return false;
  }
  if (static_cast<size_t>(out->dim) != theta_dim) return false;
  if (out->dim > kMaxDim || universe.size() == 0) return false;
  // All rows store the same +-scale double (computed once when the universe
  // was built), so row 0's first feature carries the exact bits.
  out->scale = std::abs(universe.row(0).features[0]);
  return true;
}

// w[j] = theta_j * c_j and c[j] = flips_j * scale; the generic path's
// theta_j * t_j with t_j = +-c_j is exactly +-w[j] (header). The negated
// copies feed the AVX2 kernels (sign-bit XOR flips them back exactly) and
// are zero-padded so padding lanes contribute only discarded +-0 terms.
struct Weights {
  double c[kMaxDim];
  double w[kMaxDim];
  alignas(32) double neg_c[kMaxDim + 4] = {0.0};
  alignas(32) double neg_w[kMaxDim + 4] = {0.0};
};

void ComputeWeights(const convex::Vec& theta, const int* flips, double scale,
                    int dim, Weights* out) {
  for (int j = 0; j < dim; ++j) {
    out->c[j] = flips != nullptr ? static_cast<double>(flips[j]) * scale
                                 : scale;
    out->w[j] = theta[j] * out->c[j];
    out->neg_c[j] = -out->c[j];
    out->neg_w[j] = -out->w[j];
  }
}

inline double ScalarZ(std::uint64_t index, const Layout& layout,
                      const double* w) {
  const std::uint64_t feature_bits = index >> layout.shift;
  double z = 0.0;
  for (int j = 0; j < layout.dim; ++j) {
    z += ((feature_bits >> j) & 1u) != 0 ? w[j] : -w[j];
  }
  return z;
}

inline double LabelOf(std::uint64_t index, const Layout& layout,
                      double y_clear, double y_set) {
  if (!layout.labeled) return y_clear;
  return (index & 1u) != 0 ? y_set : y_clear;
}

// Inline dispatch to the static Eval bodies that the virtual Link methods
// also call (margin_losses.h) — same code either way, this just skips the
// per-entry virtual call. kGeneric falls back to the virtual.
inline double EvalLink(const MarginLoss& link, LinkKind kind, double param,
                       double z, double y) {
  switch (kind) {
    case LinkKind::kSquared:
      return SquaredLoss::Eval(z, y);
    case LinkKind::kLogistic:
      return LogisticLoss::Eval(z, y);
    case LinkKind::kHinge:
      return HingeLoss::Eval(z, y);
    case LinkKind::kAbsolute:
      return AbsoluteLoss::Eval(z, y);
    case LinkKind::kHuber:
      return HuberLoss::Eval(z, y, param);
    case LinkKind::kGeneric:
      break;
  }
  return link.Link(z, y);
}

inline double EvalLinkDerivative(const MarginLoss& link, LinkKind kind,
                                 double param, double z, double y) {
  switch (kind) {
    case LinkKind::kSquared:
      return SquaredLoss::EvalDerivative(z, y);
    case LinkKind::kLogistic:
      return LogisticLoss::EvalDerivative(z, y);
    case LinkKind::kHinge:
      return HingeLoss::EvalDerivative(z, y);
    case LinkKind::kAbsolute:
      return AbsoluteLoss::EvalDerivative(z, y);
    case LinkKind::kHuber:
      return HuberLoss::EvalDerivative(z, y, param);
    case LinkKind::kGeneric:
      break;
  }
  return link.LinkDerivative(z, y);
}

#if PMW_MARGIN_SIMD

// Four entries per iteration, one per AVX2 lane; each lane replays the
// scalar z accumulation (same 0.0 start, same j order). Index bit j is
// shifted into the IEEE sign position and XORed onto -w[j]: bit set flips
// -w[j] to +w[j], bit clear leaves -w[j] — exact negation either way.
// target("avx2") only, never "fma" (common/simd.h).
__attribute__((target("avx2"))) void BatchZAvx2(
    const std::pair<int, double>* entries, size_t quads, const Layout& layout,
    const double* neg_w, double* z_out) {
  const __m128i shift_count = _mm_cvtsi32_si128(layout.shift);
  for (size_t q = 0; q < quads; ++q) {
    const std::pair<int, double>* p = entries + 4 * q;
    const __m256i index = _mm256_set_epi64x(p[3].first, p[2].first,
                                            p[1].first, p[0].first);
    __m256i bits = _mm256_srl_epi64(index, shift_count);
    __m256d z = _mm256_setzero_pd();
    for (int j = 0; j < layout.dim; ++j) {
      // Bit 0 of `bits` lands alone in the sign position; the shift fills
      // everything else with zeros, so no masking is needed.
      const __m256i sign = _mm256_slli_epi64(bits, 63);
      const __m256d term =
          _mm256_xor_pd(_mm256_set1_pd(neg_w[j]), _mm256_castsi256_pd(sign));
      z = _mm256_add_pd(z, term);
      bits = _mm256_srli_epi64(bits, 1);
    }
    _mm256_storeu_pd(z_out + 4 * q, z);
  }
}

// Gradient scatter for one block of entries: grad[j] += +-(coeff_e * c[j])
// for every entry in order. Coordinates fan across lanes four at a time
// (grad slots are independent, so vectorizing across j keeps each slot's
// per-entry add sequence identical to the scalar scatter); accumulators
// stay in registers across the block via a 32-slot padded copy of grad.
// Signs come from srlv-ing each entry's bits by {j..j+3} and shifting into
// the sign position, XORed onto coeff * (-c[j]) — exact negation.
__attribute__((target("avx2"))) void GradScatterAvx2(
    const std::pair<int, double>* entries, size_t n, const Layout& layout,
    const double* neg_c, const double* coeff, double* grad_padded) {
  const int blocks = (layout.dim + 3) / 4;
  __m256d acc[(kMaxDim + 3) / 4];
  __m256d negc_v[(kMaxDim + 3) / 4];
  __m256i shifts[(kMaxDim + 3) / 4];
  for (int b = 0; b < blocks; ++b) {
    acc[b] = _mm256_loadu_pd(grad_padded + 4 * b);
    negc_v[b] = _mm256_loadu_pd(neg_c + 4 * b);
    shifts[b] = _mm256_set_epi64x(4 * b + 3, 4 * b + 2, 4 * b + 1, 4 * b);
  }
  for (size_t e = 0; e < n; ++e) {
    const __m256i bits = _mm256_set1_epi64x(
        static_cast<long long>(static_cast<std::uint64_t>(entries[e].first) >>
                               layout.shift));
    const __m256d coeff_v = _mm256_set1_pd(coeff[e]);
    for (int b = 0; b < blocks; ++b) {
      const __m256i sign =
          _mm256_slli_epi64(_mm256_srlv_epi64(bits, shifts[b]), 63);
      const __m256d term = _mm256_xor_pd(_mm256_mul_pd(coeff_v, negc_v[b]),
                                         _mm256_castsi256_pd(sign));
      acc[b] = _mm256_add_pd(acc[b], term);
    }
  }
  for (int b = 0; b < blocks; ++b) {
    _mm256_storeu_pd(grad_padded + 4 * b, acc[b]);
  }
}

#endif  // PMW_MARGIN_SIMD

// Computes z for entries [i, i+n) into z_buf, SIMD when enabled.
void ZBlock(const std::pair<int, double>* entries, size_t n,
            const Layout& layout, const Weights& weights, double* z_buf) {
  size_t i = 0;
#if PMW_MARGIN_SIMD
  if (simd::Enabled()) {
    const size_t quads = n / 4;
    BatchZAvx2(entries, quads, layout, weights.neg_w, z_buf);
    i = 4 * quads;
  }
#endif
  for (; i < n; ++i) {
    z_buf[i] =
        ScalarZ(static_cast<std::uint64_t>(entries[i].first), layout,
                weights.w);
  }
}

constexpr size_t kBlock = 256;

}  // namespace

bool HypercubeMarginValue(const MarginLoss& link, const convex::Vec& theta,
                          const data::Universe& universe, const int* flips,
                          int label_flip,
                          const std::pair<int, double>* entries, size_t count,
                          double* acc) {
  Layout layout;
  if (!Detect(universe, theta.size(), &layout)) return false;
  Weights weights;
  ComputeWeights(theta, flips, layout.scale, layout.dim, &weights);
  // Same label multiply as the generic transform (label_flip * stored
  // label); exact for the stored labels {-1.0, 0.0, +1.0}.
  const double lf = static_cast<double>(label_flip);
  const double y_set = lf * 1.0;
  const double y_clear = lf * (layout.labeled ? -1.0 : 0.0);
  const LinkKind kind = link.link_kind();
  const double param = link.link_param();
  double z_buf[kBlock];
  double local = *acc;
  for (size_t i = 0; i < count; i += kBlock) {
    const size_t n = count - i < kBlock ? count - i : kBlock;
    ZBlock(entries + i, n, layout, weights, z_buf);
    for (size_t k = 0; k < n; ++k) {
      const auto& [index, mass] = entries[i + k];
      const double y = LabelOf(static_cast<std::uint64_t>(index), layout,
                               y_clear, y_set);
      local += mass * EvalLink(link, kind, param, z_buf[k], y);
    }
  }
  *acc = local;
  return true;
}

bool HypercubeMarginAddGradient(const MarginLoss& link,
                                const convex::Vec& theta,
                                const data::Universe& universe,
                                const int* flips, int label_flip,
                                const std::pair<int, double>* entries,
                                size_t count, convex::Vec* grad) {
  Layout layout;
  if (!Detect(universe, theta.size(), &layout)) return false;
  PMW_CHECK(grad != nullptr);
  PMW_CHECK_EQ(grad->size(), theta.size());
  Weights weights;
  ComputeWeights(theta, flips, layout.scale, layout.dim, &weights);
  const double lf = static_cast<double>(label_flip);
  const double y_set = lf * 1.0;
  const double y_clear = lf * (layout.labeled ? -1.0 : 0.0);
  const LinkKind kind = link.link_kind();
  const double param = link.link_param();
  double z_buf[kBlock];
  double coeff_buf[kBlock];
  double* g = grad->data();
#if PMW_MARGIN_SIMD
  if (simd::Enabled()) {
    // Register-resident accumulation over a zero-padded copy of grad;
    // the copies are exact and padding slots are discarded.
    alignas(32) double grad_padded[kMaxDim + 4] = {0.0};
    for (size_t j = 0; j < theta.size(); ++j) grad_padded[j] = g[j];
    for (size_t i = 0; i < count; i += kBlock) {
      const size_t n = count - i < kBlock ? count - i : kBlock;
      ZBlock(entries + i, n, layout, weights, z_buf);
      for (size_t k = 0; k < n; ++k) {
        const auto& [index, mass] = entries[i + k];
        const double y = LabelOf(static_cast<std::uint64_t>(index), layout,
                                 y_clear, y_set);
        coeff_buf[k] =
            mass * EvalLinkDerivative(link, kind, param, z_buf[k], y);
      }
      GradScatterAvx2(entries + i, n, layout, weights.neg_c, coeff_buf,
                      grad_padded);
    }
    for (size_t j = 0; j < theta.size(); ++j) g[j] = grad_padded[j];
    return true;
  }
#endif
  for (size_t i = 0; i < count; i += kBlock) {
    const size_t n = count - i < kBlock ? count - i : kBlock;
    ZBlock(entries + i, n, layout, weights, z_buf);
    for (size_t k = 0; k < n; ++k) {
      const auto& [index, mass] = entries[i + k];
      const std::uint64_t idx = static_cast<std::uint64_t>(index);
      const double y = LabelOf(idx, layout, y_clear, y_set);
      const double coeff =
          mass * EvalLinkDerivative(link, kind, param, z_buf[k], y);
      const std::uint64_t feature_bits = idx >> layout.shift;
      // coeff * t_j as +-(coeff * c_j): exact by sign symmetry, (entry, j)
      // order matches the generic scatter.
      for (int j = 0; j < layout.dim; ++j) {
        const double gj = coeff * weights.c[j];
        g[j] += ((feature_bits >> j) & 1u) != 0 ? gj : -gj;
      }
    }
  }
  return true;
}

}  // namespace kernels
}  // namespace losses
}  // namespace pmw
