#include "losses/margin_losses.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_util.h"

namespace pmw {
namespace losses {

double MarginLoss::Value(const convex::Vec& theta, const data::Row& x) const {
  PMW_CHECK_EQ(theta.size(), x.features.size());
  double z = 0.0;
  for (size_t j = 0; j < theta.size(); ++j) z += theta[j] * x.features[j];
  return Link(z, x.label);
}

void MarginLoss::AddGradient(const convex::Vec& theta, const data::Row& x,
                             double weight, convex::Vec* grad) const {
  PMW_CHECK(grad != nullptr);
  PMW_CHECK_EQ(theta.size(), x.features.size());
  PMW_CHECK_EQ(grad->size(), theta.size());
  double z = 0.0;
  for (size_t j = 0; j < theta.size(); ++j) z += theta[j] * x.features[j];
  double coeff = weight * LinkDerivative(z, x.label);
  for (size_t j = 0; j < theta.size(); ++j) {
    (*grad)[j] += coeff * x.features[j];
  }
}

double SquaredLoss::Link(double z, double y) const {
  return 0.25 * Sq(z - y);
}

double SquaredLoss::LinkDerivative(double z, double y) const {
  return 0.5 * (z - y);
}

double LogisticLoss::Link(double z, double y) const {
  return Log1PExp(-y * z);
}

double LogisticLoss::LinkDerivative(double z, double y) const {
  return -y * Sigmoid(-y * z);
}

double HingeLoss::Link(double z, double y) const {
  return std::max(0.0, 1.0 - y * z);
}

double HingeLoss::LinkDerivative(double z, double y) const {
  return (1.0 - y * z > 0.0) ? -y : 0.0;
}

double AbsoluteLoss::Link(double z, double y) const { return std::abs(z - y); }

double AbsoluteLoss::LinkDerivative(double z, double y) const {
  if (z > y) return 1.0;
  if (z < y) return -1.0;
  return 0.0;
}

HuberLoss::HuberLoss(int dim, double delta) : MarginLoss(dim), delta_(delta) {
  PMW_CHECK_GT(delta, 0.0);
}

double HuberLoss::Link(double z, double y) const {
  double r = z - y;
  if (std::abs(r) <= delta_) return 0.5 * Sq(r);
  return delta_ * (std::abs(r) - 0.5 * delta_);
}

double HuberLoss::LinkDerivative(double z, double y) const {
  double r = z - y;
  return Clamp(r, -delta_, delta_);
}

double HuberLoss::lipschitz() const { return std::min(delta_, 2.0); }

}  // namespace losses
}  // namespace pmw
