#include "losses/margin_losses.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_util.h"
#include "losses/margin_kernels.h"

namespace pmw {
namespace losses {

double MarginLoss::Value(const convex::Vec& theta, const data::Row& x) const {
  PMW_CHECK_EQ(theta.size(), x.features.size());
  double z = 0.0;
  for (size_t j = 0; j < theta.size(); ++j) z += theta[j] * x.features[j];
  return Link(z, x.label);
}

void MarginLoss::AddGradient(const convex::Vec& theta, const data::Row& x,
                             double weight, convex::Vec* grad) const {
  PMW_CHECK(grad != nullptr);
  PMW_CHECK_EQ(theta.size(), x.features.size());
  PMW_CHECK_EQ(grad->size(), theta.size());
  double z = 0.0;
  for (size_t j = 0; j < theta.size(); ++j) z += theta[j] * x.features[j];
  double coeff = weight * LinkDerivative(z, x.label);
  for (size_t j = 0; j < theta.size(); ++j) {
    (*grad)[j] += coeff * x.features[j];
  }
}

bool MarginLoss::BatchValue(const convex::Vec& theta,
                            const data::Universe& universe,
                            const std::pair<int, double>* entries,
                            size_t count, double* acc) const {
  return kernels::HypercubeMarginValue(*this, theta, universe,
                                       /*flips=*/nullptr, /*label_flip=*/1,
                                       entries, count, acc);
}

bool MarginLoss::BatchAddGradient(const convex::Vec& theta,
                                  const data::Universe& universe,
                                  const std::pair<int, double>* entries,
                                  size_t count, convex::Vec* grad) const {
  return kernels::HypercubeMarginAddGradient(*this, theta, universe,
                                             /*flips=*/nullptr,
                                             /*label_flip=*/1, entries, count,
                                             grad);
}

HuberLoss::HuberLoss(int dim, double delta) : MarginLoss(dim), delta_(delta) {
  PMW_CHECK_GT(delta, 0.0);
}

double HuberLoss::lipschitz() const { return std::min(delta_, 2.0); }

}  // namespace losses
}  // namespace pmw
