// Batched margin-loss evaluation over hypercube universes.
//
// The cold-plan cost of Prepare is dominated by objective sweeps of the
// form sum_e mass_e * link(<theta, t(row_e)>, y_e) over ~|X| support
// entries, where t is an optional coordinate/label sign flip
// (losses/transforms.h). On the hypercube universes (data/binary_universe.h)
// every feature is +-scale with the SAME double `scale` for all rows, and
// index bit j selects the sign of coordinate j. The kernels here exploit
// that: instead of materializing rows (the generic path heap-allocates a
// transformed Row per entry per sweep), they evaluate
//
//   z_e = sum_j (bit_j(e) ? w_j : -w_j),   w_j = theta_j * c_j,
//   c_j = flips_j * scale,
//
// reading only index bits — no feature memory traffic at all — and fan
// four entries across AVX2 lanes.
//
// Bitwise identity with the generic path (load-bearing: serving
// transcripts must not depend on which path ran):
//   * IEEE multiplication is sign-symmetric: x * (-y) carries exactly the
//     sign-flipped bits of x * y. The generic path's theta_j * t_j with
//     t_j = +-c_j is therefore exactly +-w_j, and the +-1 int flips
//     convert to +-1.0 doubles whose products are exact sign arithmetic.
//   * Each lane accumulates its z in the same j order, starting from the
//     same 0.0, as the scalar dot product — per-lane operation sequences
//     are identical; lanes are independent.
//   * Links (and their derivatives) are evaluated per entry through the
//     loss's own scalar Link/LinkDerivative, and the objective terms
//     mass_e * v_e accumulate in entry order — the exact sequence of the
//     fallback loop in convex::SupportObjective.
//   * Gradient scatter computes coeff * t_j as +-(coeff * c_j), again
//     exact by sign symmetry, in the same (entry, j) order.
// tests/simd_kernels_test.cc checks batch-vs-generic equality bit for bit;
// the transcript property test does the same end to end.

#ifndef PMWCM_LOSSES_MARGIN_KERNELS_H_
#define PMWCM_LOSSES_MARGIN_KERNELS_H_

#include <cstddef>
#include <utility>

#include "convex/vector_ops.h"
#include "data/universe.h"

namespace pmw {
namespace losses {

class MarginLoss;

namespace kernels {

/// Accumulates sum_e mass_e * link(<theta, t(row_e)>, label_flip * y_e)
/// into *acc. `flips` is a per-coordinate +-1 array of length theta.size()
/// (nullptr means no coordinate flips; pass label_flip = 1 for the
/// untransformed loss). Returns false — leaving *acc untouched — when
/// `universe` is not a (Labeled)HypercubeUniverse of matching dimension,
/// in which case the caller must run the generic per-row loop.
bool HypercubeMarginValue(const MarginLoss& link, const convex::Vec& theta,
                          const data::Universe& universe, const int* flips,
                          int label_flip,
                          const std::pair<int, double>* entries, size_t count,
                          double* acc);

/// Gradient counterpart: accumulates per-entry mass_e-weighted margin
/// gradients into *grad with the generic path's exact operation order.
/// Same false-means-fallback contract as HypercubeMarginValue.
bool HypercubeMarginAddGradient(const MarginLoss& link,
                                const convex::Vec& theta,
                                const data::Universe& universe,
                                const int* flips, int label_flip,
                                const std::pair<int, double>* entries,
                                size_t count, convex::Vec* grad);

}  // namespace kernels
}  // namespace losses
}  // namespace pmw

#endif  // PMWCM_LOSSES_MARGIN_KERNELS_H_
