#include "losses/loss_family.h"

#include <algorithm>

#include "common/check.h"

namespace pmw {
namespace losses {
namespace {

std::vector<int> RandomFlips(int dim, Rng* rng) {
  std::vector<int> flips(dim);
  for (int j = 0; j < dim; ++j) flips[j] = rng->Bernoulli(0.5) ? 1 : -1;
  return flips;
}

}  // namespace

std::vector<convex::CmQuery> QueryFamily::Generate(int k, Rng* rng) {
  PMW_CHECK_GE(k, 1);
  std::vector<convex::CmQuery> queries;
  queries.reserve(k);
  for (int j = 0; j < k; ++j) queries.push_back(Next(rng));
  return queries;
}

LipschitzFamily::LipschitzFamily(int dim) : dim_(dim), domain_(dim) {
  PMW_CHECK_GE(dim, 1);
  base_losses_.push_back(std::make_unique<SquaredLoss>(dim));
  base_losses_.push_back(std::make_unique<LogisticLoss>(dim));
  base_losses_.push_back(std::make_unique<HingeLoss>(dim));
  base_losses_.push_back(std::make_unique<AbsoluteLoss>(dim));
}

convex::CmQuery LipschitzFamily::Next(Rng* rng) {
  PMW_CHECK(rng != nullptr);
  const convex::LossFunction* base =
      base_losses_[rng->UniformInt(static_cast<int>(base_losses_.size()))]
          .get();
  auto loss = std::make_unique<SignFlipLoss>(base, RandomFlips(dim_, rng),
                                             rng->Bernoulli(0.5) ? 1 : -1);
  convex::CmQuery query;
  query.loss = loss.get();
  query.domain = &domain_;
  query.label = loss->name();
  generated_.push_back(std::move(loss));
  return query;
}

GlmFamily::GlmFamily(int dim) : dim_(dim), domain_(dim) {
  PMW_CHECK_GE(dim, 1);
  base_losses_.push_back(std::make_unique<SquaredLoss>(dim));
  base_losses_.push_back(std::make_unique<LogisticLoss>(dim));
  base_losses_.push_back(std::make_unique<HuberLoss>(dim, 1.0));
}

convex::CmQuery GlmFamily::Next(Rng* rng) {
  PMW_CHECK(rng != nullptr);
  const convex::LossFunction* base =
      base_losses_[rng->UniformInt(static_cast<int>(base_losses_.size()))]
          .get();
  auto loss = std::make_unique<SignFlipLoss>(base, RandomFlips(dim_, rng),
                                             rng->Bernoulli(0.5) ? 1 : -1);
  PMW_CHECK(loss->is_generalized_linear());
  convex::CmQuery query;
  query.loss = loss.get();
  query.domain = &domain_;
  query.label = loss->name();
  generated_.push_back(std::move(loss));
  return query;
}

StronglyConvexFamily::StronglyConvexFamily(int dim, double sigma)
    : dim_(dim), sigma_(sigma), domain_(dim) {
  PMW_CHECK_GE(dim, 1);
  PMW_CHECK_GT(sigma, 0.0);
  base_losses_.push_back(std::make_unique<SquaredLoss>(dim));
  base_losses_.push_back(std::make_unique<LogisticLoss>(dim));
}

convex::CmQuery StronglyConvexFamily::Next(Rng* rng) {
  PMW_CHECK(rng != nullptr);
  const convex::LossFunction* base =
      base_losses_[rng->UniformInt(static_cast<int>(base_losses_.size()))]
          .get();
  auto flipped = std::make_unique<SignFlipLoss>(
      base, RandomFlips(dim_, rng), rng->Bernoulli(0.5) ? 1 : -1);
  // Random centre inside the half-radius ball keeps the family's Lipschitz
  // constant at 1 + sigma * 1.5.
  convex::Vec center = rng->InUnitBall(dim_);
  convex::ScaleInPlace(&center, 0.5);
  auto loss = std::make_unique<TikhonovLoss>(flipped.get(), sigma_,
                                             std::move(center),
                                             /*domain_radius=*/1.0);
  convex::CmQuery query;
  query.loss = loss.get();
  query.domain = &domain_;
  query.label = loss->name();
  generated_.push_back(std::move(flipped));
  generated_.push_back(std::move(loss));
  return query;
}

double StronglyConvexFamily::scale() const {
  // Diameter 2 times the family Lipschitz bound (1 + 1.5 * sigma).
  return 2.0 * (1.0 + 1.5 * sigma_);
}

LinearQueryFamily::LinearQueryFamily(int dim, int max_width,
                                     bool include_label)
    : dim_(dim),
      max_width_(max_width),
      include_label_(include_label),
      domain_(0.0, 1.0) {
  PMW_CHECK_GE(dim, 1);
  PMW_CHECK_GE(max_width, 1);
  PMW_CHECK_LE(max_width, dim);
}

convex::CmQuery LinearQueryFamily::Next(Rng* rng) {
  PMW_CHECK(rng != nullptr);
  int width = 1 + rng->UniformInt(max_width_);
  // Choose `width` distinct coordinates.
  std::vector<int> all(dim_);
  for (int j = 0; j < dim_; ++j) all[j] = j;
  rng->Shuffle(&all);
  std::vector<int> coords(all.begin(), all.begin() + width);
  std::sort(coords.begin(), coords.end());
  std::vector<int> signs(width);
  for (int i = 0; i < width; ++i) signs[i] = rng->Bernoulli(0.5) ? 1 : -1;
  int label_constraint = 0;
  if (include_label_ && rng->Bernoulli(0.5)) {
    label_constraint = rng->Bernoulli(0.5) ? 1 : -1;
  }
  std::string query_name = "conj(";
  for (size_t i = 0; i < coords.size(); ++i) {
    query_name += (signs[i] == 1 ? "+" : "-") + std::to_string(coords[i]);
  }
  if (label_constraint != 0) {
    query_name += label_constraint == 1 ? "|y+" : "|y-";
  }
  query_name += ")";
  auto loss = std::make_unique<LinearQueryLoss>(
      ConjunctionPredicate(std::move(coords), std::move(signs),
                           label_constraint),
      query_name);
  convex::CmQuery query;
  query.loss = loss.get();
  query.domain = &domain_;
  query.label = loss->name();
  last_loss_ = loss.get();
  generated_.push_back(std::move(loss));
  return query;
}

}  // namespace losses
}  // namespace pmw
