// Linear queries embedded as CM queries.
//
// The paper repeatedly uses that linear queries are a special case of
// Lipschitz, 1-bounded CM queries (Table 1 row 1, Section 4.3). For a
// predicate p : X -> [0, 1], the loss
//     l(theta; x) = (1/2)(theta - p(x))^2   over Theta = [0, 1]
// has minimizer argmin_theta l_D(theta) = E_D[p(x)], exactly the linear
// query's answer, and is 1-Lipschitz with scale S = 1.

#ifndef PMWCM_LOSSES_LINEAR_QUERY_LOSS_H_
#define PMWCM_LOSSES_LINEAR_QUERY_LOSS_H_

#include <functional>
#include <string>

#include "convex/loss_function.h"

namespace pmw {
namespace losses {

/// A [0,1]-valued predicate over records.
using Predicate = std::function<double(const data::Row&)>;

class LinearQueryLoss : public convex::LossFunction {
 public:
  LinearQueryLoss(Predicate predicate, std::string query_name);

  int dim() const override { return 1; }
  double Value(const convex::Vec& theta, const data::Row& x) const override;
  void AddGradient(const convex::Vec& theta, const data::Row& x, double weight,
                   convex::Vec* grad) const override;
  double lipschitz() const override { return 1.0; }
  /// Quadratic in theta with second derivative 1.
  double strong_convexity() const override { return 1.0; }
  std::string name() const override { return "linq:" + query_name_; }

  /// The embedded predicate's value.
  double PredicateValue(const data::Row& x) const { return predicate_(x); }

 private:
  Predicate predicate_;
  std::string query_name_;
};

/// Conjunction predicate over coordinate signs: returns 1 iff
/// sign(x.features[j]) == signs[j] for every j in `coords`, and (when
/// label_constraint is +1/-1) the label sign matches too. The classical
/// "marginal"-style workload for PMW.
Predicate ConjunctionPredicate(std::vector<int> coords, std::vector<int> signs,
                               int label_constraint);

/// Threshold predicate: 1 iff <w, x.features> >= t.
Predicate HalfspacePredicate(std::vector<double> w, double t);

/// Parity predicate over coordinate signs of `coords` (0/1 valued).
Predicate ParityPredicate(std::vector<int> coords);

}  // namespace losses
}  // namespace pmw

#endif  // PMWCM_LOSSES_LINEAR_QUERY_LOSS_H_
