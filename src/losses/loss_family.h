// Workload generators: the families L of CM queries from Table 1.
//
// Each family can generate arbitrarily many distinct queries (the paper's
// regime is k exponential in n) by composing base losses with random record
// transforms, random regularization centres, or random predicates. A family
// owns every loss it generates, so the returned CmQuery views stay valid for
// the family's lifetime.

#ifndef PMWCM_LOSSES_LOSS_FAMILY_H_
#define PMWCM_LOSSES_LOSS_FAMILY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "convex/cm_query.h"
#include "convex/domain.h"
#include "losses/linear_query_loss.h"
#include "losses/margin_losses.h"
#include "losses/transforms.h"

namespace pmw {
namespace losses {

/// Interface for a query family L (paper Section 2.2).
class QueryFamily {
 public:
  virtual ~QueryFamily() = default;

  /// Generates the next random query from the family. The underlying loss
  /// object is owned by the family.
  virtual convex::CmQuery Next(Rng* rng) = 0;

  /// The family-wide scale parameter S (Section 3.2's scaling condition).
  virtual double scale() const = 0;

  virtual std::string name() const = 0;

  /// Convenience: a batch of k queries.
  std::vector<convex::CmQuery> Generate(int k, Rng* rng);
};

/// Table 1 row 2: Lipschitz, d-bounded losses over the unit ball — random
/// sign-flipped squared / logistic / hinge / absolute losses.
class LipschitzFamily : public QueryFamily {
 public:
  explicit LipschitzFamily(int dim);

  convex::CmQuery Next(Rng* rng) override;
  double scale() const override { return 2.0; }  // diameter 2 x Lipschitz 1
  std::string name() const override { return "lipschitz"; }

  const convex::Domain& domain() const { return domain_; }

 private:
  int dim_;
  convex::L2Ball domain_;
  std::vector<std::unique_ptr<convex::LossFunction>> base_losses_;
  std::vector<std::unique_ptr<convex::LossFunction>> generated_;
};

/// Table 1 row 3: unconstrained generalized linear models (UGLM) — random
/// sign-flipped squared / logistic / Huber losses (all GLMs) over the unit
/// ball (the paper's UGLM domain is the unit ball; "unconstrained" means no
/// constraint beyond boundedness, Section 4.2.2).
class GlmFamily : public QueryFamily {
 public:
  explicit GlmFamily(int dim);

  convex::CmQuery Next(Rng* rng) override;
  double scale() const override { return 2.0; }
  std::string name() const override { return "uglm"; }

  const convex::Domain& domain() const { return domain_; }

 private:
  int dim_;
  convex::L2Ball domain_;
  std::vector<std::unique_ptr<convex::LossFunction>> base_losses_;
  std::vector<std::unique_ptr<convex::LossFunction>> generated_;
};

/// Table 1 row 4: sigma-strongly convex losses — Lipschitz bases plus a
/// Tikhonov term with a random centre in the half-radius ball.
class StronglyConvexFamily : public QueryFamily {
 public:
  StronglyConvexFamily(int dim, double sigma);

  convex::CmQuery Next(Rng* rng) override;
  double scale() const override;
  std::string name() const override { return "strongly-convex"; }

  double sigma() const { return sigma_; }
  const convex::Domain& domain() const { return domain_; }

 private:
  int dim_;
  double sigma_;
  convex::L2Ball domain_;
  std::vector<std::unique_ptr<convex::LossFunction>> base_losses_;
  std::vector<std::unique_ptr<convex::LossFunction>> generated_;
};

/// Table 1 row 1: linear (counting) queries embedded as CM queries — random
/// conjunctions of up to `max_width` literals over feature signs and the
/// label, with Theta = [0, 1].
class LinearQueryFamily : public QueryFamily {
 public:
  /// `include_label` adds a label literal with probability 1/2.
  LinearQueryFamily(int dim, int max_width, bool include_label);

  convex::CmQuery Next(Rng* rng) override;
  double scale() const override { return 1.0; }
  std::string name() const override { return "linear-queries"; }

  const convex::Domain& domain() const { return domain_; }

  /// The most recent query's predicate (for direct linear-query baselines).
  const LinearQueryLoss* last_loss() const { return last_loss_; }

 private:
  int dim_;
  int max_width_;
  bool include_label_;
  convex::Interval domain_;
  std::vector<std::unique_ptr<LinearQueryLoss>> generated_;
  const LinearQueryLoss* last_loss_ = nullptr;
};

}  // namespace losses
}  // namespace pmw

#endif  // PMWCM_LOSSES_LOSS_FAMILY_H_
