// Generalized-linear margin losses over labeled records.
//
// Every loss here has the form l(theta; (x, y)) = link(<theta, x>, y) for a
// convex link, i.e. they are generalized linear models (paper Section
// 4.2.2), and each is normalized to be 1-Lipschitz over records with
// ||x||_2 <= 1 and labels y in {-1, +1} and parameters ||theta||_2 <= 1
// (paper Section 1.1's scaling convention).

#ifndef PMWCM_LOSSES_MARGIN_LOSSES_H_
#define PMWCM_LOSSES_MARGIN_LOSSES_H_

#include <string>

#include "convex/loss_function.h"

namespace pmw {
namespace losses {

/// Shared base: l(theta; (x,y)) = link(<theta, x.features>, y).
/// Subclasses provide the scalar link and its derivative in the margin.
class MarginLoss : public convex::LossFunction {
 public:
  explicit MarginLoss(int dim) : dim_(dim) {}

  int dim() const override { return dim_; }
  double Value(const convex::Vec& theta, const data::Row& x) const override;
  void AddGradient(const convex::Vec& theta, const data::Row& x, double weight,
                   convex::Vec* grad) const override;
  bool is_generalized_linear() const override { return true; }

  /// link(z, y) — convex in z for each fixed label y.
  virtual double Link(double z, double y) const = 0;
  /// d/dz link(z, y) (a subderivative at kinks).
  virtual double LinkDerivative(double z, double y) const = 0;

 private:
  int dim_;
};

/// Scaled squared loss (linear regression):
/// l = (1/4)(<theta,x> - y)^2. The 1/4 makes it 1-Lipschitz on the unit
/// ball with |y| <= 1 (|z - y| <= 2).
class SquaredLoss : public MarginLoss {
 public:
  explicit SquaredLoss(int dim) : MarginLoss(dim) {}
  double Link(double z, double y) const override;
  double LinkDerivative(double z, double y) const override;
  double lipschitz() const override { return 1.0; }
  std::string name() const override { return "squared"; }
};

/// Logistic loss: l = log(1 + exp(-y <theta,x>)); 1-Lipschitz.
class LogisticLoss : public MarginLoss {
 public:
  explicit LogisticLoss(int dim) : MarginLoss(dim) {}
  double Link(double z, double y) const override;
  double LinkDerivative(double z, double y) const override;
  double lipschitz() const override { return 1.0; }
  std::string name() const override { return "logistic"; }
};

/// Hinge loss (SVM): l = max(0, 1 - y <theta,x>); 1-Lipschitz, non-smooth.
class HingeLoss : public MarginLoss {
 public:
  explicit HingeLoss(int dim) : MarginLoss(dim) {}
  double Link(double z, double y) const override;
  double LinkDerivative(double z, double y) const override;
  double lipschitz() const override { return 1.0; }
  std::string name() const override { return "hinge"; }
};

/// Absolute (L1 regression) loss: l = |<theta,x> - y|; 1-Lipschitz.
class AbsoluteLoss : public MarginLoss {
 public:
  explicit AbsoluteLoss(int dim) : MarginLoss(dim) {}
  double Link(double z, double y) const override;
  double LinkDerivative(double z, double y) const override;
  double lipschitz() const override { return 1.0; }
  std::string name() const override { return "absolute"; }
};

/// Huber loss on the residual r = <theta,x> - y with transition delta:
/// quadratic inside |r| <= delta, linear outside; Lipschitz min(2, delta)
/// ... with delta <= 1 it is 1-Lipschitz and smooth.
class HuberLoss : public MarginLoss {
 public:
  HuberLoss(int dim, double delta = 1.0);
  double Link(double z, double y) const override;
  double LinkDerivative(double z, double y) const override;
  double lipschitz() const override;
  std::string name() const override { return "huber"; }

 private:
  double delta_;
};

}  // namespace losses
}  // namespace pmw

#endif  // PMWCM_LOSSES_MARGIN_LOSSES_H_
