// Generalized-linear margin losses over labeled records.
//
// Every loss here has the form l(theta; (x, y)) = link(<theta, x>, y) for a
// convex link, i.e. they are generalized linear models (paper Section
// 4.2.2), and each is normalized to be 1-Lipschitz over records with
// ||x||_2 <= 1 and labels y in {-1, +1} and parameters ||theta||_2 <= 1
// (paper Section 1.1's scaling convention).

#ifndef PMWCM_LOSSES_MARGIN_LOSSES_H_
#define PMWCM_LOSSES_MARGIN_LOSSES_H_

#include <algorithm>
#include <cmath>
#include <string>

#include "common/math_util.h"
#include "convex/loss_function.h"

namespace pmw {
namespace losses {

/// Tags the concrete link so the batch kernels (losses/margin_kernels.cc)
/// can dispatch to the inlined static Eval bodies below instead of a
/// per-entry virtual call. kGeneric means "only the virtual Link is
/// available" and keeps unknown subclasses correct.
enum class LinkKind {
  kGeneric,
  kSquared,
  kLogistic,
  kHinge,
  kAbsolute,
  kHuber,
};

/// Shared base: l(theta; (x,y)) = link(<theta, x.features>, y).
/// Subclasses provide the scalar link and its derivative in the margin.
class MarginLoss : public convex::LossFunction {
 public:
  explicit MarginLoss(int dim) : dim_(dim) {}

  int dim() const override { return dim_; }
  double Value(const convex::Vec& theta, const data::Row& x) const override;
  void AddGradient(const convex::Vec& theta, const data::Row& x, double weight,
                   convex::Vec* grad) const override;
  bool is_generalized_linear() const override { return true; }

  // Hypercube-universe sweeps go through the bit-identical batch kernels
  // (losses/margin_kernels.h); anything else falls back to the row loop.
  bool BatchValue(const convex::Vec& theta, const data::Universe& universe,
                  const std::pair<int, double>* entries, size_t count,
                  double* acc) const override;
  bool BatchAddGradient(const convex::Vec& theta,
                        const data::Universe& universe,
                        const std::pair<int, double>* entries, size_t count,
                        convex::Vec* grad) const override;

  /// link(z, y) — convex in z for each fixed label y.
  virtual double Link(double z, double y) const = 0;
  /// d/dz link(z, y) (a subderivative at kinks).
  virtual double LinkDerivative(double z, double y) const = 0;

  /// Which concrete link this is (for the batch kernels' inline dispatch).
  virtual LinkKind link_kind() const { return LinkKind::kGeneric; }
  /// The link's scalar parameter when it has one (Huber's delta).
  virtual double link_param() const { return 0.0; }

 private:
  int dim_;
};

/// Scaled squared loss (linear regression):
/// l = (1/4)(<theta,x> - y)^2. The 1/4 makes it 1-Lipschitz on the unit
/// ball with |y| <= 1 (|z - y| <= 2).
class SquaredLoss : public MarginLoss {
 public:
  explicit SquaredLoss(int dim) : MarginLoss(dim) {}
  // The static Eval bodies are the single source of truth for the link:
  // the virtual Link and the batch kernels' inline dispatch both call
  // them, so the two paths cannot diverge.
  static double Eval(double z, double y) { return 0.25 * Sq(z - y); }
  static double EvalDerivative(double z, double y) { return 0.5 * (z - y); }
  double Link(double z, double y) const override { return Eval(z, y); }
  double LinkDerivative(double z, double y) const override {
    return EvalDerivative(z, y);
  }
  LinkKind link_kind() const override { return LinkKind::kSquared; }
  double lipschitz() const override { return 1.0; }
  std::string name() const override { return "squared"; }
};

/// Logistic loss: l = log(1 + exp(-y <theta,x>)); 1-Lipschitz.
class LogisticLoss : public MarginLoss {
 public:
  explicit LogisticLoss(int dim) : MarginLoss(dim) {}
  static double Eval(double z, double y) { return Log1PExp(-y * z); }
  static double EvalDerivative(double z, double y) {
    return -y * Sigmoid(-y * z);
  }
  double Link(double z, double y) const override { return Eval(z, y); }
  double LinkDerivative(double z, double y) const override {
    return EvalDerivative(z, y);
  }
  LinkKind link_kind() const override { return LinkKind::kLogistic; }
  double lipschitz() const override { return 1.0; }
  std::string name() const override { return "logistic"; }
};

/// Hinge loss (SVM): l = max(0, 1 - y <theta,x>); 1-Lipschitz, non-smooth.
class HingeLoss : public MarginLoss {
 public:
  explicit HingeLoss(int dim) : MarginLoss(dim) {}
  static double Eval(double z, double y) {
    return std::max(0.0, 1.0 - y * z);
  }
  static double EvalDerivative(double z, double y) {
    return (1.0 - y * z > 0.0) ? -y : 0.0;
  }
  double Link(double z, double y) const override { return Eval(z, y); }
  double LinkDerivative(double z, double y) const override {
    return EvalDerivative(z, y);
  }
  LinkKind link_kind() const override { return LinkKind::kHinge; }
  double lipschitz() const override { return 1.0; }
  std::string name() const override { return "hinge"; }
};

/// Absolute (L1 regression) loss: l = |<theta,x> - y|; 1-Lipschitz.
class AbsoluteLoss : public MarginLoss {
 public:
  explicit AbsoluteLoss(int dim) : MarginLoss(dim) {}
  static double Eval(double z, double y) { return std::abs(z - y); }
  static double EvalDerivative(double z, double y) {
    if (z > y) return 1.0;
    if (z < y) return -1.0;
    return 0.0;
  }
  double Link(double z, double y) const override { return Eval(z, y); }
  double LinkDerivative(double z, double y) const override {
    return EvalDerivative(z, y);
  }
  LinkKind link_kind() const override { return LinkKind::kAbsolute; }
  double lipschitz() const override { return 1.0; }
  std::string name() const override { return "absolute"; }
};

/// Huber loss on the residual r = <theta,x> - y with transition delta:
/// quadratic inside |r| <= delta, linear outside; Lipschitz min(2, delta)
/// ... with delta <= 1 it is 1-Lipschitz and smooth.
class HuberLoss : public MarginLoss {
 public:
  HuberLoss(int dim, double delta = 1.0);
  static double Eval(double z, double y, double delta) {
    double r = z - y;
    if (std::abs(r) <= delta) return 0.5 * Sq(r);
    return delta * (std::abs(r) - 0.5 * delta);
  }
  static double EvalDerivative(double z, double y, double delta) {
    return Clamp(z - y, -delta, delta);
  }
  double Link(double z, double y) const override {
    return Eval(z, y, delta_);
  }
  double LinkDerivative(double z, double y) const override {
    return EvalDerivative(z, y, delta_);
  }
  LinkKind link_kind() const override { return LinkKind::kHuber; }
  double link_param() const override { return delta_; }
  double lipschitz() const override;
  std::string name() const override { return "huber"; }

 private:
  double delta_;
};

}  // namespace losses
}  // namespace pmw

#endif  // PMWCM_LOSSES_MARGIN_LOSSES_H_
