#include "losses/transforms.h"

#include <cmath>

#include "common/check.h"
#include "losses/margin_kernels.h"
#include "losses/margin_losses.h"

namespace pmw {
namespace losses {

SignFlipLoss::SignFlipLoss(const convex::LossFunction* base,
                           std::vector<int> flips, int label_flip)
    : base_(base),
      margin_base_(dynamic_cast<const MarginLoss*>(base)),
      flips_(std::move(flips)),
      label_flip_(label_flip) {
  PMW_CHECK(base != nullptr);
  PMW_CHECK_EQ(static_cast<int>(flips_.size()), base->dim());
  for (int f : flips_) PMW_CHECK_MSG(f == 1 || f == -1, "flips must be +-1");
  PMW_CHECK_MSG(label_flip == 1 || label_flip == -1,
                "label_flip must be +-1");
}

data::Row SignFlipLoss::Transform(const data::Row& x) const {
  PMW_CHECK_EQ(x.features.size(), flips_.size());
  data::Row t;
  t.features.resize(x.features.size());
  for (size_t j = 0; j < x.features.size(); ++j) {
    t.features[j] = flips_[j] * x.features[j];
  }
  t.label = label_flip_ * x.label;
  return t;
}

double SignFlipLoss::Value(const convex::Vec& theta,
                           const data::Row& x) const {
  if (margin_base_ != nullptr) {
    // Same multiplies in the same order as Transform followed by the
    // margin dot product, without storing the transformed row.
    PMW_CHECK_EQ(theta.size(), x.features.size());
    PMW_CHECK_EQ(x.features.size(), flips_.size());
    double z = 0.0;
    for (size_t j = 0; j < theta.size(); ++j) {
      z += theta[j] * (flips_[j] * x.features[j]);
    }
    return margin_base_->Link(z, label_flip_ * x.label);
  }
  return base_->Value(theta, Transform(x));
}

void SignFlipLoss::AddGradient(const convex::Vec& theta, const data::Row& x,
                               double weight, convex::Vec* grad) const {
  if (margin_base_ != nullptr) {
    PMW_CHECK(grad != nullptr);
    PMW_CHECK_EQ(theta.size(), x.features.size());
    PMW_CHECK_EQ(x.features.size(), flips_.size());
    PMW_CHECK_EQ(grad->size(), theta.size());
    double z = 0.0;
    for (size_t j = 0; j < theta.size(); ++j) {
      z += theta[j] * (flips_[j] * x.features[j]);
    }
    double coeff =
        weight * margin_base_->LinkDerivative(z, label_flip_ * x.label);
    for (size_t j = 0; j < theta.size(); ++j) {
      (*grad)[j] += coeff * (flips_[j] * x.features[j]);
    }
    return;
  }
  base_->AddGradient(theta, Transform(x), weight, grad);
}

bool SignFlipLoss::BatchValue(const convex::Vec& theta,
                              const data::Universe& universe,
                              const std::pair<int, double>* entries,
                              size_t count, double* acc) const {
  if (margin_base_ == nullptr) return false;
  return kernels::HypercubeMarginValue(*margin_base_, theta, universe,
                                       flips_.data(), label_flip_, entries,
                                       count, acc);
}

bool SignFlipLoss::BatchAddGradient(const convex::Vec& theta,
                                    const data::Universe& universe,
                                    const std::pair<int, double>* entries,
                                    size_t count, convex::Vec* grad) const {
  if (margin_base_ == nullptr) return false;
  return kernels::HypercubeMarginAddGradient(*margin_base_, theta, universe,
                                             flips_.data(), label_flip_,
                                             entries, count, grad);
}

std::string SignFlipLoss::name() const {
  std::string bits;
  for (int f : flips_) bits += (f == 1 ? '+' : '-');
  return base_->name() + "[" + bits + (label_flip_ == 1 ? "|+" : "|-") + "]";
}

TikhonovLoss::TikhonovLoss(const convex::LossFunction* base, double sigma,
                           convex::Vec center, double domain_radius)
    : base_(base),
      sigma_(sigma),
      center_(std::move(center)),
      domain_radius_(domain_radius) {
  PMW_CHECK(base != nullptr);
  PMW_CHECK_GT(sigma, 0.0);
  PMW_CHECK_EQ(static_cast<int>(center_.size()), base->dim());
  PMW_CHECK_GT(domain_radius, 0.0);
}

double TikhonovLoss::Value(const convex::Vec& theta,
                           const data::Row& x) const {
  double dist_sq = 0.0;
  for (size_t j = 0; j < theta.size(); ++j) {
    double diff = theta[j] - center_[j];
    dist_sq += diff * diff;
  }
  return base_->Value(theta, x) + 0.5 * sigma_ * dist_sq;
}

void TikhonovLoss::AddGradient(const convex::Vec& theta, const data::Row& x,
                               double weight, convex::Vec* grad) const {
  base_->AddGradient(theta, x, weight, grad);
  for (size_t j = 0; j < theta.size(); ++j) {
    (*grad)[j] += weight * sigma_ * (theta[j] - center_[j]);
  }
}

double TikhonovLoss::lipschitz() const {
  double center_norm = 0.0;
  for (double c : center_) center_norm += c * c;
  center_norm = std::sqrt(center_norm);
  return base_->lipschitz() + sigma_ * (domain_radius_ + center_norm);
}

std::string TikhonovLoss::name() const {
  return base_->name() + "+tikhonov(sigma=" + std::to_string(sigma_) + ")";
}

}  // namespace losses
}  // namespace pmw
