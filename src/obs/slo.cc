#include "obs/slo.h"

namespace pmw {
namespace obs {

void UpdateSloBurnGauges(Registry* registry,
                         const std::vector<SloBurnSpec>& specs) {
  for (const SloBurnSpec& spec : specs) {
    if (spec.target <= 0.0) continue;
    Gauge* gauge = registry->GetGauge(
        Registry::LabeledName("pmw_slo_burn_ratio", "endpoint",
                              spec.endpoint));
    const Histogram::Snapshot snap = registry->HistogramSnap(spec.histogram);
    if (snap.count == 0) {
      gauge->Set(0.0);
      continue;
    }
    const double observed = snap.Quantile(spec.quantile);
    double burn = 0.0;
    if (spec.higher_is_better) {
      // Goodput objective: burning when the observed quantile falls
      // BELOW the target. observed == 0 with samples present means the
      // objective is maximally violated; saturate rather than divide.
      burn = observed > 0.0 ? spec.target / observed
                            : spec.target;
    } else {
      burn = observed / spec.target;
    }
    gauge->Set(burn);
  }
}

}  // namespace obs
}  // namespace pmw
