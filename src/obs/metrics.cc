#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <utility>

#include "common/check.h"

namespace pmw {
namespace obs {
namespace {

uint64_t DoubleBits(double value) {
  uint64_t bits;
  __builtin_memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double BitsDouble(uint64_t bits) {
  double value;
  __builtin_memcpy(&value, &bits, sizeof(value));
  return value;
}

/// CAS-add on an atomic double stored as bits. Uncontended in the
/// steady state (one logical writer per histogram), so the loop almost
/// always succeeds first try.
void AtomicAdd(std::atomic<uint64_t>* bits, double delta) {
  uint64_t observed = bits->load(std::memory_order_relaxed);
  while (!bits->compare_exchange_weak(
      observed, DoubleBits(BitsDouble(observed) + delta),
      std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<uint64_t>* bits, double value) {
  uint64_t observed = bits->load(std::memory_order_relaxed);
  while (value < BitsDouble(observed) &&
         !bits->compare_exchange_weak(observed, DoubleBits(value),
                                      std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<uint64_t>* bits, double value) {
  uint64_t observed = bits->load(std::memory_order_relaxed);
  while (value > BitsDouble(observed) &&
         !bits->compare_exchange_weak(observed, DoubleBits(value),
                                      std::memory_order_relaxed)) {
  }
}

/// Shortest-round-trip double formatting ("%.17g" trimmed via "%g"
/// upgrade): deterministic for a fixed value on every libc this repo
/// builds against, which is what keeps dumps diffable.
std::string FmtDouble(double value) {
  if (std::isnan(value)) return "null";
  if (std::isinf(value)) return value > 0 ? "1e999" : "-1e999";
  char buffer[64];
  // Try increasing precision until the value round-trips.
  for (int precision = 6; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
    if (std::strtod(buffer, nullptr) == value) break;
  }
  return buffer;
}

std::string JsonEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

/// The metric name without its label block: 'a{b="c"}' -> 'a'.
std::string BaseName(const std::string& name) {
  const size_t brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

}  // namespace

size_t Counter::CellIndex() {
  // One hashed cell index per thread, shared by every counter: the hash
  // is computed once, and distinct threads land on distinct cells with
  // probability (kCells - 1) / kCells per pair.
  static thread_local const size_t cell =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kCells;
  return cell;
}

Histogram::Histogram(std::vector<double> boundaries)
    : boundaries_(std::move(boundaries)),
      buckets_(new std::atomic<long long>[boundaries_.size() + 1]),
      min_bits_(DoubleBits(0.0)),
      max_bits_(DoubleBits(0.0)) {
  for (size_t i = 0; i + 1 < boundaries_.size(); ++i) {
    PMW_CHECK_MSG(boundaries_[i] < boundaries_[i + 1],
                  "histogram boundaries must be strictly increasing");
  }
  for (size_t i = 0; i <= boundaries_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

std::vector<double> Histogram::LogBuckets(double start, double factor,
                                          int count) {
  PMW_CHECK_GT(start, 0.0);
  PMW_CHECK_GT(factor, 1.0);
  std::vector<double> boundaries;
  boundaries.reserve(static_cast<size_t>(count));
  double edge = start;
  for (int i = 0; i < count; ++i) {
    boundaries.push_back(edge);
    edge *= factor;
  }
  return boundaries;
}

void Histogram::Observe(double value) {
  // lower_bound, not upper_bound: a value equal to a boundary belongs
  // in that boundary's bucket (the Prometheus le="x" contract the text
  // exposition renders).
  const size_t bucket =
      static_cast<size_t>(std::lower_bound(boundaries_.begin(),
                                           boundaries_.end(), value) -
                          boundaries_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  // First observation seeds min/max: publish count AFTER the extrema so
  // a racing Snap with count >= 1 sees seeded (not zero-default) bits.
  if (count_.load(std::memory_order_acquire) == 0) {
    // Benign race: two "first" observers both seed; AtomicMin/Max below
    // reconcile to the true extrema either way.
    min_bits_.store(DoubleBits(value), std::memory_order_relaxed);
    max_bits_.store(DoubleBits(value), std::memory_order_relaxed);
  }
  AtomicMin(&min_bits_, value);
  AtomicMax(&max_bits_, value);
  AtomicAdd(&sum_bits_, value);
  AtomicAdd(&sumsq_bits_, value * value);
  count_.fetch_add(1, std::memory_order_release);
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot snap;
  snap.boundaries = boundaries_;
  snap.buckets.resize(boundaries_.size() + 1);
  for (size_t i = 0; i <= boundaries_.size(); ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_acquire);
  snap.sum = BitsDouble(sum_bits_.load(std::memory_order_relaxed));
  snap.sumsq = BitsDouble(sumsq_bits_.load(std::memory_order_relaxed));
  snap.min = BitsDouble(min_bits_.load(std::memory_order_relaxed));
  snap.max = BitsDouble(max_bits_.load(std::memory_order_relaxed));
  return snap;
}

double Histogram::Snapshot::Quantile(double q) const {
  long long total = 0;
  for (long long n : buckets) total += n;
  if (total <= 0) return 0.0;
  const double rank = q * static_cast<double>(total);
  long long seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const double below = static_cast<double>(seen);
    seen += buckets[i];
    if (static_cast<double>(seen) < rank) continue;
    // The rank lands in bucket i: interpolate linearly across its span.
    const double lower =
        i == 0 ? min : boundaries[i - 1];
    const double upper =
        i < boundaries.size() ? boundaries[i] : max;
    const double fraction =
        buckets[i] > 0
            ? (rank - below) / static_cast<double>(buckets[i])
            : 0.0;
    const double value = lower + (upper - lower) * fraction;
    return std::clamp(value, min, max);
  }
  return max;
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  std::vector<double> boundaries) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(std::move(boundaries));
  }
  return slot.get();
}

std::string Registry::LabeledName(const std::string& base,
                                  const std::string& key,
                                  const std::string& value) {
  std::string escaped;
  escaped.reserve(value.size());
  for (char c : value) {
    if (c == '\\' || c == '"') escaped.push_back('\\');
    escaped.push_back(c);
  }
  return base + "{" + key + "=\"" + escaped + "\"}";
}

long long Registry::CounterValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->Value();
}

double Registry::GaugeValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second->Value();
}

Histogram::Snapshot Registry::HistogramSnap(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? Histogram::Snapshot{} : it->second->Snap();
}

void Registry::ForEachCounter(
    const std::string& prefix,
    const std::function<void(const std::string&, long long)>& fn) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = counters_.lower_bound(prefix); it != counters_.end();
       ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    fn(it->first, it->second->Value());
  }
}

std::string Registry::TextExposition() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  std::string last_typed;
  for (const auto& [name, counter] : counters_) {
    const std::string base = BaseName(name);
    if (base != last_typed) {
      out += "# TYPE " + base + " counter\n";
      last_typed = base;
    }
    out += name + " " + std::to_string(counter->Value()) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    out += "# TYPE " + BaseName(name) + " gauge\n";
    out += name + " " + FmtDouble(gauge->Value()) + "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    const Histogram::Snapshot snap = histogram->Snap();
    out += "# TYPE " + name + " histogram\n";
    long long cumulative = 0;
    for (size_t i = 0; i < snap.buckets.size(); ++i) {
      cumulative += snap.buckets[i];
      const std::string le =
          i < snap.boundaries.size() ? FmtDouble(snap.boundaries[i])
                                     : "+Inf";
      out += name + "_bucket{le=\"" + le + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += name + "_sum " + FmtDouble(snap.sum) + "\n";
    out += name + "_count " + std::to_string(snap.count) + "\n";
    for (const auto& [label, q] :
         {std::pair<const char*, double>{"0.5", 0.5},
          {"0.99", 0.99},
          {"0.999", 0.999}}) {
      out += name + "_q{q=\"" + label + "\"} " +
             FmtDouble(snap.Quantile(q)) + "\n";
    }
  }
  return out;
}

std::string Registry::JsonDump() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(name) +
           "\": " + std::to_string(counter->Value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(name) + "\": " + FmtDouble(gauge->Value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    const Histogram::Snapshot snap = histogram->Snap();
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(name) + "\": {\n";
    out += "      \"count\": " + std::to_string(snap.count) + ",\n";
    out += "      \"sum\": " + FmtDouble(snap.sum) + ",\n";
    out += "      \"sumsq\": " + FmtDouble(snap.sumsq) + ",\n";
    out += "      \"min\": " + FmtDouble(snap.min) + ",\n";
    out += "      \"max\": " + FmtDouble(snap.max) + ",\n";
    out += "      \"p50\": " + FmtDouble(snap.Quantile(0.5)) + ",\n";
    out += "      \"p99\": " + FmtDouble(snap.Quantile(0.99)) + ",\n";
    out += "      \"p999\": " + FmtDouble(snap.Quantile(0.999)) + ",\n";
    out += "      \"buckets\": [";
    for (size_t i = 0; i < snap.buckets.size(); ++i) {
      if (i > 0) out += ", ";
      const std::string le = i < snap.boundaries.size()
                                 ? FmtDouble(snap.boundaries[i])
                                 : "null";
      out += "[" + le + ", " + std::to_string(snap.buckets[i]) + "]";
    }
    out += "]\n    }";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

}  // namespace obs
}  // namespace pmw
