// obs::Registry — the unified metrics layer every serving component
// records into and the one surface scrapers read from (the api layer's
// kMetricsRequest frame renders it as Prometheus-style text or an
// ordered-JSON dump).
//
// Design constraints, in order:
//
//   1. Hot-path increments never take a lock. Counter::Add is one
//      relaxed atomic add on a cache-line-padded cell picked by thread
//      id, so the serving writer, pool workers, and transport threads
//      never contend on a line. Gauge::Set is one atomic store;
//      Histogram::Observe is a handful of relaxed atomics plus CAS loops
//      on the moment accumulators (uncontended in practice: one writer
//      per histogram).
//   2. Scrapes are consistent-enough, not transactional. A reader may
//      observe counter A after increment n and counter B before it;
//      every individual value is torn-free. This is the documented
//      contract of every metrics system and exactly what the serving
//      invariant needs: observability reads NEVER block the writer.
//   3. Registration is cold. GetCounter/GetGauge/GetHistogram take the
//      registry mutex; callers resolve handles once (construction time)
//      and hold the stable pointer — instruments are never deleted while
//      the registry lives.
//
// Nothing in this module may influence answers: obs sits directly above
// common/ in the build graph and no serving code reads a metric back
// into a decision.

#ifndef PMWCM_OBS_METRICS_H_
#define PMWCM_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pmw {
namespace obs {

/// Monotonic counter with thread-sharded cells: concurrent Add calls
/// from distinct threads land on distinct cache lines (no lock, no
/// shared-line ping-pong); Value() folds the cells.
class Counter {
 public:
  void Add(long long delta = 1) {
    cells_[CellIndex()].value.fetch_add(delta, std::memory_order_relaxed);
  }

  long long Value() const {
    long long total = 0;
    for (const Cell& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  /// Enough cells that the handful of threads a serving stack runs
  /// (writer, pool workers, transport readers/writers, scrapers) rarely
  /// collide; collisions only cost a shared line, never correctness.
  static constexpr size_t kCells = 8;
  struct alignas(64) Cell {
    std::atomic<long long> value{0};
  };

  static size_t CellIndex();

  Cell cells_[kCells];
};

/// Last-write-wins double value (topology knobs, totals mirrored from
/// writer-owned accumulators). Torn-free via the bit representation.
class Gauge {
 public:
  void Set(double value) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    __builtin_memcpy(&bits, &value, sizeof(bits));
    bits_.store(bits, std::memory_order_relaxed);
  }

  double Value() const {
    const uint64_t bits = bits_.load(std::memory_order_relaxed);
    double value;
    __builtin_memcpy(&value, &bits, sizeof(value));
    return value;
  }

 private:
  std::atomic<uint64_t> bits_{0};
};

/// Fixed-boundary histogram with exact streamed moments. Buckets are
/// chosen at registration (log-spaced via LogBuckets for latency-style
/// metrics) and never change, so bucket counts are plain relaxed atomic
/// adds. Alongside the buckets the histogram streams count/sum/sumsq/
/// min/max exactly, which is what lets common::RunningStats views be
/// reconstructed losslessly from a scrape (ServeStats re-homing).
class Histogram {
 public:
  /// `boundaries` must be strictly increasing; bucket i counts
  /// observations <= boundaries[i], with one implicit +Inf bucket after
  /// the last boundary.
  explicit Histogram(std::vector<double> boundaries);

  void Observe(double value);

  /// Log-spaced boundaries: start, start*factor, ... (`count` of them).
  static std::vector<double> LogBuckets(double start, double factor,
                                        int count);

  /// A torn-free copy of the instrument (each field individually
  /// consistent; the set may straddle concurrent Observes).
  struct Snapshot {
    long long count = 0;
    double sum = 0.0;
    double sumsq = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::vector<double> boundaries;
    /// Per-bucket counts, boundaries.size() + 1 entries (last = +Inf).
    std::vector<long long> buckets;

    /// q-quantile (0 <= q <= 1) by linear interpolation inside the
    /// owning bucket, clamped to the observed [min, max]. Deterministic
    /// for a fixed snapshot; 0 when empty.
    double Quantile(double q) const;
  };
  Snapshot Snap() const;

 private:
  const std::vector<double> boundaries_;
  std::unique_ptr<std::atomic<long long>[]> buckets_;
  std::atomic<long long> count_{0};
  std::atomic<uint64_t> sum_bits_{0};
  std::atomic<uint64_t> sumsq_bits_{0};
  std::atomic<uint64_t> min_bits_;
  std::atomic<uint64_t> max_bits_;
};

/// Named instrument store. One Registry serves one endpoint's whole
/// stack (serve + frontend + api); instruments live as long as the
/// registry, so handles resolved at construction stay valid forever.
///
/// Naming convention: pmw_<layer>_<what>[_total|_ms|_us], with
/// Prometheus-style labels spelled into the name ('name{key="value"}')
/// via LabeledName. Exposition output is sorted by full name, so dumps
/// are deterministic for a fixed set of values.
class Registry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// Re-registering an existing histogram returns it unchanged (the
  /// boundaries of the first registration win).
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> boundaries);

  /// 'base{key="value"}' with '\' and '"' escaped in the value.
  static std::string LabeledName(const std::string& base,
                                 const std::string& key,
                                 const std::string& value);

  /// Counter value by exact name; 0 when absent (scrape-side rebuilds
  /// tolerate not-yet-registered instruments).
  long long CounterValue(const std::string& name) const;
  double GaugeValue(const std::string& name) const;
  /// Empty snapshot when absent.
  Histogram::Snapshot HistogramSnap(const std::string& name) const;

  /// Visits every counter whose name starts with `prefix`, in name
  /// order (what rebuilds labeled per-analyst views from a scrape).
  void ForEachCounter(
      const std::string& prefix,
      const std::function<void(const std::string&, long long)>& fn) const;

  /// Prometheus-style text exposition, sorted by name:
  ///   # TYPE pmw_x counter          (once per base name)
  ///   pmw_x 123
  /// Histograms render cumulative '_bucket{le="..."}' series plus
  /// _count/_sum and exact p50/p99/p999 as '_q{q="..."}' gauges.
  std::string TextExposition() const;

  /// Ordered-JSON dump (keys sorted, stable float formatting — the
  /// workload/json discipline): {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, min, max, p50, p99, p999,
  /// buckets: [[le, n], ...]}}}. Machine-diffable by
  /// bench/check_regression.py.
  std::string JsonDump() const;

 private:
  mutable std::mutex mutex_;
  /// std::map: iteration order == exposition order, deterministically.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace pmw

#endif  // PMWCM_OBS_METRICS_H_
