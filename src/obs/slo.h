// Scrape-time SLO burn gauges: how hard each serving endpoint is
// burning against its latency (or goodput) objective, derived from the
// registry's own histograms at the moment of the scrape.
//
//   burn = observed_quantile / target        (latency objectives)
//   burn = target / observed_quantile        (goodput objectives)
//
// so burn < 1 is healthy, burn >= 1 means the objective is being
// violated, and the magnitude says by how much. The gauges are written
// only when a scrape asks for them (api::ServerEndpoint::HandleMetrics
// refreshes them before rendering), so the serving writer never pays for
// them; like everything in obs they influence no answers.

#ifndef PMWCM_OBS_SLO_H_
#define PMWCM_OBS_SLO_H_

#include <string>
#include <vector>

#include "obs/metrics.h"

namespace pmw {
namespace obs {

/// One objective: a source histogram, the quantile that the objective
/// constrains, and the target value for it.
struct SloBurnSpec {
  /// Label value of the emitted gauge:
  /// pmw_slo_burn_ratio{endpoint="<endpoint>"}.
  std::string endpoint;
  /// Source histogram name in the same registry.
  std::string histogram;
  /// Quantile the objective constrains (e.g. 0.99 for a p99 target).
  double quantile = 0.99;
  /// Target for that quantile, in the histogram's own unit. Specs with
  /// target <= 0 are skipped (objective not configured).
  double target = 0.0;
  /// False: latency-style, burn = observed / target. True:
  /// goodput-style (bigger is better), burn = target / observed.
  bool higher_is_better = false;
};

/// Recomputes pmw_slo_burn_ratio{endpoint=...} for every spec from the
/// registry's current histogram snapshots. A histogram with no samples
/// (or an unconfigured spec) writes burn 0 — "no evidence of burn", the
/// conservative scrape-side default.
void UpdateSloBurnGauges(Registry* registry,
                         const std::vector<SloBurnSpec>& specs);

}  // namespace obs
}  // namespace pmw

#endif  // PMWCM_OBS_SLO_H_
