#include "obs/trace.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace pmw {
namespace obs {

TraceRecorder::TraceRecorder(size_t capacity) {
  PMW_CHECK_GE(capacity, size_t{1});
  slots_.reserve(capacity);
  for (size_t i = 0; i < capacity; ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
}

void TraceRecorder::Publish(RequestTrace trace) {
  Slot& slot = *slots_[trace.trace_id % slots_.size()];
  {
    std::lock_guard<std::mutex> lock(slot.mutex);
    slot.trace = std::move(trace);
    slot.used = true;
  }
  published_.fetch_add(1, std::memory_order_relaxed);
}

long long TraceRecorder::published() const {
  return published_.load(std::memory_order_relaxed);
}

std::vector<RequestTrace> TraceRecorder::SlowRequests(
    uint64_t min_total_us, size_t max_n) const {
  std::vector<RequestTrace> slow;
  for (const std::unique_ptr<Slot>& slot : slots_) {
    std::lock_guard<std::mutex> lock(slot->mutex);
    if (!slot->used || slot->trace.total_us < min_total_us) continue;
    slow.push_back(slot->trace);
  }
  std::sort(slow.begin(), slow.end(),
            [](const RequestTrace& a, const RequestTrace& b) {
              if (a.total_us != b.total_us) return a.total_us > b.total_us;
              return a.trace_id < b.trace_id;
            });
  if (slow.size() > max_n) slow.resize(max_n);
  return slow;
}

std::string TraceRecorder::Format(const std::vector<RequestTrace>& traces) {
  std::string out;
  for (const RequestTrace& trace : traces) {
    out += "trace " + std::to_string(trace.trace_id) + " analyst=" +
           trace.analyst +
           (trace.query.empty() ? "" : " query=" + trace.query) +
           " total_us=" + std::to_string(trace.total_us) +
           (trace.hard_round ? " hard" : "") + (trace.ok ? "" : " error") +
           "\n";
    for (const TraceSpan& span : trace.spans) {
      out += "  ";
      // Shard spans nest one level under the commit they belong to.
      if (span.shard >= 0) out += "  ";
      out += std::string(span.phase) + " start_us=" +
             std::to_string(span.start_us) +
             " dur_us=" + std::to_string(span.dur_us);
      if (span.shard >= 0) out += " shard=" + std::to_string(span.shard);
      out += "\n";
    }
  }
  if (out.empty()) out = "(no traces over threshold)\n";
  return out;
}

}  // namespace obs
}  // namespace pmw
