// obs::TraceRecorder — per-request span trees in a bounded ring.
//
// Every request the front door serves carries one trace id (the
// dispatcher's request id) from admission to commit. The dispatcher
// assembles the request's span tree after resolving its promise —
// queue-wait, batch prepare, the commit's oracle-solve and MW-update
// halves, per-shard MW durations — and publishes it here. The ring is
// bounded and slot assignment is deterministic (slot = trace_id %
// capacity), so a trace's fate depends only on the ids that were served,
// never on scheduling: replaying the same arrival log overwrites the
// same slots in the same order.
//
// Strictly out-of-transcript: traces are written after the answer is
// already resolved, readers copy under per-slot mutexes, and nothing in
// the serving path ever reads a trace back. Writers take exactly one
// uncontended per-slot lock per request (scrapers touch a slot only
// while copying it), which keeps the publish cost flat under scraper
// load — the TSan replay-equivalence tests drive both sides at once.

#ifndef PMWCM_OBS_TRACE_H_
#define PMWCM_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pmw {
namespace obs {

/// One timed phase of a request. `start_us` is relative to the
/// request's admission (so a span tree is self-contained); `shard` is
/// -1 for unsharded phases.
struct TraceSpan {
  /// Static phase name ("queue", "prepare", "solve", "mw", "commit",
  /// "shard_mw").
  const char* phase = "";
  uint64_t start_us = 0;
  uint64_t dur_us = 0;
  int shard = -1;
};

/// The span tree of one served request.
struct RequestTrace {
  /// The dispatcher's request id — also the ring slot key.
  uint64_t trace_id = 0;
  std::string analyst;
  /// Catalog name of the query (empty when served below the api layer).
  std::string query;
  /// End-to-end server-side time: queue wait + serving call.
  uint64_t total_us = 0;
  bool hard_round = false;
  bool ok = true;
  std::vector<TraceSpan> spans;
};

class TraceRecorder {
 public:
  explicit TraceRecorder(size_t capacity = 256);

  /// Stores `trace` at slot trace_id % capacity (overwriting that
  /// slot's previous occupant). One uncontended mutex, no allocation
  /// beyond the trace's own vectors.
  void Publish(RequestTrace trace);

  /// The slowest recorded requests with total_us >= min_total_us, at
  /// most max_n of them, sorted by total_us descending (trace id breaks
  /// ties, so the order is deterministic for fixed contents).
  std::vector<RequestTrace> SlowRequests(uint64_t min_total_us,
                                         size_t max_n) const;

  /// Renders traces as an indented span tree, one block per request —
  /// the payload of the kTraceRequest RPC.
  static std::string Format(const std::vector<RequestTrace>& traces);

  size_t capacity() const { return slots_.size(); }
  /// Traces published over the recorder's lifetime (ring overwrites
  /// included).
  long long published() const;

 private:
  struct Slot {
    mutable std::mutex mutex;
    bool used = false;
    RequestTrace trace;
  };

  std::vector<std::unique_ptr<Slot>> slots_;
  std::atomic<long long> published_{0};
};

}  // namespace obs
}  // namespace pmw

#endif  // PMWCM_OBS_TRACE_H_
