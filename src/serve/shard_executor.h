// Shards a query batch across thread-pool workers and prepares every
// query against one immutable epoch snapshot.
//
// Why this is safe to parallelize: PmwCm::Prepare is const, deterministic,
// and draws no randomness — each plan is a pure function of (query,
// snapshot). Sharding therefore cannot change any plan's value, only the
// wall-clock to compute them; the single-writer commit loop that consumes
// the plans (serve::PmwService) replays the mechanism's stateful part
// (sparse-vector draws, oracle calls, MW updates, ledger appends) in
// canonical arrival order, which is what makes the parallel transcript
// bit-identical to the sequential one.
//
// Dedup happens *before* sharding: one cheap pointer-identity pass over
// the range collects the distinct queries (PR 1's batch cache, hoisted),
// the distinct set is sharded contiguously across workers, and each
// plan is scattered back to every position that asked for it. Cycling
// workloads — many clients asking overlapping questions — therefore
// amortize identically at every thread count, and workers never compute
// the same plan twice regardless of how repeats straddle shards.

#ifndef PMWCM_SERVE_SHARD_EXECUTOR_H_
#define PMWCM_SERVE_SHARD_EXECUTOR_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/thread_pool.h"
#include "convex/cm_query.h"
#include "core/pmw_cm.h"
#include "serve/epoch_state.h"

namespace pmw {
namespace serve {

/// Identity of a CM query: the loss/domain objects (families own them and
/// keep them alive; equal pointers <=> same mathematical query).
struct QueryKey {
  const void* loss;
  const void* domain;
  bool operator==(const QueryKey& other) const {
    return loss == other.loss && domain == other.domain;
  }
};
struct QueryKeyHash {
  size_t operator()(const QueryKey& key) const {
    size_t h = std::hash<const void*>()(key.loss);
    return h ^ (std::hash<const void*>()(key.domain) + 0x9e3779b9 + (h << 6) +
                (h >> 2));
  }
};

/// The epoch identity a plan is computed under and validated against.
/// `shard_set` names the partition, `content` folds the per-shard content
/// fingerprints of the published support (Epoch::content_fingerprint),
/// and `version` is the hypothesis version stamped into plans.
struct PlanStamp {
  int version = -1;
  uint64_t shard_set = 0;
  uint64_t content = 0;
};

/// A cross-batch plan cache the executor consults before computing plans
/// and feeds after (frontend::PlanCache implements it). Entries are keyed
/// by (query fingerprint, shard set, per-shard content fingerprints):
/// Prepare is a pure function of (query, support bytes), and sharding
/// never changes the hypothesis bits, so a cached plan whose stamp agrees
/// on (shard_set, content) is byte-identical to what Prepare would
/// recompute against the probing epoch — even when the hypothesis
/// *version* differs, as it does on every soft round between hard
/// updates. Implementations serving such a content hit must restamp the
/// returned plan's hypothesis_version to the probing stamp's version (the
/// one field Prepare derives from the version rather than the bytes);
/// after that restamp the plan is byte-identical to a recompute, so
/// serving from the cache can never change a transcript — only the
/// wall-clock.
///
/// Threading contract: every method is called from the serving writer
/// thread only (PrepareRange probes before fanning work out and inserts
/// after joining the shards). Implementations may add internal locking so
/// other threads can scrape stats, but correctness never relies on it.
/// Replacement/staleness totals a PlanCacheHook reports for
/// observability: the three distinct ways a cached plan dies. Surfaced
/// through ServeStats and the frontend's pmw_frontend_plan_* metrics.
struct PlanCacheCounters {
  /// Entries evicted by the replacement policy to make room.
  long long evicted = 0;
  /// New plans the admission policy refused to cache at all.
  long long admission_rejected = 0;
  /// Entries dropped because their content fingerprints went stale.
  long long stale_dropped = 0;
};

class PlanCacheHook {
 public:
  virtual ~PlanCacheHook() = default;

  /// Copies the cached plan for `key` into `*plan` — restamped to
  /// `stamp.version` — and returns true when the cached stamp matches
  /// `stamp` on (shard_set, content); returns false on a miss.
  virtual bool Lookup(const QueryKey& key, const PlanStamp& stamp,
                      core::PreparedQuery* plan) = 0;

  /// Offers a freshly computed plan, computed under `stamp` (so
  /// plan.hypothesis_version == stamp.version).
  virtual void Insert(const QueryKey& key, const PlanStamp& stamp,
                      const core::PreparedQuery& plan) = 0;

  /// The writer published an epoch with this stamp. Entries whose content
  /// no longer matches are permanently stale (the hypothesis only moves
  /// forward) and must never be served again — implementations may drop
  /// them eagerly here or lazily on lookup.
  virtual void OnEpochPublish(const PlanStamp& stamp) = 0;

  /// Running replacement/staleness totals (bookkeeping only — never
  /// influences caching decisions or answers). Default: all zeros.
  virtual PlanCacheCounters Counters() const { return {}; }
};

class ShardExecutor {
 public:
  /// `pool` may be null: every range then runs inline on the caller's
  /// thread as a single shard (the sequential service configuration).
  /// `cm` must outlive the executor.
  ShardExecutor(ThreadPool* pool, const core::PmwCm* cm);

  struct PrepareResult {
    /// One plan per *distinct* query in the range, in first-appearance
    /// order. Kept deduplicated — consumers index through plan_of —
    /// so a repeat-heavy batch never deep-copies plans per position.
    std::vector<core::PreparedQuery> plans;
    /// plan_of[i] is the plans index answering queries[begin + i].
    std::vector<size_t> plan_of;
    /// plan_from_cache[u] is 1 when plans[u] was served from the
    /// cross-batch cache instead of recomputed (feeds the per-query
    /// cache-hit flag the api layer reports).
    std::vector<uint8_t> plan_from_cache;
    /// Queries whose plan was shared with an earlier identical query in
    /// the range (range size minus distinct queries).
    long long cache_hits = 0;
    /// Distinct queries probed against the cross-batch plan cache (0
    /// when no cache was supplied).
    long long cross_batch_lookups = 0;
    /// Distinct queries served from the cross-batch cache instead of
    /// being recomputed.
    long long cross_batch_hits = 0;
    /// Shards actually dispatched for this range.
    int shards = 0;
  };

  /// Prepares queries[begin, end) against `epoch`'s snapshot, fanning the
  /// distinct queries out across the pool. Blocks until every shard
  /// finishes. A non-null `cache` is probed per distinct query before any
  /// solver runs (hits skip computation entirely) and fed every fresh
  /// plan after the shards join — both on the calling thread.
  PrepareResult PrepareRange(std::span<const convex::CmQuery> queries,
                             size_t begin, size_t end, const Epoch& epoch,
                             PlanCacheHook* cache = nullptr) const;

 private:
  /// Prepares the cache-missed queries whose plan slots are
  /// slots[lo, hi): plans[slots[u]] receives the plan for
  /// queries[positions[slots[u]]]. Runs on a worker (or inline). Reads
  /// only const state: the mechanism's Prepare path and the epoch
  /// snapshot.
  void PrepareShard(std::span<const convex::CmQuery> queries,
                    const std::vector<size_t>& positions,
                    const std::vector<size_t>& slots, size_t lo, size_t hi,
                    const Epoch& epoch, core::PreparedQuery* plans) const;

  ThreadPool* pool_;
  const core::PmwCm* cm_;
};

}  // namespace serve
}  // namespace pmw

#endif  // PMWCM_SERVE_SHARD_EXECUTOR_H_
