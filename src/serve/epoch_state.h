// Epoch-snapshotted reads for the serving stack.
//
// PMW-CM only mutates its hypothesis when the sparse vector fires a hard
// (kTop) round; between updates the hypothesis is frozen. An *epoch* is
// one such frozen interval, captured as an immutable compacted snapshot
// tagged with the hypothesis version that produced it. Readers (shard
// workers preparing queries) hold a shared_ptr to the epoch for as long
// as they need it; the single writer publishes a new epoch after every MW
// update. Old epochs stay alive until their last reader drops them, so a
// publish never invalidates in-flight reads — the classic RCU shape,
// with shared_ptr as the grace period.

#ifndef PMWCM_SERVE_EPOCH_STATE_H_
#define PMWCM_SERVE_EPOCH_STATE_H_

#include <memory>
#include <mutex>
#include <vector>

#include "core/pmw_cm.h"

namespace pmw {
namespace serve {

/// One immutable serving epoch. `snapshot->version` is the mechanism's
/// hypothesis_version() at capture; `sequence` counts publishes (a batch
/// republishes at its start, so sequence can advance without a version
/// change — it orders publishes, the version keys plan freshness).
///
/// The snapshot is held behind a shared_ptr so consecutive epochs at the
/// same (version, shard set) SHARE one compacted support buffer:
/// republishing an unchanged hypothesis costs O(K), not an O(|X|)
/// compaction pass — the difference between per-batch and per-hard-round
/// work, and what keeps the common soft-round path sublinear for the
/// sparse backend at |X| >= 2^20.
///
/// The snapshot is additionally published per domain shard: `shards`
/// holds one zero-copy [lo, hi) slice view into snapshot->support per
/// shard of the mechanism's hypothesis, in shard order, and their
/// concatenation is exactly snapshot->support (data::SliceSupport). The
/// slices borrow snapshot->support's buffer, so they share the (possibly
/// multi-epoch) snapshot's immutability and lifetime.
struct Epoch {
  /// One shard's view of the snapshot.
  struct ShardSlice {
    int lo = 0;
    int hi = 0;
    data::SupportSlice support;
    /// FNV-1a over this slice's (index, mass-bits) entries: the exact
    /// bytes Prepare reads from this shard. Equal fingerprints on equal
    /// partitions mean byte-equal slices.
    uint64_t content_fingerprint = 0;
  };

  std::shared_ptr<const core::HypothesisSnapshot> snapshot;
  long long sequence = 0;
  std::vector<ShardSlice> shards;
  /// The mechanism's shard-set identity at capture (what
  /// (epoch, shard-set)-aware plan caches key on, alongside the version).
  uint64_t shard_fingerprint = 0;
  /// Folds the per-shard content fingerprints (in shard order) into one
  /// word. Two epochs agreeing on (shard_fingerprint,
  /// content_fingerprint) publish byte-identical per-shard supports, so
  /// any plan is byte-identical between them up to its version stamp —
  /// the key fact that lets plan caches serve across epochs and versions
  /// whose content never actually moved.
  uint64_t content_fingerprint = 0;
};

/// Single-writer, many-reader holder of the current epoch.
///
/// Thread safety: Publish must only be called by the serving writer (it
/// snapshots the live mechanism, which the writer alone may mutate);
/// Current may be called from any thread at any time.
class EpochState {
 public:
  /// Captures the mechanism's current hypothesis as a new epoch and makes
  /// it current. Returns the published epoch.
  std::shared_ptr<const Epoch> Publish(const core::PmwCm& cm);

  /// The most recently published epoch; null before the first Publish.
  std::shared_ptr<const Epoch> Current() const;

  long long epochs_published() const;

 private:
  mutable std::mutex mutex_;
  std::shared_ptr<const Epoch> current_;
  long long published_ = 0;
};

}  // namespace serve
}  // namespace pmw

#endif  // PMWCM_SERVE_EPOCH_STATE_H_
