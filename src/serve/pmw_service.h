// Concurrent sharded serving front-end for the PMW-CM mechanism (v2 of
// the heavy-traffic serving stack; ROADMAP north star).
//
// Threading model: epoch-snapshotted reads, single-writer commits.
//
//   * Read path (parallel). At batch start the writer publishes an
//     *epoch*: an immutable compacted snapshot of the hypothesis
//     (serve/epoch_state.h). A ShardExecutor partitions the batch into
//     contiguous shards — one per thread-pool worker — and each worker
//     prepares its shard's queries against that snapshot
//     (PmwCm::Prepare: const, deterministic, no randomness). This is the
//     embarrassingly parallel part: in steady state the sparse vector
//     answers kBottom and preparation is all the work there is.
//   * Write path (sequential commits, sharded updates). The single
//     writer then commits queries in arrival order through
//     PmwCm::AnswerPrepared — sparse-vector noise draws, oracle calls,
//     MW updates, and ledger appends all happen here, in canonical
//     order. With ServeOptions::num_shards > 1 the hypothesis is
//     partitioned into domain shards and a hard round's MW-update path
//     (payoff + reweigh/renormalize) fans its per-shard halves across
//     the same worker pool via serve::ShardRouter, with the cross-shard
//     combines folded on the writer in fixed shard order. When a commit
//     fires a hard round (MW update) the epoch advances: the writer
//     publishes a new snapshot (with per-shard slice views) and
//     re-prepares the batch's remaining suffix in parallel before
//     continuing. Updates are bounded by the schedule's T, so re-prepares
//     are rare and the amortization survives.
//
// Determinism: plans are pure functions of (query, snapshot) and every
// stateful step is replayed in arrival order by one thread, so answers
// and the privacy ledger are bit-identical to running sequential PmwCm
// under the same seed — regardless of thread count, shard layout, or
// scheduling. tests/serve_parallel_test.cc asserts this property-style;
// the TSan CI job keeps the data-race argument honest.

#ifndef PMWCM_SERVE_PMW_SERVICE_H_
#define PMWCM_SERVE_PMW_SERVICE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "core/pmw_cm.h"
#include "obs/metrics.h"
#include "serve/epoch_state.h"
#include "serve/shard_executor.h"
#include "serve/shard_router.h"

namespace pmw {
namespace serve {

/// Serving-layer configuration (mechanism parameters live in PmwOptions).
struct ServeOptions {
  /// Worker threads preparing queries. <= 1 runs every shard inline on
  /// the serving thread (no pool) — the PR 1 configuration.
  int num_threads = 1;
  /// Domain shards the hypothesis is partitioned into (rounded down to a
  /// power of two, clamped to the universe size). With > 1 shard the
  /// MW-update hot path — the dual-certificate payoff and the
  /// reweigh/renormalize passes — fans across the same worker pool via
  /// serve::ShardRouter, while commits keep their fixed shard order so
  /// transcripts stay bit-identical to sequential PmwCm at ANY
  /// (shards x threads) configuration.
  int num_shards = 1;
  /// Hypothesis storage backend. kSparse materializes only the support
  /// the MW updates actually touch (per-shard uniform residual for the
  /// rest) — the |X| >= 2^20 configuration. With default `sparse`
  /// options ("exact mode") transcripts remain bit-identical to kDense.
  core::HypothesisBackend hypothesis_backend =
      core::HypothesisBackend::kDense;
  /// Sparse-backend knobs; non-default values opt into the documented
  /// approx mode (core/sharded_hypothesis.h).
  core::SparseHypothesisOptions sparse;
  /// Metrics registry the service records into (not owned; must outlive
  /// the service). Null makes the service own a private registry — the
  /// embedded/test configuration. The api endpoint passes its own so one
  /// registry spans serve + frontend + transport.
  obs::Registry* registry = nullptr;
  /// Record per-query span timings (prepare/solve/mw/commit + per-shard
  /// MW) into QueryOutcome. Pure bookkeeping — never influences answers
  /// or transcripts; off saves a few clock reads per commit.
  bool record_spans = true;
  /// Multi-host serving: a hypothesis delegate (cluster::Combiner) that
  /// moves the per-shard MW phases to shard-group worker processes. Not
  /// owned; must outlive the service and already be Connect()ed with
  /// this service's clamped shard count. Null (the default) keeps every
  /// phase in-process. Requires num_shards > 1 and the dense backend;
  /// transcripts stay bit-identical either way (core/sharded_hypothesis.h
  /// keeps both cross-shard folds on the serving writer).
  core::HypothesisDelegate* hypothesis_delegate = nullptr;
};

/// Serving counters. Latency/throughput moments use common/stats.h's
/// RunningStats; totals are plain counters (only the serving writer
/// mutates them, so no atomics).
struct ServeStats {
  /// Per-analyst slice of the counters, keyed by the tags a front-end
  /// passes to AnswerBatch (empty when serving untagged traffic).
  struct AnalystCounters {
    long long queries = 0;
    /// Hard rounds this analyst's queries triggered (privacy-relevant:
    /// each one is an oracle call).
    long long updates = 0;
    long long errors = 0;
  };

  RunningStats batch_latency_ms;
  RunningStats batch_queries_per_sec;
  long long queries = 0;
  long long batches = 0;
  /// kBottom answers: served from the hypothesis, no privacy cost.
  long long bottom_answers = 0;
  /// kTop answers: oracle call + MW update.
  long long updates = 0;
  /// Queries whose PreparedQuery was shared with an earlier identical
  /// query in the same prepared range (same loss/domain, same epoch);
  /// dedup happens before sharding, so repeats amortize identically at
  /// every thread count.
  long long prepare_cache_hits = 0;
  /// Error statuses returned to clients (halted / budget exhausted).
  long long errors = 0;
  /// Epochs published (one per batch start + one per mid-batch update).
  /// Mirrors EpochState::epochs_published(), the authoritative counter.
  long long epochs = 0;
  /// Distinct plans recomputed in parallel after a mid-batch epoch
  /// advance (repeats of an already-recomputed query are cache hits).
  long long reprepared = 0;
  /// Cross-batch plan cache: distinct queries probed / served from a
  /// PlanCacheHook (zero when no cache is attached). Unlike
  /// prepare_cache_hits these survive between AnswerBatch calls — the
  /// whole point of the front-end's epoch-keyed cache.
  long long cross_batch_cache_lookups = 0;
  long long cross_batch_cache_hits = 0;
  /// How cross-batch cached plans died (PlanCacheHook::Counters; zeros
  /// with no cache attached): replacement-policy evictions, admission
  /// rejections (the new plan was never cached), and content-fingerprint
  /// staleness drops. Totals, refreshed per batch.
  long long plan_cache_evicted = 0;
  long long plan_cache_admission_rejected = 0;
  long long plan_cache_stale_dropped = 0;
  /// Worker threads serving shards (1 = inline).
  int threads = 1;
  /// Domain shards the hypothesis is partitioned into (after clamping).
  int shards = 1;
  /// MW-update-path wall time (payoff + reweigh/renormalize, the work
  /// the domain shards parallelize; oracle solves excluded) and the
  /// hard rounds it covers. Mirrors core::MwUpdateTiming.
  double mw_update_ms = 0.0;
  long long mw_updates = 0;
  /// Per-analyst counters (populated by the tagged AnswerBatch overload).
  std::map<std::string, AnalystCounters> per_analyst;

  double OverallQueriesPerSec() const;
  /// Fraction of cross-batch lookups served from the cache (0 when the
  /// cache saw no traffic).
  double CrossBatchHitRate() const;

  /// One row per service for comparative tables (benches print several
  /// services side by side). Header and row are aligned column-for-column
  /// so callers never hand-format counters again.
  static std::vector<std::string> TableHeader();
  std::vector<std::string> TableRow() const;
  /// The single-service table: TableHeader + this service's TableRow,
  /// rendered with common/table_printer.
  std::string ToString() const;

  /// Multi-line report: the table plus latency moments and the
  /// per-analyst breakdown.
  std::string Report() const;
};

/// Per-query serving outcome, positionally aligned with AnswerBatch's
/// result vector. Pure bookkeeping — outcomes never influence answers —
/// but the api layer forwards them to clients as ServingMeta (epoch,
/// hard/soft round, cache-hit flag).
struct QueryOutcome {
  /// Hypothesis version the query was committed at.
  int epoch = 0;
  /// True when the query triggered an oracle call + MW update.
  bool hard_round = false;
  /// True when the query's plan was served from the cross-batch cache.
  bool cache_hit = false;
  /// Span timings (ServeOptions::record_spans; zeros when off). All
  /// bookkeeping — never influence answers. prepare_us is the batch's
  /// total parallel-prepare wall time (batch-level, like the dispatcher's
  /// serve_us); the rest are this query's own commit breakdown.
  uint64_t prepare_us = 0;
  /// Private oracle solve inside the commit (hard rounds only).
  uint64_t solve_us = 0;
  /// MW-update path inside the commit (hard rounds only).
  uint64_t mw_us = 0;
  /// The whole AnswerPrepared call for this query.
  uint64_t commit_us = 0;
  /// Per-shard MW wall time for this query's hard round (empty on soft
  /// rounds or single-shard topologies).
  std::vector<uint32_t> shard_us;
};

class PmwService {
 public:
  /// `dataset` and `oracle` must outlive the service (same contract as
  /// PmwCm, which the service constructs and owns).
  PmwService(const data::Dataset* dataset, erm::Oracle* oracle,
             const core::PmwOptions& options, uint64_t seed,
             const ServeOptions& serve_options = ServeOptions{});

  /// Answers `queries` in order. The result vector is positionally aligned
  /// with the input; each entry is the released theta or the per-query
  /// error status (kHalted / kResourceExhausted), exactly as the sequential
  /// mechanism would have produced it.
  ///
  /// Must be called from one serving thread at a time (the single
  /// writer); fan-in from many client threads belongs in a queue in
  /// front of it (frontend::Dispatcher).
  std::vector<Result<convex::Vec>> AnswerBatch(
      std::span<const convex::CmQuery> queries);

  /// Tagged overload: `analyst_ids` is positionally aligned with
  /// `queries` (same size, or empty for untagged) and attributes each
  /// query's outcome to its analyst in stats().per_analyst. Tags never
  /// influence answers — they are bookkeeping only.
  std::vector<Result<convex::Vec>> AnswerBatch(
      std::span<const convex::CmQuery> queries,
      std::span<const std::string> analyst_ids);

  /// Full overload: a non-null `outcomes` additionally receives one
  /// QueryOutcome per query (cleared and refilled), what the api layer
  /// ships back as serving metadata.
  std::vector<Result<convex::Vec>> AnswerBatch(
      std::span<const convex::CmQuery> queries,
      std::span<const std::string> analyst_ids,
      std::vector<QueryOutcome>* outcomes);

  /// Convenience: a batch of one.
  Result<convex::Vec> Answer(const convex::CmQuery& query);

  /// Attaches a cross-batch plan cache (not owned; may be null to
  /// detach). The service probes it during every prepare phase and
  /// notifies it of each epoch publish, extending the intra-batch dedup
  /// across the whole request stream. Set from the serving thread while
  /// no batch is in flight.
  void set_plan_cache(PlanCacheHook* cache) { plan_cache_ = cache; }
  PlanCacheHook* plan_cache() const { return plan_cache_; }

  core::PmwCm& mechanism() { return cm_; }
  const core::PmwCm& mechanism() const { return cm_; }
  /// Live counters — single-writer state: read only from the serving
  /// thread or after serving quiesces. Remote scrapers use
  /// stats_snapshot().
  const ServeStats& stats() const { return stats_; }
  /// A ServeStats view rebuilt purely from registry reads — safe from
  /// any thread while the writer keeps serving (the stats RPC), never
  /// blocks the writer, and costs no per-batch struct copy. Latency
  /// moments come back through RunningStats::FromMoments, so mean/sum
  /// are exact and variance matches up to float rearrangement.
  ServeStats stats_snapshot() const;
  /// The metrics registry the service records into (its own unless
  /// ServeOptions::registry injected one). Scrape-safe from any thread.
  obs::Registry& registry() { return *registry_; }
  const obs::Registry& registry() const { return *registry_; }
  /// Domain shards the hypothesis is partitioned into (after clamping).
  int num_shards() const { return cm_.num_shards(); }
  /// The epoch holder (exposed for tests and future async front-ends).
  const EpochState& epochs() const { return epochs_; }
  /// The per-shard work router (exposed for tests).
  const ShardRouter& router() const { return router_; }

 private:
  /// Publishes a fresh epoch and prepares queries[begin, end) against it,
  /// folding executor counters into stats_ and the registry. Returns the
  /// epoch; `*prepared` receives the deduplicated plans + position index
  /// for the range.
  std::shared_ptr<const Epoch> PublishAndPrepare(
      std::span<const convex::CmQuery> queries, size_t begin, size_t end,
      ShardExecutor::PrepareResult* prepared);

  /// Registry handles resolved once at construction (instrument pointers
  /// are stable for the registry's lifetime).
  struct Instruments {
    obs::Counter* queries = nullptr;
    obs::Counter* batches = nullptr;
    obs::Counter* bottom_answers = nullptr;
    obs::Counter* updates = nullptr;
    obs::Counter* prepare_cache_hits = nullptr;
    obs::Counter* errors = nullptr;
    obs::Counter* epochs = nullptr;
    obs::Counter* reprepared = nullptr;
    obs::Counter* cross_batch_cache_lookups = nullptr;
    obs::Counter* cross_batch_cache_hits = nullptr;
    obs::Gauge* threads = nullptr;
    obs::Gauge* shards = nullptr;
    obs::Gauge* mw_update_ms = nullptr;
    obs::Gauge* mw_updates = nullptr;
    obs::Histogram* batch_latency_ms = nullptr;
    obs::Histogram* batch_queries_per_sec = nullptr;
  };
  /// Labeled per-analyst counter handles, cached writer-locally so the
  /// registry mutex is taken once per analyst, not once per query.
  struct AnalystHandles {
    obs::Counter* queries = nullptr;
    obs::Counter* updates = nullptr;
    obs::Counter* errors = nullptr;
  };
  AnalystHandles& HandlesFor(const std::string& analyst);

  core::PmwCm cm_;
  std::unique_ptr<ThreadPool> pool_;  // null when num_threads <= 1
  ShardExecutor executor_;
  /// Fans the MW-update path's per-shard phases across pool_; installed
  /// into cm_ as its ShardRunner when num_shards > 1.
  ShardRouter router_;
  EpochState epochs_;
  ServeStats stats_;
  /// Owned fallback when ServeOptions::registry is null; registry_
  /// always points at the live one.
  std::unique_ptr<obs::Registry> owned_registry_;
  obs::Registry* registry_ = nullptr;
  Instruments m_;
  /// Writer-local: only the serving thread touches the handle cache.
  std::map<std::string, AnalystHandles> analyst_handles_;
  bool record_spans_ = true;
  PlanCacheHook* plan_cache_ = nullptr;  // not owned
};

}  // namespace serve
}  // namespace pmw

#endif  // PMWCM_SERVE_PMW_SERVICE_H_
