// Batched serving front-end for the PMW-CM mechanism: the first piece of
// the heavy-traffic serving stack (ROADMAP north star). Queries arrive in
// batches; the service amortizes the per-query hypothesis work across each
// batch and keeps latency/throughput counters for capacity planning.
//
// Threading model: mutex-free single-writer. A PmwService instance is owned
// by exactly one serving thread, which drains a request queue and feeds
// batches to AnswerBatch; the mechanism state (hypothesis histogram, sparse
// vector, ledger) is only ever touched from that thread, so there are no
// locks anywhere on the answer path. Fan-in from many client threads
// belongs in front of the writer loop (an MPSC queue), not inside it.
//
// What batching buys on the bottom-answer (cache-hit) path:
//   * one hypothesis compaction/normalization pass per batch instead of
//     one per query (PmwCm::SnapshotHypothesis + Prepare's snapshot
//     argument), and
//   * one solve per *distinct* query per batch: repeated queries reuse the
//     PreparedQuery, which is sound because Prepare is deterministic and
//     state-free — the transcript is query-for-query identical to calling
//     PmwCm::AnswerQuery sequentially (tests/serve_test.cc asserts this,
//     including the privacy ledger).
// An MW update mid-batch bumps hypothesis_version(), which invalidates the
// snapshot and the cache for the remainder of the batch.

#ifndef PMWCM_SERVE_PMW_SERVICE_H_
#define PMWCM_SERVE_PMW_SERVICE_H_

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/stats.h"
#include "core/pmw_cm.h"

namespace pmw {
namespace serve {

/// Serving counters. Latency/throughput moments use common/stats.h's
/// RunningStats; totals are plain counters (single-writer, so no atomics).
struct ServeStats {
  RunningStats batch_latency_ms;
  RunningStats batch_queries_per_sec;
  long long queries = 0;
  long long batches = 0;
  /// kBottom answers: served from the hypothesis, no privacy cost.
  long long bottom_answers = 0;
  /// kTop answers: oracle call + MW update.
  long long updates = 0;
  /// Queries whose PreparedQuery was reused from an earlier query in the
  /// same batch (same loss/domain, unchanged hypothesis).
  long long prepare_cache_hits = 0;
  /// Error statuses returned to clients (halted / budget exhausted).
  long long errors = 0;

  double OverallQueriesPerSec() const;
  std::string Report() const;
};

class PmwService {
 public:
  /// `dataset` and `oracle` must outlive the service (same contract as
  /// PmwCm, which the service constructs and owns).
  PmwService(const data::Dataset* dataset, erm::Oracle* oracle,
             const core::PmwOptions& options, uint64_t seed);

  /// Answers `queries` in order. The result vector is positionally aligned
  /// with the input; each entry is the released theta or the per-query
  /// error status (kHalted / kResourceExhausted), exactly as the sequential
  /// mechanism would have produced it.
  std::vector<Result<convex::Vec>> AnswerBatch(
      std::span<const convex::CmQuery> queries);

  /// Convenience: a batch of one.
  Result<convex::Vec> Answer(const convex::CmQuery& query);

  core::PmwCm& mechanism() { return cm_; }
  const core::PmwCm& mechanism() const { return cm_; }
  const ServeStats& stats() const { return stats_; }

 private:
  /// Identity of a CM query: the loss/domain objects (families own them and
  /// keep them alive; equal pointers <=> same mathematical query).
  struct QueryKey {
    const void* loss;
    const void* domain;
    bool operator==(const QueryKey& other) const {
      return loss == other.loss && domain == other.domain;
    }
  };
  struct QueryKeyHash {
    size_t operator()(const QueryKey& key) const {
      size_t h = std::hash<const void*>()(key.loss);
      return h ^ (std::hash<const void*>()(key.domain) + 0x9e3779b9 +
                  (h << 6) + (h >> 2));
    }
  };

  /// Recompacts the hypothesis snapshot if an MW update invalidated it and
  /// drops PreparedQuery entries from the old version.
  void RefreshSnapshot();

  core::PmwCm cm_;
  core::HypothesisSnapshot snapshot_;
  bool snapshot_valid_ = false;
  std::unordered_map<QueryKey, core::PreparedQuery, QueryKeyHash> prepared_;
  ServeStats stats_;
};

}  // namespace serve
}  // namespace pmw

#endif  // PMWCM_SERVE_PMW_SERVICE_H_
