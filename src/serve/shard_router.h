// serve::ShardRouter — fans per-shard work of the single-writer commit
// loop across the thread pool.
//
// The sharded hypothesis (core/sharded_hypothesis.h) decomposes the
// MW-update hot path into K independent per-shard passes: every query's
// domain footprint — the universe slice its dual-certificate payoff and
// reweigh touch — is split across the owning shards, and cross-shard
// quantities (the normalizer) reduce from per-shard partial sums on the
// writer afterwards. The router is the execution side of that split: it
// runs shard closures on pool workers (or inline when no pool / one
// shard), blocks until every shard completes, and rethrows worker
// exceptions only after the join so no shard is left writing into a
// dead frame.
//
// Determinism: shards write disjoint state and every combine happens on
// the calling writer thread in fixed shard order, so scheduling can only
// change wall-clock — never a bit of the transcript. The router is
// installed into core::PmwCm as its ShardRunner by serve::PmwService.

#ifndef PMWCM_SERVE_SHARD_ROUTER_H_
#define PMWCM_SERVE_SHARD_ROUTER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/thread_pool.h"
#include "core/sharded_hypothesis.h"

namespace pmw {
namespace serve {

class ShardRouter {
 public:
  /// `pool` may be null: every shard then runs inline on the caller's
  /// thread, in shard order (the sequential configuration).
  explicit ShardRouter(ThreadPool* pool) : pool_(pool) {}

  /// Runs shard_fn(s) for every s in [0, num_shards) and returns once
  /// all completed. Only the single serving writer may call this (the
  /// closures it routes mutate writer-owned per-shard state).
  void Run(int num_shards, const std::function<void(int)>& shard_fn);

  /// The router as a core::ShardRunner, for PmwCm::ConfigureSharding.
  /// The router must outlive the mechanism it is installed into.
  core::ShardRunner AsRunner() {
    return [this](int num_shards, const std::function<void(int)>& fn) {
      Run(num_shards, fn);
    };
  }

  /// Parallel sections routed (one per Run that actually fanned out) and
  /// shard tasks dispatched to workers. Writer-thread counters: read
  /// them only from the writer or after serving quiesces.
  long long sections() const { return sections_; }
  long long shard_tasks() const { return shard_tasks_; }

  /// Opens a per-shard wall-clock window: subsequent Run calls
  /// accumulate each shard's elapsed microseconds into a slot owned by
  /// that shard (workers write disjoint preallocated entries — no
  /// locking, no effect on transcript bits). Writer-thread only.
  void ResetWindow(int num_shards);

  /// Per-shard microseconds accumulated since the last ResetWindow.
  /// Read on the writer after Run has joined — never concurrently.
  const std::vector<uint64_t>& WindowShardUs() const { return window_us_; }

 private:
  ThreadPool* pool_;
  long long sections_ = 0;
  long long shard_tasks_ = 0;
  /// Slot s is written only by the thread running shard s (inside Run,
  /// between fan-out and join), read by the writer after the join.
  std::vector<uint64_t> window_us_;
};

}  // namespace serve
}  // namespace pmw

#endif  // PMWCM_SERVE_SHARD_ROUTER_H_
