#include "serve/shard_executor.h"

#include <algorithm>
#include <future>
#include <unordered_map>

#include "common/check.h"

namespace pmw {
namespace serve {

ShardExecutor::ShardExecutor(ThreadPool* pool, const core::PmwCm* cm)
    : pool_(pool), cm_(cm) {
  PMW_CHECK(cm != nullptr);
}

void ShardExecutor::PrepareShard(std::span<const convex::CmQuery> queries,
                                 const std::vector<size_t>& positions,
                                 const std::vector<size_t>& slots, size_t lo,
                                 size_t hi, const Epoch& epoch,
                                 core::PreparedQuery* plans) const {
  for (size_t u = lo; u < hi; ++u) {
    const size_t slot = slots[u];
    plans[slot] = cm_->Prepare(queries[positions[slot]], *epoch.snapshot);
  }
}

ShardExecutor::PrepareResult ShardExecutor::PrepareRange(
    std::span<const convex::CmQuery> queries, size_t begin, size_t end,
    const Epoch& epoch, PlanCacheHook* cache) const {
  PMW_CHECK_LE(begin, end);
  PMW_CHECK_LE(end, queries.size());
  PrepareResult result;
  const size_t count = end - begin;
  if (count == 0) return result;

  // Dedup pass (cheap: pointer-identity hashing) on the calling thread.
  // plan_of[i] maps position begin+i to its plan slot; positions[u] maps
  // plan slot u back to the first position that asked for it.
  std::unordered_map<QueryKey, size_t, QueryKeyHash> slot_of;
  slot_of.reserve(count);
  result.plan_of.resize(count);
  std::vector<size_t> positions;
  positions.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const convex::CmQuery& query = queries[begin + i];
    PMW_CHECK(query.loss != nullptr);
    PMW_CHECK(query.domain != nullptr);
    QueryKey key{query.loss, query.domain};
    auto [it, inserted] = slot_of.emplace(key, positions.size());
    if (inserted) positions.push_back(begin + i);
    result.plan_of[i] = it->second;
  }
  const size_t distinct = positions.size();
  result.cache_hits = static_cast<long long>(count - distinct);
  result.plans.resize(distinct);
  result.plan_from_cache.assign(distinct, 0);

  // Cross-batch cache probe, still on the calling thread: slots the cache
  // fills need no solver work at all; only the misses are sharded out. A
  // cached plan at the epoch's version equals the recompute byte-for-byte
  // (Prepare is deterministic), so the transcript cannot depend on hits.
  std::vector<size_t> miss_slots;
  miss_slots.reserve(distinct);
  const PlanStamp stamp{epoch.snapshot->version, epoch.shard_fingerprint,
                        epoch.content_fingerprint};
  if (cache != nullptr) {
    result.cross_batch_lookups = static_cast<long long>(distinct);
    for (size_t slot = 0; slot < distinct; ++slot) {
      const convex::CmQuery& query = queries[positions[slot]];
      QueryKey key{query.loss, query.domain};
      if (cache->Lookup(key, stamp, &result.plans[slot])) {
        ++result.cross_batch_hits;
        result.plan_from_cache[slot] = 1;
      } else {
        miss_slots.push_back(slot);
      }
    }
  } else {
    for (size_t slot = 0; slot < distinct; ++slot) {
      miss_slots.push_back(slot);
    }
  }
  const size_t misses = miss_slots.size();
  if (misses == 0) return result;

  // Fan the missed queries out; each worker writes a disjoint set of
  // result.plans slots, sharing nothing but the const snapshot. The
  // futures' wait/get below both joins a shard and publishes its writes
  // (happens-before) back to this thread.
  const size_t max_shards =
      pool_ != nullptr ? static_cast<size_t>(pool_->size()) : 1;
  const size_t shards = std::min(max_shards, misses);
  core::PreparedQuery* plans = result.plans.data();
  if (shards <= 1) {
    result.shards = 1;
    PrepareShard(queries, positions, miss_slots, 0, misses, epoch, plans);
  } else {
    const size_t chunk = (misses + shards - 1) / shards;
    std::vector<std::future<void>> pending;
    pending.reserve(shards);
    try {
      for (size_t s = 0; s < shards; ++s) {
        const size_t lo = s * chunk;
        const size_t hi = std::min(lo + chunk, misses);
        if (lo >= hi) break;
        pending.push_back(pool_->Submit(
            [this, queries, &positions, &miss_slots, lo, hi, &epoch, plans] {
              PrepareShard(queries, positions, miss_slots, lo, hi, epoch,
                           plans);
            }));
      }
    } catch (...) {
      // Submit threw (allocation / pool shutdown): in-flight shards still
      // reference this frame's positions/epoch/plans — join them before
      // unwinding.
      for (std::future<void>& f : pending) f.wait();
      throw;
    }
    // Ceil-division chunking can finish early, so count what actually ran.
    result.shards = static_cast<int>(pending.size());
    // Join every shard unconditionally before get() may rethrow a task
    // exception: unwinding with shards in flight would free the buffers
    // they write.
    for (std::future<void>& f : pending) f.wait();
    for (std::future<void>& f : pending) f.get();
  }

  // Publish the fresh plans (writer thread, after the join, so the cache
  // never observes a half-written plan).
  if (cache != nullptr) {
    for (size_t u = 0; u < misses; ++u) {
      const size_t slot = miss_slots[u];
      const convex::CmQuery& query = queries[positions[slot]];
      cache->Insert(QueryKey{query.loss, query.domain}, stamp,
                    result.plans[slot]);
    }
  }
  return result;
}

}  // namespace serve
}  // namespace pmw
