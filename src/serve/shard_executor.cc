#include "serve/shard_executor.h"

#include <algorithm>
#include <future>
#include <unordered_map>

#include "common/check.h"

namespace pmw {
namespace serve {

ShardExecutor::ShardExecutor(ThreadPool* pool, const core::PmwCm* cm)
    : pool_(pool), cm_(cm) {
  PMW_CHECK(cm != nullptr);
}

void ShardExecutor::PrepareShard(std::span<const convex::CmQuery> queries,
                                 const std::vector<size_t>& positions,
                                 size_t lo, size_t hi, const Epoch& epoch,
                                 core::PreparedQuery* plans) const {
  for (size_t u = lo; u < hi; ++u) {
    plans[u] = cm_->Prepare(queries[positions[u]], epoch.snapshot);
  }
}

ShardExecutor::PrepareResult ShardExecutor::PrepareRange(
    std::span<const convex::CmQuery> queries, size_t begin, size_t end,
    const Epoch& epoch) const {
  PMW_CHECK_LE(begin, end);
  PMW_CHECK_LE(end, queries.size());
  PrepareResult result;
  const size_t count = end - begin;
  if (count == 0) return result;

  // Dedup pass (cheap: pointer-identity hashing) on the calling thread.
  // plan_of[i] maps position begin+i to its plan slot; positions[u] maps
  // plan slot u back to the first position that asked for it.
  std::unordered_map<QueryKey, size_t, QueryKeyHash> slot_of;
  slot_of.reserve(count);
  result.plan_of.resize(count);
  std::vector<size_t> positions;
  positions.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const convex::CmQuery& query = queries[begin + i];
    PMW_CHECK(query.loss != nullptr);
    PMW_CHECK(query.domain != nullptr);
    QueryKey key{query.loss, query.domain};
    auto [it, inserted] = slot_of.emplace(key, positions.size());
    if (inserted) positions.push_back(begin + i);
    result.plan_of[i] = it->second;
  }
  const size_t distinct = positions.size();
  result.cache_hits = static_cast<long long>(count - distinct);

  // Fan the distinct queries out; each worker writes a disjoint slice of
  // result.plans, sharing nothing but the const snapshot. The futures'
  // wait/get below both joins a shard and publishes its writes
  // (happens-before) back to this thread.
  result.plans.resize(distinct);
  const size_t max_shards =
      pool_ != nullptr ? static_cast<size_t>(pool_->size()) : 1;
  const size_t shards = std::min(max_shards, distinct);
  if (shards <= 1) {
    result.shards = 1;
    PrepareShard(queries, positions, 0, distinct, epoch,
                 result.plans.data());
    return result;
  }

  const size_t chunk = (distinct + shards - 1) / shards;
  std::vector<std::future<void>> pending;
  pending.reserve(shards);
  core::PreparedQuery* plans = result.plans.data();
  try {
    for (size_t s = 0; s < shards; ++s) {
      const size_t lo = s * chunk;
      const size_t hi = std::min(lo + chunk, distinct);
      if (lo >= hi) break;
      pending.push_back(pool_->Submit(
          [this, queries, &positions, lo, hi, &epoch, plans] {
            PrepareShard(queries, positions, lo, hi, epoch, plans);
          }));
    }
  } catch (...) {
    // Submit threw (allocation): in-flight shards still reference this
    // frame's positions/epoch/plans — join them before unwinding.
    for (std::future<void>& f : pending) f.wait();
    throw;
  }
  // Ceil-division chunking can finish early, so count what actually ran.
  result.shards = static_cast<int>(pending.size());
  // Join every shard unconditionally before get() may rethrow a task
  // exception: unwinding with shards in flight would free the buffers
  // they write.
  for (std::future<void>& f : pending) f.wait();
  for (std::future<void>& f : pending) f.get();
  return result;
}

}  // namespace serve
}  // namespace pmw
