#include "serve/epoch_state.h"

#include <utility>

namespace pmw {
namespace serve {

std::shared_ptr<const Epoch> EpochState::Publish(const core::PmwCm& cm) {
  auto epoch = std::make_shared<Epoch>();
  epoch->shard_fingerprint = cm.shard_fingerprint();

  // Reuse the previous epoch's snapshot when the hypothesis (version)
  // and the shard partition are unchanged: the compacted support and its
  // slice views are pure functions of both, so sharing them is
  // observationally identical — and skips the O(|X|) compaction pass on
  // every soft-round republish. Publish is writer-only, so reading
  // current_ here races with nothing but readers (who only copy it).
  const std::shared_ptr<const Epoch> prev = Current();
  if (prev != nullptr && prev->snapshot != nullptr &&
      prev->snapshot->version == cm.hypothesis_version() &&
      prev->shard_fingerprint == epoch->shard_fingerprint) {
    epoch->snapshot = prev->snapshot;
    epoch->shards = prev->shards;
  } else {
    // Snapshot outside the lock: it is the expensive part (one
    // compaction pass) and touches only writer-owned state, not ours.
    epoch->snapshot =
        std::make_shared<const core::HypothesisSnapshot>(
            cm.SnapshotHypothesis());
    // Per-shard slice views: cut AFTER the support vector reaches its
    // final resting buffer (it never moves again — the epoch snapshot is
    // immutable).
    const std::vector<core::HypothesisShard>& layout = cm.shard_layout();
    epoch->shards.reserve(layout.size());
    for (const core::HypothesisShard& shard : layout) {
      Epoch::ShardSlice slice;
      slice.lo = shard.lo;
      slice.hi = shard.hi;
      slice.support =
          data::SliceSupport(epoch->snapshot->support, shard.lo, shard.hi);
      epoch->shards.push_back(slice);
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  epoch->sequence = published_++;
  current_ = epoch;
  return current_;
}

std::shared_ptr<const Epoch> EpochState::Current() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_;
}

long long EpochState::epochs_published() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return published_;
}

}  // namespace serve
}  // namespace pmw
