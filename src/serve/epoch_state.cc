#include "serve/epoch_state.h"

#include <utility>

namespace pmw {
namespace serve {

std::shared_ptr<const Epoch> EpochState::Publish(const core::PmwCm& cm) {
  // Snapshot outside the lock: it is the expensive part (one compaction
  // pass) and touches only writer-owned state, not ours.
  auto epoch = std::make_shared<Epoch>();
  epoch->snapshot = cm.SnapshotHypothesis();
  epoch->shard_fingerprint = cm.shard_fingerprint();
  // Per-shard slice views: cut AFTER the support vector reaches its
  // final resting buffer (it never moves again — the epoch is immutable).
  const std::vector<core::HypothesisShard>& layout = cm.shard_layout();
  epoch->shards.reserve(layout.size());
  for (const core::HypothesisShard& shard : layout) {
    Epoch::ShardSlice slice;
    slice.lo = shard.lo;
    slice.hi = shard.hi;
    slice.support =
        data::SliceSupport(epoch->snapshot.support, shard.lo, shard.hi);
    epoch->shards.push_back(slice);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  epoch->sequence = published_++;
  current_ = epoch;
  return current_;
}

std::shared_ptr<const Epoch> EpochState::Current() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_;
}

long long EpochState::epochs_published() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return published_;
}

}  // namespace serve
}  // namespace pmw
