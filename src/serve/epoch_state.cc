#include "serve/epoch_state.h"

#include <utility>

namespace pmw {
namespace serve {

std::shared_ptr<const Epoch> EpochState::Publish(const core::PmwCm& cm) {
  // Snapshot outside the lock: it is the expensive part (one compaction
  // pass) and touches only writer-owned state, not ours.
  auto epoch = std::make_shared<Epoch>();
  epoch->snapshot = cm.SnapshotHypothesis();
  std::lock_guard<std::mutex> lock(mutex_);
  epoch->sequence = published_++;
  current_ = epoch;
  return current_;
}

std::shared_ptr<const Epoch> EpochState::Current() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_;
}

long long EpochState::epochs_published() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return published_;
}

}  // namespace serve
}  // namespace pmw
