#include "serve/epoch_state.h"

#include <cstdint>
#include <cstring>
#include <utility>

namespace pmw {
namespace serve {
namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

// Word-at-a-time FNV-1a variant: one xor-multiply per 64-bit word keeps
// the fingerprint pass a small fraction of the snapshot compaction it
// rides along with.
inline uint64_t FnvMix(uint64_t hash, uint64_t word) {
  return (hash ^ word) * kFnvPrime;
}

// FNV-1a over the exact bytes Prepare reads from a slice: each entry's
// universe index and the IEEE bit pattern of its mass.
uint64_t SliceContentFingerprint(const data::SupportSlice& slice) {
  uint64_t hash = kFnvOffset;
  for (const auto& [index, mass] : slice) {
    hash = FnvMix(hash, static_cast<uint64_t>(static_cast<uint32_t>(index)));
    uint64_t mass_bits;
    static_assert(sizeof(mass_bits) == sizeof(mass));
    std::memcpy(&mass_bits, &mass, sizeof(mass_bits));
    hash = FnvMix(hash, mass_bits);
  }
  return hash;
}

}  // namespace

std::shared_ptr<const Epoch> EpochState::Publish(const core::PmwCm& cm) {
  auto epoch = std::make_shared<Epoch>();
  epoch->shard_fingerprint = cm.shard_fingerprint();

  // Reuse the previous epoch's snapshot when the hypothesis (version)
  // and the shard partition are unchanged: the compacted support and its
  // slice views are pure functions of both, so sharing them is
  // observationally identical — and skips the O(|X|) compaction pass on
  // every soft-round republish. Publish is writer-only, so reading
  // current_ here races with nothing but readers (who only copy it).
  const std::shared_ptr<const Epoch> prev = Current();
  if (prev != nullptr && prev->snapshot != nullptr &&
      prev->snapshot->version == cm.hypothesis_version() &&
      prev->shard_fingerprint == epoch->shard_fingerprint) {
    epoch->snapshot = prev->snapshot;
    epoch->shards = prev->shards;
    epoch->content_fingerprint = prev->content_fingerprint;
  } else {
    // Snapshot outside the lock: it is the expensive part (one
    // compaction pass) and touches only writer-owned state, not ours.
    epoch->snapshot =
        std::make_shared<const core::HypothesisSnapshot>(
            cm.SnapshotHypothesis());
    // Per-shard slice views: cut AFTER the support vector reaches its
    // final resting buffer (it never moves again — the epoch snapshot is
    // immutable).
    const std::vector<core::HypothesisShard>& layout = cm.shard_layout();
    epoch->shards.reserve(layout.size());
    // One O(K) fingerprint pass per fresh snapshot, folded into the
    // epoch-wide content fingerprint in shard order; republished
    // snapshots copy the fingerprints above instead of rehashing.
    uint64_t combined = kFnvOffset;
    for (const core::HypothesisShard& shard : layout) {
      Epoch::ShardSlice slice;
      slice.lo = shard.lo;
      slice.hi = shard.hi;
      slice.support =
          data::SliceSupport(epoch->snapshot->support, shard.lo, shard.hi);
      slice.content_fingerprint = SliceContentFingerprint(slice.support);
      combined = FnvMix(combined, slice.content_fingerprint);
      epoch->shards.push_back(slice);
    }
    epoch->content_fingerprint = combined;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  epoch->sequence = published_++;
  current_ = epoch;
  return current_;
}

std::shared_ptr<const Epoch> EpochState::Current() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_;
}

long long EpochState::epochs_published() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return published_;
}

}  // namespace serve
}  // namespace pmw
