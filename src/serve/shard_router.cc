#include "serve/shard_router.h"

#include <future>
#include <vector>

#include "common/check.h"
#include "common/timer.h"

namespace pmw {
namespace serve {

void ShardRouter::ResetWindow(int num_shards) {
  PMW_CHECK_GE(num_shards, 0);
  window_us_.assign(static_cast<size_t>(num_shards), 0);
}

void ShardRouter::Run(int num_shards,
                      const std::function<void(int)>& shard_fn) {
  PMW_CHECK_GE(num_shards, 1);
  // When a timing window is open (and sized for this fan-out), each
  // shard closure is bracketed by a wall timer writing its own slot;
  // otherwise the raw closure runs. Timing never reorders or gates the
  // shard work itself.
  const bool timed = window_us_.size() >= static_cast<size_t>(num_shards);
  const auto run_shard = [this, &shard_fn, timed](int s) {
    if (!timed) {
      shard_fn(s);
      return;
    }
    WallTimer timer;
    shard_fn(s);
    window_us_[static_cast<size_t>(s)] +=
        static_cast<uint64_t>(timer.ElapsedSeconds() * 1e6);
  };
  if (pool_ == nullptr || num_shards <= 1) {
    for (int s = 0; s < num_shards; ++s) run_shard(s);
    return;
  }
  ++sections_;
  std::vector<std::future<void>> pending;
  pending.reserve(static_cast<size_t>(num_shards) - 1);
  try {
    // Shards 1..K-1 go to workers; shard 0 runs on the writer, which
    // would otherwise just block on the join.
    for (int s = 1; s < num_shards; ++s) {
      pending.push_back(pool_->Submit([&run_shard, s] { run_shard(s); }));
    }
  } catch (...) {
    // Submit threw (pool shutdown / allocation): in-flight shards still
    // reference the caller's frame — join them before unwinding.
    for (std::future<void>& f : pending) f.wait();
    throw;
  }
  shard_tasks_ += static_cast<long long>(pending.size());
  try {
    run_shard(0);
  } catch (...) {
    // Shard 0 threw on the writer: the worker shards still reference the
    // caller's frame — join them before unwinding.
    for (std::future<void>& f : pending) f.wait();
    throw;
  }
  // Join every shard before get() may rethrow: unwinding with shards in
  // flight would free the state they write.
  for (std::future<void>& f : pending) f.wait();
  for (std::future<void>& f : pending) f.get();
}

}  // namespace serve
}  // namespace pmw
