#include "serve/shard_router.h"

#include <future>
#include <vector>

#include "common/check.h"

namespace pmw {
namespace serve {

void ShardRouter::Run(int num_shards,
                      const std::function<void(int)>& shard_fn) {
  PMW_CHECK_GE(num_shards, 1);
  if (pool_ == nullptr || num_shards <= 1) {
    for (int s = 0; s < num_shards; ++s) shard_fn(s);
    return;
  }
  ++sections_;
  std::vector<std::future<void>> pending;
  pending.reserve(static_cast<size_t>(num_shards) - 1);
  try {
    // Shards 1..K-1 go to workers; shard 0 runs on the writer, which
    // would otherwise just block on the join.
    for (int s = 1; s < num_shards; ++s) {
      pending.push_back(pool_->Submit([&shard_fn, s] { shard_fn(s); }));
    }
  } catch (...) {
    // Submit threw (pool shutdown / allocation): in-flight shards still
    // reference the caller's frame — join them before unwinding.
    for (std::future<void>& f : pending) f.wait();
    throw;
  }
  shard_tasks_ += static_cast<long long>(pending.size());
  try {
    shard_fn(0);
  } catch (...) {
    // Shard 0 threw on the writer: the worker shards still reference the
    // caller's frame — join them before unwinding.
    for (std::future<void>& f : pending) f.wait();
    throw;
  }
  // Join every shard before get() may rethrow: unwinding with shards in
  // flight would free the state they write.
  for (std::future<void>& f : pending) f.wait();
  for (std::future<void>& f : pending) f.get();
}

}  // namespace serve
}  // namespace pmw
