#include "serve/pmw_service.h"

#include <utility>

#include "common/check.h"
#include "common/timer.h"

namespace pmw {
namespace serve {

double ServeStats::OverallQueriesPerSec() const {
  double total_ms = batch_latency_ms.sum();
  if (total_ms <= 0.0) return 0.0;
  return static_cast<double>(queries) / (total_ms / 1e3);
}

std::string ServeStats::Report() const {
  std::string report;
  report += "serve: " + std::to_string(queries) + " queries in " +
            std::to_string(batches) + " batches\n";
  report += "  bottom=" + std::to_string(bottom_answers) +
            " updates=" + std::to_string(updates) +
            " cache_hits=" + std::to_string(prepare_cache_hits) +
            " errors=" + std::to_string(errors) + "\n";
  report += "  batch latency ms: " + batch_latency_ms.Summary() + "\n";
  report += "  batch queries/sec: " + batch_queries_per_sec.Summary() + "\n";
  report += "  overall queries/sec: " + std::to_string(OverallQueriesPerSec());
  return report;
}

PmwService::PmwService(const data::Dataset* dataset, erm::Oracle* oracle,
                       const core::PmwOptions& options, uint64_t seed)
    : cm_(dataset, oracle, options, seed) {}

void PmwService::RefreshSnapshot() {
  if (snapshot_valid_ && snapshot_.version == cm_.hypothesis_version()) {
    return;
  }
  snapshot_ = cm_.SnapshotHypothesis();
  snapshot_valid_ = true;
  // Plans computed against an older hypothesis are useless (AnswerPrepared
  // would recompute them anyway); drop them so lookups stay hits-only.
  prepared_.clear();
}

std::vector<Result<convex::Vec>> PmwService::AnswerBatch(
    std::span<const convex::CmQuery> queries) {
  WallTimer timer;
  // The prepared cache is per-batch: reuse within a batch is what the
  // single-writer loop amortizes; across batches the working set is
  // unbounded, so we start fresh.
  prepared_.clear();
  snapshot_valid_ = false;

  std::vector<Result<convex::Vec>> results;
  results.reserve(queries.size());
  for (const convex::CmQuery& query : queries) {
    PMW_CHECK(query.loss != nullptr);
    PMW_CHECK(query.domain != nullptr);

    if (cm_.WillReject()) {
      // The mechanism will refuse (halted / k exhausted) before consulting
      // any plan; don't burn solver time preparing one.
      Result<core::PmwAnswer> rejected =
          cm_.AnswerPrepared(query, core::PreparedQuery{});
      PMW_CHECK(!rejected.ok());
      ++stats_.errors;
      results.push_back(rejected.status());
      continue;
    }
    RefreshSnapshot();

    QueryKey key{query.loss, query.domain};
    auto it = prepared_.find(key);
    if (it == prepared_.end()) {
      it = prepared_.emplace(key, cm_.Prepare(query, snapshot_)).first;
    } else {
      ++stats_.prepare_cache_hits;
    }

    Result<core::PmwAnswer> answer = cm_.AnswerPrepared(query, it->second);
    if (answer.ok()) {
      if (answer.value().was_update) {
        ++stats_.updates;
      } else {
        ++stats_.bottom_answers;
      }
      results.push_back(std::move(answer.value().theta));
    } else {
      ++stats_.errors;
      results.push_back(answer.status());
    }
  }

  double elapsed_ms = timer.ElapsedMillis();
  ++stats_.batches;
  stats_.queries += static_cast<long long>(queries.size());
  stats_.batch_latency_ms.Add(elapsed_ms);
  if (elapsed_ms > 0.0 && !queries.empty()) {
    stats_.batch_queries_per_sec.Add(static_cast<double>(queries.size()) /
                                     (elapsed_ms / 1e3));
  }
  return results;
}

Result<convex::Vec> PmwService::Answer(const convex::CmQuery& query) {
  std::vector<Result<convex::Vec>> results = AnswerBatch({&query, 1});
  return std::move(results.front());
}

}  // namespace serve
}  // namespace pmw
