#include "serve/pmw_service.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/table_printer.h"
#include "common/timer.h"

namespace pmw {
namespace serve {
namespace {

/// Inverse of obs::Registry::LabeledName's value escaping ('\\' and
/// '\"'); rebuilds analyst ids when parsing labeled counter names.
std::string UnescapeLabelValue(const std::string& escaped) {
  std::string value;
  value.reserve(escaped.size());
  for (size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] == '\\' && i + 1 < escaped.size()) ++i;
    value.push_back(escaped[i]);
  }
  return value;
}

/// Extracts the label value from 'name' given the prefix up to and
/// including 'analyst="' — the name ends with '"}'.
bool ParseLabeledAnalyst(const std::string& name, const std::string& prefix,
                         std::string* analyst) {
  if (name.size() < prefix.size() + 2) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(name.size() - 2, 2, "\"}") != 0) return false;
  *analyst = UnescapeLabelValue(
      name.substr(prefix.size(), name.size() - prefix.size() - 2));
  return true;
}

}  // namespace

double ServeStats::OverallQueriesPerSec() const {
  double total_ms = batch_latency_ms.sum();
  if (total_ms <= 0.0) return 0.0;
  return static_cast<double>(queries) / (total_ms / 1e3);
}

double ServeStats::CrossBatchHitRate() const {
  if (cross_batch_cache_lookups <= 0) return 0.0;
  return static_cast<double>(cross_batch_cache_hits) /
         static_cast<double>(cross_batch_cache_lookups);
}

std::vector<std::string> ServeStats::TableHeader() {
  return {"queries", "batches", "threads", "shards",  "bottom",
          "updates", "errors",  "epochs",  "dedup",   "xb_hits",
          "xb_rate", "mw_ms",   "q/s"};
}

std::vector<std::string> ServeStats::TableRow() const {
  return {TablePrinter::FmtInt(queries),
          TablePrinter::FmtInt(batches),
          TablePrinter::FmtInt(threads),
          TablePrinter::FmtInt(shards),
          TablePrinter::FmtInt(bottom_answers),
          TablePrinter::FmtInt(updates),
          TablePrinter::FmtInt(errors),
          TablePrinter::FmtInt(epochs),
          TablePrinter::FmtInt(prepare_cache_hits),
          TablePrinter::FmtInt(cross_batch_cache_hits),
          TablePrinter::Fmt(CrossBatchHitRate(), 3),
          TablePrinter::Fmt(mw_update_ms, 2),
          TablePrinter::Fmt(OverallQueriesPerSec(), 1)};
}

std::string ServeStats::ToString() const {
  TablePrinter table(TableHeader());
  table.AddRow(TableRow());
  return table.ToString();
}

std::string ServeStats::Report() const {
  std::string report = ToString();
  report += "reprepared=" + std::to_string(reprepared) +
            " cross_batch_lookups=" +
            std::to_string(cross_batch_cache_lookups) + "\n";
  report += "plan_cache: evicted=" + std::to_string(plan_cache_evicted) +
            " admission_rejected=" +
            std::to_string(plan_cache_admission_rejected) +
            " stale_dropped=" + std::to_string(plan_cache_stale_dropped) +
            "\n";
  report += "batch latency ms: " + batch_latency_ms.Summary() + "\n";
  report += "batch queries/sec: " + batch_queries_per_sec.Summary();
  if (!per_analyst.empty()) {
    TablePrinter analysts({"analyst", "queries", "updates", "errors"});
    for (const auto& [analyst, counters] : per_analyst) {
      analysts.AddRow({analyst, TablePrinter::FmtInt(counters.queries),
                       TablePrinter::FmtInt(counters.updates),
                       TablePrinter::FmtInt(counters.errors)});
    }
    report += "\n" + analysts.ToString();
  }
  return report;
}

PmwService::PmwService(const data::Dataset* dataset, erm::Oracle* oracle,
                       const core::PmwOptions& options, uint64_t seed,
                       const ServeOptions& serve_options)
    : cm_(dataset, oracle, options, seed),
      pool_(serve_options.num_threads > 1
                ? std::make_unique<ThreadPool>(serve_options.num_threads)
                : nullptr),
      executor_(pool_.get(), &cm_),
      router_(pool_.get()),
      record_spans_(serve_options.record_spans) {
  stats_.threads = pool_ != nullptr ? pool_->size() : 1;
  // Partition the hypothesis and route its per-shard MW-update work
  // through the pool. A single shard keeps the inline (sequential) path.
  stats_.shards = cm_.ConfigureSharding(
      serve_options.num_shards,
      serve_options.num_shards > 1 ? router_.AsRunner()
                                   : core::ShardRunner{},
      serve_options.hypothesis_backend, serve_options.sparse);
  if (serve_options.hypothesis_delegate != nullptr) {
    // Multi-host topology: per-shard MW phases run in shard-group worker
    // processes behind the delegate (cluster::Combiner). Install after
    // sharding so the delegate sees the final partition.
    cm_.SetHypothesisDelegate(serve_options.hypothesis_delegate);
  }

  // Bind the metrics registry (injected by the endpoint, or a private
  // one) and resolve every instrument handle once; all hot-path
  // recording below is handle-based and lock-free.
  if (serve_options.registry != nullptr) {
    registry_ = serve_options.registry;
  } else {
    owned_registry_ = std::make_unique<obs::Registry>();
    registry_ = owned_registry_.get();
  }
  m_.queries = registry_->GetCounter("pmw_serve_queries_total");
  m_.batches = registry_->GetCounter("pmw_serve_batches_total");
  m_.bottom_answers = registry_->GetCounter("pmw_serve_bottom_total");
  m_.updates = registry_->GetCounter("pmw_serve_updates_total");
  m_.prepare_cache_hits =
      registry_->GetCounter("pmw_serve_prepare_cache_hits_total");
  m_.errors = registry_->GetCounter("pmw_serve_errors_total");
  m_.epochs = registry_->GetCounter("pmw_serve_epochs_total");
  m_.reprepared = registry_->GetCounter("pmw_serve_reprepared_total");
  m_.cross_batch_cache_lookups =
      registry_->GetCounter("pmw_serve_cross_batch_lookups_total");
  m_.cross_batch_cache_hits =
      registry_->GetCounter("pmw_serve_cross_batch_hits_total");
  m_.threads = registry_->GetGauge("pmw_serve_threads");
  m_.shards = registry_->GetGauge("pmw_serve_shards");
  m_.mw_update_ms = registry_->GetGauge("pmw_serve_mw_update_ms");
  m_.mw_updates = registry_->GetGauge("pmw_serve_mw_updates");
  // 10us .. ~84s in x2 steps: covers sub-ms soft batches through the
  // huge_domain cold tail.
  m_.batch_latency_ms = registry_->GetHistogram(
      "pmw_serve_batch_latency_ms", obs::Histogram::LogBuckets(0.01, 2.0, 24));
  m_.batch_queries_per_sec = registry_->GetHistogram(
      "pmw_serve_batch_queries_per_sec",
      obs::Histogram::LogBuckets(1.0, 2.0, 24));
  // Topology gauges are live immediately so a scrape before the first
  // batch already reports it.
  m_.threads->Set(static_cast<double>(stats_.threads));
  m_.shards->Set(static_cast<double>(stats_.shards));
}

PmwService::AnalystHandles& PmwService::HandlesFor(
    const std::string& analyst) {
  auto it = analyst_handles_.find(analyst);
  if (it == analyst_handles_.end()) {
    AnalystHandles handles;
    handles.queries = registry_->GetCounter(obs::Registry::LabeledName(
        "pmw_serve_analyst_queries_total", "analyst", analyst));
    handles.updates = registry_->GetCounter(obs::Registry::LabeledName(
        "pmw_serve_analyst_updates_total", "analyst", analyst));
    handles.errors = registry_->GetCounter(obs::Registry::LabeledName(
        "pmw_serve_analyst_errors_total", "analyst", analyst));
    it = analyst_handles_.emplace(analyst, handles).first;
  }
  return it->second;
}

ServeStats PmwService::stats_snapshot() const {
  // Rebuilt wholly from registry reads — no lock shared with the writer,
  // no per-batch copy. Each value is individually torn-free; the set may
  // straddle a batch (the standard metrics-scrape contract).
  const obs::Registry& reg = *registry_;
  ServeStats s;
  s.queries = reg.CounterValue("pmw_serve_queries_total");
  s.batches = reg.CounterValue("pmw_serve_batches_total");
  s.bottom_answers = reg.CounterValue("pmw_serve_bottom_total");
  s.updates = reg.CounterValue("pmw_serve_updates_total");
  s.prepare_cache_hits =
      reg.CounterValue("pmw_serve_prepare_cache_hits_total");
  s.errors = reg.CounterValue("pmw_serve_errors_total");
  s.epochs = reg.CounterValue("pmw_serve_epochs_total");
  s.reprepared = reg.CounterValue("pmw_serve_reprepared_total");
  s.cross_batch_cache_lookups =
      reg.CounterValue("pmw_serve_cross_batch_lookups_total");
  s.cross_batch_cache_hits =
      reg.CounterValue("pmw_serve_cross_batch_hits_total");
  // The frontend dispatcher publishes the plan cache's replacement
  // counters into the same registry; zero when no dispatcher/cache runs.
  s.plan_cache_evicted =
      reg.CounterValue("pmw_frontend_plan_evicted_total");
  s.plan_cache_admission_rejected =
      reg.CounterValue("pmw_frontend_plan_admission_rejected_total");
  s.plan_cache_stale_dropped =
      reg.CounterValue("pmw_frontend_plan_stale_dropped_total");
  s.threads = static_cast<int>(reg.GaugeValue("pmw_serve_threads"));
  s.shards = static_cast<int>(reg.GaugeValue("pmw_serve_shards"));
  s.mw_update_ms = reg.GaugeValue("pmw_serve_mw_update_ms");
  s.mw_updates =
      static_cast<long long>(reg.GaugeValue("pmw_serve_mw_updates"));
  const obs::Histogram::Snapshot latency =
      reg.HistogramSnap("pmw_serve_batch_latency_ms");
  s.batch_latency_ms = RunningStats::FromMoments(
      latency.count, latency.sum, latency.sumsq, latency.min, latency.max);
  const obs::Histogram::Snapshot qps =
      reg.HistogramSnap("pmw_serve_batch_queries_per_sec");
  s.batch_queries_per_sec =
      RunningStats::FromMoments(qps.count, qps.sum, qps.sumsq, qps.min,
                                qps.max);
  // Labeled analyst counters fold back into the per_analyst map; name
  // order == deterministic map order.
  const std::string kQ = "pmw_serve_analyst_queries_total{analyst=\"";
  const std::string kU = "pmw_serve_analyst_updates_total{analyst=\"";
  const std::string kE = "pmw_serve_analyst_errors_total{analyst=\"";
  std::string analyst;
  reg.ForEachCounter(kQ, [&](const std::string& name, long long value) {
    if (ParseLabeledAnalyst(name, kQ, &analyst)) {
      s.per_analyst[analyst].queries = value;
    }
  });
  reg.ForEachCounter(kU, [&](const std::string& name, long long value) {
    if (ParseLabeledAnalyst(name, kU, &analyst)) {
      s.per_analyst[analyst].updates = value;
    }
  });
  reg.ForEachCounter(kE, [&](const std::string& name, long long value) {
    if (ParseLabeledAnalyst(name, kE, &analyst)) {
      s.per_analyst[analyst].errors = value;
    }
  });
  return s;
}

std::shared_ptr<const Epoch> PmwService::PublishAndPrepare(
    std::span<const convex::CmQuery> queries, size_t begin, size_t end,
    ShardExecutor::PrepareResult* prepared) {
  std::shared_ptr<const Epoch> epoch = epochs_.Publish(cm_);
  const long long published = epochs_.epochs_published();
  m_.epochs->Add(published - stats_.epochs);
  stats_.epochs = published;
  // Tell the cache where serving now is before any probe; entries whose
  // content fingerprints no longer match are permanently stale and the
  // cache drops them (lazily or here).
  if (plan_cache_ != nullptr) {
    plan_cache_->OnEpochPublish({epoch->snapshot->version,
                                 epoch->shard_fingerprint,
                                 epoch->content_fingerprint});
  }
  *prepared = executor_.PrepareRange(queries, begin, end, *epoch,
                                     plan_cache_);
  stats_.prepare_cache_hits += prepared->cache_hits;
  stats_.cross_batch_cache_lookups += prepared->cross_batch_lookups;
  stats_.cross_batch_cache_hits += prepared->cross_batch_hits;
  m_.prepare_cache_hits->Add(prepared->cache_hits);
  m_.cross_batch_cache_lookups->Add(prepared->cross_batch_lookups);
  m_.cross_batch_cache_hits->Add(prepared->cross_batch_hits);
  return epoch;
}

std::vector<Result<convex::Vec>> PmwService::AnswerBatch(
    std::span<const convex::CmQuery> queries) {
  return AnswerBatch(queries, {});
}

std::vector<Result<convex::Vec>> PmwService::AnswerBatch(
    std::span<const convex::CmQuery> queries,
    std::span<const std::string> analyst_ids) {
  return AnswerBatch(queries, analyst_ids, nullptr);
}

std::vector<Result<convex::Vec>> PmwService::AnswerBatch(
    std::span<const convex::CmQuery> queries,
    std::span<const std::string> analyst_ids,
    std::vector<QueryOutcome>* outcomes) {
  WallTimer timer;
  const size_t n = queries.size();
  PMW_CHECK_MSG(analyst_ids.empty() || analyst_ids.size() == n,
                "analyst_ids must be empty or aligned with queries");

  // Read phase: prepare every query in parallel against one epoch
  // snapshot. Skipped when the mechanism would reject the whole batch
  // anyway (halted / k exhausted) — rejections never consult a plan, so
  // there is no point burning solver time on one. Plans stay
  // deduplicated: query j's plan is prepared.plans[plan_of[j -
  // prepared_begin]], never deep-copied per position.
  // Ranges are capped at the remaining k-query budget: every committed
  // query consumes one budget slot, so positions past the cap are
  // guaranteed rejections and their plans would never be consulted.
  ShardExecutor::PrepareResult prepared;
  size_t prepared_begin = 0;
  std::shared_ptr<const Epoch> epoch;
  uint64_t batch_prepare_us = 0;
  if (n > 0 && !cm_.WillReject()) {
    size_t prep_end =
        std::min(n, static_cast<size_t>(cm_.queries_remaining()));
    WallTimer prepare_timer;
    epoch = PublishAndPrepare(queries, 0, prep_end, &prepared);
    batch_prepare_us =
        static_cast<uint64_t>(prepare_timer.ElapsedSeconds() * 1e6);
  }

  // Commit phase: the single writer replays queries in arrival order.
  // All mechanism state — sparse-vector draws, oracle randomness, MW
  // updates, ledger appends — mutates only here, in canonical order,
  // which is what keeps the transcript bit-identical to sequential PmwCm.
  std::vector<Result<convex::Vec>> results;
  results.reserve(n);
  if (outcomes != nullptr) {
    outcomes->clear();
    outcomes->resize(n);
  }
  for (size_t j = 0; j < n; ++j) {
    const convex::CmQuery& query = queries[j];
    PMW_CHECK(query.loss != nullptr);
    PMW_CHECK(query.domain != nullptr);
    ServeStats::AnalystCounters* analyst =
        analyst_ids.empty() ? nullptr : &stats_.per_analyst[analyst_ids[j]];
    AnalystHandles* analyst_metrics =
        analyst_ids.empty() ? nullptr : &HandlesFor(analyst_ids[j]);
    if (analyst != nullptr) {
      ++analyst->queries;
      analyst_metrics->queries->Add(1);
    }
    QueryOutcome* outcome = outcomes != nullptr ? &(*outcomes)[j] : nullptr;
    if (outcome != nullptr) outcome->epoch = cm_.hypothesis_version();
    const bool spans = record_spans_ && outcome != nullptr;

    if (cm_.WillReject()) {
      Result<core::PmwAnswer> rejected =
          cm_.AnswerPrepared(query, core::PreparedQuery{});
      PMW_CHECK(!rejected.ok());
      ++stats_.errors;
      m_.errors->Add(1);
      if (analyst != nullptr) {
        ++analyst->errors;
        analyst_metrics->errors->Add(1);
      }
      results.push_back(rejected.status());
      continue;
    }

    // A null epoch means the read phase was skipped; the stale default
    // plan is never trusted by AnswerPrepared.
    static const core::PreparedQuery kStalePlan;
    const size_t plan_slot =
        epoch != nullptr ? prepared.plan_of[j - prepared_begin] : 0;
    const core::PreparedQuery& plan =
        epoch != nullptr ? prepared.plans[plan_slot] : kStalePlan;
    if (outcome != nullptr && epoch != nullptr) {
      outcome->cache_hit = prepared.plan_from_cache[plan_slot] != 0;
    }
    if (spans && stats_.shards > 1) router_.ResetWindow(stats_.shards);
    WallTimer commit_timer;
    Result<core::PmwAnswer> answer = cm_.AnswerPrepared(
        query, plan, epoch != nullptr ? epoch->snapshot.get() : nullptr);
    if (spans) {
      outcome->commit_us =
          static_cast<uint64_t>(commit_timer.ElapsedSeconds() * 1e6);
      outcome->solve_us = cm_.last_answer_timing().solve_us;
      outcome->mw_us = cm_.last_answer_timing().mw_us;
    }
    if (outcome != nullptr) outcome->epoch = cm_.hypothesis_version();
    if (!answer.ok()) {
      ++stats_.errors;
      m_.errors->Add(1);
      if (analyst != nullptr) {
        ++analyst->errors;
        analyst_metrics->errors->Add(1);
      }
      results.push_back(answer.status());
      continue;
    }
    if (answer.value().was_update) {
      ++stats_.updates;
      m_.updates->Add(1);
      if (analyst != nullptr) {
        ++analyst->updates;
        analyst_metrics->updates->Add(1);
      }
      if (outcome != nullptr) outcome->hard_round = true;
      if (spans && stats_.shards > 1) {
        const std::vector<uint64_t>& window = router_.WindowShardUs();
        outcome->shard_us.reserve(window.size());
        for (uint64_t us : window) {
          outcome->shard_us.push_back(static_cast<uint32_t>(
              std::min<uint64_t>(us, UINT32_MAX)));
        }
      }
      // Hard round: the hypothesis changed, so every remaining plan is
      // stale. Advance the epoch and re-prepare the suffix in parallel
      // (bounded by T such rounds over the mechanism's lifetime).
      if (j + 1 < n && !cm_.WillReject()) {
        size_t prep_end = std::min(
            n, j + 1 + static_cast<size_t>(cm_.queries_remaining()));
        WallTimer prepare_timer;
        epoch = PublishAndPrepare(queries, j + 1, prep_end, &prepared);
        batch_prepare_us +=
            static_cast<uint64_t>(prepare_timer.ElapsedSeconds() * 1e6);
        prepared_begin = j + 1;
        stats_.reprepared += static_cast<long long>(prepared.plans.size());
        m_.reprepared->Add(static_cast<long long>(prepared.plans.size()));
      }
    } else {
      ++stats_.bottom_answers;
      m_.bottom_answers->Add(1);
    }
    results.push_back(std::move(answer.value().theta));
  }

  // Prepare ran batch-wide (one fan-out per epoch), so its cost is a
  // batch-level span — the same shape as the dispatcher's serve_us.
  if (outcomes != nullptr && record_spans_) {
    for (QueryOutcome& outcome : *outcomes) {
      outcome.prepare_us = batch_prepare_us;
    }
  }

  double elapsed_ms = timer.ElapsedMillis();
  ++stats_.batches;
  stats_.queries += static_cast<long long>(n);
  stats_.batch_latency_ms.Add(elapsed_ms);
  m_.batches->Add(1);
  m_.queries->Add(static_cast<long long>(n));
  m_.batch_latency_ms->Observe(elapsed_ms);
  if (elapsed_ms > 0.0 && n > 0) {
    const double qps = static_cast<double>(n) / (elapsed_ms / 1e3);
    stats_.batch_queries_per_sec.Add(qps);
    m_.batch_queries_per_sec->Observe(qps);
  }
  stats_.mw_update_ms = cm_.mw_timing().total_ms;
  stats_.mw_updates = cm_.mw_timing().updates;
  m_.mw_update_ms->Set(stats_.mw_update_ms);
  m_.mw_updates->Set(static_cast<double>(stats_.mw_updates));
  if (plan_cache_ != nullptr) {
    // Replacement/staleness totals are owned by the cache; mirror them
    // into the writer's stats once per batch (cheap: one virtual call).
    const PlanCacheCounters counters = plan_cache_->Counters();
    stats_.plan_cache_evicted = counters.evicted;
    stats_.plan_cache_admission_rejected = counters.admission_rejected;
    stats_.plan_cache_stale_dropped = counters.stale_dropped;
  }
  return results;
}

Result<convex::Vec> PmwService::Answer(const convex::CmQuery& query) {
  std::vector<Result<convex::Vec>> results = AnswerBatch({&query, 1});
  return std::move(results.front());
}

}  // namespace serve
}  // namespace pmw
