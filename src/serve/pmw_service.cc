#include "serve/pmw_service.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/table_printer.h"
#include "common/timer.h"

namespace pmw {
namespace serve {

double ServeStats::OverallQueriesPerSec() const {
  double total_ms = batch_latency_ms.sum();
  if (total_ms <= 0.0) return 0.0;
  return static_cast<double>(queries) / (total_ms / 1e3);
}

double ServeStats::CrossBatchHitRate() const {
  if (cross_batch_cache_lookups <= 0) return 0.0;
  return static_cast<double>(cross_batch_cache_hits) /
         static_cast<double>(cross_batch_cache_lookups);
}

std::vector<std::string> ServeStats::TableHeader() {
  return {"queries", "batches", "threads", "shards",  "bottom",
          "updates", "errors",  "epochs",  "dedup",   "xb_hits",
          "xb_rate", "mw_ms",   "q/s"};
}

std::vector<std::string> ServeStats::TableRow() const {
  return {TablePrinter::FmtInt(queries),
          TablePrinter::FmtInt(batches),
          TablePrinter::FmtInt(threads),
          TablePrinter::FmtInt(shards),
          TablePrinter::FmtInt(bottom_answers),
          TablePrinter::FmtInt(updates),
          TablePrinter::FmtInt(errors),
          TablePrinter::FmtInt(epochs),
          TablePrinter::FmtInt(prepare_cache_hits),
          TablePrinter::FmtInt(cross_batch_cache_hits),
          TablePrinter::Fmt(CrossBatchHitRate(), 3),
          TablePrinter::Fmt(mw_update_ms, 2),
          TablePrinter::Fmt(OverallQueriesPerSec(), 1)};
}

std::string ServeStats::ToString() const {
  TablePrinter table(TableHeader());
  table.AddRow(TableRow());
  return table.ToString();
}

std::string ServeStats::Report() const {
  std::string report = ToString();
  report += "reprepared=" + std::to_string(reprepared) +
            " cross_batch_lookups=" +
            std::to_string(cross_batch_cache_lookups) + "\n";
  report += "batch latency ms: " + batch_latency_ms.Summary() + "\n";
  report += "batch queries/sec: " + batch_queries_per_sec.Summary();
  if (!per_analyst.empty()) {
    TablePrinter analysts({"analyst", "queries", "updates", "errors"});
    for (const auto& [analyst, counters] : per_analyst) {
      analysts.AddRow({analyst, TablePrinter::FmtInt(counters.queries),
                       TablePrinter::FmtInt(counters.updates),
                       TablePrinter::FmtInt(counters.errors)});
    }
    report += "\n" + analysts.ToString();
  }
  return report;
}

PmwService::PmwService(const data::Dataset* dataset, erm::Oracle* oracle,
                       const core::PmwOptions& options, uint64_t seed,
                       const ServeOptions& serve_options)
    : cm_(dataset, oracle, options, seed),
      pool_(serve_options.num_threads > 1
                ? std::make_unique<ThreadPool>(serve_options.num_threads)
                : nullptr),
      executor_(pool_.get(), &cm_),
      router_(pool_.get()) {
  stats_.threads = pool_ != nullptr ? pool_->size() : 1;
  // Partition the hypothesis and route its per-shard MW-update work
  // through the pool. A single shard keeps the inline (sequential) path.
  stats_.shards = cm_.ConfigureSharding(
      serve_options.num_shards,
      serve_options.num_shards > 1 ? router_.AsRunner()
                                   : core::ShardRunner{},
      serve_options.hypothesis_backend, serve_options.sparse);
  // Seed the scraper-facing snapshot so a stats poll before the first
  // batch already reports the real topology.
  stats_snapshot_ = stats_;
}

ServeStats PmwService::stats_snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return stats_snapshot_;
}

std::shared_ptr<const Epoch> PmwService::PublishAndPrepare(
    std::span<const convex::CmQuery> queries, size_t begin, size_t end,
    ShardExecutor::PrepareResult* prepared) {
  std::shared_ptr<const Epoch> epoch = epochs_.Publish(cm_);
  stats_.epochs = epochs_.epochs_published();
  // Invalidate before any probe: entries from older hypothesis versions
  // are permanently stale once this epoch exists.
  if (plan_cache_ != nullptr) {
    plan_cache_->OnEpochPublish(epoch->snapshot->version,
                                epoch->shard_fingerprint);
  }
  *prepared = executor_.PrepareRange(queries, begin, end, *epoch,
                                     plan_cache_);
  stats_.prepare_cache_hits += prepared->cache_hits;
  stats_.cross_batch_cache_lookups += prepared->cross_batch_lookups;
  stats_.cross_batch_cache_hits += prepared->cross_batch_hits;
  return epoch;
}

std::vector<Result<convex::Vec>> PmwService::AnswerBatch(
    std::span<const convex::CmQuery> queries) {
  return AnswerBatch(queries, {});
}

std::vector<Result<convex::Vec>> PmwService::AnswerBatch(
    std::span<const convex::CmQuery> queries,
    std::span<const std::string> analyst_ids) {
  return AnswerBatch(queries, analyst_ids, nullptr);
}

std::vector<Result<convex::Vec>> PmwService::AnswerBatch(
    std::span<const convex::CmQuery> queries,
    std::span<const std::string> analyst_ids,
    std::vector<QueryOutcome>* outcomes) {
  WallTimer timer;
  const size_t n = queries.size();
  PMW_CHECK_MSG(analyst_ids.empty() || analyst_ids.size() == n,
                "analyst_ids must be empty or aligned with queries");

  // Read phase: prepare every query in parallel against one epoch
  // snapshot. Skipped when the mechanism would reject the whole batch
  // anyway (halted / k exhausted) — rejections never consult a plan, so
  // there is no point burning solver time on one. Plans stay
  // deduplicated: query j's plan is prepared.plans[plan_of[j -
  // prepared_begin]], never deep-copied per position.
  // Ranges are capped at the remaining k-query budget: every committed
  // query consumes one budget slot, so positions past the cap are
  // guaranteed rejections and their plans would never be consulted.
  ShardExecutor::PrepareResult prepared;
  size_t prepared_begin = 0;
  std::shared_ptr<const Epoch> epoch;
  if (n > 0 && !cm_.WillReject()) {
    size_t prep_end =
        std::min(n, static_cast<size_t>(cm_.queries_remaining()));
    epoch = PublishAndPrepare(queries, 0, prep_end, &prepared);
  }

  // Commit phase: the single writer replays queries in arrival order.
  // All mechanism state — sparse-vector draws, oracle randomness, MW
  // updates, ledger appends — mutates only here, in canonical order,
  // which is what keeps the transcript bit-identical to sequential PmwCm.
  std::vector<Result<convex::Vec>> results;
  results.reserve(n);
  if (outcomes != nullptr) {
    outcomes->clear();
    outcomes->resize(n);
  }
  for (size_t j = 0; j < n; ++j) {
    const convex::CmQuery& query = queries[j];
    PMW_CHECK(query.loss != nullptr);
    PMW_CHECK(query.domain != nullptr);
    ServeStats::AnalystCounters* analyst =
        analyst_ids.empty() ? nullptr : &stats_.per_analyst[analyst_ids[j]];
    if (analyst != nullptr) ++analyst->queries;
    QueryOutcome* outcome = outcomes != nullptr ? &(*outcomes)[j] : nullptr;
    if (outcome != nullptr) outcome->epoch = cm_.hypothesis_version();

    if (cm_.WillReject()) {
      Result<core::PmwAnswer> rejected =
          cm_.AnswerPrepared(query, core::PreparedQuery{});
      PMW_CHECK(!rejected.ok());
      ++stats_.errors;
      if (analyst != nullptr) ++analyst->errors;
      results.push_back(rejected.status());
      continue;
    }

    // A null epoch means the read phase was skipped; the stale default
    // plan is never trusted by AnswerPrepared.
    static const core::PreparedQuery kStalePlan;
    const size_t plan_slot =
        epoch != nullptr ? prepared.plan_of[j - prepared_begin] : 0;
    const core::PreparedQuery& plan =
        epoch != nullptr ? prepared.plans[plan_slot] : kStalePlan;
    if (outcome != nullptr && epoch != nullptr) {
      outcome->cache_hit = prepared.plan_from_cache[plan_slot] != 0;
    }
    Result<core::PmwAnswer> answer = cm_.AnswerPrepared(
        query, plan, epoch != nullptr ? epoch->snapshot.get() : nullptr);
    if (outcome != nullptr) outcome->epoch = cm_.hypothesis_version();
    if (!answer.ok()) {
      ++stats_.errors;
      if (analyst != nullptr) ++analyst->errors;
      results.push_back(answer.status());
      continue;
    }
    if (answer.value().was_update) {
      ++stats_.updates;
      if (analyst != nullptr) ++analyst->updates;
      if (outcome != nullptr) outcome->hard_round = true;
      // Hard round: the hypothesis changed, so every remaining plan is
      // stale. Advance the epoch and re-prepare the suffix in parallel
      // (bounded by T such rounds over the mechanism's lifetime).
      if (j + 1 < n && !cm_.WillReject()) {
        size_t prep_end = std::min(
            n, j + 1 + static_cast<size_t>(cm_.queries_remaining()));
        epoch = PublishAndPrepare(queries, j + 1, prep_end, &prepared);
        prepared_begin = j + 1;
        stats_.reprepared += static_cast<long long>(prepared.plans.size());
      }
    } else {
      ++stats_.bottom_answers;
    }
    results.push_back(std::move(answer.value().theta));
  }

  double elapsed_ms = timer.ElapsedMillis();
  ++stats_.batches;
  stats_.queries += static_cast<long long>(n);
  stats_.batch_latency_ms.Add(elapsed_ms);
  if (elapsed_ms > 0.0 && n > 0) {
    stats_.batch_queries_per_sec.Add(static_cast<double>(n) /
                                     (elapsed_ms / 1e3));
  }
  stats_.mw_update_ms = cm_.mw_timing().total_ms;
  stats_.mw_updates = cm_.mw_timing().updates;
  {
    // Publish the batch's counters for scraper threads (the stats RPC);
    // the live stats_ stays writer-owned.
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    stats_snapshot_ = stats_;
  }
  return results;
}

Result<convex::Vec> PmwService::Answer(const convex::CmQuery& query) {
  std::vector<Result<convex::Vec>> results = AnswerBatch({&query, 1});
  return std::move(results.front());
}

}  // namespace serve
}  // namespace pmw
