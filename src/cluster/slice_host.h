// cluster::SliceHost — the worker-side half of the distributed MW
// update: a contiguous slice of the dense hypothesis plus the three
// per-shard phases of ShardedHypothesis::DenseMultiplicativeUpdate,
// executed over the owned shard group only.
//
// Bit-identity is the entire design. The host derives its shard ranges
// from core::PartitionDomain — the SAME function the front door's
// ShardedHypothesis uses — so shard boundaries agree across processes by
// construction, and each phase performs exactly the in-process
// arithmetic (SafeLog + eta * payoff with a left-to-right local max;
// exp(x - global_max) and PairwiseSum over the shard range; divide by
// total). PairwiseSum's reduction tree depends only on range LENGTH, so
// summing the owned slice at local offsets reproduces the front-door
// subtree values exactly. Both cross-shard folds (the max fold and the
// fixed-tree normalizer fold) stay on the front door's single-writer
// thread — this file never folds across shards.
//
// Phase sequencing doubles as crash detection: every phase carries the
// update sequence number it belongs to, and the host rejects anything
// out of order with a typed error. A freshly restarted (hence
// reconfigured, seq 0) worker therefore cannot silently serve a
// combiner that is mid-transcript — the combiner sees the rejection and
// replays its update log to rebuild the slice (see cluster/combiner.h).

#ifndef PMWCM_CLUSTER_SLICE_HOST_H_
#define PMWCM_CLUSTER_SLICE_HOST_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/sharded_hypothesis.h"
#include "data/histogram.h"

namespace pmw {
namespace cluster {

class SliceHost {
 public:
  /// Installs the slice: the global partition is
  /// core::PartitionDomain(domain_size, num_shards) and this host owns
  /// shards [group_lo, group_hi) of it (a contiguous domain range).
  /// Resets state to the uniform hypothesis at update sequence 0.
  /// Typed kMalformedRequest error when the partition disagrees with
  /// num_shards or the group range is empty/out of bounds.
  Status Configure(int domain_size, int num_shards, int group_lo,
                   int group_hi);

  /// MW phase 1 over the owned shards. `payoff` is the slice covering
  /// exactly the owned domain range, in domain order. Writes one local
  /// max per owned shard (group size entries, shard order). Valid only
  /// for update_seq == updates_applied() — re-issuing phase 1 of the
  /// current update is allowed (that is how the combiner restarts a
  /// half-applied update after recovering a DIFFERENT worker).
  Status Reweigh(uint64_t update_seq, const std::vector<double>& payoff,
                 double eta, std::vector<double>* local_max);

  /// MW phase 2: stabilized weights and per-owned-shard subtree sums.
  /// Requires phase 1 of the same update_seq to have run.
  Status Partials(uint64_t update_seq, double global_max,
                  std::vector<double>* local_sum);

  /// MW phase 3: normalize in place; completes the update (increments
  /// updates_applied). Requires phase 2 of the same update_seq.
  Status Normalize(uint64_t update_seq, double total);

  /// The strictly-positive entries of [lo, hi) — which must lie within
  /// the owned domain range — in index order, exactly what the front
  /// door's CompactSupport(lo, hi) would emit.
  Result<data::HistogramSupport> Snapshot(int lo, int hi) const;

  /// Installs a checkpointed slice: `pairs` is interleaved (index, value)
  /// doubles — a Snapshot answer over the whole owned range round-tripped
  /// — and `update_seq` becomes the applied count. Entries absent from
  /// the checkpoint are exactly +0.0 (the only non-positive value the
  /// update arithmetic can produce: weights are quotients of exp(...)
  /// >= 0 by a positive total), so the restored slice is byte-identical
  /// to the slice the checkpoint was taken from. Requires Configure
  /// first; resets the phase machine to idle.
  Status Restore(uint64_t update_seq, const std::vector<double>& pairs);

  bool configured() const { return !shards_.empty(); }
  uint64_t updates_applied() const { return updates_applied_; }
  /// Owned domain range [base, end).
  int base() const { return base_; }
  int end() const { return end_; }
  int group_size() const { return group_hi_ - group_lo_; }

 private:
  /// Last phase completed for update seq == updates_applied_.
  enum class Phase { kIdle, kReweighed, kSummed };

  /// The owned shards of the global partition (global domain indices).
  std::vector<core::HypothesisShard> shards_;
  int group_lo_ = 0;
  int group_hi_ = 0;
  /// Domain offset of the owned slice: global index i lives at
  /// p_[i - base_].
  int base_ = 0;
  int end_ = 0;
  std::vector<double> p_;
  std::vector<double> scratch_;
  uint64_t updates_applied_ = 0;
  Phase phase_ = Phase::kIdle;
};

}  // namespace cluster
}  // namespace pmw

#endif  // PMWCM_CLUSTER_SLICE_HOST_H_
