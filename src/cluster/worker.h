// cluster::ShardWorker — one shard-group worker process of the
// multi-host deployment: a TCP FrameServer whose sink speaks the
// internal shard RPC protocol (api/envelope.h's ShardRpcRequest) and
// executes it on a SliceHost.
//
//   front door (Combiner) --kConfigure/kReweigh/kPartials/kNormalize/
//                           kSnapshot over TCP--> ShardWorker
//
// The worker owns NOTHING private: it holds a slice of the public
// hypothesis (probabilities the mechanism is about to release anyway)
// and the payoff vectors the front door computed. The private dataset,
// the ledger, and both cross-shard folds stay in the front-door
// process. That is why a worker crash is a pure availability event —
// restarting one and replaying the update log cannot change a single
// released bit, and tests/cluster_test.cc proves it.
//
// Identity: with an auth token configured, a connection must open with
// a hello frame carrying the token before any RPC is served (the same
// hello frame analysts use; rejections are typed kAuthRequired).
// Analyst-protocol frames (queries, stats, metrics, traces) are always
// answered with a typed error — the worker is not a front door.

#ifndef PMWCM_CLUSTER_WORKER_H_
#define PMWCM_CLUSTER_WORKER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "api/frame_server.h"
#include "cluster/slice_host.h"
#include "common/result.h"

namespace pmw {
namespace cluster {

struct ShardWorkerOptions {
  /// IPv4 dotted-quad to listen on (127.0.0.1 for same-host clusters).
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back via port() after Start().
  uint16_t port = 0;
  /// Non-empty: every connection must hello with this token first.
  std::string auth_token;
};

class ShardWorker {
 public:
  explicit ShardWorker(ShardWorkerOptions options);
  ~ShardWorker();

  ShardWorker(const ShardWorker&) = delete;
  ShardWorker& operator=(const ShardWorker&) = delete;

  /// Binds, listens, and starts serving RPCs. Typed error on failure.
  Status Start();

  /// Stops accepting, drains and closes every connection. Idempotent.
  void Shutdown();

  /// The actual bound port (resolves port 0); valid after Start().
  uint16_t port() const { return bound_port_; }

  /// Updates the slice has fully applied (test observability).
  uint64_t updates_applied() const;

 private:
  class Sink;

  const ShardWorkerOptions options_;
  /// One slice, shared by every connection (a combiner that reconnects
  /// must see the state its predecessor connection built); the mutex
  /// serializes RPCs across connections.
  mutable std::mutex mutex_;
  SliceHost slice_;
  std::unique_ptr<api::FrameSink> sink_;
  api::FrameServer server_;
  uint16_t bound_port_ = 0;
};

}  // namespace cluster
}  // namespace pmw

#endif  // PMWCM_CLUSTER_WORKER_H_
