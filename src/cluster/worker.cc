#include "cluster/worker.h"

#include <chrono>
#include <utility>
#include <vector>

#include "api/codec.h"
#include "api/envelope.h"
#include "api/error.h"

namespace pmw {
namespace cluster {

/// The worker's frame dispatch: hello/auth, then shard RPCs only.
class ShardWorker::Sink : public api::FrameSink {
 public:
  explicit Sink(ShardWorker* owner) : owner_(owner) {}

  void OnFrame(std::string_view frame, ConnState* conn,
               std::vector<std::future<api::AnswerEnvelope>>* replies)
      override {
    const auto answer_now = [replies](api::AnswerEnvelope envelope) {
      std::promise<api::AnswerEnvelope> ready;
      ready.set_value(std::move(envelope));
      replies->push_back(ready.get_future());
    };
    const auto decode_error = [&](const Status& status) {
      api::AnswerEnvelope envelope;
      envelope.error = api::ClassifyStatus(status);
      envelope.message = status.message();
      return envelope;
    };
    const uint8_t msg_type = api::PeekMsgType(frame);
    if (msg_type == api::kMsgTypeHello) {
      Result<api::HelloRequest> hello = api::DecodeHelloRequest(frame);
      if (!hello.ok()) {
        answer_now(decode_error(hello.status()));
        return;
      }
      api::AnswerEnvelope envelope;
      envelope.version = hello.value().version;
      envelope.request_id = hello.value().request_id;
      if (!owner_->options_.auth_token.empty() &&
          hello.value().auth_token != owner_->options_.auth_token) {
        envelope.error = api::ErrorCode::kAuthRequired;
        envelope.message = "worker: hello auth token rejected";
      } else {
        conn->hello_ok = true;
        conn->bound_analyst = hello.value().analyst_id;
      }
      answer_now(std::move(envelope));
    } else if (msg_type == api::kMsgTypeShardRpc) {
      Result<api::ShardRpcRequest> rpc = api::DecodeShardRpcRequest(frame);
      if (!rpc.ok()) {
        answer_now(decode_error(rpc.status()));
        return;
      }
      if (!owner_->options_.auth_token.empty() && !conn->hello_ok) {
        api::AnswerEnvelope envelope;
        envelope.version = rpc.value().version;
        envelope.request_id = rpc.value().request_id;
        envelope.error = api::ErrorCode::kAuthRequired;
        envelope.message =
            "worker: connection is not authenticated; send a hello frame "
            "first";
        answer_now(std::move(envelope));
        return;
      }
      answer_now(RunRpc(rpc.value()));
    } else {
      // Analyst-protocol traffic (queries, polls) or anything else: a
      // worker is not a front door. Typed rejection, connection stays up
      // (framing was fine).
      api::AnswerEnvelope envelope;
      envelope.error = api::ErrorCode::kMalformedRequest;
      envelope.message =
          "worker: shard-group workers serve the internal shard rpc "
          "protocol only";
      answer_now(std::move(envelope));
    }
  }

 private:
  api::AnswerEnvelope RunRpc(const api::ShardRpcRequest& rpc) {
    api::AnswerEnvelope envelope;
    envelope.version = rpc.version;
    envelope.request_id = rpc.request_id;
    const auto started = std::chrono::steady_clock::now();
    Status status = Status::Ok();
    {
      std::lock_guard<std::mutex> lock(owner_->mutex_);
      SliceHost& slice = owner_->slice_;
      switch (rpc.op) {
        case api::ShardRpcOp::kConfigure:
          status = slice.Configure(static_cast<int>(rpc.domain_size),
                                   static_cast<int>(rpc.num_shards),
                                   static_cast<int>(rpc.group_lo),
                                   static_cast<int>(rpc.group_hi));
          break;
        case api::ShardRpcOp::kReweigh: {
          std::vector<double> local_max;
          status =
              slice.Reweigh(rpc.update_seq, rpc.payoff, rpc.eta, &local_max);
          if (status.ok()) envelope.answer = std::move(local_max);
          break;
        }
        case api::ShardRpcOp::kPartials: {
          std::vector<double> local_sum;
          status =
              slice.Partials(rpc.update_seq, rpc.global_max, &local_sum);
          if (status.ok()) envelope.answer = std::move(local_sum);
          break;
        }
        case api::ShardRpcOp::kNormalize:
          status = slice.Normalize(rpc.update_seq, rpc.total);
          break;
        case api::ShardRpcOp::kRestore:
          status = slice.Restore(rpc.update_seq, rpc.payoff);
          break;
        case api::ShardRpcOp::kSnapshot: {
          Result<data::HistogramSupport> support =
              slice.Snapshot(static_cast<int>(rpc.snapshot_lo),
                             static_cast<int>(rpc.snapshot_hi));
          if (support.ok()) {
            // Interleaved (index, value) pairs; indices this repo can
            // hold are < 2^53, so the double round-trip is exact.
            envelope.answer.reserve(support.value().size() * 2);
            for (const auto& [index, value] : support.value()) {
              envelope.answer.push_back(static_cast<double>(index));
              envelope.answer.push_back(value);
            }
          } else {
            status = support.status();
          }
          break;
        }
        default:
          // Forward compatibility: the codec accepts any op byte so a
          // NEWER combiner gets a typed answer it can classify, not a
          // dropped connection.
          status = api::MakeStatus(
              api::ErrorCode::kMalformedRequest,
              "worker: unknown shard rpc op " +
                  std::to_string(static_cast<int>(rpc.op)));
          break;
      }
    }
    if (!status.ok()) {
      envelope.answer.clear();
      envelope.error = api::ClassifyStatus(status);
      envelope.message = status.message();
    }
    // The worker-compute half of the combiner's span attribution: how
    // long the op itself took, excluding all transport time.
    envelope.meta.serve_us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - started)
            .count());
    return envelope;
  }

  ShardWorker* owner_;
};

ShardWorker::ShardWorker(ShardWorkerOptions options)
    : options_(std::move(options)),
      sink_(std::make_unique<Sink>(this)),
      server_(sink_.get()) {}

ShardWorker::~ShardWorker() { Shutdown(); }

Status ShardWorker::Start() {
  Result<int> listener =
      api::ListenTcp(options_.host, options_.port, &bound_port_);
  if (!listener.ok()) return listener.status();
  server_.Serve(listener.value());
  return Status::Ok();
}

void ShardWorker::Shutdown() { server_.Shutdown(); }

uint64_t ShardWorker::updates_applied() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slice_.updates_applied();
}

}  // namespace cluster
}  // namespace pmw
