// cluster::Combiner — the front-door half of the distributed MW update:
// a core::HypothesisDelegate that fans each phase out to shard-group
// worker processes over TCP and folds nothing itself.
//
// Determinism. The delegate contract (core/sharded_hypothesis.h) keeps
// BOTH cross-shard folds — the max fold and the fixed-tree normalizer
// fold (PairwiseSum order) — on the front door's single-writer thread,
// exactly where the in-process ShardRouter runs them. The combiner only
// moves per-shard phase work to workers and copies their per-shard
// outputs back into shard order; with workers performing the exact
// in-process arithmetic (cluster/slice_host.h), transcripts are
// bit-identical to sequential PmwCm at every (workers x shards x
// threads x transport) configuration.
//
// Recovery. The combiner logs every completed update's inputs (payoff,
// eta, global_max, total — precisely the four values the delegate
// receives, all already public releases or derived from them). When a
// worker times out or its connection breaks, the combiner reconnects
// with bounded backoff, re-issues kConfigure, restores the latest
// checkpoint (kRestore: the worker's exact slice bytes, captured via
// kSnapshot), replays the log suffix in order (IEEE arithmetic is
// deterministic, so the rebuilt slice is bit-identical), replays the
// current update's completed phases, and retries the failed RPC. Only
// when recovery is exhausted does the failure surface — as a typed
// kShardUnavailable error at zero privacy cost, with the update
// unapplied (PmwCm guarantees update_count and the hypothesis are
// unchanged).
//
// Log bound. Every checkpoint_interval completed updates the combiner
// snapshots each worker's owned slice and truncates the log prefix the
// checkpoint covers, so recovery state is O(|X|) for the checkpoint
// plus O(interval * |X|) for the suffix — not the O(T * |X|) of
// replaying every update ever committed. Checkpoint restore preserves
// bit-identity because kSnapshot round-trips the slice's exact doubles
// and the only non-positive weight the update arithmetic can produce is
// +0.0 (see SliceHost::Restore), and the commit is atomic: the log is
// truncated only after every worker's capture succeeded at the same
// sequence number.
//
// Threading: PmwCm calls the delegate only from the single serving
// writer, but every entry point locks anyway — stats() and a future
// admin surface may race it, and the cost is nil at RPC granularity.

#ifndef PMWCM_CLUSTER_COMBINER_H_
#define PMWCM_CLUSTER_COMBINER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/envelope.h"
#include "api/socket_transport.h"
#include "common/result.h"
#include "core/sharded_hypothesis.h"
#include "data/histogram.h"

namespace pmw {
namespace cluster {

struct WorkerAddress {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

struct CombinerOptions {
  /// One shard-group worker per entry, in domain order: worker i owns a
  /// contiguous run of shards (Connect assigns near-equal groups).
  std::vector<WorkerAddress> workers;
  /// Hello token presented to every worker connection.
  std::string auth_token;
  /// Per-RPC deadline. A worker that misses it is treated as down and
  /// enters recovery; the RPC's late reply (if any) is discarded with
  /// its closed connection.
  int rpc_timeout_ms = 10000;
  /// Reconnect attempts per recovery before kShardUnavailable surfaces.
  int reconnect_attempts = 4;
  /// Backoff before reconnect attempt k: reconnect_backoff_ms << (k-1).
  int reconnect_backoff_ms = 50;
  /// Snapshot-checkpoint the replay log every this many completed
  /// updates: each worker's owned slice is captured (kSnapshot), the
  /// log prefix it covers is discarded, and recovery restores the
  /// checkpoint (kRestore) then replays only the suffix. Bounds the
  /// recovery log at O(|X| + interval * |X|) instead of O(T * |X|).
  /// <= 0 disables checkpointing (the PR-8 unbounded-log behavior).
  int checkpoint_interval = 32;
};

/// Where the distributed update spends its time, for the bench harness's
/// tail-latency attribution: wall time the combiner spent waiting on
/// worker replies vs the compute time workers reported for the ops
/// themselves (the difference is transport + scheduling).
struct CombinerStats {
  long long rpcs = 0;
  long long rpc_failures = 0;
  /// Successful recoveries (reconnect + checkpoint restore + replay).
  long long recoveries = 0;
  /// Updates currently in the replay log — the suffix since the last
  /// checkpoint, not the lifetime total (update_seq() is that).
  long long updates_logged = 0;
  /// Checkpoints taken (each truncates the replay log to empty).
  long long checkpoints = 0;
  uint64_t combiner_wait_us = 0;
  uint64_t worker_compute_us = 0;
};

class Combiner : public core::HypothesisDelegate {
 public:
  explicit Combiner(CombinerOptions options);
  ~Combiner() override;

  Combiner(const Combiner&) = delete;
  Combiner& operator=(const Combiner&) = delete;

  /// Partitions [0, domain_size) with core::PartitionDomain(domain_size,
  /// num_shards) — num_shards must be the already-clamped power-of-two
  /// count the front door's ShardedHypothesis settled on (its
  /// ConfigureSharding return value) — assigns each worker a contiguous
  /// shard group, connects, hellos, and configures them. Must succeed
  /// before the delegate is installed; typed error otherwise.
  Status Connect(int domain_size, int num_shards);

  // --- core::HypothesisDelegate ---
  Status Reweigh(const std::vector<double>& payoff, double eta,
                 std::vector<double>* local_max) override;
  Status PartialSums(double global_max,
                     std::vector<double>* local_sum) override;
  Status Normalize(double total) override;
  Result<data::HistogramSupport> Snapshot(int lo, int hi) override;

  /// Closes every worker channel. Idempotent.
  void Close();

  CombinerStats stats() const;
  int num_workers() const { return static_cast<int>(workers_.size()); }
  /// Completed (logged) updates.
  uint64_t update_seq() const;

 private:
  struct Worker {
    WorkerAddress address;
    /// Owned shard indices [group_lo, group_hi) of the global partition
    /// and the matching domain range.
    int group_lo = 0;
    int group_hi = 0;
    int domain_lo = 0;
    int domain_hi = 0;
    std::unique_ptr<api::TcpTransport> transport;
    /// This worker's owned slice at checkpoint_seq_, as interleaved
    /// (index, value) pairs ready to ship as a kRestore payload. Only
    /// meaningful when checkpoint_seq_ > 0; committed atomically across
    /// all workers by MaybeCheckpoint.
    std::vector<double> checkpoint;
  };
  /// One completed update's replayable inputs.
  struct LoggedUpdate {
    std::vector<double> payoff;
    double eta = 0.0;
    double global_max = 0.0;
    double total = 0.0;
  };

  /// Fresh transport + hello to `worker`; typed error on failure.
  Status OpenChannel(Worker* worker);
  /// The kConfigure RPC for `worker` at the current partition.
  api::ShardRpcRequest ConfigureRpc(const Worker& worker);
  /// Ships one RPC and waits out the deadline; no recovery. A non-ok
  /// reply envelope comes back as its (tagged) status.
  Status RawCall(Worker* worker, api::ShardRpcRequest rpc,
                 api::AnswerEnvelope* reply);
  /// Reconnect with bounded backoff, reconfigure, replay the update log
  /// and the current update's phases preceding `upto`; increments
  /// stats_.recoveries on success.
  Status Recover(Worker* worker, api::ShardRpcOp upto);
  /// Configure + checkpoint restore (when one exists) + suffix-log
  /// replay + current-update prefix (everything strictly before `upto`),
  /// over an already-open channel.
  Status ReplayInto(Worker* worker, api::ShardRpcOp upto);
  /// Takes a cluster-wide checkpoint when the replay log has reached
  /// options_.checkpoint_interval updates: snapshots every worker's
  /// owned slice at the current sequence, and only if ALL captures
  /// succeed commits them, advances checkpoint_seq_, and truncates the
  /// log. Best-effort — on any failure the log is kept and the next
  /// completed update retries. Caller holds mutex_.
  void MaybeCheckpoint();
  /// Fans `rpcs` (one per worker, indexed like workers_) out in
  /// parallel and collects every reply, running recovery + one retry on
  /// per-worker failure. Replies are success envelopes.
  Status FanOut(std::vector<api::ShardRpcRequest> rpcs,
                std::vector<api::AnswerEnvelope>* replies);

  const CombinerOptions options_;
  mutable std::mutex mutex_;
  int domain_size_ = 0;
  std::vector<core::HypothesisShard> partition_;
  std::vector<Worker> workers_;
  uint64_t next_rpc_id_ = 1;
  /// Completed updates == the next update's sequence number.
  uint64_t update_seq_ = 0;
  /// Updates covered by the workers' checkpoints (0 = no checkpoint);
  /// log_[i] is the replayable input of update checkpoint_seq_ + i.
  uint64_t checkpoint_seq_ = 0;
  std::vector<LoggedUpdate> log_;
  /// The in-flight update's inputs as its phases arrive; moved into
  /// log_ when Normalize completes.
  LoggedUpdate current_;
  CombinerStats stats_;
};

}  // namespace cluster
}  // namespace pmw

#endif  // PMWCM_CLUSTER_COMBINER_H_
