#include "cluster/slice_host.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "api/error.h"
#include "common/math_util.h"

namespace pmw {
namespace cluster {
namespace {

Status WorkerError(const std::string& detail) {
  return api::MakeStatus(api::ErrorCode::kMalformedRequest,
                         "worker: " + detail);
}

}  // namespace

Status SliceHost::Configure(int domain_size, int num_shards, int group_lo,
                            int group_hi) {
  if (domain_size < 1) {
    return WorkerError("configure: domain size " +
                       std::to_string(domain_size) + " < 1");
  }
  std::vector<core::HypothesisShard> partition =
      core::PartitionDomain(domain_size, num_shards);
  if (static_cast<int>(partition.size()) != num_shards) {
    // The combiner must send the ALREADY-clamped power-of-two count its
    // own ShardedHypothesis settled on; a disagreement here means the
    // two processes would disagree on every shard boundary.
    return WorkerError("configure: num_shards " +
                       std::to_string(num_shards) + " is not the " +
                       std::to_string(partition.size()) +
                       "-shard partition PartitionDomain produces");
  }
  if (group_lo < 0 || group_hi <= group_lo ||
      group_hi > static_cast<int>(partition.size())) {
    return WorkerError("configure: shard group [" +
                       std::to_string(group_lo) + ", " +
                       std::to_string(group_hi) + ") out of bounds for " +
                       std::to_string(partition.size()) + " shards");
  }
  group_lo_ = group_lo;
  group_hi_ = group_hi;
  shards_.assign(partition.begin() + group_lo, partition.begin() + group_hi);
  base_ = shards_.front().lo;
  end_ = shards_.back().hi;
  // The uniform start state D_hat_1, exactly as ShardedHypothesis's
  // constructor writes it: 1.0 / size for every element.
  const double uniform = 1.0 / static_cast<double>(domain_size);
  p_.assign(static_cast<size_t>(end_ - base_), uniform);
  scratch_.assign(static_cast<size_t>(end_ - base_), 0.0);
  updates_applied_ = 0;
  phase_ = Phase::kIdle;
  return Status::Ok();
}

Status SliceHost::Reweigh(uint64_t update_seq,
                          const std::vector<double>& payoff, double eta,
                          std::vector<double>* local_max) {
  if (!configured()) return WorkerError("reweigh before configure");
  if (update_seq != updates_applied_) {
    // A stale or future sequence number: this worker's slice is not at
    // the state the combiner thinks it is (typically: the worker
    // restarted and lost everything past configure). The typed rejection
    // is what triggers the combiner's replay.
    return WorkerError("reweigh: update seq " + std::to_string(update_seq) +
                       " does not match applied count " +
                       std::to_string(updates_applied_));
  }
  if (payoff.size() != static_cast<size_t>(end_ - base_)) {
    return WorkerError("reweigh: payoff slice has " +
                       std::to_string(payoff.size()) + " entries, owned " +
                       "range has " + std::to_string(end_ - base_));
  }
  local_max->clear();
  local_max->reserve(shards_.size());
  // Phase 1 of DenseMultiplicativeUpdate over the owned shards, at
  // slice-local offsets: same values, same order, same arithmetic.
  for (const core::HypothesisShard& shard : shards_) {
    double shard_max = -std::numeric_limits<double>::infinity();
    for (int i = shard.lo; i < shard.hi; ++i) {
      const size_t j = static_cast<size_t>(i - base_);
      scratch_[j] = SafeLog(p_[j]) + eta * payoff[j];
      shard_max = std::max(shard_max, scratch_[j]);
    }
    local_max->push_back(shard_max);
  }
  phase_ = Phase::kReweighed;
  return Status::Ok();
}

Status SliceHost::Partials(uint64_t update_seq, double global_max,
                           std::vector<double>* local_sum) {
  if (!configured()) return WorkerError("partials before configure");
  if (update_seq != updates_applied_ || phase_ == Phase::kIdle) {
    return WorkerError(
        "partials: update seq " + std::to_string(update_seq) +
        " is not the reweighed update (applied count " +
        std::to_string(updates_applied_) + ")");
  }
  local_sum->clear();
  local_sum->reserve(shards_.size());
  // Phase 2: stabilize and sum each owned shard. PairwiseSum's split
  // rule depends only on the range length, so summing at slice-local
  // offsets yields the front door's subtree value bit-for-bit.
  for (const core::HypothesisShard& shard : shards_) {
    for (int i = shard.lo; i < shard.hi; ++i) {
      const size_t j = static_cast<size_t>(i - base_);
      scratch_[j] = std::exp(scratch_[j] - global_max);
    }
    local_sum->push_back(PairwiseSum(scratch_.data(),
                                     static_cast<size_t>(shard.lo - base_),
                                     static_cast<size_t>(shard.hi - base_)));
  }
  phase_ = Phase::kSummed;
  return Status::Ok();
}

Status SliceHost::Normalize(uint64_t update_seq, double total) {
  if (!configured()) return WorkerError("normalize before configure");
  if (update_seq != updates_applied_ || phase_ != Phase::kSummed) {
    return WorkerError(
        "normalize: update seq " + std::to_string(update_seq) +
        " is not the summed update (applied count " +
        std::to_string(updates_applied_) + ")");
  }
  for (const core::HypothesisShard& shard : shards_) {
    for (int i = shard.lo; i < shard.hi; ++i) {
      const size_t j = static_cast<size_t>(i - base_);
      p_[j] = scratch_[j] / total;
    }
  }
  ++updates_applied_;
  phase_ = Phase::kIdle;
  return Status::Ok();
}

Status SliceHost::Restore(uint64_t update_seq,
                          const std::vector<double>& pairs) {
  if (!configured()) return WorkerError("restore before configure");
  if (pairs.size() % 2 != 0) {
    return WorkerError("restore: payload is not (index, value) pairs");
  }
  // Validate every index before touching p_: a half-applied restore
  // would leave the slice in a state no replay can fix.
  for (size_t k = 0; k < pairs.size(); k += 2) {
    const double raw = pairs[k];
    const int index = static_cast<int>(raw);
    if (static_cast<double>(index) != raw || index < base_ || index >= end_) {
      return WorkerError("restore: index " + std::to_string(raw) +
                         " outside owned [" + std::to_string(base_) + ", " +
                         std::to_string(end_) + ")");
    }
  }
  std::fill(p_.begin(), p_.end(), 0.0);
  for (size_t k = 0; k < pairs.size(); k += 2) {
    p_[static_cast<size_t>(static_cast<int>(pairs[k]) - base_)] =
        pairs[k + 1];
  }
  updates_applied_ = update_seq;
  phase_ = Phase::kIdle;
  return Status::Ok();
}

Result<data::HistogramSupport> SliceHost::Snapshot(int lo, int hi) const {
  if (!configured()) return WorkerError("snapshot before configure");
  if (lo < base_ || hi > end_ || lo > hi) {
    return WorkerError("snapshot: range [" + std::to_string(lo) + ", " +
                       std::to_string(hi) + ") outside owned [" +
                       std::to_string(base_) + ", " + std::to_string(end_) +
                       ")");
  }
  data::HistogramSupport support;
  for (int i = lo; i < hi; ++i) {
    const double probability = p_[static_cast<size_t>(i - base_)];
    if (probability > 0.0) support.emplace_back(i, probability);
  }
  return support;
}

}  // namespace cluster
}  // namespace pmw
