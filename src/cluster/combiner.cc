#include "cluster/combiner.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <utility>

#include "api/error.h"

namespace pmw {
namespace cluster {
namespace {

Status Unavailable(const std::string& host, uint16_t port,
                   const std::string& detail) {
  return api::MakeStatus(api::ErrorCode::kShardUnavailable,
                         "combiner: worker " + host + ":" +
                             std::to_string(port) + " " + detail);
}

}  // namespace

Combiner::Combiner(CombinerOptions options) : options_(std::move(options)) {}

Combiner::~Combiner() { Close(); }

Status Combiner::Connect(int domain_size, int num_shards) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (options_.workers.empty()) {
    return api::MakeStatus(api::ErrorCode::kShardUnavailable,
                           "combiner: no workers configured");
  }
  partition_ = core::PartitionDomain(domain_size, num_shards);
  if (static_cast<int>(partition_.size()) != num_shards) {
    return api::MakeStatus(
        api::ErrorCode::kMalformedRequest,
        "combiner: num_shards " + std::to_string(num_shards) +
            " is not the clamped shard count ConfigureSharding settled on (" +
            std::to_string(partition_.size()) + ")");
  }
  const int num_workers = static_cast<int>(options_.workers.size());
  if (num_workers > num_shards) {
    return api::MakeStatus(
        api::ErrorCode::kMalformedRequest,
        "combiner: " + std::to_string(num_workers) + " workers need at " +
            "least that many shards, have " + std::to_string(num_shards));
  }
  domain_size_ = domain_size;
  // Contiguous near-equal shard groups in domain order: the first
  // (num_shards % W) workers take one extra shard.
  workers_.clear();
  workers_.resize(static_cast<size_t>(num_workers));
  const int base_group = num_shards / num_workers;
  const int remainder = num_shards % num_workers;
  int next_shard = 0;
  for (int w = 0; w < num_workers; ++w) {
    Worker& worker = workers_[static_cast<size_t>(w)];
    worker.address = options_.workers[static_cast<size_t>(w)];
    worker.group_lo = next_shard;
    worker.group_hi = next_shard + base_group + (w < remainder ? 1 : 0);
    next_shard = worker.group_hi;
    worker.domain_lo = partition_[static_cast<size_t>(worker.group_lo)].lo;
    worker.domain_hi = partition_[static_cast<size_t>(worker.group_hi - 1)].hi;
  }
  update_seq_ = 0;
  checkpoint_seq_ = 0;
  log_.clear();
  current_ = LoggedUpdate{};
  for (Worker& worker : workers_) {
    Status opened = OpenChannel(&worker);
    if (!opened.ok()) return opened;
    Status configured = RawCall(&worker, ConfigureRpc(worker), nullptr);
    if (!configured.ok()) return configured;
  }
  return Status::Ok();
}

Status Combiner::OpenChannel(Worker* worker) {
  worker->transport = std::make_unique<api::TcpTransport>(
      worker->address.host, worker->address.port);
  Status status = worker->transport->status();
  if (!status.ok()) {
    worker->transport.reset();
    return Unavailable(worker->address.host, worker->address.port,
                       "is unreachable: " + status.message());
  }
  api::HelloRequest hello;
  hello.analyst_id = "combiner";
  hello.request_id = next_rpc_id_++;
  hello.auth_token = options_.auth_token;
  std::future<api::AnswerEnvelope> reply =
      worker->transport->SendHello(std::move(hello));
  if (reply.wait_for(std::chrono::milliseconds(options_.rpc_timeout_ms)) !=
      std::future_status::ready) {
    worker->transport.reset();
    return Unavailable(worker->address.host, worker->address.port,
                       "hello timed out after " +
                           std::to_string(options_.rpc_timeout_ms) + "ms");
  }
  api::AnswerEnvelope envelope = reply.get();
  if (!envelope.ok()) {
    worker->transport.reset();
    if (envelope.error == api::ErrorCode::kAuthRequired) {
      // Not an availability problem — reconnecting with the same token
      // cannot help, so surface the config error untranslated.
      return envelope.status();
    }
    return Unavailable(worker->address.host, worker->address.port,
                       "rejected hello: " + envelope.message);
  }
  return Status::Ok();
}

api::ShardRpcRequest Combiner::ConfigureRpc(const Worker& worker) {
  api::ShardRpcRequest rpc;
  rpc.op = api::ShardRpcOp::kConfigure;
  rpc.domain_size = static_cast<uint32_t>(domain_size_);
  rpc.num_shards = static_cast<uint32_t>(partition_.size());
  rpc.group_lo = static_cast<uint32_t>(worker.group_lo);
  rpc.group_hi = static_cast<uint32_t>(worker.group_hi);
  return rpc;
}

Status Combiner::RawCall(Worker* worker, api::ShardRpcRequest rpc,
                         api::AnswerEnvelope* reply) {
  if (worker->transport == nullptr) {
    return Unavailable(worker->address.host, worker->address.port,
                       "has no open channel");
  }
  rpc.request_id = next_rpc_id_++;
  ++stats_.rpcs;
  const auto started = std::chrono::steady_clock::now();
  std::future<api::AnswerEnvelope> pending =
      worker->transport->SendShardRpc(std::move(rpc));
  const bool ready =
      pending.wait_for(std::chrono::milliseconds(options_.rpc_timeout_ms)) ==
      std::future_status::ready;
  stats_.combiner_wait_us += static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - started)
          .count());
  if (!ready) {
    return Unavailable(worker->address.host, worker->address.port,
                       "rpc timed out after " +
                           std::to_string(options_.rpc_timeout_ms) + "ms");
  }
  api::AnswerEnvelope envelope = pending.get();
  if (!envelope.ok()) return envelope.status();
  stats_.worker_compute_us += envelope.meta.serve_us;
  if (reply != nullptr) *reply = std::move(envelope);
  return Status::Ok();
}

Status Combiner::ReplayInto(Worker* worker, api::ShardRpcOp upto) {
  Status status = RawCall(worker, ConfigureRpc(*worker), nullptr);
  if (!status.ok()) return status;
  // Fast-forward over the checkpointed prefix: restore the worker's
  // exact slice bytes at checkpoint_seq_, then replay only the suffix.
  if (checkpoint_seq_ > 0) {
    api::ShardRpcRequest restore;
    restore.op = api::ShardRpcOp::kRestore;
    restore.update_seq = checkpoint_seq_;
    restore.payoff = worker->checkpoint;
    status = RawCall(worker, std::move(restore), nullptr);
    if (!status.ok()) return status;
  }
  const size_t slice_lo = static_cast<size_t>(worker->domain_lo);
  const size_t slice_hi = static_cast<size_t>(worker->domain_hi);
  const auto slice_of = [&](const std::vector<double>& payoff) {
    return std::vector<double>(payoff.begin() + slice_lo,
                               payoff.begin() + slice_hi);
  };
  const auto phase_rpc = [&](api::ShardRpcOp op, uint64_t seq,
                             const LoggedUpdate& update) {
    api::ShardRpcRequest rpc;
    rpc.op = op;
    rpc.update_seq = seq;
    switch (op) {
      case api::ShardRpcOp::kReweigh:
        rpc.eta = update.eta;
        rpc.payoff = slice_of(update.payoff);
        break;
      case api::ShardRpcOp::kPartials:
        rpc.global_max = update.global_max;
        break;
      case api::ShardRpcOp::kNormalize:
        rpc.total = update.total;
        break;
      default:
        break;
    }
    return RawCall(worker, std::move(rpc), nullptr);
  };
  // Every logged update since the checkpoint, in commit order.
  // Deterministic IEEE arithmetic over identical inputs rebuilds the
  // slice bit-for-bit.
  for (size_t i = 0; i < log_.size(); ++i) {
    const LoggedUpdate& update = log_[i];
    const uint64_t seq = checkpoint_seq_ + i;
    status = phase_rpc(api::ShardRpcOp::kReweigh, seq, update);
    if (!status.ok()) return status;
    status = phase_rpc(api::ShardRpcOp::kPartials, seq, update);
    if (!status.ok()) return status;
    status = phase_rpc(api::ShardRpcOp::kNormalize, seq, update);
    if (!status.ok()) return status;
  }
  // The in-flight update's phases that already completed cluster-wide —
  // strictly before the op about to be retried. (A kReweigh retry needs
  // nothing: phase 1 re-issues cleanly at a matching seq. Snapshots only
  // run between updates.)
  if (upto == api::ShardRpcOp::kPartials || upto == api::ShardRpcOp::kNormalize) {
    status = phase_rpc(api::ShardRpcOp::kReweigh, update_seq_, current_);
    if (!status.ok()) return status;
  }
  if (upto == api::ShardRpcOp::kNormalize) {
    status = phase_rpc(api::ShardRpcOp::kPartials, update_seq_, current_);
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

Status Combiner::Recover(Worker* worker, api::ShardRpcOp upto) {
  if (worker->transport != nullptr) {
    worker->transport->Close();
    worker->transport.reset();
  }
  Status last = Unavailable(worker->address.host, worker->address.port,
                            "never attempted reconnect");
  for (int attempt = 0; attempt < options_.reconnect_attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          options_.reconnect_backoff_ms << (attempt - 1)));
    }
    last = OpenChannel(worker);
    if (!last.ok()) {
      if (api::ClassifyStatus(last) == api::ErrorCode::kAuthRequired) {
        return last;  // retrying the same token is pointless
      }
      continue;
    }
    last = ReplayInto(worker, upto);
    if (last.ok()) {
      ++stats_.recoveries;
      return Status::Ok();
    }
    worker->transport->Close();
    worker->transport.reset();
  }
  return Unavailable(
      worker->address.host, worker->address.port,
      "unrecoverable after " + std::to_string(options_.reconnect_attempts) +
          " attempts: " + last.message());
}

Status Combiner::FanOut(std::vector<api::ShardRpcRequest> rpcs,
                        std::vector<api::AnswerEnvelope>* replies) {
  replies->assign(workers_.size(), api::AnswerEnvelope{});
  // Ship everything first so workers compute in parallel...
  std::vector<std::future<api::AnswerEnvelope>> pending;
  pending.reserve(workers_.size());
  for (size_t w = 0; w < workers_.size(); ++w) {
    api::ShardRpcRequest rpc = rpcs[w];  // keep the original for retries
    rpc.request_id = next_rpc_id_++;
    ++stats_.rpcs;
    if (workers_[w].transport != nullptr) {
      pending.push_back(workers_[w].transport->SendShardRpc(std::move(rpc)));
    } else {
      // A worker left channel-less by a failed recovery: resolve as a
      // broken channel so the collection loop below runs recovery.
      std::promise<api::AnswerEnvelope> broken;
      api::AnswerEnvelope envelope;
      envelope.error = api::ErrorCode::kTransportError;
      envelope.message = "combiner: worker channel is closed";
      broken.set_value(std::move(envelope));
      pending.push_back(broken.get_future());
    }
  }
  // ...then collect, recovering + retrying once per failed worker.
  for (size_t w = 0; w < workers_.size(); ++w) {
    Worker& worker = workers_[w];
    const auto started = std::chrono::steady_clock::now();
    const bool ready =
        pending[w].wait_for(std::chrono::milliseconds(
            options_.rpc_timeout_ms)) == std::future_status::ready;
    stats_.combiner_wait_us += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - started)
            .count());
    std::string why;
    if (ready) {
      api::AnswerEnvelope envelope = pending[w].get();
      if (envelope.ok()) {
        stats_.worker_compute_us += envelope.meta.serve_us;
        (*replies)[w] = std::move(envelope);
        continue;
      }
      if (envelope.error == api::ErrorCode::kAuthRequired) {
        return envelope.status();  // config error; recovery cannot help
      }
      why = envelope.message;
    } else {
      why = "rpc timed out after " + std::to_string(options_.rpc_timeout_ms) +
            "ms";
    }
    // Timeout, broken channel, or an out-of-sequence rejection (the
    // restarted-worker signal): reconnect, replay, retry exactly once.
    ++stats_.rpc_failures;
    Status recovered = Recover(&worker, rpcs[w].op);
    if (!recovered.ok()) {
      return api::MakeStatus(
          api::ErrorCode::kShardUnavailable,
          recovered.message() + " (first failure: " + why + ")");
    }
    Status retried = RawCall(&worker, rpcs[w], &(*replies)[w]);
    if (!retried.ok()) {
      return Unavailable(worker.address.host, worker.address.port,
                         "failed after recovery: " + retried.message());
    }
  }
  return Status::Ok();
}

Status Combiner::Reweigh(const std::vector<double>& payoff, double eta,
                         std::vector<double>* local_max) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (static_cast<int>(payoff.size()) != domain_size_) {
    return api::MakeStatus(
        api::ErrorCode::kInternal,
        "combiner: payoff has " + std::to_string(payoff.size()) +
            " entries, domain has " + std::to_string(domain_size_));
  }
  // Log the inputs first: recovery mid-fan-out replays this update's
  // phase 1 from current_.
  current_.payoff = payoff;
  current_.eta = eta;
  std::vector<api::ShardRpcRequest> rpcs(workers_.size());
  for (size_t w = 0; w < workers_.size(); ++w) {
    rpcs[w].op = api::ShardRpcOp::kReweigh;
    rpcs[w].update_seq = update_seq_;
    rpcs[w].eta = eta;
    rpcs[w].payoff.assign(payoff.begin() + workers_[w].domain_lo,
                          payoff.begin() + workers_[w].domain_hi);
  }
  std::vector<api::AnswerEnvelope> replies;
  Status status = FanOut(std::move(rpcs), &replies);
  if (!status.ok()) return status;
  local_max->assign(partition_.size(), 0.0);
  for (size_t w = 0; w < workers_.size(); ++w) {
    const Worker& worker = workers_[w];
    const size_t group_size =
        static_cast<size_t>(worker.group_hi - worker.group_lo);
    if (replies[w].answer.size() != group_size) {
      return api::MakeStatus(
          api::ErrorCode::kInternal,
          "combiner: reweigh reply carries " +
              std::to_string(replies[w].answer.size()) + " maxima for a " +
              std::to_string(group_size) + "-shard group");
    }
    for (size_t s = 0; s < group_size; ++s) {
      (*local_max)[static_cast<size_t>(worker.group_lo) + s] =
          replies[w].answer[s];
    }
  }
  return Status::Ok();
}

Status Combiner::PartialSums(double global_max,
                             std::vector<double>* local_sum) {
  std::lock_guard<std::mutex> lock(mutex_);
  current_.global_max = global_max;
  std::vector<api::ShardRpcRequest> rpcs(workers_.size());
  for (size_t w = 0; w < workers_.size(); ++w) {
    rpcs[w].op = api::ShardRpcOp::kPartials;
    rpcs[w].update_seq = update_seq_;
    rpcs[w].global_max = global_max;
  }
  std::vector<api::AnswerEnvelope> replies;
  Status status = FanOut(std::move(rpcs), &replies);
  if (!status.ok()) return status;
  local_sum->assign(partition_.size(), 0.0);
  for (size_t w = 0; w < workers_.size(); ++w) {
    const Worker& worker = workers_[w];
    const size_t group_size =
        static_cast<size_t>(worker.group_hi - worker.group_lo);
    if (replies[w].answer.size() != group_size) {
      return api::MakeStatus(
          api::ErrorCode::kInternal,
          "combiner: partials reply carries " +
              std::to_string(replies[w].answer.size()) + " sums for a " +
              std::to_string(group_size) + "-shard group");
    }
    for (size_t s = 0; s < group_size; ++s) {
      (*local_sum)[static_cast<size_t>(worker.group_lo) + s] =
          replies[w].answer[s];
    }
  }
  return Status::Ok();
}

Status Combiner::Normalize(double total) {
  std::lock_guard<std::mutex> lock(mutex_);
  current_.total = total;
  std::vector<api::ShardRpcRequest> rpcs(workers_.size());
  for (size_t w = 0; w < workers_.size(); ++w) {
    rpcs[w].op = api::ShardRpcOp::kNormalize;
    rpcs[w].update_seq = update_seq_;
    rpcs[w].total = total;
  }
  std::vector<api::AnswerEnvelope> replies;
  Status status = FanOut(std::move(rpcs), &replies);
  if (!status.ok()) return status;
  // The update is now applied cluster-wide: commit it to the replay log.
  log_.push_back(std::move(current_));
  current_ = LoggedUpdate{};
  ++update_seq_;
  MaybeCheckpoint();
  stats_.updates_logged = static_cast<long long>(log_.size());
  return Status::Ok();
}

void Combiner::MaybeCheckpoint() {
  if (options_.checkpoint_interval <= 0 ||
      log_.size() < static_cast<size_t>(options_.checkpoint_interval)) {
    return;
  }
  // Capture every worker's slice at the current sequence into staging
  // first; nothing is committed until all captures succeed, so a failure
  // leaves the old checkpoint + full log intact (best-effort: the next
  // completed update retries).
  std::vector<std::vector<double>> staged(workers_.size());
  for (size_t w = 0; w < workers_.size(); ++w) {
    Worker& worker = workers_[w];
    api::ShardRpcRequest rpc;
    rpc.op = api::ShardRpcOp::kSnapshot;
    rpc.update_seq = update_seq_;
    rpc.snapshot_lo = static_cast<uint32_t>(worker.domain_lo);
    rpc.snapshot_hi = static_cast<uint32_t>(worker.domain_hi);
    api::AnswerEnvelope reply;
    Status status = RawCall(&worker, rpc, &reply);
    if (!status.ok()) {
      // Same posture as Snapshot(): one recovery + retry, then give up
      // on THIS checkpoint attempt (never on the update — it is already
      // committed).
      ++stats_.rpc_failures;
      Status recovered = Recover(&worker, api::ShardRpcOp::kSnapshot);
      if (!recovered.ok()) return;
      status = RawCall(&worker, rpc, &reply);
      if (!status.ok()) return;
    }
    if (reply.answer.size() % 2 != 0) return;
    staged[w] = std::move(reply.answer);
  }
  for (size_t w = 0; w < workers_.size(); ++w) {
    workers_[w].checkpoint = std::move(staged[w]);
  }
  checkpoint_seq_ = update_seq_;
  log_.clear();
  ++stats_.checkpoints;
}

Result<data::HistogramSupport> Combiner::Snapshot(int lo, int hi) {
  std::lock_guard<std::mutex> lock(mutex_);
  data::HistogramSupport support;
  // Workers are in domain order and a worker's support comes back in
  // index order, so concatenation is already sorted.
  for (Worker& worker : workers_) {
    const int slice_lo = std::max(lo, worker.domain_lo);
    const int slice_hi = std::min(hi, worker.domain_hi);
    if (slice_lo >= slice_hi) continue;
    api::ShardRpcRequest rpc;
    rpc.op = api::ShardRpcOp::kSnapshot;
    rpc.update_seq = update_seq_;
    rpc.snapshot_lo = static_cast<uint32_t>(slice_lo);
    rpc.snapshot_hi = static_cast<uint32_t>(slice_hi);
    api::AnswerEnvelope reply;
    Status status = RawCall(&worker, rpc, &reply);
    if (!status.ok()) {
      ++stats_.rpc_failures;
      Status recovered = Recover(&worker, api::ShardRpcOp::kSnapshot);
      if (!recovered.ok()) return recovered;
      status = RawCall(&worker, rpc, &reply);
      if (!status.ok()) return status;
    }
    if (reply.answer.size() % 2 != 0) {
      return api::MakeStatus(api::ErrorCode::kInternal,
                             "combiner: snapshot reply has odd payload");
    }
    for (size_t k = 0; k + 1 < reply.answer.size(); k += 2) {
      support.emplace_back(static_cast<int>(reply.answer[k]),
                           reply.answer[k + 1]);
    }
  }
  return support;
}

void Combiner::Close() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Worker& worker : workers_) {
    if (worker.transport != nullptr) {
      worker.transport->Close();
      worker.transport.reset();
    }
  }
}

CombinerStats Combiner::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

uint64_t Combiner::update_seq() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return update_seq_;
}

}  // namespace cluster
}  // namespace pmw
