// Privacy parameter types (Definition 2.1).

#ifndef PMWCM_DP_PRIVACY_H_
#define PMWCM_DP_PRIVACY_H_

#include <string>

namespace pmw {
namespace dp {

/// (epsilon, delta)-differential privacy parameters.
struct PrivacyParams {
  double epsilon = 1.0;
  double delta = 0.0;

  /// True for pure (epsilon, 0)-DP.
  bool IsPure() const { return delta == 0.0; }

  std::string ToString() const {
    return "(eps=" + std::to_string(epsilon) +
           ", delta=" + std::to_string(delta) + ")";
  }
};

/// Validates epsilon > 0 and 0 <= delta < 1, aborting otherwise.
void ValidatePrivacyParams(const PrivacyParams& params);

}  // namespace dp
}  // namespace pmw

#endif  // PMWCM_DP_PRIVACY_H_
