#include "dp/ledger.h"

#include <map>
#include <sstream>

#include "common/check.h"
#include "dp/composition.h"

namespace pmw {
namespace dp {

void PrivacyLedger::Record(const std::string& label,
                           const PrivacyParams& params) {
  ValidatePrivacyParams(params);
  events_.push_back({label, params});
}

PrivacyParams PrivacyLedger::BasicTotal() const {
  PrivacyParams total{0.0, 0.0};
  for (const Event& e : events_) {
    total.epsilon += e.params.epsilon;
    total.delta += e.params.delta;
  }
  return total;
}

PrivacyParams PrivacyLedger::GroupedStrongTotal(
    double delta_prime_per_group) const {
  std::map<std::pair<double, double>, int> groups;
  for (const Event& e : events_) {
    groups[{e.params.epsilon, e.params.delta}] += 1;
  }
  PrivacyParams total{0.0, 0.0};
  for (const auto& [key, count] : groups) {
    PrivacyParams per_round{key.first, key.second};
    PrivacyParams group =
        StrongComposition(per_round, count, delta_prime_per_group);
    total.epsilon += group.epsilon;
    total.delta += group.delta;
  }
  return total;
}

int PrivacyLedger::CountWithPrefix(const std::string& prefix) const {
  int count = 0;
  for (const Event& e : events_) {
    if (e.label.rfind(prefix, 0) == 0) ++count;
  }
  return count;
}

std::string PrivacyLedger::Report() const {
  std::ostringstream oss;
  oss << "PrivacyLedger: " << events_.size() << " events\n";
  for (const Event& e : events_) {
    oss << "  " << e.label << " " << e.params.ToString() << "\n";
  }
  PrivacyParams basic = BasicTotal();
  oss << "  basic total: " << basic.ToString() << "\n";
  return oss.str();
}

}  // namespace dp
}  // namespace pmw
