#include "dp/ledger.h"

#include <limits>
#include <map>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "dp/composition.h"

namespace pmw {
namespace dp {

long long PrivacyLedger::Record(const std::string& label,
                                const PrivacyParams& params) {
  ValidatePrivacyParams(params);
  std::lock_guard<std::mutex> lock(mutex_);
  long long sequence = static_cast<long long>(events_.size());
  events_.push_back({sequence, label, params});
  return sequence;
}

int PrivacyLedger::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(events_.size());
}

std::vector<PrivacyLedger::Event> PrivacyLedger::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

PrivacyParams PrivacyLedger::BasicTotal() const {
  std::lock_guard<std::mutex> lock(mutex_);
  PrivacyParams total{0.0, 0.0};
  for (const Event& e : events_) {
    total.epsilon += e.params.epsilon;
    total.delta += e.params.delta;
  }
  return total;
}

PrivacyParams PrivacyLedger::GroupedStrongTotal(
    double delta_prime_per_group) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::pair<double, double>, int> groups;
  for (const Event& e : events_) {
    groups[{e.params.epsilon, e.params.delta}] += 1;
  }
  PrivacyParams total{0.0, 0.0};
  for (const auto& [key, count] : groups) {
    PrivacyParams per_round{key.first, key.second};
    PrivacyParams group =
        StrongComposition(per_round, count, delta_prime_per_group);
    total.epsilon += group.epsilon;
    total.delta += group.delta;
  }
  return total;
}

int PrivacyLedger::CountWithPrefix(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  int count = 0;
  for (const Event& e : events_) {
    if (e.label.rfind(prefix, 0) == 0) ++count;
  }
  return count;
}

PrivacyParams PrivacyLedger::BasicTotalWithPrefix(
    const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  PrivacyParams total{0.0, 0.0};
  for (const Event& e : events_) {
    if (e.label.rfind(prefix, 0) != 0) continue;
    total.epsilon += e.params.epsilon;
    total.delta += e.params.delta;
  }
  return total;
}

BudgetView::BudgetView(const PrivacyLedger* ledger, std::string label_prefix,
                       long long max_events)
    : ledger_(ledger),
      prefix_(std::move(label_prefix)),
      max_events_(max_events) {
  PMW_CHECK(ledger != nullptr);
}

long long BudgetView::consumed() const {
  return ledger_->CountWithPrefix(prefix_);
}

long long BudgetView::remaining() const {
  if (max_events_ <= 0) return std::numeric_limits<long long>::max();
  long long left = max_events_ - consumed();
  return left > 0 ? left : 0;
}

bool BudgetView::exhausted() const {
  return max_events_ > 0 && consumed() >= max_events_;
}

PrivacyParams BudgetView::Spent() const {
  return ledger_->BasicTotalWithPrefix(prefix_);
}

std::string PrivacyLedger::Report() const {
  std::vector<Event> snapshot = events();
  std::ostringstream oss;
  oss << "PrivacyLedger: " << snapshot.size() << " events\n";
  PrivacyParams basic{0.0, 0.0};
  for (const Event& e : snapshot) {
    oss << "  #" << e.sequence << " " << e.label << " "
        << e.params.ToString() << "\n";
    basic.epsilon += e.params.epsilon;
    basic.delta += e.params.delta;
  }
  oss << "  basic total: " << basic.ToString() << "\n";
  return oss.str();
}

}  // namespace dp
}  // namespace pmw
