// Renyi differential privacy (RDP) accounting — a tighter composition
// calculus than Theorem 3.10's strong composition.
//
// The paper's Figure 3 splits its budget with the DRV10 strong composition
// theorem. Modern accountants track the Renyi divergence of each mechanism
// at a grid of orders and convert to (eps, delta) at the end, composing by
// simple addition. Shipped as an optional extension (DESIGN.md "ablations /
// future work"): bench_ablation quantifies how much budget Figure 3 leaves
// on the table at practical T.
//
// Facts used (Mironov 2017; Balle et al. 2020 conversion):
//   Gaussian mechanism, L2 sensitivity D, noise sigma:
//       RDP(alpha) = alpha D^2 / (2 sigma^2).
//   Pure eps-DP mechanism: RDP(alpha) <= min(eps alpha / 2 * tanh-free
//       bound, eps) — we use the standard bound
//       RDP(alpha) <= min( (alpha/2) eps^2 , eps ).
//   Composition: RDP adds order-wise.
//   Conversion: (eps, delta)-DP with
//       eps = min_alpha RDP(alpha) + log(1/delta)/(alpha - 1)
//             + log((alpha-1)/alpha)   (Balle et al.; the last term <= 0).

#ifndef PMWCM_DP_RDP_ACCOUNTANT_H_
#define PMWCM_DP_RDP_ACCOUNTANT_H_

#include <vector>

#include "dp/privacy.h"

namespace pmw {
namespace dp {

class RdpAccountant {
 public:
  /// Uses a standard grid of orders (1.25 ... 512).
  RdpAccountant();
  /// Custom orders; every order must be > 1.
  explicit RdpAccountant(std::vector<double> orders);

  /// Records a Gaussian mechanism with the given noise multiplier
  /// (sigma / sensitivity). May be called repeatedly (composition).
  void AddGaussian(double noise_multiplier, int count = 1);

  /// Records a pure eps-DP mechanism (e.g. one sparse-vector epoch or an
  /// exponential-mechanism selection).
  void AddPureDp(double epsilon, int count = 1);

  /// Current RDP value at each order.
  const std::vector<double>& rdp() const { return rdp_; }
  const std::vector<double>& orders() const { return orders_; }

  /// Best (eps, delta)-DP guarantee at the given delta.
  double EpsilonAt(double delta) const;

  /// Convenience: the epsilon the DRV10 strong composition theorem would
  /// report for `count` Gaussian releases at the same noise multiplier —
  /// used by the ablation bench for a side-by-side.
  static double StrongCompositionEpsilon(double noise_multiplier, int count,
                                         double delta);

 private:
  std::vector<double> orders_;
  std::vector<double> rdp_;
};

}  // namespace dp
}  // namespace pmw

#endif  // PMWCM_DP_RDP_ACCOUNTANT_H_
