#include "dp/mechanisms.h"

#include <cmath>

#include "common/check.h"

namespace pmw {
namespace dp {

double LaplaceScale(double sensitivity, double epsilon) {
  PMW_CHECK_GT(sensitivity, 0.0);
  PMW_CHECK_GT(epsilon, 0.0);
  return sensitivity / epsilon;
}

double LaplaceMechanism(double value, double sensitivity, double epsilon,
                        Rng* rng) {
  PMW_CHECK(rng != nullptr);
  return value + rng->Laplace(LaplaceScale(sensitivity, epsilon));
}

double GaussianSigma(double sensitivity, const PrivacyParams& params) {
  PMW_CHECK_GT(sensitivity, 0.0);
  ValidatePrivacyParams(params);
  PMW_CHECK_MSG(params.delta > 0.0,
                "Gaussian mechanism requires delta > 0");
  return sensitivity * std::sqrt(2.0 * std::log(1.25 / params.delta)) /
         params.epsilon;
}

double GaussianMechanism(double value, double sensitivity,
                         const PrivacyParams& params, Rng* rng) {
  PMW_CHECK(rng != nullptr);
  return value + rng->Gaussian(0.0, GaussianSigma(sensitivity, params));
}

std::vector<double> GaussianMechanismVector(std::vector<double> value,
                                            double sensitivity,
                                            const PrivacyParams& params,
                                            Rng* rng) {
  PMW_CHECK(rng != nullptr);
  double sigma = GaussianSigma(sensitivity, params);
  for (double& v : value) v += rng->Gaussian(0.0, sigma);
  return value;
}

int ExponentialMechanism(const std::vector<double>& scores, double sensitivity,
                         double epsilon, Rng* rng) {
  PMW_CHECK(rng != nullptr);
  PMW_CHECK(!scores.empty());
  PMW_CHECK_GT(sensitivity, 0.0);
  PMW_CHECK_GT(epsilon, 0.0);
  // Gumbel-max: argmax_i (eps * score_i / (2 sens) + Gumbel_i) has exactly
  // the exponential-mechanism distribution.
  int best = 0;
  double best_key = -1e308;
  for (size_t i = 0; i < scores.size(); ++i) {
    double key = epsilon * scores[i] / (2.0 * sensitivity) + rng->Gumbel();
    if (key > best_key) {
      best_key = key;
      best = static_cast<int>(i);
    }
  }
  return best;
}

int ReportNoisyMax(const std::vector<double>& scores, double sensitivity,
                   double epsilon, Rng* rng) {
  PMW_CHECK(rng != nullptr);
  PMW_CHECK(!scores.empty());
  PMW_CHECK_GT(sensitivity, 0.0);
  PMW_CHECK_GT(epsilon, 0.0);
  int best = 0;
  double best_value = -1e308;
  double scale = 2.0 * sensitivity / epsilon;
  for (size_t i = 0; i < scores.size(); ++i) {
    double noisy = scores[i] + rng->Laplace(scale);
    if (noisy > best_value) {
      best_value = noisy;
      best = static_cast<int>(i);
    }
  }
  return best;
}

}  // namespace dp
}  // namespace pmw
