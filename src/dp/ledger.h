// A privacy ledger: records every differentially private access an
// algorithm makes and reports the total privacy cost under basic or strong
// composition. Used by tests to audit that the PMW implementation spends
// exactly the budget the paper's analysis (Section 3.4) claims.
//
// Thread safety: Record and every accessor take an internal mutex, so the
// ledger can be shared between a serving writer and concurrent auditors
// (stats scrapers, budget monitors). Each event is stamped with a
// monotonically increasing sequence number at append time — the *commit
// order* — so two transcripts are comparable event-for-event: the serving
// layer's determinism tests assert that the parallel engine commits the
// exact sequence the sequential mechanism does (tests/serve_parallel_test).

#ifndef PMWCM_DP_LEDGER_H_
#define PMWCM_DP_LEDGER_H_

#include <mutex>
#include <string>
#include <vector>

#include "dp/privacy.h"

namespace pmw {
namespace dp {

class PrivacyLedger {
 public:
  /// One committed (eps, delta)-DP release. `sequence` is the 0-based
  /// commit position: assigned under the ledger lock, dense, monotone.
  struct Event {
    long long sequence = 0;
    std::string label;
    PrivacyParams params;
  };

  PrivacyLedger() = default;
  // The mutex pins the ledger in place; nothing in the library copies or
  // moves one (audits take snapshots via events()).
  PrivacyLedger(const PrivacyLedger&) = delete;
  PrivacyLedger& operator=(const PrivacyLedger&) = delete;

  /// Records one (eps, delta)-DP release; returns its commit sequence.
  long long Record(const std::string& label, const PrivacyParams& params);

  int event_count() const;

  /// A snapshot of the committed events in commit order.
  std::vector<Event> events() const;

  /// Total under basic composition (sum of epsilons and deltas).
  PrivacyParams BasicTotal() const;

  /// Total under strong composition applied to the *homogeneous* subgroup
  /// of events sharing each distinct (eps, delta), each group composed
  /// strongly with its own delta' = delta_prime_per_group, then summed
  /// basically across groups. A simple, conservative audit.
  PrivacyParams GroupedStrongTotal(double delta_prime_per_group) const;

  /// Events carrying the given label prefix.
  int CountWithPrefix(const std::string& prefix) const;

  std::string Report() const;

 private:
  mutable std::mutex mutex_;
  std::vector<Event> events_;
};

}  // namespace dp
}  // namespace pmw

#endif  // PMWCM_DP_LEDGER_H_
