// A privacy ledger: records every differentially private access an
// algorithm makes and reports the total privacy cost under basic or strong
// composition. Used by tests to audit that the PMW implementation spends
// exactly the budget the paper's analysis (Section 3.4) claims.

#ifndef PMWCM_DP_LEDGER_H_
#define PMWCM_DP_LEDGER_H_

#include <string>
#include <vector>

#include "dp/privacy.h"

namespace pmw {
namespace dp {

class PrivacyLedger {
 public:
  /// Records one (eps, delta)-DP release.
  void Record(const std::string& label, const PrivacyParams& params);

  int event_count() const { return static_cast<int>(events_.size()); }

  /// Total under basic composition (sum of epsilons and deltas).
  PrivacyParams BasicTotal() const;

  /// Total under strong composition applied to the *homogeneous* subgroup
  /// of events sharing each distinct (eps, delta), each group composed
  /// strongly with its own delta' = delta_prime_per_group, then summed
  /// basically across groups. A simple, conservative audit.
  PrivacyParams GroupedStrongTotal(double delta_prime_per_group) const;

  /// Events carrying the given label prefix.
  int CountWithPrefix(const std::string& prefix) const;

  std::string Report() const;

 private:
  struct Event {
    std::string label;
    PrivacyParams params;
  };
  std::vector<Event> events_;
};

}  // namespace dp
}  // namespace pmw

#endif  // PMWCM_DP_LEDGER_H_
