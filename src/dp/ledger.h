// A privacy ledger: records every differentially private access an
// algorithm makes and reports the total privacy cost under basic or strong
// composition. Used by tests to audit that the PMW implementation spends
// exactly the budget the paper's analysis (Section 3.4) claims.
//
// Thread safety: Record and every accessor take an internal mutex, so the
// ledger can be shared between a serving writer and concurrent auditors
// (stats scrapers, budget monitors). Each event is stamped with a
// monotonically increasing sequence number at append time — the *commit
// order* — so two transcripts are comparable event-for-event: the serving
// layer's determinism tests assert that the parallel engine commits the
// exact sequence the sequential mechanism does (tests/serve_parallel_test).

#ifndef PMWCM_DP_LEDGER_H_
#define PMWCM_DP_LEDGER_H_

#include <mutex>
#include <string>
#include <vector>

#include "dp/privacy.h"

namespace pmw {
namespace dp {

class PrivacyLedger {
 public:
  /// One committed (eps, delta)-DP release. `sequence` is the 0-based
  /// commit position: assigned under the ledger lock, dense, monotone.
  struct Event {
    long long sequence = 0;
    std::string label;
    PrivacyParams params;
  };

  PrivacyLedger() = default;
  // The mutex pins the ledger in place; nothing in the library copies or
  // moves one (audits take snapshots via events()).
  PrivacyLedger(const PrivacyLedger&) = delete;
  PrivacyLedger& operator=(const PrivacyLedger&) = delete;

  /// Records one (eps, delta)-DP release; returns its commit sequence.
  long long Record(const std::string& label, const PrivacyParams& params);

  int event_count() const;

  /// A snapshot of the committed events in commit order.
  std::vector<Event> events() const;

  /// Total under basic composition (sum of epsilons and deltas).
  PrivacyParams BasicTotal() const;

  /// Total under strong composition applied to the *homogeneous* subgroup
  /// of events sharing each distinct (eps, delta), each group composed
  /// strongly with its own delta' = delta_prime_per_group, then summed
  /// basically across groups. A simple, conservative audit.
  PrivacyParams GroupedStrongTotal(double delta_prime_per_group) const;

  /// Events carrying the given label prefix.
  int CountWithPrefix(const std::string& prefix) const;

  /// Basic-composition total over events with the given label prefix
  /// (e.g. "oracle:" isolates what the ERM oracle calls have spent).
  PrivacyParams BasicTotalWithPrefix(const std::string& prefix) const;

  std::string Report() const;

 private:
  mutable std::mutex mutex_;
  std::vector<Event> events_;
};

/// A read-only quota view over a ledger: consumption of a fixed event
/// budget, restricted to a label prefix. The serving front-end's
/// admission control (frontend::QuotaManager) consults views like
/// {"oracle:", schedule.T} to reject work *before* it can cost privacy:
/// the ledger is the single source of truth for what has been spent, and
/// its internal lock makes every view accessor safe from any thread while
/// the serving writer keeps recording.
class BudgetView {
 public:
  /// `ledger` must outlive the view. `max_events` <= 0 means unlimited.
  BudgetView(const PrivacyLedger* ledger, std::string label_prefix,
             long long max_events);

  long long consumed() const;
  /// Events left before the budget is exhausted (0 when spent; a very
  /// large value when unlimited).
  long long remaining() const;
  bool exhausted() const;
  /// Basic-composition privacy cost of the consumed events.
  PrivacyParams Spent() const;

  const std::string& label_prefix() const { return prefix_; }
  long long max_events() const { return max_events_; }

 private:
  const PrivacyLedger* ledger_;
  std::string prefix_;
  long long max_events_;
};

}  // namespace dp
}  // namespace pmw

#endif  // PMWCM_DP_LEDGER_H_
