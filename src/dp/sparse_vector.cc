#include "dp/sparse_vector.h"

#include <cmath>

#include "common/check.h"

namespace pmw {
namespace dp {

SparseVector::SparseVector(const Options& options, uint64_t seed)
    : options_(options), rng_(seed) {
  PMW_CHECK_GE(options.max_top_answers, 1);
  PMW_CHECK_GT(options.alpha, 0.0);
  PMW_CHECK_GT(options.sensitivity, 0.0);
  ValidatePrivacyParams(options.privacy);

  const double delta_q = options.sensitivity;
  const double t = static_cast<double>(options.max_top_answers);
  if (options.privacy.delta > 0.0) {
    // Approximate-DP calibration: each AboveThreshold epoch (threshold
    // noise Lap(2 Delta/eps_epoch), query noise Lap(4 Delta/eps_epoch)) is
    // pure eps_epoch-DP; advanced composition (paper Theorem 3.10) across
    // the T epochs with eps_epoch = eps / sqrt(8 T ln(2/delta)) keeps the
    // total within (eps, delta) whenever eps <= 4 ln(2/delta).
    double eps_epoch = options.privacy.epsilon /
                       std::sqrt(8.0 * t * std::log(2.0 / options.privacy.delta));
    threshold_scale_ = 2.0 * delta_q / eps_epoch;
    query_scale_ = 4.0 * delta_q / eps_epoch;
  } else {
    // Pure-DP calibration: basic composition across epochs.
    double eps_epoch = options.privacy.epsilon / t;
    threshold_scale_ = 2.0 * delta_q / eps_epoch;
    query_scale_ = 4.0 * delta_q / eps_epoch;
  }
  RefreshThresholdNoise();
}

void SparseVector::RefreshThresholdNoise() {
  const double threshold = 0.75 * options_.alpha;
  noisy_threshold_ = threshold + rng_.Laplace(threshold_scale_);
}

Result<SparseVector::Answer> SparseVector::Process(double query_value) {
  if (halted()) {
    return Status::Halted("sparse vector: T top answers already given");
  }
  ++queries_processed_;
  double noisy_value = query_value + rng_.Laplace(query_scale_);
  if (noisy_value >= noisy_threshold_) {
    ++top_count_;
    if (!halted()) RefreshThresholdNoise();
    return Answer::kTop;
  }
  return Answer::kBottom;
}

double SparseVector::TheoremRequiredN(double scale_s, int max_top_answers,
                                      long long num_queries, double alpha,
                                      const PrivacyParams& privacy,
                                      double beta) {
  PMW_CHECK_GT(scale_s, 0.0);
  PMW_CHECK_GE(max_top_answers, 1);
  PMW_CHECK_GE(num_queries, 1);
  PMW_CHECK_GT(alpha, 0.0);
  PMW_CHECK_GT(beta, 0.0);
  ValidatePrivacyParams(privacy);
  double delta_for_bound = privacy.delta > 0.0 ? privacy.delta : 1e-9;
  return 256.0 * scale_s *
         std::sqrt(static_cast<double>(max_top_answers) *
                   std::log(2.0 / delta_for_bound)) *
         std::log(4.0 * static_cast<double>(num_queries) / beta) /
         (privacy.epsilon * alpha);
}

}  // namespace dp
}  // namespace pmw
