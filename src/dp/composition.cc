#include "dp/composition.h"

#include <cmath>

#include "common/check.h"

namespace pmw {
namespace dp {

PrivacyParams BasicComposition(const PrivacyParams& per_round, int rounds) {
  ValidatePrivacyParams(per_round);
  PMW_CHECK_GE(rounds, 1);
  return {per_round.epsilon * rounds, per_round.delta * rounds};
}

PrivacyParams StrongComposition(const PrivacyParams& per_round, int rounds,
                                double delta_prime) {
  ValidatePrivacyParams(per_round);
  PMW_CHECK_GE(rounds, 1);
  PMW_CHECK_GT(delta_prime, 0.0);
  PMW_CHECK_LT(delta_prime, 1.0);
  double t = static_cast<double>(rounds);
  double eps0 = per_round.epsilon;
  double eps = std::sqrt(2.0 * t * std::log(1.0 / delta_prime)) * eps0 +
               2.0 * t * eps0 * eps0;
  return {eps, delta_prime + t * per_round.delta};
}

PrivacyParams PerRoundBudget(const PrivacyParams& total, int rounds) {
  ValidatePrivacyParams(total);
  PMW_CHECK_GE(rounds, 1);
  PMW_CHECK_MSG(total.delta > 0.0,
                "PerRoundBudget requires delta > 0 (strong composition)");
  double t = static_cast<double>(rounds);
  double log_term = std::log(2.0 / total.delta);
  PMW_CHECK_MSG(total.epsilon <= log_term,
                "PerRoundBudget requires eps <= ln(2/delta)");
  PrivacyParams per_round;
  per_round.epsilon = total.epsilon / std::sqrt(8.0 * t * log_term);
  per_round.delta = total.delta / (2.0 * t);
  return per_round;
}

}  // namespace dp
}  // namespace pmw
