#include "dp/rdp_accountant.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "dp/composition.h"

namespace pmw {
namespace dp {
namespace {

std::vector<double> DefaultOrders() {
  std::vector<double> orders = {1.25, 1.5, 1.75, 2.0, 2.5, 3.0,
                                4.0,  5.0, 6.0,  8.0, 12.0, 16.0,
                                24.0, 32.0, 48.0, 64.0, 128.0, 256.0, 512.0};
  return orders;
}

}  // namespace

RdpAccountant::RdpAccountant() : RdpAccountant(DefaultOrders()) {}

RdpAccountant::RdpAccountant(std::vector<double> orders)
    : orders_(std::move(orders)), rdp_(orders_.size(), 0.0) {
  PMW_CHECK(!orders_.empty());
  for (double a : orders_) PMW_CHECK_GT(a, 1.0);
}

void RdpAccountant::AddGaussian(double noise_multiplier, int count) {
  PMW_CHECK_GT(noise_multiplier, 0.0);
  PMW_CHECK_GE(count, 1);
  for (size_t i = 0; i < orders_.size(); ++i) {
    rdp_[i] += count * orders_[i] /
               (2.0 * noise_multiplier * noise_multiplier);
  }
}

void RdpAccountant::AddPureDp(double epsilon, int count) {
  PMW_CHECK_GT(epsilon, 0.0);
  PMW_CHECK_GE(count, 1);
  for (size_t i = 0; i < orders_.size(); ++i) {
    double bound = std::min(0.5 * orders_[i] * epsilon * epsilon, epsilon);
    rdp_[i] += count * bound;
  }
}

double RdpAccountant::EpsilonAt(double delta) const {
  PMW_CHECK_GT(delta, 0.0);
  PMW_CHECK_LT(delta, 1.0);
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < orders_.size(); ++i) {
    double a = orders_[i];
    double eps = rdp_[i] + std::log(1.0 / delta) / (a - 1.0) +
                 std::log((a - 1.0) / a);
    best = std::min(best, std::max(eps, 0.0));
  }
  return best;
}

double RdpAccountant::StrongCompositionEpsilon(double noise_multiplier,
                                               int count, double delta) {
  // Each Gaussian release at noise multiplier m is (eps0, delta0)-DP with
  // the classical calibration eps0 = sqrt(2 ln(1.25/delta0)) / m; charge
  // half the final delta to the per-release delta0 and half to the
  // composition slack.
  PMW_CHECK_GT(noise_multiplier, 0.0);
  PMW_CHECK_GE(count, 1);
  double delta0 = delta / (2.0 * count);
  double eps0 = std::sqrt(2.0 * std::log(1.25 / delta0)) / noise_multiplier;
  PrivacyParams per{eps0, delta0};
  return StrongComposition(per, count, delta / 2.0).epsilon;
}

}  // namespace dp
}  // namespace pmw
