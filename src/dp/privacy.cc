#include "dp/privacy.h"

#include "common/check.h"

namespace pmw {
namespace dp {

void ValidatePrivacyParams(const PrivacyParams& params) {
  PMW_CHECK_MSG(params.epsilon > 0.0, "epsilon must be positive");
  PMW_CHECK_MSG(params.delta >= 0.0 && params.delta < 1.0,
                "delta must lie in [0, 1)");
}

}  // namespace dp
}  // namespace pmw
