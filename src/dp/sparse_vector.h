// The online sparse vector algorithm (paper Section 3.1, Theorem 3.1).
//
// Answers a long adaptive stream of low-sensitivity queries with one bit
// each: kTop when the query value is (noisily) above a threshold, kBottom
// otherwise. Privacy cost scales only with T, the number of kTop answers,
// not with the total number of queries k — the property that lets private
// multiplicative weights answer exponentially many queries.
//
// Implementation follows the textbook Sparse algorithm (Dwork-Roth,
// "Algorithmic Foundations of DP", Section 3.6): AboveThreshold epochs with
// Laplace noise on threshold and queries, threshold noise refreshed after
// every kTop, halting after T kTop answers. With delta > 0 the per-epoch
// budget comes from strong composition across the T epochs.

#ifndef PMWCM_DP_SPARSE_VECTOR_H_
#define PMWCM_DP_SPARSE_VECTOR_H_

#include <cstdint>

#include "common/random.h"
#include "common/result.h"
#include "dp/privacy.h"

namespace pmw {
namespace dp {

class SparseVector {
 public:
  struct Options {
    /// T: the algorithm halts after this many kTop answers.
    int max_top_answers = 1;
    /// alpha: callers are promised (whp) kTop when q(D) >= alpha and
    /// kBottom when q(D) <= alpha/2. The internal threshold is 3*alpha/4.
    double alpha = 0.1;
    /// Sensitivity Delta of every query (3S/n in the paper's usage).
    double sensitivity = 0.0;
    PrivacyParams privacy;
  };

  enum class Answer { kBottom = 0, kTop = 1 };

  SparseVector(const Options& options, uint64_t seed);

  /// Processes the next query value; Status kHalted once T kTop answers
  /// have been given.
  Result<Answer> Process(double query_value);

  bool halted() const { return top_count_ >= options_.max_top_answers; }
  int top_count() const { return top_count_; }
  long long queries_processed() const { return queries_processed_; }

  /// Laplace scale applied to each query value (exposed for tests and for
  /// the Theorem 3.1 benchmark).
  double query_noise_scale() const { return query_scale_; }
  double threshold_noise_scale() const { return threshold_scale_; }

  /// Theorem 3.1's sufficient dataset size (with the paper's constant):
  /// n >= 256 S sqrt(T log(2/delta)) log(4k/beta) / (eps alpha).
  static double TheoremRequiredN(double scale_s, int max_top_answers,
                                 long long num_queries, double alpha,
                                 const PrivacyParams& privacy, double beta);

 private:
  void RefreshThresholdNoise();

  Options options_;
  Rng rng_;
  double threshold_scale_;
  double query_scale_;
  double noisy_threshold_;
  int top_count_ = 0;
  long long queries_processed_ = 0;
};

}  // namespace dp
}  // namespace pmw

#endif  // PMWCM_DP_SPARSE_VECTOR_H_
