// Composition theorems for differential privacy (paper Section 3.4.1).
//
// Implements basic composition and the strong composition theorem of
// Dwork, Rothblum, and Vadhan (paper Theorem 3.10), plus the inverse
// budget split the paper's algorithm uses (Figure 3's eps0, delta0).

#ifndef PMWCM_DP_COMPOSITION_H_
#define PMWCM_DP_COMPOSITION_H_

#include "dp/privacy.h"

namespace pmw {
namespace dp {

/// T-fold basic composition: (T eps0, T delta0).
PrivacyParams BasicComposition(const PrivacyParams& per_round, int rounds);

/// Theorem 3.10: a T-fold adaptive composition of (eps0, delta0)-DP
/// mechanisms is (eps, delta' + T delta0)-DP for
///   eps = sqrt(2 T ln(1/delta')) eps0 + 2 T eps0^2.
PrivacyParams StrongComposition(const PrivacyParams& per_round, int rounds,
                                double delta_prime);

/// The paper's inverse split (Theorem 3.10, "in particular"): per-round
///   eps0 = eps / sqrt(8 T log(2/delta)),  delta0 = delta / (2T)
/// so that the T-fold strong composition stays within (eps, delta).
/// Requires eps <= ln(2/delta) (checked) so the quadratic term stays small.
PrivacyParams PerRoundBudget(const PrivacyParams& total, int rounds);

}  // namespace dp
}  // namespace pmw

#endif  // PMWCM_DP_COMPOSITION_H_
