// Basic output-perturbation mechanisms: Laplace, Gaussian, and the
// exponential mechanism (McSherry-Talwar), the building blocks the paper's
// framework composes (Sections 1.2, 3.1, 3.4).

#ifndef PMWCM_DP_MECHANISMS_H_
#define PMWCM_DP_MECHANISMS_H_

#include <vector>

#include "common/random.h"
#include "dp/privacy.h"

namespace pmw {
namespace dp {

/// The Laplace mechanism for a scalar with L1 sensitivity `sensitivity`:
/// value + Lap(sensitivity / epsilon). Pure epsilon-DP.
double LaplaceMechanism(double value, double sensitivity, double epsilon,
                        Rng* rng);

/// Noise scale b used by LaplaceMechanism.
double LaplaceScale(double sensitivity, double epsilon);

/// The Gaussian mechanism for a scalar with L2 sensitivity `sensitivity`:
/// value + N(0, sigma^2) with the classical calibration
/// sigma = sensitivity * sqrt(2 ln(1.25/delta)) / epsilon. Requires
/// delta > 0 and epsilon <= 1 for the classical bound to apply (checked).
double GaussianMechanism(double value, double sensitivity,
                         const PrivacyParams& params, Rng* rng);

/// Noise standard deviation used by GaussianMechanism.
double GaussianSigma(double sensitivity, const PrivacyParams& params);

/// Vector Gaussian mechanism: adds iid N(0, sigma^2) per coordinate, where
/// `sensitivity` bounds the L2 norm of the difference between neighbouring
/// outputs.
std::vector<double> GaussianMechanismVector(std::vector<double> value,
                                            double sensitivity,
                                            const PrivacyParams& params,
                                            Rng* rng);

/// The exponential mechanism: samples index i with probability proportional
/// to exp(epsilon * score[i] / (2 * sensitivity)), where `sensitivity`
/// bounds the per-record change of every score. Implemented by the Gumbel-
/// max trick, which is exact. Pure epsilon-DP.
int ExponentialMechanism(const std::vector<double>& scores, double sensitivity,
                         double epsilon, Rng* rng);

/// Report-noisy-max with Laplace noise (an alternative selection mechanism,
/// also epsilon-DP for sensitivity-1 scores after scaling).
int ReportNoisyMax(const std::vector<double>& scores, double sensitivity,
                   double epsilon, Rng* rng);

}  // namespace dp
}  // namespace pmw

#endif  // PMWCM_DP_MECHANISMS_H_
